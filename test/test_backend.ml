(* Tests for the compiled-kernel execution backends: bit-identity of the
   Native_ocaml and Compiled_c backends against the interpreter over the
   whole benchmark suite (single node and every distributed engine), direct
   qcheck parity of a compiled kernel function against the interpreter's
   range calls, the on-disk/memo kernel cache, and the interpreter fallback
   when no toolchain can be found on PATH. *)

open Helpers
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Interp = Msc_exec.Interp
module Backend = Msc_exec.Backend
module Jit = Msc_exec.Jit
module Exec = Msc_exec.Exec
module Bc = Msc_exec.Bc
module Distributed = Msc_comm.Distributed
module Suite = Msc_benchsuite.Suite
module Builder = Msc_frontend.Builder
module Schedule = Msc_schedule.Schedule
module Codegen = Msc_codegen.Codegen

let small_dims (b : Suite.bench) =
  match b.Suite.ndim with 2 -> [| 14; 18 |] | _ -> [| 10; 12; 11 |]

(* Every test in this module works against a private kernel-cache dir so
   the suite never races another process over /tmp artifacts. [Jit] re-reads
   the env var on each compile, so tests that need a cold cache swap it
   locally and restore this one. *)
let cache_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msc-test-kernels-%d" (Unix.getpid ()))
  in
  Unix.putenv "MSC_KERNEL_CACHE" dir;
  dir

let with_cache_dir dir f =
  Unix.putenv "MSC_KERNEL_CACHE" dir;
  Jit.clear_memo ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MSC_KERNEL_CACHE" cache_dir;
      Jit.clear_memo ())
    f

let have_tool t = Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" t) = 0

let toolchain_for = function
  | Backend.Interp -> true
  | Backend.Native_ocaml -> have_tool "ocamlopt"
  | Backend.Compiled_c -> have_tool "cc" || have_tool "gcc"

let compiled_backends = [ Backend.Native_ocaml; Backend.Compiled_c ]

let final ?bc ?fuse ?pool ?schedule ~backend ~steps st =
  let rt =
    Runtime.create
      ~config:(Exec.Config.make ~backend ?fuse ?pool ())
      ?bc ?schedule st
  in
  Runtime.run rt steps;
  (Runtime.current rt, Runtime.backend_report rt)

(* --- Single-node bit-identity over the whole suite ---

   Three-way per benchmark and backend: the interpreter, the fused
   whole-sweep kernel (the default), and the per-term kernels ([fuse:false])
   must agree bit-for-bit. *)

let suite_parity_bit_identical () =
  List.iter
    (fun (b : Suite.bench) ->
      let st = Suite.stencil ~dims:(small_dims b) b in
      let interp, _ = final ~backend:Backend.Interp ~steps:3 st in
      List.iter
        (fun backend ->
          let name =
            Printf.sprintf "%s/%s" b.Suite.name (Backend.to_string backend)
          in
          let got_fused, report = final ~backend ~steps:3 st in
          let got_terms, report_terms =
            final ~fuse:false ~backend ~steps:3 st
          in
          if toolchain_for backend then begin
            check_bool (name ^ ": requested backend ran") true
              (Backend.equal report.Runtime.effective backend);
            check_int
              (name ^ ": every kernel term compiled (fused)")
              report.Runtime.kernel_terms report.Runtime.compiled_terms;
            check_int (name ^ ": sweep is fused") 1 report.Runtime.fused_sweeps;
            check_int
              (name ^ ": per-term leg not fused")
              0 report_terms.Runtime.fused_sweeps;
            check_int
              (name ^ ": every kernel term compiled (per-term)")
              report_terms.Runtime.kernel_terms
              report_terms.Runtime.compiled_terms;
            check_bool
              (name ^ ": tile dispatches counted")
              true
              (report.Runtime.tile_dispatches > 0)
          end;
          check_bool (name ^ ": fused bit-identical to interp") true
            (got_fused.Grid.data = interp.Grid.data);
          check_bool (name ^ ": per-term bit-identical to interp") true
            (got_terms.Grid.data = interp.Grid.data))
        compiled_backends)
    Suite.all

(* Periodic and Reflect drive different range/writeback paths through the
   same compiled kernels. *)
let parity_under_bcs () =
  let _, st = stencil_2d9pt_box ~m:12 ~n:15 () in
  List.iter
    (fun bc ->
      let interp, _ = final ~bc ~backend:Backend.Interp ~steps:3 st in
      List.iter
        (fun backend ->
          let got, _ = final ~bc ~backend ~steps:3 st in
          check_bool
            (Format.asprintf "%a/%s bit-identical" Bc.pp bc
               (Backend.to_string backend))
            true
            (got.Grid.data = interp.Grid.data))
        compiled_backends)
    [ Bc.Dirichlet 0.3; Bc.Periodic; Bc.Reflect ]

(* --- Distributed engines x backends --- *)

let engines =
  [
    ("bulk", Exec.Bulk_synchronous);
    ("overlapped", Exec.Overlapped);
    ("temporal2", Exec.Temporal_blocked { depth = 2 });
  ]

let distributed_matrix_exact () =
  List.iter
    (fun (b : Suite.bench) ->
      let dims =
        Array.make b.Suite.ndim (max 12 (4 * b.Suite.radius))
      in
      let ranks_shape = Array.make b.Suite.ndim 2 in
      let st = Suite.stencil ~dims b in
      List.iter
        (fun backend ->
          List.iter
            (fun (ename, engine) ->
              List.iter
                (fun fuse ->
                  check_float
                    (Printf.sprintf "%s/%s/%s/%s" b.Suite.name
                       (Backend.to_string backend) ename
                       (if fuse then "fused" else "per-term"))
                    0.0
                    (Distributed.validate
                       ~config:(Exec.Config.make ~backend ~engine ~fuse ())
                       ~steps:3 ~ranks_shape st))
                [ true; false ])
            engines)
        compiled_backends)
    Suite.all

(* Deep temporal blocks, uneven rank extents (per-rank geometry differs, so
   each rank compiles its own kernel variant) and the periodic wrap. *)
let distributed_deep_uneven_periodic_exact () =
  let _, st = stencil_2d9pt_box ~m:13 ~n:17 () in
  List.iter
    (fun backend ->
      List.iter
        (fun fuse ->
          let name =
            Printf.sprintf "%s/%s" (Backend.to_string backend)
              (if fuse then "fused" else "per-term")
          in
          check_float (name ^ ": depth 4 on uneven 3x2 ranks") 0.0
            (Distributed.validate
               ~config:
                 (Exec.Config.make ~backend ~fuse
                    ~engine:(Exec.Temporal_blocked { depth = 4 })
                    ())
               ~steps:5 ~ranks_shape:[| 3; 2 |] st);
          check_float (name ^ ": periodic wrap, overlapped") 0.0
            (Distributed.validate
               ~config:
                 (Exec.Config.make ~backend ~fuse ~engine:Exec.Overlapped ())
               ~bc:Bc.Periodic ~steps:4 ~ranks_shape:[| 2; 2 |] st))
        [ true; false ])
    compiled_backends

(* --- Direct kernel-function parity (qcheck) --- *)

(* One compiled function per backend, shared by all property iterations
   (compile_term memoizes; the property then exercises random subranges,
   writeback modes and scales against the interpreter's range calls). *)
let jit_fn_matches_interp =
  let k, st = stencil_2d9pt_box ~m:10 ~n:12 () in
  let geometry = Grid.of_tensor st.Msc_ir.Stencil.grid in
  let interp = Interp.compile k ~geometry in
  let shape = Interp.shape interp in
  let fns =
    (* Deferred so a compile failure surfaces as a failing property, not a
       crash at test-collection time; compile_term memoizes, so the work
       happens once. *)
    lazy
      (List.filter_map
         (fun backend ->
           if not (toolchain_for backend) then None
           else
             match
               Jit.compile_term ~backend ~plan_digest:"test-backend-prop"
                 ~term_index:0 interp
             with
             | Ok fn -> Some (backend, fn)
             | Error msg ->
                 QCheck.Test.fail_reportf "compile_term (%s): %s"
                   (Backend.to_string backend) msg)
         compiled_backends)
  in
  qc ~count:60 "compiled fn == interp on random ranges/writeback/scale"
    QCheck.(
      triple (int_range 0 2) (int_range 0 1000) (pair small_int small_int))
    (fun (wb_sel, seed, (a, b)) ->
      let lo = Array.map (fun n -> (a * 7) mod n) shape in
      let hi =
        Array.mapi (fun d n -> lo.(d) + 1 + ((b * 5) + d) mod (n - lo.(d))) shape
      in
      let scale = 0.25 +. (float_of_int (seed mod 17) *. 0.375) in
      let src = Grid.of_tensor st.Msc_ir.Stencil.grid in
      Grid.fill_all src 0.0;
      Grid.fill src (fun c ->
          float_of_int (Array.fold_left ( + ) seed c) *. 0.0625);
      let mk () =
        let g = Grid.like src in
        Grid.fill g (fun c -> float_of_int (c.(0) - c.(1)) *. 0.5);
        g
      in
      let expected = mk () in
      (match wb_sel with
      | 0 -> Interp.apply_range ~aux:[] interp ~src ~dst:expected ~lo ~hi
      | 1 ->
          Interp.apply_scaled_range ~aux:[] interp ~scale ~src ~dst:expected
            ~lo ~hi
      | _ ->
          Interp.accumulate_range ~aux:[] interp ~scale ~src ~dst:expected ~lo
            ~hi);
      List.for_all
        (fun (_, fn) ->
          let got = mk () in
          let wb =
            match wb_sel with
            | 0 -> Backend.wb_apply
            | 1 -> Backend.wb_apply_scaled
            | _ -> Backend.wb_accumulate
          in
          fn wb scale src.Grid.data got.Grid.data [||] lo hi;
          got.Grid.data = expected.Grid.data)
        (Lazy.force fns))

(* --- Direct fused-sweep parity (qcheck) ---

   A two-term sweep (identity + kernel) compiled as one fused function,
   exercised over random subranges and both writeback modes against the
   interpreter's equivalent pass sequence: the identity writeback done by
   hand exactly as [Runtime]'s engines do it, the kernel term through
   [Interp.accumulate_range]. *)

let fused_sweep_matches_interp =
  let k, st = stencil_2d9pt_box ~m:10 ~n:12 () in
  let geometry = Grid.of_tensor st.Msc_ir.Stencil.grid in
  let interp = Interp.compile k ~geometry in
  let shape = Interp.shape interp in
  let terms =
    [
      Jit.Sweep_state { scale = 0.5 };
      Jit.Sweep_kernel { scale = 0.75; interp };
    ]
  in
  let fns =
    lazy
      (List.filter_map
         (fun backend ->
           if not (toolchain_for backend) then None
           else
             match
               Jit.compile_sweep ~backend ~plan_digest:"test-backend-sweep-prop"
                 terms
             with
             | Ok fn -> Some (backend, fn)
             | Error msg ->
                 QCheck.Test.fail_reportf "compile_sweep (%s): %s"
                   (Backend.to_string backend) msg)
         compiled_backends)
  in
  let iter_range ~lo ~hi f =
    let c = Array.copy lo in
    let rec go d =
      if d = Array.length lo then f c
      else
        for v = lo.(d) to hi.(d) - 1 do
          c.(d) <- v;
          go (d + 1)
        done
    in
    go 0
  in
  qc ~count:60 "fused sweep == interp sequence on random ranges/writeback"
    QCheck.(
      triple (int_range 0 1) (int_range 0 1000) (pair small_int small_int))
    (fun (wb_sel, seed, (a, b)) ->
      let lo = Array.map (fun n -> (a * 7) mod n) shape in
      let hi =
        Array.mapi (fun d n -> lo.(d) + 1 + ((b * 5) + d) mod (n - lo.(d))) shape
      in
      let mk_src salt =
        let g = Grid.of_tensor st.Msc_ir.Stencil.grid in
        Grid.fill_all g 0.0;
        Grid.fill g (fun c ->
            float_of_int (Array.fold_left ( + ) (seed + salt) c) *. 0.0625);
        g
      in
      let state_src = mk_src 0 and kernel_src = mk_src 17 in
      let mk () =
        let g = Grid.like state_src in
        Grid.fill g (fun c -> float_of_int (c.(0) - c.(1)) *. 0.5);
        g
      in
      let expected = mk () in
      (* The identity term, written exactly as the engines do. *)
      (if wb_sel = 0 then
         iter_range ~lo ~hi (fun c ->
             Grid.set expected c (0.5 *. Grid.get state_src c))
       else
         iter_range ~lo ~hi (fun c ->
             Grid.set expected c
               (Grid.get expected c +. (0.5 *. Grid.get state_src c))));
      Interp.accumulate_range ~aux:[] interp ~scale:0.75 ~src:kernel_src
        ~dst:expected ~lo ~hi;
      List.for_all
        (fun (_, fn) ->
          let got = mk () in
          let wb = if wb_sel = 0 then Backend.wb_apply else Backend.wb_accumulate in
          fn wb
            [| state_src.Grid.data; kernel_src.Grid.data |]
            got.Grid.data [||] lo hi;
          got.Grid.data = expected.Grid.data)
        (Lazy.force fns))

(* --- Forms beyond taps: tree mode and unnamed-aux bilinear ---

   These fell back to the interpreter under the per-term JIT of PR 6; both
   granularities must now compile them and stay bit-identical. *)

(* Nonlinear kernel (tree mode): sqrt/mul force the expression-tree path,
   Max exercises the hand-ported Float.max semantics in C. *)
let stencil_tree_2d ?(n = 12) () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 n n in
  let k =
    Builder.kernel ~name:"TreeK" ~grid
      Msc_ir.Expr.(
        Binop
          ( Max,
            Call ("sqrt", [ (read "B" [| 0; 0 |] * read "B" [| 0; 0 |]) + f 1.0 ]),
            f 0.25 * read "B" [| 1; 0 |] ))
  in
  Builder.two_step ~name:"tree2d" k

(* Tree mode reading a coefficient grid: aux slots flow through the tree
   ABI (C * B * B is not bilinear -- two input factors). *)
let stencil_tree_aux_2d ?(n = 10) () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 n n in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k =
    Msc_ir.Kernel.make ~aux:[ coeff ] ~name:"TreeAux" ~input:grid
      ~index_vars:[ "j"; "i" ]
      Msc_ir.Expr.(
        (read "C" [| 0; 0 |] * read "B" [| 0; 0 |] * read "B" [| 0; 0 |])
        + (f 0.2 * read "B" [| 0; 1 |]))
  in
  Builder.two_step ~name:"treeaux2d" k

(* Bilinear kernel with unnamed-aux subterms: C*B is a named kind-0 term,
   the plain B reads are kind-1 terms whose aux slot is [None]. *)
let stencil_mixed_bilinear_2d ?(n = 12) () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 n n in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k =
    Msc_ir.Kernel.make
      ~bindings:[ ("w", 0.25) ]
      ~aux:[ coeff ] ~name:"MixB" ~input:grid ~index_vars:[ "j"; "i" ]
      Msc_ir.Expr.(
        (p "w" * read "C" [| 0; 0 |] * read "B" [| 0; 1 |])
        + (f 0.5 * read "B" [| 1; 0 |])
        - (f 0.125 * read "B" [| 0; 0 |]))
  in
  Builder.two_step ~name:"mixb2d" k

let former_fallback_forms_compile () =
  List.iter
    (fun (fname, st) ->
      let interp, _ = final ~backend:Backend.Interp ~steps:3 st in
      List.iter
        (fun backend ->
          let name = Printf.sprintf "%s/%s" fname (Backend.to_string backend) in
          let got_fused, report = final ~backend ~steps:3 st in
          let got_terms, report_terms =
            final ~fuse:false ~backend ~steps:3 st
          in
          if toolchain_for backend then begin
            check_bool (name ^ ": no fallback (fused)") true
              (report.Runtime.fallback = None);
            check_int (name ^ ": compiled fused") 1 report.Runtime.fused_sweeps;
            check_bool (name ^ ": no fallback (per-term)") true
              (report_terms.Runtime.fallback = None);
            check_int
              (name ^ ": every term compiled per-term")
              report_terms.Runtime.kernel_terms
              report_terms.Runtime.compiled_terms
          end;
          check_bool (name ^ ": fused bit-identical") true
            (got_fused.Grid.data = interp.Grid.data);
          check_bool (name ^ ": per-term bit-identical") true
            (got_terms.Grid.data = interp.Grid.data))
        compiled_backends)
    [
      ("tree2d", stencil_tree_2d ());
      ("treeaux2d", stencil_tree_aux_2d ());
      ("mixb2d", stencil_mixed_bilinear_2d ());
    ]

(* --- Pool-parallel fused dispatch --- *)

let fused_pool_stress () =
  let k, st = stencil_3d7pt ~n:12 () in
  let sched = Schedule.matrix_canonical ~tile:[| 4; 5; 6 |] ~threads:4 k in
  let interp, _ = final ~schedule:sched ~backend:Backend.Interp ~steps:4 st in
  List.iter
    (fun backend ->
      if toolchain_for backend then begin
        let name = Backend.to_string backend in
        let pool = Msc_util.Domain_pool.create 4 in
        Fun.protect
          ~finally:(fun () -> Msc_util.Domain_pool.shutdown pool)
          (fun () ->
            let got, report =
              final ~schedule:sched ~pool ~backend ~steps:4 st
            in
            check_int (name ^ ": fused on the pool") 1 report.Runtime.fused_sweeps;
            check_bool (name ^ ": tile tasks dispatched") true
              (report.Runtime.tile_dispatches >= 4 * 8);
            check_bool (name ^ ": pool-parallel fused bit-identical") true
              (got.Grid.data = interp.Grid.data))
      end)
    compiled_backends

(* --- Failure-kind accounting --- *)

let unsupported_form_counted () =
  let k, st = stencil_2d9pt_box ~m:8 ~n:8 () in
  let geometry = Grid.of_tensor st.Msc_ir.Stencil.grid in
  let interp = Interp.compile k ~geometry in
  (* 65 terms exceed the native-stub slot limit: an unsupported form, not a
     toolchain problem. *)
  let terms = List.init 65 (fun _ -> Jit.Sweep_kernel { scale = 1.0; interp }) in
  let s0 = Jit.stats () in
  (match
     Jit.compile_sweep ~backend:Backend.Compiled_c ~plan_digest:"too-many" terms
   with
  | Ok _ -> Alcotest.fail "expected compile_sweep to reject 65 terms"
  | Error _ -> ());
  let s1 = Jit.stats () in
  check_int "unsupported counted"
    (s0.Jit.failures_unsupported + 1)
    s1.Jit.failures_unsupported;
  check_int "toolchain count unchanged" s0.Jit.failures_toolchain
    s1.Jit.failures_toolchain

(* --- AOT: generated standalone C shares the fused sweep body --- *)

let aot_fused_matches_legacy () =
  if not (Codegen.Toolchain.available ()) then ()
  else begin
    let st = stencil_mixed_bilinear_2d ~n:12 () in
    let k = List.hd (Msc_ir.Stencil.kernels st) in
    let sched = Schedule.cpu_canonical ~tile:[| 4; 6 |] ~threads:2 k in
    let legacy = Codegen.generate ~steps:3 st sched Codegen.Cpu in
    let fused =
      Codegen.generate ~steps:3
        ~config:(Exec.Config.make ~backend:Backend.Compiled_c ())
        st sched Codegen.Cpu
    in
    let contains s needle =
      let n = String.length needle in
      let rec scan i =
        i + n <= String.length s
        && (String.equal (String.sub s i n) needle || scan (i + 1))
      in
      scan 0
    in
    let has_sweep files =
      List.exists
        (fun f ->
          Filename.check_suffix f.Codegen.name ".c"
          && contains f.Codegen.contents "msc_sweep")
        files
    in
    check_bool "legacy step has no fused body" false (has_sweep legacy);
    check_bool "fused step embeds the sweep" true (has_sweep fused);
    let run tag files =
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "msc-test-aot-%s-%d" tag (Unix.getpid ()))
      in
      match Codegen.Toolchain.compile_and_run ~steps:3 ~dir files with
      | Ok r -> r.Codegen.Toolchain.checksum
      | Error msg -> Alcotest.fail (tag ^ ": " ^ msg)
    in
    let cl = run "legacy" legacy and cf = run "fused" fused in
    check_bool "checksums agree" true
      (Float.abs (cf -. cl) /. Float.max 1.0 (Float.abs cl) < 1e-12)
  end

(* --- Kernel cache: compile once, then memo, then disk --- *)

let cache_compiles_once () =
  if not (toolchain_for Backend.Compiled_c) then ()
  else
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "msc-test-kernels-cold-%d" (Unix.getpid ()))
    in
    with_cache_dir dir (fun () ->
        let _, st = stencil_3d7pt ~n:8 () in
        let s0 = Jit.stats () in
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        let s1 = Jit.stats () in
        check_bool "first runtime compiles" true (s1.Jit.compiles > s0.Jit.compiles);
        check_int "no unsupported-form failures" s0.Jit.failures_unsupported
          s1.Jit.failures_unsupported;
        check_int "no toolchain failures" s0.Jit.failures_toolchain
          s1.Jit.failures_toolchain;
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        let s2 = Jit.stats () in
        check_int "second runtime recompiles nothing" s1.Jit.compiles
          s2.Jit.compiles;
        check_bool "served from the in-process memo" true
          (s2.Jit.memo_hits > s1.Jit.memo_hits);
        (* A fresh process would miss the memo but find the artifacts: clear
           the memo and demand disk hits, still without compiling. *)
        Jit.clear_memo ();
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        let s3 = Jit.stats () in
        check_int "disk reuse recompiles nothing" s2.Jit.compiles s3.Jit.compiles;
        check_bool "served from the on-disk cache" true
          (s3.Jit.disk_hits > s2.Jit.disk_hits))

(* --- No toolchain: automatic interpreter fallback --- *)

let no_toolchain_falls_back () =
  let saved_path = try Sys.getenv "PATH" with Not_found -> "" in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msc-test-kernels-nopath-%d" (Unix.getpid ()))
  in
  with_cache_dir dir (fun () ->
      Fun.protect
        ~finally:(fun () -> Unix.putenv "PATH" saved_path)
        (fun () ->
          Unix.putenv "PATH" "/nonexistent";
          let _, st = stencil_3d7pt ~n:8 () in
          let interp, _ = final ~backend:Backend.Interp ~steps:2 st in
          let s0 = Jit.stats () in
          List.iter
            (fun backend ->
              let name = Backend.to_string backend in
              let got, report = final ~backend ~steps:2 st in
              check_bool (name ^ ": degraded to interp") true
                (Backend.equal report.Runtime.effective Backend.Interp);
              check_bool (name ^ ": requested backend recorded") true
                (Backend.equal report.Runtime.requested backend);
              check_int (name ^ ": nothing compiled") 0
                report.Runtime.compiled_terms;
              check_int (name ^ ": no fused sweep") 0 report.Runtime.fused_sweeps;
              check_bool (name ^ ": fallback reason reported") true
                (report.Runtime.fallback <> None);
              check_bool (name ^ ": results still exact") true
                (got.Grid.data = interp.Grid.data))
            compiled_backends;
          let s1 = Jit.stats () in
          check_bool "counted as toolchain failures" true
            (s1.Jit.failures_toolchain > s0.Jit.failures_toolchain);
          check_int "no unsupported-form failures" s0.Jit.failures_unsupported
            s1.Jit.failures_unsupported))

(* --- Emitter salt: every artifact of every emitter carries the version ---

   The cache key folds [Jit.emitter_version] in and the file name embeds it,
   so a shared cache directory can never serve artifacts generated by an
   older emitter: a version bump changes every name, and stale files are
   simply never looked up again. *)

let emitter_salt_in_artifacts () =
  if not (toolchain_for Backend.Compiled_c) then ()
  else
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "msc-test-kernels-salt-%d" (Unix.getpid ()))
    in
    with_cache_dir dir (fun () ->
        let _, st = stencil_3d7pt ~n:8 () in
        (* One fused sweep, one set of per-term kernels, one reduction
           kernel: all three emitters must salt uniformly. *)
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        ignore (final ~fuse:false ~backend:Backend.Compiled_c ~steps:1 st);
        let g = Grid.create ~shape:[| 8; 8; 8 |] ~halo:[| 1; 1; 1 |] in
        let red =
          Msc_exec.Reduction.create
            ~config:(Exec.Config.make ~backend:Backend.Compiled_c ())
            g
        in
        check_bool "reduction compiled" true (Msc_exec.Reduction.compiled red);
        let v = Jit.emitter_version in
        check_bool "salt is non-empty" true (String.length v > 0);
        let prefixed p f =
          String.length f >= String.length p && String.sub f 0 (String.length p) = p
        in
        let artifacts =
          List.filter
            (fun f ->
              prefixed "msc_kern_" f || prefixed "msc_sweep_" f
              || prefixed "msc_reduce_" f)
            (Array.to_list (Sys.readdir dir))
        in
        check_bool "artifacts exist" true (List.length artifacts >= 3);
        List.iter
          (fun f ->
            check_bool (f ^ " carries the emitter salt") true
              (prefixed ("msc_kern_" ^ v ^ "_") f
              || prefixed ("msc_sweep_" ^ v ^ "_") f
              || prefixed ("msc_reduce_" ^ v ^ "_") f))
          artifacts;
        List.iter
          (fun kind ->
            check_bool (kind ^ " artifact present") true
              (List.exists (prefixed (kind ^ "_" ^ v ^ "_")) artifacts))
          [ "msc_kern"; "msc_sweep"; "msc_reduce" ])

(* --- Pool inline cutoff: tiny parallel sweeps never wake the pool --- *)

let pool_inline_cutoff_small_sweeps () =
  (* 14x18 = 252 points per sweep, far under the 32768-point threshold: a
     parallel schedule on a 4-worker pool must run inline — zero helper
     domains spawned — and report it. *)
  let k, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  let sched = Schedule.matrix_canonical ~tile:[| 7; 6 |] ~threads:4 k in
  let interp, _ = final ~schedule:sched ~backend:Backend.Interp ~steps:3 st in
  let pool = Msc_util.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Msc_util.Domain_pool.shutdown pool)
    (fun () ->
      let got, report =
        final ~schedule:sched ~pool ~backend:Backend.Interp ~steps:3 st
      in
      check_int "cutoff reported" 32768 report.Runtime.pool_inline_cutoff;
      check_bool "sweeps ran inline" true (report.Runtime.inline_dispatches >= 3);
      check_int "no helper domains spawned" 0
        (Msc_util.Domain_pool.spawn_total pool);
      check_bool "inline dispatch bit-identical" true
        (got.Grid.data = interp.Grid.data))

let pool_inline_cutoff_big_sweeps_dispatch () =
  (* 32^3 = 32768 points is exactly at the threshold (not under it): the
     pool must genuinely dispatch. *)
  let k, st = stencil_3d7pt ~n:32 () in
  let sched = Schedule.matrix_canonical ~tile:[| 8; 16; 32 |] ~threads:4 k in
  let pool = Msc_util.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Msc_util.Domain_pool.shutdown pool)
    (fun () ->
      let _, report =
        final ~schedule:sched ~pool ~backend:Backend.Interp ~steps:1 st
      in
      check_int "nothing inlined" 0 report.Runtime.inline_dispatches;
      check_bool "helpers spawned" true
        (Msc_util.Domain_pool.spawn_total pool > 0))

let suites =
  [
    ( "backend.parity",
      [
        slow "suite bit-identity (all backends)" suite_parity_bit_identical;
        tc "bit-identity under BCs" parity_under_bcs;
        jit_fn_matches_interp;
      ] );
    ( "backend.fused",
      [
        fused_sweep_matches_interp;
        tc "tree + unnamed-aux forms compile" former_fallback_forms_compile;
        slow "pool-parallel fused dispatch" fused_pool_stress;
        tc "unsupported form counted" unsupported_form_counted;
        slow "AOT embeds fused sweep" aot_fused_matches_legacy;
      ] );
    ( "backend.distributed",
      [
        slow "suite x backends x engines" distributed_matrix_exact;
        tc "deep/uneven/periodic" distributed_deep_uneven_periodic_exact;
      ] );
    ( "backend.cache",
      [
        tc "compile once, memo, disk" cache_compiles_once;
        tc "no toolchain -> interp fallback" no_toolchain_falls_back;
        tc "emitter salt in every artifact" emitter_salt_in_artifacts;
      ] );
    ( "backend.pool_cutoff",
      [
        tc "small sweeps run inline" pool_inline_cutoff_small_sweeps;
        slow "big sweeps use the pool" pool_inline_cutoff_big_sweeps_dispatch;
      ] );
  ]
