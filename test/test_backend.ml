(* Tests for the compiled-kernel execution backends: bit-identity of the
   Native_ocaml and Compiled_c backends against the interpreter over the
   whole benchmark suite (single node and every distributed engine), direct
   qcheck parity of a compiled kernel function against the interpreter's
   range calls, the on-disk/memo kernel cache, and the interpreter fallback
   when no toolchain can be found on PATH. *)

open Helpers
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Interp = Msc_exec.Interp
module Backend = Msc_exec.Backend
module Jit = Msc_exec.Jit
module Exec = Msc_exec.Exec
module Bc = Msc_exec.Bc
module Distributed = Msc_comm.Distributed
module Suite = Msc_benchsuite.Suite

let small_dims (b : Suite.bench) =
  match b.Suite.ndim with 2 -> [| 14; 18 |] | _ -> [| 10; 12; 11 |]

(* Every test in this module works against a private kernel-cache dir so
   the suite never races another process over /tmp artifacts. [Jit] re-reads
   the env var on each compile, so tests that need a cold cache swap it
   locally and restore this one. *)
let cache_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msc-test-kernels-%d" (Unix.getpid ()))
  in
  Unix.putenv "MSC_KERNEL_CACHE" dir;
  dir

let with_cache_dir dir f =
  Unix.putenv "MSC_KERNEL_CACHE" dir;
  Jit.clear_memo ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MSC_KERNEL_CACHE" cache_dir;
      Jit.clear_memo ())
    f

let have_tool t = Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" t) = 0

let toolchain_for = function
  | Backend.Interp -> true
  | Backend.Native_ocaml -> have_tool "ocamlopt"
  | Backend.Compiled_c -> have_tool "cc" || have_tool "gcc"

let compiled_backends = [ Backend.Native_ocaml; Backend.Compiled_c ]

let final ?bc ~backend ~steps st =
  let rt = Runtime.create ~config:(Exec.Config.make ~backend ()) ?bc st in
  Runtime.run rt steps;
  (Runtime.current rt, Runtime.backend_report rt)

(* --- Single-node bit-identity over the whole suite --- *)

let suite_parity_bit_identical () =
  List.iter
    (fun (b : Suite.bench) ->
      let st = Suite.stencil ~dims:(small_dims b) b in
      let interp, _ = final ~backend:Backend.Interp ~steps:3 st in
      List.iter
        (fun backend ->
          let name =
            Printf.sprintf "%s/%s" b.Suite.name (Backend.to_string backend)
          in
          let got, report = final ~backend ~steps:3 st in
          if toolchain_for backend then begin
            check_bool (name ^ ": requested backend ran") true
              (Backend.equal report.Runtime.effective backend);
            check_int
              (name ^ ": every kernel term compiled")
              report.Runtime.kernel_terms report.Runtime.compiled_terms
          end;
          check_bool (name ^ ": bit-identical to interp") true
            (got.Grid.data = interp.Grid.data))
        compiled_backends)
    Suite.all

(* Periodic and Reflect drive different range/writeback paths through the
   same compiled kernels. *)
let parity_under_bcs () =
  let _, st = stencil_2d9pt_box ~m:12 ~n:15 () in
  List.iter
    (fun bc ->
      let interp, _ = final ~bc ~backend:Backend.Interp ~steps:3 st in
      List.iter
        (fun backend ->
          let got, _ = final ~bc ~backend ~steps:3 st in
          check_bool
            (Format.asprintf "%a/%s bit-identical" Bc.pp bc
               (Backend.to_string backend))
            true
            (got.Grid.data = interp.Grid.data))
        compiled_backends)
    [ Bc.Dirichlet 0.3; Bc.Periodic; Bc.Reflect ]

(* --- Distributed engines x backends --- *)

let engines =
  [
    ("bulk", Exec.Bulk_synchronous);
    ("overlapped", Exec.Overlapped);
    ("temporal2", Exec.Temporal_blocked { depth = 2 });
  ]

let distributed_matrix_exact () =
  List.iter
    (fun (b : Suite.bench) ->
      let dims =
        Array.make b.Suite.ndim (max 12 (4 * b.Suite.radius))
      in
      let ranks_shape = Array.make b.Suite.ndim 2 in
      let st = Suite.stencil ~dims b in
      List.iter
        (fun backend ->
          List.iter
            (fun (ename, engine) ->
              check_float
                (Printf.sprintf "%s/%s/%s" b.Suite.name
                   (Backend.to_string backend) ename)
                0.0
                (Distributed.validate
                   ~config:(Exec.Config.make ~backend ~engine ())
                   ~steps:3 ~ranks_shape st))
            engines)
        compiled_backends)
    Suite.all

(* Deep temporal blocks, uneven rank extents (per-rank geometry differs, so
   each rank compiles its own kernel variant) and the periodic wrap. *)
let distributed_deep_uneven_periodic_exact () =
  let _, st = stencil_2d9pt_box ~m:13 ~n:17 () in
  List.iter
    (fun backend ->
      let name = Backend.to_string backend in
      check_float (name ^ ": depth 4 on uneven 3x2 ranks") 0.0
        (Distributed.validate
           ~config:
             (Exec.Config.make ~backend
                ~engine:(Exec.Temporal_blocked { depth = 4 })
                ())
           ~steps:5 ~ranks_shape:[| 3; 2 |] st);
      check_float (name ^ ": periodic wrap, overlapped") 0.0
        (Distributed.validate
           ~config:(Exec.Config.make ~backend ~engine:Exec.Overlapped ())
           ~bc:Bc.Periodic ~steps:4 ~ranks_shape:[| 2; 2 |] st))
    compiled_backends

(* --- Direct kernel-function parity (qcheck) --- *)

(* One compiled function per backend, shared by all property iterations
   (compile_term memoizes; the property then exercises random subranges,
   writeback modes and scales against the interpreter's range calls). *)
let jit_fn_matches_interp =
  let k, st = stencil_2d9pt_box ~m:10 ~n:12 () in
  let geometry = Grid.of_tensor st.Msc_ir.Stencil.grid in
  let interp = Interp.compile k ~geometry in
  let shape = Interp.shape interp in
  let fns =
    (* Deferred so a compile failure surfaces as a failing property, not a
       crash at test-collection time; compile_term memoizes, so the work
       happens once. *)
    lazy
      (List.filter_map
         (fun backend ->
           if not (toolchain_for backend) then None
           else
             match
               Jit.compile_term ~backend ~plan_digest:"test-backend-prop"
                 ~term_index:0 interp
             with
             | Ok fn -> Some (backend, fn)
             | Error msg ->
                 QCheck.Test.fail_reportf "compile_term (%s): %s"
                   (Backend.to_string backend) msg)
         compiled_backends)
  in
  qc ~count:60 "compiled fn == interp on random ranges/writeback/scale"
    QCheck.(
      triple (int_range 0 2) (int_range 0 1000) (pair small_int small_int))
    (fun (wb_sel, seed, (a, b)) ->
      let lo = Array.map (fun n -> (a * 7) mod n) shape in
      let hi =
        Array.mapi (fun d n -> lo.(d) + 1 + ((b * 5) + d) mod (n - lo.(d))) shape
      in
      let scale = 0.25 +. (float_of_int (seed mod 17) *. 0.375) in
      let src = Grid.of_tensor st.Msc_ir.Stencil.grid in
      Grid.fill_all src 0.0;
      Grid.fill src (fun c ->
          float_of_int (Array.fold_left ( + ) seed c) *. 0.0625);
      let mk () =
        let g = Grid.like src in
        Grid.fill g (fun c -> float_of_int (c.(0) - c.(1)) *. 0.5);
        g
      in
      let expected = mk () in
      (match wb_sel with
      | 0 -> Interp.apply_range ~aux:[] interp ~src ~dst:expected ~lo ~hi
      | 1 ->
          Interp.apply_scaled_range ~aux:[] interp ~scale ~src ~dst:expected
            ~lo ~hi
      | _ ->
          Interp.accumulate_range ~aux:[] interp ~scale ~src ~dst:expected ~lo
            ~hi);
      List.for_all
        (fun (_, fn) ->
          let got = mk () in
          let wb =
            match wb_sel with
            | 0 -> Backend.wb_apply
            | 1 -> Backend.wb_apply_scaled
            | _ -> Backend.wb_accumulate
          in
          fn wb scale src.Grid.data got.Grid.data [||] lo hi;
          got.Grid.data = expected.Grid.data)
        (Lazy.force fns))

(* --- Kernel cache: compile once, then memo, then disk --- *)

let cache_compiles_once () =
  if not (toolchain_for Backend.Compiled_c) then ()
  else
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "msc-test-kernels-cold-%d" (Unix.getpid ()))
    in
    with_cache_dir dir (fun () ->
        let _, st = stencil_3d7pt ~n:8 () in
        let s0 = Jit.stats () in
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        let s1 = Jit.stats () in
        check_bool "first runtime compiles" true (s1.Jit.compiles > s0.Jit.compiles);
        check_int "no failures" s0.Jit.failures s1.Jit.failures;
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        let s2 = Jit.stats () in
        check_int "second runtime recompiles nothing" s1.Jit.compiles
          s2.Jit.compiles;
        check_bool "served from the in-process memo" true
          (s2.Jit.memo_hits > s1.Jit.memo_hits);
        (* A fresh process would miss the memo but find the artifacts: clear
           the memo and demand disk hits, still without compiling. *)
        Jit.clear_memo ();
        ignore (final ~backend:Backend.Compiled_c ~steps:1 st);
        let s3 = Jit.stats () in
        check_int "disk reuse recompiles nothing" s2.Jit.compiles s3.Jit.compiles;
        check_bool "served from the on-disk cache" true
          (s3.Jit.disk_hits > s2.Jit.disk_hits))

(* --- No toolchain: automatic interpreter fallback --- *)

let no_toolchain_falls_back () =
  let saved_path = try Sys.getenv "PATH" with Not_found -> "" in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msc-test-kernels-nopath-%d" (Unix.getpid ()))
  in
  with_cache_dir dir (fun () ->
      Fun.protect
        ~finally:(fun () -> Unix.putenv "PATH" saved_path)
        (fun () ->
          Unix.putenv "PATH" "/nonexistent";
          let _, st = stencil_3d7pt ~n:8 () in
          let interp, _ = final ~backend:Backend.Interp ~steps:2 st in
          List.iter
            (fun backend ->
              let name = Backend.to_string backend in
              let got, report = final ~backend ~steps:2 st in
              check_bool (name ^ ": degraded to interp") true
                (Backend.equal report.Runtime.effective Backend.Interp);
              check_bool (name ^ ": requested backend recorded") true
                (Backend.equal report.Runtime.requested backend);
              check_int (name ^ ": nothing compiled") 0
                report.Runtime.compiled_terms;
              check_bool (name ^ ": fallback reason reported") true
                (report.Runtime.fallback <> None);
              check_bool (name ^ ": results still exact") true
                (got.Grid.data = interp.Grid.data))
            compiled_backends))

let suites =
  [
    ( "backend.parity",
      [
        slow "suite bit-identity (all backends)" suite_parity_bit_identical;
        tc "bit-identity under BCs" parity_under_bcs;
        jit_fn_matches_interp;
      ] );
    ( "backend.distributed",
      [
        slow "suite x backends x engines" distributed_matrix_exact;
        tc "deep/uneven/periodic" distributed_deep_uneven_periodic_exact;
      ] );
    ( "backend.cache",
      [
        tc "compile once, memo, disk" cache_compiles_once;
        tc "no toolchain -> interp fallback" no_toolchain_falls_back;
      ] );
  ]
