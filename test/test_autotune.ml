(* Tests for the auto-tuner: parameter space, simulated annealing, the
   regression performance model, and the full §5.4 driver. *)

open Helpers
module Params = Msc_autotune.Params
module Anneal = Msc_autotune.Anneal
module Perfmodel = Msc_autotune.Perfmodel
module Autotune = Msc_autotune.Autotune
module Prng = Msc_util.Prng

let dims = [| 256; 128; 128 |]
let nranks = 16

(* --- Params --- *)

let tile_candidates_are_powers () =
  let cands = Params.tile_candidates ~dims:[| 48 |] in
  Alcotest.(check (list int)) "powers plus extent" [ 1; 2; 4; 8; 16; 32; 48 ] cands.(0)

let mpi_candidates_factorize () =
  let grids = Params.mpi_grid_candidates ~nranks:12 ~ndim:2 in
  check_bool "several factorizations" true (List.length grids >= 6);
  List.iter
    (fun g -> check_int "product = nranks" 12 (Array.fold_left ( * ) 1 g))
    grids

let random_config_valid () =
  let rng = Prng.create 1 in
  for _ = 1 to 50 do
    let c = Params.random rng ~dims ~nranks in
    Array.iteri (fun d t -> check_bool "tile bounded" true (t >= 1 && t <= dims.(d))) c.Params.tile;
    check_int "mpi product" nranks (Array.fold_left ( * ) 1 c.Params.mpi_grid)
  done

let neighbor_stays_valid () =
  let rng = Prng.create 2 in
  let c = ref (Params.random rng ~dims ~nranks) in
  for _ = 1 to 200 do
    c := Params.neighbor rng ~dims ~nranks !c;
    check_int "mpi product" nranks (Array.fold_left ( * ) 1 !c.Params.mpi_grid);
    Array.iteri
      (fun d t -> check_bool "tile bounded" true (t >= 1 && t <= dims.(d)))
      !c.Params.tile
  done

let subgrid_ceil () =
  let c = { Params.tile = [| 1; 1; 1 |]; mpi_grid = [| 3; 1; 1 |]; depth = 1 } in
  Alcotest.(check (array int)) "ceil division" [| 86; 128; 128 |]
    (Params.subgrid c ~global:dims)

(* --- Anneal --- *)

let anneal_finds_quadratic_minimum () =
  let rng = Prng.create 3 in
  let result =
    Anneal.minimize ~rng ~init:50.0
      ~neighbor:(fun rng x -> x +. ((Prng.uniform rng -. 0.5) *. 4.0))
      ~energy:(fun x -> (x -. 7.0) ** 2.0)
      ~iterations:5000 ()
  in
  check_bool "near 7" true (Float.abs (result.Anneal.best -. 7.0) < 0.5);
  check_int "iterations recorded" 5000 result.Anneal.iterations

let anneal_never_worse_than_init () =
  let rng = Prng.create 4 in
  let result =
    Anneal.minimize ~rng ~init:1.0
      ~neighbor:(fun rng x -> x +. Prng.gaussian rng)
      ~energy:(fun x -> x *. x)
      ~iterations:200 ()
  in
  check_bool "improved or equal" true (result.Anneal.best_energy <= 1.0)

let anneal_trace_decreasing () =
  let rng = Prng.create 5 in
  let result =
    Anneal.minimize ~rng ~init:100.0
      ~neighbor:(fun rng x -> x +. ((Prng.uniform rng -. 0.5) *. 10.0))
      ~energy:Float.abs ~iterations:3000 ()
  in
  let energies = List.map snd result.Anneal.trace in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  check_bool "best-so-far never increases" true (monotone energies)

let anneal_trace_includes_tail () =
  let rng = Prng.create 6 in
  let result =
    Anneal.minimize ~rng ~init:25.0
      ~neighbor:(fun rng x -> x +. Prng.gaussian rng)
      ~energy:(fun x -> x *. x)
      ~iterations:25 ~trace_every:10 ()
  in
  (* 25 is not a multiple of 10: the trace must still close with the final
     best, not end at iteration 20. *)
  (match List.rev result.Anneal.trace with
  | (it, e) :: _ ->
      check_int "last entry at the final iteration" 25 it;
      check_float "last entry carries the returned energy" result.Anneal.best_energy e
  | [] -> Alcotest.fail "trace must not be empty");
  (* An exact multiple must not duplicate the final entry. *)
  let rng = Prng.create 6 in
  let exact =
    Anneal.minimize ~rng ~init:25.0
      ~neighbor:(fun rng x -> x +. Prng.gaussian rng)
      ~energy:(fun x -> x *. x)
      ~iterations:30 ~trace_every:10 ()
  in
  let iters = List.map fst exact.Anneal.trace in
  check_int "no duplicate tail" (List.length (List.sort_uniq compare iters))
    (List.length iters)

let anneal_deterministic () =
  let run seed =
    let rng = Prng.create seed in
    (Anneal.minimize ~rng ~init:10.0
       ~neighbor:(fun rng x -> x +. Prng.gaussian rng)
       ~energy:(fun x -> (x -. 2.0) ** 2.0)
       ~iterations:500 ())
      .Anneal.best
  in
  check_float "same seed same result" (run 9) (run 9)

(* --- Perfmodel --- *)

let fig11_make_stencil dims =
  Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "3d7pt_star")

let perfmodel_correlates_with_truth () =
  let rng = Prng.create 6 in
  let cost = Autotune.true_cost ~make_stencil:fig11_make_stencil ~global:dims in
  let plan_of = Autotune.plan_of ~make_stencil:fig11_make_stencil ~global:dims in
  let model =
    Perfmodel.train ~rng ~global:dims ~nranks ~true_cost:cost ~plan_of ()
  in
  check_bool "reasonable fit" true (Perfmodel.r_squared model > 0.4);
  (* Ranking sanity: on a fresh sample, the model orders a clearly-bad
     config after a clearly-good one. *)
  let good = { Params.tile = [| 2; 8; 64 |]; mpi_grid = [| 16; 1; 1 |]; depth = 1 } in
  let bad = { Params.tile = [| 1; 1; 1 |]; mpi_grid = [| 16; 1; 1 |]; depth = 1 } in
  check_bool "model ranks pencil-of-1 worse" true
    (Perfmodel.predict model bad > Perfmodel.predict model good)

let true_cost_penalizes_spm_overflow () =
  let cost = Autotune.true_cost ~make_stencil:fig11_make_stencil ~global:dims in
  let huge = { Params.tile = [| 64; 64; 128 |]; mpi_grid = [| 16; 1; 1 |]; depth = 1 } in
  check_float "penalty value" 1.0 (cost huge)

(* --- Full tuner --- *)

let tune_improves () =
  let r =
    Autotune.tune ~seed:123 ~iterations:4000 ~make_stencil:fig11_make_stencil
      ~global:dims ~nranks ()
  in
  check_bool "never worse" true (r.Autotune.improvement >= 1.0);
  check_bool "best time positive" true (r.Autotune.best_time_s > 0.0);
  check_bool "trace nonempty" true (List.length r.Autotune.trace > 5);
  (* The shared plan cache means revisited candidates never re-lower. *)
  check_bool "some candidates lowered" true (r.Autotune.plan_cache_misses > 0);
  check_bool "revisits served from plan cache" true (r.Autotune.plan_cache_hits > 0)

let tune_deterministic_per_seed () =
  let run () =
    (Autotune.tune ~seed:77 ~iterations:1500 ~make_stencil:fig11_make_stencil
       ~global:dims ~nranks ())
      .Autotune.best_time_s
  in
  check_float "reproducible" (run ()) (run ())

let tune_latency_bound_prefers_depth () =
  (* On a latency-bound interconnect (Tianhe-3 prototype alpha) with small
     per-rank sub-grids, the alpha term dominates and the tuner should buy
     latency amortisation with temporal-block depth > 1. *)
  let net = Msc_comm.Netmodel.tianhe3_prototype in
  let global = [| 128; 128; 128 |] in
  let r =
    Autotune.tune ~seed:5 ~iterations:2000 ~net
      ~make_stencil:fig11_make_stencil ~global ~nranks:64 ()
  in
  check_bool "tuner selects temporal depth > 1" true (r.Autotune.best.Params.depth > 1);
  (* The depth choice genuinely lowers the objective: the same config forced
     back to depth 1 must cost more. *)
  let cost = Autotune.true_cost ~net ~make_stencil:fig11_make_stencil ~global in
  check_bool "depth beats depth-1 at the optimum" true
    (cost r.Autotune.best < cost { r.Autotune.best with Params.depth = 1 })

let tune_paper_setting_converges () =
  (* The Figure 11 configuration, reduced iteration count. *)
  let r =
    Autotune.tune ~seed:11 ~iterations:6000 ~make_stencil:fig11_make_stencil
      ~global:[| 8192; 128; 128 |] ~nranks:128 ()
  in
  let r2 =
    Autotune.tune ~seed:23 ~iterations:6000 ~make_stencil:fig11_make_stencil
      ~global:[| 8192; 128; 128 |] ~nranks:128 ()
  in
  (* Both runs land close to the same optimum (paper: "converged iteration
     time across runs proves the stability"). *)
  let rel =
    Float.abs (r.Autotune.best_time_s -. r2.Autotune.best_time_s)
    /. Float.max r.Autotune.best_time_s r2.Autotune.best_time_s
  in
  check_bool "runs agree within 30%" true (rel < 0.3)

(* --- Scale-out search --- *)

let mpi_candidates_large_rank_counts () =
  (* The divisor enumeration keeps huge spaces instant and tiny: 2^14 ranks
     in 3-D is 120 ordered factorisations, not a 16k scan per level. *)
  let grids = Params.mpi_grid_candidates ~nranks:16384 ~ndim:3 in
  check_int "3-D factorisations of 2^14" 120 (List.length grids);
  List.iter
    (fun g -> check_int "product = nranks" 16384 (Array.fold_left ( * ) 1 g))
    grids;
  (* A prime count factorises only trivially: ndim axis choices. *)
  check_int "prime rank count" 2 (List.length (Params.mpi_grid_candidates ~nranks:8191 ~ndim:2))

let tune_scale_latency_bound_goes_deep () =
  let make_stencil dims =
    Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "2d9pt_star")
  in
  let best, all =
    Autotune.tune_scale ~platform:Msc_comm.Scaling.Tianhe3 ~make_stencil
      ~global:[| 2048; 2048 |] ~nranks:1024 ()
  in
  check_bool "joint space searched" true (List.length all >= 20);
  List.iter
    (fun (c : Autotune.scale_choice) ->
      check_int "grid covers ranks" 1024 (Array.fold_left ( * ) 1 c.Autotune.sc_grid))
    all;
  check_bool "ranking is best-first" true
    ((List.hd all).Autotune.sc_time_s = best.Autotune.sc_time_s);
  (* The campaign's acceptance point: on a latency-bound interconnect at
     >= 1024 ranks the tuner must leave the naive square depth-1 default —
     here the Tianhe-3 alpha bill dominates 64x64 sub-grids, so a deep
     temporal block wins by a wide margin. *)
  let non_square =
    Array.exists (fun v -> v <> best.Autotune.sc_grid.(0)) best.Autotune.sc_grid
  in
  check_bool "non-default winner" true (non_square || best.Autotune.sc_depth > 1);
  let default =
    List.find
      (fun (c : Autotune.scale_choice) ->
        c.Autotune.sc_depth = 1
        && Array.for_all (fun v -> v = c.Autotune.sc_grid.(0)) c.Autotune.sc_grid)
      all
  in
  check_bool "beats the default clearly" true
    (best.Autotune.sc_time_s *. 2.0 < default.Autotune.sc_time_s)

let suites =
  [
    ( "autotune.params",
      [
        tc "tile candidates" tile_candidates_are_powers;
        tc "mpi factorizations" mpi_candidates_factorize;
        tc "random valid" random_config_valid;
        tc "neighbor valid" neighbor_stays_valid;
        tc "subgrid ceil" subgrid_ceil;
      ] );
    ( "autotune.anneal",
      [
        tc "quadratic minimum" anneal_finds_quadratic_minimum;
        tc "never worse" anneal_never_worse_than_init;
        tc "trace decreasing" anneal_trace_decreasing;
        tc "trace includes tail" anneal_trace_includes_tail;
        tc "deterministic" anneal_deterministic;
      ] );
    ( "autotune.perfmodel",
      [
        tc "correlates" perfmodel_correlates_with_truth;
        tc "spm penalty" true_cost_penalizes_spm_overflow;
      ] );
    ( "autotune.tune",
      [
        tc "improves" tune_improves;
        tc "deterministic" tune_deterministic_per_seed;
        tc "latency-bound depth" tune_latency_bound_prefers_depth;
        tc "grid candidates at 16k ranks" mpi_candidates_large_rank_counts;
        tc "scale tuner leaves default" tune_scale_latency_bound_goes_deep;
        slow "paper setting converges" tune_paper_setting_converges;
      ] );
  ]
