(* Tests for the Plan layer: lowering metrics, tile-task partitioning
   (qcheck), plan-driven runtime parity across the whole benchmark suite,
   structural agreement between emitted C and [plan.loops], and the
   memoizing plan cache the auto-tuner relies on. *)

open Helpers
module Schedule = Msc_schedule.Schedule
module Plan = Msc_schedule.Plan
module Loopnest = Msc_schedule.Loopnest
module Codegen = Msc_codegen.Codegen
module Runtime = Msc_exec.Runtime
module Grid = Msc_exec.Grid
module Suite = Msc_benchsuite.Suite
module Machine = Msc_machine.Machine
module Params = Msc_autotune.Params
module Autotune = Msc_autotune.Autotune

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1))
  in
  scan 0

(* First occurrence of [needle] at or after [pos]; returns the position just
   past the match so callers can assert ordering. *)
let index_from haystack pos needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    if i + n > h then None
    else if String.equal (String.sub haystack i n) needle then Some (i + n)
    else scan (i + 1)
  in
  scan pos

(* --- lowering metrics --- *)

let canonical_plan () =
  let k, st = stencil_3d7pt ~n:12 () in
  let sched = Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  let p = Plan.compile_exn ~machine:Machine.sunway_cg st sched in
  check_int "tiles" (6 * 3 * 2) p.Plan.tiles_count;
  check_int "tasks length" p.Plan.tiles_count (Array.length p.Plan.tasks);
  check_int "tile elems" (2 * 4 * 6) p.Plan.tile_elems;
  check_int "padded elems" (4 * 6 * 8) p.Plan.padded_elems;
  check_int "state streams" 2 p.Plan.n_state_streams;
  check_int "aux streams" 0 p.Plan.n_aux_streams;
  check_int "working set"
    (((2 * (4 * 6 * 8)) + (2 * 4 * 6)) * 8)
    p.Plan.working_set_bytes;
  check_bool "spm capacity from machine" true
    (p.Plan.spm_capacity_bytes = Some (64 * 1024));
  check_bool "fits spm" true (Plan.spm_fits p);
  check_bool "dma plan present" true (p.Plan.dma <> None);
  check_bool "reuse > 1" true (p.Plan.reuse_factor > 1.0);
  (match p.Plan.parallel with
  | Plan.Round_robin 64 -> ()
  | Plan.Seq | Plan.Block _ | Plan.Round_robin _ ->
      Alcotest.fail "expected Round_robin 64");
  Alcotest.(check (list int)) "outer dims canonical" [ 0; 1; 2 ] (Plan.outer_dims p)

let untiled_single_task () =
  let _, st = stencil_3d7pt ~n:10 () in
  let p = Plan.compile_exn st Schedule.empty in
  check_int "one task" 1 p.Plan.tiles_count;
  let lo, hi = p.Plan.tasks.(0) in
  Alcotest.(check (array int)) "lo" [| 0; 0; 0 |] lo;
  Alcotest.(check (array int)) "hi" [| 10; 10; 10 |] hi;
  check_bool "no machine, no capacity" true (p.Plan.spm_capacity_bytes = None);
  check_bool "fits without capacity" true (Plan.spm_fits p)

let invalid_schedule_is_error () =
  let k, st = stencil_3d7pt ~n:8 () in
  let sched = Schedule.sunway_canonical ~tile:[| 16; 2; 2 |] k in
  check_bool "tile > extent rejected" true (Result.is_error (Plan.compile st sched))

let reorder_changes_traversal () =
  let _, st = stencil_3d7pt ~n:8 () in
  let tile = [| 4; 4; 4 |] in
  let tiled = Schedule.tile Schedule.empty tile in
  let canonical =
    Schedule.reorder tiled [ "xo"; "yo"; "zo"; "xi"; "yi"; "zi" ]
  in
  let transposed =
    Schedule.reorder tiled [ "zo"; "yo"; "xo"; "xi"; "yi"; "zi" ]
  in
  let pc = Plan.compile_exn st canonical and pt = Plan.compile_exn st transposed in
  check_int "same tile count" pc.Plan.tiles_count pt.Plan.tiles_count;
  Alcotest.(check (list int)) "canonical outer dims" [ 0; 1; 2 ] (Plan.outer_dims pc);
  Alcotest.(check (list int)) "transposed outer dims" [ 2; 1; 0 ] (Plan.outer_dims pt);
  (* The second task advances the innermost *outer* axis: z canonically,
     x when the outer loops are transposed. *)
  let lo1c, _ = pc.Plan.tasks.(1) and lo1t, _ = pt.Plan.tasks.(1) in
  Alcotest.(check (array int)) "canonical advances z" [| 0; 0; 4 |] lo1c;
  Alcotest.(check (array int)) "transposed advances x" [| 4; 0; 0 |] lo1t

(* --- qcheck: the task array partitions the interior exactly --- *)

let stencil_of_dims dims =
  let open Msc_frontend.Builder in
  match dims with
  | [| m; n |] ->
      let grid = def_tensor_2d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 m n in
      two_step ~name:"prop2d" (star_kernel ~name:"S" ~radius:1 grid)
  | [| m; n; p |] ->
      let grid = def_tensor_3d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 m n p in
      two_step ~name:"prop3d" (star_kernel ~name:"S" ~radius:1 grid)
  | _ -> invalid_arg "stencil_of_dims"

let partition_arb =
  let gen =
    let open QCheck.Gen in
    int_range 2 3 >>= fun nd ->
    array_size (return nd) (int_range 3 10) >>= fun dims ->
    array_size (return nd) (int_range 1 12) >>= fun raw_tile ->
    let names = Schedule.dim_names nd in
    let axes =
      List.map (fun n -> n ^ "o") names @ List.map (fun n -> n ^ "i") names
    in
    shuffle_l axes >>= fun perm ->
    (* Legality repair: each [Xi] must come after its [Xo]; swap offending
       pairs so every shuffled nest is a valid reorder. *)
    let arr = Array.of_list perm in
    let index_of name =
      let rec find i = if String.equal arr.(i) name then i else find (i + 1) in
      find 0
    in
    List.iter
      (fun n ->
        let io = index_of (n ^ "o") and ii = index_of (n ^ "i") in
        if ii < io then begin
          arr.(ii) <- n ^ "o";
          arr.(io) <- n ^ "i"
        end)
      names;
    return (dims, raw_tile, Array.to_list arr)
  in
  let print (dims, tile, perm) =
    let arr a =
      String.concat "," (List.map string_of_int (Array.to_list a))
    in
    Printf.sprintf "dims=[%s] tile=[%s] perm=[%s]" (arr dims) (arr tile)
      (String.concat ";" perm)
  in
  QCheck.make ~print gen

let partition_prop (dims, raw_tile, perm) =
  let nd = Array.length dims in
  let tile = Array.mapi (fun d t -> min t dims.(d)) raw_tile in
  let st = stencil_of_dims dims in
  let sched = Schedule.reorder (Schedule.tile Schedule.empty tile) perm in
  match Plan.compile st sched with
  | Error msg -> QCheck.Test.fail_reportf "plan rejected: %s" msg
  | Ok p ->
      let strides = Array.make nd 1 in
      for d = nd - 2 downto 0 do
        strides.(d) <- strides.(d + 1) * dims.(d + 1)
      done;
      let total = Array.fold_left ( * ) 1 dims in
      let seen = Array.make total 0 in
      Array.iter
        (fun (lo, hi) ->
          let coord = Array.make nd 0 in
          let rec walk d =
            if d = nd then begin
              let idx = ref 0 in
              for i = 0 to nd - 1 do
                idx := !idx + (coord.(i) * strides.(i))
              done;
              seen.(!idx) <- seen.(!idx) + 1
            end
            else
              for c = lo.(d) to hi.(d) - 1 do
                coord.(d) <- c;
                walk (d + 1)
              done
          in
          walk 0)
        p.Plan.tasks;
      Array.for_all (fun c -> c = 1) seen
      && Array.length p.Plan.tasks = p.Plan.tiles_count

(* --- interior/shell split (the overlapped engine's phases) --- *)

let split_arb =
  let gen =
    let open QCheck.Gen in
    int_range 2 3 >>= fun nd ->
    array_size (return nd) (int_range 3 10) >>= fun dims ->
    array_size (return nd) (int_range 1 12) >>= fun raw_tile ->
    array_size (return nd) (pair (int_range 0 10) (int_range 0 10))
    >>= fun raw_core -> return (dims, raw_tile, raw_core)
  in
  let print (dims, tile, core) =
    let arr a = String.concat "," (List.map string_of_int (Array.to_list a)) in
    Printf.sprintf "dims=[%s] tile=[%s] core=[%s]" (arr dims) (arr tile)
      (String.concat ","
         (List.map (fun (a, b) -> Printf.sprintf "%d+%d" a b) (Array.to_list core)))
  in
  QCheck.make ~print gen

(* Property: [split_tasks] against a random (possibly empty or degenerate)
   core box partitions the tile tasks exactly — every cell appears exactly
   once across both halves, interior cells lie inside the core, shell cells
   outside it. *)
let split_partition_prop (dims, raw_tile, raw_core) =
  let nd = Array.length dims in
  let tile = Array.mapi (fun d t -> min t dims.(d)) raw_tile in
  let core_lo = Array.mapi (fun d (a, _) -> min a dims.(d)) raw_core in
  let core_hi =
    Array.mapi (fun d (_, b) -> min (core_lo.(d) + b) dims.(d)) raw_core
  in
  let st = stencil_of_dims dims in
  let sched = Schedule.tile Schedule.empty tile in
  match Plan.compile st sched with
  | Error msg -> QCheck.Test.fail_reportf "plan rejected: %s" msg
  | Ok p ->
      let interior, shell = Plan.split_tasks ~core_lo ~core_hi p.Plan.tasks in
      let strides = Array.make nd 1 in
      for d = nd - 2 downto 0 do
        strides.(d) <- strides.(d + 1) * dims.(d + 1)
      done;
      let total = Array.fold_left ( * ) 1 dims in
      let seen = Array.make total 0 in
      let ok = ref true in
      let walk ~expect_core boxes =
        Array.iter
          (fun (lo, hi) ->
            let coord = Array.make nd 0 in
            let rec go d =
              if d = nd then begin
                let idx = ref 0 in
                let in_core = ref true in
                for i = 0 to nd - 1 do
                  idx := !idx + (coord.(i) * strides.(i));
                  if coord.(i) < core_lo.(i) || coord.(i) >= core_hi.(i) then
                    in_core := false
                done;
                seen.(!idx) <- seen.(!idx) + 1;
                if !in_core <> expect_core then ok := false
              end
              else
                for c = lo.(d) to hi.(d) - 1 do
                  coord.(d) <- c;
                  go (d + 1)
                done
            in
            go 0)
          boxes
      in
      walk ~expect_core:true interior;
      walk ~expect_core:false shell;
      !ok && Array.for_all (fun c -> c = 1) seen

let interior_shell_canonical () =
  (* 8^3 grid, radius-1 star, untiled: the interior is the single [1,7)^3
     box and the shell is one slab per face. *)
  let open Msc_frontend.Builder in
  let grid = def_tensor_3d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 8 8 8 in
  let st = two_step ~name:"core3d" (star_kernel ~name:"S" ~radius:1 grid) in
  let p = Plan.compile_exn st Schedule.empty in
  let interior, shell = Plan.interior_shell p in
  check_int "one interior box" 1 (Array.length interior);
  check_int "six shell slabs" 6 (Array.length shell);
  let lo, hi = interior.(0) in
  Alcotest.(check (array int)) "core lo" [| 1; 1; 1 |] lo;
  Alcotest.(check (array int)) "core hi" [| 7; 7; 7 |] hi;
  let cells boxes =
    Array.fold_left
      (fun acc (lo, hi) ->
        acc + Array.fold_left ( * ) 1 (Array.mapi (fun d l -> hi.(d) - l) lo))
      0 boxes
  in
  check_int "cells partitioned" (8 * 8 * 8) (cells interior + cells shell)

(* --- plan-driven runtime parity over the whole suite --- *)

let runtime_parity_across_suite () =
  List.iter
    (fun (b : Suite.bench) ->
      let dims =
        if b.Suite.ndim = 2 then [| 32; 32 |] else [| 16; 16; 16 |]
      in
      let st = Suite.stencil ~dims b in
      let k = Suite.kernel_of st in
      let tile =
        Array.mapi (fun d t -> min t dims.(d)) (Schedule.default_tile k)
      in
      let run ?schedule () =
        let rt = Runtime.create ?schedule st in
        Runtime.run rt 3;
        Runtime.current rt
      in
      (* Tile traversal must not change results: the untiled sequential run
         is the pre-refactor reference every plan-driven sweep must match
         bit-for-bit. *)
      let plain = run () in
      let canonical = run ~schedule:(Schedule.sunway_canonical ~tile k) () in
      check_float (b.Suite.name ^ " canonical parity") 0.0
        (Grid.max_rel_error ~reference:plain canonical);
      let names = Schedule.dim_names b.Suite.ndim in
      let reversed_outer =
        List.rev_map (fun n -> n ^ "o") names
        @ List.map (fun n -> n ^ "i") names
      in
      let reordered =
        Schedule.reorder (Schedule.tile Schedule.empty tile) reversed_outer
      in
      let reo = run ~schedule:reordered () in
      check_float (b.Suite.name ^ " reorder parity") 0.0
        (Grid.max_rel_error ~reference:plain reo))
    Suite.all

(* --- emitted C agrees with plan.loops --- *)

let loop_header (plan : Plan.t) (l : Loopnest.loop) =
  let nd = Array.length plan.Plan.tile in
  let names = Schedule.dim_names nd in
  let vars =
    match Msc_ir.Stencil.kernels plan.Plan.stencil with
    | k :: _ -> k.Msc_ir.Kernel.index_vars
    | [] -> List.init nd (Printf.sprintf "v%d")
  in
  match l.Loopnest.role with
  | Loopnest.Full d ->
      let v = List.nth vars d in
      Printf.sprintf "for (int %s = 0; %s < N%d; ++%s)" v v d v
  | Loopnest.Outer _ ->
      let x = l.Loopnest.name in
      Printf.sprintf "for (int %s = 0; %s < %d; ++%s)" x x l.Loopnest.extent x
  | Loopnest.Inner d ->
      let x = l.Loopnest.name in
      Printf.sprintf "for (int %s = 0; %s < %d && %so * %d + %s < N%d; ++%s)" x x
        plan.Plan.tile.(d) (List.nth names d) plan.Plan.tile.(d) x d x

let check_loops_in_source ~what st sched target =
  let plan =
    Plan.compile_exn ~machine:(Codegen.machine_of_target target) st sched
  in
  let files = Codegen.generate st sched target in
  let src =
    (List.find (fun f -> Filename.check_suffix f.Codegen.name ".c") files)
      .Codegen.contents
  in
  (* Every loop of the plan appears, in plan order and with plan bounds. *)
  ignore
    (List.fold_left
       (fun pos l ->
         let header = loop_header plan l in
         match index_from src pos header with
         | Some next -> next
         | None -> Alcotest.failf "%s: missing or misordered loop %S" what header)
       0 plan.Plan.loops)

let emitted_loops_match_plan () =
  let k, st = stencil_3d7pt ~n:12 () in
  check_loops_in_source ~what:"cpu canonical" st
    (Schedule.cpu_canonical ~tile:[| 2; 4; 6 |] k)
    Codegen.Cpu;
  check_loops_in_source ~what:"openmp canonical" st
    (Schedule.matrix_canonical ~tile:[| 2; 4; 6 |] k)
    Codegen.Openmp;
  check_loops_in_source ~what:"cpu untiled" st Schedule.empty Codegen.Cpu

let athread_defines_match_plan () =
  let k, st = stencil_3d7pt ~n:12 () in
  let sched = Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  let plan = Plan.compile_exn ~machine:Machine.sunway_cg st sched in
  let files = Codegen.generate st sched Codegen.Athread in
  let slave =
    (List.find (fun f -> contains ~needle:"slave" f.Codegen.name) files)
      .Codegen.contents
  in
  Array.iteri
    (fun d t ->
      check_bool
        (Printf.sprintf "tile define T%d" d)
        true
        (contains ~needle:(Printf.sprintf "#define T%d %d" d t) slave))
    plan.Plan.tile;
  check_bool "task count define" true
    (contains ~needle:(Printf.sprintf "#define NTASKS %d" plan.Plan.tiles_count) slave);
  let cpes =
    match plan.Plan.parallel with
    | Plan.Seq -> 64
    | Plan.Block n | Plan.Round_robin n -> n
  in
  check_bool "cpe count define" true
    (contains ~needle:(Printf.sprintf "#define CPES %d" cpes) slave)

(* --- memoizing plan cache --- *)

(* --- Plan digest (the compiled-kernel cache key) --- *)

let digest_keyed_by_inputs () =
  let k, st = stencil_3d7pt ~n:12 () in
  let s1 = Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  let s2 = Schedule.sunway_canonical ~tile:[| 4; 4; 6 |] k in
  let p1 = Result.get_ok (Plan.compile st s1) in
  let p1' = Result.get_ok (Plan.compile st s1) in
  let p2 = Result.get_ok (Plan.compile st s2) in
  check_string "same inputs, same digest" p1.Plan.digest p1'.Plan.digest;
  check_int "hex md5" 32 (String.length p1.Plan.digest);
  check_bool "schedule changes the digest" true (p1.Plan.digest <> p2.Plan.digest);
  let _, st' = stencil_2d9pt_box () in
  let p3 = Result.get_ok (Plan.compile st' Schedule.empty) in
  check_bool "stencil changes the digest" true (p1.Plan.digest <> p3.Plan.digest)

let cache_memoizes () =
  let k, st = stencil_3d7pt ~n:12 () in
  let s1 = Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  let s2 = Schedule.sunway_canonical ~tile:[| 4; 4; 6 |] k in
  let c = Plan.Cache.create ~machine:Machine.sunway_cg () in
  let p1 = Result.get_ok (Plan.Cache.compile c st s1) in
  check_int "first is a miss" 1 (Plan.Cache.misses c);
  check_int "no hits yet" 0 (Plan.Cache.hits c);
  let p1' = Result.get_ok (Plan.Cache.compile c st s1) in
  check_int "not re-lowered" 1 (Plan.Cache.misses c);
  check_int "served from memo" 1 (Plan.Cache.hits c);
  check_bool "physically shared plan" true (p1 == p1');
  ignore (Plan.Cache.compile c st s2);
  check_int "distinct schedule lowers" 2 (Plan.Cache.misses c);
  let s = Plan.Cache.stats c in
  check_int "stats hits" 1 s.Plan.Cache.hits;
  check_int "stats misses" 2 s.Plan.Cache.misses

let autotune_lowers_once () =
  let make_stencil dims = Suite.stencil ~dims (Suite.find "3d7pt") in
  let global = [| 64; 64; 64 |] in
  let cache = Plan.Cache.create ~machine:Machine.sunway_cg () in
  let config = { Params.tile = [| 2; 8; 64 |]; mpi_grid = [| 4; 2; 1 |]; depth = 1 } in
  let t1 = Autotune.true_cost ~cache ~make_stencil ~global config in
  let misses_after_first = Plan.Cache.misses cache in
  check_bool "lowered at least once" true (misses_after_first >= 1);
  (* Re-evaluating the same candidate must hit the memo, not re-lower. *)
  let t2 = Autotune.true_cost ~cache ~make_stencil ~global config in
  check_float "same cost" t1 t2;
  check_int "candidate lowered at most once" misses_after_first
    (Plan.Cache.misses cache);
  check_bool "revisit served from cache" true (Plan.Cache.hits cache > 0)

let suites =
  [
    ( "plan.lower",
      [
        tc "canonical metrics" canonical_plan;
        tc "untiled single task" untiled_single_task;
        tc "invalid schedule" invalid_schedule_is_error;
        tc "reorder changes traversal" reorder_changes_traversal;
      ] );
    ( "plan.partition",
      [ qc ~count:200 "tasks cover interior exactly once" partition_arb partition_prop ]
    );
    ( "plan.split",
      [
        qc ~count:200 "interior/shell split is an exact partition" split_arb
          split_partition_prop;
        tc "canonical interior/shell" interior_shell_canonical;
      ] );
    ("plan.parity", [ tc "suite parity (plan-driven runtime)" runtime_parity_across_suite ]);
    ( "plan.codegen",
      [
        tc "emitted loops match plan" emitted_loops_match_plan;
        tc "athread defines match plan" athread_defines_match_plan;
      ] );
    ( "plan.cache",
      [
        tc "digest keyed by stencil and schedule" digest_keyed_by_inputs;
        tc "memoizes (stencil, schedule)" cache_memoizes;
        tc "autotuner lowers once" autotune_lowers_once;
      ] );
  ]
