(* Pipeline graph IR: validation, analysis, the three passes (dead-stage
   elimination, producer->consumer fusion, shared-halo merging), the staged
   runtime, and distributed execution. The load-bearing property throughout
   is bit-identity: the pass-optimized graph, executed fused and merged on
   any engine, must match naive stage-at-a-time interpretation of the
   original graph exactly. *)

open Helpers
module Expr = Msc_ir.Expr
module Tensor = Msc_ir.Tensor
module Kernel = Msc_ir.Kernel
module Stencil = Msc_ir.Stencil
module Builder = Msc_frontend.Builder
module Graph = Msc_graph.Graph
module Pass = Msc_graph.Pass
module Plan = Msc_schedule.Plan
module Schedule = Msc_schedule.Schedule
module Grid = Msc_exec.Grid
module Exec = Msc_exec.Exec
module Runtime = Msc_exec.Runtime
module Bc = Msc_exec.Bc
module Distributed = Msc_comm.Distributed
module Suite = Msc_benchsuite.Suite

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1))
  in
  scan 0

let dims = [| 16; 20 |]
let ivars = Builder.default_index_vars 2
let sp ?(halo = [| 1; 1 |]) ?(tw = 1) name = Tensor.sp ~time_window:tw ~halo name Msc_ir.Dtype.F64 dims
let stage name k = { Graph.name; stencil = Stencil.of_kernel k }

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let optimize g = Pass.apply Pass.default_pipeline g

let run_graph ?config ?bc ~steps g =
  let rt = Runtime.create_graph ?config ?bc g in
  Runtime.run rt steps;
  Runtime.current rt

let bit_equal name reference got =
  check_bool name true (Grid.max_rel_error ~reference got = 0.0)

let engines =
  [
    ("bulk", Exec.Bulk_synchronous);
    ("overlapped", Exec.Overlapped);
    (* Graphs have no temporal block to deepen: depth 1 is accepted (and
       recorded as bulk in [effective_engine]); depth > 1 raises — see
       [distributed_rejects_unmerged]. *)
    ("temporal", Exec.Temporal_blocked { depth = 1 });
  ]

(* --- Validation --- *)

let validation_rejects () =
  let src = sp "I" in
  let ta = sp "a" and tb = sp "b" in
  let ka = Builder.star_kernel ~name:"Ka" ~radius:1 tb in
  let kb = Builder.star_kernel ~name:"Kb" ~radius:1 ta in
  invalid "cycle" (fun () ->
      Graph.make ~source:src ~output:"b" [ stage "a" ka; stage "b" kb ]);
  let k_src = Builder.star_kernel ~name:"Ks" ~radius:1 src in
  invalid "duplicate names" (fun () ->
      Graph.make ~source:src ~output:"a" [ stage "a" k_src; stage "a" k_src ]);
  invalid "undefined output" (fun () ->
      Graph.make ~source:src ~output:"zz" [ stage "a" k_src ]);
  invalid "source-shadowing stage" (fun () ->
      Graph.make ~source:src ~output:"I" [ stage "I" k_src ]);
  invalid "unknown input tensor" (fun () ->
      Graph.make ~source:src ~output:"b"
        [ stage "b" (Builder.star_kernel ~name:"Kb" ~radius:1 (sp "ghost")) ]);
  (* Output must be a sink: intermediates only hold the current step. *)
  invalid "output read by another stage" (fun () ->
      Graph.make ~source:src ~output:"a"
        [ stage "a" k_src; stage "c" (Builder.star_kernel ~name:"Kc" ~radius:1 ta) ]);
  (* Stage buffers are not stepped, so dt > 1 reads of them are meaningless. *)
  let deep = Stencil.make ~name:"deep" ~grid:{ ta with Tensor.time_window = 2 }
      (Stencil.Apply (Builder.star_kernel ~name:"Kd" ~radius:1 { ta with Tensor.time_window = 2 }, 2))
  in
  invalid "stage input at dt 2" (fun () ->
      Graph.make ~source:src ~output:"deep"
        [ stage "a" k_src; { Graph.name = "deep"; stencil = deep } ]);
  invalid "shape mismatch" (fun () ->
      let odd = Tensor.sp ~halo:[| 1; 1 |] "odd" Msc_ir.Dtype.F64 [| 16; 21 |] in
      Graph.make ~source:src ~output:"b"
        [ stage "odd" k_src; stage "b" (Builder.star_kernel ~name:"Kb" ~radius:1 odd) ])

let analysis_chain () =
  (* a <- I (r=1), b <- a (r=1), c <- b (r=1, output): extensions grow
     downstream-to-upstream, the halo covers extension + radius. *)
  let src = sp "I" in
  let g =
    Graph.make ~source:src ~output:"c"
      [
        stage "a" (Builder.star_kernel ~name:"Ka" ~radius:1 src);
        stage "b" (Builder.star_kernel ~name:"Kb" ~radius:1 (sp "a"));
        stage "c" (Builder.star_kernel ~name:"Kc" ~radius:1 (sp "b"));
      ]
  in
  Alcotest.(check (array int)) "ext a" [| 2; 2 |] (Graph.extension g "a");
  Alcotest.(check (array int)) "ext b" [| 1; 1 |] (Graph.extension g "b");
  Alcotest.(check (array int)) "ext c" [| 0; 0 |] (Graph.extension g "c");
  Alcotest.(check (array int)) "required halo" [| 3; 3 |] (Graph.required_halo g);
  check_int "sweeps/step" 3 (Graph.sweeps_per_step g);
  check_int "time window" 1 (Graph.time_window g)

let dot_export () =
  let g = Suite.pipeline ~dims "unsharp_mask" in
  let dot = Graph.to_dot g in
  let has needle = check_bool needle true (contains ~needle dot) in
  has "digraph";
  has "\"blur1\"";
  has "\"I\" -> \"blur1\"";
  has "peripheries=2"

(* --- Passes --- *)

let dead_stage_dropped () =
  let g = Suite.pipeline ~dims "unsharp_mask" in
  let g' = Pass.dead_stage_elim.Pass.run g in
  check_bool "edges dead" false (Graph.is_stage g' "edges");
  check_bool "blur1 live" true (Graph.is_stage g' "blur1");
  check_int "3 stages left" 3 (List.length g'.Graph.stages)

let unsharp_collapses () =
  let g = optimize (Suite.pipeline ~dims "unsharp_mask") in
  check_int "fused to one stage" 1 (List.length g.Graph.stages);
  check_bool "merged" true g.Graph.merged;
  Alcotest.(check (array int)) "radius 2" [| 2; 2 |]
    (Stencil.radius (Graph.output_stage g).Graph.stencil)

let harris_collapses () =
  let g = optimize (Suite.pipeline ~dims "harris_corner") in
  check_int "fused to one stage" 1 (List.length g.Graph.stages);
  check_bool "merged" true g.Graph.merged

let fuse_respects_max_radius () =
  let src = sp ~halo:[| 2; 2 |] "I" in
  let g =
    Graph.make ~source:src ~output:"b"
      [
        stage "a" (Builder.box_kernel ~name:"Ka" ~radius:2 src);
        stage "b" (Builder.box_kernel ~name:"Kb" ~radius:2 (sp ~halo:[| 2; 2 |] "a"));
      ]
  in
  let clamped = Pass.apply [ Pass.fuse ~max_radius:3 () ] g in
  check_int "r=4 compound exceeds clamp" 2 (List.length clamped.Graph.stages);
  let fused = Pass.apply [ Pass.fuse () ] g in
  check_int "default clamp admits r=4" 1 (List.length fused.Graph.stages);
  bit_equal "clamped fusion is still exact"
    (run_graph ~steps:2 g)
    (run_graph ~steps:2 (optimize g))

let merge_respects_max_width () =
  let src = sp ~halo:[| 3; 3 |] "I" in
  let g =
    Graph.make ~source:src ~output:"b"
      [
        stage "a" (Builder.box_kernel ~name:"Ka" ~radius:3 src);
        stage "b" (Builder.box_kernel ~name:"Kb" ~radius:3 (sp ~halo:[| 3; 3 |] "a"));
      ]
  in
  (* Unfused the pipeline needs halo 6 (stage a: ext 3 + r 3). *)
  Alcotest.(check (array int)) "halo 6" [| 6; 6 |] (Graph.required_halo g);
  let narrow = Pass.apply [ Pass.merge_halos ~max_width:4 () ] g in
  check_bool "halo 6 > 4 stays unmerged" false narrow.Graph.merged;
  let wide = Pass.apply [ Pass.merge_halos ~max_width:8 () ] g in
  check_bool "halo 6 <= 8 merges" true wide.Graph.merged

(* --- Bit-identity: fused vs naive stage-at-a-time --- *)

let pipelines_bit_identical () =
  List.iter
    (fun name ->
      let g = Suite.pipeline ~dims name in
      let go = optimize g in
      List.iter
        (fun (bname, bc) ->
          bit_equal
            (Printf.sprintf "%s/%s fused == naive" name bname)
            (run_graph ~bc ~steps:3 g)
            (run_graph ~bc ~steps:3 go))
        [ ("dirichlet", Bc.Dirichlet 0.0); ("periodic", Bc.Periodic) ])
    Suite.pipeline_names

let scaled_producer_exact () =
  (* Producer contributing through Scale: the fused kernel must multiply
     by the same literal the scaled writeback used. *)
  let src = sp "I" in
  let p = Builder.star_kernel ~name:"Kp" ~radius:1 src in
  let producer =
    { Graph.name = "p"; stencil = Stencil.make ~name:"p" ~grid:src (Stencil.Scale (0.75, Stencil.Apply (p, 1))) }
  in
  let consumer = stage "out" (Builder.box_kernel ~name:"Kc" ~radius:1 (sp "p")) in
  let g = Graph.make ~source:src ~output:"out" [ producer; consumer ] in
  let go = optimize g in
  check_int "fused" 1 (List.length go.Graph.stages);
  bit_equal "scaled producer" (run_graph ~steps:3 g) (run_graph ~steps:3 go)

let state_producer_exact () =
  (* An identity (State) stage fuses into a direct source read. *)
  let src = sp "I" in
  let producer =
    { Graph.name = "copy"; stencil = Stencil.make ~name:"copy" ~grid:src (Stencil.State 1) }
  in
  let consumer = stage "out" (Builder.star_kernel ~name:"Kc" ~radius:1 (sp "copy")) in
  let g = Graph.make ~source:src ~output:"out" [ producer; consumer ] in
  let go = optimize g in
  check_int "fused" 1 (List.length go.Graph.stages);
  check_bool "reads source directly" true (Graph.reads_source g (Graph.output_stage go));
  bit_equal "state producer" (run_graph ~steps:3 g) (run_graph ~steps:3 go)

let multi_term_consumer_exact () =
  (* Consumer combining the fused producer with a State term of its own
     input: fusion must refuse the input re-point, not mis-fuse it. *)
  let src = sp ~tw:2 "I" in
  let blur = stage "blur" (Builder.box_kernel ~name:"Kb" ~radius:1 src) in
  let t_blur = sp "blur" in
  let comb =
    {
      Graph.name = "out";
      stencil =
        Stencil.make ~name:"out" ~grid:t_blur
          (Stencil.Sum
             ( Stencil.Apply
                 ( Kernel.make ~name:"Kcomb" ~input:t_blur ~index_vars:ivars
                     Expr.(Binop (Mul, Fconst 0.5, read "blur" [| 0; 0 |])),
                   1 ),
               Stencil.Scale (0.5, Stencil.State 1) ))
    }
  in
  let g = Graph.make ~source:src ~output:"out" [ blur; comb ] in
  let go = optimize g in
  (* State term reads the consumer's own input (the blur buffer), so the
     producer cannot be folded away — but the run must still agree. *)
  check_int "fusion refused" 2 (List.length go.Graph.stages);
  bit_equal "multi-term consumer" (run_graph ~steps:3 g) (run_graph ~steps:3 go)

(* --- Staged plan --- *)

let buffer_reuse () =
  let g = Suite.pipeline ~dims "harris_corner" in
  match Plan.compile_graph g Schedule.empty with
  | Error m -> Alcotest.fail m
  | Ok gp ->
      check_int "nine stages" 9 (List.length gp.Plan.gp_stages);
      check_bool "buffers reused across dead intermediates" true
        (gp.Plan.gp_n_buffers <= 5);
      check_int "one exchange when merged, else per stage" 9
        gp.Plan.gp_exchanges_per_step;
      let go = optimize g in
      (match Plan.compile_graph go Schedule.empty with
      | Error m -> Alcotest.fail m
      | Ok gpo ->
          check_int "fused plan buffers" 0 gpo.Plan.gp_n_buffers;
          check_int "merged exchanges/step" 1 gpo.Plan.gp_exchanges_per_step;
          check_int "naive exchanges/step recorded" 9
            gp.Plan.gp_naive_exchanges_per_step)

(* --- Distributed --- *)

let distributed_bit_identical () =
  List.iter
    (fun name ->
      let g = optimize (Suite.pipeline ~dims:[| 18; 20 |] name) in
      List.iter
        (fun (ename, engine) ->
          List.iter
            (fun (bname, bc) ->
              List.iter
                (fun ranks_shape ->
                  let config = Exec.Config.make ~engine () in
                  check_bool
                    (Printf.sprintf "%s/%s/%s ranks %dx%d" name ename bname
                       ranks_shape.(0) ranks_shape.(1))
                    true
                    (Distributed.validate_graph ~config ~steps:3 ~bc
                       ~ranks_shape g
                    = 0.0))
                [ [| 2; 2 |]; [| 3; 2 |] ])
            [ ("dirichlet", Bc.Dirichlet 0.0); ("periodic", Bc.Periodic) ])
        engines)
    Suite.pipeline_names

let distributed_rejects_unmerged () =
  let g = Suite.pipeline ~dims "unsharp_mask" in
  invalid "unmerged multi-stage" (fun () ->
      Distributed.create_graph ~ranks_shape:[| 2; 1 |] g);
  (* Temporal depth > 1 cannot be honored for graphs (intermediates are
     recomputed per step, not stepped) — an explicit request raises instead
     of silently degrading to bulk. *)
  let gm = optimize g in
  invalid "temporal depth > 1" (fun () ->
      Distributed.create_graph
        ~config:(Exec.Config.make ~engine:(Exec.Temporal_blocked { depth = 2 }) ())
        ~ranks_shape:[| 2; 2 |] gm);
  (* ... and a single-stage graph needs no merge. *)
  let single = Graph.single (snd (stencil_2d9pt_box ())) in
  check_bool "single-stage ok" true
    (Distributed.validate_graph ~steps:2 ~ranks_shape:[| 2; 2 |] single = 0.0)

let distributed_thin_rank_rejected () =
  let g = optimize (Suite.pipeline ~dims:[| 16; 20 |] "unsharp_mask") in
  (* halo 2 > extent 1 on a 16-wide dim split 12 ways *)
  invalid "rank thinner than halo" (fun () ->
      Distributed.create_graph ~ranks_shape:[| 12; 1 |] g)

(* --- qcheck: random DAGs, all engines --- *)

type stage_kind = K_star | K_deriv | K_square | K_ident | K_scaled | K_two_term

let kind_of_int = function
  | 0 -> K_star
  | 1 -> K_deriv
  | 2 -> K_square
  | 3 -> K_ident
  | 4 -> K_scaled
  | _ -> K_two_term

let build_random_graph (m, n, picks) =
  let rdims = [| m; n |] in
  let sp name = Tensor.sp ~time_window:2 ~halo:[| 1; 1 |] name Msc_ir.Dtype.F64 rdims in
  let src = sp "I" in
  let nstages = List.length picks in
  let stages =
    List.mapi
      (fun i (kind, input_pick) ->
        let name = Printf.sprintf "s%d" i in
        let input_name =
          if i = 0 || input_pick mod (i + 1) = 0 then "I"
          else Printf.sprintf "s%d" (input_pick mod i)
        in
        let input = sp input_name in
        let kname = "K_" ^ name in
        let stencil =
          match kind_of_int kind with
          | K_star -> Stencil.of_kernel (Builder.star_kernel ~name:kname ~radius:1 input)
          | K_deriv ->
              Stencil.of_kernel
                (Kernel.make ~name:kname ~input ~index_vars:ivars
                   Expr.(
                     Binop
                       ( Sub,
                         Binop (Mul, Fconst 0.5, read input_name [| 0; 1 |]),
                         Binop (Mul, Fconst 0.5, read input_name [| 0; -1 |]) )))
          | K_square ->
              Stencil.of_kernel
                (Kernel.make ~name:kname ~input ~index_vars:ivars
                   Expr.(
                     Binop (Mul, read input_name [| 0; 0 |], read input_name [| 0; 0 |])))
          | K_ident -> Stencil.make ~name ~grid:input (Stencil.State 1)
          | K_scaled ->
              Stencil.make ~name ~grid:input
                (Stencil.Scale
                   (0.5, Stencil.Apply (Builder.star_kernel ~name:kname ~radius:1 input, 1)))
          | K_two_term ->
              (* Only meaningful against the stepped source: mix a kernel
                 at dt 1 with the raw state at dt 2. *)
              let input = if String.equal input_name "I" then input else src in
              Stencil.make ~name ~grid:input
                (Stencil.Sum
                   ( Stencil.Scale
                       ( 0.5,
                         Stencil.Apply
                           (Builder.star_kernel ~name:kname ~radius:1 input, 1) ),
                     Stencil.Scale (0.5, Stencil.State 2) ))
        in
        { Graph.name; stencil })
      picks
  in
  Graph.make ~source:src ~output:(Printf.sprintf "s%d" (nstages - 1)) stages

let random_graph_gen =
  QCheck.Gen.(
    int_range 10 13 >>= fun m ->
    int_range 11 14 >>= fun n ->
    int_range 2 4 >>= fun nstages ->
    list_size (return nstages) (pair (int_range 0 5) (int_range 0 97))
    >>= fun picks -> return (m, n, picks))

let random_graph_arb =
  QCheck.make
    ~print:(fun (m, n, picks) ->
      Format.asprintf "%a" Graph.pp (build_random_graph (m, n, picks)))
    random_graph_gen

let random_dag_bit_identical =
  qc ~count:12 "random DAG: passes + engines bit-identical" random_graph_arb
    (fun spec ->
      let g = build_random_graph spec in
      let go = optimize g in
      let naive = run_graph ~steps:2 g in
      Grid.max_rel_error ~reference:naive (run_graph ~steps:2 go) = 0.0
      && List.for_all
           (fun (_, engine) ->
             Distributed.validate_graph
               ~config:(Exec.Config.make ~engine ())
               ~steps:2 ~ranks_shape:[| 2; 2 |] go
             = 0.0)
           engines)

(* --- CLI smoke --- *)

let cli_path = "../bin/msc_cli.exe"

let cli_graph_smoke () =
  if not (Sys.file_exists cli_path) then ()
  else begin
    let run args =
      let tmp = Filename.temp_file "msc_graph" ".out" in
      let rc =
        Sys.command (Printf.sprintf "%s %s > %s 2>&1" cli_path args (Filename.quote tmp))
      in
      let ic = open_in tmp in
      let out = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove tmp;
      (rc, out)
    in
    let has name needle hay = check_bool name true (contains ~needle hay) in
    let rc, out = run "graph unsharp_mask --dot" in
    check_int "graph --dot exits 0" 0 rc;
    has "dot output" "digraph pipeline" out;
    has "post-pass: fused" "stages=1" out;
    let rc, out = run "graph harris --raw" in
    check_int "graph --raw exits 0" 0 rc;
    has "raw harris lists stages" "ixy" out;
    let rc, out = run "run-graph unsharp -n 2 --small" in
    check_int "run-graph exits 0" 0 rc;
    has "reports fused stage count" "stages: 4 -> 1" out;
    has "reports exchanges" "exchanges/step: 1" out;
    let rc, _ = run "graph nonsense" in
    check_bool "unknown pipeline fails" true (rc <> 0)
  end

let suites =
  [
    ( "graph.ir",
      [
        tc "validation rejects" validation_rejects;
        tc "chain analysis" analysis_chain;
        tc "dot export" dot_export;
      ] );
    ( "graph.passes",
      [
        tc "dead stage dropped" dead_stage_dropped;
        tc "unsharp collapses" unsharp_collapses;
        tc "harris collapses" harris_collapses;
        tc "fuse max radius" fuse_respects_max_radius;
        tc "merge max width" merge_respects_max_width;
      ] );
    ( "graph.bit_identity",
      [
        tc "suite pipelines" pipelines_bit_identical;
        tc "scaled producer" scaled_producer_exact;
        tc "state producer" state_producer_exact;
        tc "multi-term consumer" multi_term_consumer_exact;
        random_dag_bit_identical;
      ] );
    ( "graph.plan",
      [ tc "buffer reuse" buffer_reuse ] );
    ( "graph.distributed",
      [
        slow "all engines bit-identical" distributed_bit_identical;
        tc "unmerged rejected" distributed_rejects_unmerged;
        tc "thin rank rejected" distributed_thin_rank_rejected;
      ] );
    ( "graph.cli", [ tc "graph/run-graph smoke" cli_graph_smoke ] );
  ]
