(* Tests for the DSL frontend: shape generators, builder combinators, and
   the MSC surface-syntax pretty printer. *)

open Helpers
open Msc_ir
open Msc_frontend

(* --- Shapes --- *)

let star_counts () =
  check_int "3d r=1 -> 7pt" 7 (Shapes.point_count Shapes.Star ~ndim:3 ~radius:1);
  check_int "3d r=2 -> 13pt" 13 (Shapes.point_count Shapes.Star ~ndim:3 ~radius:2);
  check_int "3d r=4 -> 25pt" 25 (Shapes.point_count Shapes.Star ~ndim:3 ~radius:4);
  check_int "3d r=5 -> 31pt" 31 (Shapes.point_count Shapes.Star ~ndim:3 ~radius:5);
  check_int "2d r=2 -> 9pt" 9 (Shapes.point_count Shapes.Star ~ndim:2 ~radius:2)

let box_counts () =
  check_int "2d r=1 -> 9pt" 9 (Shapes.point_count Shapes.Box ~ndim:2 ~radius:1);
  check_int "2d r=5 -> 121pt" 121 (Shapes.point_count Shapes.Box ~ndim:2 ~radius:5);
  check_int "2d r=6 -> 169pt" 169 (Shapes.point_count Shapes.Box ~ndim:2 ~radius:6);
  check_int "3d r=1 -> 27pt" 27 (Shapes.point_count Shapes.Box ~ndim:3 ~radius:1)

let offsets_match_count () =
  List.iter
    (fun (shape, ndim, radius) ->
      check_int "offsets = count"
        (Shapes.point_count shape ~ndim ~radius)
        (List.length (Shapes.offsets shape ~ndim ~radius)))
    [
      (Shapes.Star, 2, 2); (Shapes.Star, 3, 5); (Shapes.Box, 2, 6); (Shapes.Box, 3, 2);
      (Shapes.Star, 1, 3); (Shapes.Box, 1, 1);
    ]

let offsets_centre_first () =
  List.iter
    (fun (shape, ndim, radius) ->
      match Shapes.offsets shape ~ndim ~radius with
      | centre :: _ ->
          Alcotest.(check (array int)) "centre first" (Array.make ndim 0) centre
      | [] -> Alcotest.fail "empty")
    [ (Shapes.Star, 2, 1); (Shapes.Box, 3, 1) ]

let offsets_unique () =
  let offs = Shapes.offsets Shapes.Box ~ndim:2 ~radius:3 in
  check_int "no duplicates" (List.length offs)
    (List.length (List.sort_uniq compare offs))

let offsets_within_radius () =
  List.iter
    (fun off -> Array.iter (fun o -> check_bool "bounded" true (abs o <= 4)) off)
    (Shapes.offsets Shapes.Star ~ndim:3 ~radius:4)

let star_offsets_on_axes () =
  List.iter
    (fun off ->
      let nonzero = Array.fold_left (fun n o -> if o <> 0 then n + 1 else n) 0 off in
      check_bool "at most one axis" true (nonzero <= 1))
    (Shapes.offsets Shapes.Star ~ndim:3 ~radius:3)

let shape_names () =
  check_string "3d7pt" "3d7pt_star" (Shapes.name Shapes.Star ~ndim:3 ~radius:1);
  check_string "2d121pt" "2d121pt_box" (Shapes.name Shapes.Box ~ndim:2 ~radius:5)

(* --- Builder --- *)

let builder_tensor_defaults () =
  let t = Builder.def_tensor_3d "B" Dtype.F64 4 5 6 in
  Alcotest.(check (array int)) "shape" [| 4; 5; 6 |] t.Tensor.shape;
  Alcotest.(check (array int)) "default halo 1" [| 1; 1; 1 |] t.Tensor.halo;
  check_int "default tw" 1 t.Tensor.time_window

let builder_weights_contract () =
  let w = Builder.weights ~center:0.5 9 in
  check_float "sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 w);
  check_float "center" 0.5 w.(0)

let builder_star_kernel () =
  let grid = Builder.def_tensor_2d ~halo:2 "B" Dtype.F64 8 8 in
  let k = Builder.star_kernel ~name:"K" ~radius:2 grid in
  check_int "9 points" 9 (Kernel.points k);
  check_bool "linear" true (Kernel.taps k <> None);
  (* 9 muls + 8 adds, matching Table 4's 2d9pt entry. *)
  check_int "ops" 17 (Kernel.flops_per_point k)

let builder_default_index_vars () =
  Alcotest.(check (list string)) "3d" [ "k"; "j"; "i" ] (Builder.default_index_vars 3);
  Alcotest.(check (list string)) "2d" [ "j"; "i" ] (Builder.default_index_vars 2);
  Alcotest.(check (list string)) "1d" [ "i" ] (Builder.default_index_vars 1)

let builder_two_step_window () =
  let _, st = stencil_3d7pt () in
  check_int "window" 2 (Stencil.time_window st)

let builder_halo_validated () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 8 8 in
  check_bool "radius 2 with halo 1 rejected" true
    (try ignore (Builder.star_kernel ~name:"K" ~radius:2 grid); false
     with Invalid_argument _ -> true)

(* --- Pretty --- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  scan 0

let pretty_program_structure () =
  let _, st = stencil_3d7pt () in
  let src = Pretty.program ~mpi_shape:[| 4; 4; 4 |] st in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle src))
    [
      "DefTensor3D_TimeWin";
      "DefVar(k, i32)";
      "Kernel S_3d7pt";
      "Res[t] << ";
      "S_3d7pt[t-1]";
      "S_3d7pt[t-2]";
      "DefShapeMPI3D(shape_mpi, 4, 4, 4)";
      "st.run(1,10)";
      "compile_to_source_code";
    ]

let pretty_includes_schedule_lines () =
  let k, st = stencil_3d7pt () in
  let sched = Msc_schedule.Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  let lines = Msc_schedule.Schedule.to_msc_lines sched ~kernel_name:"S_3d7pt" in
  let src = Pretty.program ~schedule_lines:lines st in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle src))
    [ "S_3d7pt.tile("; "S_3d7pt.reorder("; "S_3d7pt.parallel(xo, 64)";
      "S_3d7pt.cache_read("; "S_3d7pt.compute_at(" ]

let pretty_loc_counts_nonempty () =
  check_int "counts lines" 2 (Pretty.loc "a\n\nb\n");
  check_int "ignores comments" 1 (Pretty.loc "// c\nx\n")

let pretty_wave_uses_state_syntax () =
  let st = stencil_wave2d () in
  let src = Pretty.program st in
  check_bool "U[t-2] appears" true (contains ~needle:"U[t-2]" src)

let suites =
  [
    ( "frontend.shapes",
      [
        tc "star counts" star_counts;
        tc "box counts" box_counts;
        tc "offsets match count" offsets_match_count;
        tc "centre first" offsets_centre_first;
        tc "unique" offsets_unique;
        tc "within radius" offsets_within_radius;
        tc "star on axes" star_offsets_on_axes;
        tc "names" shape_names;
      ] );
    ( "frontend.builder",
      [
        tc "tensor defaults" builder_tensor_defaults;
        tc "weights contract" builder_weights_contract;
        tc "star kernel" builder_star_kernel;
        tc "index vars" builder_default_index_vars;
        tc "two-step window" builder_two_step_window;
        tc "halo validated" builder_halo_validated;
      ] );
    ( "frontend.pretty",
      [
        tc "program structure" pretty_program_structure;
        tc "schedule lines" pretty_includes_schedule_lines;
        tc "loc counting" pretty_loc_counts_nonempty;
        tc "wave state syntax" pretty_wave_uses_state_syntax;
      ] );
  ]
