(* Tests for boundary conditions (Dirichlet / periodic / reflect): the halo
   refresh itself, runtime-vs-reference agreement, conservation laws,
   distributed equivalence (including wrap-around exchanges), and compiled
   generated C. *)

open Helpers
open Msc_frontend
module Bc = Msc_exec.Bc
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Verify = Msc_exec.Verify
module Distributed = Msc_comm.Distributed
module Codegen = Msc_codegen.Codegen
module Schedule = Msc_schedule.Schedule

(* --- Bc.apply mechanics --- *)

let dirichlet_fills_constant () =
  let g = Grid.create ~shape:[| 3; 3 |] ~halo:[| 1; 1 |] in
  Grid.fill g (fun _ -> 9.0);
  Bc.apply (Bc.Dirichlet 2.5) g;
  check_float "face" 2.5 (Grid.get g [| -1; 0 |]);
  check_float "corner" 2.5 (Grid.get g [| -1; -1 |]);
  check_float "interior untouched" 9.0 (Grid.get g [| 1; 1 |])

let periodic_wraps () =
  let g = Grid.create ~shape:[| 4 |] ~halo:[| 2 |] in
  Grid.fill g (fun c -> float_of_int (c.(0) + 1));
  Bc.apply Bc.Periodic g;
  check_float "left wraps to right" 4.0 (Grid.get g [| -1 |]);
  check_float "left-2 wraps" 3.0 (Grid.get g [| -2 |]);
  check_float "right wraps to left" 1.0 (Grid.get g [| 4 |]);
  check_float "right+1 wraps" 2.0 (Grid.get g [| 5 |])

let periodic_corners_compose () =
  let g = Grid.create ~shape:[| 3; 3 |] ~halo:[| 1; 1 |] in
  Grid.fill g (fun c -> float_of_int ((c.(0) * 3) + c.(1)));
  Bc.apply Bc.Periodic g;
  (* corner (-1,-1) wraps to (2,2) = 8 *)
  check_float "corner wrap" 8.0 (Grid.get g [| -1; -1 |]);
  check_float "opposite corner" 0.0 (Grid.get g [| 3; 3 |])

let reflect_mirrors () =
  let g = Grid.create ~shape:[| 4 |] ~halo:[| 2 |] in
  Grid.fill g (fun c -> float_of_int (c.(0) + 1));
  Bc.apply Bc.Reflect g;
  check_float "-1 mirrors 0" 1.0 (Grid.get g [| -1 |]);
  check_float "-2 mirrors 1" 2.0 (Grid.get g [| -2 |]);
  check_float "n mirrors n-1" 4.0 (Grid.get g [| 4 |]);
  check_float "n+1 mirrors n-2" 3.0 (Grid.get g [| 5 |])

let masks_limit_application () =
  let g = Grid.create ~shape:[| 3 |] ~halo:[| 1 |] in
  Grid.fill g (fun c -> float_of_int c.(0));
  Grid.set g [| -1 |] 42.0;
  Grid.set g [| 3 |] 42.0;
  (* Only the high face is physical. *)
  Bc.apply ~low:[| false |] ~high:[| true |] (Bc.Dirichlet 0.0) g;
  check_float "low face untouched" 42.0 (Grid.get g [| -1 |]);
  check_float "high face applied" 0.0 (Grid.get g [| 3 |])

let wide_halo_rejected_for_wrap () =
  let g = Grid.create ~shape:[| 2 |] ~halo:[| 3 |] in
  check_bool "halo wider than interior" true
    (try Bc.apply Bc.Periodic g; false with Invalid_argument _ -> true)

let mapped_coord_cases () =
  check_bool "in range id" true (Bc.mapped_coord Bc.Periodic ~extent:5 2 = Some 2);
  check_bool "dirichlet none" true (Bc.mapped_coord (Bc.Dirichlet 1.0) ~extent:5 (-1) = None);
  check_bool "periodic" true (Bc.mapped_coord Bc.Periodic ~extent:5 (-1) = Some 4);
  check_bool "reflect" true (Bc.mapped_coord Bc.Reflect ~extent:5 6 = Some 3)

(* --- Runtime vs reference under each BC --- *)

let runtime_matches_reference_under_bcs () =
  List.iter
    (fun bc ->
      let _, st = stencil_3d7pt ~n:10 () in
      let r = Verify.check ~bc ~steps:4 st in
      check_bool (Format.asprintf "%a" Bc.pp bc) true (r.Verify.max_rel_error = 0.0))
    [ Bc.Dirichlet 0.0; Bc.Dirichlet 1.0; Bc.Periodic; Bc.Reflect ]

let periodic_conserves_mass () =
  (* Weights sum to 1 and the domain is closed: the interior sum is exactly
     conserved under a periodic single-step stencil. *)
  let grid = Builder.def_tensor_2d ~time_window:1 ~halo:1 "B" Msc_ir.Dtype.F64 12 12 in
  let k = Builder.star_kernel ~name:"S" ~radius:1 grid in
  let st = Builder.single_step ~name:"mass" k in
  let rt = Runtime.create ~bc:Bc.Periodic ~init:bumpy_init st in
  let before = Grid.checksum (Runtime.current rt) in
  Runtime.run rt 10;
  let after = Grid.checksum (Runtime.current rt) in
  check_bool "sum conserved" true (Float.abs (before -. after) < 1e-9 *. Float.abs before)

let dirichlet_leaks_mass () =
  (* Zero boundaries absorb: the sum must strictly decrease. *)
  let grid = Builder.def_tensor_2d ~time_window:1 ~halo:1 "B" Msc_ir.Dtype.F64 12 12 in
  let k = Builder.star_kernel ~name:"S" ~radius:1 grid in
  let st = Builder.single_step ~name:"leak" k in
  let rt = Runtime.create ~bc:(Bc.Dirichlet 0.0) ~init:(fun _ _ -> 1.0) st in
  let before = Grid.checksum (Runtime.current rt) in
  Runtime.run rt 10;
  check_bool "mass lost at boundary" true (Grid.checksum (Runtime.current rt) < before)

let reflect_conserves_mass () =
  (* Zero-flux mirrors also conserve the sum for a symmetric stencil. *)
  let grid = Builder.def_tensor_2d ~time_window:1 ~halo:1 "B" Msc_ir.Dtype.F64 12 12 in
  let k = Builder.star_kernel ~name:"S" ~radius:1 grid in
  let st = Builder.single_step ~name:"flux" k in
  let rt = Runtime.create ~bc:Bc.Reflect ~init:bumpy_init st in
  let before = Grid.checksum (Runtime.current rt) in
  Runtime.run rt 10;
  let after = Grid.checksum (Runtime.current rt) in
  check_bool "sum conserved" true (Float.abs (before -. after) < 1e-9 *. Float.abs before)

let bcs_differ () =
  (* Conservative BCs can share the same total mass, so compare the fields
     pointwise rather than by checksum. *)
  let mk bc =
    let _, st = stencil_2d9pt_box ~m:10 ~n:10 () in
    let rt = Runtime.create ~bc ~init:bumpy_init st in
    Runtime.run rt 4;
    Runtime.current rt
  in
  let d = mk (Bc.Dirichlet 0.0) and p = mk Bc.Periodic and r = mk Bc.Reflect in
  check_bool "dirichlet <> periodic" true (Grid.max_rel_error ~reference:d p > 1e-9);
  check_bool "periodic <> reflect" true (Grid.max_rel_error ~reference:p r > 1e-9)

(* --- Distributed --- *)

let distributed_bcs_exact () =
  List.iter
    (fun (bc, shape) ->
      let _, st = stencil_3d7pt ~n:12 () in
      let err = Distributed.validate ~bc ~steps:4 ~ranks_shape:shape st in
      check_float (Format.asprintf "%a" Bc.pp bc) 0.0 err)
    [
      (Bc.Dirichlet 0.5, [| 2; 2; 2 |]);
      (Bc.Reflect, [| 2; 2; 2 |]);
      (Bc.Periodic, [| 2; 2; 2 |]);
      (Bc.Periodic, [| 1; 2; 2 |]) (* self-wrap along dimension 0 *);
    ]

let distributed_periodic_box_corners () =
  let _, st = stencil_2d9pt_box ~m:12 ~n:16 () in
  check_float "wrap + corners" 0.0
    (Distributed.validate ~bc:Bc.Periodic ~steps:4 ~ranks_shape:[| 2; 2 |] st)

let distributed_periodic_message_count () =
  (* Every rank has a neighbour in every direction under wrap-around. *)
  let _, st = stencil_3d7pt ~n:12 () in
  let dist = Distributed.create ~bc:Bc.Periodic ~ranks_shape:[| 2; 2; 2 |] st in
  let mpi = Distributed.mpi dist in
  let before = Msc_comm.Mpi_sim.messages_sent mpi in
  Distributed.step dist;
  (* 8 ranks x 6 faces, none missing. *)
  check_int "48 messages" (before + 48) (Msc_comm.Mpi_sim.messages_sent mpi)

(* --- Codegen --- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  scan 0

let codegen_emits_bc () =
  let k, st = stencil_2d9pt_box ~m:12 ~n:12 () in
  let sched = Schedule.cpu_canonical ~tile:[| 4; 6 |] ~threads:2 k in
  let src bc =
    (List.hd (Codegen.generate ~bc st sched Codegen.Cpu)).Codegen.contents
  in
  check_bool "trivial bc: no pass" false (contains ~needle:"msc_apply_bc" (src (Bc.Dirichlet 0.0)));
  check_bool "periodic pass" true (contains ~needle:"msc_apply_bc" (src Bc.Periodic));
  check_bool "reflect mapping" true (contains ~needle:"2 * N0" (src Bc.Reflect))

let codegen_bc_roundtrip bc () =
  if Codegen.Toolchain.available () then begin
    let k, st = stencil_2d9pt_box ~m:12 ~n:14 () in
    let sched = Schedule.cpu_canonical ~tile:[| 5; 6 |] ~threads:2 k in
    let rt = Runtime.create ~bc st in
    Runtime.run rt 4;
    let expected = Grid.checksum (Runtime.current rt) in
    let files = Codegen.generate ~steps:4 ~bc st sched Codegen.Cpu in
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "msc_test_bc_%s" (Format.asprintf "%a" Bc.pp bc))
    in
    match Codegen.Toolchain.compile_and_run ~steps:4 ~dir files with
    | Ok r ->
        let rel =
          Float.abs (r.Codegen.Toolchain.checksum -. expected)
          /. Float.max 1.0 (Float.abs expected)
        in
        check_bool "compiled C matches interpreter" true (rel < 1e-12)
    | Error msg -> Alcotest.fail msg
  end

let athread_rejects_nontrivial_bc () =
  let k, st = stencil_3d7pt ~n:12 () in
  let sched = Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  check_bool "rejected with clear error" true
    (try ignore (Codegen.generate ~bc:Bc.Periodic st sched Codegen.Athread); false
     with Invalid_argument _ -> true)

(* --- Property: fast segment-blit apply == per-cell reference walker --- *)

let fast_apply_matches_reference =
  qc ~count:200 "Bc.apply == Bc.apply_reference on random geometry"
    QCheck.(
      quad (int_range 1 3) (int_range 0 2) (int_range 0 3)
        (pair small_int small_int))
    (fun (nd, which, seed, (mask_bits, shape_seed)) ->
      let bc =
        match which with
        | 0 -> Bc.Dirichlet 1.25
        | 1 -> Bc.Periodic
        | _ -> Bc.Reflect
      in
      let shape =
        Array.init nd (fun d -> 2 + ((shape_seed + (3 * d) + seed) mod 6))
      in
      (* Periodic/Reflect require halo <= extent. *)
      let halo = Array.map (fun n -> 1 + ((n - 1) mod 3)) shape in
      let mask i = Array.init nd (fun d -> (mask_bits lsr (i + (2 * d))) land 1 = 1) in
      let low = mask 0 and high = mask 1 in
      let fill g =
        Grid.fill_all g 0.0;
        Grid.fill g (fun c ->
            float_of_int
              (Array.fold_left ( + ) seed (Array.mapi (fun d x -> (d + 2) * x) c))
            *. 0.125)
      in
      let a = Grid.create ~shape ~halo in
      let b = Grid.create ~shape ~halo in
      fill a;
      fill b;
      Bc.apply ~low ~high bc a;
      Bc.apply_reference ~low ~high bc b;
      a.Grid.data = b.Grid.data)

let bc_property =
  qc ~count:15 "runtime == reference under random BCs and tiles"
    QCheck.(triple (int_range 0 2) (int_range 2 7) (int_range 2 7))
    (fun (which, tx, ty) ->
      let bc =
        match which with
        | 0 -> Bc.Dirichlet 0.7
        | 1 -> Bc.Periodic
        | _ -> Bc.Reflect
      in
      let k, st = stencil_2d9pt_box ~m:9 ~n:11 () in
      let sched = Schedule.matrix_canonical ~tile:[| tx; ty |] ~threads:2 k in
      (Verify.check ~schedule:sched ~bc ~steps:3 st).Verify.max_rel_error = 0.0)

let suites =
  [
    ( "bc.apply",
      [
        tc "dirichlet constant" dirichlet_fills_constant;
        tc "periodic wraps" periodic_wraps;
        tc "periodic corners" periodic_corners_compose;
        tc "reflect mirrors" reflect_mirrors;
        tc "masks" masks_limit_application;
        tc "wide halo rejected" wide_halo_rejected_for_wrap;
        tc "mapped coord" mapped_coord_cases;
        fast_apply_matches_reference;
      ] );
    ( "bc.runtime",
      [
        tc "matches reference (all BCs)" runtime_matches_reference_under_bcs;
        tc "periodic conserves mass" periodic_conserves_mass;
        tc "dirichlet leaks mass" dirichlet_leaks_mass;
        tc "reflect conserves mass" reflect_conserves_mass;
        tc "BCs actually differ" bcs_differ;
      ] );
    ( "bc.distributed",
      [
        tc "exact under all BCs" distributed_bcs_exact;
        tc "periodic box corners" distributed_periodic_box_corners;
        tc "periodic message count" distributed_periodic_message_count;
      ] );
    ( "bc.codegen",
      [
        tc "emission" codegen_emits_bc;
        tc "dirichlet(1) roundtrip" (codegen_bc_roundtrip (Bc.Dirichlet 1.0));
        tc "periodic roundtrip" (codegen_bc_roundtrip Bc.Periodic);
        tc "reflect roundtrip" (codegen_bc_roundtrip Bc.Reflect);
        tc "athread rejects" athread_rejects_nontrivial_bc;
      ] );
    ("bc.properties", [ bc_property ]);
  ]
