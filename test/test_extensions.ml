(* Tests for the §5.6 extensions: the inspector-executor load balancer,
   double-buffered tile streaming, grid binary I/O, and the ablation
   drivers. *)

open Helpers
module Inspector = Msc_comm.Inspector
module Grid = Msc_exec.Grid
module Ssim = Msc_sunway.Sim
module Ablations = Msc_benchsuite.Ablations

(* --- Inspector --- *)

let partition_uniform_is_even () =
  let plan = Inspector.partition ~costs:(Array.make 12 1.0) ~parts:4 in
  Alcotest.(check (array int)) "even boundaries" [| 0; 3; 6; 9; 12 |]
    plan.Inspector.boundaries;
  check_float "perfect balance" 1.0 plan.Inspector.imbalance

let partition_respects_structure () =
  (* One very expensive slab must get its own rank. *)
  let costs = [| 1.0; 1.0; 100.0; 1.0; 1.0; 1.0 |] in
  let plan = Inspector.partition ~costs ~parts:3 in
  let owner =
    let rec find r = if plan.Inspector.boundaries.(r + 1) > 2 then r else find (r + 1) in
    find 0
  in
  check_float "expensive slab isolated" 100.0 plan.Inspector.rank_costs.(owner)

let partition_beats_even_on_skew () =
  let costs = Array.init 64 (fun i -> if i < 16 then 10.0 else 1.0) in
  let even = Inspector.even_plan ~costs ~parts:8 in
  let opt = Inspector.partition ~costs ~parts:8 in
  check_bool "inspector strictly better" true
    (opt.Inspector.imbalance < even.Inspector.imbalance)

let partition_validation () =
  check_bool "zero parts" true
    (try ignore (Inspector.partition ~costs:[| 1.0 |] ~parts:0); false
     with Invalid_argument _ -> true);
  check_bool "more parts than slabs" true
    (try ignore (Inspector.partition ~costs:[| 1.0 |] ~parts:2); false
     with Invalid_argument _ -> true);
  check_bool "negative cost" true
    (try ignore (Inspector.partition ~costs:[| -1.0; 1.0 |] ~parts:1); false
     with Invalid_argument _ -> true)

let partition_boundaries_cover () =
  let costs = Array.init 20 (fun i -> float_of_int ((i mod 5) + 1)) in
  let plan = Inspector.partition ~costs ~parts:6 in
  check_int "starts at 0" 0 plan.Inspector.boundaries.(0);
  check_int "ends at n" 20 plan.Inspector.boundaries.(6);
  for r = 0 to 5 do
    check_bool "non-empty ranges" true
      (plan.Inspector.boundaries.(r + 1) > plan.Inspector.boundaries.(r))
  done

let executor_extents () =
  let plan = Inspector.partition ~costs:[| 3.0; 1.0; 1.0; 1.0 |] ~parts:2 in
  let geo = Inspector.executor_ranks_extents plan ~global:[| 4; 10 |] in
  check_int "two ranks" 2 (List.length geo);
  let total = List.fold_left (fun acc (_, e) -> acc + e.(0)) 0 geo in
  check_int "dim0 covered" 4 total;
  List.iter (fun (_, e) -> check_int "other dims untouched" 10 e.(1)) geo

(* Brute force over all cut positions confirms the DP is optimal. *)
let partition_optimal_property =
  qc ~count:40 "DP partition is optimal (vs brute force, n<=8, k<=3)"
    QCheck.(pair (int_range 1 3) (list_of_size Gen.(int_range 3 8) (int_range 1 9)))
    (fun (parts, cost_list) ->
      let costs = Array.of_list (List.map float_of_int cost_list) in
      let n = Array.length costs in
      QCheck.assume (parts <= n);
      let dp = (Inspector.partition ~costs ~parts).Inspector.rank_costs in
      let dp_max = Array.fold_left Float.max 0.0 dp in
      (* Enumerate all boundary combinations. *)
      let best = ref infinity in
      let rec enumerate cuts pos =
        if List.length cuts = parts - 1 then begin
          let bounds = Array.of_list ((0 :: List.rev cuts) @ [ n ]) in
          let worst = ref 0.0 in
          for r = 0 to parts - 1 do
            let acc = ref 0.0 in
            for i = bounds.(r) to bounds.(r + 1) - 1 do
              acc := !acc +. costs.(i)
            done;
            worst := Float.max !worst !acc
          done;
          if !worst < !best then best := !worst
        end
        else
          for c = pos to n - (parts - 1 - List.length cuts) do
            enumerate (c :: cuts) (c + 1)
          done
      in
      enumerate [] 1;
      Float.abs (dp_max -. !best) < 1e-9)

(* --- Streaming (double buffer) --- *)

let streaming_never_slower () =
  List.iter
    (fun (r : Ablations.streaming_row) ->
      match r.Ablations.speedup with
      | Some s -> check_bool (r.Ablations.benchmark ^ " >= 1") true (s >= 0.999)
      | None -> ())
    (Ablations.streaming ())

let streaming_doubles_spm () =
  let b = Msc_benchsuite.Suite.find "3d7pt_star" in
  let st = Msc_benchsuite.Suite.stencil b in
  let sched = Msc_benchsuite.Settings.sunway_schedule b st in
  let plain = Result.get_ok (Ssim.simulate st sched) in
  let streamed =
    Result.get_ok
      (Ssim.simulate
         ~overrides:{ Ssim.default_overrides with Ssim.double_buffer = true }
         st sched)
  in
  check_int "2x read buffers"
    (2 * plain.Ssim.counters.Ssim.spm_read_bytes)
    streamed.Ssim.counters.Ssim.spm_read_bytes

let streaming_overflow_detected () =
  (* 2d9pt tiles fit once but not twice. *)
  let b = Msc_benchsuite.Suite.find "2d9pt_star" in
  let st = Msc_benchsuite.Suite.stencil b in
  let sched = Msc_benchsuite.Settings.sunway_schedule b st in
  check_bool "single buffering fits" true (Result.is_ok (Ssim.simulate st sched));
  check_bool "double buffering overflows" true
    (Result.is_error
       (Ssim.simulate
          ~overrides:{ Ssim.default_overrides with Ssim.double_buffer = true }
          st sched))

(* --- Grid I/O --- *)

let grid_save_load_roundtrip () =
  let g = Grid.create ~shape:[| 5; 7 |] ~halo:[| 2; 1 |] in
  Grid.fill_extended g (fun c -> float_of_int ((c.(0) * 100) + c.(1)) +. 0.125);
  let path = Filename.temp_file "msc_grid" ".bin" in
  Grid.save g path;
  let h = Grid.load path in
  Sys.remove path;
  Alcotest.(check (array int)) "shape" g.Grid.shape h.Grid.shape;
  Alcotest.(check (array int)) "halo" g.Grid.halo h.Grid.halo;
  check_float "bit-identical" 0.0 (Grid.max_rel_error ~reference:g h);
  (* Halo round-trips too. *)
  check_float "halo cell" (Grid.get g [| -2; -1 |]) (Grid.get h [| -2; -1 |])

let grid_load_rejects_garbage () =
  let path = Filename.temp_file "msc_grid" ".bin" in
  let oc = open_out_bin path in
  output_string oc "not a grid at all";
  close_out oc;
  let rejected = try ignore (Grid.load path); false with Invalid_argument _ -> true in
  Sys.remove path;
  check_bool "bad magic rejected" true rejected

let grid_load_rejects_truncation () =
  let g = Grid.create ~shape:[| 4; 4 |] ~halo:[| 1; 1 |] in
  let path = Filename.temp_file "msc_grid" ".bin" in
  Grid.save g path;
  (* Chop the last bytes off. *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic (len - 16) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  let rejected = try ignore (Grid.load path); false with Invalid_argument _ -> true in
  Sys.remove path;
  check_bool "truncation rejected" true rejected

(* --- Trace-driven cache study --- *)

let trace_tiling_wins_when_thrashing () =
  List.iter
    (fun (r : Ablations.trace_row) ->
      check_bool (r.Ablations.label ^ ": tiled beats untiled") true
        (r.Ablations.tiled_miss < r.Ablations.untiled_miss))
    (Ablations.cache_trace ())

let trace_compulsory_floor () =
  (* With a cache far larger than the grid, the only misses are compulsory:
     one per touched line. *)
  let grid = Msc_frontend.Builder.def_tensor_2d ~halo:1 "B" Msc_ir.Dtype.F64 32 32 in
  let k = Msc_frontend.Builder.star_kernel ~name:"K" ~radius:1 grid in
  let cache = Msc_matrix.Cache.Lru.create ~capacity_bytes:(1024 * 1024) () in
  let r = Msc_matrix.Trace.sweep_miss_rate ~cache k Msc_schedule.Schedule.empty in
  (* Touched: input padded (34*34) + output region lines; 8 elements per
     64 B line. Misses must be within a small factor of that floor. *)
  let lines = ((34 * 34) + (32 * 34)) / 8 in
  check_bool "near compulsory floor" true
    (r.Msc_matrix.Trace.misses < 2 * lines);
  check_bool "plenty of hits" true (r.Msc_matrix.Trace.miss_rate < 0.06)

let trace_schedule_validated () =
  let grid = Msc_frontend.Builder.def_tensor_2d ~halo:1 "B" Msc_ir.Dtype.F64 16 16 in
  let k = Msc_frontend.Builder.star_kernel ~name:"K" ~radius:1 grid in
  check_bool "illegal schedule rejected" true
    (try
       ignore
         (Msc_matrix.Trace.sweep_miss_rate k
            (Msc_schedule.Schedule.tile Msc_schedule.Schedule.empty [| 99; 1 |]));
       false
     with Invalid_argument _ -> true)

(* --- Ablation drivers --- *)

let tile_sweep_shape () =
  let rows = Ablations.tile_sweep () in
  check_bool "several feasible tiles" true (List.length rows >= 4);
  (* Pencil tiles must be slower than the Table 5 tile. *)
  let time_of tile =
    (List.find (fun (r : Ablations.tile_row) -> r.Ablations.tile = tile) rows)
      .Ablations.time_ms
  in
  check_bool "amortisation" true (time_of [| 1; 1; 64 |] > time_of [| 2; 8; 64 |])

let load_balance_shape () =
  let rows = Ablations.load_balance () in
  List.iter
    (fun (r : Ablations.imbalance_row) ->
      check_bool "inspector never worse" true
        (r.Ablations.inspected_imbalance <= r.Ablations.even_imbalance +. 1e-9))
    rows;
  let last = List.nth rows (List.length rows - 1) in
  check_bool "big win at high skew" true
    (last.Ablations.even_imbalance > 2.0 *. last.Ablations.inspected_imbalance)

let ablations_render () =
  check_bool "renders" true (String.length (Ablations.render_all ()) > 500)

let suites =
  [
    ( "extensions.inspector",
      [
        tc "uniform even" partition_uniform_is_even;
        tc "isolates hot slab" partition_respects_structure;
        tc "beats even split" partition_beats_even_on_skew;
        tc "validation" partition_validation;
        tc "boundaries cover" partition_boundaries_cover;
        tc "executor extents" executor_extents;
      ] );
    ("extensions.inspector_props", [ partition_optimal_property ]);
    ( "extensions.streaming",
      [
        tc "never slower" streaming_never_slower;
        tc "doubles spm" streaming_doubles_spm;
        tc "overflow detected" streaming_overflow_detected;
      ] );
    ( "extensions.grid_io",
      [
        tc "save/load roundtrip" grid_save_load_roundtrip;
        tc "bad magic" grid_load_rejects_garbage;
        tc "truncation" grid_load_rejects_truncation;
      ] );
    ( "extensions.cache_trace",
      [
        tc "tiling wins when thrashing" trace_tiling_wins_when_thrashing;
        tc "compulsory floor" trace_compulsory_floor;
        tc "schedule validated" trace_schedule_validated;
      ] );
    ( "extensions.ablations",
      [
        tc "tile sweep" tile_sweep_shape;
        tc "load balance" load_balance_shape;
        tc "render" ablations_render;
      ] );
  ]
