(* Entry point: aggregates every module's suites into one alcotest run. *)

let () =
  (* The suites build MPI simulators with synthetic network models; zero the
     wall-clock latency scale so no test ever sleeps out simulated message
     latency (the analytic model times are unaffected). Tests that exercise
     the sleep path restore the scale locally. *)
  Msc_comm.Netmodel.set_sim_latency_scale 0.0;
  Alcotest.run "msc"
    (Test_util.suites @ Test_ir.suites @ Test_frontend.suites
   @ Test_simplify.suites @ Test_schedule.suites @ Test_plan.suites
   @ Test_exec.suites @ Test_backend.suites @ Test_reduce.suites
   @ Test_solver.suites @ Test_codegen.suites
   @ Test_machines.suites @ Test_comm.suites @ Test_autotune.suites
   @ Test_multigrid.suites @ Test_extensions.suites @ Test_bc.suites
   @ Test_baselines.suites
   @ Test_graph.suites
   @ Test_suite.suites @ Test_pipeline.suites @ Test_trace.suites
   @ Test_fastpath.suites @ Test_misc.suites)
