(* Coverage for smaller corners: DMA transfer arithmetic, SPM allocation
   listing, loop-nest ordering details, MPI FIFO properties, network-model
   monotonicities, and an end-to-end smoke of the installed CLI binary. *)

open Helpers
module Dma = Msc_sunway.Dma
module Spm = Msc_sunway.Spm
module Mpi = Msc_comm.Mpi_sim
module Netmodel = Msc_comm.Netmodel
module Loopnest = Msc_schedule.Loopnest
module Schedule = Msc_schedule.Schedule

(* --- DMA arithmetic --- *)

let dma_combine_and_scale () =
  let a = { Dma.bytes = 100.0; descriptors = 3 } in
  let b = { Dma.bytes = 50.0; descriptors = 2 } in
  let c = Dma.combine a b in
  check_float "bytes" 150.0 c.Dma.bytes;
  check_int "descriptors" 5 c.Dma.descriptors;
  let s = Dma.scale c 2.5 in
  check_float "scaled bytes" 375.0 s.Dma.bytes;
  check_int "scaled descriptors ceil" 13 s.Dma.descriptors

let dma_no_transfer_free () =
  let e = { Dma.descriptor_latency_s = 1e-6; bandwidth_gbs = 10.0; concurrent_engines = 4 } in
  check_float "zero time" 0.0 (Dma.time e Dma.no_transfer)

(* --- SPM listing --- *)

let spm_allocations_listed () =
  let spm = Spm.create () in
  ignore (Spm.alloc spm ~name:"a" ~bytes:10);
  ignore (Spm.alloc spm ~name:"b" ~bytes:20);
  Alcotest.(check (list (pair string int)))
    "insertion order"
    [ ("a", 10); ("b", 20) ]
    (Spm.allocations spm)

(* --- Loop-nest ordering --- *)

let loopnest_transposed_not_contiguous () =
  let k, _ = stencil_3d7pt ~n:16 () in
  let sched =
    Schedule.reorder
      (Schedule.tile Schedule.empty [| 2; 4; 8 |])
      [ "zo"; "yo"; "xo"; "zi"; "yi"; "xi" ]
  in
  let nest = Loopnest.lower_exn k sched in
  (* Innermost is xi = dimension 0, not the contiguous dimension 2. *)
  check_bool "not contiguous" false (Loopnest.innermost_contiguous nest)

let loopnest_pp_smoke () =
  let k, _ = stencil_3d7pt ~n:16 () in
  let nest = Loopnest.lower_exn k (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k) in
  let s = Format.asprintf "%a" Loopnest.pp nest in
  check_bool "mentions dma" true (String.length s > 50)

(* --- MPI FIFO property --- *)

let mpi_fifo_property =
  qc ~count:50 "per-channel FIFO under interleaving"
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 0 2) small_nat))
    (fun sends ->
      let mpi = Mpi.create ~nranks:4 () in
      (* Send payload i on channel (tag t); receive everything and check each
         channel's order. *)
      List.iteri
        (fun i (tag, _) ->
          Mpi.isend mpi ~src:0 ~dst:1 ~tag (Bytes.of_string (string_of_int i)))
        sends;
      let per_tag = Hashtbl.create 4 in
      List.iteri (fun i (tag, _) -> Hashtbl.add per_tag tag i) sends;
      let ok = ref true in
      List.iter
        (fun tag ->
          let expected = List.rev (Hashtbl.find_all per_tag tag) in
          List.iter
            (fun i ->
              let got =
                Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag))
              in
              if got <> string_of_int i then ok := false)
            expected)
        [ 0; 1; 2 ];
      !ok && Mpi.pending_messages mpi = 0)

(* --- Network model monotonicities --- *)

let netmodel_monotone_in_messages () =
  List.iter
    (fun net ->
      let t k =
        Netmodel.exchange_time net ~nranks:64 ~messages_per_rank:k
          ~bytes_per_message:1e4
      in
      check_bool (net.Netmodel.name ^ " monotone") true (t 8 > t 2))
    [ Netmodel.sunway_taihulight; Netmodel.tianhe3_prototype; Netmodel.shared_memory ]

let netmodel_master_scales_with_ranks () =
  let t n =
    Netmodel.master_coordinated_time Netmodel.shared_memory ~nranks:n
      ~messages_per_rank:4 ~bytes_per_message:1e4
  in
  check_bool "4x ranks -> 4x time" true (Float.abs ((t 28 /. t 7) -. 4.0) < 1e-6)

(* --- Machine pretty-printers --- *)

let pp_smoke () =
  let b = Msc_benchsuite.Suite.find "3d7pt_star" in
  let st = Msc_benchsuite.Suite.stencil b in
  let ssched = Msc_benchsuite.Settings.sunway_schedule b st in
  (match Msc_sunway.Sim.simulate st ssched with
  | Ok r ->
      check_bool "sunway report prints" true
        (String.length (Format.asprintf "%a" Msc_sunway.Sim.pp_report r) > 20)
  | Error m -> Alcotest.fail m);
  let msched = Msc_benchsuite.Settings.matrix_schedule b st in
  match Msc_matrix.Sim.simulate st msched with
  | Ok r ->
      check_bool "matrix report prints" true
        (String.length (Format.asprintf "%a" Msc_matrix.Sim.pp_report r) > 20)
  | Error m -> Alcotest.fail m

(* --- CLI binary smoke --- *)

let cli_path = "../bin/msc_cli.exe"

let run_cli args =
  let tmp = Filename.temp_file "msc_cli" ".out" in
  let rc =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" cli_path args (Filename.quote tmp))
  in
  let ic = open_in tmp in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (rc, out)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  scan 0

let cli_smoke () =
  if not (Sys.file_exists cli_path) then ()
  else begin
    let rc, out = run_cli "list" in
    check_int "list exits 0" 0 rc;
    check_bool "lists benchmarks" true (contains ~needle:"3d7pt_star" out);
    let rc, out = run_cli "simulate -b 2d169pt_box -p sunway" in
    check_int "simulate exits 0" 0 rc;
    check_bool "compute bound" true (contains ~needle:"compute-bound" out);
    let rc, out = run_cli "experiment table4" in
    check_int "experiment exits 0" 0 rc;
    check_bool "prints table" true (contains ~needle:"2d121pt_box" out);
    let rc, _ = run_cli "experiment nonsense" in
    check_bool "unknown experiment fails" true (rc <> 0)
  end

let suites =
  [
    ( "misc.dma_spm",
      [
        tc "combine/scale" dma_combine_and_scale;
        tc "no transfer" dma_no_transfer_free;
        tc "spm allocations" spm_allocations_listed;
      ] );
    ( "misc.loopnest",
      [
        tc "transposed order" loopnest_transposed_not_contiguous;
        tc "pp" loopnest_pp_smoke;
      ] );
    ("misc.mpi_props", [ mpi_fifo_property ]);
    ( "misc.netmodel",
      [
        tc "monotone in messages" netmodel_monotone_in_messages;
        tc "master linear in ranks" netmodel_master_scales_with_ranks;
      ] );
    ("misc.pp", [ tc "sim reports" pp_smoke ]);
    ("misc.cli", [ slow "binary smoke" cli_smoke ]);
  ]
