(* The Msc_trace subsystem: span/counter recording, chrome-trace export,
   the disabled-sink fast path, and Pipeline-vs-legacy agreement. *)

open Helpers
module Trace = Msc_trace

(* --- a hand-rolled JSON syntax checker (no JSON library in the tree) --- *)

let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let fail = Stdlib.Exit in
  let expect c = if peek () = Some c then advance () else raise fail in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> raise fail
  and literal lit =
    String.iter expect lit
  and string_lit () =
    expect '"';
    let rec chars () =
      match peek () with
      | None -> raise fail
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise fail
              done
          | _ -> raise fail);
          chars ()
      | Some c when Char.code c < 0x20 -> raise fail
      | Some _ ->
          advance ();
          chars ()
    in
    chars ()
  and number () =
    let digits () =
      let start = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = start then raise fail
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> raise fail
      in
      elems ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> raise fail
      in
      members ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | done_ -> done_
  | exception Stdlib.Exit -> false

let json_checker_sanity () =
  List.iter
    (fun (ok, s) -> check_bool s ok (json_well_formed s))
    [
      (true, "[]");
      (true, {|[{"a":1,"b":[true,null,-1.5e-3]},"x\n"]|});
      (false, "[");
      (false, {|{"a":}|});
      (false, {|[1,]|});
      (false, "[1] trailing");
    ]

(* --- recording --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let span_nesting () =
  let tr = Trace.create () in
  let result =
    Trace.span tr "outer" (fun () ->
        Trace.span tr "inner" (fun () -> 41) + 1)
  in
  check_int "closure result" 42 result;
  check_int "two spans" 2 (Trace.span_count tr);
  let find name =
    List.find_map
      (function
        | Trace.Span { name = n; ts; dur; _ } when n = name -> Some (ts, dur)
        | _ -> None)
      (Trace.events tr)
    |> Option.get
  in
  let outer_ts, outer_dur = find "outer" and inner_ts, inner_dur = find "inner" in
  check_bool "inner within outer (start)" true (inner_ts >= outer_ts);
  check_bool "inner within outer (dur)" true (inner_dur <= outer_dur);
  check_bool "durations non-negative" true (inner_dur >= 0.0 && outer_dur >= 0.0)

let span_on_exception () =
  let tr = Trace.create () in
  (try Trace.span tr "boom" (fun () -> failwith "boom") with Failure _ -> ());
  check_int "span recorded despite raise" 1 (Trace.span_count tr)

let counter_aggregation () =
  let tr = Trace.create () in
  Trace.add tr "bytes" 100.0;
  Trace.add tr "bytes" 28.0;
  Trace.add tr "trials" 1.0;
  match Trace.totals tr with
  | [ b; t ] ->
      check_string "alphabetical" "bytes" b.Trace.counter;
      check_int "two increments" 2 b.Trace.count;
      check_float "summed" 128.0 b.Trace.sum;
      check_string "second" "trials" t.Trace.counter;
      check_float "unit sum" 1.0 t.Trace.sum
  | l -> Alcotest.failf "expected 2 totals, got %d" (List.length l)

let phase_aggregation () =
  let tr = Trace.create () in
  Trace.emit_span tr "a" ~dur_s:0.3;
  Trace.emit_span tr "a" ~dur_s:0.1;
  Trace.emit_span tr "b" ~dur_s:0.6;
  match Trace.phases tr with
  | [ b; a ] ->
      check_string "largest first" "b" b.Trace.phase;
      check_int "calls" 2 a.Trace.calls;
      check_float "total" 0.4 a.Trace.total_s;
      check_float "mean" 0.2 a.Trace.mean_s;
      check_float "share" 0.4 a.Trace.share
  | l -> Alcotest.failf "expected 2 phases, got %d" (List.length l)

let worker_buffers_merge () =
  let tr = Trace.create () in
  let pool = Msc_util.Domain_pool.create 3 in
  Msc_util.Domain_pool.parallel_for pool
    ~on_worker:(fun w -> Trace.attach_worker tr ~tid:w)
    ~lo:0 ~hi:64
    (fun _ -> Trace.add tr "tick" 1.0);
  match Trace.totals tr with
  | [ t ] ->
      check_string "tick" "tick" t.Trace.counter;
      check_int "all worker events merged" 64 t.Trace.count
  | l -> Alcotest.failf "expected 1 total, got %d" (List.length l)

(* --- chrome export --- *)

let chrome_json_well_formed () =
  let tr = Trace.create () in
  Trace.span tr "sweep \"q\" \\ phase" (fun () -> ());
  Trace.add tr "bytes" 12.5;
  Trace.emit_span tr "dma" ~dur_s:1e-5;
  let js = Trace.to_chrome_json tr in
  check_bool "well-formed JSON" true (json_well_formed js);
  check_bool "complete event" true (contains ~needle:{|"ph":"X"|} js);
  check_bool "counter event" true (contains ~needle:{|"ph":"C"|} js);
  check_bool "escaped name" true (contains ~needle:{|sweep \"q\" \\ phase|} js)

let chrome_json_disabled () =
  check_string "disabled exports empty array" "[]"
    (String.trim (Trace.to_chrome_json Trace.disabled))

let report_renders () =
  let tr = Trace.create () in
  Trace.emit_span tr "sweep" ~dur_s:0.25;
  Trace.add tr "sweep.points" 4096.0;
  let r = Trace.report tr in
  check_bool "phase table" true (contains ~needle:"sweep" r);
  check_bool "counter table" true (contains ~needle:"sweep.points" r)

(* --- the disabled sink --- *)

let disabled_noop () =
  let tr = Trace.disabled in
  check_bool "disabled" false (Trace.enabled tr);
  check_float "begin_span is 0" 0.0 (Trace.begin_span tr);
  Trace.end_span tr "x" 0.0;
  Trace.add tr "c" 1.0;
  Trace.emit_span tr "y" ~dur_s:1.0;
  Trace.attach_worker tr ~tid:3;
  check_int "still no events" 0 (List.length (Trace.events tr));
  check_int "result passes through" 7 (Trace.span tr "z" (fun () -> 7));
  check_bool "no phases" true (Trace.phases tr = []);
  check_bool "no totals" true (Trace.totals tr = [])

(* --- pipeline integration --- *)

let pipeline_matches_untraced () =
  let _, st = stencil_3d7pt ~n:10 () in
  let untraced =
    (* Tracing must be purely observational: a traced run agrees bit-for-bit
       with the same pipeline run without a sink. *)
    Msc.Pipeline.run ~steps:4
      (Msc.Pipeline.make ~stencil:st
         ~config:(Msc.Exec.Config.make ~pool:(Msc.Domain_pool.create 2) ())
         ())
  in
  let trace = Trace.create () in
  let p =
    Msc.Pipeline.make ~stencil:st
      ~config:(Msc.Exec.Config.make ~pool:(Msc.Domain_pool.create 2) ())
      ~trace ()
  in
  let piped = Msc.Pipeline.run ~steps:4 p in
  check_float "identical result" 0.0
    (Msc.Grid.max_rel_error ~reference:untraced piped);
  let phases = List.map (fun ph -> ph.Trace.phase) (Trace.phases trace) in
  List.iter
    (fun name -> check_bool name true (List.mem name phases))
    [ "sweep"; "bc.apply"; "window.rotate" ];
  let pts =
    List.find (fun t -> t.Trace.counter = "sweep.points") (Trace.totals trace)
  in
  check_float "points = 4 steps x 10^3" (4.0 *. 1000.0) pts.Trace.sum

let distributed_traces_halo () =
  let _, st = stencil_2d9pt_box () in
  let trace = Trace.create () in
  let p = Msc.Pipeline.make ~stencil:st ~trace () in
  let dist = Msc.Pipeline.distribute ~ranks_shape:[| 2; 2 |] p in
  Msc.Distributed.run dist 2;
  let phases = List.map (fun ph -> ph.Trace.phase) (Trace.phases trace) in
  List.iter
    (fun name -> check_bool name true (List.mem name phases))
    [ "halo.pack"; "halo.exchange"; "halo.unpack"; "halo.window"; "sweep" ];
  (* Spans carry the rank as tid: a 2x2 grid must show ranks 0..3. *)
  let tids =
    List.filter_map
      (function Trace.Span { name = "sweep"; tid; _ } -> Some tid | _ -> None)
      (Trace.events trace)
    |> List.sort_uniq compare
  in
  check_bool "all 4 ranks traced" true (tids = [ 0; 1; 2; 3 ])

let suites =
  [
    ( "trace.record",
      [
        tc "json checker sanity" json_checker_sanity;
        tc "span nesting" span_nesting;
        tc "span on exception" span_on_exception;
        tc "counter aggregation" counter_aggregation;
        tc "phase aggregation" phase_aggregation;
        tc "worker buffers merge" worker_buffers_merge;
      ] );
    ( "trace.export",
      [
        tc "chrome json well-formed" chrome_json_well_formed;
        tc "chrome json disabled" chrome_json_disabled;
        tc "report renders" report_renders;
      ] );
    ( "trace.pipeline",
      [
        tc "disabled sink no-op" disabled_noop;
        tc "pipeline matches untraced" pipeline_matches_untraced;
        tc "distributed traces halo" distributed_traces_halo;
      ] );
  ]
