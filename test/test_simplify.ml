(* Tests for the expression simplifier: rule-by-rule units, a semantics-
   preservation property over randomly generated expressions, and a
   differential fuzz of the full pipeline (random kernels: interpreter vs
   compiled generated C). *)

open Helpers
open Msc_ir
module Simplify = Msc_ir.Simplify

let b = Expr.read "B" [| 0 |]

(* --- rules --- *)

let folds_constants () =
  check_bool "2+3" true (Expr.equal (Simplify.expr Expr.(f 2.0 + f 3.0)) (Expr.f 5.0));
  check_bool "int mul" true (Expr.equal (Simplify.expr Expr.(i 4 * i 5)) (Expr.i 20));
  check_bool "mixed to float" true
    (Expr.equal (Simplify.expr Expr.(i 4 / i 8)) (Expr.f 0.5));
  check_bool "nested" true
    (Expr.equal (Simplify.expr Expr.((f 1.0 + f 2.0) * (f 2.0 + f 2.0))) (Expr.f 12.0))

let identity_rules () =
  check_bool "x+0" true (Expr.equal (Simplify.expr Expr.(b + f 0.0)) b);
  check_bool "0+x" true (Expr.equal (Simplify.expr Expr.(f 0.0 + b)) b);
  check_bool "x-0" true (Expr.equal (Simplify.expr Expr.(b - f 0.0)) b);
  check_bool "x*1" true (Expr.equal (Simplify.expr Expr.(b * f 1.0)) b);
  check_bool "1*x" true (Expr.equal (Simplify.expr Expr.(f 1.0 * b)) b);
  check_bool "x/1" true (Expr.equal (Simplify.expr Expr.(b / f 1.0)) b)

let annihilation_rules () =
  check_bool "x*0" true (Expr.equal (Simplify.expr Expr.(b * f 0.0)) (Expr.f 0.0));
  check_bool "0*x" true (Expr.equal (Simplify.expr Expr.(f 0.0 * b)) (Expr.f 0.0));
  check_bool "0/x" true (Expr.equal (Simplify.expr Expr.(f 0.0 / b)) (Expr.f 0.0))

let neg_rules () =
  check_bool "--x" true (Expr.equal (Simplify.expr (Expr.neg (Expr.neg b))) b);
  check_bool "-(3)" true (Expr.equal (Simplify.expr (Expr.neg (Expr.f 3.0))) (Expr.f (-3.0)))

let unop_folding () =
  check_bool "sqrt 9" true
    (Expr.equal (Simplify.expr (Expr.Unop (Expr.Sqrt, Expr.f 9.0))) (Expr.f 3.0));
  check_bool "min folds" true
    (Expr.equal (Simplify.expr (Expr.Binop (Expr.Min, Expr.f 2.0, Expr.f 5.0))) (Expr.f 2.0))

let leaves_opaque_terms () =
  let e = Expr.(p "c" * b) in
  check_bool "params survive" true (Expr.equal (Simplify.expr e) e)

let nested_zero_collapse () =
  (* (0 * B[0]) + (1 * B[0]) -> B[0] *)
  let e = Expr.((f 0.0 * b) + (f 1.0 * b)) in
  check_bool "collapses" true (Expr.equal (Simplify.expr e) b)

(* --- property: simplification preserves evaluation --- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf rng =
    match int_bound 4 rng with
    | 0 -> Expr.f (float_range (-4.0) 4.0 rng)
    | 1 -> Expr.i (int_range (-5) 5 rng)
    | 2 -> Expr.read "B" [| int_range (-1) 1 rng |]
    | 3 -> Expr.p "c"
    | _ -> Expr.f 0.0 (* seed plenty of zeros/ones via the next case *)
  in
  let rec node depth rng =
    if depth = 0 then leaf rng
    else begin
      let child () = node (depth - 1) rng in
      match int_bound 7 rng with
      | 0 ->
          let a = child () and b = child () in
          Expr.Binop (Expr.Add, a, b)
      | 1 ->
          let a = child () and b = child () in
          Expr.Binop (Expr.Sub, a, b)
      | 2 ->
          let a = child () and b = child () in
          Expr.Binop (Expr.Mul, a, b)
      | 3 -> Expr.neg (child ())
      | 4 ->
          let a = child () and b = child () in
          Expr.Binop (Expr.Min, a, b)
      | 5 ->
          let a = child () and b = child () in
          Expr.Binop (Expr.Max, a, b)
      | 6 -> Expr.f (if bool rng then 1.0 else 0.0)
      | _ -> leaf rng
    end
  in
  node 4

let semantics_preserved =
  qc ~count:300 "simplify preserves eval"
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun e ->
      let load (a : Expr.access) = 0.5 +. (0.25 *. float_of_int a.Expr.offsets.(0)) in
      let eval e =
        Expr.eval ~bindings:[ ("c", 1.75) ] ~load ~var:(fun _ -> 0.0) e
      in
      let original = eval e and simplified = eval (Simplify.expr e) in
      (Float.is_nan original && Float.is_nan simplified)
      || Float.abs (original -. simplified)
         <= 1e-9 *. Float.max 1.0 (Float.abs original))

let simplify_idempotent =
  qc ~count:200 "simplify is idempotent"
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun e ->
      let once = Simplify.expr e in
      Expr.equal once (Simplify.expr once))

(* --- differential fuzz: random kernels, interpreter vs compiled C --- *)

let codegen_differential_fuzz () =
  if Msc_codegen.Codegen.Toolchain.available () then begin
    let rng = Msc_util.Prng.create 20210812 in
    for case = 1 to 5 do
      let ndim = 2 + Msc_util.Prng.int rng 2 in
      let radius = 1 + Msc_util.Prng.int rng 2 in
      let dims =
        Array.init ndim (fun _ -> (2 * radius) + 4 + Msc_util.Prng.int rng 8)
      in
      let shape =
        if Msc_util.Prng.bool rng then Msc_frontend.Shapes.Star
        else Msc_frontend.Shapes.Box
      in
      let tw = 1 + Msc_util.Prng.int rng 2 in
      let grid =
        Msc_ir.Tensor.sp ~time_window:tw ~halo:(Array.make ndim radius) "B"
          Dtype.F64 dims
      in
      let kernel =
        Msc_frontend.Builder.shaped_kernel
          ~center_weight:(0.3 +. Msc_util.Prng.float rng 0.4)
          ~name:"K" ~shape ~radius grid
      in
      let st =
        if tw = 2 then Msc_frontend.Builder.two_step ~name:"fuzz" kernel
        else Msc_frontend.Builder.single_step ~name:"fuzz" kernel
      in
      let tile =
        Array.map (fun n -> 1 + Msc_util.Prng.int rng n) dims
      in
      let sched =
        Msc_schedule.Schedule.cpu_canonical ~tile
          ~threads:(1 + Msc_util.Prng.int rng 4)
          kernel
      in
      let steps = 2 + Msc_util.Prng.int rng 3 in
      let rt = Msc_exec.Runtime.create st in
      Msc_exec.Runtime.run rt steps;
      let expected = Msc_exec.Grid.checksum (Msc_exec.Runtime.current rt) in
      let files =
        Msc_codegen.Codegen.generate ~steps st sched Msc_codegen.Codegen.Cpu
      in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "msc_fuzz_%d" case)
      in
      match Msc_codegen.Codegen.Toolchain.compile_and_run ~steps ~dir files with
      | Ok r ->
          let rel =
            Float.abs (r.Msc_codegen.Codegen.Toolchain.checksum -. expected)
            /. Float.max 1.0 (Float.abs expected)
          in
          check_bool
            (Printf.sprintf "case %d (%dD %s r=%d dims=%s tile=%s tw=%d steps=%d)" case
               ndim
               (Format.asprintf "%a" Msc_frontend.Shapes.pp_shape shape)
               radius
               (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
               (String.concat "x" (Array.to_list (Array.map string_of_int tile)))
               tw steps)
            true (rel < 1e-12)
      | Error msg -> Alcotest.fail msg
    done
  end

let suites =
  [
    ( "simplify.rules",
      [
        tc "constant folding" folds_constants;
        tc "identities" identity_rules;
        tc "annihilation" annihilation_rules;
        tc "negation" neg_rules;
        tc "unops and min/max" unop_folding;
        tc "opaque terms" leaves_opaque_terms;
        tc "nested collapse" nested_zero_collapse;
      ] );
    ("simplify.properties", [ semantics_preserved; simplify_idempotent ]);
    ("simplify.fuzz", [ slow "codegen differential" codegen_differential_fuzz ]);
  ]
