(* Tests for multi-grid (variable-coefficient) stencils — the §5.6 WRF/POP2
   extension: kernels reading static coefficient grids alongside the evolving
   input grid, across the IR, interpreter (bilinear fast path vs tree),
   runtime, distributed execution, code generation and the simulators. *)

open Helpers
open Msc_ir
open Msc_frontend
module Grid = Msc_exec.Grid
module Interp = Msc_exec.Interp
module Runtime = Msc_exec.Runtime
module Verify = Msc_exec.Verify
module Schedule = Msc_schedule.Schedule
module Codegen = Msc_codegen.Codegen

let fixture ?(n = 12) ?(radius = 1) () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:radius "B" Dtype.F64 n n in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k = Builder.var_coeff_kernel ~name:"VC" ~coeff ~shape:Shapes.Star ~radius grid in
  (k, coeff, Builder.two_step ~name:"varcoef" k)

(* --- IR --- *)

let kernel_reports_multi_grid () =
  let k, coeff, _ = fixture () in
  check_bool "multi-grid" true (Kernel.is_multi_grid k);
  check_bool "aux lookup" true (Kernel.aux_tensor k "C" = Some coeff);
  check_bool "no such aux" true (Kernel.aux_tensor k "D" = None);
  check_bool "no single-grid taps" true (Kernel.taps k = None)

let kernel_counts_all_grids () =
  let k, _, _ = fixture () in
  (* 5 input reads + 5 coefficient reads. *)
  check_int "points" 10 (Kernel.points k)

let aux_shape_mismatch_rejected () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 8 8 in
  let bad = Tensor.sp ~halo:[| 1; 1 |] "C" Dtype.F64 [| 4; 4 |] in
  check_bool "shape mismatch" true
    (try
       ignore
         (Kernel.make ~aux:[ bad ] ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ]
            Expr.(read "C" [| 0; 0 |] * read "B" [| 0; 0 |]));
       false
     with Invalid_argument _ -> true)

let unknown_tensor_rejected () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 8 8 in
  check_bool "undeclared aux" true
    (try
       ignore
         (Kernel.make ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ]
            Expr.(read "C" [| 0; 0 |] * read "B" [| 0; 0 |]));
       false
     with Invalid_argument _ -> true)

let aux_offset_beyond_halo_rejected () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 8 8 in
  let coeff = Builder.coefficient_grid ~grid "C" in
  check_bool "aux halo checked" true
    (try
       ignore
         (Kernel.make ~aux:[ coeff ] ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ]
            Expr.(read "C" [| 2; 0 |] * read "B" [| 0; 0 |]));
       false
     with Invalid_argument _ -> true)

(* --- Interp --- *)

let interp_bilinear_detected () =
  let k, _, _ = fixture () in
  let geometry = Grid.of_tensor k.Kernel.input in
  let c = Interp.compile k ~geometry in
  check_bool "bilinear mode" true (Interp.is_bilinear c);
  check_bool "not taps" false (Interp.is_linear c)

let interp_bilinear_hand_value () =
  (* dst[p] = C[p] * B[p] on a 1-D grid: check one point by hand. *)
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 4 in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k =
    Kernel.make ~aux:[ coeff ] ~name:"Pointwise" ~input:grid ~index_vars:[ "i" ]
      Expr.(read "C" [| 0 |] * read "B" [| 0 |])
  in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  let cg = Grid.of_tensor coeff in
  Grid.fill src (fun coord -> float_of_int (coord.(0) + 1));
  Grid.fill cg (fun coord -> float_of_int (10 * (coord.(0) + 1)));
  Interp.apply ~aux:[ ("C", cg) ] c ~src ~dst;
  check_float "1*10 + 2*20 + 3*30 + 4*40" 300.0 (Grid.checksum dst)

let interp_missing_aux_rejected () =
  let k, _, _ = fixture () in
  let geometry = Grid.of_tensor k.Kernel.input in
  let c = Interp.compile k ~geometry in
  let src = Grid.of_tensor k.Kernel.input and dst = Grid.of_tensor k.Kernel.input in
  check_bool "missing aux" true
    (try Interp.apply c ~src ~dst; false with Invalid_argument _ -> true)

let interp_pure_aux_term () =
  (* dst[p] = C[p] + B[p]: a term with no input access. *)
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 3 in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k =
    Kernel.make ~aux:[ coeff ] ~name:"AddField" ~input:grid ~index_vars:[ "i" ]
      Expr.(read "C" [| 0 |] + read "B" [| 0 |])
  in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  check_bool "still bilinear" true (Interp.is_bilinear c);
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  let cg = Grid.of_tensor coeff in
  Grid.fill src (fun _ -> 1.0);
  Grid.fill cg (fun _ -> 2.0);
  Interp.apply ~aux:[ ("C", cg) ] c ~src ~dst;
  check_float "3 per point" 9.0 (Grid.checksum dst)

let interp_aux_product_falls_to_tree () =
  (* C[p] * D[p] * B[p] has two aux factors in one term: tree mode. *)
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 3 in
  let c1 = Builder.coefficient_grid ~grid "C" in
  let c2 = Builder.coefficient_grid ~grid "D" in
  let k =
    Kernel.make ~aux:[ c1; c2 ] ~name:"TwoCoeff" ~input:grid ~index_vars:[ "i" ]
      Expr.(read "C" [| 0 |] * read "D" [| 0 |] * read "B" [| 0 |])
  in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  check_bool "tree fallback" false (Interp.is_bilinear c || Interp.is_linear c);
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  let g1 = Grid.of_tensor c1 and g2 = Grid.of_tensor c2 in
  Grid.fill src (fun _ -> 2.0);
  Grid.fill g1 (fun _ -> 3.0);
  Grid.fill g2 (fun _ -> 5.0);
  Interp.apply ~aux:[ ("C", g1); ("D", g2) ] c ~src ~dst;
  check_float "30 per point" 90.0 (Grid.checksum dst)

(* --- Runtime vs reference (bilinear fast path vs tree evaluation) --- *)

let varcoef_matches_reference () =
  let _, _, st = fixture ~n:14 () in
  let r = Verify.check ~steps:4 st in
  check_bool "within tolerance" true r.Verify.ok

let varcoef_tiled_parallel_matches () =
  let k, _, st = fixture ~n:14 () in
  let sched = Schedule.matrix_canonical ~tile:[| 4; 6 |] ~threads:3 k in
  let pool = Msc_util.Domain_pool.create 3 in
  let r =
    Verify.check ~schedule:sched
      ~config:(Msc_exec.Exec.Config.make ~pool ())
      ~steps:4 st
  in
  check_bool "within tolerance" true r.Verify.ok

let varcoef_custom_aux_init () =
  let _, _, st = fixture ~n:10 () in
  let aux_init _name coord = 0.3 +. (0.01 *. float_of_int coord.(0)) in
  let r = Verify.check ~aux_init ~steps:3 st in
  check_bool "custom coefficients verified" true r.Verify.ok

let varcoef_aux_grids_exposed () =
  let _, _, st = fixture ~n:10 () in
  let rt = Runtime.create st in
  match Runtime.aux_grids rt with
  | [ (name, g) ] ->
      check_string "name" "C" name;
      (* fill_extended covered the halo too. *)
      check_bool "halo filled" true (Grid.get g [| -1; -1 |] <> 0.0)
  | _ -> Alcotest.fail "expected one aux grid"

let varcoef_mixed_with_states () =
  (* A damped wave over a heterogeneous medium: u[t] = 2u[t-1] - u[t-2] +
     VC(u[t-1]) exercises State terms and aux grids together. *)
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 12 12 in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k = Builder.var_coeff_kernel ~name:"VC" ~coeff ~shape:Shapes.Star ~radius:1 grid in
  let st =
    Builder.(
      stencil ~name:"hetero_wave" ~grid
        ((1.6 *: state 1) -: (0.7 *: state 2) +: (0.1 *: (k @> 1))))
  in
  let r = Verify.check ~steps:5 st in
  check_bool "within tolerance" true r.Verify.ok

(* --- Distributed --- *)

let varcoef_distributed_exact () =
  let _, _, st = fixture ~n:14 () in
  check_float "bit-identical" 0.0
    (Msc_comm.Distributed.validate ~steps:4 ~ranks_shape:[| 2; 2 |] st)

let varcoef_distributed_uneven () =
  let _, _, st = fixture ~n:13 () in
  check_float "uneven blocks" 0.0
    (Msc_comm.Distributed.validate ~steps:3 ~ranks_shape:[| 3; 2 |] st)

(* --- Codegen --- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  scan 0

let varcoef_cpu_source_structure () =
  let k, _, st = fixture () in
  let sched = Schedule.cpu_canonical ~tile:[| 4; 6 |] ~threads:2 k in
  let files = Codegen.generate st sched Codegen.Openmp in
  let src = (List.hd files).Codegen.contents in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle src))
    [ "msc_init_aux_C"; "const ELEM *restrict C"; "C[IDX("; "free(C);" ]

let varcoef_roundtrip () =
  if Codegen.Toolchain.available () then begin
    let k, _, st = fixture ~n:14 () in
    let sched = Schedule.cpu_canonical ~tile:[| 5; 6 |] ~threads:2 k in
    let rt = Runtime.create st in
    Runtime.run rt 4;
    let expected = Grid.checksum (Runtime.current rt) in
    let files = Codegen.generate ~steps:4 st sched Codegen.Cpu in
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "msc_test_varcoef" in
    match Codegen.Toolchain.compile_and_run ~steps:4 ~dir files with
    | Ok r ->
        let rel =
          Float.abs (r.Codegen.Toolchain.checksum -. expected)
          /. Float.max 1.0 (Float.abs expected)
        in
        check_bool "compiled C matches interpreter" true (rel < 1e-12)
    | Error msg -> Alcotest.fail msg
  end

let varcoef_athread_structure () =
  let k, _, st = fixture () in
  let sched = Schedule.sunway_canonical ~tile:[| 4; 6 |] k in
  let files = Codegen.generate st sched Codegen.Athread in
  let slave = List.find (fun f -> contains ~needle:"slave" f.Codegen.name) files in
  let master = List.find (fun f -> contains ~needle:"master" f.Codegen.name) files in
  check_bool "slave stages aux" true (contains ~needle:"buf_aux_C" slave.Codegen.contents);
  check_bool "master inits aux" true
    (contains ~needle:"msc_init_aux_C" master.Codegen.contents)

let varcoef_spm_accounting () =
  (* Two states + one coefficient grid = three staged buffers; a tile that
     fits two streams but not three must be rejected. *)
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 128 128 in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k = Builder.var_coeff_kernel ~name:"VC" ~coeff ~shape:Shapes.Star ~radius:1 grid in
  let st = Builder.two_step ~name:"varcoef_big" k in
  (* padded tile (34x34) * 8B = 9248 B per stream; write 32*32*8 = 8192.
     3 streams: 35936 B (fits); tile 62x62: padded 64x64*8 = 32768 * 3 +
     30752 = 129 KB (overflows). *)
  let small = Schedule.sunway_canonical ~tile:[| 32; 32 |] k in
  let big = Schedule.sunway_canonical ~tile:[| 62; 62 |] k in
  (match Msc_sunway.Sim.simulate st small with
  | Ok r -> check_int "three streamed buffers" (3 * 34 * 34 * 8) r.Msc_sunway.Sim.counters.Msc_sunway.Sim.spm_read_bytes
  | Error msg -> Alcotest.fail msg);
  check_bool "overflow detected" true (Result.is_error (Msc_sunway.Sim.simulate st big))

let varcoef_pretty_declares_aux () =
  let _, _, st = fixture () in
  let src = Pretty.program st in
  check_bool "DefTensor for C" true (contains ~needle:"DefTensor2D(C, halo_width" src)

(* --- Property: bilinear path == tree path --- *)

let bilinear_vs_tree_property =
  qc ~count:20 "bilinear fast path equals tree evaluation"
    QCheck.(pair (int_range 1 2) (int_range 6 12))
    (fun (radius, n) ->
      let n = max n ((2 * radius) + 2) in
      let grid = Builder.def_tensor_2d ~time_window:1 ~halo:radius "B" Dtype.F64 n n in
      let coeff = Builder.coefficient_grid ~grid "C" in
      let k =
        Builder.var_coeff_kernel ~name:"VC" ~coeff ~shape:Shapes.Star ~radius grid
      in
      let st = Builder.single_step ~name:"vc" k in
      (* Runtime uses the bilinear compiled path; Reference walks the tree. *)
      (Verify.check ~steps:2 st).Verify.ok)

let suites =
  [
    ( "multigrid.ir",
      [
        tc "multi-grid kernel" kernel_reports_multi_grid;
        tc "counts all grids" kernel_counts_all_grids;
        tc "aux shape mismatch" aux_shape_mismatch_rejected;
        tc "unknown tensor" unknown_tensor_rejected;
        tc "aux halo checked" aux_offset_beyond_halo_rejected;
      ] );
    ( "multigrid.interp",
      [
        tc "bilinear detected" interp_bilinear_detected;
        tc "bilinear hand value" interp_bilinear_hand_value;
        tc "missing aux rejected" interp_missing_aux_rejected;
        tc "pure aux term" interp_pure_aux_term;
        tc "two-aux product -> tree" interp_aux_product_falls_to_tree;
      ] );
    ( "multigrid.runtime",
      [
        tc "matches reference" varcoef_matches_reference;
        tc "tiled parallel" varcoef_tiled_parallel_matches;
        tc "custom aux init" varcoef_custom_aux_init;
        tc "aux grids exposed" varcoef_aux_grids_exposed;
        tc "mixed with states" varcoef_mixed_with_states;
      ] );
    ( "multigrid.distributed",
      [
        tc "distributed exact" varcoef_distributed_exact;
        tc "uneven decomposition" varcoef_distributed_uneven;
      ] );
    ( "multigrid.codegen",
      [
        tc "cpu source structure" varcoef_cpu_source_structure;
        tc "roundtrip" varcoef_roundtrip;
        tc "athread structure" varcoef_athread_structure;
        tc "spm accounting" varcoef_spm_accounting;
        tc "pretty declares aux" varcoef_pretty_declares_aux;
      ] );
    ("multigrid.properties", [ bilinear_vs_tree_property ]);
  ]
