(* Tests for the optimization primitives and loop-nest lowering. *)

open Helpers
module Schedule = Msc_schedule.Schedule
module Loopnest = Msc_schedule.Loopnest
open Msc_ir

let kernel_3d () = fst (stencil_3d7pt ~n:16 ())

(* --- primitive accumulation --- *)

let schedule_order_untiled () =
  Alcotest.(check (list string)) "dims" [ "x"; "y"; "z" ]
    (Schedule.order Schedule.empty ~ndim:3)

let schedule_order_tiled () =
  let s = Schedule.tile Schedule.empty [| 2; 4; 8 |] in
  Alcotest.(check (list string)) "split axes"
    [ "xo"; "yo"; "zo"; "xi"; "yi"; "zi" ]
    (Schedule.order s ~ndim:3)

let schedule_reorder_applied () =
  let s = Schedule.tile Schedule.empty [| 2; 4; 8 |] in
  let s = Schedule.reorder s [ "xo"; "yo"; "zo"; "zi"; "yi"; "xi" ] in
  Alcotest.(check (list string)) "custom order"
    [ "xo"; "yo"; "zo"; "zi"; "yi"; "xi" ]
    (Schedule.order s ~ndim:3)

let schedule_specs () =
  let k = kernel_3d () in
  let s = Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k in
  (match Schedule.parallel_spec s with
  | Some ("xo", 64, Schedule.Athread_cpes) -> ()
  | _ -> Alcotest.fail "parallel spec");
  (match Schedule.cache_read_spec s with
  | Some ("B", "buffer_read", Schedule.Scope_global) -> ()
  | _ -> Alcotest.fail "cache_read spec");
  (match Schedule.cache_write_spec s with
  | Some ("buffer_write", Schedule.Scope_global) -> ()
  | _ -> Alcotest.fail "cache_write spec");
  check_int "two compute_at" 2 (List.length (Schedule.compute_at_specs s))

(* --- validation --- *)

let validate_ok () =
  let k = kernel_3d () in
  match Schedule.validate (Schedule.sunway_canonical k) ~kernel:k with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let validate_tile_rank () =
  let k = kernel_3d () in
  match Schedule.validate (Schedule.tile Schedule.empty [| 4; 4 |]) ~kernel:k with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "2 sizes for 3-D kernel must fail"

let validate_tile_too_big () =
  let k = kernel_3d () in
  match Schedule.validate (Schedule.tile Schedule.empty [| 99; 4; 4 |]) ~kernel:k with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tile larger than extent must fail"

let validate_reorder_not_permutation () =
  let k = kernel_3d () in
  let s = Schedule.tile Schedule.empty [| 2; 4; 8 |] in
  match Schedule.validate (Schedule.reorder s [ "xo"; "yo"; "zo"; "xi"; "yi"; "yi" ]) ~kernel:k with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-permutation must fail"

let validate_inner_before_outer () =
  let k = kernel_3d () in
  let s = Schedule.tile Schedule.empty [| 2; 4; 8 |] in
  match
    Schedule.validate (Schedule.reorder s [ "xi"; "xo"; "yo"; "zo"; "yi"; "zi" ]) ~kernel:k
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "xi before xo must fail"

let validate_unknown_parallel_axis () =
  let k = kernel_3d () in
  match Schedule.validate (Schedule.parallel Schedule.empty "wo" 8) ~kernel:k with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown axis must fail"

let validate_compute_at_undeclared_buffer () =
  let k = kernel_3d () in
  match
    Schedule.validate (Schedule.compute_at Schedule.empty ~buffer:"ghost" ~axis:"x") ~kernel:k
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undeclared buffer must fail"

let validate_cache_read_wrong_tensor () =
  let k = kernel_3d () in
  match
    Schedule.validate (Schedule.cache_read Schedule.empty ~tensor:"A" ~buffer:"b") ~kernel:k
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong tensor must fail"

(* --- default tiles and canonical schedules --- *)

let default_tile_fits_spm () =
  (* For every suite benchmark, the Settings tile must satisfy the SPM
     capacity with the full time window. *)
  List.iter
    (fun b ->
      let st = Msc_benchsuite.Suite.stencil b in
      let sched = Msc_benchsuite.Settings.sunway_schedule b st in
      match Msc_sunway.Sim.simulate st sched with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (b.Msc_benchsuite.Suite.name ^ ": " ^ msg))
    Msc_benchsuite.Suite.all

let msc_lines_emitted () =
  let k = kernel_3d () in
  let lines =
    Schedule.to_msc_lines (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k)
      ~kernel_name:"S"
  in
  check_bool "several lines" true (List.length lines >= 7)

(* --- loop nest lowering --- *)

let lower_untiled () =
  let k = kernel_3d () in
  let nest = Loopnest.lower_exn k Schedule.empty in
  check_int "three loops" 3 (List.length nest.Loopnest.loops);
  check_int "one tile" 1 (Loopnest.tiles_count nest);
  check_bool "innermost contiguous" true (Loopnest.innermost_contiguous nest)

let lower_tiled_counts () =
  let k = kernel_3d () in
  (* grid 16^3, tile (2,4,8) -> 8*4*2 = 64 tiles *)
  let nest = Loopnest.lower_exn k (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k) in
  check_int "six loops" 6 (List.length nest.Loopnest.loops);
  check_int "tiles" 64 (Loopnest.tiles_count nest);
  check_int "tile elems" 64 (Loopnest.tile_elems nest);
  (* halo 1: (2+2)(4+2)(8+2) = 240 *)
  check_int "padded elems" 240 (Loopnest.tile_halo_elems nest)

let lower_remainder_ceil () =
  let grid = Msc_frontend.Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 10 10 in
  let k = Msc_frontend.Builder.star_kernel ~name:"K" ~radius:1 grid in
  let nest = Loopnest.lower_exn k (Msc_schedule.Schedule.matrix_canonical ~tile:[| 4; 4 |] k) in
  (* ceil(10/4) = 3 per dim *)
  check_int "ceil tiles" 9 (Loopnest.tiles_count nest)

let lower_parallel_loop () =
  let k = kernel_3d () in
  let nest = Loopnest.lower_exn k (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k) in
  match Loopnest.parallel_loop nest with
  | Some (l, 0) -> check_string "outermost xo" "xo" l.Loopnest.name
  | Some (_, d) -> Alcotest.fail (Printf.sprintf "depth %d" d)
  | None -> Alcotest.fail "no parallel loop"

let lower_dma_plan () =
  let k = kernel_3d () in
  let nest = Loopnest.lower_exn k (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k) in
  match nest.Loopnest.dma with
  | None -> Alcotest.fail "expected dma plan"
  | Some dma ->
      check_string "at innermost outer" "zo" dma.Loopnest.at_axis;
      check_int "transfer elems = padded tile" 240 dma.Loopnest.transfer_elems;
      check_int "contiguous run" ((8 + 2) * 8) dma.Loopnest.contiguous_run_bytes

let lower_working_set () =
  let k = kernel_3d () in
  let nest = Loopnest.lower_exn k (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k) in
  check_int "read+write bytes" ((240 + 64) * 8) (Loopnest.working_set_bytes nest)

let lower_reuse_factor () =
  let k = kernel_3d () in
  let nest = Loopnest.lower_exn k (Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k) in
  let reuse = Loopnest.reuse_factor nest in
  check_bool "reuse around 7*64/240" true (Float.abs (reuse -. (7.0 *. 64.0 /. 240.0)) < 1e-9)

let lower_rejects_illegal () =
  let k = kernel_3d () in
  match Loopnest.lower k (Schedule.tile Schedule.empty [| 1; 1 |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad schedule lowered"

(* --- property: schedules never change results --- *)

let random_tile_semantics =
  qc ~count:25 "tiled/reordered execution equals reference"
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 8))
    (fun (tx, ty, tz) ->
      let k, st = stencil_3d7pt ~n:8 () in
      let sched =
        Schedule.matrix_canonical ~tile:[| min tx 8; min ty 8; min tz 8 |] ~threads:2 k
      in
      let report = Msc_exec.Verify.check ~schedule:sched ~steps:3 st in
      report.Msc_exec.Verify.max_rel_error = 0.0)

let suites =
  [
    ( "schedule.primitives",
      [
        tc "untiled order" schedule_order_untiled;
        tc "tiled order" schedule_order_tiled;
        tc "reorder applied" schedule_reorder_applied;
        tc "specs" schedule_specs;
        tc "msc lines" msc_lines_emitted;
      ] );
    ( "schedule.validation",
      [
        tc "canonical ok" validate_ok;
        tc "tile rank" validate_tile_rank;
        tc "tile too big" validate_tile_too_big;
        tc "reorder permutation" validate_reorder_not_permutation;
        tc "inner before outer" validate_inner_before_outer;
        tc "unknown parallel axis" validate_unknown_parallel_axis;
        tc "undeclared buffer" validate_compute_at_undeclared_buffer;
        tc "wrong cache tensor" validate_cache_read_wrong_tensor;
        tc "settings tiles fit SPM" default_tile_fits_spm;
      ] );
    ( "schedule.loopnest",
      [
        tc "untiled" lower_untiled;
        tc "tiled counts" lower_tiled_counts;
        tc "remainder ceil" lower_remainder_ceil;
        tc "parallel loop" lower_parallel_loop;
        tc "dma plan" lower_dma_plan;
        tc "working set" lower_working_set;
        tc "reuse factor" lower_reuse_factor;
        tc "illegal rejected" lower_rejects_illegal;
      ] );
    ("schedule.properties", [ random_tile_semantics ]);
  ]
