(* Tests for grid reductions end-to-end: the Reduce op algebra and its
   deterministic tree combine, Plan's reduce lowering, the Reduction
   executor (interpreter reference, compiled fast path, pool/backend
   bit-identity), Mpi_sim's allreduce collective, the allreduce cost
   model, and Distributed.reduce across every halo engine. *)

open Helpers
module Reduce = Msc_ir.Reduce
module Reduction = Msc_exec.Reduction
module Plan = Msc_schedule.Plan
module Schedule = Msc_schedule.Schedule
module Grid = Msc_exec.Grid
module Exec = Msc_exec.Exec
module Backend = Msc_exec.Backend
module Runtime = Msc_exec.Runtime
module Mpi = Msc_comm.Mpi_sim
module Netmodel = Msc_comm.Netmodel
module Scaling = Msc_comm.Scaling
module Distributed = Msc_comm.Distributed
module Graph = Msc_graph.Graph
module Pool = Msc_util.Domain_pool
module Prng = Msc_util.Prng

let have_tool t =
  Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" t) = 0

let toolchain_for = function
  | Backend.Interp -> true
  | Backend.Native_ocaml -> have_tool "ocamlopt"
  | Backend.Compiled_c -> have_tool "cc" || have_tool "gcc"

let backends = [ Backend.Interp; Backend.Native_ocaml; Backend.Compiled_c ]
let all_ops = Reduce.all

(* --- Reduce algebra --- *)

let op_round_trip () =
  List.iter
    (fun op ->
      match Reduce.of_string (Reduce.to_string op) with
      | Some op' ->
          check_string "round trip" (Reduce.to_string op) (Reduce.to_string op')
      | None -> Alcotest.fail "of_string (to_string op) = None")
    all_ops;
  check_bool "unknown rejected" true (Reduce.of_string "median" = None)

let tree_combine_order () =
  (* Stride-doubling over the index: ((a0+a1)+(a2+a3))+a4, exactly. *)
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let expected = (1.0 +. 2.0) +. (3.0 +. 4.0) +. 5.0 in
  check_bool "pairwise tree" true
    (Reduce.tree_combine ( +. ) a = expected);
  (* The input array is not mutated. *)
  check_bool "input intact" true (a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "singleton" 7.5 (Reduce.tree_combine ( +. ) [| 7.5 |]);
  (match Reduce.tree_combine ( +. ) [||] with
  | _ -> Alcotest.fail "empty must raise"
  | exception Invalid_argument _ -> ())

let op_semantics () =
  check_float "sum point" 5.0 (Reduce.point Reduce.Sum 2.0 3.0);
  check_float "norm2 point" 11.0 (Reduce.point Reduce.Norm2 2.0 3.0);
  check_float "max_abs point" 3.0 (Reduce.point Reduce.Max_abs 2.0 (-3.0));
  check_float "dot point2" 8.0 (Reduce.point2 Reduce.Dot 2.0 2.0 3.0);
  (match Reduce.point Reduce.Dot 0.0 1.0 with
  | _ -> Alcotest.fail "unary point on Dot must raise"
  | exception Invalid_argument _ -> ());
  check_float "norm2 finalize" 3.0 (Reduce.finalize Reduce.Norm2 9.0);
  check_float "sum finalize id" 9.0 (Reduce.finalize Reduce.Sum 9.0);
  check_int "dot arity" 2 (Reduce.arity Reduce.Dot);
  check_int "sum arity" 1 (Reduce.arity Reduce.Sum);
  List.iteri
    (fun i op -> check_int "codes are stable" i (Reduce.code op))
    [ Reduce.Sum; Reduce.Dot; Reduce.Norm2; Reduce.Max_abs ]

(* --- Plan lowering --- *)

let plan_reduce_matches_tree () =
  (* Folding a plan's rp_combine levels in place must agree with
     Reduce.tree_combine over the same task partials. *)
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  let plan =
    match Plan.compile st Schedule.empty with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let rp = Plan.reduce_plan plan in
  let n = Array.length rp.Plan.rp_tasks in
  check_bool "plan has tasks" true (n >= 1);
  let partials = Array.init n (fun i -> Float.of_int ((i * 7) + 1) /. 3.0) in
  let folded = Array.copy partials in
  Array.iter
    (Array.iter (fun (dst, src) -> folded.(dst) <- folded.(dst) +. folded.(src)))
    rp.Plan.rp_combine;
  check_bool "levels reproduce tree_combine" true
    (folded.(0) = Reduce.tree_combine ( +. ) partials)

(* --- Reduction executor --- *)

let fill_grid seed (g : Grid.t) =
  let rng = Prng.create seed in
  Grid.fill_random g rng;
  (* Mix in negatives so Max_abs is non-trivial. *)
  Grid.fill g (fun c -> Grid.get g c -. 0.5)

let whole_interior_partial ~op ?with_ g =
  let nd = Array.length g.Grid.shape in
  Reduction.partial ~op ?with_ g ~lo:(Array.make nd 0)
    ~hi:(Array.copy g.Grid.shape)

let reduction_matches_reference () =
  let g = Grid.create ~shape:[| 9; 13 |] ~halo:[| 1; 1 |] in
  let h = Grid.like g in
  fill_grid 11 g;
  fill_grid 23 h;
  let t = Reduction.create g in
  List.iter
    (fun op ->
      let with_ = if Reduce.arity op = 2 then Some h else None in
      let expect =
        Reduce.finalize op (whole_interior_partial ~op ?with_ g)
      in
      check_bool (Reduce.to_string op) true
        (Reduction.run t ~op ?with_ g = expect))
    all_ops;
  check_bool "interp never compiles" false (Reduction.compiled t)

let split_tasks ~parts (shape : int array) =
  (* Disjoint boxes cut along dimension 0. *)
  let n0 = shape.(0) in
  let parts = min parts n0 in
  Array.init parts (fun i ->
      let lo = Array.make (Array.length shape) 0 in
      let hi = Array.copy shape in
      lo.(0) <- i * n0 / parts;
      hi.(0) <- (i + 1) * n0 / parts;
      (lo, hi))

let reduction_bit_identical_backends_pools () =
  (* The tentpole contract: same tasks => same bits, whatever fills the
     partials (interpreter or compiled kernels, any pool size). *)
  let g = Grid.create ~shape:[| 12; 10 |] ~halo:[| 1; 1 |] in
  let h = Grid.like g in
  fill_grid 5 g;
  fill_grid 6 h;
  let tasks = split_tasks ~parts:5 g.Grid.shape in
  let reference =
    let t = Reduction.create ~tasks g in
    List.map (fun op ->
        let with_ = if Reduce.arity op = 2 then Some h else None in
        Reduction.run t ~op ?with_ g)
      all_ops
  in
  List.iter
    (fun backend ->
      if toolchain_for backend then
        List.iter
          (fun workers ->
            let pool = if workers = 1 then Pool.sequential else Pool.create workers in
            Fun.protect
              ~finally:(fun () -> if workers > 1 then Pool.shutdown pool)
              (fun () ->
                let config = Exec.Config.make ~backend ~pool () in
                let t = Reduction.create ~config ~tasks g in
                (match Reduction.fallback t with
                | Some msg ->
                    if backend <> Backend.Interp then
                      Alcotest.failf "%s fell back: %s"
                        (Backend.to_string backend) msg
                | None -> ());
                List.iteri
                  (fun i op ->
                    let with_ =
                      if Reduce.arity op = 2 then Some h else None
                    in
                    check_bool
                      (Printf.sprintf "%s/%s/pool%d" (Backend.to_string backend)
                         (Reduce.to_string op) workers)
                      true
                      (Reduction.run t ~op ?with_ g = List.nth reference i))
                  all_ops))
          [ 1; 2; 4 ])
    backends

let reduction_qcheck_partial_vs_executor =
  qc ~count:60 "reduction: tiled executor = whole-interior fold"
    QCheck.(triple (int_range 2 11) (int_range 2 13) (int_range 1 6))
    (fun (m, n, parts) ->
      let g = Grid.create ~shape:[| m; n |] ~halo:[| 1; 1 |] in
      fill_grid ((m * 31) + n) g;
      let tasks = split_tasks ~parts g.Grid.shape in
      let t = Reduction.create ~tasks g in
      List.for_all
        (fun op ->
          if Reduce.arity op = 2 then true
          else begin
            (* Tiled tree fold vs the flat fold: identical for Max_abs
               (order-free) and within roundoff for the additive ops; the
               executor's own determinism is checked by re-running. *)
            let v1 = Reduction.run t ~op g in
            let v2 = Reduction.run t ~op g in
            let flat = Reduce.finalize op (whole_interior_partial ~op g) in
            v1 = v2 && Float.abs (v1 -. flat) <= 1e-12 *. (1.0 +. Float.abs flat)
          end)
        all_ops)

let reduction_geometry_checks () =
  let g = Grid.create ~shape:[| 6; 6 |] ~halo:[| 1; 1 |] in
  let t = Reduction.create g in
  (match Reduction.run t ~op:Reduce.Dot g with
  | _ -> Alcotest.fail "Dot without with_ must raise"
  | exception Invalid_argument _ -> ());
  let wrong = Grid.create ~shape:[| 6; 7 |] ~halo:[| 1; 1 |] in
  (match Reduction.run t ~op:Reduce.Sum wrong with
  | _ -> Alcotest.fail "geometry mismatch must raise"
  | exception Invalid_argument _ -> ());
  (match Reduction.create ~tasks:[| ([| 0; 0 |], [| 7; 6 |]) |] g with
  | _ -> Alcotest.fail "task outside interior must raise"
  | exception Invalid_argument _ -> ())

(* --- Mpi_sim.allreduce --- *)

let allreduce_exact () =
  let mpi = Mpi.create ~nranks:4 () in
  let partials = [| 0.1; 0.2; 0.3; 0.4 |] in
  let v = Mpi.allreduce mpi ~tag:9 ~combine:( +. ) partials in
  (* The collective folds the gathered array in tree order — exactly
     tree_combine, bits included (payloads round-trip float bits). *)
  check_bool "tree order result" true (v = Reduce.tree_combine ( +. ) partials);
  check_int "2(n-1) hops" 6 (Mpi.messages_sent mpi);
  check_int "8-byte payloads" 48 (Mpi.bytes_sent mpi);
  check_int "drained" 0 (Mpi.pending_messages mpi)

let allreduce_single_rank () =
  let mpi = Mpi.create ~nranks:1 () in
  check_float "identity" 42.0 (Mpi.allreduce mpi ~tag:0 ~combine:( +. ) [| 42.0 |]);
  check_int "no traffic" 0 (Mpi.messages_sent mpi)

let allreduce_validates () =
  let mpi = Mpi.create ~nranks:3 () in
  match Mpi.allreduce mpi ~tag:0 ~combine:( +. ) [| 1.0; 2.0 |] with
  | _ -> Alcotest.fail "partial count mismatch must raise"
  | exception Invalid_argument _ -> ()

(* --- Cost model --- *)

let allreduce_time_model () =
  let net = Netmodel.tianhe3_prototype in
  check_float "one rank free" 0.0 (Netmodel.allreduce_time net ~nranks:1 ~bytes:8);
  (* Recursive doubling: ceil(log2 8) = 3 rounds of one message each. *)
  check_bool "8 ranks = 3 rounds" true
    (Netmodel.allreduce_time net ~nranks:8 ~bytes:8
    = 3.0 *. Netmodel.message_time net ~nranks:8 ~bytes:8);
  check_bool "5 ranks also 3 rounds" true
    (Netmodel.allreduce_time net ~nranks:5 ~bytes:8
    = 3.0 *. Netmodel.message_time net ~nranks:5 ~bytes:8);
  (match Netmodel.allreduce_time net ~nranks:0 ~bytes:8 with
  | _ -> Alcotest.fail "nranks 0 must raise"
  | exception Invalid_argument _ -> ())

let scaling_counts_allreduces () =
  let args ~depth ~allreduces_per_step =
    Scaling.comm_time ~depth ~allreduces_per_step Scaling.Tianhe3 ~ranks:16
      ~sub_grid:[| 64; 64 |] ~radius:[| 1; 1 |] ~elem:8 ~faces_only:true
  in
  let base = args ~depth:1 ~allreduces_per_step:0 in
  let ar = Scaling.allreduce_time Scaling.Tianhe3 ~ranks:16 in
  check_bool "allreduces add on top" true
    (args ~depth:1 ~allreduces_per_step:2 = base +. (2.0 *. ar));
  (* Temporal blocking amortises the halo alpha but never the solver
     collectives: the allreduce term sits outside the depth divide. *)
  let deep0 = args ~depth:4 ~allreduces_per_step:0 in
  check_bool "not amortised by depth" true
    (args ~depth:4 ~allreduces_per_step:1 = deep0 +. ar);
  (match args ~depth:1 ~allreduces_per_step:(-1) with
  | _ -> Alcotest.fail "negative allreduces must raise"
  | exception Invalid_argument _ -> ())

(* --- Distributed.reduce --- *)

let engines =
  [
    ("bulk", Distributed.Bulk_synchronous);
    ("overlap", Distributed.Overlapped);
    ("temporal", Distributed.Temporal_blocked { depth = 2 });
  ]

let distributed_reduce_bit_identical () =
  (* One reference value per op (interp, sequential, bulk), then every
     backend x engine x rank-pool size must reproduce it bit-for-bit. *)
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  let unary_ops = List.filter (fun op -> Reduce.arity op = 1) all_ops in
  let value backend engine workers op =
    let pool = if workers = 1 then Pool.sequential else Pool.create workers in
    Fun.protect
      ~finally:(fun () -> if workers > 1 then Pool.shutdown pool)
      (fun () ->
        let config = Exec.Config.make ~backend ~engine ~pool () in
        let d = Distributed.create ~config ~ranks_shape:[| 2; 2 |] st in
        Distributed.run d 3;
        Distributed.reduce d ~op)
  in
  List.iter
    (fun op ->
      let reference =
        value Backend.Interp Distributed.Bulk_synchronous 1 op
      in
      check_bool "reference is finite" true (Float.is_finite reference);
      List.iter
        (fun backend ->
          if toolchain_for backend then
            List.iter
              (fun (ename, engine) ->
                List.iter
                  (fun workers ->
                    check_bool
                      (Printf.sprintf "%s/%s/%s/pool%d" (Reduce.to_string op)
                         (Backend.to_string backend) ename workers)
                      true
                      (value backend engine workers op = reference))
                  [ 1; 2; 4 ])
              engines)
        backends)
    unary_ops

let distributed_reduce_rejects_dot () =
  let _, st = stencil_2d9pt_box () in
  let d = Distributed.create ~ranks_shape:[| 2; 1 |] st in
  match Distributed.reduce d ~op:Reduce.Dot with
  | _ -> Alcotest.fail "Dot over the state must raise"
  | exception Invalid_argument _ -> ()

let distributed_reduce_counts_traffic () =
  let _, st = stencil_2d9pt_box () in
  let d = Distributed.create ~ranks_shape:[| 2; 2 |] st in
  Distributed.step d;
  let mpi = Distributed.mpi d in
  Mpi.reset_counters mpi;
  ignore (Distributed.reduce d ~op:Reduce.Sum);
  (* gather + broadcast across 4 ranks = 6 eight-byte hops. *)
  check_int "allreduce hops" 6 (Mpi.messages_sent mpi);
  check_int "allreduce bytes" 48 (Mpi.bytes_sent mpi)

(* --- engine accounting (satellite: explicit graph degrade) --- *)

let graph_temporal_depth_rejected () =
  let _, st = stencil_2d9pt_box () in
  let single = Graph.single st in
  (match
     Distributed.create_graph
       ~config:
         (Exec.Config.make
            ~engine:(Distributed.Temporal_blocked { depth = 3 })
            ())
       ~ranks_shape:[| 2; 1 |] single
   with
  | _ -> Alcotest.fail "graph + temporal depth > 1 must raise"
  | exception Invalid_argument msg ->
      check_bool "message names the degrade" true
        (let has sub =
           let n = String.length msg and m = String.length sub in
           let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
           go 0
         in
         has "Temporal_blocked depth 3"));
  (* Depth 1 is bulk-equivalent: allowed, and recorded as bulk. *)
  let d =
    Distributed.create_graph
      ~config:
        (Exec.Config.make ~engine:(Distributed.Temporal_blocked { depth = 1 }) ())
      ~ranks_shape:[| 2; 1 |] single
  in
  check_bool "requested engine preserved" true
    (Distributed.engine d = Distributed.Temporal_blocked { depth = 1 });
  check_bool "effective engine is bulk" true
    (Distributed.effective_engine d = Distributed.Bulk_synchronous)

let effective_engine_reports_clamp () =
  (* A 6-wide decomposition over a 14-row grid cannot host depth 5: the
     effective engine reports the clamped depth, not the request. *)
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  let d =
    Distributed.create
      ~config:
        (Exec.Config.make ~engine:(Distributed.Temporal_blocked { depth = 5 }) ())
      ~ranks_shape:[| 6; 1 |] st
  in
  check_bool "requested preserved" true
    (Distributed.engine d = Distributed.Temporal_blocked { depth = 5 });
  (match Distributed.effective_engine d with
  | Distributed.Temporal_blocked { depth } ->
      check_int "clamped depth recorded" (Distributed.effective_depth d) depth;
      check_bool "actually clamped" true (depth < 5)
  | _ -> Alcotest.fail "temporal request must stay temporal");
  (* Non-temporal engines: effective = requested. *)
  let d2 = Distributed.create ~ranks_shape:[| 2; 2 |] st in
  check_bool "overlapped passthrough" true
    (Distributed.effective_engine d2 = Distributed.Overlapped)

let suites =
  [
    ( "reduce.ops",
      [
        tc "op round trip" op_round_trip;
        tc "tree combine order" tree_combine_order;
        tc "op semantics" op_semantics;
        tc "plan reduce matches tree" plan_reduce_matches_tree;
      ] );
    ( "reduce.executor",
      [
        tc "matches reference fold" reduction_matches_reference;
        tc "bit-identical backends x pools" reduction_bit_identical_backends_pools;
        reduction_qcheck_partial_vs_executor;
        tc "geometry checks" reduction_geometry_checks;
      ] );
    ( "reduce.allreduce",
      [
        tc "exact collective" allreduce_exact;
        tc "single rank" allreduce_single_rank;
        tc "validates partials" allreduce_validates;
        tc "netmodel allreduce time" allreduce_time_model;
        tc "scaling counts allreduces" scaling_counts_allreduces;
      ] );
    ( "reduce.distributed",
      [
        slow "bit-identical engines x backends x pools"
          distributed_reduce_bit_identical;
        tc "rejects dot" distributed_reduce_rejects_dot;
        tc "counts traffic" distributed_reduce_counts_traffic;
        tc "graph temporal depth rejected" graph_temporal_depth_rejected;
        tc "effective engine reports clamp" effective_engine_reports_clamp;
      ] );
  ]
