(* Tests for the communication library: the MPI simulator, domain
   decomposition, halo pack/unpack/exchange, the distributed runtime, the
   network model and the scalability estimator. *)

open Helpers
module Mpi = Msc_comm.Mpi_sim
module Mpi_ref = Msc_comm.Mpi_sim_ref
module Decomp = Msc_comm.Decomp
module Halo = Msc_comm.Halo
module Distributed = Msc_comm.Distributed
module Netmodel = Msc_comm.Netmodel
module Scaling = Msc_comm.Scaling
module Grid = Msc_exec.Grid
module Exec = Msc_exec.Exec

(* [Exec.Config] now bundles the old ~engine/~pool knobs. *)
let cfg ?backend ?engine ?pool () = Exec.Config.make ?backend ?engine ?pool ()

(* --- MPI simulator --- *)

let mpi_send_recv () =
  let mpi = Mpi.create ~nranks:4 () in
  Mpi.isend mpi ~src:0 ~dst:3 ~tag:7 (Bytes.of_string "hello");
  let req = Mpi.irecv mpi ~dst:3 ~src:0 ~tag:7 in
  check_string "payload" "hello" (Bytes.to_string (Mpi.wait mpi req));
  check_int "drained" 0 (Mpi.pending_messages mpi)

let mpi_fifo_order () =
  let mpi = Mpi.create ~nranks:2 () in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "first");
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "second");
  check_string "fifo 1" "first"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)));
  check_string "fifo 2" "second"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)))

let mpi_tag_matching () =
  let mpi = Mpi.create ~nranks:2 () in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:1 (Bytes.of_string "a");
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:2 (Bytes.of_string "b");
  check_string "tag 2 first" "b"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:2)));
  check_string "then tag 1" "a"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:1)))

let mpi_payload_isolated () =
  let mpi = Mpi.create ~nranks:2 () in
  let buf = Bytes.of_string "orig" in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 buf;
  Bytes.set buf 0 'X';
  check_string "copy semantics" "orig"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)))

let mpi_deadlock_detected () =
  let mpi = Mpi.create ~nranks:2 () in
  (* A message on an unrelated channel, so the report can point at it. *)
  Mpi.isend mpi ~src:1 ~dst:0 ~tag:5 (Bytes.of_string "misrouted");
  match Mpi.wait ~timeout_s:0.05 mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0) with
  | _ -> Alcotest.fail "wait on a never-sent message must raise"
  | exception Mpi.Deadlock { src; dst; tag; waited_s; backlog } ->
      check_int "src" 0 src;
      check_int "dst" 1 dst;
      check_int "tag" 0 tag;
      check_bool "waited at least the timeout" true (waited_s >= 0.05);
      check_bool "backlog names the misrouted message" true
        (List.mem (1, 0, 5, 1) backlog)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let mpi_deadlock_report_printable () =
  let mpi = Mpi.create ~nranks:2 () in
  match Mpi.wait ~timeout_s:0.02 mpi (Mpi.irecv mpi ~dst:0 ~src:1 ~tag:3) with
  | _ -> Alcotest.fail "wait on a never-sent message must raise"
  | exception (Mpi.Deadlock _ as e) ->
      let msg = Printexc.to_string e in
      check_bool "names the channel" true
        (contains_sub msg "src=1 dst=0 tag=3");
      check_bool "reports empty queues" true
        (contains_sub msg "no messages pending anywhere")

let mpi_counters () =
  let mpi = Mpi.create ~nranks:2 () in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.create 100);
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:1 (Bytes.create 40);
  ignore (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0));
  check_int "messages" 2 (Mpi.messages_sent mpi);
  check_int "bytes" 140 (Mpi.bytes_sent mpi);
  check_int "one still pending" 1 (Mpi.pending_messages mpi);
  Mpi.reset_counters mpi;
  (* All three counters reset — [pending] included, so an abandoned
     message cannot leak into the next repetition's accounting. *)
  check_int "messages reset" 0 (Mpi.messages_sent mpi);
  check_int "bytes reset" 0 (Mpi.bytes_sent mpi);
  check_int "pending reset" 0 (Mpi.pending_messages mpi)

let mpi_test_probe () =
  let mpi = Mpi.create ~nranks:2 () in
  let req = Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0 in
  check_bool "nothing sent yet" false (Mpi.test mpi req);
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "now");
  check_bool "completes once sent" true (Mpi.test mpi req);
  check_bool "idempotent" true (Mpi.test mpi req);
  check_string "payload claimed" "now" (Bytes.to_string (Mpi.wait mpi req))

let test_net alpha_s =
  {
    Netmodel.name = "test-net";
    alpha_s;
    beta_gbs = 1.0;
    congestion_at = (fun ~nranks:_ ~messages_per_rank:_ ~bytes_per_message:_ -> 1.0);
  }

let mpi_simulated_latency () =
  (* A synthetic network whose only cost is a 30 ms per-message setup:
     [wait] must sleep out the in-flight window. The harness zeroes the
     wall-clock scale globally, so restore it locally around the one test
     that exercises the genuine sleep path. *)
  let saved = Netmodel.sim_latency_scale () in
  Netmodel.set_sim_latency_scale 1.0;
  Fun.protect
    ~finally:(fun () -> Netmodel.set_sim_latency_scale saved)
    (fun () ->
      let mpi = Mpi.create ~net:(test_net 0.03) ~nranks:2 () in
      Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "slow");
      let req = Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0 in
      check_bool "still in flight" false (Mpi.test mpi req);
      let t0 = Unix.gettimeofday () in
      ignore (Mpi.wait mpi req);
      let elapsed = Unix.gettimeofday () -. t0 in
      check_bool "waited out the latency" true (elapsed >= 0.02))

let mpi_harness_sleep_free () =
  (* [dune runtest] must never stall on synthetic latency: the test entry
     point zeroes the wall-clock scale, so even a network with a huge
     per-message setup delivers instantly (the analytic [message_time] is
     unscaled — only the simulator's sleep is). *)
  check_bool "harness zeroes the wall-clock scale" true
    (Netmodel.sim_latency_scale () = 0.0);
  let net = test_net 10.0 in
  let mpi = Mpi.create ~net ~nranks:2 () in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "fast");
  let t0 = Unix.gettimeofday () in
  ignore (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0));
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "delivered without sleeping" true (elapsed < 1.0);
  check_bool "model time unscaled" true
    (Netmodel.message_time net ~nranks:2 ~bytes:4 >= 10.0);
  check_bool "negative scale rejected" true
    (try Netmodel.set_sim_latency_scale (-1.0); false
     with Invalid_argument _ -> true)

let mpi_rank_bounds () =
  let mpi = Mpi.create ~nranks:2 () in
  check_bool "bad rank" true
    (try Mpi.isend mpi ~src:0 ~dst:2 ~tag:0 Bytes.empty; false
     with Invalid_argument _ -> true)

(* Property: the mailbox rewrite of [Mpi_sim] is behaviourally identical to
   the retained reference implementation — random send batches drained in
   send order deliver the same payloads (FIFO per (src, dst, tag)) and the
   same counters on both. *)
let mpi_parity_with_reference_property =
  qc ~count:80 "mailbox Mpi_sim == reference Mpi_sim_ref"
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (quad (int_range 0 3) (int_range 0 3) (int_range 0 2) (int_range 0 255)))
    (fun msgs ->
      let a = Mpi.create ~nranks:4 () in
      let b = Mpi_ref.create ~nranks:4 () in
      List.iteri
        (fun i (src, dst, tag, byte) ->
          let payload = Printf.sprintf "%d:%d" byte i in
          Mpi.isend a ~src ~dst ~tag (Bytes.of_string payload);
          Mpi_ref.isend b ~src ~dst ~tag (Bytes.of_string payload))
        msgs;
      Mpi.pending_messages a = Mpi_ref.pending_messages b
      && Mpi.messages_sent a = Mpi_ref.messages_sent b
      && Mpi.bytes_sent a = Mpi_ref.bytes_sent b
      && List.for_all
           (fun (src, dst, tag, _) ->
             let pa = Bytes.to_string (Mpi.wait a (Mpi.irecv a ~dst ~src ~tag)) in
             let pb =
               Bytes.to_string (Mpi_ref.wait b (Mpi_ref.irecv b ~dst ~src ~tag))
             in
             String.equal pa pb)
           msgs
      && Mpi.pending_messages a = 0
      && Mpi_ref.pending_messages b = 0)

(* --- Decomp --- *)

let decomp_coords_roundtrip () =
  let d = Decomp.create ~global:[| 32; 32; 32 |] ~ranks_shape:[| 2; 3; 4 |] in
  for rank = 0 to d.Decomp.nranks - 1 do
    check_int "roundtrip" rank (Decomp.rank_of_coords d (Decomp.coords_of_rank d rank))
  done

let decomp_even_split () =
  let d = Decomp.create ~global:[| 8; 8 |] ~ranks_shape:[| 2; 2 |] in
  let offset, extent = Decomp.subdomain d ~rank:3 in
  Alcotest.(check (array int)) "offset" [| 4; 4 |] offset;
  Alcotest.(check (array int)) "extent" [| 4; 4 |] extent

let decomp_uneven_split () =
  let d = Decomp.create ~global:[| 10 |] ~ranks_shape:[| 3 |] in
  let extents = List.init 3 (fun r -> snd (Decomp.subdomain d ~rank:r)) in
  Alcotest.(check (list (array int))) "4,3,3" [ [| 4 |]; [| 3 |]; [| 3 |] ] extents

let decomp_covers () =
  List.iter
    (fun (global, shape) ->
      let d = Decomp.create ~global ~ranks_shape:shape in
      check_bool "partition" true (Decomp.covers_globally d))
    [
      ([| 10; 7 |], [| 3; 2 |]);
      ([| 16; 16; 16 |], [| 2; 2; 2 |]);
      ([| 13 |], [| 5 |]);
    ]

let decomp_neighbors () =
  let d = Decomp.create ~global:[| 8; 8 |] ~ranks_shape:[| 2; 2 |] in
  check_bool "right of 0 is 1" true (Decomp.neighbor d ~rank:0 ~dir:[| 0; 1 |] = Some 1);
  check_bool "down of 0 is 2" true (Decomp.neighbor d ~rank:0 ~dir:[| 1; 0 |] = Some 2);
  check_bool "boundary" true (Decomp.neighbor d ~rank:0 ~dir:[| -1; 0 |] = None);
  check_bool "diagonal" true (Decomp.neighbor d ~rank:0 ~dir:[| 1; 1 |] = Some 3)

let decomp_directions () =
  check_int "2d faces" 4 (List.length (Decomp.directions ~ndim:2 ~faces_only:true));
  check_int "2d all" 8 (List.length (Decomp.directions ~ndim:2 ~faces_only:false));
  check_int "3d faces" 6 (List.length (Decomp.directions ~ndim:3 ~faces_only:true));
  check_int "3d all" 26 (List.length (Decomp.directions ~ndim:3 ~faces_only:false))

let decomp_dir_index_unique () =
  let dirs = Decomp.directions ~ndim:3 ~faces_only:false in
  let idxs = List.map (Decomp.dir_index ~ndim:3) dirs in
  check_int "unique tags" (List.length dirs) (List.length (List.sort_uniq compare idxs))

let decomp_auto_shape () =
  Alcotest.(check (array int)) "28 over 2d" [| 7; 4 |] (Decomp.auto_shape ~nranks:28 ~ndim:2);
  Alcotest.(check (array int)) "64 over 3d" [| 4; 4; 4 |] (Decomp.auto_shape ~nranks:64 ~ndim:3);
  check_int "product preserved" 28
    (Array.fold_left ( * ) 1 (Decomp.auto_shape ~nranks:28 ~ndim:3))

let decomp_validation () =
  check_bool "too many procs" true
    (try ignore (Decomp.create ~global:[| 4 |] ~ranks_shape:[| 8 |]); false
     with Invalid_argument _ -> true)

(* Property: under periodic wrap every direction has a neighbour, and
   stepping back along the opposite direction returns to the start — the
   invariant the halo tag matching (sender's direction index, receiver
   matches the opposite) relies on. *)
let decomp_periodic_inverse_property =
  qc ~count:200 "periodic neighbor inverted by opposite direction"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 3) (pair (int_range 1 4) (int_range (-1) 1)))
        (int_range 0 1000))
    (fun (dims, rank_seed) ->
      let ranks_shape = Array.of_list (List.map fst dims) in
      let dir = Array.of_list (List.map snd dims) in
      QCheck.assume (Array.exists (fun v -> v <> 0) dir);
      (* Every dimension needs at least as many points as processes. *)
      let global = Array.map (fun r -> 4 * r) ranks_shape in
      let d = Decomp.create ~global ~ranks_shape in
      let rank = rank_seed mod d.Decomp.nranks in
      let opposite = Array.map (fun v -> -v) dir in
      match Decomp.neighbor ~periodic:true d ~rank ~dir with
      | None -> false
      | Some nb -> Decomp.neighbor ~periodic:true d ~rank:nb ~dir:opposite = Some rank)

(* Degenerate and large rank grids: pencils (1xN / Nx1), primes and the
   64x64 production shape must still partition exactly, keep neighbor
   symmetry, report a geometry-consistent temporal depth, and tile into
   node blocks. *)
let decomp_degenerate_and_large_shapes () =
  List.iter
    (fun (ranks_shape, rpn) ->
      let global = Array.map (fun r -> r * 3) ranks_shape in
      let d = Decomp.create ~global ~ranks_shape in
      check_bool "covers globally" true (Decomp.covers_globally d);
      let ndim = Array.length ranks_shape in
      List.iter
        (fun dir ->
          let opposite = Array.map (fun v -> -v) dir in
          for rank = 0 to min (d.Decomp.nranks - 1) 255 do
            match Decomp.neighbor d ~rank ~dir with
            | None -> ()
            | Some nb ->
                if Decomp.neighbor d ~rank:nb ~dir:opposite <> Some rank then
                  Alcotest.failf "asymmetric neighbor at rank %d" rank
          done)
        (Decomp.directions ~ndim ~faces_only:false);
      let radius = Array.make ndim 1 in
      let depth = Decomp.max_uniform_depth d ~radius in
      let min_extent = Decomp.min_extent d in
      check_bool "depth >= 1" true (depth >= 1);
      check_bool "depth fits thinnest rank" true
        (Array.for_all (fun e -> depth <= e) min_extent);
      let core = Decomp.core_shape ~ranks_shape ~ranks_per_node:rpn in
      Array.iteri
        (fun i c ->
          if ranks_shape.(i) mod c <> 0 then
            Alcotest.failf "core %d does not divide ranks dim %d" c i)
        core;
      check_bool "core within node" true (Array.fold_left ( * ) 1 core <= rpn))
    [
      ([| 1; 16 |], 4);
      ([| 16; 1 |], 4);
      ([| 7; 1 |], 8);
      ([| 13; 13 |], 8);
      ([| 1; 31 |], 4);
      ([| 64; 64 |], 8);
    ]

(* Property: random rank shapes, including pencils and primes, always
   partition the global grid exactly, and a rank's subdomain extents never
   differ from the floor extent by more than one. *)
let decomp_shape_partition_property =
  qc ~count:150 "random rank shapes partition exactly"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 3) (int_range 1 64))
        (int_range 0 10_000))
    (fun (dims, rank_seed) ->
      let ranks_shape = Array.of_list dims in
      let global = Array.map (fun r -> (r * 2) + 1) ranks_shape in
      let d = Decomp.create ~global ~ranks_shape in
      let rank = rank_seed mod d.Decomp.nranks in
      let _, extent = Decomp.subdomain d ~rank in
      let floor_extent = Decomp.min_extent d in
      Decomp.covers_globally d
      && Array.for_all2
           (fun e f -> e = f || e = f + 1)
           extent floor_extent
      && Decomp.max_uniform_depth d ~radius:(Array.map (fun _ -> 1) ranks_shape)
         >= 1)

(* --- Halo pack/unpack --- *)

let halo_pack_unpack_roundtrip () =
  let a = Grid.create ~shape:[| 4; 6 |] ~halo:[| 2; 2 |] in
  let b = Grid.create ~shape:[| 4; 6 |] ~halo:[| 2; 2 |] in
  Grid.fill a (fun c -> float_of_int ((c.(0) * 10) + c.(1)) +. 0.5);
  (* Pack a's top inner slab; unpack into b's bottom outer halo (as the
     neighbour below would). *)
  let payload = Halo.pack a ~dir:[| 1; 0 |] ~width:[| 2; 2 |] in
  Halo.unpack b ~dir:[| -1; 0 |] ~width:[| 2; 2 |] payload;
  (* a's rows 2..3 must now live in b's halo rows -2..-1. *)
  for r = 0 to 1 do
    for c = 0 to 5 do
      check_float "transferred" (Grid.get a [| 2 + r; c |]) (Grid.get b [| r - 2; c |])
    done
  done

let halo_payload_sizes () =
  let g = Grid.create ~shape:[| 4; 6 |] ~halo:[| 1; 1 |] in
  check_int "face row" (1 * 6) (Halo.payload_elems g ~dir:[| 1; 0 |] ~width:[| 1; 1 |]);
  check_int "face col" (4 * 1) (Halo.payload_elems g ~dir:[| 0; -1 |] ~width:[| 1; 1 |]);
  check_int "corner" 1 (Halo.payload_elems g ~dir:[| 1; 1 |] ~width:[| 1; 1 |])

let halo_unpack_size_mismatch () =
  let g = Grid.create ~shape:[| 4; 4 |] ~halo:[| 1; 1 |] in
  check_bool "size checked" true
    (try Halo.unpack g ~dir:[| 1; 0 |] ~width:[| 1; 1 |] (Bytes.create 3); false
     with Invalid_argument _ -> true)

let halo_corner_roundtrip () =
  let a = Grid.create ~shape:[| 5; 4 |] ~halo:[| 2; 2 |] in
  let b = Grid.create ~shape:[| 5; 4 |] ~halo:[| 2; 2 |] in
  Grid.fill a (fun c -> float_of_int ((c.(0) * 7) + c.(1)) +. 0.25);
  (* Diagonal (corner) transfer with asymmetric width. *)
  let payload = Halo.pack a ~dir:[| 1; 1 |] ~width:[| 2; 1 |] in
  Halo.unpack b ~dir:[| -1; -1 |] ~width:[| 2; 1 |] payload;
  for r = 0 to 1 do
    check_float "corner cell" (Grid.get a [| 3 + r; 3 |]) (Grid.get b [| r - 2; -1 |])
  done

(* Property: the row-blit pack/unpack agree with the retained
   coordinate-at-a-time reference on random shapes, halos, widths and
   directions (faces, edges and corners; a dir of all zeros packs the whole
   interior, also legal). *)
let halo_blit_matches_naive_property =
  qc ~count:120 "blit pack/unpack == naive reference"
    QCheck.(
      list_of_size
        Gen.(int_range 1 3)
        (quad (int_range 3 8) (int_range 1 3) (int_range 1 3) (int_range (-1) 1)))
    (fun dims ->
      let shape = Array.of_list (List.map (fun (n, _, _, _) -> n) dims) in
      let halo = Array.of_list (List.map (fun (_, h, _, _) -> h) dims) in
      let width = Array.of_list (List.map (fun (_, h, w, _) -> min w h) dims) in
      let dir = Array.of_list (List.map (fun (_, _, _, d) -> d) dims) in
      let g = Grid.create ~shape ~halo in
      Grid.fill_extended g (fun c ->
          let acc = ref 1.0 in
          Array.iteri
            (fun d k -> acc := !acc +. (float_of_int ((d + 3) * k) *. 0.21))
            c;
          !acc);
      let fast = Halo.pack g ~dir ~width in
      let naive = Halo.pack_naive g ~dir ~width in
      let b1 = Grid.create ~shape ~halo and b2 = Grid.create ~shape ~halo in
      Halo.unpack b1 ~dir ~width fast;
      Halo.unpack_naive b2 ~dir ~width naive;
      Bytes.equal fast naive && b1.Grid.data = b2.Grid.data)

let halo_exchange_fills_outer () =
  let d = Decomp.create ~global:[| 8; 8 |] ~ranks_shape:[| 2; 2 |] in
  let mpi = Mpi.create ~nranks:4 () in
  let grids =
    Array.init 4 (fun rank ->
        let _, extent = Decomp.subdomain d ~rank in
        let g = Grid.create ~shape:extent ~halo:[| 1; 1 |] in
        Grid.fill g (fun _ -> float_of_int (rank + 1));
        g)
  in
  Halo.exchange mpi d ~grids ~width:[| 1; 1 |] ~faces_only:false;
  (* Rank 0's right outer halo holds rank 1's values; its corner holds 3's. *)
  check_float "right halo from rank 1" 2.0 (Grid.get grids.(0) [| 0; 4 |]);
  check_float "bottom halo from rank 2" 3.0 (Grid.get grids.(0) [| 4; 0 |]);
  check_float "corner from rank 3" 4.0 (Grid.get grids.(0) [| 4; 4 |]);
  (* Physical boundary stays zero. *)
  check_float "physical boundary" 0.0 (Grid.get grids.(0) [| -1; 0 |]);
  check_int "no leftover messages" 0 (Mpi.pending_messages mpi)

(* --- Distributed runtime --- *)

let distributed_star_exact () =
  let _, st = stencil_3d7pt ~n:12 () in
  check_float "bit-identical" 0.0 (Distributed.validate ~steps:4 ~ranks_shape:[| 2; 2; 2 |] st)

let distributed_box_corners_exact () =
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  check_float "bit-identical" 0.0 (Distributed.validate ~steps:4 ~ranks_shape:[| 2; 3 |] st)

let distributed_uneven_exact () =
  let _, st = stencil_2d9pt_box ~m:13 ~n:17 () in
  check_float "uneven blocks" 0.0 (Distributed.validate ~steps:3 ~ranks_shape:[| 3; 2 |] st)

let distributed_wave_exact () =
  let st = stencil_wave2d ~n:16 () in
  check_float "state terms survive exchange" 0.0
    (Distributed.validate ~steps:5 ~ranks_shape:[| 2; 2 |] st)

let distributed_single_rank_degenerate () =
  let _, st = stencil_3d7pt ~n:8 () in
  check_float "1 rank" 0.0 (Distributed.validate ~steps:3 ~ranks_shape:[| 1; 1; 1 |] st)

let distributed_wide_halo_exact () =
  let grid = Msc_frontend.Builder.def_tensor_2d ~time_window:2 ~halo:3 "B" Msc_ir.Dtype.F64 18 18 in
  let k = Msc_frontend.Builder.star_kernel ~name:"S" ~radius:3 grid in
  let st = Msc_frontend.Builder.two_step ~name:"2d13pt_star" k in
  check_float "radius-3 exchange" 0.0 (Distributed.validate ~steps:3 ~ranks_shape:[| 2; 2 |] st)

let distributed_message_accounting () =
  let _, st = stencil_3d7pt ~n:12 () in
  let dist = Distributed.create ~ranks_shape:[| 2; 2; 2 |] st in
  let before = Mpi.messages_sent (Distributed.mpi dist) in
  (* 8 ranks, faces only (star): each rank has 3 neighbours -> 24 msgs. *)
  Distributed.step dist;
  check_int "24 messages per exchange" (before + 24)
    (Mpi.messages_sent (Distributed.mpi dist))

let distributed_gather_shape () =
  let _, st = stencil_3d7pt ~n:12 () in
  let dist = Distributed.create ~ranks_shape:[| 2; 2; 1 |] st in
  Distributed.run dist 2;
  let g = Distributed.gather dist in
  Alcotest.(check (array int)) "global shape" [| 12; 12; 12 |] g.Grid.shape

let distributed_property =
  qc ~count:12 "distributed == single for random rank shapes"
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (px, py) ->
      let _, st = stencil_2d9pt_box ~m:12 ~n:12 () in
      Distributed.validate ~steps:2 ~ranks_shape:[| px; py |] st = 0.0)

(* --- Overlapped engine --- *)

(* Run both engines over every stencil of the paper's suite (small grids,
   2x2(x2) process grids) and demand bit-identical gathered states — the
   overlapped protocol must be a pure reordering of the bulk-synchronous
   one. *)
let engines_bit_identical_across_suite () =
  List.iter
    (fun (b : Msc_benchsuite.Suite.bench) ->
      let dims = Array.make b.Msc_benchsuite.Suite.ndim (max 12 (4 * b.Msc_benchsuite.Suite.radius)) in
      let ranks_shape = Array.make b.Msc_benchsuite.Suite.ndim 2 in
      let st = Msc_benchsuite.Suite.stencil ~dims b in
      let run engine =
        let dist = Distributed.create ~config:(cfg ~engine ()) ~ranks_shape st in
        Distributed.run dist 2;
        Distributed.gather dist
      in
      let bulk = run Distributed.Bulk_synchronous in
      let over = run Distributed.Overlapped in
      check_bool
        (b.Msc_benchsuite.Suite.name ^ ": overlapped == bulk bit-exact")
        true
        (bulk.Grid.data = over.Grid.data))
    Msc_benchsuite.Suite.all

(* Scale-out criterion: growing the process grid from 2x2 to 4x4 (thin
   ranks, corner messages everywhere, 16 mailboxes in flight) must leave
   all three engines bit-identical to each other and to the single-rank
   reference. *)
let engines_bit_identical_4x4 () =
  let _, st = stencil_2d9pt_box ~m:20 ~n:24 () in
  let run engine =
    let dist =
      Distributed.create ~config:(cfg ~engine ()) ~ranks_shape:[| 4; 4 |] st
    in
    Distributed.run dist 3;
    Distributed.gather dist
  in
  let bulk = run Distributed.Bulk_synchronous in
  let over = run Distributed.Overlapped in
  let temp = run (Distributed.Temporal_blocked { depth = 2 }) in
  check_bool "overlapped == bulk at 4x4" true (bulk.Grid.data = over.Grid.data);
  check_bool "temporal(2) == bulk at 4x4" true (bulk.Grid.data = temp.Grid.data);
  let single = Msc_exec.Runtime.create st in
  Msc_exec.Runtime.run single 3;
  check_float "4x4 == single grid" 0.0
    (Grid.max_rel_error ~reference:(Msc_exec.Runtime.current single) bulk)

let engines_match_single_grid () =
  let _, st = stencil_3d7pt ~n:12 () in
  check_float "overlapped vs single" 0.0
    (Distributed.validate ~config:(cfg ~engine:Distributed.Overlapped ()) ~steps:4
       ~ranks_shape:[| 2; 2; 2 |] st);
  check_float "bulk vs single" 0.0
    (Distributed.validate ~config:(cfg ~engine:Distributed.Bulk_synchronous ()) ~steps:4
       ~ranks_shape:[| 2; 2; 2 |] st)

let overlapped_periodic_exact () =
  let st = stencil_wave2d ~n:16 () in
  check_float "periodic wrap through the overlapped engine" 0.0
    (Distributed.validate ~config:(cfg ~engine:Distributed.Overlapped ()) ~steps:4
       ~bc:Msc_exec.Bc.Periodic ~ranks_shape:[| 2; 2 |] st)

(* Ranks dispatched concurrently over a real worker pool must agree with
   the sequential dispatch (and with the single grid). *)
let overlapped_pool_parallel_exact () =
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  let pool = Msc_util.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Msc_util.Domain_pool.shutdown pool)
    (fun () ->
      let dist = Distributed.create ~config:(cfg ~pool ()) ~ranks_shape:[| 2; 3 |] st in
      let single = Msc_exec.Runtime.create st in
      Distributed.run dist 3;
      Msc_exec.Runtime.run single 3;
      check_float "pool-parallel ranks bit-identical" 0.0
        (Grid.max_rel_error ~reference:(Msc_exec.Runtime.current single)
           (Distributed.gather dist)))

(* A narrow rank (extent <= 2*radius somewhere) has an empty interior
   phase: every cell is boundary shell. The split must stay exact. *)
let overlapped_thin_rank_exact () =
  let grid = Msc_frontend.Builder.def_tensor_2d ~time_window:2 ~halo:3 "B" Msc_ir.Dtype.F64 12 8 in
  let k = Msc_frontend.Builder.star_kernel ~name:"S" ~radius:3 grid in
  let st = Msc_frontend.Builder.two_step ~name:"thin" k in
  check_float "all-shell ranks" 0.0
    (Distributed.validate ~config:(cfg ~engine:Distributed.Overlapped ()) ~steps:3
       ~ranks_shape:[| 2; 2 |] st)

let overlapped_traces_overlap_window () =
  let trace = Msc_trace.create () in
  let _, st = stencil_3d7pt ~n:12 () in
  let dist = Distributed.create ~trace ~ranks_shape:[| 2; 2; 1 |] st in
  Distributed.run dist 2;
  let events = Msc_trace.events trace in
  let spans_named phase =
    List.filter_map
      (fun (e : Msc_trace.event) ->
        match e with
        | Msc_trace.Span { name; tid; _ } when name = phase -> Some tid
        | _ -> None)
      events
  in
  (* One overlap window and one shell sub-sweep per rank per step. *)
  check_int "halo.overlap spans" 8 (List.length (spans_named "halo.overlap"));
  check_int "halo.shell spans" 8 (List.length (spans_named "halo.shell"));
  Alcotest.(check (list int)) "overlap windows tagged per rank" [ 0; 1; 2; 3 ]
    (List.sort_uniq compare (spans_named "halo.overlap"))

(* --- Temporal-blocked engine --- *)

(* At depth 1 the temporal engine must be a pure re-expression of the
   overlapped protocol: one deep exchange per "block" of one step, the same
   interior/shell split, bit-identical gathered states across all three
   engines over the paper's whole suite. *)
let temporal_depth1_bit_identical_across_suite () =
  List.iter
    (fun (b : Msc_benchsuite.Suite.bench) ->
      let dims =
        Array.make b.Msc_benchsuite.Suite.ndim
          (max 12 (4 * b.Msc_benchsuite.Suite.radius))
      in
      let ranks_shape = Array.make b.Msc_benchsuite.Suite.ndim 2 in
      let st = Msc_benchsuite.Suite.stencil ~dims b in
      let run engine =
        let dist = Distributed.create ~config:(cfg ~engine ()) ~ranks_shape st in
        Distributed.run dist 2;
        Distributed.gather dist
      in
      let bulk = run Distributed.Bulk_synchronous in
      let over = run Distributed.Overlapped in
      let temp = run (Distributed.Temporal_blocked { depth = 1 }) in
      check_bool
        (b.Msc_benchsuite.Suite.name ^ ": temporal(1) == bulk bit-exact")
        true
        (bulk.Grid.data = temp.Grid.data);
      check_bool
        (b.Msc_benchsuite.Suite.name ^ ": temporal(1) == overlapped bit-exact")
        true
        (over.Grid.data = temp.Grid.data))
    Msc_benchsuite.Suite.all

(* Deep blocks: 5 steps at depth 2/4 stop mid-block, so this also pins the
   one-timestep granularity of the engine (every substep is an exact full
   timestep). *)
let temporal_deep_star_exact () =
  let _, st = stencil_3d7pt ~n:12 () in
  List.iter
    (fun depth ->
      check_float
        (Printf.sprintf "depth %d bit-identical" depth)
        0.0
        (Distributed.validate
           ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth }) ())
           ~steps:5 ~ranks_shape:[| 2; 2; 2 |] st))
    [ 2; 4 ]

let temporal_deep_box_uneven_exact () =
  let _, st = stencil_2d9pt_box ~m:13 ~n:17 () in
  List.iter
    (fun depth ->
      check_float
        (Printf.sprintf "uneven blocks, depth %d" depth)
        0.0
        (Distributed.validate
           ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth }) ())
           ~steps:5 ~ranks_shape:[| 3; 2 |] st))
    [ 2; 4 ]

let temporal_periodic_exact () =
  let st = stencil_wave2d ~n:16 () in
  List.iter
    (fun depth ->
      check_float
        (Printf.sprintf "periodic wrap, depth %d" depth)
        0.0
        (Distributed.validate
           ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth }) ())
           ~steps:5 ~bc:Msc_exec.Bc.Periodic ~ranks_shape:[| 2; 2 |] st))
    [ 2; 4 ]

(* wave2d retains two past states (time_window = 2): the deep exchange must
   ship both in one message per neighbour. *)
let temporal_time_window2_exact () =
  let st = stencil_wave2d ~n:16 () in
  check_float "two retained states, depth 2" 0.0
    (Distributed.validate
       ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 2 }) ())
       ~steps:5 ~ranks_shape:[| 2; 2 |] st);
  check_float "two retained states, depth 4" 0.0
    (Distributed.validate
       ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 4 }) ())
       ~steps:4 ~ranks_shape:[| 2; 2 |] st)

(* A rank thinner than [depth * radius] cannot host the deep halo: the
   engine must clamp the depth (here radius 3 over 12x8 split 2x2 ->
   extents 6x4 -> max depth 1) and still be exact. *)
let temporal_thin_rank_clamps () =
  let grid =
    Msc_frontend.Builder.def_tensor_2d ~time_window:2 ~halo:3 "B"
      Msc_ir.Dtype.F64 12 8
  in
  let k = Msc_frontend.Builder.star_kernel ~name:"S" ~radius:3 grid in
  let st = Msc_frontend.Builder.two_step ~name:"thin" k in
  let dist =
    Distributed.create
      ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 4 }) ())
      ~ranks_shape:[| 2; 2 |] st
  in
  check_int "depth clamped to thinnest rank" 1 (Distributed.effective_depth dist);
  check_float "clamped engine stays exact" 0.0
    (Distributed.validate
       ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 4 }) ())
       ~steps:3 ~ranks_shape:[| 2; 2 |] st)

let temporal_effective_depth_reported () =
  let _, st = stencil_3d7pt ~n:12 () in
  let dist =
    Distributed.create
      ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 4 }) ())
      ~ranks_shape:[| 2; 2; 2 |] st
  in
  check_int "requested depth fits" 4 (Distributed.effective_depth dist);
  let over = Distributed.create ~ranks_shape:[| 2; 2; 2 |] st in
  check_int "other engines run depth 1" 1 (Distributed.effective_depth over)

let temporal_pool_parallel_exact () =
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  let pool = Msc_util.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Msc_util.Domain_pool.shutdown pool)
    (fun () ->
      let dist =
        Distributed.create
          ~config:
            (cfg ~engine:(Distributed.Temporal_blocked { depth = 2 }) ~pool ())
          ~ranks_shape:[| 2; 3 |] st
      in
      let single = Msc_exec.Runtime.create st in
      Distributed.run dist 3;
      Msc_exec.Runtime.run single 3;
      check_float "pool-parallel temporal bit-identical" 0.0
        (Grid.max_rel_error ~reference:(Msc_exec.Runtime.current single)
           (Distributed.gather dist)))

(* One deep exchange per block: a 2x2 grid of ranks, 3 neighbours each
   (corners included), depth 2 -> 12 messages for two steps where the
   per-step engines would post 24. *)
let temporal_message_savings () =
  let _, st = stencil_2d9pt_box ~m:12 ~n:12 () in
  let run engine steps =
    let dist = Distributed.create ~config:(cfg ~engine ()) ~ranks_shape:[| 2; 2 |] st in
    let before = Mpi.messages_sent (Distributed.mpi dist) in
    Distributed.run dist steps;
    Mpi.messages_sent (Distributed.mpi dist) - before
  in
  check_int "one deep exchange per block" 12
    (run (Distributed.Temporal_blocked { depth = 2 }) 2);
  check_int "overlapped exchanges every step" 24 (run Distributed.Overlapped 2)

let temporal_invalid_args () =
  let _, st = stencil_2d9pt_box () in
  check_bool "depth 0 rejected" true
    (try
       ignore
         (Distributed.create
            ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 0 }) ())
            ~ranks_shape:[| 2; 2 |] st);
       false
     with Invalid_argument _ -> true);
  check_bool "Reflect at depth > 1 rejected" true
    (try
       ignore
         (Distributed.create
            ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth = 2 }) ())
            ~bc:Msc_exec.Bc.Reflect ~ranks_shape:[| 2; 2 |] st);
       false
     with Invalid_argument _ -> true)

(* Property: random rank grids and depths agree bit-exactly with the single
   grid (Dirichlet) — the cross-engine identity the deep-halo engine must
   keep at every depth. *)
let temporal_property =
  qc ~count:10 "temporal == single for random rank shapes and depths"
    QCheck.(triple (int_range 1 3) (int_range 1 3) (int_range 1 4))
    (fun (px, py, depth) ->
      let _, st = stencil_2d9pt_box ~m:12 ~n:12 () in
      Distributed.validate
        ~config:(cfg ~engine:(Distributed.Temporal_blocked { depth }) ())
        ~steps:3 ~ranks_shape:[| px; py |] st
      = 0.0)

(* --- Netmodel & Scaling --- *)

let netmodel_monotone_in_bytes () =
  let n = Netmodel.sunway_taihulight in
  let t1 = Netmodel.exchange_time n ~nranks:64 ~messages_per_rank:4 ~bytes_per_message:1e3 in
  let t2 = Netmodel.exchange_time n ~nranks:64 ~messages_per_rank:4 ~bytes_per_message:1e6 in
  check_bool "more bytes slower" true (t2 > t1)

let netmodel_master_bottleneck () =
  let n = Netmodel.shared_memory in
  let async = Netmodel.exchange_time n ~nranks:28 ~messages_per_rank:4 ~bytes_per_message:1e5 in
  let master =
    Netmodel.master_coordinated_time n ~nranks:28 ~messages_per_rank:4 ~bytes_per_message:1e5
  in
  check_bool "master much slower" true (master > 10.0 *. async)

let netmodel_tianhe_small_message_congestion () =
  let n = Netmodel.tianhe3_prototype in
  let small = Netmodel.exchange_time n ~nranks:256 ~messages_per_rank:4 ~bytes_per_message:20e3 in
  let small_few = Netmodel.exchange_time n ~nranks:32 ~messages_per_rank:4 ~bytes_per_message:20e3 in
  check_bool "congestion grows with ranks" true (small > 2.0 *. small_few)

let scaling_weak_near_ideal () =
  let make_stencil dims = Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "3d7pt_star") in
  let configs =
    List.map
      (fun (c : Msc_benchsuite.Settings.scaling_config) ->
        (c.Msc_benchsuite.Settings.sunway_mpi_grid, c.Msc_benchsuite.Settings.weak_sub_grid))
      (List.filter
         (fun (c : Msc_benchsuite.Settings.scaling_config) ->
           c.Msc_benchsuite.Settings.dim = 3)
         Msc_benchsuite.Settings.table7)
  in
  let points = Scaling.run ~platform:Scaling.Sunway ~make_stencil ~configs in
  List.iter
    (fun (p : Scaling.point) ->
      check_bool "weak >= 95% ideal" true (p.Scaling.gflops >= 0.95 *. p.Scaling.ideal_gflops))
    points;
  check_bool "8x speedup" true (Scaling.speedup_vs_first points > 7.0)

let scaling_tianhe_2d_strong_droops () =
  let make_stencil dims = Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "2d9pt_star") in
  let configs =
    List.map
      (fun (c : Msc_benchsuite.Settings.scaling_config) ->
        (c.Msc_benchsuite.Settings.tianhe3_mpi_grid, c.Msc_benchsuite.Settings.strong_sub_grid))
      (List.filter
         (fun (c : Msc_benchsuite.Settings.scaling_config) ->
           c.Msc_benchsuite.Settings.dim = 2)
         Msc_benchsuite.Settings.table7)
  in
  let points = Scaling.run ~platform:Scaling.Tianhe3 ~make_stencil ~configs in
  let last = List.nth points (List.length points - 1) in
  check_bool "visible droop at max scale" true
    (last.Scaling.gflops < 0.9 *. last.Scaling.ideal_gflops)

let scaling_temporal_comm_amortised () =
  (* On a latency-dominated configuration (small faces), the deep exchange's
     alpha amortisation must win; the bandwidth term alone cannot grow the
     per-step cost above the depth-1 baseline by construction. *)
  let t1 =
    Scaling.comm_time Scaling.Tianhe3 ~ranks:256 ~sub_grid:[| 64; 64 |]
      ~radius:[| 1; 1 |] ~elem:8 ~faces_only:true
  in
  let t4 =
    Scaling.comm_time ~depth:4 Scaling.Tianhe3 ~ranks:256 ~sub_grid:[| 64; 64 |]
      ~radius:[| 1; 1 |] ~elem:8 ~faces_only:true
  in
  check_bool "deep blocks amortise the alpha cost" true (t4 < t1);
  check_bool "depth validated" true
    (try
       ignore
         (Scaling.comm_time ~depth:0 Scaling.Tianhe3 ~ranks:4
            ~sub_grid:[| 8; 8 |] ~radius:[| 1; 1 |] ~elem:8 ~faces_only:true);
       false
     with Invalid_argument _ -> true)

let scaling_temporal_compute_factor () =
  let f1 =
    Scaling.temporal_compute_factor ~sub_grid:[| 32; 32 |] ~radius:[| 1; 1 |]
      ~depth:1
  in
  check_float "depth 1 is free" 1.0 f1;
  let f2 =
    Scaling.temporal_compute_factor ~sub_grid:[| 32; 32 |] ~radius:[| 1; 1 |]
      ~depth:2
  in
  let f4 =
    Scaling.temporal_compute_factor ~sub_grid:[| 32; 32 |] ~radius:[| 1; 1 |]
      ~depth:4
  in
  check_bool "ghost inflation grows with depth" true (1.0 < f2 && f2 < f4);
  (* Depth 2 over 32x32 r=1: substep 0 sweeps 34^2, substep 1 sweeps 32^2. *)
  check_float "closed form" ((34.0 ** 2.0 +. 32.0 ** 2.0) /. 2048.0) f2

let scaling_cores_accounting () =
  let make_stencil dims = Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "3d7pt_star") in
  let points =
    Scaling.run ~platform:Scaling.Sunway ~make_stencil
      ~configs:[ ([| 8; 4; 4 |], [| 128; 128; 128 |]) ]
  in
  match points with
  | [ p ] -> check_int "65 cores per CG" (128 * 65) p.Scaling.cores
  | _ -> Alcotest.fail "one point expected"

let decomp_core_shape_tiles () =
  let core = Decomp.core_shape ~ranks_shape:[| 64; 64 |] ~ranks_per_node:8 in
  check_int "core holds the node" 8 (Array.fold_left ( * ) 1 core);
  Array.iteri
    (fun d c -> check_int "core tiles the grid" 0 (64 mod c) |> fun () -> ignore d)
    core;
  (* A prime node size that divides no extent is dropped, not forced. *)
  let degenerate = Decomp.core_shape ~ranks_shape:[| 64; 64 |] ~ranks_per_node:7 in
  Alcotest.(check (array int)) "undividable factors dropped" [| 1; 1 |] degenerate;
  let d = Decomp.create ~global:[| 256; 256 |] ~ranks_shape:[| 64; 64 |] in
  let core = Decomp.core_shape ~ranks_shape:[| 64; 64 |] ~ranks_per_node:8 in
  (* Node ids partition the ranks into equal blocks of the core size. *)
  let counts = Hashtbl.create 64 in
  for r = 0 to d.Decomp.nranks - 1 do
    let n = Decomp.node_of_rank d ~core r in
    Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
  done;
  check_int "node count" (4096 / 8) (Hashtbl.length counts);
  Hashtbl.iter (fun _ c -> check_int "ranks per node" 8 c) counts;
  check_bool "row neighbours share a node" true (Decomp.same_node d ~core 0 1);
  check_bool "blocks end" false (Decomp.same_node d ~core 1 2)

let scaling_hier_cheaper_at_scale () =
  let flat =
    Scaling.comm_time Scaling.Tianhe3 ~ranks:1024 ~sub_grid:[| 128; 128 |]
      ~radius:[| 1; 1 |] ~elem:8 ~faces_only:false
  in
  let one =
    Scaling.comm_time ~ranks_per_node:1 Scaling.Tianhe3 ~ranks:1024
      ~sub_grid:[| 128; 128 |] ~radius:[| 1; 1 |] ~elem:8 ~faces_only:false
  in
  check_float "rpn 1 is the flat model" flat one;
  let hier =
    Scaling.comm_time
      ~ranks_per_node:(Scaling.ranks_per_node Scaling.Tianhe3)
      Scaling.Tianhe3 ~ranks:1024 ~sub_grid:[| 128; 128 |] ~radius:[| 1; 1 |]
      ~elem:8 ~faces_only:false
  in
  (* Aggregation trades 1024 congested endpoints exchanging 8-byte corners
     for 128 nodes exchanging a few large slabs: the alpha bill collapses. *)
  check_bool "hierarchical wins at scale" true (hier *. 2.0 < flat);
  check_bool "rpn validated" true
    (try
       ignore
         (Scaling.comm_time ~ranks_per_node:0 Scaling.Tianhe3 ~ranks:4
            ~sub_grid:[| 8; 8 |] ~radius:[| 1; 1 |] ~elem:8 ~faces_only:true);
       false
     with Invalid_argument _ -> true)

let scaling_efficiency_curve_weak () =
  let make_stencil dims =
    Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "2d9pt_star")
  in
  let pts =
    Scaling.efficiency_curve Scaling.Sunway ~make_stencil ~mode:`Weak
      ~base:[| 64; 64 |] ~ladder:[ 16; 64; 256 ]
  in
  check_int "one point per rung" 3 (List.length pts);
  let first = List.hd pts in
  check_float "baseline efficiency" 1.0 first.Scaling.e_efficiency;
  List.iter
    (fun (p : Scaling.eff_point) ->
      check_int "grid covers the ranks" p.Scaling.e_ranks
        (Array.fold_left ( * ) 1 p.Scaling.e_grid);
      Alcotest.(check (array int)) "weak sub-grid constant" [| 64; 64 |] p.Scaling.e_sub;
      check_bool "efficiency sane" true
        (p.Scaling.e_efficiency > 0.5 && p.Scaling.e_efficiency <= 1.0 +. 1e-9))
    pts

let scaling_efficiency_curve_strong_depth () =
  let make_stencil dims =
    Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "2d9pt_star")
  in
  let pts =
    Scaling.efficiency_curve ~depth:16 Scaling.Tianhe3 ~make_stencil
      ~mode:`Strong ~base:[| 512; 512 |] ~ladder:[ 16; 256 ]
  in
  (match pts with
  | [ p16; p256 ] ->
      Alcotest.(check (array int)) "strong sub shrinks" [| 128; 128 |] p16.Scaling.e_sub;
      Alcotest.(check (array int)) "strong sub shrinks more" [| 32; 32 |]
        p256.Scaling.e_sub;
      (* radius 1, thinnest extent 128 / 32: the requested depth fits. *)
      check_int "depth honoured" 16 p16.Scaling.e_depth;
      check_int "depth honoured at scale" 16 p256.Scaling.e_depth;
      check_bool "strong efficiency positive" true (p256.Scaling.e_efficiency > 0.0)
  | _ -> Alcotest.fail "two points expected");
  (* Geometry caps the depth: an 8-wide sub-grid over the star's radius-2
     reach cannot host more than a 4-deep block. *)
  let capped =
    Scaling.efficiency_curve ~depth:16 Scaling.Tianhe3 ~make_stencil ~mode:`Weak
      ~base:[| 8; 8 |] ~ladder:[ 16 ]
  in
  check_int "depth capped by geometry" 4 (List.hd capped).Scaling.e_depth

let suites =
  [
    ( "comm.mpi",
      [
        tc "send/recv" mpi_send_recv;
        tc "fifo" mpi_fifo_order;
        tc "tag matching" mpi_tag_matching;
        tc "payload copied" mpi_payload_isolated;
        tc "deadlock detected" mpi_deadlock_detected;
        tc "deadlock report" mpi_deadlock_report_printable;
        tc "counters" mpi_counters;
        tc "test probe" mpi_test_probe;
        tc "simulated latency" mpi_simulated_latency;
        tc "harness sleep-free" mpi_harness_sleep_free;
        tc "rank bounds" mpi_rank_bounds;
        mpi_parity_with_reference_property;
      ] );
    ( "comm.decomp",
      [
        tc "coords roundtrip" decomp_coords_roundtrip;
        tc "even split" decomp_even_split;
        tc "uneven split" decomp_uneven_split;
        tc "covers globally" decomp_covers;
        tc "neighbors" decomp_neighbors;
        tc "directions" decomp_directions;
        tc "dir tags unique" decomp_dir_index_unique;
        tc "auto shape" decomp_auto_shape;
        tc "validation" decomp_validation;
        tc "degenerate and large shapes" decomp_degenerate_and_large_shapes;
        decomp_periodic_inverse_property;
        decomp_shape_partition_property;
      ] );
    ( "comm.halo",
      [
        tc "pack/unpack roundtrip" halo_pack_unpack_roundtrip;
        tc "corner roundtrip" halo_corner_roundtrip;
        tc "payload sizes" halo_payload_sizes;
        tc "unpack size mismatch" halo_unpack_size_mismatch;
        tc "exchange fills outer" halo_exchange_fills_outer;
        halo_blit_matches_naive_property;
      ] );
    ( "comm.distributed",
      [
        tc "star exact" distributed_star_exact;
        tc "box corners exact" distributed_box_corners_exact;
        tc "uneven exact" distributed_uneven_exact;
        tc "wave exact" distributed_wave_exact;
        tc "single rank" distributed_single_rank_degenerate;
        tc "wide halo" distributed_wide_halo_exact;
        tc "message accounting" distributed_message_accounting;
        tc "gather shape" distributed_gather_shape;
      ] );
    ( "comm.overlapped",
      [
        tc "suite bit-identical across engines" engines_bit_identical_across_suite;
        tc "tri-engine bit-identical at 4x4" engines_bit_identical_4x4;
        tc "both engines match single grid" engines_match_single_grid;
        tc "periodic exact" overlapped_periodic_exact;
        tc "pool-parallel exact" overlapped_pool_parallel_exact;
        tc "thin ranks all shell" overlapped_thin_rank_exact;
        tc "overlap window traced" overlapped_traces_overlap_window;
      ] );
    ( "comm.temporal",
      [
        tc "depth-1 tri-engine bit identity" temporal_depth1_bit_identical_across_suite;
        tc "deep star exact" temporal_deep_star_exact;
        tc "deep box uneven exact" temporal_deep_box_uneven_exact;
        tc "periodic exact" temporal_periodic_exact;
        tc "time window 2 exact" temporal_time_window2_exact;
        tc "thin rank clamps" temporal_thin_rank_clamps;
        tc "effective depth reported" temporal_effective_depth_reported;
        tc "pool-parallel exact" temporal_pool_parallel_exact;
        tc "message savings" temporal_message_savings;
        tc "invalid args" temporal_invalid_args;
      ] );
    ("comm.properties", [ distributed_property; temporal_property ]);
    ( "comm.netmodel_scaling",
      [
        tc "monotone in bytes" netmodel_monotone_in_bytes;
        tc "master bottleneck" netmodel_master_bottleneck;
        tc "tianhe congestion" netmodel_tianhe_small_message_congestion;
        tc "weak near ideal" scaling_weak_near_ideal;
        tc "tianhe 2d strong droops" scaling_tianhe_2d_strong_droops;
        tc "temporal comm amortised" scaling_temporal_comm_amortised;
        tc "temporal compute factor" scaling_temporal_compute_factor;
        tc "cores accounting" scaling_cores_accounting;
        tc "core shape tiles" decomp_core_shape_tiles;
        tc "hier comm cheaper" scaling_hier_cheaper_at_scale;
        tc "efficiency curve weak" scaling_efficiency_curve_weak;
        tc "efficiency curve strong+depth" scaling_efficiency_curve_strong_depth;
      ] );
  ]
