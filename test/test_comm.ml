(* Tests for the communication library: the MPI simulator, domain
   decomposition, halo pack/unpack/exchange, the distributed runtime, the
   network model and the scalability estimator. *)

open Helpers
module Mpi = Msc_comm.Mpi_sim
module Decomp = Msc_comm.Decomp
module Halo = Msc_comm.Halo
module Distributed = Msc_comm.Distributed
module Netmodel = Msc_comm.Netmodel
module Scaling = Msc_comm.Scaling
module Grid = Msc_exec.Grid

(* --- MPI simulator --- *)

let mpi_send_recv () =
  let mpi = Mpi.create ~nranks:4 in
  Mpi.isend mpi ~src:0 ~dst:3 ~tag:7 (Bytes.of_string "hello");
  let req = Mpi.irecv mpi ~dst:3 ~src:0 ~tag:7 in
  check_string "payload" "hello" (Bytes.to_string (Mpi.wait mpi req));
  check_int "drained" 0 (Mpi.pending_messages mpi)

let mpi_fifo_order () =
  let mpi = Mpi.create ~nranks:2 in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "first");
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.of_string "second");
  check_string "fifo 1" "first"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)));
  check_string "fifo 2" "second"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)))

let mpi_tag_matching () =
  let mpi = Mpi.create ~nranks:2 in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:1 (Bytes.of_string "a");
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:2 (Bytes.of_string "b");
  check_string "tag 2 first" "b"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:2)));
  check_string "then tag 1" "a"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:1)))

let mpi_payload_isolated () =
  let mpi = Mpi.create ~nranks:2 in
  let buf = Bytes.of_string "orig" in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 buf;
  Bytes.set buf 0 'X';
  check_string "copy semantics" "orig"
    (Bytes.to_string (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)))

let mpi_deadlock_detected () =
  let mpi = Mpi.create ~nranks:2 in
  check_bool "missing message fails" true
    (try ignore (Mpi.wait mpi (Mpi.irecv mpi ~dst:1 ~src:0 ~tag:0)); false
     with Failure _ -> true)

let mpi_counters () =
  let mpi = Mpi.create ~nranks:2 in
  Mpi.isend mpi ~src:0 ~dst:1 ~tag:0 (Bytes.create 100);
  check_int "messages" 1 (Mpi.messages_sent mpi);
  check_int "bytes" 100 (Mpi.bytes_sent mpi);
  Mpi.reset_counters mpi;
  check_int "reset" 0 (Mpi.messages_sent mpi)

let mpi_rank_bounds () =
  let mpi = Mpi.create ~nranks:2 in
  check_bool "bad rank" true
    (try Mpi.isend mpi ~src:0 ~dst:2 ~tag:0 Bytes.empty; false
     with Invalid_argument _ -> true)

(* --- Decomp --- *)

let decomp_coords_roundtrip () =
  let d = Decomp.create ~global:[| 32; 32; 32 |] ~ranks_shape:[| 2; 3; 4 |] in
  for rank = 0 to d.Decomp.nranks - 1 do
    check_int "roundtrip" rank (Decomp.rank_of_coords d (Decomp.coords_of_rank d rank))
  done

let decomp_even_split () =
  let d = Decomp.create ~global:[| 8; 8 |] ~ranks_shape:[| 2; 2 |] in
  let offset, extent = Decomp.subdomain d ~rank:3 in
  Alcotest.(check (array int)) "offset" [| 4; 4 |] offset;
  Alcotest.(check (array int)) "extent" [| 4; 4 |] extent

let decomp_uneven_split () =
  let d = Decomp.create ~global:[| 10 |] ~ranks_shape:[| 3 |] in
  let extents = List.init 3 (fun r -> snd (Decomp.subdomain d ~rank:r)) in
  Alcotest.(check (list (array int))) "4,3,3" [ [| 4 |]; [| 3 |]; [| 3 |] ] extents

let decomp_covers () =
  List.iter
    (fun (global, shape) ->
      let d = Decomp.create ~global ~ranks_shape:shape in
      check_bool "partition" true (Decomp.covers_globally d))
    [
      ([| 10; 7 |], [| 3; 2 |]);
      ([| 16; 16; 16 |], [| 2; 2; 2 |]);
      ([| 13 |], [| 5 |]);
    ]

let decomp_neighbors () =
  let d = Decomp.create ~global:[| 8; 8 |] ~ranks_shape:[| 2; 2 |] in
  check_bool "right of 0 is 1" true (Decomp.neighbor d ~rank:0 ~dir:[| 0; 1 |] = Some 1);
  check_bool "down of 0 is 2" true (Decomp.neighbor d ~rank:0 ~dir:[| 1; 0 |] = Some 2);
  check_bool "boundary" true (Decomp.neighbor d ~rank:0 ~dir:[| -1; 0 |] = None);
  check_bool "diagonal" true (Decomp.neighbor d ~rank:0 ~dir:[| 1; 1 |] = Some 3)

let decomp_directions () =
  check_int "2d faces" 4 (List.length (Decomp.directions ~ndim:2 ~faces_only:true));
  check_int "2d all" 8 (List.length (Decomp.directions ~ndim:2 ~faces_only:false));
  check_int "3d faces" 6 (List.length (Decomp.directions ~ndim:3 ~faces_only:true));
  check_int "3d all" 26 (List.length (Decomp.directions ~ndim:3 ~faces_only:false))

let decomp_dir_index_unique () =
  let dirs = Decomp.directions ~ndim:3 ~faces_only:false in
  let idxs = List.map (Decomp.dir_index ~ndim:3) dirs in
  check_int "unique tags" (List.length dirs) (List.length (List.sort_uniq compare idxs))

let decomp_auto_shape () =
  Alcotest.(check (array int)) "28 over 2d" [| 7; 4 |] (Decomp.auto_shape ~nranks:28 ~ndim:2);
  Alcotest.(check (array int)) "64 over 3d" [| 4; 4; 4 |] (Decomp.auto_shape ~nranks:64 ~ndim:3);
  check_int "product preserved" 28
    (Array.fold_left ( * ) 1 (Decomp.auto_shape ~nranks:28 ~ndim:3))

let decomp_validation () =
  check_bool "too many procs" true
    (try ignore (Decomp.create ~global:[| 4 |] ~ranks_shape:[| 8 |]); false
     with Invalid_argument _ -> true)

(* --- Halo pack/unpack --- *)

let halo_pack_unpack_roundtrip () =
  let a = Grid.create ~shape:[| 4; 6 |] ~halo:[| 2; 2 |] in
  let b = Grid.create ~shape:[| 4; 6 |] ~halo:[| 2; 2 |] in
  Grid.fill a (fun c -> float_of_int ((c.(0) * 10) + c.(1)) +. 0.5);
  (* Pack a's top inner slab; unpack into b's bottom outer halo (as the
     neighbour below would). *)
  let payload = Halo.pack a ~dir:[| 1; 0 |] ~width:[| 2; 2 |] in
  Halo.unpack b ~dir:[| -1; 0 |] ~width:[| 2; 2 |] payload;
  (* a's rows 2..3 must now live in b's halo rows -2..-1. *)
  for r = 0 to 1 do
    for c = 0 to 5 do
      check_float "transferred" (Grid.get a [| 2 + r; c |]) (Grid.get b [| r - 2; c |])
    done
  done

let halo_payload_sizes () =
  let g = Grid.create ~shape:[| 4; 6 |] ~halo:[| 1; 1 |] in
  check_int "face row" (1 * 6) (Halo.payload_elems g ~dir:[| 1; 0 |] ~width:[| 1; 1 |]);
  check_int "face col" (4 * 1) (Halo.payload_elems g ~dir:[| 0; -1 |] ~width:[| 1; 1 |]);
  check_int "corner" 1 (Halo.payload_elems g ~dir:[| 1; 1 |] ~width:[| 1; 1 |])

let halo_unpack_size_mismatch () =
  let g = Grid.create ~shape:[| 4; 4 |] ~halo:[| 1; 1 |] in
  check_bool "size checked" true
    (try Halo.unpack g ~dir:[| 1; 0 |] ~width:[| 1; 1 |] (Bytes.create 3); false
     with Invalid_argument _ -> true)

let halo_corner_roundtrip () =
  let a = Grid.create ~shape:[| 5; 4 |] ~halo:[| 2; 2 |] in
  let b = Grid.create ~shape:[| 5; 4 |] ~halo:[| 2; 2 |] in
  Grid.fill a (fun c -> float_of_int ((c.(0) * 7) + c.(1)) +. 0.25);
  (* Diagonal (corner) transfer with asymmetric width. *)
  let payload = Halo.pack a ~dir:[| 1; 1 |] ~width:[| 2; 1 |] in
  Halo.unpack b ~dir:[| -1; -1 |] ~width:[| 2; 1 |] payload;
  for r = 0 to 1 do
    check_float "corner cell" (Grid.get a [| 3 + r; 3 |]) (Grid.get b [| r - 2; -1 |])
  done

(* Property: the row-blit pack/unpack agree with the retained
   coordinate-at-a-time reference on random shapes, halos, widths and
   directions (faces, edges and corners; a dir of all zeros packs the whole
   interior, also legal). *)
let halo_blit_matches_naive_property =
  qc ~count:120 "blit pack/unpack == naive reference"
    QCheck.(
      list_of_size
        Gen.(int_range 1 3)
        (quad (int_range 3 8) (int_range 1 3) (int_range 1 3) (int_range (-1) 1)))
    (fun dims ->
      let shape = Array.of_list (List.map (fun (n, _, _, _) -> n) dims) in
      let halo = Array.of_list (List.map (fun (_, h, _, _) -> h) dims) in
      let width = Array.of_list (List.map (fun (_, h, w, _) -> min w h) dims) in
      let dir = Array.of_list (List.map (fun (_, _, _, d) -> d) dims) in
      let g = Grid.create ~shape ~halo in
      Grid.fill_extended g (fun c ->
          let acc = ref 1.0 in
          Array.iteri
            (fun d k -> acc := !acc +. (float_of_int ((d + 3) * k) *. 0.21))
            c;
          !acc);
      let fast = Halo.pack g ~dir ~width in
      let naive = Halo.pack_naive g ~dir ~width in
      let b1 = Grid.create ~shape ~halo and b2 = Grid.create ~shape ~halo in
      Halo.unpack b1 ~dir ~width fast;
      Halo.unpack_naive b2 ~dir ~width naive;
      Bytes.equal fast naive && b1.Grid.data = b2.Grid.data)

let halo_exchange_fills_outer () =
  let d = Decomp.create ~global:[| 8; 8 |] ~ranks_shape:[| 2; 2 |] in
  let mpi = Mpi.create ~nranks:4 in
  let grids =
    Array.init 4 (fun rank ->
        let _, extent = Decomp.subdomain d ~rank in
        let g = Grid.create ~shape:extent ~halo:[| 1; 1 |] in
        Grid.fill g (fun _ -> float_of_int (rank + 1));
        g)
  in
  Halo.exchange mpi d ~grids ~width:[| 1; 1 |] ~faces_only:false;
  (* Rank 0's right outer halo holds rank 1's values; its corner holds 3's. *)
  check_float "right halo from rank 1" 2.0 (Grid.get grids.(0) [| 0; 4 |]);
  check_float "bottom halo from rank 2" 3.0 (Grid.get grids.(0) [| 4; 0 |]);
  check_float "corner from rank 3" 4.0 (Grid.get grids.(0) [| 4; 4 |]);
  (* Physical boundary stays zero. *)
  check_float "physical boundary" 0.0 (Grid.get grids.(0) [| -1; 0 |]);
  check_int "no leftover messages" 0 (Mpi.pending_messages mpi)

(* --- Distributed runtime --- *)

let distributed_star_exact () =
  let _, st = stencil_3d7pt ~n:12 () in
  check_float "bit-identical" 0.0 (Distributed.validate ~steps:4 ~ranks_shape:[| 2; 2; 2 |] st)

let distributed_box_corners_exact () =
  let _, st = stencil_2d9pt_box ~m:14 ~n:18 () in
  check_float "bit-identical" 0.0 (Distributed.validate ~steps:4 ~ranks_shape:[| 2; 3 |] st)

let distributed_uneven_exact () =
  let _, st = stencil_2d9pt_box ~m:13 ~n:17 () in
  check_float "uneven blocks" 0.0 (Distributed.validate ~steps:3 ~ranks_shape:[| 3; 2 |] st)

let distributed_wave_exact () =
  let st = stencil_wave2d ~n:16 () in
  check_float "state terms survive exchange" 0.0
    (Distributed.validate ~steps:5 ~ranks_shape:[| 2; 2 |] st)

let distributed_single_rank_degenerate () =
  let _, st = stencil_3d7pt ~n:8 () in
  check_float "1 rank" 0.0 (Distributed.validate ~steps:3 ~ranks_shape:[| 1; 1; 1 |] st)

let distributed_wide_halo_exact () =
  let grid = Msc_frontend.Builder.def_tensor_2d ~time_window:2 ~halo:3 "B" Msc_ir.Dtype.F64 18 18 in
  let k = Msc_frontend.Builder.star_kernel ~name:"S" ~radius:3 grid in
  let st = Msc_frontend.Builder.two_step ~name:"2d13pt_star" k in
  check_float "radius-3 exchange" 0.0 (Distributed.validate ~steps:3 ~ranks_shape:[| 2; 2 |] st)

let distributed_message_accounting () =
  let _, st = stencil_3d7pt ~n:12 () in
  let dist = Distributed.create ~ranks_shape:[| 2; 2; 2 |] st in
  let before = Mpi.messages_sent (Distributed.mpi dist) in
  (* 8 ranks, faces only (star): each rank has 3 neighbours -> 24 msgs. *)
  Distributed.step dist;
  check_int "24 messages per exchange" (before + 24)
    (Mpi.messages_sent (Distributed.mpi dist))

let distributed_gather_shape () =
  let _, st = stencil_3d7pt ~n:12 () in
  let dist = Distributed.create ~ranks_shape:[| 2; 2; 1 |] st in
  Distributed.run dist 2;
  let g = Distributed.gather dist in
  Alcotest.(check (array int)) "global shape" [| 12; 12; 12 |] g.Grid.shape

let distributed_property =
  qc ~count:12 "distributed == single for random rank shapes"
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (px, py) ->
      let _, st = stencil_2d9pt_box ~m:12 ~n:12 () in
      Distributed.validate ~steps:2 ~ranks_shape:[| px; py |] st = 0.0)

(* --- Netmodel & Scaling --- *)

let netmodel_monotone_in_bytes () =
  let n = Netmodel.sunway_taihulight in
  let t1 = Netmodel.exchange_time n ~nranks:64 ~messages_per_rank:4 ~bytes_per_message:1e3 in
  let t2 = Netmodel.exchange_time n ~nranks:64 ~messages_per_rank:4 ~bytes_per_message:1e6 in
  check_bool "more bytes slower" true (t2 > t1)

let netmodel_master_bottleneck () =
  let n = Netmodel.shared_memory in
  let async = Netmodel.exchange_time n ~nranks:28 ~messages_per_rank:4 ~bytes_per_message:1e5 in
  let master =
    Netmodel.master_coordinated_time n ~nranks:28 ~messages_per_rank:4 ~bytes_per_message:1e5
  in
  check_bool "master much slower" true (master > 10.0 *. async)

let netmodel_tianhe_small_message_congestion () =
  let n = Netmodel.tianhe3_prototype in
  let small = Netmodel.exchange_time n ~nranks:256 ~messages_per_rank:4 ~bytes_per_message:20e3 in
  let small_few = Netmodel.exchange_time n ~nranks:32 ~messages_per_rank:4 ~bytes_per_message:20e3 in
  check_bool "congestion grows with ranks" true (small > 2.0 *. small_few)

let scaling_weak_near_ideal () =
  let make_stencil dims = Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "3d7pt_star") in
  let configs =
    List.map
      (fun (c : Msc_benchsuite.Settings.scaling_config) ->
        (c.Msc_benchsuite.Settings.sunway_mpi_grid, c.Msc_benchsuite.Settings.weak_sub_grid))
      (List.filter
         (fun (c : Msc_benchsuite.Settings.scaling_config) ->
           c.Msc_benchsuite.Settings.dim = 3)
         Msc_benchsuite.Settings.table7)
  in
  let points = Scaling.run ~platform:Scaling.Sunway ~make_stencil ~configs in
  List.iter
    (fun (p : Scaling.point) ->
      check_bool "weak >= 95% ideal" true (p.Scaling.gflops >= 0.95 *. p.Scaling.ideal_gflops))
    points;
  check_bool "8x speedup" true (Scaling.speedup_vs_first points > 7.0)

let scaling_tianhe_2d_strong_droops () =
  let make_stencil dims = Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "2d9pt_star") in
  let configs =
    List.map
      (fun (c : Msc_benchsuite.Settings.scaling_config) ->
        (c.Msc_benchsuite.Settings.tianhe3_mpi_grid, c.Msc_benchsuite.Settings.strong_sub_grid))
      (List.filter
         (fun (c : Msc_benchsuite.Settings.scaling_config) ->
           c.Msc_benchsuite.Settings.dim = 2)
         Msc_benchsuite.Settings.table7)
  in
  let points = Scaling.run ~platform:Scaling.Tianhe3 ~make_stencil ~configs in
  let last = List.nth points (List.length points - 1) in
  check_bool "visible droop at max scale" true
    (last.Scaling.gflops < 0.9 *. last.Scaling.ideal_gflops)

let scaling_cores_accounting () =
  let make_stencil dims = Msc_benchsuite.Suite.stencil ~dims (Msc_benchsuite.Suite.find "3d7pt_star") in
  let points =
    Scaling.run ~platform:Scaling.Sunway ~make_stencil
      ~configs:[ ([| 8; 4; 4 |], [| 128; 128; 128 |]) ]
  in
  match points with
  | [ p ] -> check_int "65 cores per CG" (128 * 65) p.Scaling.cores
  | _ -> Alcotest.fail "one point expected"

let suites =
  [
    ( "comm.mpi",
      [
        tc "send/recv" mpi_send_recv;
        tc "fifo" mpi_fifo_order;
        tc "tag matching" mpi_tag_matching;
        tc "payload copied" mpi_payload_isolated;
        tc "deadlock detected" mpi_deadlock_detected;
        tc "counters" mpi_counters;
        tc "rank bounds" mpi_rank_bounds;
      ] );
    ( "comm.decomp",
      [
        tc "coords roundtrip" decomp_coords_roundtrip;
        tc "even split" decomp_even_split;
        tc "uneven split" decomp_uneven_split;
        tc "covers globally" decomp_covers;
        tc "neighbors" decomp_neighbors;
        tc "directions" decomp_directions;
        tc "dir tags unique" decomp_dir_index_unique;
        tc "auto shape" decomp_auto_shape;
        tc "validation" decomp_validation;
      ] );
    ( "comm.halo",
      [
        tc "pack/unpack roundtrip" halo_pack_unpack_roundtrip;
        tc "corner roundtrip" halo_corner_roundtrip;
        tc "payload sizes" halo_payload_sizes;
        tc "unpack size mismatch" halo_unpack_size_mismatch;
        tc "exchange fills outer" halo_exchange_fills_outer;
        halo_blit_matches_naive_property;
      ] );
    ( "comm.distributed",
      [
        tc "star exact" distributed_star_exact;
        tc "box corners exact" distributed_box_corners_exact;
        tc "uneven exact" distributed_uneven_exact;
        tc "wave exact" distributed_wave_exact;
        tc "single rank" distributed_single_rank_degenerate;
        tc "wide halo" distributed_wide_halo_exact;
        tc "message accounting" distributed_message_accounting;
        tc "gather shape" distributed_gather_shape;
      ] );
    ("comm.properties", [ distributed_property ]);
    ( "comm.netmodel_scaling",
      [
        tc "monotone in bytes" netmodel_monotone_in_bytes;
        tc "master bottleneck" netmodel_master_bottleneck;
        tc "tianhe congestion" netmodel_tianhe_small_message_congestion;
        tc "weak near ideal" scaling_weak_near_ideal;
        tc "tianhe 2d strong droops" scaling_tianhe_2d_strong_droops;
        tc "cores accounting" scaling_cores_accounting;
      ] );
  ]
