(* Tests for the benchmark suite (Table 4), the parameter settings (Tables
   5/7/8) and the end-to-end experiment drivers. *)

open Helpers
module Suite = Msc_benchsuite.Suite
module Settings = Msc_benchsuite.Settings
module E = Msc_benchsuite.Experiments

(* --- Suite / Table 4 --- *)

let suite_has_eight () = check_int "eight benchmarks" 8 (List.length Suite.all)

let table4_read_write_exact () =
  (* The Read/Write columns of Table 4 must be reproduced exactly. *)
  List.iter
    (fun b ->
      check_int (b.Suite.name ^ " read") b.Suite.paper_read_bytes
        (Suite.measured_read_bytes b);
      let st = Suite.stencil b in
      check_int (b.Suite.name ^ " write") b.Suite.paper_write_bytes
        (Msc_ir.Kernel.write_bytes_per_point (Suite.kernel_of st)))
    Suite.all

let table4_ops_close () =
  (* Distinct coefficients give 2N-1 ops; the paper's shared-coefficient
     kernels list fewer on high orders. Exact for the low-order entries,
     never below the paper's count. *)
  List.iter
    (fun b ->
      let measured = Suite.measured_ops b in
      check_bool (b.Suite.name ^ " ops >= paper") true (measured >= b.Suite.paper_ops);
      if List.mem b.Suite.name [ "2d9pt_star"; "2d9pt_box"; "3d7pt_star" ] then
        check_int (b.Suite.name ^ " ops exact") b.Suite.paper_ops measured)
    Suite.all

let table4_time_dep_two () =
  List.iter
    (fun b ->
      let st = Suite.stencil b in
      check_int (b.Suite.name ^ " window") 2 (Msc_ir.Stencil.time_window st))
    Suite.all

let suite_find () =
  check_string "found" "3d25pt_star" (Suite.find "3d25pt_star").Suite.name;
  check_bool "missing raises" true
    (try ignore (Suite.find "4d1pt"); false with Not_found -> true)

let suite_default_dims () =
  Alcotest.(check (array int)) "2d" [| 4096; 4096 |] (Suite.default_dims (Suite.find "2d9pt_box"));
  Alcotest.(check (array int)) "3d" [| 256; 256; 256 |] (Suite.default_dims (Suite.find "3d7pt_star"))

let suite_all_verifiable () =
  (* Every benchmark runs correctly through the full pipeline on a small
     grid. This is the §5.1 loop over the whole suite. *)
  List.iter
    (fun b ->
      let dims = match b.Suite.ndim with 2 -> [| 40; 40 |] | _ -> [| 18; 18; 18 |] in
      let st = Suite.stencil ~dims b in
      let r = Msc_exec.Verify.check ~steps:3 st in
      check_bool (b.Suite.name ^ " verified") true (r.Msc_exec.Verify.max_rel_error = 0.0))
    Suite.all

(* --- Settings --- *)

let settings_cover_all_benchmarks () =
  List.iter
    (fun b -> ignore (Settings.sunway_tile b); ignore (Settings.matrix_tile b))
    Suite.all

let settings_table7_shape () =
  check_int "eight rows" 8 (List.length Settings.table7);
  List.iter
    (fun (c : Settings.scaling_config) ->
      let sunway = Array.fold_left ( * ) 1 c.Settings.sunway_mpi_grid in
      let th3 = Array.fold_left ( * ) 1 c.Settings.tianhe3_mpi_grid in
      check_int "sunway = 4x th3 procs" (4 * th3) sunway)
    Settings.table7

let settings_table7_scale_progression () =
  let rows2d =
    List.filter
      (fun (c : Settings.scaling_config) -> c.Settings.dim = 2)
      Settings.table7
  in
  let procs =
    List.map
      (fun (c : Settings.scaling_config) ->
        Array.fold_left ( * ) 1 c.Settings.sunway_mpi_grid)
      rows2d
  in
  Alcotest.(check (list int)) "128..1024 doubling" [ 128; 256; 512; 1024 ] procs

let settings_table8_totals () =
  check_int "six configs" 6 (List.length Settings.table8);
  List.iter
    (fun (c : Settings.physis_config) ->
      check_int "grid product = processes"
        c.Settings.mpi_processes
        (Array.fold_left ( * ) 1 c.Settings.mpi_grid);
      check_int "procs x threads = 28" 28 (c.Settings.mpi_processes * c.Settings.omp_threads);
      (* sub-grid x mpi grid covers the global domain *)
      Array.iteri
        (fun d n ->
          check_int "coverage" c.Settings.global.(d) (n * c.Settings.mpi_grid.(d)))
        c.Settings.sub_grid)
    Settings.table8

(* --- Experiments (smoke + shape) --- *)

let experiments_table4_rows () =
  check_int "eight rows" 8 (List.length (E.table4 ()))

let experiments_fig9_bounds () =
  let sunway = E.fig9_sunway () in
  check_int "eight points" 8 (List.length sunway);
  let bound name =
    (List.find (fun (p : Msc_machine.Roofline.point) -> p.Msc_machine.Roofline.label = name) sunway)
      .Msc_machine.Roofline.bound
  in
  check_bool "2d169 compute bound on Sunway" true
    (bound "2d169pt_box" = Msc_machine.Roofline.Compute_bound);
  check_bool "3d7pt memory bound" true
    (bound "3d7pt_star" = Msc_machine.Roofline.Memory_bound);
  let matrix = E.fig9_matrix () in
  List.iter
    (fun (p : Msc_machine.Roofline.point) ->
      check_bool (p.Msc_machine.Roofline.label ^ " memory bound on Matrix") true
        (p.Msc_machine.Roofline.bound = Msc_machine.Roofline.Memory_bound))
    matrix

let experiments_fig9_achieved_below_roof () =
  List.iter
    (fun (p : Msc_machine.Roofline.point) ->
      check_bool "achieved <= attainable" true
        (p.Msc_machine.Roofline.achieved_gflops
        <= p.Msc_machine.Roofline.attainable_gflops *. 1.001))
    (E.fig9_sunway () @ E.fig9_matrix ())

let experiments_fig10_speedups () =
  let series = E.fig10 () in
  (* 8 benchmarks x 2 platforms x 2 modes *)
  check_int "series count" 32 (List.length series);
  List.iter
    (fun (s : E.fig10_series) ->
      check_int "four scale points" 4 (List.length s.E.points);
      let sp = Msc_comm.Scaling.speedup_vs_first s.E.points in
      (* The 2-D box kernels strong-scale poorly on the Tianhe-3 model (the
         paper's 2-D droop): their 8-direction exchange includes 8-byte
         corner messages, and congestion is priced at each message's true
         size — tiny corners congest the prototype interconnect hardest, so
         the lightest kernel (2d9pt_box) actually runs {e backwards} at
         1024 cores while the heavier boxes droop below the generic floor.
         Star stencils and everything on Sunway must still scale well. *)
      let lo =
        if s.E.platform = Msc_comm.Scaling.Tianhe3 && s.E.mode = `Strong then
          match s.E.benchmark with
          | "2d9pt_box" -> 0.5
          | "2d121pt_box" | "2d169pt_box" -> 1.5
          | _ -> 2.5
        else 2.5
      in
      check_bool "speedup in range" true (sp > lo && sp <= 8.2))
    series

let experiments_renderers_nonempty () =
  List.iter
    (fun (name, f) -> check_bool name true (String.length (f ()) > 100))
    [
      ("table1", E.render_table1);
      ("table4", E.render_table4);
      ("table5", E.render_table5);
      ("table7", E.render_table7);
      ("table8", E.render_table8);
    ]

let experiments_correctness_all_ok () =
  List.iter
    (fun (r : E.correctness_row) ->
      check_bool (r.E.benchmark ^ " " ^ Msc_ir.Dtype.to_string r.E.precision) true r.E.ok)
    (E.correctness ())

let suites =
  [
    ( "suite.table4",
      [
        tc "eight benchmarks" suite_has_eight;
        tc "read/write exact" table4_read_write_exact;
        tc "ops close" table4_ops_close;
        tc "time dep 2" table4_time_dep_two;
        tc "find" suite_find;
        tc "default dims" suite_default_dims;
        slow "all verifiable" suite_all_verifiable;
      ] );
    ( "suite.settings",
      [
        tc "cover all" settings_cover_all_benchmarks;
        tc "table7 shape" settings_table7_shape;
        tc "table7 progression" settings_table7_scale_progression;
        tc "table8 totals" settings_table8_totals;
      ] );
    ( "suite.experiments",
      [
        tc "table4 rows" experiments_table4_rows;
        tc "fig9 bounds" experiments_fig9_bounds;
        tc "fig9 under roof" experiments_fig9_achieved_below_roof;
        slow "fig10 speedups" experiments_fig10_speedups;
        tc "renderers nonempty" experiments_renderers_nonempty;
        slow "correctness all ok" experiments_correctness_all_ok;
      ] );
  ]
