(* API-level tests of the public Msc pipeline, multi-kernel (multi-stage)
   stencils, and the autotuner's SA-vs-exhaustive quality. *)

open Helpers
open Msc

(* --- multi-kernel stencils (STELLA-style multiple stages, §2.4) --- *)

let two_distinct_kernels () =
  (* Res[t] << 0.6 * A(u[t-1]) + 0.4 * B(u[t-2]) with A a star and B a box:
     both kernels appear, and the optimized runtime matches the reference. *)
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 12 14 in
  let a = Builder.star_kernel ~name:"A" ~radius:1 grid in
  let b = Builder.box_kernel ~name:"Bk" ~radius:1 grid in
  let st =
    Builder.(stencil ~name:"two_stage" ~grid ((0.6 *: (a @> 1)) +: (0.4 *: (b @> 2))))
  in
  check_int "two kernels" 2 (List.length (Stencil.kernels st));
  let r = Pipeline.verify ~steps:4 (Pipeline.make ~stencil:st ()) in
  check_bool "verified" true (r.Verify.max_rel_error = 0.0)

let two_kernels_distributed () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 14 14 in
  let a = Builder.star_kernel ~name:"A" ~radius:1 grid in
  let b = Builder.box_kernel ~name:"Bk" ~radius:1 grid in
  let st =
    Builder.(stencil ~name:"two_stage" ~grid ((0.5 *: (a @> 1)) +: (0.5 *: (b @> 1))))
  in
  check_float "distributed exact" 0.0
    (Distributed.validate ~steps:3 ~ranks_shape:[| 2; 2 |] st)

let two_kernels_codegen_roundtrip () =
  if Codegen.Toolchain.available () then begin
    let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 12 12 in
    let a = Builder.star_kernel ~name:"A" ~radius:1 grid in
    let b = Builder.box_kernel ~name:"Bk" ~radius:1 grid in
    let st =
      Builder.(stencil ~name:"two_stage" ~grid ((0.6 *: (a @> 1)) +: (0.4 *: (b @> 2))))
    in
    let sched = Schedule.cpu_canonical ~tile:[| 4; 6 |] ~threads:2 a in
    let rt = Runtime.create st in
    Runtime.run rt 3;
    let expected = Grid.checksum (Runtime.current rt) in
    let files = Codegen.generate ~steps:3 st sched Codegen.Cpu in
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "msc_test_two_stage" in
    match Codegen.Toolchain.compile_and_run ~steps:3 ~dir files with
    | Ok r ->
        check_bool "compiled C matches" true
          (Float.abs (r.Codegen.Toolchain.checksum -. expected)
           /. Float.max 1.0 (Float.abs expected)
          < 1e-12)
    | Error msg -> Alcotest.fail msg
  end

(* --- public pipeline conveniences --- *)

let pipeline_run_and_verify () =
  let _, st = stencil_3d7pt ~n:10 () in
  let pool = Domain_pool.create 2 in
  let p =
    Pipeline.make ~stencil:st ~config:(Exec.Config.make ~pool ()) ()
  in
  let g = Pipeline.run ~steps:3 p in
  check_bool "produced data" true (Grid.max_abs g > 0.0);
  check_bool "verify ok" true (Pipeline.verify ~steps:3 p).Verify.ok

let pipeline_compile_targets () =
  let k, st = stencil_3d7pt ~n:12 () in
  let sched = Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k in
  let p = Pipeline.make ~stencil:st ~schedule:sched () in
  List.iter
    (fun target ->
      let name = Codegen.target_to_string target in
      match Pipeline.compile ~target p with
      | Ok files -> check_bool (name ^ " nonempty") true (List.length files >= 2)
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
    [ Codegen.Cpu; Codegen.Openmp; Codegen.Athread ];
  (* Free-form strings live only at the CLI boundary now. *)
  check_bool "unknown target string" true
    (Result.is_error (Codegen.target_of_string "gpu"))

let pipeline_simulate () =
  let k, st = stencil_3d7pt ~n:16 () in
  let sched = Schedule.sunway_canonical ~tile:[| 2; 4; 8 |] k in
  (match
     Pipeline.simulate ~target:Codegen.Athread
       (Pipeline.make ~stencil:st ~schedule:sched ())
   with
  | Ok (Pipeline.Sunway_report _) -> ()
  | Ok _ -> Alcotest.fail "expected a Sunway report"
  | Error msg -> Alcotest.fail msg);
  let msched = Schedule.matrix_canonical ~tile:[| 2; 4; 8 |] k in
  (match
     Pipeline.simulate ~target:Codegen.Openmp
       (Pipeline.make ~stencil:st ~schedule:msched ())
   with
  | Ok (Pipeline.Matrix_report _) -> ()
  | Ok _ -> Alcotest.fail "expected a Matrix report"
  | Error msg -> Alcotest.fail msg);
  check_bool "cpu has no model" true
    (Result.is_error
       (Pipeline.simulate ~target:Codegen.Cpu (Pipeline.make ~stencil:st ())))

let pipeline_distribute () =
  let _, st = stencil_3d7pt ~n:12 () in
  let dist =
    Pipeline.distribute ~ranks_shape:[| 2; 1; 1 |] (Pipeline.make ~stencil:st ())
  in
  Distributed.run dist 2;
  check_int "steps" 2 (Distributed.steps_done dist)

(* --- autotuner vs exhaustive optimum --- *)

let small_global = [| 128; 64; 64 |]

let make_stencil dims = Suite.stencil ~dims (Suite.find "3d7pt_star")

let exhaustive_finds_optimum () =
  match Autotune.exhaustive ~make_stencil ~global:small_global ~nranks:8 () with
  | None -> Alcotest.fail "space unexpectedly large"
  | Some (config, best) ->
      check_bool "positive" true (best > 0.0);
      (* Spot-check optimality against a few alternatives. *)
      let cost = Autotune.true_cost ~make_stencil ~global:small_global in
      List.iter
        (fun tile ->
          let alt = { config with Tuning_params.tile } in
          check_bool "no better alternative" true (cost alt >= best -. 1e-12))
        [ [| 1; 1; 16 |]; [| 2; 8; 64 |]; [| 4; 4; 32 |] ]

let sa_close_to_exhaustive () =
  match Autotune.exhaustive ~make_stencil ~global:small_global ~nranks:8 () with
  | None -> Alcotest.fail "space unexpectedly large"
  | Some (_, best) ->
      let r =
        Autotune.tune ~seed:5 ~iterations:6000 ~make_stencil ~global:small_global
          ~nranks:8 ()
      in
      (* The annealer optimises a regression model, so allow slack — the
         paper's claim is convergence to a good optimum, not the global one. *)
      check_bool "within 2x of the global optimum" true
        (r.Autotune.best_time_s <= 2.0 *. best)

let exhaustive_respects_cap () =
  check_bool "large space returns None" true
    (Autotune.exhaustive ~max_configs:10 ~make_stencil ~global:small_global ~nranks:8 ()
    = None)

let suites =
  [
    ( "pipeline.multi_kernel",
      [
        tc "two distinct kernels" two_distinct_kernels;
        tc "distributed" two_kernels_distributed;
        tc "codegen roundtrip" two_kernels_codegen_roundtrip;
      ] );
    ( "pipeline.api",
      [
        tc "run + verify" pipeline_run_and_verify;
        tc "compile targets" pipeline_compile_targets;
        tc "simulate" pipeline_simulate;
        tc "distribute" pipeline_distribute;
      ] );
    ( "pipeline.autotune_quality",
      [
        tc "exhaustive optimum" exhaustive_finds_optimum;
        slow "SA close to optimum" sa_close_to_exhaustive;
        tc "cap respected" exhaustive_respects_cap;
      ] );
  ]
