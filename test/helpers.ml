(* Shared fixtures and small assertion helpers for the test suite. *)

open Msc_frontend

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tc name fn = Alcotest.test_case name `Quick fn
let slow name fn = Alcotest.test_case name `Slow fn

let qc ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A 3d7pt two-time-dependency stencil on a small grid. *)
let stencil_3d7pt ?(n = 12) ?(dtype = Msc_ir.Dtype.F64) () =
  let grid = Builder.def_tensor_3d ~time_window:2 ~halo:1 "B" dtype n n n in
  let k = Builder.star_kernel ~name:"S_3d7pt" ~radius:1 grid in
  (k, Builder.two_step ~name:"3d7pt_star" k)

(* A 2d9pt box stencil (corners matter for halo exchange). *)
let stencil_2d9pt_box ?(m = 14) ?(n = 18) () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 m n in
  let k = Builder.box_kernel ~name:"S_2d9pt" ~radius:1 grid in
  (k, Builder.two_step ~name:"2d9pt_box" k)

(* A wave-equation stencil exercising State terms. *)
let stencil_wave2d ?(n = 16) () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "U" Msc_ir.Dtype.F64 n n in
  let lap =
    Builder.kernel ~name:"Lap" ~grid
      ~bindings:[ ("c", 0.2) ]
      Msc_ir.Expr.(
        p "c"
        * (read "U" [| -1; 0 |] + read "U" [| 1; 0 |] + read "U" [| 0; -1 |]
          + read "U" [| 0; 1 |]
          - (f 4.0 * read "U" [| 0; 0 |])))
  in
  Builder.(stencil ~name:"wave2d" ~grid ((2.0 *: state 1) -: state 2 +: (lap @> 1)))

(* Deterministic non-trivial initial condition. *)
let bumpy_init _dt coord =
  let acc = ref 1.0 in
  Array.iteri (fun d c -> acc := !acc +. (0.1 *. sin (float_of_int ((d + 2) * c)))) coord;
  !acc
