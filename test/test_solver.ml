(* Matrix-free solver tests: convergence on the Poisson model problem with
   pinned iteration counts, per-iteration residual telemetry, collective
   accounting, and the bit-stability contract — residual sequences must be
   bit-identical across halo engines at a fixed decomposition. *)

open Helpers
module Solver = Msc_solver.Solver
module Distributed = Msc_comm.Distributed
module Exec = Msc_exec.Exec
module Trace = Msc_trace

(* Pinned on the 9x9 Poisson 2d5pt problem at rel tol 1e-6. A drift here
   means the update recurrences (or the reduction fold order feeding them)
   changed — treat as a regression, not a number to bump casually. *)
let tol = 1e-6
let dims = [| 9; 9 |]
let jacobi_iters = 274
let cg_iters = 13
let rbgs_iters = 141

let problem () = Solver.Problem.poisson ~dims

let method_round_trip () =
  List.iter
    (fun m ->
      match Solver.method_of_string (Solver.method_to_string m) with
      | Some m' -> check_bool "round trip" true (m = m')
      | None -> Alcotest.fail "method_of_string failed")
    Solver.all_methods;
  check_bool "unknown rejected" true (Solver.method_of_string "sor" = None)

let poisson_naming () =
  let p = problem () in
  check_string "2d name" "poisson_2d5pt" p.Solver.Problem.name;
  check_string "3d name" "poisson_3d7pt"
    (Solver.Problem.poisson ~dims:[| 4; 4; 4 |]).Solver.Problem.name;
  check_float "rhs is one" 1.0 (p.Solver.Problem.rhs [| 3; 4 |])

let check_converged ~iters (r : Solver.report) =
  check_bool "converged" true r.Solver.converged;
  check_int "iterations pinned" iters r.Solver.iterations;
  check_bool "within tolerance" true
    (r.Solver.final_residual <= tol *. r.Solver.rhs_norm);
  (* 81 unit loads: ||b|| = 9 exactly. *)
  check_bool "rhs norm" true (r.Solver.rhs_norm = 9.0);
  check_int "one residual per iteration"
    (r.Solver.iterations + 1)
    (Array.length r.Solver.residuals);
  check_bool "residuals.(0) is ||b||" true
    (r.Solver.residuals.(0) = r.Solver.rhs_norm);
  Array.iter
    (fun res -> check_bool "residual finite" true (Float.is_finite res))
    r.Solver.residuals

let jacobi_converges () =
  let r = Solver.solve ~tol ~method_:Solver.Jacobi (problem ()) in
  check_converged ~iters:jacobi_iters r;
  (* ||b|| plus one residual collective per step. *)
  check_int "allreduces" (jacobi_iters + 1) r.Solver.allreduces;
  check_bool "never degrades" true
    (r.Solver.op_engine = r.Solver.engine);
  (* The residual telemetry reaches the trace sink. *)
  let trace = Trace.create () in
  let r2 = Solver.solve ~trace ~tol ~method_:Solver.Jacobi (problem ()) in
  check_int "traced iterations" jacobi_iters r2.Solver.iterations;
  let events = Trace.events trace in
  let count name =
    List.length
      (List.filter
         (function
           | Trace.Span { name = n; _ } | Trace.Counter { name = n; _ } ->
               String.equal n name)
         events)
  in
  check_int "solver.residual counters" jacobi_iters (count "solver.residual");
  check_bool "solver.iter spans" true (count "solver.iter" >= jacobi_iters)

let cg_converges () =
  let r = Solver.solve ~tol ~method_:Solver.Cg (problem ()) in
  check_converged ~iters:cg_iters r;
  (* rr0 (= ||b||) plus two collectives (pAp, rr) per iteration. *)
  check_int "allreduces" (1 + (2 * cg_iters)) r.Solver.allreduces;
  check_bool "cg far faster than jacobi" true (cg_iters * 10 < jacobi_iters)

let rbgs_converges () =
  let r =
    Solver.solve ~tol ~method_:Solver.Red_black_gauss_seidel (problem ())
  in
  check_converged ~iters:rbgs_iters r;
  (* ||b|| plus one residual check per loop entry (iterations + 1). *)
  check_int "allreduces" (rbgs_iters + 2) r.Solver.allreduces;
  check_bool "beats jacobi" true (rbgs_iters < jacobi_iters)

let damped_jacobi_still_converges () =
  let r =
    Solver.solve ~tol:1e-3 ~omega:0.8 ~method_:Solver.Jacobi (problem ())
  in
  check_bool "converged" true r.Solver.converged;
  check_bool "damping slows it down" true
    (r.Solver.iterations
    > (Solver.solve ~tol:1e-3 ~method_:Solver.Jacobi (problem ())).Solver.iterations)

let engines =
  [
    ("bulk", Distributed.Bulk_synchronous);
    ("overlap", Distributed.Overlapped);
    ("temporal2", Distributed.Temporal_blocked { depth = 2 });
  ]

let residuals_bit_identical_across_engines () =
  (* The headline solver contract: at a fixed decomposition, engine choice
     never changes a single bit of any residual. *)
  let p = Solver.Problem.poisson ~dims:[| 10; 12 |] in
  List.iter
    (fun method_ ->
      let run engine =
        Solver.solve
          ~config:(Exec.Config.make ~engine ())
          ~ranks_shape:[| 2; 2 |] ~tol ~method_ p
      in
      let reference = run Distributed.Bulk_synchronous in
      check_bool
        (Solver.method_to_string method_ ^ " reference converged")
        true reference.Solver.converged;
      List.iter
        (fun (ename, engine) ->
          let r = run engine in
          check_int
            (Printf.sprintf "%s/%s iterations" (Solver.method_to_string method_)
               ename)
            reference.Solver.iterations r.Solver.iterations;
          check_bool
            (Printf.sprintf "%s/%s residuals bit-identical"
               (Solver.method_to_string method_) ename)
            true
            (r.Solver.residuals = reference.Solver.residuals))
        engines)
    Solver.all_methods

let temporal_degrade_recorded () =
  let p = problem () in
  let temporal = Distributed.Temporal_blocked { depth = 2 } in
  let config = Exec.Config.make ~engine:temporal () in
  (* CG loads a fresh operand before every apply: no block to deepen. *)
  let r = Solver.solve ~config ~tol ~method_:Solver.Cg p in
  check_bool "request recorded" true (r.Solver.engine = temporal);
  check_bool "operator degraded to bulk" true
    (r.Solver.op_engine = Distributed.Bulk_synchronous);
  (* Jacobi is a real time iteration: the temporal engine runs it natively. *)
  let r2 = Solver.solve ~config ~tol ~method_:Solver.Jacobi p in
  (match r2.Solver.op_engine with
  | Distributed.Temporal_blocked { depth } ->
      check_bool "depth honored" true (depth >= 1)
  | _ -> Alcotest.fail "jacobi must keep the temporal engine");
  check_int "same jacobi iterations" jacobi_iters r2.Solver.iterations

let solve_validates () =
  let p = problem () in
  (match Solver.solve ~tol:0.0 ~method_:Solver.Cg p with
  | _ -> Alcotest.fail "tol 0 must raise"
  | exception Invalid_argument _ -> ());
  (match Solver.solve ~omega:1.5 ~method_:Solver.Jacobi p with
  | _ -> Alcotest.fail "omega > 1 must raise"
  | exception Invalid_argument _ -> ());
  (match Solver.solve ~max_iters:(-1) ~method_:Solver.Cg p with
  | _ -> Alcotest.fail "negative max_iters must raise"
  | exception Invalid_argument _ -> ());
  (* An unreachable tolerance reports non-convergence honestly. *)
  let r = Solver.solve ~tol:1e-15 ~max_iters:3 ~method_:Solver.Jacobi p in
  check_bool "not converged" false r.Solver.converged;
  check_int "stopped at cap" 3 r.Solver.iterations

let pp_report_smoke () =
  let r = Solver.solve ~tol ~method_:Solver.Cg (problem ()) in
  let s = Format.asprintf "%a" Solver.pp_report r in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "names the method" true (has "cg");
  check_bool "names the problem" true (has "poisson_2d5pt");
  check_bool "states convergence" true (has "converged")

let suites =
  [
    ( "solver",
      [
        tc "method round trip" method_round_trip;
        tc "poisson naming" poisson_naming;
        tc "jacobi converges (pinned)" jacobi_converges;
        tc "cg converges (pinned)" cg_converges;
        tc "rbgs converges (pinned)" rbgs_converges;
        tc "damped jacobi" damped_jacobi_still_converges;
        slow "residuals bit-identical across engines"
          residuals_bit_identical_across_engines;
        tc "temporal degrade recorded" temporal_degrade_recorded;
        tc "solve validates" solve_validates;
        tc "pp_report smoke" pp_report_smoke;
      ] );
  ]
