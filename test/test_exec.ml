(* Tests for the execution engine: grids, the kernel interpreter, the
   sliding-window runtime, the naive reference and the verifier. *)

open Helpers
module Grid = Msc_exec.Grid
module Interp = Msc_exec.Interp
module Runtime = Msc_exec.Runtime
module Reference = Msc_exec.Reference
module Verify = Msc_exec.Verify
open Msc_ir
open Msc_frontend

(* --- Grid --- *)

let grid_basics () =
  let g = Grid.create ~shape:[| 3; 4 |] ~halo:[| 1; 2 |] in
  check_int "interior" 12 (Grid.interior_elems g);
  Alcotest.(check (array int)) "padded" [| 5; 8 |] g.Grid.padded;
  Grid.set g [| 0; 0 |] 5.0;
  check_float "get/set" 5.0 (Grid.get g [| 0; 0 |])

let grid_halo_addressable () =
  let g = Grid.create ~shape:[| 4; 4 |] ~halo:[| 1; 1 |] in
  Grid.set g [| -1; -1 |] 2.5;
  Grid.set g [| 4; 4 |] 3.5;
  check_float "corner -1" 2.5 (Grid.get g [| -1; -1 |]);
  check_float "corner +1" 3.5 (Grid.get g [| 4; 4 |])

let grid_fill_and_checksum () =
  let g = Grid.create ~shape:[| 2; 3 |] ~halo:[| 1; 1 |] in
  Grid.fill g (fun c -> float_of_int ((c.(0) * 3) + c.(1)));
  check_float "sum 0..5" 15.0 (Grid.checksum g);
  check_float "max abs" 5.0 (Grid.max_abs g)

let grid_clear_halo () =
  let g = Grid.create ~shape:[| 2; 2 |] ~halo:[| 1; 1 |] in
  Grid.fill_all g 7.0;
  Grid.clear_halo g;
  check_float "interior kept" 7.0 (Grid.get g [| 0; 0 |]);
  check_float "halo zeroed" 0.0 (Grid.get g [| -1; 0 |]);
  check_float "checksum = interior only" 28.0 (Grid.checksum g)

let grid_blit_interior () =
  let a = Grid.create ~shape:[| 3; 3 |] ~halo:[| 1; 1 |] in
  let b = Grid.create ~shape:[| 3; 3 |] ~halo:[| 2; 2 |] in
  Grid.fill a (fun c -> float_of_int (c.(0) + c.(1)));
  Grid.blit_interior ~src:a ~dst:b;
  check_float "copied" (Grid.checksum a) (Grid.checksum b)

let grid_max_rel_error () =
  let a = Grid.create ~shape:[| 2 |] ~halo:[| 0 |] in
  let b = Grid.create ~shape:[| 2 |] ~halo:[| 0 |] in
  Grid.set a [| 0 |] 2.0;
  Grid.set b [| 0 |] 2.002;
  check_bool "about 1e-3" true
    (Float.abs (Grid.max_rel_error ~reference:a b -. 1e-3) < 1e-9)

let grid_validation () =
  check_bool "bad extent" true
    (try ignore (Grid.create ~shape:[| 0 |] ~halo:[| 0 |]); false
     with Invalid_argument _ -> true);
  check_bool "rank mismatch" true
    (try ignore (Grid.create ~shape:[| 2; 2 |] ~halo:[| 1 |]); false
     with Invalid_argument _ -> true)

let grid_of_tensor () =
  let t = Tensor.sp ~halo:[| 2; 1 |] "B" Dtype.F64 [| 4; 6 |] in
  let g = Grid.of_tensor t in
  Alcotest.(check (array int)) "shape" [| 4; 6 |] g.Grid.shape;
  Alcotest.(check (array int)) "halo" [| 2; 1 |] g.Grid.halo

(* --- Interp --- *)

let interp_identity () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 4 4 in
  let k = Builder.kernel ~name:"Id" ~grid (Expr.read "B" [| 0; 0 |]) in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  check_bool "linear" true (Interp.is_linear c);
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  Grid.fill src (fun coord -> float_of_int ((coord.(0) * 4) + coord.(1)));
  Interp.apply c ~src ~dst;
  check_float "identity" (Grid.checksum src) (Grid.checksum dst)

let interp_shift_reads_halo () =
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 4 in
  let k = Builder.kernel ~name:"Shift" ~grid (Expr.read "B" [| 1 |]) in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  Grid.fill src (fun coord -> float_of_int coord.(0) +. 1.0);
  Interp.apply c ~src ~dst;
  (* dst[i] = src[i+1]; src[3+1] is halo = 0 *)
  check_float "dst0" 2.0 (Grid.get dst [| 0 |]);
  check_float "dst3 reads zero halo" 0.0 (Grid.get dst [| 3 |])

let interp_laplacian_hand_value () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 3 3 in
  let k =
    Builder.kernel ~name:"Lap" ~grid
      Expr.(
        read "B" [| -1; 0 |] + read "B" [| 1; 0 |] + read "B" [| 0; -1 |]
        + read "B" [| 0; 1 |]
        - (f 4.0 * read "B" [| 0; 0 |]))
  in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  Grid.fill src (fun coord -> float_of_int ((coord.(0) * 3) + coord.(1)));
  Interp.apply c ~src ~dst;
  (* centre point (1,1)=4: 1 + 7 + 3 + 5 - 16 = 0 *)
  check_float "laplacian of linear field" 0.0 (Grid.get dst [| 1; 1 |])

let interp_accumulate () =
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 3 in
  let k = Builder.kernel ~name:"Id" ~grid (Expr.read "B" [| 0 |]) in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  Grid.fill src (fun _ -> 2.0);
  Grid.fill dst (fun _ -> 1.0);
  Interp.accumulate_range c ~scale:0.5 ~src ~dst ~lo:[| 0 |] ~hi:[| 3 |];
  check_float "1 + 0.5*2" 2.0 (Grid.get dst [| 1 |])

let interp_range_subbox () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 4 4 in
  let k = Builder.kernel ~name:"Id" ~grid (Expr.read "B" [| 0; 0 |]) in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  Grid.fill src (fun _ -> 3.0);
  Interp.apply_range c ~src ~dst ~lo:[| 1; 1 |] ~hi:[| 3; 3 |];
  check_float "inside" 3.0 (Grid.get dst [| 2; 2 |]);
  check_float "outside untouched" 0.0 (Grid.get dst [| 0; 0 |])

let interp_nonlinear_tree_path () =
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 4 in
  let k =
    Builder.kernel ~name:"Sq" ~grid Expr.(read "B" [| 0 |] * read "B" [| 0 |])
  in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  check_bool "tree mode" false (Interp.is_linear c);
  let src = Grid.of_tensor grid and dst = Grid.of_tensor grid in
  Grid.fill src (fun coord -> float_of_int (coord.(0) + 1));
  Interp.apply c ~src ~dst;
  check_float "squares" (1.0 +. 4.0 +. 9.0 +. 16.0) (Grid.checksum dst)

let interp_rejects_aliasing () =
  let grid = Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 4 in
  let k = Builder.kernel ~name:"Id" ~grid (Expr.read "B" [| 0 |]) in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  let g = Grid.of_tensor grid in
  check_bool "alias rejected" true
    (try Interp.apply c ~src:g ~dst:g; false with Invalid_argument _ -> true)

(* --- Runtime --- *)

let runtime_matches_reference () =
  let _, st = stencil_3d7pt ~n:10 () in
  let r = Verify.check ~steps:4 st in
  check_bool "bit-identical" true (r.Verify.max_rel_error = 0.0)

let runtime_tiled_parallel_matches () =
  let k, st = stencil_3d7pt ~n:10 () in
  let sched = Msc_schedule.Schedule.matrix_canonical ~tile:[| 3; 4; 5 |] ~threads:4 k in
  let pool = Msc_util.Domain_pool.create 4 in
  let r =
    Verify.check ~schedule:sched
      ~config:(Msc_exec.Exec.Config.make ~pool ())
      ~steps:4 st
  in
  check_bool "bit-identical" true (r.Verify.max_rel_error = 0.0)

let runtime_athread_mapping_matches () =
  let k, st = stencil_3d7pt ~n:10 () in
  let sched = Msc_schedule.Schedule.sunway_canonical ~tile:[| 2; 5; 5 |] ~cpes:8 k in
  let pool = Msc_util.Domain_pool.create 4 in
  let r =
    Verify.check ~schedule:sched
      ~config:(Msc_exec.Exec.Config.make ~pool ())
      ~steps:3 st
  in
  check_bool "round-robin identical" true (r.Verify.max_rel_error = 0.0)

let runtime_wave_matches () =
  (* The runtime evaluates linear kernels as distributed taps while the
     reference keeps the factored expression tree, so a few ULPs of
     reassociation error are expected -- well inside the fp64 threshold. *)
  let st = stencil_wave2d ~n:12 () in
  let r = Verify.check ~steps:6 st in
  check_bool "within fp64 tolerance" true r.Verify.ok

let runtime_sliding_window_long_run () =
  (* The ring buffer must keep working far beyond the window length. *)
  let _, st = stencil_3d7pt ~n:6 () in
  let rt = Runtime.create st in
  let naive = Reference.create st in
  Runtime.run rt 15;
  Reference.run naive 15;
  check_float "after 15 steps" 0.0
    (Grid.max_rel_error ~reference:(Reference.current naive) (Runtime.current rt))

let runtime_state_accessors () =
  let _, st = stencil_3d7pt ~n:6 () in
  let rt = Runtime.create st in
  check_int "window" 2 (Runtime.time_window rt);
  let before = Grid.checksum (Runtime.current rt) in
  Runtime.step rt;
  (* The previous newest state becomes dt=2. *)
  check_float "states slide" before (Grid.checksum (Runtime.state rt ~dt:2));
  check_int "steps counted" 1 (Runtime.steps_done rt)

let runtime_state_bounds () =
  let _, st = stencil_3d7pt ~n:6 () in
  let rt = Runtime.create st in
  check_bool "dt=0 rejected" true
    (try ignore (Runtime.state rt ~dt:0); false with Invalid_argument _ -> true);
  check_bool "dt=3 rejected" true
    (try ignore (Runtime.state rt ~dt:3); false with Invalid_argument _ -> true)

let runtime_stability () =
  (* two_step with contraction weights must stay bounded. *)
  let _, st = stencil_3d7pt ~n:8 () in
  let rt = Runtime.create st in
  Runtime.run rt 50;
  check_bool "bounded" true (Grid.max_abs (Runtime.current rt) < 10.0)

let runtime_custom_init () =
  let _, st = stencil_3d7pt ~n:6 () in
  let rt = Runtime.create ~init:(fun _ _ -> 1.0) st in
  (* weights sum to 1 and halo is zero, so interior away from the border
     stays 1 after a step; centre point check: *)
  Runtime.step rt;
  check_float "centre stays 1" 1.0 (Grid.get (Runtime.current rt) [| 3; 3; 3 |])

let verify_detects_mismatch () =
  (* Feed the verifier two different initial conditions via a tampered run. *)
  let _, st = stencil_3d7pt ~n:6 () in
  let rt = Runtime.create st in
  Runtime.run rt 2;
  let g = Runtime.current rt in
  let tampered = Grid.copy g in
  Grid.set tampered [| 2; 2; 2 |] (Grid.get g [| 2; 2; 2 |] +. 1.0);
  check_bool "error detected" true (Grid.max_rel_error ~reference:g tampered > 0.1)

let schedule_equivalence_property =
  qc ~count:20 "any legal 2-D tile gives identical results"
    QCheck.(pair (int_range 1 9) (int_range 1 9))
    (fun (tx, ty) ->
      let k, st = stencil_2d9pt_box ~m:9 ~n:9 () in
      let sched = Msc_schedule.Schedule.matrix_canonical ~tile:[| tx; ty |] ~threads:2 k in
      let r = Verify.check ~schedule:sched ~steps:3 st in
      r.Verify.max_rel_error = 0.0)

let suites =
  [
    ( "exec.grid",
      [
        tc "basics" grid_basics;
        tc "halo addressable" grid_halo_addressable;
        tc "fill/checksum" grid_fill_and_checksum;
        tc "clear halo" grid_clear_halo;
        tc "blit interior" grid_blit_interior;
        tc "max rel error" grid_max_rel_error;
        tc "validation" grid_validation;
        tc "of tensor" grid_of_tensor;
      ] );
    ( "exec.interp",
      [
        tc "identity" interp_identity;
        tc "shift reads halo" interp_shift_reads_halo;
        tc "laplacian hand value" interp_laplacian_hand_value;
        tc "accumulate" interp_accumulate;
        tc "range subbox" interp_range_subbox;
        tc "nonlinear tree path" interp_nonlinear_tree_path;
        tc "aliasing rejected" interp_rejects_aliasing;
      ] );
    ( "exec.runtime",
      [
        tc "matches reference" runtime_matches_reference;
        tc "tiled parallel matches" runtime_tiled_parallel_matches;
        tc "athread mapping matches" runtime_athread_mapping_matches;
        tc "wave matches" runtime_wave_matches;
        tc "long sliding window" runtime_sliding_window_long_run;
        tc "state accessors" runtime_state_accessors;
        tc "state bounds" runtime_state_bounds;
        tc "stability" runtime_stability;
        tc "custom init" runtime_custom_init;
        tc "verify detects mismatch" verify_detects_mismatch;
      ] );
    ("exec.properties", [ schedule_equivalence_property ]);
  ]
