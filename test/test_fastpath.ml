(* Parity and stress tests for the fast-path execution engine: the
   write-through runtime vs the legacy zero-accumulate engine, specialized
   vs generic interpreter sweeps, schedule-independence across the whole
   benchmark suite, and the persistent domain pool. *)

open Helpers
module Grid = Msc_exec.Grid
module Interp = Msc_exec.Interp
module Runtime = Msc_exec.Runtime
module Schedule = Msc_schedule.Schedule
module Suite = Msc_benchsuite.Suite
module Domain_pool = Msc_util.Domain_pool
open Msc_ir
open Msc_frontend

let small_dims (b : Suite.bench) =
  match b.Suite.ndim with 2 -> [| 18; 18 |] | _ -> [| 12; 12; 12 |]

let final_state ?schedule ?pool ?engine ~steps st =
  let config = Msc_exec.Exec.Config.make ?pool () in
  let rt = Runtime.create ?schedule ~config ?engine st in
  Runtime.run rt steps;
  Runtime.current rt

(* --- Write-through vs legacy engine, whole suite --- *)

let engine_parity_suite () =
  List.iter
    (fun (b : Suite.bench) ->
      let st = Suite.stencil ~dims:(small_dims b) b in
      let fast = final_state ~engine:Runtime.Write_through ~steps:4 st in
      let legacy = final_state ~engine:Runtime.Zero_accumulate ~steps:4 st in
      let err = Grid.max_rel_error ~reference:legacy fast in
      check_bool
        (Printf.sprintf "%s within 1e-12 (err %g)" b.Suite.name err)
        true (err <= 1e-12))
    Suite.all

(* --- Seq / Block / Round_robin schedules agree on every suite kernel --- *)

let schedule_parity_suite () =
  let pool = Domain_pool.create 4 in
  List.iter
    (fun (b : Suite.bench) ->
      let st = Suite.stencil ~dims:(small_dims b) b in
      let kernel = Suite.kernel_of st in
      let tile =
        Array.map (fun n -> max 1 (n / 3)) st.Stencil.grid.Tensor.shape
      in
      let seq = Grid.checksum (final_state ~steps:3 st) in
      let block =
        Grid.checksum
          (final_state
             ~schedule:(Schedule.matrix_canonical ~tile ~threads:4 kernel)
             ~pool ~steps:3 st)
      in
      let rr =
        Grid.checksum
          (final_state
             ~schedule:(Schedule.sunway_canonical ~tile ~cpes:8 kernel)
             ~pool ~steps:3 st)
      in
      check_float (b.Suite.name ^ " block == seq") seq block;
      check_float (b.Suite.name ^ " round_robin == seq") seq rr)
    Suite.all;
  (* Every suite sweep at these dims is far below the pool inline cutoff
     (Runtime.backend_report.pool_inline_cutoff): the parallel schedules run
     inline on the calling domain and the pool never spawns a helper.
     Dispatch above the cutoff is covered in test_backend. *)
  check_int "no helper spawned under the cutoff" 0 (Domain_pool.spawn_total pool);
  Domain_pool.shutdown pool

(* --- Specialized sweeps vs the retained generic closure path --- *)

let sweep_vs_generic ~name c ~aux ~src shape =
  let lo = Array.make (Array.length shape) 0 in
  let dst_fast = Grid.like src and dst_gen = Grid.like src in
  Interp.apply_range ~aux c ~src ~dst:dst_fast ~lo ~hi:shape;
  Interp.generic_apply_range ~aux c ~src ~dst:dst_gen ~lo ~hi:shape;
  check_float (name ^ " apply == generic") 0.0
    (Grid.max_rel_error ~reference:dst_gen dst_fast);
  Interp.accumulate_range ~aux c ~scale:0.7 ~src ~dst:dst_fast ~lo ~hi:shape;
  Interp.generic_accumulate_range ~aux c ~scale:0.7 ~src ~dst:dst_gen ~lo
    ~hi:shape;
  check_float (name ^ " accumulate == generic") 0.0
    (Grid.max_rel_error ~reference:dst_gen dst_fast);
  (* apply_scaled == accumulate into a zeroed destination. *)
  let dst_scaled = Grid.like src and dst_zeroacc = Grid.like src in
  Interp.apply_scaled_range ~aux c ~scale:(-1.3) ~src ~dst:dst_scaled ~lo
    ~hi:shape;
  Interp.generic_accumulate_range ~aux c ~scale:(-1.3) ~src ~dst:dst_zeroacc
    ~lo ~hi:shape;
  check_float (name ^ " apply_scaled == zero+accumulate") 0.0
    (Grid.max_rel_error ~reference:dst_zeroacc dst_scaled)

(* Taps mode at every unrolled arity (3/5/7-point stars) plus a generic
   arity (9-point 2-D box). *)
let interp_taps_parity () =
  let cases =
    [
      ("3pt", Builder.def_tensor_1d ~halo:1 "B" Dtype.F64 17, Shapes.Star, 1);
      ("5pt", Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 11 13, Shapes.Star, 1);
      ("7pt", Builder.def_tensor_3d ~halo:1 "B" Dtype.F64 7 8 9, Shapes.Star, 1);
      ("9pt_box", Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 11 13, Shapes.Box, 1);
      ("13pt", Builder.def_tensor_3d ~halo:2 "B" Dtype.F64 7 8 9, Shapes.Star, 2);
    ]
  in
  List.iter
    (fun (name, grid, shape, radius) ->
      let k = Builder.shaped_kernel ~name:("K" ^ name) ~shape ~radius grid in
      let geometry = Grid.of_tensor grid in
      let c = Interp.compile k ~geometry in
      check_bool (name ^ " is taps") true (Interp.is_linear c);
      let src = Grid.of_tensor grid in
      Grid.fill_extended src (fun coord ->
          let acc = ref 0.9 in
          Array.iteri
            (fun d x -> acc := !acc +. (0.11 *. float_of_int ((d + 1) * x)))
            coord;
          !acc);
      sweep_vs_generic ~name c ~aux:[] ~src grid.Tensor.shape)
    cases

let interp_bilinear_parity () =
  let grid = Builder.def_tensor_2d ~halo:1 "B" Dtype.F64 12 14 in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let k =
    Builder.var_coeff_kernel ~name:"VC" ~coeff ~shape:Shapes.Star ~radius:1 grid
  in
  let geometry = Grid.of_tensor grid in
  let c = Interp.compile k ~geometry in
  check_bool "bilinear mode" true (Interp.is_bilinear c);
  let src = Grid.of_tensor grid in
  Grid.fill_extended src (fun coord ->
      1.0 +. (0.07 *. float_of_int (coord.(0) + (3 * coord.(1)))));
  let aux_grid = Grid.of_tensor grid in
  Grid.fill_extended aux_grid (Runtime.default_aux_init "C");
  sweep_vs_generic ~name:"bilinear" c ~aux:[ ("C", aux_grid) ] ~src
    grid.Tensor.shape

let interp_identity_apply () =
  let g = Grid.create ~shape:[| 6; 7 |] ~halo:[| 1; 1 |] in
  Grid.fill g (fun c -> float_of_int ((c.(0) * 7) + c.(1)) +. 0.5);
  let lo = [| 1; 2 |] and hi = [| 5; 6 |] in
  (* scale = 1: a row blit. *)
  let dst = Grid.like g in
  Interp.identity_apply_range ~scale:1.0 ~src:g ~dst ~lo ~hi;
  check_float "copied subbox" (Grid.get g [| 2; 3 |]) (Grid.get dst [| 2; 3 |]);
  check_float "outside untouched" 0.0 (Grid.get dst [| 0; 0 |]);
  (* scaled write == accumulate into zero. *)
  let dst_s = Grid.like g and dst_a = Grid.like g in
  Interp.identity_apply_range ~scale:0.25 ~src:g ~dst:dst_s ~lo ~hi;
  Interp.identity_accumulate_range ~scale:0.25 ~src:g ~dst:dst_a ~lo ~hi;
  check_float "scaled identity parity" 0.0
    (Grid.max_rel_error ~reference:dst_a dst_s)

let grid_fill_interior () =
  let g = Grid.create ~shape:[| 3; 4 |] ~halo:[| 1; 2 |] in
  Grid.fill_all g 7.0;
  Grid.fill_interior g 0.0;
  check_float "interior zeroed" 0.0 (Grid.get g [| 1; 1 |]);
  check_float "halo kept" 7.0 (Grid.get g [| -1; 0 |]);
  check_float "far halo kept" 7.0 (Grid.get g [| 2; 5 |]);
  Grid.fill_interior g 2.0;
  check_float "refill" 2.0 (Grid.get g [| 0; 3 |])

(* --- Persistent pool: reuse, stress, exceptions --- *)

let pool_spawns_once_across_steps () =
  (* 36^3 = 46656 interior points per sweep keeps this above the pool
     inline cutoff so the pool genuinely dispatches every step. *)
  let k, st = stencil_3d7pt ~n:36 () in
  let sched = Schedule.matrix_canonical ~tile:[| 9; 12; 18 |] ~threads:4 k in
  let pool = Domain_pool.create 4 in
  let rt =
    Runtime.create ~schedule:sched
      ~config:(Msc_exec.Exec.Config.make ~pool ())
      st
  in
  Runtime.run rt 12;
  (* 12 steps x many tiles: still exactly one spawn per helper domain. *)
  check_int "helpers spawned once" 3 (Domain_pool.spawn_total pool);
  let seq = final_state ~steps:12 st in
  check_float "parallel result identical" 0.0
    (Grid.max_rel_error ~reference:seq (Runtime.current rt));
  Domain_pool.shutdown pool

let pool_exception_then_reuse () =
  let pool = Domain_pool.create 3 in
  for round = 1 to 4 do
    check_bool
      (Printf.sprintf "round %d raises" round)
      true
      (try
         Domain_pool.parallel_for pool ~lo:0 ~hi:60 (fun i ->
             if i mod 17 = 5 then failwith "boom");
         false
       with Failure _ -> true);
    (* The pool must stay fully functional after a failed region. *)
    let acc = Atomic.make 0 in
    Domain_pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
        ignore (Atomic.fetch_and_add acc i));
    check_int (Printf.sprintf "round %d sum" round) 4950 (Atomic.get acc)
  done;
  check_int "no respawn across failures" 2 (Domain_pool.spawn_total pool);
  Domain_pool.shutdown pool

let pool_shutdown_respawn () =
  let pool = Domain_pool.create 3 in
  Domain_pool.parallel_for pool ~lo:0 ~hi:10 (fun _ -> ());
  check_int "first spawn" 2 (Domain_pool.spawn_total pool);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool (* idempotent *);
  let hits = Array.make 10 0 in
  Domain_pool.parallel_for pool ~lo:0 ~hi:10 (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iter (fun h -> check_int "post-shutdown dispatch" 1 h) hits;
  check_int "respawned" 4 (Domain_pool.spawn_total pool);
  Domain_pool.shutdown pool

let pool_dispatch_stress () =
  let pool = Domain_pool.create 4 in
  let total = ref 0 in
  for _ = 1 to 500 do
    let acc = Atomic.make 0 in
    Domain_pool.parallel_chunks pool ~lo:0 ~hi:32 (fun ~worker:_ i ->
        ignore (Atomic.fetch_and_add acc i));
    total := !total + Atomic.get acc
  done;
  check_int "500 dispatches" (500 * 496) !total;
  check_int "still one spawn" 3 (Domain_pool.spawn_total pool);
  Domain_pool.shutdown pool

let suites =
  [
    ( "fastpath.parity",
      [
        slow "engine parity over Suite.all" engine_parity_suite;
        slow "schedule parity over Suite.all" schedule_parity_suite;
        tc "taps unrolls == generic" interp_taps_parity;
        tc "bilinear == generic" interp_bilinear_parity;
        tc "identity apply" interp_identity_apply;
        tc "fill_interior" grid_fill_interior;
      ] );
    ( "fastpath.pool",
      [
        tc "spawns once across steps" pool_spawns_once_across_steps;
        tc "exception then reuse" pool_exception_then_reuse;
        tc "shutdown respawn" pool_shutdown_respawn;
        tc "dispatch stress" pool_dispatch_stress;
      ] );
  ]
