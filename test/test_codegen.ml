(* Tests for AOT code generation: structural checks on all targets and a
   compile-and-run round trip against the interpreter where a C compiler is
   available. *)

open Helpers
module Codegen = Msc_codegen.Codegen
module Schedule = Msc_schedule.Schedule

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  scan 0

let count_char c s =
  String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s

let balanced_braces s = count_char '{' s = count_char '}' s

let fixture () =
  let k, st = stencil_3d7pt ~n:12 () in
  (k, st, Schedule.sunway_canonical ~tile:[| 2; 4; 6 |] k)

let target_names () =
  check_bool "cpu" true (Codegen.target_of_string "cpu" = Ok Codegen.Cpu);
  check_bool "matrix alias" true (Codegen.target_of_string "matrix" = Ok Codegen.Openmp);
  check_bool "sunway alias" true (Codegen.target_of_string "sunway" = Ok Codegen.Athread);
  check_bool "unknown" true (Result.is_error (Codegen.target_of_string "gpu"))

let cpu_bundle () =
  let _, st, sched = fixture () in
  let files = Codegen.generate st sched Codegen.Cpu in
  check_int "two files" 2 (List.length files);
  let src = (List.hd files).Codegen.contents in
  check_bool "braces balanced" true (balanced_braces src);
  List.iter
    (fun needle -> check_bool needle true (contains ~needle src))
    [ "msc_step"; "msc_init"; "msc_report"; "int main"; "#define IDX"; "win[" ]

let openmp_has_pragma () =
  let _, st, _ = fixture () in
  let k = List.hd (Msc_ir.Stencil.kernels st) in
  let sched = Schedule.matrix_canonical ~tile:[| 2; 4; 6 |] ~threads:32 k in
  let files = Codegen.generate st sched Codegen.Openmp in
  let src = (List.hd files).Codegen.contents in
  check_bool "omp pragma" true (contains ~needle:"#pragma omp parallel for num_threads(32)" src)

let cpu_has_no_pragma () =
  let _, st, sched = fixture () in
  let files = Codegen.generate st sched Codegen.Cpu in
  let src = (List.hd files).Codegen.contents in
  check_bool "no pragma" false (contains ~needle:"#pragma omp" src)

let athread_bundle () =
  let _, st, sched = fixture () in
  let files = Codegen.generate st sched Codegen.Athread in
  check_int "master+slave+makefile" 3 (List.length files);
  let master = List.find (fun f -> contains ~needle:"master" f.Codegen.name) files in
  let slave = List.find (fun f -> contains ~needle:"slave" f.Codegen.name) files in
  check_bool "master braces" true (balanced_braces master.Codegen.contents);
  check_bool "slave braces" true (balanced_braces slave.Codegen.contents);
  List.iter
    (fun needle ->
      check_bool ("master " ^ needle) true (contains ~needle master.Codegen.contents))
    [ "athread_init"; "athread_spawn"; "athread_join"; "athread_halt" ];
  List.iter
    (fun needle ->
      check_bool ("slave " ^ needle) true (contains ~needle slave.Codegen.contents))
    [
      "athread_get_id";
      "athread_get(PE_MODE";
      "athread_put(PE_MODE";
      "__thread_local";
      "task += CPES";
      "buf_read_1";
      "buf_read_2";
      "buf_write";
    ]

let athread_body_follows_backend () =
  (* The fixture has a two-slot time window, i.e. two stencil terms: the
     default (interpreter) config must accumulate them per term like the
     runtime's per-term dispatch, a compiled+fused config must sum them in
     one fused expression like the whole-sweep kernel. *)
  let _, st, sched = fixture () in
  let slave_src ?config () =
    let files = Codegen.generate ?config st sched Codegen.Athread in
    (List.find (fun f -> contains ~needle:"slave" f.Codegen.name) files)
      .Codegen.contents
  in
  let interp = slave_src () in
  check_bool "interp accumulates per term" true (contains ~needle:"] += (ELEM)(" interp);
  let fused =
    slave_src
      ~config:
        (Msc_exec.Exec.Config.make ~backend:Msc_exec.Backend.Compiled_c
           ~fuse:true ())
      ()
  in
  check_bool "fused body has no accumulation" false (contains ~needle:"] += (ELEM)(" fused);
  check_bool "fused braces balanced" true (balanced_braces fused);
  (* Fusion off on a compiled backend degrades to per-term accumulation. *)
  let unfused =
    slave_src
      ~config:
        (Msc_exec.Exec.Config.make ~backend:Msc_exec.Backend.Compiled_c
           ~fuse:false ())
      ()
  in
  check_bool "no-fuse accumulates per term" true (contains ~needle:"] += (ELEM)(" unfused)

let athread_spm_guard () =
  (* A tile whose window buffers exceed 64 KB must be rejected. *)
  let grid = Msc_frontend.Builder.def_tensor_3d ~time_window:2 ~halo:1 "B" Msc_ir.Dtype.F64 64 64 64 in
  let k = Msc_frontend.Builder.star_kernel ~name:"S" ~radius:1 grid in
  let st = Msc_frontend.Builder.two_step ~name:"big" k in
  let sched = Schedule.sunway_canonical ~tile:[| 32; 32; 64 |] k in
  check_bool "SPM overflow rejected" true
    (try ignore (Codegen.generate st sched Codegen.Athread); false
     with Invalid_argument _ -> true)

let makefiles () =
  let _, st, sched = fixture () in
  List.iter
    (fun (target, needle) ->
      let files = Codegen.generate st sched target in
      let mk = List.find (fun f -> f.Codegen.name = "Makefile") files in
      check_bool needle true (contains ~needle mk.Codegen.contents))
    [ (Codegen.Cpu, "gcc"); (Codegen.Openmp, "-fopenmp"); (Codegen.Athread, "sw5cc") ]

let loc_positive () =
  let _, st, sched = fixture () in
  let files = Codegen.generate st sched Codegen.Cpu in
  check_bool "loc > 40" true (Codegen.total_loc files > 40)

let illegal_schedule_rejected () =
  let k, st = stencil_3d7pt ~n:12 () in
  ignore k;
  let bad = Schedule.tile Schedule.empty [| 500; 1; 1 |] in
  check_bool "rejected" true
    (try ignore (Codegen.generate st bad Codegen.Cpu); false
     with Invalid_argument _ -> true)

let write_files_creates_dirs () =
  let _, st, sched = fixture () in
  let files = Codegen.generate st sched Codegen.Cpu in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "msc_test_nested/deep/dir" in
  Codegen.write_files ~dir files;
  check_bool "file written" true (Sys.file_exists (Filename.concat dir "3d7pt_star.c"))

(* Round trips: compiled generated C must equal the interpreter bit-for-bit
   (fp64). Exercises remainder tiles and the OpenMP path too. *)
let roundtrip ~steps st sched target =
  if not (Codegen.Toolchain.available ()) then ()
  else begin
    let rt = Msc_exec.Runtime.create st in
    Msc_exec.Runtime.run rt steps;
    let expected = Msc_exec.Grid.checksum (Msc_exec.Runtime.current rt) in
    let files = Codegen.generate ~steps st sched target in
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "msc_test_rt_%d" (Hashtbl.hash (st.Msc_ir.Stencil.name, steps, target)))
    in
    match Codegen.Toolchain.compile_and_run ~steps ~dir files with
    | Ok r ->
        let rel = Float.abs (r.Codegen.Toolchain.checksum -. expected) /. Float.max 1.0 (Float.abs expected) in
        check_bool "checksum matches" true (rel < 1e-12)
    | Error msg -> Alcotest.fail msg
  end

let roundtrip_cpu () =
  let _, st, sched = fixture () in
  roundtrip ~steps:4 st sched Codegen.Cpu

let roundtrip_openmp () =
  let k, st = stencil_3d7pt ~n:12 () in
  roundtrip ~steps:4 st (Schedule.matrix_canonical ~tile:[| 2; 4; 6 |] ~threads:4 k) Codegen.Openmp

let roundtrip_remainder_tiles () =
  (* 13 is prime: every tile dimension has a remainder. *)
  let k, st = stencil_3d7pt ~n:13 () in
  roundtrip ~steps:3 st (Schedule.cpu_canonical ~tile:[| 4; 5; 6 |] ~threads:2 k) Codegen.Openmp

let roundtrip_wave () =
  let st = stencil_wave2d ~n:16 () in
  let k = List.hd (Msc_ir.Stencil.kernels st) in
  roundtrip ~steps:5 st (Schedule.cpu_canonical ~tile:[| 4; 8 |] ~threads:2 k) Codegen.Cpu

let roundtrip_box_2d () =
  let k, st = stencil_2d9pt_box ~m:15 ~n:17 () in
  roundtrip ~steps:4 st (Schedule.cpu_canonical ~tile:[| 5; 7 |] ~threads:2 k) Codegen.Cpu

let suites =
  [
    ( "codegen.structure",
      [
        tc "target names" target_names;
        tc "cpu bundle" cpu_bundle;
        tc "openmp pragma" openmp_has_pragma;
        tc "cpu pragma-free" cpu_has_no_pragma;
        tc "athread bundle" athread_bundle;
        tc "athread body follows backend" athread_body_follows_backend;
        tc "athread SPM guard" athread_spm_guard;
        tc "makefiles" makefiles;
        tc "loc positive" loc_positive;
        tc "illegal schedule" illegal_schedule_rejected;
        tc "write_files mkdir -p" write_files_creates_dirs;
      ] );
    ( "codegen.roundtrip",
      [
        tc "cpu" roundtrip_cpu;
        tc "openmp" roundtrip_openmp;
        tc "remainder tiles" roundtrip_remainder_tiles;
        tc "wave (State terms)" roundtrip_wave;
        tc "2d box" roundtrip_box_2d;
      ] );
  ]
