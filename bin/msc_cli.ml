(* msc: command-line front door to the MSC stencil compiler.

   msc list                               - the benchmark suite
   msc gen -b 3d7pt_star -t sunway -o DIR - AOT code generation
   msc run -b 2d9pt_box -n 10 -w 8        - native execution
   msc solve -m cg --dims 64x64 --ranks 2x2 - matrix-free iterative solver
   msc verify -b 3d13pt_star -n 5         - optimized vs reference
   msc simulate -b 3d7pt_star -p sunway   - processor performance model
   msc profile 3d7pt -o trace.json        - traced pipeline + chrome trace
   msc graph unsharp_mask --dot           - post-pass pipeline DAG (Graphviz)
   msc run-graph unsharp_mask -n 10       - fused multi-stage execution
   msc scale -b 2d9pt_box -p tianhe3 --tune - modeled scale-out efficiency
   msc experiment fig7                    - regenerate a paper artifact *)

open Cmdliner

let bench_conv =
  let parse s =
    match Msc.Suite.find s with
    | b -> Ok b
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown benchmark %S (try: %s)" s
               (String.concat ", "
                  (List.map (fun b -> b.Msc.Suite.name) Msc.Suite.all))))
  in
  let print ppf b = Format.pp_print_string ppf b.Msc.Suite.name in
  Arg.conv (parse, print)

let bench_arg =
  Arg.(
    required
    & opt (some bench_conv) None
    & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Benchmark from the Table 4 suite.")

let target_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Msc.Codegen.target_of_string s) in
  let print ppf t = Format.pp_print_string ppf (Msc.Codegen.target_to_string t) in
  Arg.conv (parse, print)

let steps_arg default =
  Arg.(value & opt int default & info [ "n"; "steps" ] ~docv:"N" ~doc:"Timesteps.")

let backend_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Msc.Backend.of_string s) in
  Arg.conv (parse, Msc.Backend.pp)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Msc.Backend.Interp
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Kernel backend: interp | native_ocaml | compiled_c. The compiled \
           backends emit and compile one fused whole-sweep kernel per plan at \
           runtime (per-term kernels when fusion is off or unavailable) and \
           fall back to the interpreter when no toolchain is found.")

let pp_backend_report ppf (r : Msc.Runtime.backend_report) =
  Format.fprintf ppf
    "backend: requested %a, ran %a (%d/%d kernel terms compiled, %s; %d tile \
     dispatches, %d sweeps inlined below the %d-point pool cutoff)"
    Msc.Backend.pp r.Msc.Runtime.requested Msc.Backend.pp r.Msc.Runtime.effective
    r.Msc.Runtime.compiled_terms r.Msc.Runtime.kernel_terms
    (if r.Msc.Runtime.fused_sweeps > 0 then "fused sweep" else "per-term")
    r.Msc.Runtime.tile_dispatches r.Msc.Runtime.inline_dispatches
    r.Msc.Runtime.pool_inline_cutoff;
  match r.Msc.Runtime.fallback with
  | Some reason -> Format.fprintf ppf "@.backend fallback: %s" reason
  | None -> ()

let no_fuse_arg =
  Arg.(
    value & flag
    & info [ "no-fuse" ]
        ~doc:
          "Compile one kernel per stencil term (the pre-fusion behaviour) \
           instead of one fused whole-sweep kernel. Only meaningful with a \
           compiled backend.")

(* The pool is caller-owned under [Exec.Config]; shut it down when the
   command finishes rather than leaving parked domains to the GC backstop. *)
let with_config ?backend ?engine ?fuse ~workers f =
  let pool =
    if workers < 2 then Msc.Domain_pool.sequential
    else Msc.Domain_pool.create workers
  in
  Fun.protect
    ~finally:(fun () -> Msc.Domain_pool.shutdown pool)
    (fun () -> f (Msc.Exec.Config.make ?backend ?engine ?fuse ~pool ()))

let small_arg =
  Arg.(
    value & flag
    & info [ "small" ] ~doc:"Use a reduced grid instead of the paper's evaluation size.")

let dims_of b small =
  if small then
    match b.Msc.Suite.ndim with 2 -> [| 96; 96 |] | _ -> [| 32; 32; 32 |]
  else Msc.Suite.default_dims b

let list_cmd =
  let run () =
    List.iter
      (fun b ->
        Printf.printf "%-14s %dD %-4s radius %d  read %4d B  ops %3d  time-dep %d\n"
          b.Msc.Suite.name b.Msc.Suite.ndim
          (Format.asprintf "%a" Msc.Shapes.pp_shape b.Msc.Suite.shape)
          b.Msc.Suite.radius b.Msc.Suite.paper_read_bytes b.Msc.Suite.paper_ops
          b.Msc.Suite.time_dep)
      Msc.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite.") Term.(const run $ const ())

let gen_cmd =
  let target =
    Arg.(
      value
      & opt target_conv Msc.Codegen.Athread
      & info [ "t"; "target" ] ~docv:"TARGET" ~doc:"cpu | openmp/matrix | sunway/athread.")
  in
  let out =
    Arg.(
      value & opt string "_msc_generated"
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run b target out steps small backend =
    let st = Msc.Suite.stencil ~dims:(dims_of b small) b in
    let config = Msc.Exec.Config.make ~backend () in
    let p = Msc.Pipeline.make ~stencil:st ~config () in
    match Msc.Pipeline.compile ~steps ~target p with
    | Ok files ->
        let dir = Filename.concat out b.Msc.Suite.name in
        Msc.Codegen.write_files ~dir files;
        List.iter (fun f -> Printf.printf "wrote %s/%s\n" dir f.Msc.Codegen.name) files;
        0
    | Error msg ->
        prerr_endline msg;
        1
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate AOT C code for a benchmark.")
    Term.(
      const run $ bench_arg $ target $ out $ steps_arg 10 $ small_arg
      $ backend_arg)

let run_cmd =
  let workers =
    Arg.(value & opt int 1 & info [ "w"; "workers" ] ~docv:"W" ~doc:"Worker domains.")
  in
  let run b steps workers backend small no_fuse =
    let st = Msc.Suite.stencil ~dims:(dims_of b small) b in
    let kernel = Msc.Suite.kernel_of st in
    let tile =
      Array.mapi
        (fun d t -> min t st.Msc.Stencil.grid.Msc.Tensor.shape.(d))
        (Msc.Schedule.default_tile kernel)
    in
    let schedule = Msc.Schedule.cpu_canonical ~tile ~threads:workers kernel in
    with_config ~backend ~fuse:(not no_fuse) ~workers (fun config ->
        let p = Msc.Pipeline.make ~stencil:st ~schedule ~config () in
        let t0 = Sys.time () in
        let final, report = Msc.Pipeline.run_report ~steps p in
        Format.printf "%a@.%a@.cpu time: %.2fs for %d steps@." Msc.Grid.pp_stats
          final pp_backend_report report (Sys.time () -. t0) steps;
        0)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a benchmark natively.")
    Term.(
      const run $ bench_arg $ steps_arg 10 $ workers $ backend_arg $ small_arg
      $ no_fuse_arg)

(* ---- Matrix-free solvers ---- *)

let ints_conv what =
  let parse s =
    let parts =
      String.split_on_char 'x' (String.concat "x" (String.split_on_char ',' s))
    in
    match List.map int_of_string_opt parts with
    | ints when List.for_all Option.is_some ints && ints <> [] ->
        Ok (Array.of_list (List.map Option.get ints))
    | _ | (exception _) ->
        Error (`Msg (Printf.sprintf "bad %s %S (use e.g. 64x64)" what s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (String.concat "x" (List.map string_of_int (Array.to_list a)))
  in
  Arg.conv (parse, print)

let solve_cmd =
  let method_conv =
    let parse s =
      match Msc.Solver.method_of_string s with
      | Some m -> Ok m
      | None ->
          Error (`Msg (Printf.sprintf "unknown method %S (jacobi | rbgs | cg)" s))
    in
    let print ppf m = Format.pp_print_string ppf (Msc.Solver.method_to_string m) in
    Arg.conv (parse, print)
  in
  let engine_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "bulk" ] -> Ok Msc.Exec.Bulk_synchronous
      | [ "overlapped" ] -> Ok Msc.Exec.Overlapped
      | [ "temporal" ] -> Ok (Msc.Exec.Temporal_blocked { depth = 2 })
      | [ "temporal"; d ] -> (
          match int_of_string_opt d with
          | Some depth -> Ok (Msc.Exec.Temporal_blocked { depth })
          | None -> Error (`Msg (Printf.sprintf "bad temporal depth %S" d)))
      | _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown engine %S (bulk | overlapped | temporal[:DEPTH])" s))
    in
    let print ppf (e : Msc.Exec.engine) =
      match e with
      | Msc.Exec.Bulk_synchronous -> Format.pp_print_string ppf "bulk"
      | Msc.Exec.Overlapped -> Format.pp_print_string ppf "overlapped"
      | Msc.Exec.Temporal_blocked { depth } ->
          Format.fprintf ppf "temporal:%d" depth
    in
    Arg.conv (parse, print)
  in
  let method_arg =
    Arg.(
      value
      & opt method_conv Msc.Solver.Cg
      & info [ "m"; "method" ] ~docv:"M" ~doc:"Solver: jacobi | rbgs | cg.")
  in
  let dims_arg =
    Arg.(
      value
      & opt (ints_conv "dims") [| 64; 64 |]
      & info [ "dims" ] ~docv:"DIMS" ~doc:"Global grid extents, e.g. 64x64 or 32x32x32.")
  in
  let ranks_arg =
    Arg.(
      value
      & opt (some (ints_conv "ranks")) None
      & info [ "ranks" ] ~docv:"RxC"
          ~doc:"Simulated MPI process grid, e.g. 2x2 (default: one rank).")
  in
  let tol_arg =
    Arg.(
      value & opt float 1e-8
      & info [ "tol" ] ~docv:"T" ~doc:"Relative residual tolerance.")
  in
  let max_iters_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-iters" ] ~docv:"N" ~doc:"Iteration cap.")
  in
  let omega_arg =
    Arg.(
      value & opt float 1.0
      & info [ "omega" ] ~docv:"W" ~doc:"Jacobi damping factor in (0, 1].")
  in
  let engine_arg =
    Arg.(
      value
      & opt engine_conv Msc.Exec.Overlapped
      & info [ "engine" ] ~docv:"E"
          ~doc:
            "Halo engine: bulk | overlapped | temporal[:DEPTH]. Jacobi runs \
             natively on all three; cg/rbgs degrade a temporal request to \
             bulk for the operator (reported).")
  in
  let residuals_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "residuals-out" ] ~docv:"FILE"
          ~doc:"Write the per-iteration residual trace as CSV.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI leg: run every method on every engine over a small 2x2-rank \
             Poisson problem and fail unless all converge with bit-identical \
             residual sequences across engines.")
  in
  let write_residuals file rows =
    let oc = open_out file in
    output_string oc "method,engine,iteration,residual\n";
    List.iter
      (fun (m, e, r : Msc.Solver.method_ * string * Msc.Solver.report) ->
        Array.iteri
          (fun i res ->
            Printf.fprintf oc "%s,%s,%d,%.17g\n"
              (Msc.Solver.method_to_string m)
              e i res)
          r.Msc.Solver.residuals)
      rows;
    close_out oc;
    Printf.printf "wrote %s\n" file
  in
  let engine_name (e : Msc.Exec.engine) =
    match e with
    | Msc.Exec.Bulk_synchronous -> "bulk"
    | Msc.Exec.Overlapped -> "overlapped"
    | Msc.Exec.Temporal_blocked { depth } -> Printf.sprintf "temporal:%d" depth
  in
  let run method_ dims ranks tol max_iters omega engine backend workers
      residuals_out smoke =
    if smoke then begin
      (* Small enough to finish in seconds, large enough that every rank of
         the 2x2 grid holds interior and shell tiles. *)
      let p = Msc.Solver.Problem.poisson ~dims:[| 17; 19 |] in
      let engines =
        [
          Msc.Exec.Bulk_synchronous;
          Msc.Exec.Overlapped;
          Msc.Exec.Temporal_blocked { depth = 2 };
        ]
      in
      let rows = ref [] in
      let ok = ref true in
      List.iter
        (fun m ->
          let reference = ref None in
          List.iter
            (fun engine ->
              let r =
                Msc.Solver.solve
                  ~config:(Msc.Exec.Config.make ~backend ~engine ())
                  ~ranks_shape:[| 2; 2 |] ~tol:1e-6 ~method_:m p
              in
              Format.printf "%a@." Msc.Solver.pp_report r;
              rows := (m, engine_name engine, r) :: !rows;
              if not r.Msc.Solver.converged then begin
                Printf.eprintf "FAIL: %s did not converge on %s\n"
                  (Msc.Solver.method_to_string m)
                  (engine_name engine);
                ok := false
              end;
              match !reference with
              | None -> reference := Some r.Msc.Solver.residuals
              | Some ref_res ->
                  if r.Msc.Solver.residuals <> ref_res then begin
                    Printf.eprintf
                      "FAIL: %s residuals on %s differ from the bulk engine \
                       (bit-identity broken)\n"
                      (Msc.Solver.method_to_string m)
                      (engine_name engine);
                    ok := false
                  end)
            engines)
        Msc.Solver.all_methods;
      Option.iter (fun f -> write_residuals f (List.rev !rows)) residuals_out;
      if !ok then begin
        print_endline
          "solver smoke: every method converged on every engine, residual \
           sequences bit-identical";
        0
      end
      else 1
    end
    else
      let p = Msc.Solver.Problem.poisson ~dims in
      with_config ~backend ~engine ~workers (fun config ->
          match
            Msc.Solver.solve ~config ~tol ~max_iters ~omega ?ranks_shape:ranks
              ~method_ p
          with
          | r ->
              Format.printf "%a@." Msc.Solver.pp_report r;
              Option.iter
                (fun f -> write_residuals f [ (method_, engine_name engine, r) ])
                residuals_out;
              if r.Msc.Solver.converged then 0 else 1
          | exception Invalid_argument msg ->
              prerr_endline msg;
              1)
  in
  let workers =
    Arg.(value & opt int 1 & info [ "w"; "workers" ] ~docv:"W" ~doc:"Worker domains.")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Solve the Poisson model problem with a matrix-free iterative \
          solver whose operator is an MSC stencil (distributed, with real \
          halo exchanges and allreduce collectives).")
    Term.(
      const run $ method_arg $ dims_arg $ ranks_arg $ tol_arg $ max_iters_arg
      $ omega_arg $ engine_arg $ backend_arg $ workers $ residuals_out_arg
      $ smoke_arg)

let verify_cmd =
  let run b steps small =
    let st = Msc.Suite.stencil ~dims:(dims_of b small) b in
    let kernel = Msc.Suite.kernel_of st in
    let tile =
      Array.mapi
        (fun d t -> min t st.Msc.Stencil.grid.Msc.Tensor.shape.(d))
        (Msc.Schedule.default_tile kernel)
    in
    let schedule = Msc.Schedule.cpu_canonical ~tile ~threads:4 kernel in
    let p = Msc.Pipeline.make ~stencil:st ~schedule () in
    let report = Msc.Pipeline.verify ~steps p in
    Format.printf "%a@." Msc.Verify.pp_report report;
    if report.Msc.Verify.ok then 0 else 1
  in
  (* Verification runs real computation twice; default to the small grid. *)
  let small_default =
    Arg.(
      value & opt bool true
      & info [ "small" ] ~docv:"BOOL" ~doc:"Use a reduced grid (default true).")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check the optimized runtime against the naive reference.")
    Term.(const run $ bench_arg $ steps_arg 5 $ small_default)

let simulate_cmd =
  let platform =
    Arg.(
      value
      & opt (enum [ ("sunway", Msc.Codegen.Athread); ("matrix", Msc.Codegen.Openmp) ])
          Msc.Codegen.Athread
      & info [ "p"; "platform" ] ~docv:"P" ~doc:"sunway | matrix.")
  in
  let run b target =
    let st = Msc.Suite.stencil b in
    let kernel = Msc.Suite.kernel_of st in
    let schedule =
      match (target : Msc.Codegen.target) with
      | Msc.Codegen.Athread ->
          Msc.Schedule.sunway_canonical ~tile:(Msc_benchsuite.Settings.sunway_tile b)
            kernel
      | _ ->
          Msc.Schedule.matrix_canonical ~tile:(Msc_benchsuite.Settings.matrix_tile b)
            kernel
    in
    let p = Msc.Pipeline.make ~stencil:st ~schedule () in
    match Msc.Pipeline.simulate ~target p with
    | Ok (Msc.Pipeline.Sunway_report r) ->
        Format.printf "%a@." Msc.Sunway.pp_report r;
        0
    | Ok (Msc.Pipeline.Matrix_report r) ->
        Format.printf "%a@." Msc.Matrix.pp_report r;
        0
    | Error msg ->
        prerr_endline msg;
        1
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Predict performance on a many-core processor.")
    Term.(const run $ bench_arg $ platform)

let profile_cmd =
  let bench_pos =
    Arg.(
      required
      & pos 0 (some bench_conv) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark (any unambiguous prefix works).")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Chrome-trace output file.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"W" ~doc:"Worker domains.")
  in
  let run b steps workers backend out no_fuse =
    let trace = Msc.Trace.create () in
    let st = Msc.Suite.stencil ~dims:(dims_of b true) b in
    with_config ~backend ~fuse:(not no_fuse) ~workers (fun config ->
    let p = Msc.Pipeline.make ~stencil:st ~config ~trace () in
    (* Native run: sweep / bc / window phases, per-worker spans; report
       which kernel backend actually executed. *)
    let _, backend_report = Msc.Pipeline.run_report ~steps p in
    Format.printf "%a@." pp_backend_report backend_report;
    (* Distributed run: halo pack / exchange / unpack per rank. *)
    let ranks_shape =
      Array.init b.Msc.Suite.ndim (fun d -> if d < 2 then 2 else 1)
    in
    let dist = Msc.Pipeline.distribute ~ranks_shape p in
    Msc.Distributed.run dist steps;
    (* Processor model: simulated DMA / compute phases. *)
    (match Msc.Pipeline.simulate ~steps ~target:Msc.Codegen.Athread p with
    | Ok _ -> ()
    | Error msg -> Printf.eprintf "(sunway model skipped: %s)\n" msg);
    let oc = open_out out in
    output_string oc (Msc.Trace.to_chrome_json trace);
    close_out oc;
    Printf.printf "%d events -> %s (load in about:tracing or Perfetto)\n\n"
      (List.length (Msc.Trace.events trace))
      out;
    print_string (Msc.Trace.report trace);
    (* Sweep throughput, derived from the trace itself: the runtime bumps
       the "sweep.points" counter once per step and wraps every tile sweep
       in a "sweep" span, so counter-sum / span-total is per-core
       points-per-second across all traced runs. *)
    (let sweep_phase =
       List.find_opt
         (fun p -> p.Msc.Trace.phase = "sweep")
         (Msc.Trace.phases trace)
     and sweep_points =
       List.find_opt
         (fun c -> c.Msc.Trace.counter = "sweep.points")
         (Msc.Trace.totals trace)
     in
     match (sweep_phase, sweep_points) with
     | Some p, Some c when p.Msc.Trace.total_s > 0.0 ->
         Printf.printf
           "\nsweep throughput: %s points/s per core (%s points / %s of sweep \
            spans)\n"
           (Msc.Units_fmt.count (c.Msc.Trace.sum /. p.Msc.Trace.total_s))
           (Msc.Units_fmt.count c.Msc.Trace.sum)
           (Msc.Units_fmt.seconds p.Msc.Trace.total_s)
     | _ -> ());
    0)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a benchmark through the native, distributed and simulated \
          pipeline stages with tracing on; write a chrome trace and print \
          the per-phase summary.")
    Term.(
      const run $ bench_pos $ steps_arg 5 $ workers $ backend_arg $ out
      $ no_fuse_arg)

(* ---- Pipeline graphs ---- *)

let pipeline_arg =
  let pipeline_conv =
    let parse s =
      match Msc.Suite.pipeline s with
      | _ -> Ok s
      | exception Not_found ->
          Error
            (`Msg
              (Printf.sprintf "unknown pipeline %S (try: %s)" s
                 (String.concat ", " Msc.Suite.pipeline_names)))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  Arg.(
    required
    & pos 0 (some pipeline_conv) None
    & info [] ~docv:"PIPELINE"
        ~doc:
          "Pipeline graph from the suite (unsharp_mask | harris_corner; any \
           unambiguous prefix works).")

let graph_cmd =
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Print the DAG in Graphviz DOT format.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Dump the graph as written, skipping the optimization passes \
             (dead-stage elimination, fusion, shared-halo merging).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run name dot raw out =
    let g = Msc.Suite.pipeline name in
    let g = if raw then g else Msc.Pass.apply Msc.Pass.default_pipeline g in
    let text =
      if dot then Msc.Graph.to_dot g else Format.asprintf "%a@." Msc.Graph.pp g
    in
    (match out with
    | Some file ->
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s\n" file
    | None -> print_string text);
    0
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Inspect a pipeline graph (post-pass by default: dead stages \
          dropped, single-consumer chains fused, shared halo merged).")
    Term.(const run $ pipeline_arg $ dot $ raw $ out)

let run_graph_cmd =
  let workers =
    Arg.(value & opt int 1 & info [ "w"; "workers" ] ~docv:"W" ~doc:"Worker domains.")
  in
  let no_passes =
    Arg.(
      value & flag
      & info [ "no-passes" ]
          ~doc:
            "Execute the graph as written — every stage swept into its own \
             buffer — instead of the pass-optimized schedule.")
  in
  let run name steps workers backend small no_passes =
    let dims = if small then [| 96; 96 |] else Msc.Suite.default_pipeline_dims in
    let g0 = Msc.Suite.pipeline ~dims name in
    with_config ~backend ~workers (fun config ->
        let passes = if no_passes then [] else Msc.Pass.default_pipeline in
        let p = Msc.Pipeline.of_graph ~passes ~config g0 in
        let g = Option.get (Msc.Pipeline.graph p) in
        (match Msc.Pipeline.graph_plan p with
        | Ok gp ->
            Format.printf
              "stages: %d -> %d  buffers: %d  exchanges/step: %d (naive %d)  \
               halo: %d  merged: %b@."
              (List.length g0.Msc.Graph.stages)
              (List.length g.Msc.Graph.stages)
              gp.Msc.Plan.gp_n_buffers gp.Msc.Plan.gp_exchanges_per_step
              gp.Msc.Plan.gp_naive_exchanges_per_step gp.Msc.Plan.gp_halo.(0)
              gp.Msc.Plan.gp_merged
        | Error msg -> Printf.eprintf "plan: %s\n" msg);
        let t0 = Sys.time () in
        let final, report = Msc.Pipeline.run_report ~steps p in
        Format.printf "%a@.%a@.cpu time: %.2fs for %d steps@." Msc.Grid.pp_stats
          final pp_backend_report report (Sys.time () -. t0) steps;
        0)
  in
  Cmd.v
    (Cmd.info "run-graph"
       ~doc:
         "Execute a multi-stage pipeline graph natively (passes applied \
          first, fused stages and all).")
    Term.(
      const run $ pipeline_arg $ steps_arg 10 $ workers $ backend_arg
      $ small_arg $ no_passes)

(* ---- Scale-out modeling ---- *)

let scale_cmd =
  let platform_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sunway", Msc.Scaling.Sunway); ("tianhe3", Msc.Scaling.Tianhe3);
             ])
          Msc.Scaling.Sunway
      & info [ "p"; "platform" ] ~docv:"P" ~doc:"sunway | tianhe3.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("strong", `Strong); ("weak", `Weak) ]) `Weak
      & info [ "mode" ] ~docv:"M"
          ~doc:
            "strong (fixed global grid split across ranks) | weak (fixed \
             per-rank grid, global grows with the ladder).")
  in
  let base_arg =
    Arg.(
      value
      & opt (ints_conv "base") [| 512; 512 |]
      & info [ "base" ] ~docv:"DIMS"
          ~doc:
            "Base grid extents, e.g. 512x512: the global grid under strong \
             scaling, the per-rank sub-grid under weak scaling.")
  in
  let ladder_arg =
    Arg.(
      value
      & opt (list int) [ 4; 16; 64; 256; 1024 ]
      & info [ "ranks" ] ~docv:"R1,R2,..."
          ~doc:
            "Simulated rank ladder; the first rung is the efficiency \
             baseline.")
  in
  let depth_arg =
    Arg.(
      value & opt int 1
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Temporal-blocking depth (capped per rung by the sub-grid \
             geometry).")
  in
  let rpn_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ranks-per-node"; "rpn" ] ~docv:"N"
          ~doc:
            "Ranks sharing one physical node in the hierarchical cost model \
             (default: the platform's — 4 on Sunway, 8 on Tianhe-3; 1 \
             disables the hierarchy).")
  in
  let tune_arg =
    Arg.(
      value & flag
      & info [ "tune" ]
          ~doc:
            "Also run the scale-out tuner at the last rung: exhaustive \
             rank-grid x temporal-depth search, best five candidates \
             printed.")
  in
  let dims_str a =
    String.concat "x" (List.map string_of_int (Array.to_list a))
  in
  let run b platform mode base ladder depth rpn tune =
    let make_stencil dims = Msc.Suite.stencil ~dims b in
    match
      Msc.Scaling.efficiency_curve ~depth ?ranks_per_node:rpn platform
        ~make_stencil ~mode ~base ~ladder
    with
    | exception Invalid_argument msg ->
        prerr_endline msg;
        1
    | [] ->
        prerr_endline "empty rank ladder";
        1
    | points ->
        let pname =
          match platform with
          | Msc.Scaling.Sunway -> "sunway"
          | Msc.Scaling.Tianhe3 -> "tianhe3"
        in
        let rows =
          List.map
            (fun (p : Msc.Scaling.eff_point) ->
              [
                string_of_int p.Msc.Scaling.e_ranks;
                dims_str p.Msc.Scaling.e_grid;
                dims_str p.Msc.Scaling.e_sub;
                string_of_int p.Msc.Scaling.e_depth;
                Printf.sprintf "%.3g" p.Msc.Scaling.e_compute_s;
                Printf.sprintf "%.3g" p.Msc.Scaling.e_comm_s;
                Printf.sprintf "%.3g" p.Msc.Scaling.e_time_s;
                Printf.sprintf "%.3f" p.Msc.Scaling.e_efficiency;
              ])
            points
        in
        print_string
          (Msc.Table.render
             ~title:
               (Printf.sprintf "%s %s scaling of %s (base %s, depth %d)" pname
                  (match mode with `Strong -> "strong" | `Weak -> "weak")
                  b.Msc.Suite.name (dims_str base) depth)
             ~header:
               [
                 "ranks"; "grid"; "sub-grid"; "depth"; "compute s"; "comm s";
                 "s/step"; "efficiency";
               ]
             rows);
        if not tune then 0
        else begin
          (* Tune at the last rung over the global grid that rung actually
             covers (under weak scaling that is sub * grid). *)
          let last = List.nth points (List.length points - 1) in
          let global =
            match mode with
            | `Strong -> base
            | `Weak ->
                Array.mapi
                  (fun d g -> g * last.Msc.Scaling.e_sub.(d))
                  last.Msc.Scaling.e_grid
          in
          match
            Msc.Autotune.tune_scale ?ranks_per_node:rpn ~platform ~make_stencil
              ~global ~nranks:last.Msc.Scaling.e_ranks ()
          with
          | exception Invalid_argument msg ->
              prerr_endline msg;
              1
          | best, ranking ->
              let top n l =
                List.filteri (fun i _ -> i < n) l
              in
              let rows =
                List.map
                  (fun (c : Msc.Autotune.scale_choice) ->
                    [
                      dims_str c.Msc.Autotune.sc_grid;
                      dims_str c.Msc.Autotune.sc_sub;
                      string_of_int c.Msc.Autotune.sc_depth;
                      Printf.sprintf "%.3g" c.Msc.Autotune.sc_compute_s;
                      Printf.sprintf "%.3g" c.Msc.Autotune.sc_comm_s;
                      Printf.sprintf "%.3g" c.Msc.Autotune.sc_time_s;
                    ])
                  (top 5 ranking)
              in
              print_string
                (Msc.Table.render
                   ~title:
                     (Printf.sprintf
                        "tuned at %d ranks over global %s (%d candidates; \
                         best: grid %s, depth %d)"
                        last.Msc.Scaling.e_ranks (dims_str global)
                        (List.length ranking)
                        (dims_str best.Msc.Autotune.sc_grid)
                        best.Msc.Autotune.sc_depth)
                   ~header:
                     [
                       "grid"; "sub-grid"; "depth"; "compute s"; "comm s";
                       "s/step";
                     ]
                   rows);
              0
        end
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Model strong/weak parallel efficiency over a simulated rank ladder \
          (hierarchical node-aware cost model; no execution), optionally \
          tuning the rank-grid shape and temporal depth at the largest rung.")
    Term.(
      const run $ bench_arg $ platform_arg $ mode_arg $ base_arg $ ladder_arg
      $ depth_arg $ rpn_arg $ tune_arg)

let experiment_cmd =
  let experiment_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "table1 | table4 | table5 | table6 | table7 | table8 | fig7 | fig8 | \
             fig9 | fig10 | fig11 | fig12 | fig13 | fig14 | correctness | \
             ablations | all")
  in
  let run name =
    let module E = Msc.Experiments in
    let render =
      match name with
      | "table1" -> Some E.render_table1
      | "table4" -> Some E.render_table4
      | "table5" -> Some E.render_table5
      | "table6" -> Some E.render_table6
      | "table7" -> Some E.render_table7
      | "table8" -> Some E.render_table8
      | "fig7" -> Some E.render_fig7
      | "fig8" -> Some E.render_fig8
      | "fig9" -> Some E.render_fig9
      | "fig10" -> Some E.render_fig10
      | "fig11" -> Some E.render_fig11
      | "fig12" -> Some E.render_fig12
      | "fig13" -> Some E.render_fig13
      | "fig14" -> Some E.render_fig14
      | "correctness" -> Some E.render_correctness
      | "ablations" -> Some Msc.Ablations.render_all
      | "all" -> Some (fun () -> E.render_all () ^ "\n" ^ Msc.Ablations.render_all ())
      | _ -> None
    in
    match render with
    | Some f ->
        print_string (f ());
        0
    | None ->
        Printf.eprintf "unknown experiment %S\n" name;
        1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper.")
    Term.(const run $ experiment_name)

let () =
  let doc = "MSC: automatic code generation and optimization of large-scale stencils" in
  let info = Cmd.info "msc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            gen_cmd;
            run_cmd;
            solve_cmd;
            verify_cmd;
            simulate_cmd;
            profile_cmd;
            graph_cmd;
            run_graph_cmd;
            scale_cmd;
            experiment_cmd;
          ]))
