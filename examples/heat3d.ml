(* 3-D heat diffusion (a 3d7pt Jacobi iteration) driven end to end:
   schedule variants are checked to produce identical physics, then compared
   through the processor simulators — the single-processor experiment of
   §5.2 in miniature.

   Run with: dune exec examples/heat3d.exe *)

open Msc

let n = 48

let () =
  let grid = Builder.def_tensor_3d ~time_window:1 ~halo:1 "T" Dtype.F64 n n n in
  (* Jacobi weights: alpha on the centre, the rest spread over 6 faces. *)
  let kernel = Builder.star_kernel ~center_weight:0.4 ~name:"Heat" ~radius:1 grid in
  let heat = Builder.single_step ~name:"heat3d" kernel in

  (* A hot plate on one face. *)
  let init _dt coord = if coord.(0) = 0 then 1.0 else 0.0 in

  (* Three schedules, one physics. *)
  let schedules =
    [
      ("untiled serial", Schedule.empty);
      ("tiled (4,8,16) + omp(8)", Schedule.matrix_canonical ~tile:[| 4; 8; 16 |] ~threads:8 kernel);
      ("sunway canonical", Schedule.sunway_canonical ~tile:[| 2; 8; 16 |] kernel);
    ]
  in
  let results =
    List.map
      (fun (label, schedule) ->
        let pool = Domain_pool.create 8 in
        let config = Exec.Config.make ~pool () in
        let rt = Runtime.create ~schedule ~config ~init heat in
        Runtime.run rt 30;
        (label, Grid.checksum (Runtime.current rt)))
      schedules
  in
  List.iter (fun (label, sum) -> Printf.printf "%-26s checksum %.12f\n" label sum) results;
  (match results with
  | (_, first) :: rest ->
      if List.for_all (fun (_, s) -> Float.abs (s -. first) < 1e-9 *. Float.abs first) rest
      then print_endline "all schedules agree: OK\n"
      else print_endline "schedules disagree: FAIL\n"
  | [] -> ());

  (* Predicted performance of the same stencil at evaluation scale. *)
  let big_grid = Builder.def_tensor_3d ~time_window:1 ~halo:1 "T" Dtype.F64 256 256 256 in
  let big_kernel = Builder.star_kernel ~center_weight:0.4 ~name:"Heat" ~radius:1 big_grid in
  let big = Builder.single_step ~name:"heat3d" big_kernel in
  let simulate target schedule =
    Pipeline.simulate ~target (Pipeline.make ~stencil:big ~schedule ())
  in
  (match simulate Codegen.Athread (Schedule.sunway_canonical ~tile:[| 2; 8; 64 |] big_kernel) with
  | Ok (Pipeline.Sunway_report r) -> Format.printf "Sunway CG : %a@." Sunway.pp_report r
  | Ok _ -> ()
  | Error msg -> Format.printf "Sunway: %s@." msg);
  match simulate Codegen.Openmp (Schedule.matrix_canonical ~tile:[| 2; 8; 256 |] big_kernel) with
  | Ok (Pipeline.Matrix_report r) -> Format.printf "Matrix SN : %a@." Matrix.pp_report r
  | Ok _ -> ()
  | Error msg -> Format.printf "Matrix: %s@." msg
