(* A tour of the AOT backend: the same scheduled stencil emitted for all
   three hardware targets, plus the round-trip check that the compiled CPU
   code computes exactly what the interpreter computes.

   Run with: dune exec examples/codegen_tour.exe *)

open Msc

let () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:2 "B" Dtype.F64 40 40 in
  let kernel = Builder.star_kernel ~name:"S_2d9pt" ~radius:2 grid in
  let st = Builder.two_step ~name:"2d9pt_star" kernel in
  let schedule = Schedule.sunway_canonical ~tile:[| 8; 20 |] kernel in

  (* The MSC surface program a user would write (Listing 1 + Listing 2). *)
  print_endline "=== MSC source ===";
  print_string
    (Pretty.program
       ~schedule_lines:(Schedule.to_msc_lines schedule ~kernel_name:"S_2d9pt")
       ~mpi_shape:[| 4; 4 |] st);
  print_newline ();

  let p = Pipeline.make ~stencil:st ~schedule () in
  List.iter
    (fun target ->
      let name = Codegen.target_to_string target in
      match Pipeline.compile ~steps:6 ~target p with
      | Ok files ->
          let dir = "_msc_generated/tour_" ^ name in
          Codegen.write_files ~dir files;
          Printf.printf "=== %s target: %d file(s), %d LoC -> %s ===\n" name
            (List.length files) (Codegen.total_loc files) dir
      | Error msg -> Printf.printf "%s: %s\n" name msg)
    [ Codegen.Cpu; Codegen.Openmp; Codegen.Athread ];

  (* Round trip: compile the CPU code with the host toolchain and compare
     checksums with the interpreter. *)
  if Codegen.Toolchain.available () then begin
    let rt = Runtime.create st in
    Runtime.run rt 6;
    let expected = Grid.checksum (Runtime.current rt) in
    match
      Pipeline.compile ~steps:6 ~target:Codegen.Cpu p
      |> Result.get_ok
      |> Codegen.Toolchain.compile_and_run ~steps:6 ~dir:"_msc_generated/tour_roundtrip"
    with
    | Ok r ->
        Printf.printf
          "\nround trip: interpreter checksum %.17g, compiled C %.17g -> %s\n"
          expected r.Codegen.Toolchain.checksum
          (if Float.abs (expected -. r.Codegen.Toolchain.checksum)
              /. Float.max 1.0 (Float.abs expected)
              < 1e-12
           then "MATCH"
           else "MISMATCH")
    | Error msg -> Printf.printf "round trip failed: %s\n" msg
  end
  else print_endline "\n(no C compiler on this host; round-trip check skipped)"
