(* Variable-coefficient stencils: the multi-grid case the paper's §5.6
   discussion motivates with WRF's advect/advect_mono and POP2's
   hdifft/vdifft kernels — "the above stencils commonly require more than one
   input grid, along with their coefficient grids."

   Here: heat diffusion through a heterogeneous medium. The diffusivity
   C(x, y) is a static coefficient grid with a low-conductivity wall down
   the middle and a gap in it; the evolving field B flows through the gap.

   Run with: dune exec examples/varcoef_advection.exe *)

open Msc

let n = 64

let () =
  let grid = Builder.def_tensor_2d ~time_window:1 ~halo:1 "B" Dtype.F64 n n in
  let coeff = Builder.coefficient_grid ~grid "C" in
  let kernel =
    Builder.var_coeff_kernel ~name:"VC_diffuse" ~coeff ~shape:Shapes.Star
      ~radius:1 grid
  in
  let st = Builder.single_step ~name:"hetero_heat" kernel in
  Format.printf "%a@." Kernel.pp kernel;
  Printf.printf "multi-grid kernel: %b (aux: C)\n\n" (Kernel.is_multi_grid kernel);

  (* Diffusivity field: conductive everywhere (1.0) except a wall at
     column n/2 (0.01) with a gap in rows [28, 36). *)
  let aux_init _name coord =
    let i, j = (coord.(0), coord.(1)) in
    if j = n / 2 && not (i >= 28 && i < 36) then 0.01 else 1.0
  in
  (* Heat source on the left edge. *)
  let init _dt coord = if coord.(1) < 3 then 1.0 else 0.0 in

  (* The optimized (bilinear fast path, tiled) runtime must agree with the
     naive tree-walking reference on this configuration. *)
  let schedule =
    Schedule.matrix_canonical ~tile:[| 8; 16 |] ~threads:4
      (Suite.kernel_of st |> fun _ -> kernel)
  in
  let report = Verify.check ~schedule ~init ~aux_init ~steps:10 st in
  Format.printf "%a@.@." Verify.pp_report report;

  let rt = Runtime.create ~schedule ~init ~aux_init st in
  Runtime.run rt 400;
  let g = Runtime.current rt in

  (* Render: heat must have leaked through the gap but not the wall. *)
  print_endline "temperature field after 400 steps ('#' hot .. ' ' cold, '|' wall):";
  for row = 0 to 31 do
    for col = 0 to 63 do
      let i = row * n / 32 and j = col in
      let v = Grid.get g [| i; j |] in
      let c =
        if j = n / 2 && not (i >= 28 && i < 36) then '|'
        else if v > 0.2 then '#'
        else if v > 0.05 then '+'
        else if v > 0.005 then '.'
        else ' '
      in
      print_char c
    done;
    print_newline ()
  done;
  let right_of_wall_gap = Grid.get g [| 31; (n / 2) + 4 |] in
  let right_of_wall_blocked = Grid.get g [| 4; (n / 2) + 4 |] in
  Printf.printf
    "\nbehind the gap: %.4f   behind the wall: %.4f   -> %s\n"
    right_of_wall_gap right_of_wall_blocked
    (if right_of_wall_gap > 4.0 *. right_of_wall_blocked then
       "heat flows through the gap only (as physics demands)"
     else "unexpected");

  (* The same stencil compiles to C with the coefficient grid as an extra
     parameter, and to athread with a dedicated SPM staging buffer. *)
  let sunway =
    Pipeline.make ~stencil:st
      ~schedule:(Schedule.sunway_canonical ~tile:[| 8; 16 |] kernel)
      ()
  in
  match Pipeline.compile ~target:Codegen.Athread sunway with
  | Ok files ->
      Codegen.write_files ~dir:"_msc_generated/varcoef" files;
      Printf.printf "\ngenerated Sunway code (aux grid staged in SPM): %d files, %d LoC\n"
        (List.length files) (Codegen.total_loc files)
  | Error msg -> print_endline msg
