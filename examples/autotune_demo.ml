(* Performance auto-tuning (§4.4 / Figure 11): a linear-regression
   performance model trained on simulated measurements, searched with
   simulated annealing over tile sizes and the MPI grid shape.

   Run with: dune exec examples/autotune_demo.exe *)

open Msc

let () =
  (* The paper's §5.4 setting: 3d7pt_star on an 8192x128x128 domain over 128
     Sunway CGs. *)
  let make_stencil dims = Suite.stencil ~dims (Suite.find "3d7pt_star") in
  let global = [| 8192; 128; 128 |] in
  let p = Pipeline.make ~stencil:(make_stencil global) () in
  let result = Pipeline.autotune ~seed:7 ~make_stencil ~nranks:128 p in
  Format.printf "initial config: %a -> %s/step@." Tuning_params.pp
    result.Autotune.initial
    (Msc.Units_fmt.seconds result.Autotune.initial_time_s);
  Format.printf "tuned config  : %a -> %s/step@." Tuning_params.pp
    result.Autotune.best
    (Msc.Units_fmt.seconds result.Autotune.best_time_s);
  Format.printf "improvement   : %.2fx after %d annealing iterations (model R^2 = %.3f)@.@."
    result.Autotune.improvement result.Autotune.iterations result.Autotune.model_r2;
  print_endline "convergence (best predicted step time):";
  List.iter
    (fun (iter, best) ->
      if iter mod 2000 = 0 then Printf.printf "  iter %6d: %s\n" iter (Msc.Units_fmt.seconds best))
    result.Autotune.trace
