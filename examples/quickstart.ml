(* Quickstart: the paper's Listing 1 — a 3d7pt stencil with two time
   dependencies — defined, scheduled, verified, executed and compiled to C.

   Run with: dune exec examples/quickstart.exe *)

open Msc

let () =
  (* DefTensor3D_TimeWin(B, 2, 1, f64, 64, 64, 64) — a smaller grid than the
     paper's 256^3 so the example runs in a blink. *)
  let grid = Builder.def_tensor_3d_timewin "B" ~time_window:2 ~halo:1 Dtype.F64 64 64 64 in

  (* Kernel S_3d7pt((k,j,i), c0*B[k,j,i] + c1*B[k,j,i-1] + ...) *)
  let kernel = Builder.star_kernel ~name:"S_3d7pt" ~radius:1 grid in

  (* Stencil st((k,j,i), Res[t] << S_3d7pt[t-1] + S_3d7pt[t-2]) *)
  let st = Builder.two_step ~name:"3d7pt" kernel in
  Format.printf "%a@.@." Stencil.pp st;

  (* Optimization primitives: tile + reorder + cache_read/write + compute_at
     + parallel(xo, 64) — Listing 2. *)
  let schedule = Schedule.sunway_canonical ~tile:[| 2; 8; 32 |] kernel in
  Format.printf "schedule:@.%a@.@." Schedule.pp schedule;

  (* One pipeline configuration drives every stage: 4 worker domains, and
     the compiled-C kernel backend when a toolchain is around (it degrades
     to the interpreter transparently when not). *)
  let pool = Domain_pool.create 4 in
  let config =
    Exec.Config.make ~backend:Backend.Compiled_c ~pool ()
  in
  let p = Pipeline.make ~stencil:st ~schedule ~config () in

  (* Correctness: optimized runtime vs naive reference (§5.1). *)
  let report = Pipeline.verify ~steps:5 p in
  Format.printf "%a@.@." Verify.pp_report report;

  (* Native execution with 4 worker domains. *)
  let final, backend_report = Pipeline.run_report ~steps:10 p in
  Format.printf "after 10 steps: %a@." Grid.pp_stats final;
  Format.printf "kernels ran on: %a@.@." Backend.pp
    backend_report.Runtime.effective;
  Domain_pool.shutdown pool;

  (* st.compile_to_source_code("3d7pt") — AOT C for the Sunway target. *)
  (match Pipeline.compile ~target:Codegen.Athread p with
  | Ok files ->
      Codegen.write_files ~dir:"_msc_generated/quickstart" files;
      Format.printf "generated:@.";
      List.iter
        (fun f ->
          Format.printf "  _msc_generated/quickstart/%s@." f.Codegen.name)
        files
  | Error msg -> Format.printf "codegen failed: %s@." msg);

  (* And a performance prediction on one Sunway core group. *)
  match Pipeline.simulate ~target:Codegen.Athread p with
  | Ok (Pipeline.Sunway_report r) ->
      Format.printf "@.simulated on a Sunway CG: %a@." Sunway.pp_report r
  | Ok (Pipeline.Matrix_report _) -> assert false
  | Error msg -> Format.printf "simulation failed: %s@." msg
