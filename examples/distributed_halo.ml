(* Large-scale execution in miniature: the communication library's domain
   decomposition and asynchronous halo exchange (§4.4, Figure 6), validated
   bit-for-bit against a single-grid run.

   Run with: dune exec examples/distributed_halo.exe *)

open Msc

let () =
  (* The paper's Figure 6 setting, scaled up a little: a 2d9pt box stencil on
     a 2x2 MPI grid (box corners force diagonal exchanges). *)
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 64 64 in
  let kernel = Builder.box_kernel ~name:"S_2d9pt" ~radius:1 grid in
  let st = Builder.two_step ~name:"2d9pt_box" kernel in

  let dist =
    Pipeline.distribute ~ranks_shape:[| 2; 2 |] (Pipeline.make ~stencil:st ())
  in
  Printf.printf "decomposed 64x64 over %d ranks:\n" (Distributed.nranks dist);
  let d = Distributed.decomp dist in
  for rank = 0 to Distributed.nranks dist - 1 do
    let offset, extent = Decomp.subdomain d ~rank in
    Printf.printf "  rank %d: offset (%d,%d) extent (%d,%d)\n" rank offset.(0)
      offset.(1) extent.(0) extent.(1)
  done;

  Distributed.run dist 8;
  let mpi = Distributed.mpi dist in
  Printf.printf "\nafter 8 steps: %d messages, %d bytes exchanged\n"
    (Mpi.messages_sent mpi) (Mpi.bytes_sent mpi);

  (* The gathered distributed state must equal the single-grid state
     exactly. *)
  let single = Runtime.create st in
  Runtime.run single 8;
  let err =
    Grid.max_rel_error ~reference:(Runtime.current single) (Distributed.gather dist)
  in
  Printf.printf "gathered vs single-grid max relative error: %g -> %s\n" err
    (if err = 0.0 then "bit-identical" else "MISMATCH");

  (* Both stepping protocols — the default Overlapped engine above hides
     the exchange behind each rank's interior sub-sweep; Bulk_synchronous
     is the lockstep parity reference. Their gathers agree bit-for-bit. *)
  let bulk =
    Distributed.create
      ~config:(Exec.Config.make ~engine:Exec.Bulk_synchronous ())
      ~ranks_shape:[| 2; 2 |] st
  in
  Distributed.run bulk 8;
  Printf.printf "overlapped vs bulk-synchronous engines: %s\n"
    (if (Distributed.gather bulk).Grid.data = (Distributed.gather dist).Grid.data
     then "bit-identical" else "MISMATCH");

  (* An uneven 3-D decomposition with a star stencil (faces only). *)
  let grid3 = Builder.def_tensor_3d ~time_window:2 ~halo:2 "B" Dtype.F64 23 17 29 in
  let k3 = Builder.star_kernel ~name:"S_3d13pt" ~radius:2 grid3 in
  let st3 = Builder.two_step ~name:"3d13pt_star" k3 in
  let err3 = Distributed.validate ~steps:5 ~ranks_shape:[| 3; 2; 2 |] st3 in
  Printf.printf "3d13pt_star on a 3x2x2 grid (uneven blocks): err %g -> %s\n" err3
    (if err3 = 0.0 then "bit-identical" else "MISMATCH");

  (* Predicted scalability of this stencil at paper scale (Figure 10). *)
  print_newline ();
  let make_stencil dims =
    let g = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 dims.(0) dims.(1) in
    Builder.two_step ~name:"2d9pt_box" (Builder.box_kernel ~name:"S" ~radius:1 g)
  in
  let points =
    Scaling.run ~platform:Scaling.Sunway ~make_stencil
      ~configs:
        [
          ([| 16; 8 |], [| 4096; 4096 |]);
          ([| 16; 16 |], [| 4096; 4096 |]);
          ([| 32; 16 |], [| 4096; 4096 |]);
          ([| 32; 32 |], [| 4096; 4096 |]);
        ]
  in
  print_endline "weak scaling on Sunway (simulated):";
  List.iter
    (fun (p : Scaling.point) ->
      Printf.printf "  %6d cores: %10.1f GFlop/s (ideal %10.1f)\n"
        p.Scaling.cores p.Scaling.gflops p.Scaling.ideal_gflops)
    points
