(* Profiling a pipeline: one Msc.Trace sink threaded through a distributed
   run and a processor simulation, exported as a chrome trace (load the file
   in about:tracing or https://ui.perfetto.dev) plus an aggregate table.

   Run with: dune exec examples/profile_demo.exe *)

open Msc

let () =
  let trace = Trace.create () in
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "B" Dtype.F64 96 96 in
  let kernel = Builder.box_kernel ~name:"S_2d9pt" ~radius:1 grid in
  let st = Builder.two_step ~name:"2d9pt_box" kernel in
  let p = Pipeline.make ~stencil:st ~trace () in

  (* A traced distributed run on a 2x2 process grid: every rank's tile
     sweeps, BC application and halo pack/exchange/unpack land in the shared
     trace, tagged with the rank as [tid] — in the chrome view each rank is
     its own row. *)
  let dist = Pipeline.distribute ~ranks_shape:[| 2; 2 |] p in
  Distributed.run dist 10;
  Printf.printf "distributed run: %d ranks x 10 steps, %d spans recorded\n"
    (Distributed.nranks dist) (Trace.span_count trace);

  (* The Sunway processor model adds its predicted DMA / compute phases
     (model time, not wall clock) to the same sink. *)
  (match Pipeline.simulate ~target:Codegen.Athread p with
  | Ok (Pipeline.Sunway_report r) ->
      Printf.printf "sunway model: %s/step predicted\n\n"
        (Units_fmt.seconds r.Sunway.time_per_step_s)
  | Ok _ -> ()
  | Error msg -> Printf.printf "sunway model skipped: %s\n\n" msg);

  let out = "_msc_generated/profile_demo_trace.json" in
  (try Unix.mkdir "_msc_generated" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out out in
  output_string oc (Trace.to_chrome_json trace);
  close_out oc;
  Printf.printf "%d events -> %s\n\n" (List.length (Trace.events trace)) out;

  print_string (Trace.report trace)
