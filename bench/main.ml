(* The benchmark harness.

   Part 1 (Bechamel): wall-clock micro-benchmarks of the real code paths
   behind each paper artifact, on reduced grids so the whole suite runs in
   seconds — one Test.make group per table/figure.

   Part 2: the full experiment harness — every table and figure of the
   paper's evaluation regenerated (Tables 1/4/5/6/7/8, Figures 7-14, and the
   §5.1 correctness methodology). *)

open Bechamel
open Toolkit

let small_stencil name =
  let b = Msc.Suite.find name in
  let dims =
    match b.Msc.Suite.ndim with 2 -> [| 64; 64 |] | _ -> [| 24; 24; 24 |]
  in
  (b, Msc.Suite.stencil ~dims b)

let step_test ?schedule name =
  let _, st = small_stencil name in
  Staged.stage (fun () ->
      let rt = Msc.Runtime.create ?schedule st in
      Msc.Runtime.step rt)

(* Table 4 / Figure 7-8: one kernel sweep per benchmark. *)
let suite_tests =
  Test.make_grouped ~name:"fig7_step"
    (List.map
       (fun (b : Msc.Suite.bench) ->
         Test.make ~name:b.Msc.Suite.name (step_test b.Msc.Suite.name))
       Msc.Suite.all)

(* Table 5: the tile/reorder/parallel primitives — scheduled vs unscheduled
   execution of the same stencil. *)
let schedule_tests =
  let _, st = small_stencil "3d7pt_star" in
  let kernel = Msc.Suite.kernel_of st in
  let tiled = Msc.Schedule.matrix_canonical ~tile:[| 4; 8; 24 |] ~threads:1 kernel in
  Test.make_grouped ~name:"table5_schedule"
    [
      Test.make ~name:"untiled" (step_test "3d7pt_star");
      Test.make ~name:"tiled" (step_test ~schedule:tiled "3d7pt_star");
    ]

(* Figure 10: one distributed timestep with real pack/send/recv/unpack. *)
let halo_tests =
  let _, st = small_stencil "2d9pt_box" in
  Test.make_grouped ~name:"fig10_halo"
    [
      Test.make ~name:"distributed_step_2x2"
        (Staged.stage (fun () ->
             let dist = Msc.Distributed.create ~ranks_shape:[| 2; 2 |] st in
             Msc.Distributed.step dist));
      Test.make ~name:"pack_unpack"
        (Staged.stage
           (let g = Msc.Grid.create ~shape:[| 64; 64 |] ~halo:[| 2; 2 |] in
            fun () ->
              let payload = Msc.Halo.pack g ~dir:[| 1; 0 |] ~width:[| 2; 2 |] in
              Msc.Halo.unpack g ~dir:[| 1; 0 |] ~width:[| 2; 2 |] payload));
    ]

(* Table 6 / §4.2: code generation itself. *)
let codegen_tests =
  let _, st = small_stencil "3d7pt_star" in
  let kernel = Msc.Suite.kernel_of st in
  let sched = Msc.Schedule.sunway_canonical ~tile:[| 4; 8; 24 |] kernel in
  Test.make_grouped ~name:"table6_codegen"
    [
      Test.make ~name:"emit_sunway"
        (Staged.stage (fun () ->
             ignore (Msc.Codegen.generate st sched Msc.Codegen.Athread)));
      Test.make ~name:"emit_openmp"
        (Staged.stage (fun () ->
             ignore (Msc.Codegen.generate st sched Msc.Codegen.Openmp)));
      Test.make ~name:"msc_pretty"
        (Staged.stage (fun () -> ignore (Msc.Pretty.program st)));
    ]

(* Figures 7-9: the processor performance simulators. *)
let sim_tests =
  let b = Msc.Suite.find "3d13pt_star" in
  let st = Msc.Suite.stencil b in
  let kernel = Msc.Suite.kernel_of st in
  let ssched = Msc.Schedule.sunway_canonical ~tile:[| 2; 4; 64 |] kernel in
  let msched = Msc.Schedule.matrix_canonical ~tile:[| 2; 8; 256 |] kernel in
  Test.make_grouped ~name:"fig9_simulators"
    [
      Test.make ~name:"sunway_sim"
        (Staged.stage (fun () -> ignore (Msc.Sunway.simulate st ssched)));
      Test.make ~name:"matrix_sim"
        (Staged.stage (fun () -> ignore (Msc.Matrix.simulate st msched)));
    ]

(* Figure 11: annealing moves + regression fitting. *)
let tuning_tests =
  let global = [| 512; 128; 128 |] in
  let rng = Msc.Prng.create 99 in
  Test.make_grouped ~name:"fig11_autotune"
    [
      Test.make ~name:"sa_neighbor_move"
        (Staged.stage
           (let config = ref (Msc.Tuning_params.random rng ~dims:global ~nranks:32) in
            fun () ->
              config := Msc.Tuning_params.neighbor rng ~dims:global ~nranks:32 !config));
      Test.make ~name:"regression_fit"
        (Staged.stage
           (let features =
              Array.init 40 (fun i ->
                  Array.init 5 (fun j -> float_of_int ((i + j) mod 7) +. 0.5))
            in
            let targets = Array.init 40 (fun i -> float_of_int (i mod 11)) in
            fun () -> ignore (Msc_util.Regress.fit ~features ~targets)));
    ]

(* §5.6 extensions: variable-coefficient kernels, boundary conditions,
   grid I/O and the inspector's partitioner. *)
let extension_tests =
  let grid = Msc.Builder.def_tensor_2d ~halo:1 "B" Msc.Dtype.F64 64 64 in
  let coeff = Msc.Builder.coefficient_grid ~grid "C" in
  let vc =
    Msc.Builder.var_coeff_kernel ~name:"VC" ~coeff ~shape:Msc.Shapes.Star
      ~radius:1 grid
  in
  let vc_st = Msc.Builder.single_step ~name:"vc" vc in
  let linear = Msc.Builder.star_kernel ~name:"L" ~radius:1 grid in
  let lin_st = Msc.Builder.single_step ~name:"lin" linear in
  let g = Msc.Grid.create ~shape:[| 64; 64 |] ~halo:[| 1; 1 |] in
  let io_path = Filename.temp_file "msc_bench_grid" ".bin" in
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"step_linear_taps"
        (Staged.stage (fun () ->
             let rt = Msc.Runtime.create lin_st in
             Msc.Runtime.step rt));
      Test.make ~name:"step_bilinear_varcoef"
        (Staged.stage (fun () ->
             let rt = Msc.Runtime.create vc_st in
             Msc.Runtime.step rt));
      Test.make ~name:"bc_periodic_apply"
        (Staged.stage (fun () -> Msc.Bc.apply Msc.Bc.Periodic g));
      Test.make ~name:"grid_save_load"
        (Staged.stage (fun () ->
             Msc.Grid.save g io_path;
             ignore (Msc.Grid.load io_path)));
      Test.make ~name:"inspector_partition_256x16"
        (Staged.stage
           (let costs =
              Array.init 256 (fun i -> if i mod 7 = 0 then 5.0 else 1.0)
            in
            fun () -> ignore (Msc.Inspector.partition ~costs ~parts:16)));
    ]

(* Dispatch latency of the persistent worker pool vs the spawn-per-region
   pattern it replaced. [spawn_join] pays domain creation + teardown on every
   parallel region; [pool_dispatch] parks the same helpers on a condvar and
   only pays a broadcast + wait. *)
let parallel_overhead_tests =
  let pool = Msc.Domain_pool.create 4 in
  (* Prime the pool so the one-time spawn is not measured. *)
  Msc.Domain_pool.parallel_for pool ~lo:0 ~hi:4 (fun _ -> ());
  Test.make_grouped ~name:"parallel_overhead"
    [
      Test.make ~name:"spawn_join_4"
        (Staged.stage (fun () ->
             let doms = List.init 3 (fun _ -> Domain.spawn (fun () -> ())) in
             List.iter Domain.join doms));
      Test.make ~name:"pool_dispatch_4"
        (Staged.stage (fun () ->
             Msc.Domain_pool.parallel_for pool ~lo:0 ~hi:4 (fun _ -> ())));
      Test.make ~name:"pool_chunks_4x64"
        (Staged.stage (fun () ->
             Msc.Domain_pool.parallel_chunks pool ~lo:0 ~hi:64
               (fun ~worker:_ _ -> ())));
    ]

(* The fast-path engine: write-through step vs the legacy zero+accumulate
   step, and the specialized taps sweep vs the retained generic closure
   walker it replaced. *)
let fastpath_tests =
  let _, st = small_stencil "3d7pt_star" in
  let kernel = Msc.Suite.kernel_of st in
  let geometry = Msc.Grid.of_tensor st.Msc.Stencil.grid in
  let compiled = Msc.Interp.compile kernel ~geometry in
  let src = Msc.Grid.of_tensor st.Msc.Stencil.grid in
  Msc.Grid.fill src (fun c -> float_of_int (c.(0) + c.(1) + c.(2)) *. 0.01);
  let dst = Msc.Grid.like src in
  let lo = [| 0; 0; 0 |] and hi = st.Msc.Stencil.grid.Msc.Tensor.shape in
  Test.make_grouped ~name:"fastpath"
    [
      Test.make ~name:"step_write_through"
        (Staged.stage (fun () ->
             let rt = Msc.Runtime.create ~engine:Msc.Runtime.Write_through st in
             Msc.Runtime.step rt));
      Test.make ~name:"step_zero_accumulate"
        (Staged.stage (fun () ->
             let rt =
               Msc.Runtime.create ~engine:Msc.Runtime.Zero_accumulate st
             in
             Msc.Runtime.step rt));
      Test.make ~name:"sweep_specialized"
        (Staged.stage (fun () ->
             Msc.Interp.apply_range ~aux:[] compiled ~src ~dst ~lo ~hi));
      Test.make ~name:"sweep_generic"
        (Staged.stage (fun () ->
             Msc.Interp.generic_apply_range ~aux:[] compiled ~src ~dst ~lo ~hi));
    ]

(* Plan-driven tile traversal: the native runtime sweeps the plan's
   materialized task array, so a schedule's [reorder] now decides traversal
   order. Same tiles, same results — only locality differs between the
   canonical (row-major outer) order and the reversed outer order. *)
let plan_traversal_tests =
  let _, st = small_stencil "3d7pt_star" in
  let tile = [| 4; 8; 24 |] in
  let sched order =
    Msc.Schedule.reorder (Msc.Schedule.tile Msc.Schedule.empty tile) order
  in
  let rt order =
    Msc.Runtime.create ~plan:(Msc.Plan.compile_exn st (sched order)) st
  in
  let rt_canonical = rt [ "xo"; "yo"; "zo"; "xi"; "yi"; "zi" ] in
  let rt_reversed = rt [ "zo"; "yo"; "xo"; "xi"; "yi"; "zi" ] in
  Test.make_grouped ~name:"plan_traversal"
    [
      Test.make ~name:"outer_canonical"
        (Staged.stage (fun () -> Msc.Runtime.step rt_canonical));
      Test.make ~name:"outer_reversed"
        (Staged.stage (fun () -> Msc.Runtime.step rt_reversed));
    ]

(* Tentpole guarantee of the tracing subsystem: a disabled trace must cost
   nothing measurable. All three variants run the same fig7-style 3d7pt
   step; [step_trace_disabled] passes the disabled sink explicitly (what
   every instrumented call site does by default) and must stay within the
   noise (< 2%) of [step_untraced]. [step_trace_enabled] shows the cost of
   live recording for scale. *)
let trace_overhead_tests =
  let _, st = small_stencil "3d7pt_star" in
  let live = Msc.Trace.create () in
  Test.make_grouped ~name:"trace_overhead"
    [
      Test.make ~name:"step_untraced" (step_test "3d7pt_star");
      Test.make ~name:"step_trace_disabled"
        (Staged.stage (fun () ->
             let rt = Msc.Runtime.create ~trace:Msc.Trace.disabled st in
             Msc.Runtime.step rt));
      Test.make ~name:"step_trace_enabled"
        (Staged.stage (fun () ->
             let rt = Msc.Runtime.create ~trace:live st in
             Msc.Runtime.step rt));
    ]

(* Tentpole of the overlapped-exchange PR: the same distributed timestep
   through both engines. Without a network model this measures pure protocol
   cost (split exchange + interior/shell sweep vs monolithic step); the
   latency-hiding win is measured in BENCH_runtime.json's [comm] entry,
   where messages carry a simulated in-flight latency. *)
let comm_tests =
  let _, st = small_stencil "2d9pt_box" in
  let dist engine =
    Msc.Distributed.create
      ~config:(Msc.Exec.Config.make ~engine ())
      ~ranks_shape:[| 2; 2 |] st
  in
  let bulk = dist Msc.Distributed.Bulk_synchronous in
  let overlapped = dist Msc.Distributed.Overlapped in
  let temporal =
    dist (Msc.Distributed.Temporal_blocked { depth = 4 })
  in
  Test.make_grouped ~name:"comm"
    [
      Test.make ~name:"step_bulk_synchronous"
        (Staged.stage (fun () -> Msc.Distributed.step bulk));
      Test.make ~name:"step_overlapped"
        (Staged.stage (fun () -> Msc.Distributed.step overlapped));
      Test.make ~name:"step_temporal_depth4"
        (Staged.stage (fun () -> Msc.Distributed.step temporal));
    ]

(* Tentpole of the compiled-backend PR: the same timestep through all three
   kernel backends. The compiled runtimes are created outside the probe so
   the one-time emit+compile (or kernel-cache hit) is not measured — steady
   state is what the paper's generated code competes on. *)
let kernel_backend_tests =
  let backends rt_name =
    let _, st = small_stencil rt_name in
    List.map
      (fun backend ->
        let rt =
          Msc.Runtime.create
            ~config:(Msc.Exec.Config.make ~backend ())
            st
        in
        Test.make
          ~name:(Msc.Backend.to_string backend)
          (Staged.stage (fun () -> Msc.Runtime.step rt)))
      Msc.Backend.all
  in
  Test.make_grouped ~name:"kernels"
    [
      Test.make_grouped ~name:"3d7pt_star" (backends "3d7pt_star");
      Test.make_grouped ~name:"2d9pt_box" (backends "2d9pt_box");
    ]

(* Tentpole of the fused-sweep PR: the same compiled_c timestep with one
   fused whole-sweep kernel vs one kernel per stencil term, plus the fused
   kernel dispatched tile-task-at-a-time across a 4-worker pool. The
   multi-term two_step suite stencils write the output grid once per term
   under per-term kernels; the fused kernel touches it once total. *)
let fused_tests =
  let single name =
    let _, st = small_stencil name in
    let rt fuse =
      Msc.Runtime.create
        ~config:(Msc.Exec.Config.make ~backend:Msc.Backend.Compiled_c ~fuse ())
        st
    in
    let fused = rt true and per_term = rt false in
    Test.make_grouped ~name
      [
        Test.make ~name:"compiled_c_fused"
          (Staged.stage (fun () -> Msc.Runtime.step fused));
        Test.make ~name:"compiled_c_per_term"
          (Staged.stage (fun () -> Msc.Runtime.step per_term));
      ]
  in
  let pool_leg =
    let _, st = small_stencil "3d7pt_star" in
    let kernel = Msc.Suite.kernel_of st in
    let schedule =
      Msc.Schedule.matrix_canonical ~tile:[| 4; 8; 24 |] ~threads:4 kernel
    in
    let pool = Msc.Domain_pool.create 4 in
    let rt p =
      Msc.Runtime.create ~schedule
        ~config:
          (Msc.Exec.Config.make ~backend:Msc.Backend.Compiled_c ~pool:p ())
        st
    in
    let seq = rt Msc.Domain_pool.sequential and par = rt pool in
    Test.make_grouped ~name:"3d7pt_star_pool"
      [
        Test.make ~name:"fused_1_worker"
          (Staged.stage (fun () -> Msc.Runtime.step seq));
        Test.make ~name:"fused_4_workers"
          (Staged.stage (fun () -> Msc.Runtime.step par));
      ]
  in
  Test.make_grouped ~name:"fused"
    [ single "2d121pt_box"; single "2d169pt_box"; pool_leg ]

(* Pipeline graph fusion: the same multi-stage pipeline stepped naive
   stage-at-a-time vs pass-optimized (dead stages dropped, single-consumer
   chains fused into compound kernels, shared halo merged). *)
let pipeline_fusion_tests =
  Test.make_grouped ~name:"pipeline_fusion"
    (List.concat_map
       (fun name ->
         let g = Msc.Suite.pipeline ~dims:[| 64; 64 |] name in
         let go = Msc.Pass.apply Msc.Pass.default_pipeline g in
         [
           Test.make ~name:(name ^ "_naive")
             (Staged.stage (fun () ->
                  let rt = Msc.Runtime.create_graph g in
                  Msc.Runtime.step rt));
           Test.make ~name:(name ^ "_fused")
             (Staged.stage (fun () ->
                  let rt = Msc.Runtime.create_graph go in
                  Msc.Runtime.step rt));
         ])
       Msc.Suite.pipeline_names)

(* Matrix-free solvers: one full solve to tolerance per run on the small
   Poisson model problem — the whole apply + reduce + update loop, single
   rank, so the number tracks the serial iteration cost. *)
let solver_tests =
  let p = Msc.Solver.Problem.poisson ~dims:[| 9; 9 |] in
  Test.make_grouped ~name:"solver"
    (List.map
       (fun method_ ->
         Test.make
           ~name:(Msc.Solver.method_to_string method_)
           (Staged.stage (fun () ->
                ignore (Msc.Solver.solve ~tol:1e-6 ~method_ p))))
       Msc.Solver.all_methods)

let all_tests =
  Test.make_grouped ~name:"msc"
    [
      suite_tests; schedule_tests; halo_tests; codegen_tests; sim_tests;
      tuning_tests; extension_tests; parallel_overhead_tests; fastpath_tests;
      plan_traversal_tests; trace_overhead_tests; comm_tests;
      kernel_backend_tests; fused_tests; pipeline_fusion_tests; solver_tests;
    ]

(* == BENCH_runtime.json: machine-readable per-kernel throughput ==

   Direct wall-clock measurement (not Bechamel) so the numbers are plain
   points/sec a future PR can diff. Each suite kernel runs single-threaded
   at the reduced bench dims; the fastpath entry pins the speedup of the
   specialized write-through sweep over the legacy fill+generic-accumulate
   step body on 3d7pt_star. *)

(* Measurement quota per timing. [--smoke] shrinks it so the whole harness
   finishes in seconds on CI while still exercising every code path. *)
let quota_s = ref 0.2

let time_per_run f =
  f ();
  (* warm-up *)
  let rec ramp iters =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= !quota_s then dt /. float_of_int iters else ramp (iters * 2)
  in
  ramp 1

(* Interleaved min-of-N for a timing PAIR whose ratio is asserted: the legs
   alternate inside the same measurement window and each keeps its noise
   floor (preemption and allocator jitter only ever slow a run down), so a
   slow epoch lands on both or neither — sequential windows would let it
   skew the ratio one way. [quota] floors the per-rep quota so [--smoke]'s
   shrunken budget still measures asserted legs long enough to settle. *)
let time_pair_min ?(reps = 7) ?quota fa fb =
  let saved = !quota_s in
  (match quota with Some q -> quota_s := Float.max saved q | None -> ());
  Fun.protect
    ~finally:(fun () -> quota_s := saved)
    (fun () ->
      let ta = ref infinity and tb = ref infinity in
      for _ = 1 to reps do
        ta := Float.min !ta (time_per_run fa);
        tb := Float.min !tb (time_per_run fb)
      done;
      (!ta, !tb))

(* Paired seconds-per-step for the default fused runtime vs the same fused
   kernel dispatched over a tiled 4-worker pool schedule. Shared by the
   kernel table and the pool-cutoff audit, which re-measures an
   under-threshold kernel with a longer window before failing. *)
let fused_pool_times ?reps ?quota (b : Msc.Suite.bench) =
  let dims =
    match b.Msc.Suite.ndim with 2 -> [| 64; 64 |] | _ -> [| 24; 24; 24 |]
  in
  let st = Msc.Suite.stencil ~dims b in
  let rt_fused =
    Msc.Runtime.create
      ~config:(Msc.Exec.Config.make ~backend:Msc.Backend.Compiled_c ())
      st
  in
  let kernel = Msc.Suite.kernel_of st in
  let tile =
    match b.Msc.Suite.ndim with 2 -> [| 16; 16 |] | _ -> [| 6; 8; 24 |]
  in
  let schedule = Msc.Schedule.matrix_canonical ~tile ~threads:4 kernel in
  let pool = Msc.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Msc.Domain_pool.shutdown pool)
    (fun () ->
      let rt_pool =
        Msc.Runtime.create ~schedule
          ~config:
            (Msc.Exec.Config.make ~backend:Msc.Backend.Compiled_c ~pool ())
          st
      in
      time_pair_min ?reps ?quota
        (fun () -> Msc.Runtime.step rt_fused)
        (fun () -> Msc.Runtime.step rt_pool))

(* Per-kernel, per-backend throughput. Four legs:
   - [interp_legacy_bc]: the seed baseline this PR's 10x claim is measured
     against — the interpreter sweep plus the per-cell boundary walker the
     fast segment-blit [Bc.apply] replaced (reconstructed through the split
     stepping API with the BC pass masked off, then [Bc.apply_reference]).
   - [interp] / [native_ocaml] / [compiled_c]: [Runtime.step] under each
     backend with [fuse:false], i.e. one compiled kernel per stencil term —
     the pre-fusion meaning these columns have carried since they were
     introduced (which includes today's fast BC pass).
   - [fused_c]: the default config's whole-sweep fused [Compiled_c] kernel.
   - [fused_c_pool]: the same fused kernel dispatched tile-task-at-a-time
     over a 4-worker pool under a tiled matrix-canonical schedule.
   The compiled runtimes are created outside the probe, so emit+compile
   (or a kernel-cache hit) is not in the measured path. *)
let kernel_backend_points_per_sec (b : Msc.Suite.bench) =
  let dims =
    match b.Msc.Suite.ndim with 2 -> [| 64; 64 |] | _ -> [| 24; 24; 24 |]
  in
  let st = Msc.Suite.stencil ~dims b in
  let points = float_of_int (Array.fold_left ( * ) 1 dims) in
  let legacy =
    let rt = Msc.Runtime.create st in
    let tiles = Msc.Runtime.tiles rt in
    let no_bc = Array.make b.Msc.Suite.ndim false in
    let per_step =
      time_per_run (fun () ->
          Msc.Runtime.begin_step rt;
          Msc.Runtime.sweep_tasks rt tiles;
          Msc.Runtime.finish_step ~low:no_bc ~high:no_bc rt;
          Msc.Bc.apply_reference (Msc.Bc.Dirichlet 0.0) (Msc.Runtime.current rt))
    in
    points /. per_step
  in
  let backend_legs =
    List.map
      (fun backend ->
        let rt =
          Msc.Runtime.create
            ~config:(Msc.Exec.Config.make ~backend ~fuse:false ())
            st
        in
        let effective =
          (Msc.Runtime.backend_report rt).Msc.Runtime.effective
        in
        let per_step = time_per_run (fun () -> Msc.Runtime.step rt) in
        (backend, effective, points /. per_step))
      Msc.Backend.all
  in
  let t_fused, t_pool = fused_pool_times ~quota:0.03 b in
  (dims, legacy, backend_legs, points /. t_fused, points /. t_pool)

let fastpath_speedup () =
  let b = Msc.Suite.find "3d7pt_star" in
  let st = Msc.Suite.stencil ~dims:[| 24; 24; 24 |] b in
  let points = float_of_int (24 * 24 * 24) in
  let kernel = Msc.Suite.kernel_of st in
  let geometry = Msc.Grid.of_tensor st.Msc.Stencil.grid in
  let compiled = Msc.Interp.compile kernel ~geometry in
  let src = Msc.Grid.of_tensor st.Msc.Stencil.grid in
  Msc.Grid.fill src (fun c -> float_of_int (c.(0) + c.(1) + c.(2)) *. 0.01);
  let dst = Msc.Grid.like src in
  let lo = [| 0; 0; 0 |] and hi = st.Msc.Stencil.grid.Msc.Tensor.shape in
  (* New step body: the first term writes through via the specialized row
     loops — no zero pass. *)
  let t_fast =
    time_per_run (fun () ->
        Msc.Interp.apply_range ~aux:[] compiled ~src ~dst ~lo ~hi)
  in
  (* Legacy step body: zero the whole padded array, then accumulate through
     the generic closure walker — what Runtime.step did before this engine. *)
  let t_legacy =
    time_per_run (fun () ->
        Msc.Grid.fill_all dst 0.0;
        Msc.Interp.generic_accumulate_range ~aux:[] compiled ~scale:1.0 ~src
          ~dst ~lo ~hi)
  in
  (points /. t_fast, points /. t_legacy, t_legacy /. t_fast)

(* Before/after for the plan-layer traversal change: the same tiled 3d7pt
   step with canonical outer order (what the pre-plan runtime always did)
   vs the reversed outer order [reorder] can now express natively. *)
let reorder_locality () =
  let b = Msc.Suite.find "3d7pt_star" in
  let st = Msc.Suite.stencil ~dims:[| 24; 24; 24 |] b in
  let points = float_of_int (24 * 24 * 24) in
  let tile = [| 4; 8; 24 |] in
  let run order =
    let sched =
      Msc.Schedule.reorder (Msc.Schedule.tile Msc.Schedule.empty tile) order
    in
    let rt = Msc.Runtime.create ~plan:(Msc.Plan.compile_exn st sched) st in
    let per_step = time_per_run (fun () -> Msc.Runtime.step rt) in
    points /. per_step
  in
  let canonical = run [ "xo"; "yo"; "zo"; "xi"; "yi"; "zi" ] in
  let reversed = run [ "zo"; "yo"; "xo"; "xi"; "yi"; "zi" ] in
  (canonical, reversed)

(* Overlapped vs bulk-synchronous distributed stepping under a synthetic
   network whose messages take ~1 ms in flight: the bulk engine eats the
   latency after every sweep, the overlapped engine hides it behind the
   interior sub-sweep. The pool is sized to the host (up to one worker per
   rank): on a single-core machine the ranks run inline and the win is pure
   latency hiding; with real cores the interiors also compute in
   parallel. *)
let comm_overlap () =
  let b = Msc.Suite.find "2d9pt_box" in
  (* Sized so each rank's interior sub-sweep takes at least as long as a
     message's flight: the overlap window can then hide the full latency. *)
  let dims = [| 192; 192 |] in
  let st = Msc.Suite.stencil ~dims b in
  let net =
    {
      Msc.Netmodel.name = "bench-synthetic";
      alpha_s = 1e-3;
      beta_gbs = 10.0;
      congestion_at =
        (fun ~nranks:_ ~messages_per_rank:_ ~bytes_per_message:_ -> 1.0);
    }
  in
  let time engine =
    let pool =
      Msc.Domain_pool.create (min 4 (Domain.recommended_domain_count ()))
    in
    Fun.protect
      ~finally:(fun () -> Msc.Domain_pool.shutdown pool)
      (fun () ->
        let dist =
          Msc.Distributed.create
            ~config:(Msc.Exec.Config.make ~engine ~pool ())
            ~net ~ranks_shape:[| 2; 2 |] st
        in
        time_per_run (fun () -> Msc.Distributed.step dist))
  in
  let bulk_s = time Msc.Distributed.Bulk_synchronous in
  let overlapped_s = time Msc.Distributed.Overlapped in
  (dims, bulk_s, overlapped_s)

(* Communication-avoiding temporal blocking under the same ~1 ms synthetic
   network — but sized to be latency-BOUND: each rank's whole sweep costs a
   few microseconds, so the overlapped engine has nothing to hide the
   message flight behind and pays ~alpha every step. The temporal engine
   exchanges a [depth * radius] halo once per block and runs [depth]
   substeps off it, amortising alpha to alpha/depth per step. *)
let comm_temporal ?(smoke = false) () =
  let b = Msc.Suite.find "2d9pt_box" in
  let dims = if smoke then [| 16; 16 |] else [| 64; 64 |] in
  let st = Msc.Suite.stencil ~dims b in
  let net =
    {
      Msc.Netmodel.name = "bench-synthetic";
      alpha_s = 1e-3;
      beta_gbs = 10.0;
      congestion_at =
        (fun ~nranks:_ ~messages_per_rank:_ ~bytes_per_message:_ -> 1.0);
    }
  in
  let time engine =
    let pool =
      Msc.Domain_pool.create (min 4 (Domain.recommended_domain_count ()))
    in
    Fun.protect
      ~finally:(fun () -> Msc.Domain_pool.shutdown pool)
      (fun () ->
        let dist =
          Msc.Distributed.create
            ~config:(Msc.Exec.Config.make ~engine ~pool ())
            ~net ~ranks_shape:[| 2; 2 |] st
        in
        time_per_run (fun () -> Msc.Distributed.step dist))
  in
  let bulk_s = time Msc.Distributed.Bulk_synchronous in
  let overlapped_s = time Msc.Distributed.Overlapped in
  let temporal =
    List.map
      (fun depth -> (depth, time (Msc.Distributed.Temporal_blocked { depth })))
      [ 1; 2; 4; 8 ]
  in
  (dims, bulk_s, overlapped_s, temporal)

(* Pool-scaling headline for the fused-sweep work: the same fused
   compiled_c kernel single-core vs dispatched tile-task-at-a-time over a
   4-worker pool, on a grid big enough that one tile amortizes dispatch
   (48^3, matrix-canonical 12x16x48 tiles -> 12 tasks of ~37k points).
   [host_cores] is recorded alongside: scaling tops out at the physical
   core count, so the ratio is only meaningful on a multicore host. *)
let fused_pool_headline () =
  let b = Msc.Suite.find "3d7pt_star" in
  let dims = [| 48; 48; 48 |] in
  let st = Msc.Suite.stencil ~dims b in
  let points = float_of_int (48 * 48 * 48) in
  let kernel = Msc.Suite.kernel_of st in
  let schedule =
    Msc.Schedule.matrix_canonical ~tile:[| 12; 16; 48 |] ~threads:4 kernel
  in
  let run pool =
    let rt =
      Msc.Runtime.create ~schedule
        ~config:(Msc.Exec.Config.make ~backend:Msc.Backend.Compiled_c ~pool ())
        st
    in
    let per_step = time_per_run (fun () -> Msc.Runtime.step rt) in
    points /. per_step
  in
  let single = run Msc.Domain_pool.sequential in
  let pool = Msc.Domain_pool.create 4 in
  let pooled =
    Fun.protect
      ~finally:(fun () -> Msc.Domain_pool.shutdown pool)
      (fun () -> run pool)
  in
  (dims, single, pooled)

(* Pipeline fusion: stage/sweep/exchange counts before vs after the pass
   pipeline plus measured points/sec both ways, per suite pipeline. The
   graph runtimes are created outside the probe so buffer allocation and
   the per-stage compiles are not in the measured path. *)
let pipeline_fusion_rows () =
  List.map
    (fun name ->
      let dims = [| 64; 64 |] in
      let g = Msc.Suite.pipeline ~dims name in
      let go = Msc.Pass.apply Msc.Pass.default_pipeline g in
      let points = float_of_int (Array.fold_left ( * ) 1 dims) in
      let pps graph =
        let rt = Msc.Runtime.create_graph graph in
        points /. time_per_run (fun () -> Msc.Runtime.step rt)
      in
      let exchanges graph =
        match Msc.Plan.compile_graph graph Msc.Schedule.empty with
        | Ok gp -> gp.Msc.Plan.gp_exchanges_per_step
        | Error m -> failwith m
      in
      ( name,
        List.length g.Msc.Graph.stages,
        List.length go.Msc.Graph.stages,
        exchanges g,
        exchanges go,
        pps g,
        pps go ))
    Msc.Suite.pipeline_names

(* Matrix-free solver throughput: every method driven to convergence on the
   Poisson model problem at a 2x2 decomposition with real halo exchanges and
   allreduces. Reported as update iterations per second plus the
   residual-vs-iteration curve (downsampled to at most 12 [iteration,
   residual] points, endpoints always kept, so the JSON stays diffable). *)
let solver_rows ?(smoke = false) () =
  let dims = if smoke then [| 17; 19 |] else [| 33; 35 |] in
  let p = Msc.Solver.Problem.poisson ~dims in
  let rows =
    List.map
      (fun method_ ->
        let solve () =
          Msc.Solver.solve
            ~config:
              (Msc.Exec.Config.make ~engine:Msc.Distributed.Overlapped ())
            ~ranks_shape:[| 2; 2 |] ~tol:1e-8
            (* Jacobi's spectral radius at the full 33x35 size puts 1e-8
               around 4300 iterations; the 2000 default caps it mid-flight
               and the row would record converged=false. *)
            ~max_iters:(if smoke then 2000 else 8000)
            ~method_ p
        in
        let r = solve () in
        let per_solve = time_per_run (fun () -> ignore (solve ())) in
        (method_, r, float_of_int r.Msc.Solver.iterations /. per_solve))
      Msc.Solver.all_methods
  in
  (dims, rows)

(* == Scale-out campaign: the O(1) mailbox and the hierarchical model ==

   [scaling_mailbox] is the campaign's host-side acceptance measurement: a
   full 4096-rank 2d9pt_box exchange step (every send plus every matching
   receive, 32004 messages) against the retained pre-refactor mailbox
   [Msc.Mpi_ref]. The message schedule (neighbours, tags, payload sizes) is
   precomputed so only mailbox operations are timed, the simulated-latency
   scale is zeroed so nothing sleeps, and each implementation runs in its
   own phase — two warm-ups, min of [reps], a major GC between phases —
   because interleaving three multi-megabyte mailbox working sets through
   the cache distorts the ratio. *)
let scaling_mailbox ?(smoke = false) () =
  let nd = 2 in
  let decomp =
    Msc.Decomp.create ~global:[| 4096; 4096 |] ~ranks_shape:[| 64; 64 |]
  in
  let nranks = decomp.Msc.Decomp.nranks in
  let dirs = Msc.Decomp.directions ~ndim:nd ~faces_only:false in
  let face = Bytes.create (64 * 8) and corner = Bytes.create 8 in
  let sends = ref [] and recvs = ref [] in
  for rank = 0 to nranks - 1 do
    List.iter
      (fun dir ->
        match Msc.Decomp.neighbor decomp ~rank ~dir with
        | None -> ()
        | Some nb ->
            let payload =
              if Array.for_all (fun v -> v <> 0) dir then corner else face
            in
            sends :=
              (rank, nb, Msc.Decomp.dir_index ~ndim:nd dir, payload) :: !sends;
            let opp = Array.map (fun v -> -v) dir in
            recvs := (rank, nb, Msc.Decomp.dir_index ~ndim:nd opp) :: !recvs)
      dirs
  done;
  let sends = Array.of_list (List.rev !sends)
  and recvs = Array.of_list (List.rev !recvs) in
  let net = Msc.Netmodel.tianhe3_prototype in
  let reps = if smoke then 5 else 15 in
  let saved_scale = Msc.Netmodel.sim_latency_scale () in
  Msc.Netmodel.set_sim_latency_scale 0.0;
  Fun.protect
    ~finally:(fun () -> Msc.Netmodel.set_sim_latency_scale saved_scale)
    (fun () ->
      let time1 f =
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0
      in
      let phase step =
        Gc.full_major ();
        step ();
        step ();
        let m = ref infinity in
        for _ = 1 to reps do
          m := Float.min !m (time1 step)
        done;
        !m
      in
      let h_new = Msc.Mpi.create ~net ~nranks () in
      let ports =
        Array.map
          (fun (src, dst, tag, p) -> (Msc.Mpi.send_port h_new ~src ~dst ~tag, p))
          sends
      in
      let slots =
        Array.map
          (fun (dst, src, tag) -> Msc.Mpi.recv_slot h_new ~dst ~src ~tag)
          recvs
      in
      let step_ports () =
        Array.iter (fun (port, p) -> Msc.Mpi.port_send port p) ports;
        Array.iter (fun s -> ignore (Msc.Mpi.slot_wait s)) slots
      in
      let h_gen = Msc.Mpi.create ~net ~nranks () in
      let step_gen () =
        Array.iter
          (fun (src, dst, tag, p) ->
            Msc.Mpi.isend_owned h_gen ~src ~dst ~tag p)
          sends;
        Array.iter
          (fun (dst, src, tag) ->
            ignore (Msc.Mpi.wait h_gen (Msc.Mpi.irecv h_gen ~dst ~src ~tag)))
          recvs
      in
      let h_ref = Msc.Mpi_ref.create ~net ~nranks () in
      let step_ref () =
        Array.iter
          (fun (src, dst, tag, p) -> Msc.Mpi_ref.isend h_ref ~src ~dst ~tag p)
          sends;
        Array.iter
          (fun (dst, src, tag) ->
            ignore
              (Msc.Mpi_ref.wait h_ref (Msc.Mpi_ref.irecv h_ref ~dst ~src ~tag)))
          recvs
      in
      let ports_s = phase step_ports in
      let generic_s = phase step_gen in
      let ref_s = phase step_ref in
      (nranks, Array.length sends, ref_s, ports_s, generic_s))

(* Modelled strong/weak efficiency curves for both platforms (the arXiv
   2404.02218 Figure-10 shape), hierarchical by default: every point is
   analytic — platform node simulator plus the two-level network model —
   so the 16k-rank rung costs the same milliseconds as the 16-rank one.
   The ladder opens at 4 ranks so the audited 16-rank efficiency is a real
   ratio, not the baseline's trivial 1.0. *)
let scaling_curves ?(smoke = false) () =
  let make_stencil dims =
    Msc.Suite.stencil ~dims (Msc.Suite.find "2d9pt_box")
  in
  let ladder =
    if smoke then [ 4; 16 ] else [ 4; 16; 64; 256; 1024; 4096; 16384 ]
  in
  List.concat_map
    (fun (platform, pname) ->
      let rpn = Msc.Scaling.ranks_per_node platform in
      List.map
        (fun (mode, mname, base) ->
          ( pname,
            rpn,
            mname,
            Msc.Scaling.efficiency_curve platform ~make_stencil ~mode ~base
              ~ladder ))
        [
          (`Strong, "strong", [| 4096; 4096 |]); (`Weak, "weak", [| 512; 512 |]);
        ])
    [
      (Msc.Scaling.Sunway, "sunway_taihulight");
      (Msc.Scaling.Tianhe3, "tianhe3_prototype");
    ]

(* CI gate: weak parallel efficiency at 16 simulated ranks (against the
   4-rank baseline) must hold the pinned floor on both platforms — a
   regression in the mailbox-independent analytic path (decomposition,
   netmodel, hierarchical pricing) shows up here before any curve is
   plotted. *)
let audit_scaling_efficiency curves =
  (* Pinned against the deterministic analytic model (512^2 weak sub-grid,
     2d9pt_box): Sunway holds 0.97 at 16 ranks; Tianhe-3 drops to 0.41 the
     moment the job spills past one 8-rank node and the congested
     latency-bound interconnect starts pricing the halo (the single-node
     4-rank baseline is all shared-memory). *)
  let floors = [ ("sunway_taihulight", 0.95); ("tianhe3_prototype", 0.35) ] in
  let bad =
    List.filter_map
      (fun (pname, _, mode, points) ->
        if mode <> "weak" then None
        else
          match
            List.find_opt
              (fun (p : Msc.Scaling.eff_point) -> p.Msc.Scaling.e_ranks = 16)
              points
          with
          | None -> Some (Printf.sprintf "[audit] %s: no 16-rank point" pname)
          | Some p ->
              let floor = List.assoc pname floors in
              if p.Msc.Scaling.e_efficiency >= floor then None
              else
                Some
                  (Printf.sprintf
                     "[audit] %s: weak efficiency at 16 ranks = %.3f < %.2f"
                     pname p.Msc.Scaling.e_efficiency floor))
      curves
  in
  match bad with
  | [] ->
      Printf.printf
        "[audit] scaling: weak efficiency at 16 ranks holds its floor on \
         both platforms\n"
  | bad ->
      List.iter prerr_endline bad;
      prerr_endline "[audit] scaling-efficiency audit FAILED";
      exit 1

let scaling_group_json ~mailbox ~curves =
  let mb_ranks, mb_messages, ref_s, ports_s, generic_s = mailbox in
  let ints a =
    String.concat ", " (Array.to_list (Array.map string_of_int a))
  in
  let curve_json (pname, rpn, mode, points) =
    let point_json (p : Msc.Scaling.eff_point) =
      Printf.sprintf
        "        { \"ranks\": %d, \"grid\": [%s], \"sub\": [%s], \"depth\": \
         %d,\n\
        \          \"compute_s\": %.6e, \"comm_s\": %.6e, \"time_s\": %.6e, \
         \"efficiency\": %.4f }"
        p.Msc.Scaling.e_ranks (ints p.Msc.Scaling.e_grid)
        (ints p.Msc.Scaling.e_sub) p.Msc.Scaling.e_depth
        p.Msc.Scaling.e_compute_s p.Msc.Scaling.e_comm_s p.Msc.Scaling.e_time_s
        p.Msc.Scaling.e_efficiency
    in
    Printf.sprintf
      "      { \"platform\": %S, \"mode\": %S, \"kernel\": \"2d9pt_box\", \
       \"ranks_per_node\": %d,\n\
      \        \"points\": [\n\
       %s\n\
      \      ] }"
      pname mode rpn
      (String.concat ",\n" (List.map point_json points))
  in
  Printf.sprintf
    "{\n\
    \    \"mailbox\": {\n\
    \      \"kernel\": \"2d9pt_box\", \"ranks\": %d, \"rank_grid\": [64, \
     64], \"messages_per_step\": %d,\n\
    \      \"ref_s_per_step\": %.6e,\n\
    \      \"ports_s_per_step\": %.6e,\n\
    \      \"generic_s_per_step\": %.6e,\n\
    \      \"speedup_ports_vs_ref\": %.2f,\n\
    \      \"speedup_generic_vs_ref\": %.2f\n\
    \    },\n\
    \    \"curves\": [\n\
     %s\n\
    \    ]\n\
    \  }"
    mb_ranks mb_messages ref_s ports_s generic_s (ref_s /. ports_s)
    (ref_s /. generic_s)
    (String.concat ",\n" (List.map curve_json curves))

let report_scaling ~mailbox ~curves =
  let mb_ranks, mb_messages, ref_s, ports_s, generic_s = mailbox in
  Printf.printf
    "[scaling] mailbox %d ranks (%d msgs/step): ref %.2f ms, ports %.2f ms \
     (%.1fx), generic %.2f ms (%.1fx)\n"
    mb_ranks mb_messages (ref_s *. 1e3) (ports_s *. 1e3) (ref_s /. ports_s)
    (generic_s *. 1e3) (ref_s /. generic_s);
  List.iter
    (fun (pname, _, mode, points) ->
      let last = List.nth points (List.length points - 1) in
      Printf.printf
        "[scaling] %s %s: efficiency %.2f at %d ranks (depth %d)\n" pname mode
        last.Msc.Scaling.e_efficiency last.Msc.Scaling.e_ranks
        last.Msc.Scaling.e_depth)
    curves;
  audit_scaling_efficiency curves

let residual_curve_json residuals =
  let n = Array.length residuals in
  let keep = 12 in
  let idxs =
    if n <= keep then List.init n Fun.id
    else List.sort_uniq compare (List.init keep (fun i -> i * (n - 1) / (keep - 1)))
  in
  String.concat ", "
    (List.map (fun i -> Printf.sprintf "[%d, %.6e]" i residuals.(i)) idxs)

let emit_runtime_json ~comm ~temporal ~solver ~scaling path =
  let kernel_rows =
    List.map
      (fun (b : Msc.Suite.bench) ->
        let dims, legacy, legs, fused_c, fused_c_pool =
          kernel_backend_points_per_sec b
        in
        (b, dims, legacy, legs, fused_c, fused_c_pool))
      Msc.Suite.all
  in
  let kernels =
    List.map
      (fun ((b : Msc.Suite.bench), dims, legacy, legs, fused_c, fused_c_pool) ->
        let leg_json =
          String.concat ", "
            ((Printf.sprintf "\"interp_legacy_bc\": %.6e" legacy
             :: List.map
                  (fun (backend, _, pps) ->
                    Printf.sprintf "%S: %.6e"
                      (Msc.Backend.to_string backend)
                      pps)
                  legs)
            @ [
                Printf.sprintf "\"fused_c\": %.6e" fused_c;
                Printf.sprintf "\"fused_c_pool\": %.6e" fused_c_pool;
              ])
        in
        let ran_json =
          String.concat ", "
            (List.filter_map
               (fun (backend, effective, _) ->
                 if backend = Msc.Backend.Interp then None
                 else
                   Some
                     (Printf.sprintf "%S: %S"
                        (Msc.Backend.to_string backend)
                        (Msc.Backend.to_string effective)))
               legs)
        in
        let compiled_pps =
          List.assoc Msc.Backend.Compiled_c
            (List.map (fun (b', _, pps) -> (b', pps)) legs)
        in
        Printf.sprintf
          "    { \"name\": %S, \"dims\": [%s],\n\
          \      \"points_per_sec\": { %s },\n\
          \      \"ran\": { %s },\n\
          \      \"compiled_c_over_interp_legacy_bc\": %.3f,\n\
          \      \"fused_c_over_compiled_c\": %.3f,\n\
          \      \"fused_c_pool_over_fused_c\": %.3f }"
          b.Msc.Suite.name
          (String.concat ", " (Array.to_list (Array.map string_of_int dims)))
          leg_json ran_json (compiled_pps /. legacy)
          (fused_c /. compiled_pps)
          (fused_c_pool /. fused_c))
      kernel_rows
  in
  let kernel_row name =
    List.find_opt
      (fun ((b : Msc.Suite.bench), _, _, _, _, _) -> b.Msc.Suite.name = name)
      kernel_rows
  in
  let kernel_speedup name =
    match kernel_row name with
    | Some (_, _, legacy, legs, _, _) ->
        let compiled =
          List.assoc Msc.Backend.Compiled_c
            (List.map (fun (b', _, pps) -> (b', pps)) legs)
        in
        compiled /. legacy
    | None -> Float.nan
  in
  (* The two acceptance ratios of the fused-sweep PR: fused over per-term
     compiled_c on the dense-box headliners, and 4-worker pool scaling of
     the fused kernel on 3d7pt_star. *)
  let fused_over_per_term name =
    match kernel_row name with
    | Some (_, _, _, legs, fused_c, _) ->
        let compiled =
          List.assoc Msc.Backend.Compiled_c
            (List.map (fun (b', _, pps) -> (b', pps)) legs)
        in
        fused_c /. compiled
    | None -> Float.nan
  in
  let pf_rows = pipeline_fusion_rows () in
  let pipeline_json =
    String.concat ",\n"
      (List.map
         (fun (name, s0, s1, ex0, ex1, pps0, pps1) ->
           Printf.sprintf
             "    { \"name\": %S,\n\
             \      \"stages_unfused\": %d, \"stages_fused\": %d,\n\
             \      \"exchanges_per_step_unfused\": %d, \
              \"exchanges_per_step_fused\": %d,\n\
             \      \"points_per_sec_unfused\": %.6e, \
              \"points_per_sec_fused\": %.6e,\n\
             \      \"fusion_speedup\": %.3f }"
             name s0 s1 ex0 ex1 pps0 pps1 (pps1 /. pps0))
         pf_rows)
  in
  let pf_row name =
    List.find (fun (n, _, _, _, _, _, _) -> n = name) pf_rows
  in
  let solver_dims, solver_legs = solver in
  let solver_json =
    String.concat ",\n"
      (List.map
         (fun (method_, (r : Msc.Solver.report), ips) ->
           Printf.sprintf
             "    { \"method\": %S, \"problem\": %S,\n\
             \      \"ranks\": %d, \"converged\": %b, \"iterations\": %d,\n\
             \      \"allreduces\": %d, \"final_relative_residual\": %.6e,\n\
             \      \"iterations_per_sec\": %.6e,\n\
             \      \"residual_vs_iteration\": [%s] }"
             (Msc.Solver.method_to_string method_)
             r.Msc.Solver.problem r.Msc.Solver.ranks r.Msc.Solver.converged
             r.Msc.Solver.iterations r.Msc.Solver.allreduces
             (r.Msc.Solver.final_residual /. r.Msc.Solver.rhs_norm)
             ips
             (residual_curve_json r.Msc.Solver.residuals))
         solver_legs)
  in
  let fast_pps, legacy_pps, speedup = fastpath_speedup () in
  let pool_dims, pool_single, pool_pooled = fused_pool_headline () in
  let canonical_pps, reversed_pps = reorder_locality () in
  let comm_dims, bulk_s, overlapped_s = comm in
  let t_dims, t_bulk_s, t_overlapped_s, t_depths = temporal in
  let best_depth, best_s =
    List.fold_left
      (fun (bd, bs) (d, s) -> if s < bs then (d, s) else (bd, bs))
      (List.hd t_depths) (List.tl t_depths)
  in
  let depth_entries =
    String.concat ",\n"
      (List.map
         (fun (d, s) -> Printf.sprintf "      \"%d\": %.6e" d s)
         t_depths)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"msc-bench-runtime-v2\",\n\
    \  \"kernels\": [\n\
     %s\n\
    \  ],\n\
    \  \"fastpath_3d7pt_star\": {\n\
    \    \"step_body_points_per_sec\": %.6e,\n\
    \    \"legacy_step_body_points_per_sec\": %.6e,\n\
    \    \"speedup\": %.3f\n\
    \  },\n\
    \  \"plan_reorder_3d7pt_star\": {\n\
    \    \"outer_canonical_points_per_sec\": %.6e,\n\
    \    \"outer_reversed_points_per_sec\": %.6e,\n\
    \    \"canonical_over_reversed\": %.3f\n\
    \  },\n\
    \  \"comm_2d9pt_box\": {\n\
    \    \"dims\": [%s],\n\
    \    \"ranks\": [2, 2],\n\
    \    \"net_alpha_s\": 1.0e-3,\n\
    \    \"bulk_synchronous_s_per_step\": %.6e,\n\
    \    \"overlapped_s_per_step\": %.6e,\n\
    \    \"overlap_speedup\": %.3f\n\
    \  },\n\
    \  \"comm_temporal\": {\n\
    \    \"kernel\": \"2d9pt_box\",\n\
    \    \"dims\": [%s],\n\
    \    \"ranks\": [2, 2],\n\
    \    \"net_alpha_s\": 1.0e-3,\n\
    \    \"bulk_synchronous_s_per_step\": %.6e,\n\
    \    \"overlapped_s_per_step\": %.6e,\n\
    \    \"temporal_s_per_step\": {\n\
     %s\n\
    \    },\n\
    \    \"best_depth\": %d,\n\
    \    \"temporal_speedup_vs_overlapped\": %.3f\n\
    \  },\n\
    \  \"fused_pool_3d7pt_star\": {\n\
    \    \"dims\": [%s],\n\
    \    \"workers\": 4,\n\
    \    \"host_cores\": %d,\n\
    \    \"fused_single_points_per_sec\": %.6e,\n\
    \    \"fused_pool_points_per_sec\": %.6e,\n\
    \    \"pool_scaling\": %.3f\n\
    \  },\n\
    \  \"solver\": {\n\
    \    \"dims\": [%s],\n\
    \    \"ranks\": [2, 2],\n\
    \    \"engine\": \"overlapped\",\n\
    \    \"tol\": 1.0e-8,\n\
    \    \"methods\": [\n\
     %s\n\
    \    ]\n\
    \  },\n\
    \  \"scaling\": %s,\n\
    \  \"pipeline_fusion\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (String.concat ",\n" kernels)
    fast_pps legacy_pps speedup canonical_pps reversed_pps
    (canonical_pps /. reversed_pps)
    (String.concat ", " (Array.to_list (Array.map string_of_int comm_dims)))
    bulk_s overlapped_s (bulk_s /. overlapped_s)
    (String.concat ", " (Array.to_list (Array.map string_of_int t_dims)))
    t_bulk_s t_overlapped_s depth_entries best_depth
    (t_overlapped_s /. best_s)
    (String.concat ", " (Array.to_list (Array.map string_of_int pool_dims)))
    (Domain.recommended_domain_count ())
    pool_single pool_pooled
    (pool_pooled /. pool_single)
    (String.concat ", "
       (Array.to_list (Array.map string_of_int solver_dims)))
    solver_json
    (let mailbox, curves = scaling in
     scaling_group_json ~mailbox ~curves)
    pipeline_json;
  close_out oc;
  (* Single-core audit of the pool inline cutoff: with no cores to scale
     across, the pool legs must not pay dispatch latency — every bench
     sweep sits below the cutoff and runs inline, so fused_c_pool must stay
     within 5% of fused_c. A collapse here means small sweeps are being
     shipped to the worker pool again. On multicore hosts the ratio mixes
     in real scaling, so the bound is only asserted at host_cores = 1. *)
  (if Domain.recommended_domain_count () = 1 then
     let bad =
       List.filter_map
         (fun ((b : Msc.Suite.bench), _, _, _, fused_c, fused_c_pool) ->
           let ratio = fused_c_pool /. fused_c in
           if ratio >= 0.95 then None
           else
             (* Confirm before failing: a preemption spike during the long
                harness can dent a single 0.03 s paired window, but a real
                dispatch regression reproduces under three times the
                quota. The table keeps the first measurement. *)
             let t_fused, t_pool = fused_pool_times ~reps:9 ~quota:0.09 b in
             let again = t_fused /. t_pool in
             if again >= 0.95 then None
             else
               Some
                 (Printf.sprintf
                    "[audit] %s: fused_c_pool_over_fused_c = %.3f \
                     (re-measured %.3f) < 0.95"
                    b.Msc.Suite.name ratio again))
         kernel_rows
     in
     match bad with
     | [] ->
         Printf.printf
           "[audit] single-core pool dispatch: fused_c_pool within 5%% of \
            fused_c on all %d suite kernels\n"
           (List.length kernel_rows)
     | bad ->
         List.iter prerr_endline bad;
         prerr_endline "[audit] pool-cutoff audit FAILED";
         exit 1);
  let um_s0, um_s1, um_ex0, um_ex1, um_speedup =
    match pf_row "unsharp_mask" with
    | _, s0, s1, ex0, ex1, pps0, pps1 -> (s0, s1, ex0, ex1, pps1 /. pps0)
  in
  let cg_iters, cg_ips =
    match
      List.find_opt (fun (m, _, _) -> m = Msc.Solver.Cg) solver_legs
    with
    | Some (_, (r : Msc.Solver.report), ips) -> (r.Msc.Solver.iterations, ips)
    | None -> (0, Float.nan)
  in
  Printf.printf
    "wrote %s (compiled_c step over the seed interp+per-cell-BC baseline: \
     %.1fx on 3d7pt_star, %.1fx on 2d9pt_box; fastpath 3d7pt_star step \
     body: %.2fx over legacy fill+generic-accumulate; plan traversal \
     canonical/reversed: %.2fx; overlapped halo exchange: %.2fx over \
     bulk-synchronous under simulated latency; temporal blocking best depth \
     %d: %.2fx over overlapped on a latency-bound grid; fused sweep over \
     per-term compiled_c: %.2fx on 2d121pt_box, %.2fx on 2d169pt_box; \
     4-worker pool over single-core fused on 3d7pt_star at 48^3: %.2fx \
     with %d host cores; pipeline fusion on unsharp_mask: %d->%d stages, \
     %d->%d exchanges/step, %.2fx; cg on %s at 2x2 ranks: %d iterations, \
     %.0f iters/s)\n"
    path
    (kernel_speedup "3d7pt_star")
    (kernel_speedup "2d9pt_box")
    speedup
    (canonical_pps /. reversed_pps)
    (bulk_s /. overlapped_s)
    best_depth
    (t_overlapped_s /. best_s)
    (fused_over_per_term "2d121pt_box")
    (fused_over_per_term "2d169pt_box")
    (pool_pooled /. pool_single)
    (Domain.recommended_domain_count ())
    um_s0 um_s1 um_ex0 um_ex1 um_speedup
    (Printf.sprintf "poisson %s"
       (String.concat "x"
          (Array.to_list (Array.map string_of_int solver_dims))))
    cg_iters cg_ips

let run_bechamel () =
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_endline "== Bechamel micro-benchmarks (real execution, reduced grids) ==";
  Msc.Table.print
    ~header:[ "benchmark"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; Msc.Units_fmt.seconds (ns *. 1e-9) ]) rows);
  print_newline ();
  rows

let report_trace_overhead rows =
  let time suffix =
    List.find_map
      (fun (name, ns) ->
        let sl = String.length suffix and nl = String.length name in
        if nl >= sl && String.sub name (nl - sl) sl = suffix then Some ns
        else None)
      rows
  in
  match (time "step_untraced", time "step_trace_disabled", time "step_trace_enabled") with
  | Some base, Some disabled, Some enabled ->
      Printf.printf
        "trace overhead on 3d7pt step: disabled %+.2f%% vs untraced (target < 2%%), \
         enabled %+.2f%%\n\n"
        ((disabled -. base) /. base *. 100.0)
        ((enabled -. base) /. base *. 100.0)
  | _ -> ()

(* [--backend <name>] coverage audit: with a compiled backend requested,
   every Suite kernel must run the fused whole-sweep kernel with all its
   terms compiled and no interpreter fallback. A regression in the fused
   emitter's coverage fails the job instead of silently benchmarking the
   interpreter. Skipped (with a notice) when the toolchain itself is
   missing — an environment problem, not an emitter one. *)
let audit_fused_coverage backend =
  let s0 = Msc.Jit.stats () in
  let reports =
    List.map
      (fun (b : Msc.Suite.bench) ->
        let dims =
          match b.Msc.Suite.ndim with 2 -> [| 16; 16 |] | _ -> [| 8; 8; 8 |]
        in
        let st = Msc.Suite.stencil ~dims b in
        let rt =
          Msc.Runtime.create ~config:(Msc.Exec.Config.make ~backend ()) st
        in
        (b.Msc.Suite.name, Msc.Runtime.backend_report rt))
      Msc.Suite.all
  in
  let s1 = Msc.Jit.stats () in
  let toolchain_missing =
    s1.Msc.Jit.failures_toolchain > s0.Msc.Jit.failures_toolchain
    && List.for_all
         (fun (_, r) -> r.Msc.Runtime.effective = Msc.Backend.Interp)
         reports
  in
  if toolchain_missing then
    Printf.printf
      "[audit] %s toolchain unavailable; fused-coverage audit skipped\n"
      (Msc.Backend.to_string backend)
  else begin
    let bad =
      List.filter_map
        (fun (name, r) ->
          if
            r.Msc.Runtime.fallback <> None
            || r.Msc.Runtime.fused_sweeps <> 1
            || r.Msc.Runtime.compiled_terms <> r.Msc.Runtime.kernel_terms
          then
            Some
              (Printf.sprintf
                 "[audit] %s: fallback=%s fused_sweeps=%d compiled=%d/%d"
                 name
                 (Option.value ~default:"none" r.Msc.Runtime.fallback)
                 r.Msc.Runtime.fused_sweeps r.Msc.Runtime.compiled_terms
                 r.Msc.Runtime.kernel_terms)
          else None)
        reports
    in
    (* Reductions carry the same contract: with the toolchain present, every
       suite kernel's grid must reduce through the compiled kernel — a
       silent interpreter fallback would invalidate the solver numbers. *)
    let red_bad =
      List.filter_map
        (fun (b : Msc.Suite.bench) ->
          let dims =
            match b.Msc.Suite.ndim with 2 -> [| 16; 16 |] | _ -> [| 8; 8; 8 |]
          in
          let st = Msc.Suite.stencil ~dims b in
          let g = Msc.Grid.of_tensor st.Msc.Stencil.grid in
          let red =
            Msc.Reduction.create ~config:(Msc.Exec.Config.make ~backend ()) g
          in
          if Msc.Reduction.compiled red then None
          else
            Some
              (Printf.sprintf
                 "[audit] %s: reduction fell back to the interpreter (%s)"
                 b.Msc.Suite.name
                 (Option.value ~default:"no reason recorded"
                    (Msc.Reduction.fallback red))))
        Msc.Suite.all
    in
    match bad @ red_bad with
    | [] ->
        Printf.printf
          "[audit] %s: all %d suite kernels ran the fused sweep and the \
           compiled reduction, no fallback\n"
          (Msc.Backend.to_string backend)
          (List.length reports)
    | bad ->
        List.iter prerr_endline bad;
        prerr_endline "[audit] fused-coverage audit FAILED";
        exit 1
  end

(* Pipeline-fusion audit: every suite pipeline must still collapse under
   the default pass pipeline — fewer stages than the naive graph and a
   merged (single deep exchange) result. A pass regression that leaves a
   pipeline unfused fails the job instead of silently benchmarking the
   staged interpretation. *)
let audit_pipeline_fusion () =
  let bad =
    List.filter_map
      (fun name ->
        let g = Msc.Suite.pipeline ~dims:[| 64; 64 |] name in
        let go = Msc.Pass.apply Msc.Pass.default_pipeline g in
        let s0 = List.length g.Msc.Graph.stages in
        let s1 = List.length go.Msc.Graph.stages in
        let merged =
          match Msc.Plan.compile_graph go Msc.Schedule.empty with
          | Ok gp -> gp.Msc.Plan.gp_merged
          | Error _ -> false
        in
        if s1 >= s0 || not merged then
          Some
            (Printf.sprintf "[audit] %s: stages %d -> %d, merged=%b" name s0
               s1 merged)
        else None)
      Msc.Suite.pipeline_names
  in
  match bad with
  | [] ->
      Printf.printf
        "[audit] pipeline fusion: all %d suite pipelines collapsed and merged\n"
        (List.length Msc.Suite.pipeline_names)
  | bad ->
      List.iter prerr_endline bad;
      prerr_endline "[audit] pipeline-fusion audit FAILED";
      exit 1

let () =
  let t0 = Unix.gettimeofday () in
  (* [--smoke]: the CI mode — every measured path still runs (so a
     regression that breaks an engine fails the job) but on tiny grids with
     a short quota, skipping the bechamel session and the paper-artifact
     render; BENCH_runtime.json is still written for artifact upload. *)
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  if smoke then quota_s := 0.02;
  (* [scaling]: the scale-out CI leg — only the mailbox comparison and the
     modelled efficiency curves, with the 16-rank efficiency floor enforced
     (exit 1 on regression). Writes a scaling-only BENCH_runtime.json; the
     full/smoke harness rewrites the complete file afterwards, scaling
     group included, so the uploaded artifact always carries the curves. *)
  if Array.exists (( = ) "scaling") Sys.argv then begin
    let mailbox = scaling_mailbox ~smoke () in
    let curves = scaling_curves ~smoke () in
    let oc = open_out "BENCH_runtime.json" in
    Printf.fprintf oc
      "{\n  \"schema\": \"msc-bench-scaling-v1\",\n  \"scaling\": %s\n}\n"
      (scaling_group_json ~mailbox ~curves);
    close_out oc;
    report_scaling ~mailbox ~curves;
    Printf.printf "[scaling harness time: %.1f s]\n"
      (Unix.gettimeofday () -. t0);
    exit 0
  end;
  (let rec backend_arg i =
     if i + 1 >= Array.length Sys.argv then None
     else if Sys.argv.(i) = "--backend" then Some Sys.argv.(i + 1)
     else backend_arg (i + 1)
   in
   match backend_arg 1 with
   | None -> ()
   | Some name -> (
       match Msc.Backend.of_string name with
       | Error e ->
           prerr_endline e;
           exit 2
       | Ok Msc.Backend.Interp -> ()
       | Ok backend -> audit_fused_coverage backend));
  audit_pipeline_fusion ();
  (* Measured first, while the process heap is still quiet: an engine
     comparison at millisecond scale drowns in the GC noise a long bechamel
     session leaves behind. *)
  let comm = comm_overlap () in
  let temporal = comm_temporal ~smoke () in
  let solver = solver_rows ~smoke () in
  let mailbox = scaling_mailbox ~smoke () in
  let curves = scaling_curves ~smoke () in
  let scaling = (mailbox, curves) in
  report_scaling ~mailbox ~curves;
  if smoke then begin
    emit_runtime_json ~comm ~temporal ~solver ~scaling "BENCH_runtime.json";
    Printf.printf "[smoke harness time: %.1f s]\n" (Unix.gettimeofday () -. t0)
  end
  else begin
    let rows = run_bechamel () in
    report_trace_overhead rows;
    emit_runtime_json ~comm ~temporal ~solver ~scaling "BENCH_runtime.json";
    print_newline ();
    print_endline
      "== Paper artifacts (Tables 1/4/5/6/7/8, Figures 7-14, correctness) ==\n";
    print_string (Msc.Experiments.render_all ());
    print_endline "\n== Ablation studies ==\n";
    print_string (Msc.Ablations.render_all ());
    Printf.printf "\n[total harness time: %.1f s]\n" (Unix.gettimeofday () -. t0)
  end
