(* Matrix-free iterative solvers over the distributed stencil runtime.

   Determinism contract (mirrors Reduction / Distributed.reduce): every
   vector update is a sequential row-major interior loop per rank, every
   inner product folds per-rank tile partials in tree order and rank
   partials through Mpi_sim.allreduce's rank-indexed tree — so residual
   sequences are bit-identical across halo engines and pool sizes. *)

open Msc_ir
module Builder = Msc_frontend.Builder
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Exec = Msc_exec.Exec
module Bc = Msc_exec.Bc
module Reduction = Msc_exec.Reduction
module Distributed = Msc_comm.Distributed
module Mpi_sim = Msc_comm.Mpi_sim
module Decomp = Msc_comm.Decomp

type method_ = Jacobi | Red_black_gauss_seidel | Cg

let method_to_string = function
  | Jacobi -> "jacobi"
  | Red_black_gauss_seidel -> "rbgs"
  | Cg -> "cg"

let method_of_string = function
  | "jacobi" -> Some Jacobi
  | "rbgs" -> Some Red_black_gauss_seidel
  | "cg" -> Some Cg
  | _ -> None

let all_methods = [ Jacobi; Red_black_gauss_seidel; Cg ]

module Problem = struct
  type t = { name : string; dims : int array; rhs : int array -> float }

  let poisson ~dims =
    let nd = Array.length dims in
    {
      name = Printf.sprintf "poisson_%dd%dpt" nd ((2 * nd) + 1);
      dims = Array.copy dims;
      rhs = (fun _ -> 1.0);
    }
end

type report = {
  method_ : method_;
  problem : string;
  engine : Distributed.engine;
  op_engine : Distributed.engine;
  backend : Msc_exec.Backend.t;
  ranks : int;
  iterations : int;
  converged : bool;
  residuals : float array;
  final_residual : float;
  rhs_norm : float;
  allreduces : int;
  tol : float;
}

let pp_engine ppf (e : Distributed.engine) =
  match e with
  | Distributed.Bulk_synchronous -> Format.fprintf ppf "bulk"
  | Distributed.Overlapped -> Format.fprintf ppf "overlapped"
  | Distributed.Temporal_blocked { depth } ->
      Format.fprintf ppf "temporal(depth=%d)" depth

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s on %s: %s after %d iterations@ residual %.3e (rhs norm %.3e, \
     rel tol %.1e)@ engine %a (operator %a), backend %s, %d ranks, %d \
     allreduces@]"
    (method_to_string r.method_)
    r.problem
    (if r.converged then "converged" else "NOT converged")
    r.iterations r.final_residual r.rhs_norm r.tol pp_engine r.engine
    pp_engine r.op_engine
    (Msc_exec.Backend.to_string r.backend)
    r.ranks r.allreduces

(* ------------------------------------------------------------------ *)
(* Sequential per-rank vector kernels. All operand grids of one rank
   share their geometry (Grid.like of the rank state), so flat indices
   coincide and one row walk serves every operand. *)

let iter_rows (g : Grid.t) f =
  let nd = Array.length g.Grid.shape in
  let last = nd - 1 in
  let len = g.Grid.shape.(last) in
  if len > 0 && Array.for_all (fun n -> n > 0) g.Grid.shape then begin
    let halo = g.Grid.halo and strides = g.Grid.strides in
    let coord = Array.make nd 0 in
    let rec go d =
      if d = last then begin
        let base = ref 0 in
        for e = 0 to nd - 1 do
          let c = if e = last then 0 else coord.(e) in
          base := !base + ((c + halo.(e)) * strides.(e))
        done;
        f !base len strides.(last)
      end
      else
        for c = 0 to g.Grid.shape.(d) - 1 do
          coord.(d) <- c;
          go (d + 1)
        done
    in
    go 0
  end

(* y += alpha * x *)
let axpy alpha (x : Grid.t) (y : Grid.t) =
  let xd = x.Grid.data and yd = y.Grid.data in
  iter_rows x (fun base len stride ->
      for c = 0 to len - 1 do
        let i = base + (c * stride) in
        Array.unsafe_set yd i
          (Array.unsafe_get yd i +. (alpha *. Array.unsafe_get xd i))
      done)

(* p <- r + beta * p *)
let xpay (r : Grid.t) beta (p : Grid.t) =
  let rd = r.Grid.data and pd = p.Grid.data in
  iter_rows r (fun base len stride ->
      for c = 0 to len - 1 do
        let i = base + (c * stride) in
        Array.unsafe_set pd i
          (Array.unsafe_get rd i +. (beta *. Array.unsafe_get pd i))
      done)

(* out <- a - b *)
let sub_into (a : Grid.t) (b : Grid.t) (out : Grid.t) =
  let ad = a.Grid.data and bd = b.Grid.data and od = out.Grid.data in
  iter_rows a (fun base len stride ->
      for c = 0 to len - 1 do
        let i = base + (c * stride) in
        Array.unsafe_set od i
          (Array.unsafe_get ad i -. Array.unsafe_get bd i)
      done)

(* x += scale * mask * v  (mask is 0/1: untouched points add exactly 0) *)
let masked_update (x : Grid.t) ~scale ~(mask : Grid.t) (v : Grid.t) =
  let xd = x.Grid.data and md = mask.Grid.data and vd = v.Grid.data in
  iter_rows x (fun base len stride ->
      for c = 0 to len - 1 do
        let i = base + (c * stride) in
        Array.unsafe_set xd i
          (Array.unsafe_get xd i
          +. (scale *. Array.unsafe_get md i *. Array.unsafe_get vd i))
      done)

(* ------------------------------------------------------------------ *)

let solver_tag = 0x501e

let solve ?(config = Exec.Config.default) ?net ?(trace = Msc_trace.disabled)
    ?(tol = 1e-8) ?(max_iters = 2000) ?(omega = 1.0) ?ranks_shape ~method_
    (p : Problem.t) =
  if tol <= 0.0 then invalid_arg "Solver.solve: tol must be > 0";
  if max_iters < 0 then invalid_arg "Solver.solve: max_iters must be >= 0";
  if omega <= 0.0 || omega > 1.0 then
    invalid_arg "Solver.solve: omega must be in (0, 1]";
  let nd = Array.length p.Problem.dims in
  let ranks_shape =
    match ranks_shape with Some rs -> rs | None -> Array.make nd 1
  in
  let u =
    Tensor.sp ~time_window:1 ~halo:(Array.make nd 1) "u" Dtype.F64
      p.Problem.dims
  in
  let diag = Builder.laplacian_diagonal u in
  let a = Builder.laplacian_kernel u in
  let allreduces = ref 0 in
  let residuals = ref [] in
  let push r = residuals := r :: !residuals in
  let finish d ~iterations ~converged ~bnorm =
    let residuals = Array.of_list (List.rev !residuals) in
    {
      method_;
      problem = p.Problem.name;
      engine = config.Exec.Config.engine;
      op_engine = Distributed.effective_engine d;
      backend = config.Exec.Config.backend;
      ranks = Distributed.nranks d;
      iterations;
      converged;
      residuals;
      final_residual = residuals.(Array.length residuals - 1);
      rhs_norm = bnorm;
      allreduces = !allreduces;
      tol;
    }
  in
  (* Per-rank reduction executors share the rank-state geometry; their
     single whole-interior task keeps each rank's partial sequential. *)
  let red_config =
    { config with Exec.Config.pool = Msc_util.Domain_pool.sequential }
  in
  let make_reducers d =
    Array.init (Distributed.nranks d) (fun rank ->
        Reduction.create ~config:red_config (Distributed.rank_state d ~rank))
  in
  let global_sum mpi partials =
    incr allreduces;
    Mpi_sim.allreduce mpi ~tag:solver_tag
      ~combine:(Reduce.combine Reduce.Sum)
      partials
  in
  match method_ with
  | Jacobi ->
      (* A genuine stencil time iteration — every halo engine runs it
         natively, temporal blocking included (an s-step smoother). *)
      let rhs_t = Builder.coefficient_grid ~grid:u "rhs" in
      let b_k = Builder.aux_point_kernel ~name:"load_rhs" ~aux:rhs_t u in
      let w = omega /. diag in
      let expr = Builder.(state 1 +: (w *: ((b_k @> 1) -: (a @> 1)))) in
      let st = Builder.stencil ~name:("jacobi_" ^ p.Problem.name) ~grid:u expr in
      let aux_init name coord =
        if String.equal name "rhs" then p.Problem.rhs coord
        else Runtime.default_aux_init name coord
      in
      let d =
        Distributed.create ~config ?net ~init:(fun _ -> 0.0) ~aux_init
          ~bc:(Bc.Dirichlet 0.0) ~trace ~ranks_shape st
      in
      let n = Distributed.nranks d in
      let mpi = Distributed.mpi d in
      let reducers = make_reducers d in
      let dxs =
        Array.init n (fun rank -> Grid.like (Distributed.rank_state d ~rank))
      in
      let bnorm =
        let partials =
          Array.init n (fun rank ->
              let rt = Distributed.rank_runtime d ~rank in
              let bg = List.assoc "rhs" (Runtime.aux_grids rt) in
              Reduction.run_raw reducers.(rank) ~op:Reduce.Norm2 bg)
        in
        sqrt (global_sum mpi partials)
      in
      push bnorm;
      if bnorm = 0.0 then finish d ~iterations:0 ~converged:true ~bnorm
      else begin
        let rec loop iter =
          if iter >= max_iters then (iter, false)
          else begin
            let res =
              Msc_trace.span trace "solver.iter" (fun () ->
                  Distributed.step d;
                  (* x_new - x_old = (omega/d) * (b - A x_old): the exact
                     previous-iterate residual is (d/omega) * ||dx||, no
                     second operator apply needed. *)
                  let partials =
                    Array.init n (fun rank ->
                        let rt = Distributed.rank_runtime d ~rank in
                        sub_into (Runtime.current rt) (Runtime.output_slot rt)
                          dxs.(rank);
                        Reduction.run_raw reducers.(rank) ~op:Reduce.Norm2
                          dxs.(rank))
                  in
                  sqrt (global_sum mpi partials) *. diag /. omega)
            in
            Msc_trace.add trace "solver.residual" res;
            push res;
            if res <= tol *. bnorm then (iter + 1, true) else loop (iter + 1)
          end
        in
        let iterations, converged = loop 0 in
        finish d ~iterations ~converged ~bnorm
      end
  | Cg | Red_black_gauss_seidel ->
      (* Operator-apply harness: a fresh operand is loaded into the state
         before every apply, so there is no time block to deepen — a
         temporal request degrades the operator to the bulk engine
         (recorded via [effective_engine] / the report's [op_engine]). *)
      let op_config =
        match config.Exec.Config.engine with
        | Exec.Temporal_blocked _ ->
            { config with Exec.Config.engine = Exec.Bulk_synchronous }
        | Exec.Bulk_synchronous | Exec.Overlapped -> config
      in
      let st =
        Builder.stencil ~name:("apply_" ^ p.Problem.name) ~grid:u
          Builder.(a @> 1)
      in
      let d =
        Distributed.create ~config:op_config ?net ~init:(fun _ -> 0.0)
          ~bc:(Bc.Dirichlet 0.0) ~trace ~ranks_shape st
      in
      let n = Distributed.nranks d in
      let mpi = Distributed.mpi d in
      let decomp = Distributed.decomp d in
      let reducers = make_reducers d in
      let like rank = Grid.like (Distributed.rank_state d ~rank) in
      let global_at rank coord =
        let offset, _ = Decomp.subdomain decomp ~rank in
        Array.mapi (fun dd c -> c + offset.(dd)) coord
      in
      let bs =
        Array.init n (fun rank ->
            let g = like rank in
            Grid.fill g (fun coord -> p.Problem.rhs (global_at rank coord));
            g)
      in
      let apply xs outs =
        Array.iteri
          (fun rank x ->
            let rt = Distributed.rank_runtime d ~rank in
            Grid.blit_interior ~src:x ~dst:(Runtime.state rt ~dt:1))
          xs;
        Distributed.refresh_halos d;
        Distributed.step d;
        Array.iteri
          (fun rank out ->
            let rt = Distributed.rank_runtime d ~rank in
            Grid.blit_interior ~src:(Runtime.current rt) ~dst:out)
          outs
      in
      let global_dot xs ys =
        global_sum mpi
          (Array.init n (fun r ->
               Reduction.run_raw reducers.(r) ~op:Reduce.Dot ~with_:ys.(r)
                 xs.(r)))
      in
      let xs = Array.init n like in
      (match method_ with
      | Jacobi -> assert false
      | Cg ->
          let rs = Array.map Grid.copy bs in
          let ps = Array.map Grid.copy bs in
          let aps = Array.init n like in
          let rr0 = global_dot rs rs in
          let bnorm = sqrt rr0 in
          push bnorm;
          if bnorm = 0.0 then finish d ~iterations:0 ~converged:true ~bnorm
          else begin
            let rec loop iter rr =
              if sqrt rr <= tol *. bnorm then (iter, true)
              else if iter >= max_iters then (iter, false)
              else begin
                let rr' =
                  Msc_trace.span trace "solver.iter" (fun () ->
                      apply ps aps;
                      let pap = global_dot ps aps in
                      let alpha = rr /. pap in
                      Array.iteri
                        (fun r pr ->
                          axpy alpha pr xs.(r);
                          axpy (-.alpha) aps.(r) rs.(r))
                        ps;
                      global_dot rs rs)
                in
                let res = sqrt rr' in
                Msc_trace.add trace "solver.residual" res;
                push res;
                let beta = rr' /. rr in
                Array.iteri (fun r pr -> xpay rs.(r) beta pr) ps;
                loop (iter + 1) rr'
              end
            in
            let iterations, converged = loop 0 rr0 in
            finish d ~iterations ~converged ~bnorm
          end
      | Red_black_gauss_seidel ->
          let axs = Array.init n like in
          let scratch = Array.init n like in
          let parity target rank =
            let g = like rank in
            Grid.fill g (fun coord ->
                let s = Array.fold_left ( + ) 0 (global_at rank coord) in
                if s mod 2 = target then 1.0 else 0.0);
            g
          in
          let reds = Array.init n (parity 0) in
          let blacks = Array.init n (parity 1) in
          let bnorm = sqrt (global_dot bs bs) in
          push bnorm;
          if bnorm = 0.0 then finish d ~iterations:0 ~converged:true ~bnorm
          else begin
            let inv_d = 1.0 /. diag in
            let residual_now () =
              apply xs axs;
              Array.iteri (fun r s -> sub_into bs.(r) axs.(r) s) scratch;
              sqrt (global_dot scratch scratch)
            in
            (* The apply feeding the residual also feeds the red half-sweep,
               so one iteration costs two applies and one extra allreduce. *)
            let rec loop iter =
              let res = residual_now () in
              if iter > 0 then begin
                Msc_trace.add trace "solver.residual" res;
                push res
              end;
              if res <= tol *. bnorm then (iter, true)
              else if iter >= max_iters then (iter, false)
              else begin
                Msc_trace.span trace "solver.iter" (fun () ->
                    (* Red half: scratch already holds b - A x. *)
                    Array.iteri
                      (fun r x ->
                        masked_update x ~scale:inv_d ~mask:reds.(r)
                          scratch.(r))
                      xs;
                    (* Black half reads the freshly updated red points. *)
                    apply xs axs;
                    Array.iteri (fun r s -> sub_into bs.(r) axs.(r) s) scratch;
                    Array.iteri
                      (fun r x ->
                        masked_update x ~scale:inv_d ~mask:blacks.(r)
                          scratch.(r))
                      xs);
                loop (iter + 1)
              end
            in
            let iterations, converged = loop 0 in
            finish d ~iterations ~converged ~bnorm
          end)
