(** Matrix-free iterative solvers whose inner operator is an MSC stencil.

    The solvers run on the distributed runtime: the operator [A] (the
    unit-spacing negative Laplacian, {!Msc_frontend.Builder.laplacian_kernel})
    is applied by stepping a {!Msc_comm.Distributed} stencil over per-rank
    sub-grids with real halo exchanges, and every inner product / norm goes
    through the grid-reduction machinery ({!Msc_exec.Reduction} per rank,
    {!Msc_comm.Mpi_sim.allreduce} across ranks) — so each reduction's fold
    order is fixed by tile and rank index, never by scheduling.

    {b Bit-stability.} Engine choice never changes the numbers: the stepped
    states are bit-identical across [Bulk_synchronous] / [Overlapped] /
    [Temporal_blocked] (the distributed runtime's invariant), vector updates
    are sequential row-major per rank, and reductions fold in index order —
    so per-iteration residual sequences are bit-identical across engines and
    pool sizes.

    {b Engines.} Jacobi is a genuine stencil time iteration
    ([x + (omega/d)*:(b -: A x)]), so all three engines run it natively —
    under [Temporal_blocked] the smoother advances in communication-avoiding
    blocks. CG and red-black Gauss–Seidel load a fresh operand into the
    state before every apply, so there is no time block to deepen: a
    [Temporal_blocked] request degrades the {e operator} to
    [Bulk_synchronous], recorded in the report's [op_engine]. *)

type method_ = Jacobi | Red_black_gauss_seidel | Cg

val method_to_string : method_ -> string

val method_of_string : string -> method_ option
(** Accepts ["jacobi"], ["rbgs"], ["cg"]. *)

val all_methods : method_ list

(** {1 Problems} *)

module Problem : sig
  type t = {
    name : string;
    dims : int array;  (** interior extents of the global grid *)
    rhs : int array -> float;
        (** right-hand side [b] as a closed form over {e global} interior
            coordinates — every rank fills its slab without communication *)
  }

  val poisson : dims:int array -> t
  (** The Poisson model problem [A x = b] under homogeneous Dirichlet
      boundaries: [A] is the unit-spacing negative Laplacian (SPD, so CG
      applies) and [b = 1] everywhere — a smooth, deterministic load that
      excites every eigenmode. *)
end

(** {1 Reports} *)

type report = {
  method_ : method_;
  problem : string;
  engine : Msc_comm.Distributed.engine;  (** requested *)
  op_engine : Msc_comm.Distributed.engine;
      (** the engine actually stepping the operator (CG / red-black degrade
          [Temporal_blocked] to [Bulk_synchronous]; Jacobi never degrades) *)
  backend : Msc_exec.Backend.t;
  ranks : int;
  iterations : int;  (** update iterations performed *)
  converged : bool;
  residuals : float array;
      (** [residuals.(0)] is the initial residual ([||b||] at [x0 = 0]);
          entry [i >= 1] is the 2-norm residual after iteration [i]
          (Jacobi reports the exact previous-iterate residual
          [(d/omega) * ||dx||]) *)
  final_residual : float;
  rhs_norm : float;  (** [||b||], the relative-convergence scale *)
  allreduces : int;  (** scalar collectives performed, [rhs_norm] included *)
  tol : float;  (** relative: converged when [residual <= tol * rhs_norm] *)
}

val pp_report : Format.formatter -> report -> unit

(** {1 Solving} *)

val solve :
  ?config:Msc_exec.Exec.Config.t ->
  ?net:Msc_comm.Netmodel.t ->
  ?trace:Msc_trace.t ->
  ?tol:float ->
  ?max_iters:int ->
  ?omega:float ->
  ?ranks_shape:int array ->
  method_:method_ ->
  Problem.t ->
  report
(** Solve [A x = b] from [x0 = 0] to relative tolerance [tol] (default
    [1e-8]) or [max_iters] (default [2000]) update iterations. [omega]
    (default [1.0]) damps the Jacobi update only. [ranks_shape] (default:
    a single rank) decomposes the grid as in {!Msc_comm.Distributed.create};
    [config] carries the backend / engine / pool for the operator runs, and
    [net] prices every halo message and allreduce hop. [trace] records a
    ["solver.iter"] span and a ["solver.residual"] counter per iteration.

    Iteration costs: Jacobi — one distributed step and one allreduce per
    iteration; CG — one operator apply and two allreduces; red-black
    Gauss–Seidel — two operator applies (one per color) and one allreduce.
    @raise Invalid_argument on a bad decomposition or [tol <= 0]. *)
