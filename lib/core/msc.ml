module Dtype = Msc_ir.Dtype
module Expr = Msc_ir.Expr
module Tensor = Msc_ir.Tensor
module Kernel = Msc_ir.Kernel
module Stencil = Msc_ir.Stencil
module Shapes = Msc_frontend.Shapes
module Builder = Msc_frontend.Builder
module Pretty = Msc_frontend.Pretty
module Graph = Msc_graph.Graph
module Pass = Msc_graph.Pass
module Schedule = Msc_schedule.Schedule
module Loopnest = Msc_schedule.Loopnest
module Plan = Msc_schedule.Plan
module Grid = Msc_exec.Grid
module Exec = Msc_exec.Exec
module Backend = Msc_exec.Backend
module Jit = Msc_exec.Jit
module Reduce = Msc_ir.Reduce
module Reduction = Msc_exec.Reduction
module Solver = Msc_solver.Solver
module Runtime = Msc_exec.Runtime
module Interp = Msc_exec.Interp
module Reference = Msc_exec.Reference
module Verify = Msc_exec.Verify
module Bc = Msc_exec.Bc
module Codegen = Msc_codegen.Codegen
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline
module Sunway = Msc_sunway.Sim
module Spm = Msc_sunway.Spm
module Matrix = Msc_matrix.Sim
module Mpi = Msc_comm.Mpi_sim
module Mpi_ref = Msc_comm.Mpi_sim_ref
module Netmodel = Msc_comm.Netmodel
module Decomp = Msc_comm.Decomp
module Halo = Msc_comm.Halo
module Distributed = Msc_comm.Distributed
module Scaling = Msc_comm.Scaling
module Autotune = Msc_autotune.Autotune
module Tuning_params = Msc_autotune.Params
module Suite = Msc_benchsuite.Suite
module Experiments = Msc_benchsuite.Experiments
module Ablations = Msc_benchsuite.Ablations
module Inspector = Msc_comm.Inspector
module Domain_pool = Msc_util.Domain_pool
module Prng = Msc_util.Prng
module Units_fmt = Msc_util.Units_fmt
module Stats = Msc_util.Stats
module Table = Msc_util.Table
module Chart = Msc_util.Chart
module Trace = Msc_trace

module Pipeline = struct
  type t = {
    stencil : Stencil.t;
    schedule : Schedule.t option;
    bc : Bc.t option;
    config : Exec.Config.t;
    trace : Trace.t;
    graph : Graph.t option;
  }

  let make ~stencil ?schedule ?bc ?(config = Exec.Config.default)
      ?(trace = Trace.disabled) () =
    { stencil; schedule; bc; config; trace; graph = None }

  let of_graph ?passes ?schedule ?bc ?(config = Exec.Config.default)
      ?(trace = Trace.disabled) g =
    let passes = Option.value passes ~default:Pass.default_pipeline in
    let g = Pass.apply ~trace passes g in
    {
      stencil = (Graph.output_stage g).Graph.stencil;
      schedule;
      bc;
      config;
      trace;
      graph = Some g;
    }

  let stencil p = p.stencil
  let graph p = p.graph
  let config p = p.config
  let trace p = p.trace

  (* When no schedule was given, fall back to the target's canonical one with
     the default tile clamped to the grid (exactly what a user would write
     first; the CLI used to duplicate this). *)
  let schedule_for ~target p =
    match p.schedule with
    | Some s -> s
    | None ->
        let kernel = List.hd (Stencil.kernels p.stencil) in
        let tile =
          Array.mapi
            (fun d t -> min t p.stencil.Stencil.grid.Tensor.shape.(d))
            (Schedule.default_tile kernel)
        in
        (match (target : Codegen.target) with
        | Codegen.Athread -> Schedule.sunway_canonical ~tile kernel
        | Codegen.Openmp -> Schedule.matrix_canonical ~tile kernel
        | Codegen.Cpu -> Schedule.cpu_canonical ~tile kernel)

  let plan ?target p =
    match target with
    | None ->
        let sched = Option.value p.schedule ~default:Schedule.empty in
        Plan.compile p.stencil sched
    | Some target ->
        Plan.compile
          ~machine:(Codegen.machine_of_target target)
          p.stencil (schedule_for ~target p)

  let graph_plan p =
    match p.graph with
    | None -> Error "graph_plan: not a graph pipeline (built with make)"
    | Some g ->
        Plan.compile_graph g (Option.value p.schedule ~default:Schedule.empty)

  let runtime p =
    match p.graph with
    | Some g ->
        Runtime.create_graph ?schedule:p.schedule ~config:p.config ?bc:p.bc
          ~trace:p.trace g
    | None ->
        Runtime.create ?schedule:p.schedule ~config:p.config ?bc:p.bc
          ~trace:p.trace p.stencil

  let run ~steps p =
    let rt = runtime p in
    Runtime.run rt steps;
    Runtime.current rt

  let run_report ~steps p =
    let rt = runtime p in
    Runtime.run rt steps;
    (Runtime.current rt, Runtime.backend_report rt)

  let verify ~steps p =
    Verify.check ?schedule:p.schedule ~config:p.config ?bc:p.bc ~trace:p.trace
      ~steps p.stencil

  let compile ?steps ~target p =
    let schedule = schedule_for ~target p in
    try
      Ok
        (Codegen.generate ?steps ?bc:p.bc ~config:p.config p.stencil schedule
           target)
    with Invalid_argument msg -> Error msg

  type sim_report =
    | Sunway_report of Sunway.report
    | Matrix_report of Matrix.report

  let simulate ?steps ~target p =
    match (target : Codegen.target) with
    | Codegen.Athread ->
        Result.map
          (fun r -> Sunway_report r)
          (Sunway.simulate ?steps ~trace:p.trace p.stencil
             (schedule_for ~target p))
    | Codegen.Openmp ->
        Result.map
          (fun r -> Matrix_report r)
          (Matrix.simulate ?steps ~trace:p.trace p.stencil
             (schedule_for ~target p))
    | Codegen.Cpu ->
        Error "simulate: the cpu target has no processor model (use run)"

  let distribute ~ranks_shape p =
    (* The config's pool dispatches ranks, not tiles: the overlapped engine
       runs each rank's phase concurrently. *)
    match p.graph with
    | Some g ->
        Distributed.create_graph ~config:p.config ?schedule:p.schedule
          ?bc:p.bc ~trace:p.trace ~ranks_shape g
    | None ->
        Distributed.create ~config:p.config ?schedule:p.schedule ?bc:p.bc
          ~trace:p.trace ~ranks_shape p.stencil

  let autotune ?seed ?iterations ~make_stencil ~nranks p =
    Autotune.tune ?seed ?iterations ~trace:p.trace ~make_stencil
      ~global:p.stencil.Stencil.grid.Tensor.shape ~nranks ()
end
