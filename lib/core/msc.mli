(** MSC: a stencil DSL with automatic code generation and optimization for
    large-scale many-core execution (OCaml reproduction of Li et al.,
    ICPP '21).

    The front door is {!Pipeline}: define a grid and kernel with {!Builder},
    wrap them once with {!Pipeline.make} (optionally with a {!Schedule}, a
    boundary condition, an execution {!Exec.Config.t} — kernel backend,
    halo engine, worker pool — and a {!Trace} sink), then drive the same
    configuration through every stage —

    {[
      let p = Msc.Pipeline.make ~stencil ~trace () in
      let final = Msc.Pipeline.run ~steps:10 p in
      let report = Msc.Pipeline.verify ~steps:5 p in
      let files = Msc.Pipeline.compile ~target:Msc.Codegen.Athread p in
      let sim = Msc.Pipeline.simulate ~target:Msc.Codegen.Athread p in
      let cluster = Msc.Pipeline.distribute ~ranks_shape:[| 2; 2; 1 |] p in
    ]}

    Every stage honours the pipeline's single [trace] sink ({!Trace}, a
    near-zero-cost span/counter recorder): native runs record per-tile
    sweeps, BC application and window rotation; the distributed runtime
    records halo pack/exchange/unpack per rank; the processor simulators
    record modelled DMA/compute phases; the auto-tuner records trials and
    annealer decisions. Export with {!Trace.to_chrome_json} (load in
    [about:tracing] / Perfetto) or print {!Trace.report}.

    Submodules re-export every subsystem; see also the runnable programs
    under [examples/] and the [msc profile] CLI subcommand. *)

(** {1 Re-exported subsystems} *)

module Dtype = Msc_ir.Dtype
module Expr = Msc_ir.Expr
module Tensor = Msc_ir.Tensor
module Kernel = Msc_ir.Kernel
module Stencil = Msc_ir.Stencil
module Shapes = Msc_frontend.Shapes
module Builder = Msc_frontend.Builder
module Pretty = Msc_frontend.Pretty
module Graph = Msc_graph.Graph
(** Pipeline graph IR: DAGs of named stencil stages with validation
    (acyclicity, shape/halo compatibility) and DOT export. *)

module Pass = Msc_graph.Pass
(** Graph optimization passes — dead-stage elimination, producer→consumer
    fusion, shared-halo merging — with a traced fixpoint driver. Every
    pass preserves bit-identity against naive stage-at-a-time
    interpretation. *)

module Schedule = Msc_schedule.Schedule
module Loopnest = Msc_schedule.Loopnest
module Plan = Msc_schedule.Plan
module Grid = Msc_exec.Grid

module Exec = Msc_exec.Exec
(** Execution configuration: the {!Exec.Config.t} record bundling the kernel
    backend, halo-exchange engine and worker pool that every execution stage
    shares. *)

module Backend = Msc_exec.Backend
(** Kernel execution backends: the tree-walking interpreter, the
    runtime-compiled OCaml backend and the runtime-compiled C backend. *)

module Jit = Msc_exec.Jit
(** The compiled-kernel cache behind {!Backend.Native_ocaml} and
    {!Backend.Compiled_c}: on-disk artifacts keyed by plan digest, in-process
    memoization, and compile/fallback statistics. *)

module Reduce = Msc_ir.Reduce
(** Grid-reduction operators ([sum], [dot], [norm2], [max_abs]) with the
    deterministic tree-combine contract every executor follows. *)

module Reduction = Msc_exec.Reduction
(** Grid-reduction executor: tile partials on the configured backend (with
    a {!Jit} fast path), folded in task-index tree order — bit-stable
    across pool sizes. *)

module Solver = Msc_solver.Solver
(** Matrix-free iterative solvers (Jacobi, red-black Gauss–Seidel, CG)
    whose inner operator is an MSC stencil on the distributed runtime. *)

module Runtime = Msc_exec.Runtime
module Interp = Msc_exec.Interp
module Reference = Msc_exec.Reference
module Verify = Msc_exec.Verify
module Bc = Msc_exec.Bc
module Codegen = Msc_codegen.Codegen
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline
module Sunway = Msc_sunway.Sim
module Spm = Msc_sunway.Spm
module Matrix = Msc_matrix.Sim
module Mpi = Msc_comm.Mpi_sim
module Mpi_ref = Msc_comm.Mpi_sim_ref
module Netmodel = Msc_comm.Netmodel
module Decomp = Msc_comm.Decomp
module Halo = Msc_comm.Halo
module Distributed = Msc_comm.Distributed
module Scaling = Msc_comm.Scaling
module Autotune = Msc_autotune.Autotune
module Tuning_params = Msc_autotune.Params
module Suite = Msc_benchsuite.Suite
module Experiments = Msc_benchsuite.Experiments
module Ablations = Msc_benchsuite.Ablations
module Inspector = Msc_comm.Inspector
module Domain_pool = Msc_util.Domain_pool
module Prng = Msc_util.Prng
module Units_fmt = Msc_util.Units_fmt
module Stats = Msc_util.Stats
module Table = Msc_util.Table
module Chart = Msc_util.Chart

module Trace = Msc_trace
(** Pipeline-wide tracing: spans, counters, chrome-trace export and a
    per-phase aggregate report. {!Trace.disabled} (the default everywhere)
    costs one branch per instrumentation point and allocates nothing. *)

(** {1 Pipeline}

    One configuration record shared by every stage of the toolchain. *)

module Pipeline : sig
  type t
  (** A stencil plus the knobs every stage shares: optional schedule,
      boundary condition, execution {!Exec.Config.t} and trace sink.
      Immutable; cheap to build. *)

  val make :
    stencil:Stencil.t ->
    ?schedule:Schedule.t ->
    ?bc:Bc.t ->
    ?config:Exec.Config.t ->
    ?trace:Trace.t ->
    unit ->
    t
  (** [config] (default {!Exec.Config.default}: interpreter backend,
      overlapped halo engine, sequential pool) carries the three execution
      knobs shared by {!run}, {!verify} and {!distribute}. The pool is
      caller-owned — build one with {!Domain_pool.create} and shut it down
      when done (a GC finaliser backstops leaks). [trace] (default
      {!Trace.disabled}) is threaded through every stage. When [schedule]
      is omitted, stages that need one derive the target's canonical
      schedule with the default tile clamped to the grid. *)

  val of_graph :
    ?passes:Pass.t list ->
    ?schedule:Schedule.t ->
    ?bc:Bc.t ->
    ?config:Exec.Config.t ->
    ?trace:Trace.t ->
    Graph.t ->
    t
  (** A pipeline over a multi-stage {!Graph.t}. The graph is first run
      through [passes] (default {!Pass.default_pipeline}: dead-stage
      elimination, producer→consumer fusion, shared-halo merging) to a
      fixpoint; {!run} and {!distribute} then execute the optimized
      staged schedule ({!Runtime.create_graph} /
      {!Distributed.create_graph}), bit-identical to naive
      stage-at-a-time interpretation of the original graph. {!stencil}
      reports the optimized graph's output stage; {!verify}, {!compile}
      and {!simulate} apply to that stage alone and ignore upstream
      stages. *)

  val stencil : t -> Stencil.t

  val graph : t -> Graph.t option
  (** The optimized (post-pass) graph, when built with {!of_graph}. *)

  val config : t -> Exec.Config.t
  val trace : t -> Trace.t

  val plan : ?target:Codegen.target -> t -> (Plan.t, string) result
  (** The lowered execution plan every stage consumes: validated loop nest,
      materialized tile tasks, parallel assignment, DMA plan and derived
      metrics. Without [target], lowers the pipeline's own schedule (or the
      empty schedule) with no machine descriptor — what {!run} executes.
      With [target], lowers the target's canonical schedule fallback against
      that target's machine descriptor — what {!compile} emits and
      {!simulate} costs. *)

  val graph_plan : t -> (Plan.graph_plan, string) result
  (** The staged graph plan (per-stage tile plans, inter-stage buffer
      assignment, exchange counts) a graph pipeline executes; [Error] on
      a pipeline built with {!make}. *)

  val run : steps:int -> t -> Grid.t
  (** Execute natively (sliding time window, tiled, domain-parallel, on
      [config]'s kernel backend) and return the final state. Graph
      pipelines run the whole staged schedule per step. *)

  val run_report : steps:int -> t -> Grid.t * Runtime.backend_report
  (** Like {!run}, but also report which kernel backend actually executed —
      the requested backend degrades to the interpreter when no toolchain
      is available or a kernel shape is not compilable. *)

  val verify : steps:int -> t -> Verify.report
  (** §5.1 correctness check of the optimized runtime against the naive
      reference. *)

  val compile :
    ?steps:int -> target:Codegen.target -> t -> (Codegen.file list, string) result
  (** AOT C code generation for [target]; [Error] on an illegal schedule
      (e.g. SPM overflow for {!Codegen.Athread}). The pipeline's
      {!Exec.Config} is threaded through: with a compiled backend the
      CPU/OpenMP targets embed the same fused whole-sweep body the runtime
      JIT executes (see {!Codegen.generate}). *)

  type sim_report =
    | Sunway_report of Sunway.report
    | Matrix_report of Matrix.report

  val simulate :
    ?steps:int -> target:Codegen.target -> t -> (sim_report, string) result
  (** Processor performance model: {!Codegen.Athread} runs the Sunway
      SW26010 CPE-cluster model, {!Codegen.Openmp} the Matrix MT2000+ model;
      {!Codegen.Cpu} has no model and returns [Error]. *)

  val distribute : ranks_shape:int array -> t -> Distributed.t
  (** Decompose over a simulated MPI process grid with automatic halo
      exchange; each rank's runtime inherits the pipeline's trace sink with
      its rank as [tid]. The pipeline's [config] selects the stepping
      protocol ([config.engine]; {!Exec.Temporal_blocked} enables
      communication-avoiding temporal blocking with one deep exchange per
      [depth] steps), the kernel backend of every rank's local runtime
      ([config.backend]) and the pool that dispatches ranks concurrently in
      the overlapped and temporal engines ([config.pool]). *)

  val autotune :
    ?seed:int ->
    ?iterations:int ->
    make_stencil:(int array -> Stencil.t) ->
    nranks:int ->
    t ->
    Autotune.result
  (** Tune tile sizes, MPI grid shape and temporal-block depth for this
      pipeline's global grid ([make_stencil] rebuilds the stencil at each
      candidate subgrid). *)
end
