(** Runtime kernel compiler behind the {!Backend.Native_ocaml} and
    {!Backend.Compiled_c} backends.

    [compile_term] emits a specialized kernel — flat-array loads/stores,
    per-radius unrolled taps, geometry constants baked in — from the same
    precompiled representation the interpreter executes ({!Interp.spec}),
    compiles it with the host toolchain, and loads it back as a
    {!Backend.kernel_fn}:

    - [Native_ocaml]: a [.ml] file compiled with [ocamlopt -shared] and
      loaded through [Dynlink]; the plugin hands its closure back via
      [Callback.register].
    - [Compiled_c]: a [.c] file compiled with [cc -O3 -ffp-contract=off
      -fPIC -shared] and loaded through [dlopen]. Contraction is disabled
      because fused multiply-adds would change the rounding and break the
      bit-identity contract with the interpreter.

    Artifacts live in a persistent on-disk cache — [$MSC_KERNEL_CACHE] when
    set, else [<tmpdir>/msc-kernels] — keyed by a digest of everything baked
    into the generated code (plan digest, geometry, term spec). A process
    memo table short-circuits repeat compiles; artifacts are written with
    atomic renames so concurrent processes can share a cache directory.

    All failure modes (no toolchain on [PATH], tree-mode kernels, compile
    or load errors) return [Error reason]; callers fall back to the
    interpreter per term. *)

type stats = {
  memo_hits : int;  (** served from the in-process table *)
  disk_hits : int;  (** artifact already on disk, only re-loaded *)
  compiles : int;  (** toolchain actually invoked *)
  failures : int;  (** compile or load errors (not counting [Interp]) *)
}
(** Process-lifetime counters, cumulative across cache directories. *)

val stats : unit -> stats

val clear_memo : unit -> unit
(** Drop the in-process memo table (the on-disk cache is untouched), so the
    next [compile_term] exercises the disk-hit path. For tests. *)

val cache_dir : unit -> string
(** The directory the next compile will use ([$MSC_KERNEL_CACHE] is
    re-read on every call). *)

val compile_term :
  backend:Backend.t ->
  plan_digest:string ->
  term_index:int ->
  Interp.t ->
  (Backend.kernel_fn, string) result
(** Emit + compile + load the kernel for one stencil term. The returned
    function performs {e no} validation — callers must guard each
    invocation with {!Interp.check_grids} / {!Interp.check_range} exactly
    as the interpreter does. [backend = Interp] is an [Error] (the caller
    should not be asking). *)
