(** Runtime kernel compiler behind the {!Backend.Native_ocaml} and
    {!Backend.Compiled_c} backends.

    Two granularities of generated code:

    - [compile_term] emits a specialized kernel for one stencil term —
      flat-array loads/stores, per-radius unrolled taps, geometry
      constants baked in — loaded back as a {!Backend.kernel_fn};
    - [compile_sweep] emits one {e fused} kernel for the whole sweep: every
      term of the stencil update accumulated in a single pass over the
      range through a per-point register accumulator, scales and writeback
      folded in. The C emitter blocks the second-innermost loop by 4 rows
      (independent accumulator chains for ILP while the contiguous
      innermost loop stays auto-vectorizable) and compiles with the host's
      native ISA when the compiler accepts it; the OCaml emitter unrolls
      the innermost row by 4 instead. Loaded back as a {!Backend.sweep_fn}
      and dispatched tile-task-at-a-time by {!Runtime.sweep}.

    Both are emitted from the same precompiled representation the
    interpreter executes ({!Interp.spec}, plus the kernel expression tree
    for tree-mode kernels), so compiled sweeps agree with the interpreter
    bit-exactly by construction:

    - [Native_ocaml]: a [.ml] file compiled with [ocamlopt -shared] and
      loaded through [Dynlink]; the plugin hands its closure back via
      [Callback.register].
    - [Compiled_c]: a [.c] file compiled with [cc -O3 -ffp-contract=off
      -fPIC -shared] and loaded through [dlopen]. Contraction is disabled
      because fused multiply-adds would change the rounding and break the
      bit-identity contract with the interpreter. Tree-mode kernels call
      the same libm the OCaml runtime links, and [Float.min]/[Float.max]
      are ported to C by hand ([fmin]/[fmax] differ on NaN and signed
      zeros).

    Artifacts live in a persistent on-disk cache — [$MSC_KERNEL_CACHE] when
    set, else [<tmpdir>/msc-kernels] — keyed by a digest of everything baked
    into the generated code (plan digest, geometry, term specs, tree
    payloads). A process memo table short-circuits repeat compiles;
    artifacts are written with atomic renames so concurrent processes can
    share a cache directory.

    All failure modes return [Error reason]; callers fall back to the
    interpreter. {!stats} separates forms the emitters cannot express
    ([failures_unsupported]: non-finite constants, unknown calls or loop
    variables, term/aux counts past the stub limit) from toolchain
    problems ([failures_toolchain]: no compiler on [PATH], compile or load
    errors). *)

type stats = {
  memo_hits : int;  (** served from the in-process table *)
  disk_hits : int;  (** artifact already on disk, only re-loaded *)
  compiles : int;  (** toolchain actually invoked *)
  failures_unsupported : int;
      (** forms the emitters cannot express (the caller's fallback is
          expected and deterministic) *)
  failures_toolchain : int;
      (** missing toolchain, compile errors, load errors *)
}
(** Process-lifetime counters, cumulative across cache directories. *)

val stats : unit -> stats

val clear_memo : unit -> unit
(** Drop the in-process memo tables (the on-disk cache is untouched), so
    the next compile exercises the disk-hit path. For tests. *)

val cache_dir : unit -> string
(** The directory the next compile will use ([$MSC_KERNEL_CACHE] is
    re-read on every call). *)

val emitter_version : string
(** The emitter-version salt, folded into {e every} artifact cache key
    (per-term kernels, fused sweeps, reductions) and embedded in every
    artifact file name ([msc_kern_<v>_...], [msc_sweep_<v>_...],
    [msc_reduce_<v>_...]). Bumped whenever an emitter changes the code it
    generates for the same specs, so a shared [$MSC_KERNEL_CACHE] can
    never serve artifacts of an older code shape. *)

(** {1 Aux slot layouts} *)

val per_term_aux_names : Interp.t -> string option array
(** The aux layout a per-term compiled kernel expects in its [aux]
    argument: bilinear kernels keep one slot per bilinear subterm
    (matching [bil_aux_names]; [None] slots take [[||]] placeholders),
    tree kernels one slot per distinct aux tensor in first-use order,
    taps kernels none. *)

val sweep_term_aux_names : Interp.t -> string list
(** The compact aux slots one term contributes to a fused sweep: the
    distinct aux tensor names the term reads, in first-use order. A
    {!Backend.sweep_fn}'s [aux] argument is the concatenation of these
    per kernel term, in stencil term order. *)

(** {1 Per-term kernels} *)

val compile_term :
  backend:Backend.t ->
  plan_digest:string ->
  term_index:int ->
  Interp.t ->
  (Backend.kernel_fn, string) result
(** Emit + compile + load the kernel for one stencil term. The returned
    function performs {e no} validation — callers must guard each
    invocation with {!Interp.check_grids} / {!Interp.check_range} exactly
    as the interpreter does. [backend = Interp] is an [Error] (the caller
    should not be asking). *)

(** {1 Fused whole-sweep kernels} *)

type sweep_term =
  | Sweep_state of { scale : float }
      (** the stencil's identity term: [scale * src] *)
  | Sweep_kernel of { scale : float; interp : Interp.t }
      (** a kernel term: [scale * K(src)] *)

val compile_sweep :
  backend:Backend.t ->
  plan_digest:string ->
  sweep_term list ->
  (Backend.sweep_fn, string) result
(** Emit + compile + load one fused kernel covering the whole term list,
    in stencil term order. All kernel terms must share a geometry; at
    least one kernel term is required. The returned function performs no
    validation — callers guard with {!Interp.check_grids} /
    {!Interp.check_range} per kernel term. *)

val emit_c_sweep : fn_name:string -> sweep_term list -> (string, string) result
(** The fused C function body alone (no compilation), for the AOT
    {!Codegen} driver: the same emitter the [Compiled_c] backend JITs, so
    standalone generated programs share the fused sweep code path. *)

(** {1 Reduction kernels} *)

val compile_reduce :
  backend:Backend.t ->
  shape:int array ->
  halo:int array ->
  strides:int array ->
  (Backend.reduce_fn, string) result
(** Emit + compile + load one reduction kernel for a grid geometry,
    covering all four {!Msc_ir.Reduce} operators (dispatched on
    {!Msc_ir.Reduce.code}). The accumulator chain is strictly sequential
    row-major — bit-identical to the interpreter reference in
    {!Reduction} — and the artifact is keyed by geometry alone, so every
    plan over the same grid shares it. The returned function performs no
    validation; callers guard geometry and range like the sweep paths. *)
