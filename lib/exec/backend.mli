(** Execution backends: how kernel sweeps run on the host.

    The paper's premise is {e generated} code running at hardware speed; the
    interpreter ({!Interp}) is the semantic reference, and the two compiled
    backends close the loop by emitting a specialized kernel per
    (plan, term) at runtime ({!Jit}) — a flat-array OCaml kernel loaded via
    [Dynlink], or C compiled with the host toolchain and loaded via
    [dlopen]. All three produce bit-identical results; the compiled
    backends fall back to the interpreter per term when no toolchain is
    available or a kernel is not compilable (tree-mode expressions). *)

type t =
  | Interp  (** the in-process interpreter (always available) *)
  | Native_ocaml
      (** specialized OCaml emitted per (plan, term), compiled with
          [ocamlopt -shared] and loaded via [Dynlink] *)
  | Compiled_c
      (** specialized C emitted per (plan, term), compiled with [cc] and
          loaded via [dlopen] *)

val all : t list
val to_string : t -> string
(** ["interp"], ["native_ocaml"], ["compiled_c"]. *)

val of_string : string -> (t, string) result
(** Accepts the {!to_string} forms plus common spellings
    (["native"], ["c"], ["compiled-c"], ...). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val compute_scale : t -> float
(** Modelled compute-time multiplier relative to compiled C, for the
    processor simulators and the tuner's cost model: [1.0] for
    [Compiled_c], a small constant for [Native_ocaml], and the measured
    interpreter penalty for [Interp]. *)

(** {1 Compiled-kernel calling convention}

    Every compiled kernel — OCaml or C — is loaded back as one uniform
    function over the flat padded arrays. The three writeback codes mirror
    {!Interp}'s sweep flavours. *)

val wb_apply : int  (** [dst\[p\] <- K(src)\[p\]] *)

val wb_apply_scaled : int  (** [dst\[p\] <- scale * K(src)\[p\]] *)

val wb_accumulate : int  (** [dst\[p\] <- dst\[p\] + scale * K(src)\[p\]] *)

type kernel_fn =
  int ->
  float ->
  float array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit
(** [fn wb scale src dst aux lo hi]: writeback code, scale, src/dst padded
    data, per-term aux data (bilinear kernels; else [[||]]), and the
    interior-coordinate range. The geometry (shape, halo, strides) is baked
    into the kernel at emission time; callers must pass grids of the
    compiled geometry (enforced by {!Runtime} via [Interp.check_grids]). *)

type sweep_fn =
  int ->
  float array array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit
(** [fn wb srcs dst aux lo hi]: a {e fused} whole-sweep kernel covering
    every term of a stencil update in one pass over the range — scales and
    per-term accumulation are baked in, so only two writeback codes apply:
    {!wb_apply} (write-through: the first term overwrites, later terms fold
    into a register accumulator) and {!wb_accumulate} (all terms accumulate
    on top of [dst]'s prior contents — the zero-accumulate engine).

    [srcs] holds one padded source array {e per term}, in stencil term
    order (terms reading the same past state repeat the array); [aux] is
    the concatenation of every term's aux slots (see
    {!Jit.sweep_term_aux_names}). Geometry is baked at emission time;
    callers guard with [Interp.check_grids]/[check_range] per kernel term
    exactly as the interpreter does. *)

type reduce_fn =
  int -> float array -> float array -> int array -> int array -> float
(** [fn op a b lo hi]: a compiled reduction partial over the interior box
    [\[lo, hi)] of the baked geometry. [op] is {!Msc_ir.Reduce.code}; [b]
    is read only by the binary operators (callers pass [a] again for unary
    ops). The accumulation is strictly sequential in row-major order —
    bit-identical to the interpreter's reference partial. *)
