(** Single-node stencil runtime: sliding time window (§4.3, Figure 5),
    tiled execution per the schedule, and optional domain parallelism.

    The window keeps [W + 1] grids for a stencil of time depth [W] (the
    paper's "width three" for two time dependencies): the [W] most recent
    states plus one spare slot the next output is written into. *)

type t

type engine = Write_through | Zero_accumulate
(** How a step materialises the output grid. [Write_through] (the default)
    has the first stencil term overwrite each tile directly
    ({!Interp.apply_scaled_range}) and later terms accumulate — no zero
    pass, one full memory round trip over the output grid saved per step.
    [Zero_accumulate] is the legacy engine: zero the interior
    ({!Grid.fill_interior}), then accumulate every term. The two agree
    bit-exactly; the legacy engine is retained for parity tests. *)

val default_init : int -> int array -> float
(** The default initial condition: a deterministic smooth field, identical
    for every past state ([dt] is ignored). *)

val default_aux_init : string -> int array -> float
(** Default closed form for static coefficient grids, keyed on the tensor
    name; also evaluated over halo cells and replicated by the code
    generator, so every execution path agrees. *)

val aux_base : string -> float
(** The name-derived constant of {!default_aux_init} (exposed so the code
    generator can fold it into the emitted C). *)

type backend_report = {
  requested : Backend.t;  (** what the config asked for *)
  effective : Backend.t;
      (** what kernel terms actually run on: [requested] when at least one
          term compiled, [Interp] when everything fell back *)
  kernel_terms : int;  (** stencil terms that sweep a kernel *)
  compiled_terms : int;  (** of those, how many run loaded code *)
  fused_sweeps : int;
      (** [1] when the whole sweep runs as one fused compiled kernel (in
          which case [compiled_terms = kernel_terms] and no per-term
          kernels were built), [0] otherwise *)
  tile_dispatches : int;
      (** cumulative count of tile tasks swept so far — each is one
          dispatch unit on the worker pool (interior/shell splits and
          temporal substeps all count their tasks) *)
  pool_inline_cutoff : int;
      (** the inline-execution threshold in effect: a parallel-scheduled
          sweep whose task array covers fewer total points than this runs
          inline on the calling domain instead of the pool — tiny sweeps
          cost more to dispatch than to compute. Settable once at startup
          via [MSC_POOL_INLINE_CUTOFF] (0 disables inlining). *)
  inline_dispatches : int;
      (** cumulative count of parallel-scheduled sweeps the cutoff ran
          inline *)
  fallback : string option;
      (** first reason a term fell back to the interpreter, if any *)
}
(** How the configured {!Backend} materialised for this runtime. With
    [fuse] on (the default), compiled backends run one fused whole-sweep
    kernel dispatched tile-task-at-a-time across the pool; when fusion is
    off or the fused compile failed, kernels compile per term, and
    fallback is per term. *)

val create :
  ?plan:Msc_schedule.Plan.t ->
  ?schedule:Msc_schedule.Schedule.t ->
  ?config:Exec.Config.t ->
  ?init:(int -> int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Bc.t ->
  ?engine:engine ->
  ?trace:Msc_trace.t ->
  ?tid:int ->
  Msc_ir.Stencil.t -> t
(** [create st] builds the runtime. [init dt coord] gives the initial state
    at time [-dt] ([dt = 1..W]); it defaults to a deterministic pseudo-random
    field shared by all initial states. [plan] supplies a precompiled
    {!Msc_schedule.Plan.t} whose tile tasks and parallel assignment drive
    execution — the sweep follows the plan's task order, so a schedule's
    [reorder] decides the traversal. [schedule] is sugar that compiles a
    plan here (ignored when [plan] is given; when neither is given the
    runtime runs the untiled sequential plan of {!Msc_schedule.Schedule.empty}).
    Results are plan-independent. [config] (default {!Exec.Config.default})
    supplies the kernel {!Backend} — compiled backends JIT each kernel term
    against the plan, falling back per term to the interpreter (see
    {!backend_report}) — and the worker pool, which the caller owns; its
    [engine] field concerns halo exchange and is ignored here (single
    node). [bc] is applied to every initial state and to each
    newly produced state (default [Dirichlet 0.0], the paper's zero-halo
    convention).

    [trace] (default {!Msc_trace.disabled}) records a ["sweep"] span per
    tile, ["bc.apply"] and ["window.rotate"] spans per step, and a
    ["sweep.points"] counter; parallel sweeps propagate a per-worker sink
    through the pool's [on_worker] hook, so worker spans carry their worker
    id as [tid]. Sequential spans carry [tid] (default 0 — the distributed
    runtime labels each rank's runtime with its rank). An enabled trace is
    additionally tagged with the plan's metadata ([plan.tiles],
    [plan.working_set_bytes], [plan.reuse_factor] counters).
    @raise Invalid_argument if the schedule is illegal for the stencil's
    kernels. *)

val stencil : t -> Msc_ir.Stencil.t
val time_window : t -> int

val backend_report : t -> backend_report
(** Which backend this runtime's kernel terms actually run on. *)

val aux_tensors_of : Msc_ir.Stencil.t -> Msc_ir.Tensor.t list
(** Distinct aux (coefficient) tensors across the stencil's kernels, in
    first-use order. *)

val aux_grids : t -> (string * Grid.t) list
(** The static coefficient grids (one per distinct aux tensor of the
    stencil's kernels), filled from [aux_init] halo included. *)

val state : t -> dt:int -> Grid.t
(** The state at [t - dt], [1 <= dt <= W]. After [n] steps, [state ~dt:1] is
    the result of step [n]. *)

val current : t -> Grid.t
(** [state ~dt:1]. *)

val output_slot : t -> Grid.t
(** The spare grid the next step will write into (exposed for the
    distributed runtime, which must exchange halos into input states). *)

val steps_done : t -> int

val step : t -> unit
(** Advance one timestep: compute the new state from the window, slide the
    window. Equivalent to [begin_step t; sweep_tasks t (tiles t);
    finish_step t]. *)

(** {1 Split stepping}

    A step decomposed into phases, for callers that interleave other work
    (the distributed runtime hides its halo exchange behind an interior
    sub-sweep). One step = [begin_step], then [sweep_tasks] calls whose task
    arrays together cover {!tiles} exactly once (in any order and split —
    every cell depends only on the input window, so the result is
    bit-identical to {!step}), then [finish_step]. *)

val begin_step : t -> unit
(** Prepare the output slot (the zero pass, when the engine needs one). *)

val sweep_tasks : t -> (int array * int array) array -> unit
(** Sweep the given (lo, hi) task ranges into the output slot under the
    plan's parallel dispatch, recording a ["sweep"] span per task. *)

val finish_step : ?low:bool array -> ?high:bool array -> t -> unit
(** Record ["sweep.points"], apply the boundary condition to the new state,
    and rotate the window. [low]/[high] restrict the BC pass to the masked
    faces (see {!Bc.apply}) — the distributed temporal engine refreshes
    physical faces only, so the ghost cells it recomputed into the halo
    survive between substeps. Masks that are all-false skip the BC walk
    entirely. *)

val run : t -> int -> unit
(** [run t n] performs [n] steps. *)

val tiles : t -> (int array * int array) array
(** The (lo, hi) interior ranges of each tile in the plan's traversal order
    (a single full-range tile when untiled). *)

(** {1 Pipeline graphs}

    A graph runtime executes a whole {!Msc_graph.Graph.t} per step: each
    stage is swept in topological order over its ghost-zone-extended task
    range into a scratch buffer (slot assignment and reuse from
    {!Msc_schedule.Plan.compile_graph}), the output stage writes the
    stepped state, and the window rotates exactly as a single stencil's
    would. Stage kernels are interpreted in {e forced tree mode}
    ({!Interp.compile}'s [force_tree]) so that fused compound stages stay
    bit-identical to their unfused stage-at-a-time reference; compiled
    backends JIT one fused sweep per stage against the stage's plan
    digest (interpreter fallback per stage). Intermediate buffers carry
    no boundary condition: extended stage sweeps read the source's
    BC-filled (or exchanged) deep halo, sized by the graph's
    {!Msc_graph.Graph.required_halo}. *)

val create_graph :
  ?graph_plan:Msc_schedule.Plan.graph_plan ->
  ?schedule:Msc_schedule.Schedule.t ->
  ?config:Exec.Config.t ->
  ?init:(int -> int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Bc.t ->
  ?trace:Msc_trace.t ->
  ?tid:int ->
  Msc_graph.Graph.t ->
  t
(** Build a graph runtime. [graph_plan] supplies a precompiled
    {!Msc_schedule.Plan.graph_plan} (the distributed runtime passes one
    per rank extent); otherwise [schedule] (default
    {!Msc_schedule.Schedule.empty}) is lowered against every stage here.
    [init]/[aux_init]/[bc]/[trace]/[tid] behave as in {!create}. The
    non-graph split-stepping entry points ({!sweep_tasks}, {!tiles})
    still refer to the output stage; use {!sweep_graph_stage} for
    per-stage phase control.
    @raise Invalid_argument if any stage rejects the schedule. *)

val is_graph : t -> bool

val graph_plan : t -> Msc_schedule.Plan.graph_plan option
(** The lowered graph plan, when this is a graph runtime. *)

val step_graph : t -> unit
(** One pipeline step: [begin_step]; sweep every stage in topological
    order over its extended tasks; [finish_step]. {!step} delegates here
    on graph runtimes.
    @raise Invalid_argument on a non-graph runtime. *)

val graph_stage_count : t -> int

val graph_stage_tasks : t -> int -> (int array * int array) array
(** Stage [i]'s extended task array (topological index). Sweeping any
    partition of these between {!begin_step} and {!finish_step}, stages
    in order, reproduces {!step_graph} bit-exactly — the distributed
    runtime splits stage 0 against its radius to overlap the exchange. *)

val sweep_graph_stage : t -> int -> (int array * int array) array -> unit
(** Sweep stage [i] over an explicit task array into its buffer (or the
    output slot) under the plan's parallel dispatch. *)
