type t = Interp | Native_ocaml | Compiled_c

let all = [ Interp; Native_ocaml; Compiled_c ]

let to_string = function
  | Interp -> "interp"
  | Native_ocaml -> "native_ocaml"
  | Compiled_c -> "compiled_c"

let of_string s =
  match String.lowercase_ascii s with
  | "interp" | "interpreter" -> Ok Interp
  | "native" | "native_ocaml" | "native-ocaml" | "ocaml" -> Ok Native_ocaml
  | "c" | "cc" | "compiled_c" | "compiled-c" -> Ok Compiled_c
  | _ ->
      Error
        (Printf.sprintf "unknown backend %S (expected interp|native|compiled-c)" s)

let pp ppf b = Format.pp_print_string ppf (to_string b)
let equal (a : t) b = a = b

(* Calibrated against the kernels bench group: the interpreter's per-point
   dispatch runs roughly an order of magnitude under the compiled sweeps;
   plain ocamlopt output trails vectorized C by a small constant. *)
let compute_scale = function
  | Interp -> 25.0
  | Native_ocaml -> 1.6
  | Compiled_c -> 1.0

let wb_apply = 0
let wb_apply_scaled = 1
let wb_accumulate = 2

type kernel_fn =
  int ->
  float ->
  float array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit

type sweep_fn =
  int ->
  float array array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit

type reduce_fn =
  int -> float array -> float array -> int array -> int array -> float
