open Msc_ir
module Schedule = Msc_schedule.Schedule
module Plan = Msc_schedule.Plan
module G = Msc_graph.Graph

(* One stencil term's execution state: the interpreter compilation is
   always present (the semantic reference and the fallback); [compiled]
   holds the backend's loaded kernel when the JIT produced one; [jit_aux]
   is the per-bilinear-term aux data resolved once at creation (the aux
   grids are static), [||] for taps kernels. *)
type kernel_exec = {
  interp : Interp.t;
  compiled : Backend.kernel_fn option;
  jit_aux : float array array;
}

type term = { scale : float; source : source; dt : int }
and source = From_kernel of kernel_exec | From_state

type engine = Write_through | Zero_accumulate

(* ------------------------------------------------------------------ *)
(* Pipeline graph execution state. A graph runtime reuses the window /
   BC / rotation machinery of [t] (the stepped source grid behaves
   exactly as a single stencil's would) and adds per-stage sweeps into
   scratch buffers. Stage kernels are interpreted in forced tree mode:
   the taps/bilinear fast paths merge duplicate taps and fold/distribute
   coefficients, which is bit-equal for a kernel on its own but not for
   a fused compound kernel versus its unfused reference — literal tree
   evaluation is the one mode where substitution preserves every bit. *)

(* Where a stage term's input grid comes from: a past state of the
   stepped source, or an intermediate stage's scratch buffer (always the
   current step — intermediates are recomputed, never stepped). *)
type gsource = G_state of int | G_buffer of int

type gterm = {
  g_scale : float;
  g_src : gsource;
  g_kernel : Interp.t option;  (* [None] = identity (State) term *)
}

type stage_exec = {
  sx_name : string;
  sx_terms : gterm list;
  sx_aux_static : (string * Grid.t) list;
      (* coefficient grids + predecessor buffers, resolved once: buffer
         slot assignment is static, grid identities never change *)
  sx_aux_source : string option;
      (* the source tensor's name when a kernel reads it as aux (bound
         per sweep to [state ~dt:1]: the window rotates) *)
  sx_dst : [ `Buffer of int | `Output ];
  sx_tasks : (int array * int array) array;
      (* plan tasks grown by the stage's ghost-zone extension *)
  sx_fused : Backend.sweep_fn option;  (* per-stage fused JIT sweep *)
  sx_fused_srcs : float array array;
  sx_fused_aux : float array array;
  sx_aux_refresh : int list;
      (* [sx_fused_aux] slots bound to the source, refilled per sweep *)
}

type graph_exec = {
  gx_plan : Plan.graph_plan;
  gx_buffers : Grid.t array;
  gx_stages : stage_exec array;
}

type backend_report = {
  requested : Backend.t;
  effective : Backend.t;
  kernel_terms : int;
  compiled_terms : int;
  fused_sweeps : int;
  tile_dispatches : int;
  pool_inline_cutoff : int;
  inline_dispatches : int;
  fallback : string option;
}

(* Pool dispatch of a tiny sweep costs more than the sweep itself: waking
   the workers and the end-of-region barrier take microseconds while a few
   thousand points sweep in less — the BENCH_runtime regression that had
   [fused_c_pool] at 0.25-0.88x of [fused_c] across the whole suite. Below
   this many total points, a parallel-scheduled task array runs inline on
   the calling domain instead. Override with MSC_POOL_INLINE_CUTOFF=<n>
   (read once at startup; 0 disables inlining). *)
let pool_inline_cutoff =
  match
    Option.bind (Sys.getenv_opt "MSC_POOL_INLINE_CUTOFF") int_of_string_opt
  with
  | Some n when n >= 0 -> n
  | _ -> 32768

let task_points tasks =
  Array.fold_left
    (fun acc (lo, hi) ->
      let v = ref 1 in
      Array.iteri (fun d l -> v := !v * (hi.(d) - l)) lo;
      acc + !v)
    0 tasks

(* An inlined sweep drops the plan's parallel tiling along with the pool
   dispatch: when the demoted task array exactly partitions its bounding box
   (full-sweep tilings always do; interior/shell splits leave gaps and keep
   their shape), it collapses to one box-sized task, so a compiled fused
   sweep costs one kernel call — what the untiled sweep pays — instead of
   one per tile. Below the cutoff the whole sweep fits in cache, so the
   tiling bought no locality; tasks are disjoint and pointwise, so the
   merge is bit-exact. *)
let coalesce_tasks tasks =
  if Array.length tasks <= 1 then None
  else begin
    let lo0, hi0 = tasks.(0) in
    let d = Array.length lo0 in
    let lo = Array.copy lo0 and hi = Array.copy hi0 in
    let total = ref 0 in
    Array.iter
      (fun (tlo, thi) ->
        let pts = ref 1 in
        for k = 0 to d - 1 do
          if tlo.(k) < lo.(k) then lo.(k) <- tlo.(k);
          if thi.(k) > hi.(k) then hi.(k) <- thi.(k);
          pts := !pts * (thi.(k) - tlo.(k))
        done;
        total := !total + !pts)
      tasks;
    let bbox = ref 1 in
    for k = 0 to d - 1 do
      bbox := !bbox * (hi.(k) - lo.(k))
    done;
    if !bbox = !total then Some (lo, hi) else None
  end

(* Cutoff decision for one task array, memoised by the array's identity:
   [t.tiles] and per-stage task arrays are built once per runtime, so after
   the first sweep the per-step cost is a pointer compare instead of a
   rescan — which matters when the sweep itself is only microseconds.
   Bounded so transient arrays (distributed interior/shell splits built per
   step) evict oldest-first instead of leaking. *)
type sweep_memo = {
  sm_tasks : (int array * int array) array;
  sm_points : int;
  sm_coalesced : (int array * int array) option;
}

type t = {
  stencil : Stencil.t;
  terms : term list;
  window : Grid.t array;  (* length W+1 *)
  aux : (string * Grid.t) list;  (* static coefficient grids *)
  bc : Bc.t;
  mutable cur : int;  (* index of the newest state (t-1) *)
  mutable steps_done : int;
  tiles : (int array * int array) array;
  par : [ `Seq | `Block | `Round_robin ];
  pool : Msc_util.Domain_pool.t;
  engine : engine;
  (* The fused whole-sweep kernel, when the backend compiled one: a single
     pass accumulating every term. [fused_srcs] holds one source array per
     term and is refreshed per dispatch (the window rotates between steps);
     [fused_aux] concatenates every term's aux slots and is static. *)
  fused : Backend.sweep_fn option;
  fused_srcs : float array array;
  fused_aux : float array array;
  mutable tile_dispatches : int;  (* tile tasks swept, cumulative *)
  mutable inline_dispatches : int;  (* parallel sweeps run inline, cumulative *)
  mutable sweep_memos : sweep_memo list;  (* cutoff decisions, MRU-bounded *)
  backend_report : backend_report;  (* dispatch counters patched on read *)
  trace : Msc_trace.t;
  tid : int;  (* label for this runtime's spans (the rank, when distributed) *)
  on_worker : (int -> unit) option;  (* attaches worker domains to [trace] *)
  points_per_step : float;  (* interior points swept per step *)
  graph : graph_exec option;  (* present iff built by [create_graph] *)
}

let rec flatten scale (e : Stencil.expr) =
  match e with
  | Stencil.Apply (k, dt) -> [ (scale, `Kernel k, dt) ]
  | Stencil.State dt -> [ (scale, `State, dt) ]
  | Stencil.Scale (c, a) -> flatten (scale *. c) a
  | Stencil.Sum (a, b) -> flatten scale a @ flatten scale b
  | Stencil.Diff (a, b) -> flatten scale a @ flatten (-.scale) b

(* Static coefficient grids get a deterministic closed form keyed on the
   tensor name; halo cells use the same formula (fill_extended), so single
   node, distributed and generated-C executions all agree. *)
let aux_base name = 0.2 +. (0.015 *. float_of_int (Hashtbl.hash name mod 11))

let default_aux_init name coord =
  let acc = ref (aux_base name) in
  Array.iteri
    (fun d c -> acc := !acc +. (0.04 *. sin (float_of_int ((d + 2) * (c + 4)) *. 0.05)))
    coord;
  !acc

let aux_tensors_of (st : Stencil.t) =
  List.fold_left
    (fun acc k ->
      List.fold_left
        (fun acc (tensor : Tensor.t) ->
          if List.exists (fun (t : Tensor.t) -> String.equal t.Tensor.name tensor.Tensor.name) acc
          then acc
          else acc @ [ tensor ])
        acc k.Kernel.aux)
    [] (Stencil.kernels st)

let default_init _dt coord =
  (* A deterministic smooth field, identical across initial states so
     multi-time-dependency stencils start consistently. *)
  let acc = ref 0.37 in
  Array.iteri
      (fun d c ->
        acc := !acc +. (sin (float_of_int ((d + 1) * (c + 3)) *. 0.1) *. 0.13))
      coord;
    !acc

let create ?plan ?schedule ?(config = Exec.Config.default)
    ?(init = default_init) ?(aux_init = default_aux_init)
    ?(bc = Bc.Dirichlet 0.0) ?(engine = Write_through)
    ?(trace = Msc_trace.disabled) ?(tid = 0) (st : Stencil.t) =
  let geometry = Grid.of_tensor st.Stencil.grid in
  let w = Stencil.time_window st in
  let window = Array.init (w + 1) (fun _ -> Grid.like geometry) in
  (* Slot w holds the spare; slots 0..w-1 hold states t-1 .. t-w. *)
  for dt = 1 to w do
    Grid.fill window.(w - dt) (init dt);
    Bc.apply bc window.(w - dt)
  done;
  let aux =
    List.map
      (fun (tensor : Tensor.t) ->
        let g = Grid.of_tensor tensor in
        Grid.fill_extended g (aux_init tensor.Tensor.name);
        (tensor.Tensor.name, g))
      (aux_tensors_of st)
  in
  let shape = st.Stencil.grid.Tensor.shape in
  (* All schedule interpretation lives in the plan layer: [?schedule] is
     sugar that lowers here, [?plan] shares a precompiled plan (the
     distributed runtime passes one per distinct rank extent). The plan is
     resolved before the terms because its digest keys the kernel cache. *)
  let plan =
    match plan with
    | Some p -> p
    | None -> (
        let sched = Option.value schedule ~default:Schedule.empty in
        match Plan.compile st sched with
        | Ok p -> p
        | Error msg -> invalid_arg ("Runtime.create: " ^ msg))
  in
  let backend = config.Exec.Config.backend in
  let fallback = ref None in
  (* Interpreter compilations first: they are the semantic reference for
     both the fused and the per-term compiled paths. *)
  let pre_terms =
    List.map
      (fun (scale, src, dt) ->
        match src with
        | `Kernel k -> (scale, `Kernel (Interp.compile ~trace k ~geometry), dt)
        | `State -> (scale, `State, dt))
      (flatten 1.0 st.Stencil.expr)
  in
  let kernel_terms =
    List.length
      (List.filter (fun (_, s, _) -> match s with `Kernel _ -> true | `State -> false) pre_terms)
  in
  let aux_data_of name =
    Option.map (fun (g : Grid.t) -> g.Grid.data) (List.assoc_opt name aux)
  in
  (* Tentpole path: one fused kernel for the whole sweep. Attempted first;
     per-term kernels are only compiled when fusion is off or failed. *)
  let sweep_terms =
    List.map
      (fun (scale, src, _) ->
        match src with
        | `Kernel interp -> Jit.Sweep_kernel { scale; interp }
        | `State -> Jit.Sweep_state { scale })
      pre_terms
  in
  let fused_aux_resolved =
    (* Every named aux slot must have a grid, or the fused kernel cannot be
       given its arrays (defensive: Stencil kernels always register their
       aux tensors, so this only trips on hand-built runtimes). *)
    List.for_all
      (function
        | Jit.Sweep_state _ -> true
        | Jit.Sweep_kernel { interp; _ } ->
            List.for_all
              (fun n -> aux_data_of n <> None)
              (Jit.sweep_term_aux_names interp))
      sweep_terms
  in
  let fused =
    if
      backend = Backend.Interp
      || (not config.Exec.Config.fuse)
      || kernel_terms = 0
      || not fused_aux_resolved
    then None
    else
      match
        Jit.compile_sweep ~backend ~plan_digest:plan.Plan.digest sweep_terms
      with
      | Ok fn -> Some fn
      | Error _ -> None
  in
  let compiled_terms = ref (if fused <> None then kernel_terms else 0) in
  let term_ix = ref 0 in
  let jit_aux_of interp =
    Array.map
      (function
        | Some name -> (
            match aux_data_of name with Some data -> data | None -> [||])
        | None -> [||])
      (Jit.per_term_aux_names interp)
  in
  let terms =
    List.map
      (fun (scale, src, dt) ->
        match src with
        | `Kernel interp ->
            let i = !term_ix in
            incr term_ix;
            let compiled =
              if backend = Backend.Interp || fused <> None then None
              else if
                (* A named aux tensor with no grid cannot be resolved into
                   the compiled ABI; keep that term on the interpreter. *)
                not
                  (Array.for_all
                     (function
                       | Some n -> aux_data_of n <> None | None -> true)
                     (Jit.per_term_aux_names interp))
              then begin
                if !fallback = None then
                  fallback := Some "kernel reads an aux tensor with no grid";
                None
              end
              else
                match
                  Jit.compile_term ~backend ~plan_digest:plan.Plan.digest
                    ~term_index:i interp
                with
                | Ok fn ->
                    incr compiled_terms;
                    Some fn
                | Error msg ->
                    if !fallback = None then fallback := Some msg;
                    None
            in
            {
              scale;
              source = From_kernel { interp; compiled; jit_aux = jit_aux_of interp };
              dt;
            }
        | `State -> { scale; source = From_state; dt })
      pre_terms
  in
  let fused_srcs =
    if fused = None then [||]
    else Array.make (List.length terms) [||]
  in
  let fused_aux =
    if fused = None then [||]
    else
      Array.of_list
        (List.concat_map
           (function
             | Jit.Sweep_state _ -> []
             | Jit.Sweep_kernel { interp; _ } ->
                 List.map
                   (fun n -> Option.get (aux_data_of n))
                   (Jit.sweep_term_aux_names interp))
           sweep_terms)
  in
  let backend_report =
    {
      requested = backend;
      effective = (if !compiled_terms > 0 then backend else Backend.Interp);
      kernel_terms;
      compiled_terms = !compiled_terms;
      fused_sweeps = (if fused = None then 0 else 1);
      tile_dispatches = 0;
      pool_inline_cutoff;
      inline_dispatches = 0;
      fallback = !fallback;
    }
  in
  let tiles = plan.Plan.tasks in
  let par =
    match plan.Plan.parallel with
    | Plan.Seq -> `Seq
    | Plan.Block _ -> `Block
    | Plan.Round_robin _ -> `Round_robin
  in
  if Msc_trace.enabled trace then begin
    (* Tag the execution trace with the plan's metadata so profiles can be
       read against the lowering that produced them. *)
    Msc_trace.add ~tid trace "plan.tiles" (float_of_int plan.Plan.tiles_count);
    Msc_trace.add ~tid trace "plan.working_set_bytes"
      (float_of_int plan.Plan.working_set_bytes);
    Msc_trace.add ~tid trace "plan.reuse_factor" plan.Plan.reuse_factor
  end;
  let on_worker =
    if Msc_trace.enabled trace then
      Some (fun w -> Msc_trace.attach_worker trace ~tid:w)
    else None
  in
  {
    stencil = st;
    terms;
    window;
    aux;
    bc;
    cur = w - 1;
    steps_done = 0;
    tiles;
    par;
    pool = config.Exec.Config.pool;
    engine;
    fused;
    fused_srcs;
    fused_aux;
    tile_dispatches = 0;
    inline_dispatches = 0;
    sweep_memos = [];
    backend_report;
    trace;
    tid;
    on_worker;
    points_per_step = float_of_int (Array.fold_left ( * ) 1 shape);
    graph = None;
  }

let create_graph ?graph_plan ?schedule ?(config = Exec.Config.default)
    ?(init = default_init) ?(aux_init = default_aux_init)
    ?(bc = Bc.Dirichlet 0.0) ?(trace = Msc_trace.disabled) ?(tid = 0)
    (graph : G.t) =
  let gp =
    match graph_plan with
    | Some p -> p
    | None -> (
        let sched = Option.value schedule ~default:Schedule.empty in
        match Plan.compile_graph graph sched with
        | Ok p -> p
        | Error msg -> invalid_arg ("Runtime.create_graph: " ^ msg))
  in
  let g = gp.Plan.gp_graph in
  let source = g.G.source in
  let geometry = Grid.of_tensor source in
  let w = gp.Plan.gp_time_window in
  let window = Array.init (w + 1) (fun _ -> Grid.like geometry) in
  for dt = 1 to w do
    Grid.fill window.(w - dt) (init dt);
    Bc.apply bc window.(w - dt)
  done;
  let aux =
    List.map
      (fun (tensor : Tensor.t) ->
        let gr = Grid.of_tensor tensor in
        Grid.fill_extended gr (aux_init tensor.Tensor.name);
        (tensor.Tensor.name, gr))
      (G.coefficient_tensors g)
  in
  let buffers = Array.init gp.Plan.gp_n_buffers (fun _ -> Grid.like geometry) in
  let slot_of name =
    List.find_map
      (fun (sp : Plan.graph_stage_plan) ->
        if String.equal sp.Plan.gs_name name then sp.Plan.gs_buffer else None)
      gp.Plan.gp_stages
  in
  let backend = config.Exec.Config.backend in
  let fallback = ref None in
  let kernel_terms_total = ref 0 in
  let compiled_terms = ref 0 in
  let fused_stages = ref 0 in
  let shape = source.Tensor.shape in
  let all_true = Array.make (Tensor.ndim source) true in
  let build_stage (sp : Plan.graph_stage_plan) =
    let st = sp.Plan.gs_stencil in
    let input_name = st.Stencil.grid.Tensor.name in
    let input_is_source = String.equal input_name source.Tensor.name in
    let src_of dt =
      if input_is_source then G_state dt
      else
        match slot_of input_name with
        | Some b -> G_buffer b
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Runtime.create_graph: stage %s reads %S which has no buffer"
                 sp.Plan.gs_name input_name)
    in
    (* Graph stages always interpret in tree mode — see the comment on
       [gsource] above. *)
    let pre_terms =
      List.map
        (fun (scale, src, dt) ->
          match src with
          | `Kernel k ->
              incr kernel_terms_total;
              (scale, `Kernel (Interp.compile ~trace ~force_tree:true k ~geometry), dt)
          | `State -> (scale, `State, dt))
        (flatten 1.0 st.Stencil.expr)
    in
    let aux_names =
      List.sort_uniq String.compare
        (List.concat_map
           (fun (k : Kernel.t) ->
             List.map (fun (x : Tensor.t) -> x.Tensor.name) k.Kernel.aux)
           (Stencil.kernels st))
    in
    let aux_source = ref None in
    let aux_static =
      List.filter_map
        (fun n ->
          if String.equal n source.Tensor.name then begin
            aux_source := Some n;
            None
          end
          else
            match slot_of n with
            | Some b -> Some (n, buffers.(b))
            | None -> (
                match List.assoc_opt n aux with
                | Some gr -> Some (n, gr)
                | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Runtime.create_graph: stage %s reads unbound tensor %S"
                         sp.Plan.gs_name n)))
        aux_names
    in
    let terms =
      List.map
        (fun (scale, src, dt) ->
          match src with
          | `Kernel interp ->
              { g_scale = scale; g_src = src_of dt; g_kernel = Some interp }
          | `State -> { g_scale = scale; g_src = src_of dt; g_kernel = None })
        pre_terms
    in
    let sweep_terms =
      List.map
        (fun (scale, src, _) ->
          match src with
          | `Kernel interp -> Jit.Sweep_kernel { scale; interp }
          | `State -> Jit.Sweep_state { scale })
        pre_terms
    in
    let stage_kernel_terms =
      List.length
        (List.filter
           (function Jit.Sweep_kernel _ -> true | Jit.Sweep_state _ -> false)
           sweep_terms)
    in
    let fused =
      if
        backend = Backend.Interp
        || (not config.Exec.Config.fuse)
        || stage_kernel_terms = 0
      then None
      else
        match
          Jit.compile_sweep ~backend ~plan_digest:sp.Plan.gs_plan.Plan.digest
            sweep_terms
        with
        | Ok fn ->
            incr fused_stages;
            compiled_terms := !compiled_terms + stage_kernel_terms;
            Some fn
        | Error msg ->
            if !fallback = None then fallback := Some msg;
            None
    in
    let sx_fused_aux, sx_aux_refresh =
      if fused = None then ([||], [])
      else begin
        let names =
          List.concat_map
            (function
              | Jit.Sweep_state _ -> []
              | Jit.Sweep_kernel { interp; _ } -> Jit.sweep_term_aux_names interp)
            sweep_terms
        in
        let arr = Array.make (List.length names) [||] in
        let refresh = ref [] in
        List.iteri
          (fun i n ->
            if String.equal n source.Tensor.name then refresh := i :: !refresh
            else
              match slot_of n with
              | Some b -> arr.(i) <- buffers.(b).Grid.data
              | None -> arr.(i) <- (List.assoc n aux).Grid.data)
          names;
        (arr, !refresh)
      end
    in
    {
      sx_name = sp.Plan.gs_name;
      sx_terms = terms;
      sx_aux_static = aux_static;
      sx_aux_source = !aux_source;
      sx_dst =
        (match sp.Plan.gs_buffer with Some b -> `Buffer b | None -> `Output);
      sx_tasks =
        Plan.extend_tasks ~shape ~ext:sp.Plan.gs_ext ~grow_low:all_true
          ~grow_high:all_true sp.Plan.gs_plan.Plan.tasks;
      sx_fused = fused;
      sx_fused_srcs =
        (if fused = None then [||] else Array.make (List.length terms) [||]);
      sx_fused_aux;
      sx_aux_refresh;
    }
  in
  let stages = Array.of_list (List.map build_stage gp.Plan.gp_stages) in
  let first_plan =
    match gp.Plan.gp_stages with
    | sp :: _ -> sp.Plan.gs_plan
    | [] -> assert false
  in
  let par =
    match first_plan.Plan.parallel with
    | Plan.Seq -> `Seq
    | Plan.Block _ -> `Block
    | Plan.Round_robin _ -> `Round_robin
  in
  if Msc_trace.enabled trace then begin
    Msc_trace.add ~tid trace "graph.stages"
      (float_of_int (Array.length stages));
    Msc_trace.add ~tid trace "graph.buffers"
      (float_of_int gp.Plan.gp_n_buffers)
  end;
  let on_worker =
    if Msc_trace.enabled trace then
      Some (fun w -> Msc_trace.attach_worker trace ~tid:w)
    else None
  in
  {
    stencil = (G.output_stage g).G.stencil;
    terms = [];
    window;
    aux;
    bc;
    cur = w - 1;
    steps_done = 0;
    tiles = stages.(Array.length stages - 1).sx_tasks;
    par;
    pool = config.Exec.Config.pool;
    engine = Write_through;
    fused = None;
    fused_srcs = [||];
    fused_aux = [||];
    tile_dispatches = 0;
    inline_dispatches = 0;
    sweep_memos = [];
    backend_report =
      {
        requested = backend;
        effective = (if !compiled_terms > 0 then backend else Backend.Interp);
        kernel_terms = !kernel_terms_total;
        compiled_terms = !compiled_terms;
        fused_sweeps = !fused_stages;
        tile_dispatches = 0;
        pool_inline_cutoff;
        inline_dispatches = 0;
        fallback = !fallback;
      };
    trace;
    tid;
    on_worker;
    points_per_step = float_of_int (Array.fold_left ( * ) 1 shape);
    graph = Some { gx_plan = gp; gx_buffers = buffers; gx_stages = stages };
  }

let stencil t = t.stencil
let time_window t = Array.length t.window - 1
let steps_done t = t.steps_done
let backend_report t =
  {
    t.backend_report with
    tile_dispatches = t.tile_dispatches;
    inline_dispatches = t.inline_dispatches;
  }

let state t ~dt =
  let len = Array.length t.window in
  let w = len - 1 in
  if dt < 1 || dt > w then invalid_arg "Runtime.state: dt out of window";
  t.window.(((t.cur - (dt - 1)) mod len + len) mod len)

let current t = state t ~dt:1

let output_slot t =
  let len = Array.length t.window in
  t.window.((t.cur + 1) mod len)

let tiles t = t.tiles
let aux_grids t = t.aux

(* Compiled kernels skip nothing the interpreter checks: every call is
   guarded by the same geometry/aliasing/range validation; only the sweep
   itself is the loaded code. *)
let term_accumulate t ~dst ~lo ~hi term =
  let src = state t ~dt:term.dt in
  match term.source with
  | From_kernel { interp; compiled = Some fn; jit_aux } ->
      Interp.check_grids interp ~src ~dst;
      Interp.check_range interp ~lo ~hi;
      fn Backend.wb_accumulate term.scale src.Grid.data dst.Grid.data jit_aux
        lo hi
  | From_kernel { interp; compiled = None; _ } ->
      Interp.accumulate_range ~aux:t.aux interp ~scale:term.scale ~src ~dst ~lo ~hi
  | From_state -> Interp.identity_accumulate_range ~scale:term.scale ~src ~dst ~lo ~hi

let term_write t ~dst ~lo ~hi term =
  let src = state t ~dt:term.dt in
  match term.source with
  | From_kernel { interp; compiled = Some fn; jit_aux } ->
      Interp.check_grids interp ~src ~dst;
      Interp.check_range interp ~lo ~hi;
      (* Mirror [Interp.apply_scaled_range]'s scale = 1 degrade to a plain
         overwrite. *)
      let wb =
        if term.scale = 1.0 then Backend.wb_apply else Backend.wb_apply_scaled
      in
      fn wb term.scale src.Grid.data dst.Grid.data jit_aux lo hi
  | From_kernel { interp; compiled = None; _ } ->
      Interp.apply_scaled_range ~aux:t.aux interp ~scale:term.scale ~src ~dst ~lo ~hi
  | From_state -> Interp.identity_apply_range ~scale:term.scale ~src ~dst ~lo ~hi

let compute_range_terms t ~dst ~lo ~hi =
  match (t.engine, t.terms) with
  | Write_through, first :: rest ->
      (* The first term overwrites the range, so [step] needs no zero pass —
         that pass plus the first term's read-modify-write were a full extra
         round trip over the output grid per step. Later terms accumulate as
         before; agreement with the zero-accumulate engine is bit-exact
         ([0.0 +. x = x]). *)
      term_write t ~dst ~lo ~hi first;
      List.iter (term_accumulate t ~dst ~lo ~hi) rest
  | Write_through, [] | Zero_accumulate, _ ->
      List.iter (term_accumulate t ~dst ~lo ~hi) t.terms

let compute_range t ~dst ~lo ~hi =
  match t.fused with
  | Some fn ->
      (* The fused kernel performs no validation; guard every kernel term
         with the interpreter's own checks, exactly as the per-term path
         does. [fused_srcs] was refreshed by the dispatching sweep. *)
      List.iter
        (fun term ->
          match term.source with
          | From_kernel { interp; _ } ->
              Interp.check_grids interp ~src:(state t ~dt:term.dt) ~dst;
              Interp.check_range interp ~lo ~hi
          | From_state -> ())
        t.terms;
      let wb =
        match t.engine with
        | Write_through -> Backend.wb_apply
        | Zero_accumulate -> Backend.wb_accumulate
      in
      fn wb t.fused_srcs dst.Grid.data t.fused_aux lo hi
  | None -> compute_range_terms t ~dst ~lo ~hi

let sweep_memo t tasks =
  match List.find_opt (fun m -> m.sm_tasks == tasks) t.sweep_memos with
  | Some m -> m
  | None ->
      let points = task_points tasks in
      let coalesced =
        if points < pool_inline_cutoff then coalesce_tasks tasks else None
      in
      let m = { sm_tasks = tasks; sm_points = points; sm_coalesced = coalesced } in
      t.sweep_memos <- m :: List.filteri (fun i _ -> i < 7) t.sweep_memos;
      m

(* [compute_range] wrapped in a per-tile "sweep" span. On parallel paths the
   worker's attachment supplies the tid; sequential sweeps carry the
   runtime's own label (the rank, when distributed). *)
let sweep_one ?tid t ~dst (lo, hi) =
  let ts0 = Msc_trace.begin_span t.trace in
  compute_range t ~dst ~lo ~hi;
  Msc_trace.end_span ?tid t.trace "sweep" ts0

(* Sweep an explicit task array into [dst] under the plan's parallel
   dispatch. Every cell's value depends only on the input window, so any
   partition of the interior into tasks — the plan's tiles, or their
   interior/shell split — produces bit-identical output in any order. *)
let sweep_tasks_into t ~dst tasks =
  let ntiles = Array.length tasks in
  t.tile_dispatches <- t.tile_dispatches + ntiles;
  (* Re-resolve each term's source array: the window rotated since the
     last sweep. Workers only read the refreshed array. *)
  if t.fused <> None then
    List.iteri
      (fun i term -> t.fused_srcs.(i) <- (state t ~dt:term.dt).Grid.data)
      t.terms;
  (* Inline cutoff: a sweep too small to amortise the pool's wake+barrier
     runs on the calling domain regardless of the plan's parallel mode.
     Bit-identity is free — tasks are independent, so dispatch shape never
     changes results. *)
  let par =
    match t.par with
    | `Seq -> `Seq
    | (`Block | `Round_robin) as p ->
        let m = sweep_memo t tasks in
        if m.sm_points < pool_inline_cutoff then begin
          t.inline_dispatches <- t.inline_dispatches + 1;
          `Inline m.sm_coalesced
        end
        else p
  in
  match par with
  | `Inline (Some task) -> sweep_one ~tid:t.tid t ~dst task
  | `Inline None ->
      for id = 0 to ntiles - 1 do
        sweep_one ~tid:t.tid t ~dst tasks.(id)
      done
  | `Seq ->
      for id = 0 to ntiles - 1 do
        sweep_one ~tid:t.tid t ~dst tasks.(id)
      done
  | `Block ->
      Msc_util.Domain_pool.parallel_for ?on_worker:t.on_worker t.pool ~lo:0
        ~hi:ntiles (fun id -> sweep_one t ~dst tasks.(id))
  | `Round_robin ->
      Msc_util.Domain_pool.parallel_chunks ?on_worker:t.on_worker t.pool ~lo:0
        ~hi:ntiles (fun ~worker:_ id -> sweep_one t ~dst tasks.(id))

let begin_step t =
  (* The zero pass only exists for the zero-accumulate engine, and only the
     interior needs it: every halo cell of [dst] is rewritten by [Bc.apply]
     in [finish_step] before the grid is ever read as an input state (the
     distributed runtime additionally overwrites exchanged faces). Zeroing
     the whole interior up front keeps later [sweep_tasks] phases free to
     accumulate into any sub-range. *)
  match t.engine with
  | Write_through -> ()
  | Zero_accumulate -> Grid.fill_interior (output_slot t) 0.0

let sweep_tasks t tasks = sweep_tasks_into t ~dst:(output_slot t) tasks

let finish_step ?low ?high t =
  let dst = output_slot t in
  Msc_trace.add ~tid:t.tid t.trace "sweep.points" t.points_per_step;
  (* [low]/[high] restrict the boundary refresh to the masked faces (the
     distributed temporal engine applies BCs to physical faces only between
     substeps — a full pass would clobber the freshly recomputed halo
     extensions). All-false masks skip the walk entirely (periodic domains
     under temporal blocking have no physical face at all). *)
  let all_false = function Some m -> Array.for_all not m | None -> false in
  let ts_bc = Msc_trace.begin_span t.trace in
  if not (all_false low && all_false high) then Bc.apply ?low ?high t.bc dst;
  Msc_trace.end_span ~tid:t.tid t.trace "bc.apply" ts_bc;
  let ts_rot = Msc_trace.begin_span t.trace in
  t.cur <- (t.cur + 1) mod Array.length t.window;
  t.steps_done <- t.steps_done + 1;
  Msc_trace.end_span ~tid:t.tid t.trace "window.rotate" ts_rot

(* ------------------------------------------------------------------ *)
(* Graph stepping: sweep each stage in topological order over its
   extended tasks into its buffer (or the output slot), then finish the
   step exactly as the single-stencil path does — intermediates carry no
   BC, the output slot gets the full BC pass. *)

let graph_exec t =
  match t.graph with
  | Some gx -> gx
  | None -> invalid_arg "Runtime: not a graph runtime (use create_graph)"

let is_graph t = t.graph <> None

let stage_src t gx = function
  | G_state dt -> state t ~dt
  | G_buffer i -> gx.gx_buffers.(i)

let stage_dst t gx sx =
  match sx.sx_dst with
  | `Buffer i -> gx.gx_buffers.(i)
  | `Output -> output_slot t

let stage_aux t sx =
  match sx.sx_aux_source with
  | None -> sx.sx_aux_static
  | Some n -> (n, current t) :: sx.sx_aux_static

let gterm_write t gx ~aux ~dst ~lo ~hi gt =
  let src = stage_src t gx gt.g_src in
  match gt.g_kernel with
  | Some interp ->
      Interp.apply_scaled_range ~aux interp ~scale:gt.g_scale ~src ~dst ~lo ~hi
  | None -> Interp.identity_apply_range ~scale:gt.g_scale ~src ~dst ~lo ~hi

let gterm_accumulate t gx ~aux ~dst ~lo ~hi gt =
  let src = stage_src t gx gt.g_src in
  match gt.g_kernel with
  | Some interp ->
      Interp.accumulate_range ~aux interp ~scale:gt.g_scale ~src ~dst ~lo ~hi
  | None -> Interp.identity_accumulate_range ~scale:gt.g_scale ~src ~dst ~lo ~hi

let stage_compute_range t gx sx ~dst ~lo ~hi =
  match sx.sx_fused with
  | Some fn ->
      (* The fused kernel performs no validation; guard with the
         interpreter's own checks exactly as the single-stencil fused
         path does. [sx_fused_srcs]/refresh slots were refilled by the
         dispatching sweep. *)
      List.iter
        (fun gt ->
          match gt.g_kernel with
          | Some interp ->
              Interp.check_grids interp ~src:(stage_src t gx gt.g_src) ~dst;
              Interp.check_range interp ~lo ~hi
          | None -> ())
        sx.sx_terms;
      fn Backend.wb_apply sx.sx_fused_srcs dst.Grid.data sx.sx_fused_aux lo hi
  | None -> (
      let aux = stage_aux t sx in
      match sx.sx_terms with
      | first :: rest ->
          gterm_write t gx ~aux ~dst ~lo ~hi first;
          List.iter (gterm_accumulate t gx ~aux ~dst ~lo ~hi) rest
      | [] -> ())

let stage_sweep_one ?tid t gx sx ~dst (lo, hi) =
  let ts0 = Msc_trace.begin_span t.trace in
  stage_compute_range t gx sx ~dst ~lo ~hi;
  Msc_trace.end_span ?tid t.trace "sweep" ts0

let sweep_stage_tasks t sx tasks =
  let gx = graph_exec t in
  let dst = stage_dst t gx sx in
  let ntiles = Array.length tasks in
  t.tile_dispatches <- t.tile_dispatches + ntiles;
  if sx.sx_fused <> None then begin
    List.iteri
      (fun i gt -> sx.sx_fused_srcs.(i) <- (stage_src t gx gt.g_src).Grid.data)
      sx.sx_terms;
    List.iter
      (fun i -> sx.sx_fused_aux.(i) <- (current t).Grid.data)
      sx.sx_aux_refresh
  end;
  (* Same inline cutoff as [sweep_tasks_into]: per-stage task arrays are
     often tiny (intermediates of a fused pipeline), so the pool overhead
     bites graph stepping hardest. *)
  let par =
    match t.par with
    | `Seq -> `Seq
    | (`Block | `Round_robin) as p ->
        let m = sweep_memo t tasks in
        if m.sm_points < pool_inline_cutoff then begin
          t.inline_dispatches <- t.inline_dispatches + 1;
          `Inline m.sm_coalesced
        end
        else p
  in
  match par with
  | `Inline (Some task) -> stage_sweep_one ~tid:t.tid t gx sx ~dst task
  | `Inline None ->
      for id = 0 to ntiles - 1 do
        stage_sweep_one ~tid:t.tid t gx sx ~dst tasks.(id)
      done
  | `Seq ->
      for id = 0 to ntiles - 1 do
        stage_sweep_one ~tid:t.tid t gx sx ~dst tasks.(id)
      done
  | `Block ->
      Msc_util.Domain_pool.parallel_for ?on_worker:t.on_worker t.pool ~lo:0
        ~hi:ntiles (fun id -> stage_sweep_one t gx sx ~dst tasks.(id))
  | `Round_robin ->
      Msc_util.Domain_pool.parallel_chunks ?on_worker:t.on_worker t.pool ~lo:0
        ~hi:ntiles (fun ~worker:_ id -> stage_sweep_one t gx sx ~dst tasks.(id))

let graph_plan t = Option.map (fun gx -> gx.gx_plan) t.graph
let graph_stage_count t = Array.length (graph_exec t).gx_stages
let graph_stage_tasks t i = (graph_exec t).gx_stages.(i).sx_tasks

let sweep_graph_stage t i tasks =
  sweep_stage_tasks t (graph_exec t).gx_stages.(i) tasks

let step_graph t =
  let gx = graph_exec t in
  begin_step t;
  Array.iter (fun sx -> sweep_stage_tasks t sx sx.sx_tasks) gx.gx_stages;
  finish_step t

let step t =
  match t.graph with
  | Some _ -> step_graph t
  | None ->
      begin_step t;
      sweep_tasks t t.tiles;
      finish_step t

let run t n =
  for _ = 1 to n do
    step t
  done
