(* Grid-reduction executor. Bit-stability contract (see reduction.mli):
   sequential row-major partial per task, fixed pairwise combine tree over
   the task index. The interpreter reference below and the Jit reduce
   emitters fold in exactly the same order. *)

open Msc_ir

type t = {
  shape : int array;
  halo : int array;
  strides : int array;
  tasks : (int array * int array) array;
  partials : float array;
  pool : Msc_util.Domain_pool.t;
  compiled_fn : Backend.reduce_fn option;
  fallback : string option;
}

let tasks t = t.tasks

let partial ~op ?with_ (a : Grid.t) ~lo ~hi =
  let b =
    match (with_, (op : Reduce.op)) with
    | Some g, _ ->
        if g.Grid.shape <> a.Grid.shape || g.Grid.halo <> a.Grid.halo then
          invalid_arg "Reduction.partial: with_ grid geometry mismatch";
        g
    | None, Dot -> invalid_arg "Reduction.partial: Dot needs ~with_"
    | None, _ -> a
  in
  let nd = Array.length a.Grid.shape in
  let last = nd - 1 in
  let ad = a.Grid.data and bd = b.Grid.data in
  let halo = a.Grid.halo and strides = a.Grid.strides in
  let len = hi.(last) - lo.(last) in
  let acc = ref (Reduce.identity op) in
  if len > 0 then begin
    let coord = Array.copy lo in
    let stride_last = strides.(last) in
    let rec rows d =
      if d = last then begin
        let base = ref 0 in
        for e = 0 to last do
          let c = if e = last then lo.(last) else coord.(e) in
          base := !base + ((c + halo.(e)) * strides.(e))
        done;
        let base = !base in
        match (op : Reduce.op) with
        | Sum ->
            for c = 0 to len - 1 do
              let i = base + (c * stride_last) in
              acc := !acc +. Array.unsafe_get ad i
            done
        | Dot ->
            for c = 0 to len - 1 do
              let i = base + (c * stride_last) in
              acc := !acc +. (Array.unsafe_get ad i *. Array.unsafe_get bd i)
            done
        | Norm2 ->
            for c = 0 to len - 1 do
              let i = base + (c * stride_last) in
              let v = Array.unsafe_get ad i in
              acc := !acc +. (v *. v)
            done
        | Max_abs ->
            for c = 0 to len - 1 do
              let i = base + (c * stride_last) in
              let v = Float.abs (Array.unsafe_get ad i) in
              if v > !acc then acc := v
            done
      end
      else
        for c = lo.(d) to hi.(d) - 1 do
          coord.(d) <- c;
          rows (d + 1)
        done
    in
    rows 0
  end;
  !acc

let create ?(config = Exec.Config.default) ?tasks (g : Grid.t) =
  let shape = Array.copy g.Grid.shape in
  let halo = Array.copy g.Grid.halo in
  let strides = Array.copy g.Grid.strides in
  let nd = Array.length shape in
  let tasks =
    match tasks with
    | Some ts -> ts
    | None -> [| (Array.make nd 0, Array.copy shape) |]
  in
  Array.iter
    (fun (lo, hi) ->
      if Array.length lo <> nd || Array.length hi <> nd then
        invalid_arg "Reduction.create: task rank mismatch";
      for d = 0 to nd - 1 do
        if lo.(d) < 0 || hi.(d) > shape.(d) || lo.(d) > hi.(d) then
          invalid_arg "Reduction.create: task box outside the interior"
      done)
    tasks;
  let compiled_fn, fallback =
    match config.Exec.Config.backend with
    | Backend.Interp -> (None, None)
    | (Backend.Native_ocaml | Backend.Compiled_c) as b -> (
        match Jit.compile_reduce ~backend:b ~shape ~halo ~strides with
        | Ok fn -> (Some fn, None)
        | Error msg -> (None, Some msg))
  in
  {
    shape;
    halo;
    strides;
    tasks;
    partials = Array.make (max 1 (Array.length tasks)) 0.;
    pool = config.Exec.Config.pool;
    compiled_fn;
    fallback;
  }

let compiled t = Option.is_some t.compiled_fn
let fallback t = t.fallback

let geom_ok t (g : Grid.t) = g.Grid.shape = t.shape && g.Grid.halo = t.halo

let run_raw t ~op ?with_ (a : Grid.t) =
  if not (geom_ok t a) then invalid_arg "Reduction.run: grid geometry mismatch";
  (match with_ with
  | Some g when not (geom_ok t g) ->
      invalid_arg "Reduction.run: with_ grid geometry mismatch"
  | _ -> ());
  let b_data =
    match (with_, (op : Reduce.op)) with
    | Some g, _ -> g.Grid.data
    | None, Dot -> invalid_arg "Reduction.run: Dot needs ~with_"
    | None, _ -> a.Grid.data
  in
  let n = Array.length t.tasks in
  if n = 0 then Reduce.identity op
  else begin
    let fill i =
      let lo, hi = t.tasks.(i) in
      t.partials.(i) <-
        (match t.compiled_fn with
        | Some fn -> fn (Reduce.code op) a.Grid.data b_data lo hi
        | None -> partial ~op ?with_ a ~lo ~hi)
    in
    if n > 1 then Msc_util.Domain_pool.parallel_for t.pool ~lo:0 ~hi:n fill
    else fill 0;
    Reduce.tree_combine (Reduce.combine op) t.partials
  end

let run t ~op ?with_ (a : Grid.t) =
  Reduce.finalize op (run_raw t ~op ?with_ a)
