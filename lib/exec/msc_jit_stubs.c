/* Stubs behind the compiled-kernel backends (lib/exec/jit.ml):
 *
 * - msc_jit_dlopen: load a kernel shared object produced by the C backend
 *   and resolve its entry point, returned as a nativeint function pointer.
 * - msc_jit_call: invoke a loaded C kernel with the uniform calling
 *   convention of Backend.kernel_fn. Grid data arrays are OCaml flat float
 *   arrays passed as double*; lo/hi/aux are unpacked into C locals before
 *   the call, so the kernel only ever sees raw C data.
 * - msc_jit_call_sweep: invoke a loaded fused whole-sweep kernel
 *   (Backend.sweep_fn) — one source array per stencil term plus the
 *   concatenated aux slots, unpacked the same way.
 * - msc_jit_named_value: fetch the closure a Dynlink-loaded OCaml kernel
 *   registered through Callback.register.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/callback.h>

#include <dlfcn.h>
#include <string.h>

typedef void (*msc_kernel_t)(long wb, double scale, const double *src,
                             double *dst, const double **aux, const long *lo,
                             const long *hi);

CAMLprim value msc_jit_dlopen(value path, value sym)
{
  CAMLparam2(path, sym);
  void *handle;
  void *fn;
  handle = dlopen(String_val(path), RTLD_NOW | RTLD_LOCAL);
  if (handle == NULL) {
    const char *err = dlerror();
    caml_failwith(err == NULL ? "dlopen failed" : err);
  }
  fn = dlsym(handle, String_val(sym));
  if (fn == NULL) {
    dlclose(handle);
    caml_failwith("msc_jit_dlopen: kernel symbol not found");
  }
  /* The handle is deliberately leaked: kernels stay loaded for the process
     lifetime (the in-memory cache in jit.ml never unloads them). */
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

#define MSC_JIT_MAX 64

CAMLprim value msc_jit_call_native(value fn, value wb, value scale, value src,
                                   value dst, value aux, value lo, value hi)
{
  const double *auxp[MSC_JIT_MAX];
  long lov[MSC_JIT_MAX], hiv[MSC_JIT_MAX];
  mlsize_t naux = Wosize_val(aux);
  mlsize_t nd = Wosize_val(lo);
  mlsize_t i;
  if (naux > MSC_JIT_MAX || nd > MSC_JIT_MAX || Wosize_val(hi) != nd)
    caml_invalid_argument("msc_jit_call: rank or aux count out of range");
  for (i = 0; i < naux; i++)
    auxp[i] = (const double *)Op_val(Field(aux, i));
  for (i = 0; i < nd; i++) {
    lov[i] = Long_val(Field(lo, i));
    hiv[i] = Long_val(Field(hi, i));
  }
  ((msc_kernel_t)Nativeint_val(fn))(Long_val(wb), Double_val(scale),
                                    (const double *)Op_val(src),
                                    (double *)Op_val(dst), auxp, lov, hiv);
  return Val_unit;
}

CAMLprim value msc_jit_call_bytecode(value *argv, int argn)
{
  (void)argn;
  return msc_jit_call_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6], argv[7]);
}

typedef void (*msc_sweep_t)(long wb, const double **srcs, double *dst,
                            const double **aux, const long *lo,
                            const long *hi);

CAMLprim value msc_jit_call_sweep_native(value fn, value wb, value srcs,
                                         value dst, value aux, value lo,
                                         value hi)
{
  const double *srcp[MSC_JIT_MAX];
  const double *auxp[MSC_JIT_MAX];
  long lov[MSC_JIT_MAX], hiv[MSC_JIT_MAX];
  mlsize_t nsrc = Wosize_val(srcs);
  mlsize_t naux = Wosize_val(aux);
  mlsize_t nd = Wosize_val(lo);
  mlsize_t i;
  if (nsrc > MSC_JIT_MAX || naux > MSC_JIT_MAX || nd > MSC_JIT_MAX ||
      Wosize_val(hi) != nd)
    caml_invalid_argument("msc_jit_call_sweep: rank, term or aux count out of range");
  for (i = 0; i < nsrc; i++)
    srcp[i] = (const double *)Op_val(Field(srcs, i));
  for (i = 0; i < naux; i++)
    auxp[i] = (const double *)Op_val(Field(aux, i));
  for (i = 0; i < nd; i++) {
    lov[i] = Long_val(Field(lo, i));
    hiv[i] = Long_val(Field(hi, i));
  }
  ((msc_sweep_t)Nativeint_val(fn))(Long_val(wb), srcp,
                                   (double *)Op_val(dst), auxp, lov, hiv);
  return Val_unit;
}

CAMLprim value msc_jit_call_sweep_bytecode(value *argv, int argn)
{
  (void)argn;
  return msc_jit_call_sweep_native(argv[0], argv[1], argv[2], argv[3],
                                   argv[4], argv[5], argv[6]);
}

typedef double (*msc_reduce_t)(long op, const double *a, const double *b,
                               const long *lo, const long *hi);

CAMLprim value msc_jit_call_reduce_native(value fn, value op, value a, value b,
                                          value lo, value hi)
{
  long lov[MSC_JIT_MAX], hiv[MSC_JIT_MAX];
  mlsize_t nd = Wosize_val(lo);
  mlsize_t i;
  double r;
  if (nd > MSC_JIT_MAX || Wosize_val(hi) != nd)
    caml_invalid_argument("msc_jit_call_reduce: rank out of range");
  for (i = 0; i < nd; i++) {
    lov[i] = Long_val(Field(lo, i));
    hiv[i] = Long_val(Field(hi, i));
  }
  r = ((msc_reduce_t)Nativeint_val(fn))(Long_val(op),
                                        (const double *)Op_val(a),
                                        (const double *)Op_val(b), lov, hiv);
  return caml_copy_double(r);
}

CAMLprim value msc_jit_call_reduce_bytecode(value *argv, int argn)
{
  (void)argn;
  return msc_jit_call_reduce_native(argv[0], argv[1], argv[2], argv[3],
                                    argv[4], argv[5]);
}

CAMLprim value msc_jit_named_value(value name)
{
  const value *v = caml_named_value(String_val(name));
  if (v == NULL) caml_raise_not_found();
  return *v;
}
