(** The unified execution configuration: one record answering the three
    questions every entry point used to take as scattered optional
    arguments — {e how} kernel sweeps run (the {!Backend}), {e how} halos
    are exchanged when distributed (the [engine]), and {e on what} domains
    parallel regions run (the pool).

    [Runtime.create], [Distributed.create], [Distributed.validate],
    [Verify.check] and [Msc.Pipeline] all accept a [?config]; the former
    positional/optional knobs ([?pool], [?engine] on [Distributed],
    [~workers] on [Pipeline.make]) are gone. Fields irrelevant to an entry
    point are ignored and documented there (a single-node [Runtime] has no
    halo engine; the processor simulators model the compiled artifact
    regardless of the host backend). *)

module Backend = Backend

type engine =
  | Bulk_synchronous
      (** exchange all faces, then compute — the §4.2 baseline *)
  | Overlapped
      (** interior compute overlapped with asynchronous face exchange *)
  | Temporal_blocked of { depth : int }
      (** deep-halo communication-avoiding blocking: one exchange per
          [depth] steps *)

module Config : sig
  type t = {
    backend : Backend.t;  (** kernel execution backend *)
    engine : engine;  (** halo-exchange engine (distributed only) *)
    pool : Msc_util.Domain_pool.t;
        (** worker pool for parallel sweeps; callers keep ownership
            (create/shutdown), entry points only dispatch on it *)
    fuse : bool;
        (** compile one fused whole-sweep kernel per plan instead of one
            kernel per term (compiled backends only; ignored by [Interp]).
            On by default — [false] restores the PR 6 per-term kernels,
            mainly for benchmarking the fusion win *)
  }

  val default : t
  (** [Interp] backend, [Overlapped] engine, the sequential pool, fused
      sweeps enabled. *)

  val make :
    ?backend:Backend.t ->
    ?engine:engine ->
    ?pool:Msc_util.Domain_pool.t ->
    ?fuse:bool ->
    unit ->
    t
  (** {!default} with overrides. *)
end
