type report = {
  stencil_name : string;
  steps : int;
  max_rel_error : float;
  tolerance : float;
  ok : bool;
}

let check ?schedule ?config ?init ?aux_init ?bc ?trace ~steps (st : Msc_ir.Stencil.t) =
  let fast = Runtime.create ?schedule ?config ?init ?aux_init ?bc ?trace st in
  let naive = Reference.create ?init ?aux_init ?bc st in
  Runtime.run fast steps;
  Reference.run naive steps;
  let err =
    Grid.max_rel_error ~reference:(Reference.current naive) (Runtime.current fast)
  in
  let tolerance = Msc_ir.Dtype.tolerance st.Msc_ir.Stencil.grid.Msc_ir.Tensor.dtype in
  {
    stencil_name = st.Msc_ir.Stencil.name;
    steps;
    max_rel_error = err;
    tolerance;
    ok = err <= tolerance;
  }

let check_grids ~dtype ~reference g =
  Grid.max_rel_error ~reference g <= Msc_ir.Dtype.tolerance dtype

let pp_report ppf r =
  Format.fprintf ppf "%s: %d steps, max rel err %.3g (tol %.1g) -> %s" r.stencil_name
    r.steps r.max_rel_error r.tolerance
    (if r.ok then "OK" else "FAIL")
