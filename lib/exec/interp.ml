open Msc_ir

(* One additive term of a bilinear kernel: coeff * Aux[p+aux_delta]? *
   In[p+in_delta]?. At least one of the two accesses is present. *)
type bi_term = {
  coeff : float;
  aux_name : string option;
  aux_delta : int;
  in_delta : int;
  has_input : bool;
}

type mode =
  | Taps of { coeffs : float array; deltas : int array }
  | Bilinear of bi_term array
  | Tree of Expr.t

type t = {
  kernel : Kernel.t;
  mode : mode;
  shape : int array;
  halo : int array;
  strides : int array;
}

(* ------------------------------------------------------------------ *)
(* Bilinear decomposition *)

exception Not_bilinear

(* A partial term during decomposition. *)
type partial = {
  c : float;
  aux : Expr.access option;
  inp : Expr.access option;
}

let bilinear_terms ~bindings ~input_name e =
  let mul_partial a b =
    let aux =
      match (a.aux, b.aux) with
      | Some _, Some _ -> raise Not_bilinear
      | (Some _ as x), None | None, x -> x
    in
    let inp =
      match (a.inp, b.inp) with
      | Some _, Some _ -> raise Not_bilinear
      | (Some _ as x), None | None, x -> x
    in
    { c = a.c *. b.c; aux; inp }
  in
  let rec go (e : Expr.t) : partial list =
    match e with
    | Expr.Fconst x -> [ { c = x; aux = None; inp = None } ]
    | Expr.Iconst n -> [ { c = float_of_int n; aux = None; inp = None } ]
    | Expr.Param name -> (
        match List.assoc_opt name bindings with
        | Some v -> [ { c = v; aux = None; inp = None } ]
        | None -> raise Not_bilinear)
    | Expr.Var _ -> raise Not_bilinear
    | Expr.Access a ->
        if String.equal a.Expr.tensor input_name then
          [ { c = 1.0; aux = None; inp = Some a } ]
        else [ { c = 1.0; aux = Some a; inp = None } ]
    | Expr.Unop (Expr.Neg, a) -> List.map (fun t -> { t with c = -.t.c }) (go a)
    | Expr.Unop ((Expr.Abs | Expr.Sqrt | Expr.Exp | Expr.Sin | Expr.Cos), _) ->
        raise Not_bilinear
    | Expr.Binop (Expr.Add, a, b) -> go a @ go b
    | Expr.Binop (Expr.Sub, a, b) ->
        go a @ List.map (fun t -> { t with c = -.t.c }) (go b)
    | Expr.Binop (Expr.Mul, a, b) ->
        let ta = go a and tb = go b in
        List.concat_map (fun x -> List.map (mul_partial x) tb) ta
    | Expr.Binop (Expr.Div, a, b) -> (
        match go b with
        | [ { c; aux = None; inp = None } ] when c <> 0.0 ->
            List.map (fun t -> { t with c = t.c /. c }) (go a)
        | _ -> raise Not_bilinear)
    | Expr.Binop ((Expr.Min | Expr.Max), _, _) | Expr.Call _ -> raise Not_bilinear
  in
  match go e with
  | exception Not_bilinear -> None
  | partials ->
      (* A nonzero pure-constant part is not representable. *)
      let constant =
        List.fold_left
          (fun acc p -> if p.aux = None && p.inp = None then acc +. p.c else acc)
          0.0 partials
      in
      if constant <> 0.0 then None
      else
        Some (List.filter (fun p -> p.aux <> None || p.inp <> None) partials)

(* ------------------------------------------------------------------ *)

let flat_delta strides offsets =
  let delta = ref 0 in
  Array.iteri (fun d off -> delta := !delta + (off * strides.(d))) offsets;
  !delta

let mode_name t =
  match t.mode with Taps _ -> "taps" | Bilinear _ -> "bilinear" | Tree _ -> "tree"

let compile ?(trace = Msc_trace.disabled) kernel ~geometry:(g : Grid.t) =
  let ts0 = Msc_trace.begin_span trace in
  if Kernel.ndim kernel <> Grid.ndim g then
    invalid_arg "Interp.compile: rank mismatch";
  if kernel.Kernel.input.Tensor.shape <> g.Grid.shape then
    invalid_arg "Interp.compile: shape mismatch";
  let mode =
    match Kernel.taps kernel with
    | Some taps ->
        let n = List.length taps in
        let coeffs = Array.make n 0.0 and deltas = Array.make n 0 in
        List.iteri
          (fun k (tap : Expr.tap) ->
            coeffs.(k) <- tap.Expr.coeff;
            deltas.(k) <- flat_delta g.Grid.strides tap.Expr.offsets)
          taps;
        Taps { coeffs; deltas }
    | None -> (
        match
          bilinear_terms ~bindings:kernel.Kernel.bindings
            ~input_name:kernel.Kernel.input.Tensor.name kernel.Kernel.expr
        with
        | Some partials ->
            Bilinear
              (Array.of_list
                 (List.map
                    (fun p ->
                      {
                        coeff = p.c;
                        aux_name = Option.map (fun (a : Expr.access) -> a.Expr.tensor) p.aux;
                        aux_delta =
                          (match p.aux with
                          | Some a -> flat_delta g.Grid.strides a.Expr.offsets
                          | None -> 0);
                        in_delta =
                          (match p.inp with
                          | Some a -> flat_delta g.Grid.strides a.Expr.offsets
                          | None -> 0);
                        has_input = p.inp <> None;
                      })
                    partials))
        | None -> Tree kernel.Kernel.expr)
  in
  let t =
    { kernel; mode; shape = g.Grid.shape; halo = g.Grid.halo; strides = g.Grid.strides }
  in
  Msc_trace.end_span trace "interp.compile" ts0;
  Msc_trace.add trace ("interp.mode." ^ mode_name t) 1.0;
  Msc_trace.add trace "interp.kernel_points" (float_of_int (Kernel.points kernel));
  t

let kernel t = t.kernel
let is_linear t = match t.mode with Taps _ -> true | Bilinear _ | Tree _ -> false
let is_bilinear t = match t.mode with Bilinear _ -> true | Taps _ | Tree _ -> false

let check_geometry t name (g : Grid.t) =
  if g.Grid.shape <> t.shape || g.Grid.strides <> t.strides then
    invalid_arg (Printf.sprintf "Interp: %s grid differs from compiled geometry" name)

let check_grids t ~(src : Grid.t) ~(dst : Grid.t) =
  check_geometry t "src" src;
  check_geometry t "dst" dst;
  if src.Grid.data == dst.Grid.data then invalid_arg "Interp: src aliases dst"

let check_range t ~lo ~hi =
  let nd = Array.length t.shape in
  if Array.length lo <> nd || Array.length hi <> nd then
    invalid_arg "Interp: range rank mismatch";
  Array.iteri
    (fun d l ->
      if l < 0 || hi.(d) > t.shape.(d) then invalid_arg "Interp: range out of bounds")
    lo

let aux_data t ~aux name =
  match List.assoc_opt name aux with
  | Some (g : Grid.t) ->
      check_geometry t ("aux " ^ name) g;
      g.Grid.data
  | None -> invalid_arg (Printf.sprintf "Interp: kernel reads aux grid %s but it was not supplied" name)

(* Generic n-D walker over [lo, hi): invokes [row base len] for each
   innermost row, where [base] is the flat index of the first element. *)
let iter_rows t ~lo ~hi row =
  let nd = Array.length t.shape in
  let last = nd - 1 in
  let row_len = hi.(last) - lo.(last) in
  if row_len > 0 then begin
    let coord = Array.copy lo in
    let flat_of coord =
      let acc = ref 0 in
      for d = 0 to nd - 1 do
        acc := !acc + ((coord.(d) + t.halo.(d)) * t.strides.(d))
      done;
      !acc
    in
    let rec go d =
      if d = last then row (flat_of coord) row_len
      else
        for k = lo.(d) to hi.(d) - 1 do
          coord.(d) <- k;
          go (d + 1)
        done
    in
    coord.(last) <- lo.(last);
    go 0
  end

let eval_tree t expr ~(src : Grid.t) ~aux coord =
  let load (a : Expr.access) =
    let data =
      if String.equal a.Expr.tensor t.kernel.Kernel.input.Tensor.name then src.Grid.data
      else aux_data t ~aux a.Expr.tensor
    in
    let flat = ref 0 in
    for d = 0 to Array.length coord - 1 do
      flat := !flat + ((coord.(d) + a.Expr.offsets.(d) + t.halo.(d)) * t.strides.(d))
    done;
    data.(!flat)
  in
  let var name =
    let rec find d = function
      | [] -> invalid_arg (Printf.sprintf "Interp: unknown loop var %s" name)
      | v :: rest -> if String.equal v name then float_of_int coord.(d) else find (d + 1) rest
    in
    find 0 t.kernel.Kernel.index_vars
  in
  Expr.eval ~bindings:t.kernel.Kernel.bindings ~load ~var expr

let sweep ?(aux = []) t ~src ~dst ~lo ~hi ~write =
  check_grids t ~src ~dst;
  check_range t ~lo ~hi;
  match t.mode with
  | Taps { coeffs; deltas } ->
      let ntaps = Array.length coeffs in
      let sdata = src.Grid.data and ddata = dst.Grid.data in
      iter_rows t ~lo ~hi (fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            let acc = ref 0.0 in
            for k = 0 to ntaps - 1 do
              acc := !acc +. (coeffs.(k) *. Array.unsafe_get sdata (idx + deltas.(k)))
            done;
            write ddata idx !acc
          done)
  | Bilinear terms ->
      (* Resolve each term's aux array once per sweep. *)
      let nterms = Array.length terms in
      let arrays =
        Array.map
          (fun term ->
            match term.aux_name with
            | Some name -> aux_data t ~aux name
            | None -> src.Grid.data)
          terms
      in
      let sdata = src.Grid.data and ddata = dst.Grid.data in
      iter_rows t ~lo ~hi (fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            let acc = ref 0.0 in
            for k = 0 to nterms - 1 do
              let term = Array.unsafe_get terms k in
              let factor =
                match term.aux_name with
                | Some _ -> Array.unsafe_get arrays.(k) (idx + term.aux_delta)
                | None -> 1.0
              in
              let input_v =
                if term.has_input then Array.unsafe_get sdata (idx + term.in_delta)
                else 1.0
              in
              acc := !acc +. (term.coeff *. factor *. input_v)
            done;
            write ddata idx !acc
          done)
  | Tree expr ->
      let nd = Array.length t.shape in
      let coord = Array.copy lo in
      let last = nd - 1 in
      let rec go d =
        if d = nd then begin
          let flat = ref 0 in
          for k = 0 to last do
            flat := !flat + ((coord.(k) + t.halo.(k)) * t.strides.(k))
          done;
          write dst.Grid.data !flat (eval_tree t expr ~src ~aux coord)
        end
        else
          for k = lo.(d) to hi.(d) - 1 do
            coord.(d) <- k;
            go (d + 1)
          done
      in
      go 0

let apply_range ?aux t ~src ~dst ~lo ~hi =
  sweep ?aux t ~src ~dst ~lo ~hi ~write:(fun data idx v -> Array.unsafe_set data idx v)

let accumulate_range ?aux t ~scale ~src ~dst ~lo ~hi =
  sweep ?aux t ~src ~dst ~lo ~hi ~write:(fun data idx v ->
      Array.unsafe_set data idx (Array.unsafe_get data idx +. (scale *. v)))

let apply ?aux t ~src ~dst =
  let lo = Array.make (Array.length t.shape) 0 in
  apply_range ?aux t ~src ~dst ~lo ~hi:t.shape

let identity_accumulate_range ~scale ~(src : Grid.t) ~(dst : Grid.t) ~lo ~hi =
  if src.Grid.shape <> dst.Grid.shape || src.Grid.strides <> dst.Grid.strides then
    invalid_arg "identity_accumulate_range: geometry mismatch";
  let nd = Array.length src.Grid.shape in
  let coord = Array.copy lo in
  let last = nd - 1 in
  let row_len = hi.(last) - lo.(last) in
  if row_len > 0 then begin
    let flat_of coord =
      let acc = ref 0 in
      for d = 0 to nd - 1 do
        acc := !acc + ((coord.(d) + src.Grid.halo.(d)) * src.Grid.strides.(d))
      done;
      !acc
    in
    coord.(last) <- lo.(last);
    let sdata = src.Grid.data and ddata = dst.Grid.data in
    let rec go d =
      if d = last then begin
        let base = flat_of coord in
        for c = 0 to row_len - 1 do
          ddata.(base + c) <- ddata.(base + c) +. (scale *. sdata.(base + c))
        done
      end
      else
        for k = lo.(d) to hi.(d) - 1 do
          coord.(d) <- k;
          go (d + 1)
        done
    in
    go 0
  end
