open Msc_ir

(* One additive term of a bilinear kernel: coeff * Aux[p+aux_delta]? *
   In[p+in_delta]?. At least one of the two accesses is present. *)
type bi_term = {
  coeff : float;
  aux_name : string option;
  aux_delta : int;
  in_delta : int;
  has_input : bool;
}

(* Term kinds for the bilinear inner loop, precomputed at compile time so
   the per-point dispatch is an int match instead of option/string tests. *)
let kind_aux_input = 0
let kind_input_only = 1
let kind_aux_only = 2

type bilinear = {
  terms : bi_term array;  (* retained for introspection / the generic path *)
  bl_coeffs : float array;
  bl_kinds : int array;
  bl_aux_names : string option array;
  bl_aux_deltas : int array;
  bl_in_deltas : int array;
}

type mode =
  | Taps of { coeffs : float array; deltas : int array }
  | Bilinear of bilinear
  | Tree of Expr.t

type t = {
  kernel : Kernel.t;
  mode : mode;
  shape : int array;
  halo : int array;
  strides : int array;
  range_slack : int array;
      (* how far a sweep range may extend past the interior per dimension:
         halo minus the kernel's own radius. The cells a halo-extended sweep
         writes still read strictly inside the padded box, which is what the
         temporal-blocking engine's ghost-zone recompute relies on. Zero for
         the common halo = radius geometry. *)
}

(* How a sweep writes its per-point kernel value into [dst]. [Apply] and
   [Apply_scaled] overwrite (the write-through fast path: the first stencil
   term needs no prior zero fill); [Accumulate] adds (every later term). *)
type writeback = Apply | Apply_scaled of float | Accumulate of float

(* ------------------------------------------------------------------ *)
(* Bilinear decomposition *)

exception Not_bilinear

(* A partial term during decomposition. *)
type partial = {
  c : float;
  aux : Expr.access option;
  inp : Expr.access option;
}

let bilinear_terms ~bindings ~input_name e =
  let mul_partial a b =
    let aux =
      match (a.aux, b.aux) with
      | Some _, Some _ -> raise Not_bilinear
      | (Some _ as x), None | None, x -> x
    in
    let inp =
      match (a.inp, b.inp) with
      | Some _, Some _ -> raise Not_bilinear
      | (Some _ as x), None | None, x -> x
    in
    { c = a.c *. b.c; aux; inp }
  in
  let rec go (e : Expr.t) : partial list =
    match e with
    | Expr.Fconst x -> [ { c = x; aux = None; inp = None } ]
    | Expr.Iconst n -> [ { c = float_of_int n; aux = None; inp = None } ]
    | Expr.Param name -> (
        match List.assoc_opt name bindings with
        | Some v -> [ { c = v; aux = None; inp = None } ]
        | None -> raise Not_bilinear)
    | Expr.Var _ -> raise Not_bilinear
    | Expr.Access a ->
        if String.equal a.Expr.tensor input_name then
          [ { c = 1.0; aux = None; inp = Some a } ]
        else [ { c = 1.0; aux = Some a; inp = None } ]
    | Expr.Unop (Expr.Neg, a) -> List.map (fun t -> { t with c = -.t.c }) (go a)
    | Expr.Unop ((Expr.Abs | Expr.Sqrt | Expr.Exp | Expr.Sin | Expr.Cos), _) ->
        raise Not_bilinear
    | Expr.Binop (Expr.Add, a, b) -> go a @ go b
    | Expr.Binop (Expr.Sub, a, b) ->
        go a @ List.map (fun t -> { t with c = -.t.c }) (go b)
    | Expr.Binop (Expr.Mul, a, b) ->
        let ta = go a and tb = go b in
        List.concat_map (fun x -> List.map (mul_partial x) tb) ta
    | Expr.Binop (Expr.Div, a, b) -> (
        match go b with
        | [ { c; aux = None; inp = None } ] when c <> 0.0 ->
            List.map (fun t -> { t with c = t.c /. c }) (go a)
        | _ -> raise Not_bilinear)
    | Expr.Binop ((Expr.Min | Expr.Max), _, _) | Expr.Call _ -> raise Not_bilinear
  in
  match go e with
  | exception Not_bilinear -> None
  | partials ->
      (* A nonzero pure-constant part is not representable. *)
      let constant =
        List.fold_left
          (fun acc p -> if p.aux = None && p.inp = None then acc +. p.c else acc)
          0.0 partials
      in
      if constant <> 0.0 then None
      else
        Some (List.filter (fun p -> p.aux <> None || p.inp <> None) partials)

(* ------------------------------------------------------------------ *)

let flat_delta strides offsets =
  let delta = ref 0 in
  Array.iteri (fun d off -> delta := !delta + (off * strides.(d))) offsets;
  !delta

let mode_name t =
  match t.mode with Taps _ -> "taps" | Bilinear _ -> "bilinear" | Tree _ -> "tree"

let make_bilinear terms =
  let n = Array.length terms in
  {
    terms;
    bl_coeffs = Array.map (fun tm -> tm.coeff) terms;
    bl_kinds =
      Array.init n (fun k ->
          let tm = terms.(k) in
          match (tm.aux_name, tm.has_input) with
          | Some _, true -> kind_aux_input
          | None, _ -> kind_input_only
          | Some _, false -> kind_aux_only);
    bl_aux_names = Array.map (fun tm -> tm.aux_name) terms;
    bl_aux_deltas = Array.map (fun tm -> tm.aux_delta) terms;
    bl_in_deltas = Array.map (fun tm -> tm.in_delta) terms;
  }

let compile ?(trace = Msc_trace.disabled) ?(force_tree = false) kernel
    ~geometry:(g : Grid.t) =
  let ts0 = Msc_trace.begin_span trace in
  if Kernel.ndim kernel <> Grid.ndim g then
    invalid_arg "Interp.compile: rank mismatch";
  if kernel.Kernel.input.Tensor.shape <> g.Grid.shape then
    invalid_arg "Interp.compile: shape mismatch";
  let mode =
    if force_tree then Tree kernel.Kernel.expr
    else
    match Kernel.taps kernel with
    | Some taps ->
        let n = List.length taps in
        let coeffs = Array.make n 0.0 and deltas = Array.make n 0 in
        List.iteri
          (fun k (tap : Expr.tap) ->
            coeffs.(k) <- tap.Expr.coeff;
            deltas.(k) <- flat_delta g.Grid.strides tap.Expr.offsets)
          taps;
        Taps { coeffs; deltas }
    | None -> (
        match
          bilinear_terms ~bindings:kernel.Kernel.bindings
            ~input_name:kernel.Kernel.input.Tensor.name kernel.Kernel.expr
        with
        | Some partials ->
            Bilinear
              (make_bilinear
                 (Array.of_list
                    (List.map
                       (fun p ->
                         {
                           coeff = p.c;
                           aux_name = Option.map (fun (a : Expr.access) -> a.Expr.tensor) p.aux;
                           aux_delta =
                             (match p.aux with
                             | Some a -> flat_delta g.Grid.strides a.Expr.offsets
                             | None -> 0);
                           in_delta =
                             (match p.inp with
                             | Some a -> flat_delta g.Grid.strides a.Expr.offsets
                             | None -> 0);
                           has_input = p.inp <> None;
                         })
                       partials)))
        | None -> Tree kernel.Kernel.expr)
  in
  let kr = Kernel.radius kernel in
  let t =
    {
      kernel;
      mode;
      shape = g.Grid.shape;
      halo = g.Grid.halo;
      strides = g.Grid.strides;
      range_slack = Array.mapi (fun d h -> max 0 (h - kr.(d))) g.Grid.halo;
    }
  in
  Msc_trace.end_span trace "interp.compile" ts0;
  Msc_trace.add trace ("interp.mode." ^ mode_name t) 1.0;
  Msc_trace.add trace "interp.kernel_points" (float_of_int (Kernel.points kernel));
  t

let kernel t = t.kernel
let is_linear t = match t.mode with Taps _ -> true | Bilinear _ | Tree _ -> false
let is_bilinear t = match t.mode with Bilinear _ -> true | Taps _ | Tree _ -> false

(* ------------------------------------------------------------------ *)
(* Introspection for the compiled backends: everything the JIT emitters
   need to reproduce a sweep exactly (coefficients, flat deltas, term kinds
   and the compiled geometry). *)

type taps_spec = { taps_coeffs : float array; taps_deltas : int array }

type bilinear_spec = {
  bil_coeffs : float array;
  bil_kinds : int array;
  bil_aux_names : string option array;
  bil_aux_deltas : int array;
  bil_in_deltas : int array;
}

type spec =
  | Spec_taps of taps_spec
  | Spec_bilinear of bilinear_spec
  | Spec_tree

let spec t =
  match t.mode with
  | Taps { coeffs; deltas } ->
      Spec_taps { taps_coeffs = coeffs; taps_deltas = deltas }
  | Bilinear b ->
      Spec_bilinear
        {
          bil_coeffs = b.bl_coeffs;
          bil_kinds = b.bl_kinds;
          bil_aux_names = b.bl_aux_names;
          bil_aux_deltas = b.bl_aux_deltas;
          bil_in_deltas = b.bl_in_deltas;
        }
  | Tree _ -> Spec_tree

let shape t = t.shape
let halo t = t.halo
let strides t = t.strides

let check_geometry t name (g : Grid.t) =
  if g.Grid.shape <> t.shape || g.Grid.strides <> t.strides then
    invalid_arg (Printf.sprintf "Interp: %s grid differs from compiled geometry" name)

let check_grids t ~(src : Grid.t) ~(dst : Grid.t) =
  check_geometry t "src" src;
  check_geometry t "dst" dst;
  if src.Grid.data == dst.Grid.data then invalid_arg "Interp: src aliases dst"

let check_range t ~lo ~hi =
  let nd = Array.length t.shape in
  if Array.length lo <> nd || Array.length hi <> nd then
    invalid_arg "Interp: range rank mismatch";
  Array.iteri
    (fun d l ->
      (* Ranges may grow into the halo as far as the kernel's reads stay
         inside the padded box (slack = halo - kernel radius): the deep-halo
         temporal engine sweeps such extended ranges to recompute ghost
         cells. With halo = radius this degrades to the interior-only
         check. *)
      if l < -t.range_slack.(d) || hi.(d) > t.shape.(d) + t.range_slack.(d) then
        invalid_arg "Interp: range out of bounds")
    lo

let aux_data t ~aux name =
  match List.assoc_opt name aux with
  | Some (g : Grid.t) ->
      check_geometry t ("aux " ^ name) g;
      g.Grid.data
  | None -> invalid_arg (Printf.sprintf "Interp: kernel reads aux grid %s but it was not supplied" name)

(* Generic n-D row walker over [lo, hi): invokes [row base len] for each
   innermost row, where [base] is the flat index of the first element. The
   innermost dimension is contiguous (stride 1 by construction), so every
   inner loop below runs over [base .. base+len-1] directly. *)
let iter_rows ~shape ~halo ~strides ~lo ~hi row =
  let nd = Array.length shape in
  let last = nd - 1 in
  let row_len = hi.(last) - lo.(last) in
  if row_len > 0 then begin
    let coord = Array.copy lo in
    let flat_of coord =
      let acc = ref 0 in
      for d = 0 to nd - 1 do
        acc := !acc + ((coord.(d) + halo.(d)) * strides.(d))
      done;
      !acc
    in
    let rec go d =
      if d = last then row (flat_of coord) row_len
      else
        for k = lo.(d) to hi.(d) - 1 do
          coord.(d) <- k;
          go (d + 1)
        done
    in
    coord.(last) <- lo.(last);
    go 0
  end

let iter_rows_of t ~lo ~hi row =
  iter_rows ~shape:t.shape ~halo:t.halo ~strides:t.strides ~lo ~hi row

(* ------------------------------------------------------------------ *)
(* Taps mode: direct loops, no per-point closure. Small odd tap counts are
   the star stencils (1-D/2-D/3-D first-order: 3/5/7 points), worth fully
   unrolling. Accumulation order matches the generic path exactly (ascending
   tap index, left-associated sums), so results stay bit-identical. *)

let taps_row_generic ~coeffs ~deltas ~sdata ~ddata wb base len =
  let ntaps = Array.length coeffs in
  match wb with
  | Apply ->
      for c = 0 to len - 1 do
        let idx = base + c in
        let acc = ref 0.0 in
        for k = 0 to ntaps - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get coeffs k
               *. Array.unsafe_get sdata (idx + Array.unsafe_get deltas k))
        done;
        Array.unsafe_set ddata idx !acc
      done
  | Apply_scaled s ->
      for c = 0 to len - 1 do
        let idx = base + c in
        let acc = ref 0.0 in
        for k = 0 to ntaps - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get coeffs k
               *. Array.unsafe_get sdata (idx + Array.unsafe_get deltas k))
        done;
        Array.unsafe_set ddata idx (s *. !acc)
      done
  | Accumulate s ->
      for c = 0 to len - 1 do
        let idx = base + c in
        let acc = ref 0.0 in
        for k = 0 to ntaps - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get coeffs k
               *. Array.unsafe_get sdata (idx + Array.unsafe_get deltas k))
        done;
        Array.unsafe_set ddata idx (Array.unsafe_get ddata idx +. (s *. !acc))
      done

let sweep_taps t ~coeffs ~deltas ~(sdata : float array) ~(ddata : float array)
    ~lo ~hi wb =
  let row =
    match Array.length coeffs with
    | 3 ->
        let c0 = coeffs.(0) and c1 = coeffs.(1) and c2 = coeffs.(2) in
        let d0 = deltas.(0) and d1 = deltas.(1) and d2 = deltas.(2) in
        fun base len ->
          (match wb with
          | Apply ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  ((c0 *. Array.unsafe_get sdata (idx + d0))
                  +. (c1 *. Array.unsafe_get sdata (idx + d1))
                  +. (c2 *. Array.unsafe_get sdata (idx + d2)))
              done
          | Apply_scaled s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (s
                  *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                     +. (c1 *. Array.unsafe_get sdata (idx + d1))
                     +. (c2 *. Array.unsafe_get sdata (idx + d2))))
              done
          | Accumulate s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (Array.unsafe_get ddata idx
                  +. (s
                     *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                        +. (c1 *. Array.unsafe_get sdata (idx + d1))
                        +. (c2 *. Array.unsafe_get sdata (idx + d2)))))
              done)
    | 5 ->
        let c0 = coeffs.(0) and c1 = coeffs.(1) and c2 = coeffs.(2) in
        let c3 = coeffs.(3) and c4 = coeffs.(4) in
        let d0 = deltas.(0) and d1 = deltas.(1) and d2 = deltas.(2) in
        let d3 = deltas.(3) and d4 = deltas.(4) in
        fun base len ->
          (match wb with
          | Apply ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  ((c0 *. Array.unsafe_get sdata (idx + d0))
                  +. (c1 *. Array.unsafe_get sdata (idx + d1))
                  +. (c2 *. Array.unsafe_get sdata (idx + d2))
                  +. (c3 *. Array.unsafe_get sdata (idx + d3))
                  +. (c4 *. Array.unsafe_get sdata (idx + d4)))
              done
          | Apply_scaled s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (s
                  *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                     +. (c1 *. Array.unsafe_get sdata (idx + d1))
                     +. (c2 *. Array.unsafe_get sdata (idx + d2))
                     +. (c3 *. Array.unsafe_get sdata (idx + d3))
                     +. (c4 *. Array.unsafe_get sdata (idx + d4))))
              done
          | Accumulate s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (Array.unsafe_get ddata idx
                  +. (s
                     *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                        +. (c1 *. Array.unsafe_get sdata (idx + d1))
                        +. (c2 *. Array.unsafe_get sdata (idx + d2))
                        +. (c3 *. Array.unsafe_get sdata (idx + d3))
                        +. (c4 *. Array.unsafe_get sdata (idx + d4)))))
              done)
    | 7 ->
        let c0 = coeffs.(0) and c1 = coeffs.(1) and c2 = coeffs.(2) in
        let c3 = coeffs.(3) and c4 = coeffs.(4) and c5 = coeffs.(5) in
        let c6 = coeffs.(6) in
        let d0 = deltas.(0) and d1 = deltas.(1) and d2 = deltas.(2) in
        let d3 = deltas.(3) and d4 = deltas.(4) and d5 = deltas.(5) in
        let d6 = deltas.(6) in
        fun base len ->
          (match wb with
          | Apply ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  ((c0 *. Array.unsafe_get sdata (idx + d0))
                  +. (c1 *. Array.unsafe_get sdata (idx + d1))
                  +. (c2 *. Array.unsafe_get sdata (idx + d2))
                  +. (c3 *. Array.unsafe_get sdata (idx + d3))
                  +. (c4 *. Array.unsafe_get sdata (idx + d4))
                  +. (c5 *. Array.unsafe_get sdata (idx + d5))
                  +. (c6 *. Array.unsafe_get sdata (idx + d6)))
              done
          | Apply_scaled s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (s
                  *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                     +. (c1 *. Array.unsafe_get sdata (idx + d1))
                     +. (c2 *. Array.unsafe_get sdata (idx + d2))
                     +. (c3 *. Array.unsafe_get sdata (idx + d3))
                     +. (c4 *. Array.unsafe_get sdata (idx + d4))
                     +. (c5 *. Array.unsafe_get sdata (idx + d5))
                     +. (c6 *. Array.unsafe_get sdata (idx + d6))))
              done
          | Accumulate s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (Array.unsafe_get ddata idx
                  +. (s
                     *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                        +. (c1 *. Array.unsafe_get sdata (idx + d1))
                        +. (c2 *. Array.unsafe_get sdata (idx + d2))
                        +. (c3 *. Array.unsafe_get sdata (idx + d3))
                        +. (c4 *. Array.unsafe_get sdata (idx + d4))
                        +. (c5 *. Array.unsafe_get sdata (idx + d5))
                        +. (c6 *. Array.unsafe_get sdata (idx + d6)))))
              done)
    | 9 ->
        let c0 = coeffs.(0) and c1 = coeffs.(1) and c2 = coeffs.(2) in
        let c3 = coeffs.(3) and c4 = coeffs.(4) and c5 = coeffs.(5) in
        let c6 = coeffs.(6) and c7 = coeffs.(7) and c8 = coeffs.(8) in
        let d0 = deltas.(0) and d1 = deltas.(1) and d2 = deltas.(2) in
        let d3 = deltas.(3) and d4 = deltas.(4) and d5 = deltas.(5) in
        let d6 = deltas.(6) and d7 = deltas.(7) and d8 = deltas.(8) in
        fun base len ->
          (match wb with
          | Apply ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  ((c0 *. Array.unsafe_get sdata (idx + d0))
                  +. (c1 *. Array.unsafe_get sdata (idx + d1))
                  +. (c2 *. Array.unsafe_get sdata (idx + d2))
                  +. (c3 *. Array.unsafe_get sdata (idx + d3))
                  +. (c4 *. Array.unsafe_get sdata (idx + d4))
                  +. (c5 *. Array.unsafe_get sdata (idx + d5))
                  +. (c6 *. Array.unsafe_get sdata (idx + d6))
                  +. (c7 *. Array.unsafe_get sdata (idx + d7))
                  +. (c8 *. Array.unsafe_get sdata (idx + d8)))
              done
          | Apply_scaled s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (s
                  *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                     +. (c1 *. Array.unsafe_get sdata (idx + d1))
                     +. (c2 *. Array.unsafe_get sdata (idx + d2))
                     +. (c3 *. Array.unsafe_get sdata (idx + d3))
                     +. (c4 *. Array.unsafe_get sdata (idx + d4))
                     +. (c5 *. Array.unsafe_get sdata (idx + d5))
                     +. (c6 *. Array.unsafe_get sdata (idx + d6))
                     +. (c7 *. Array.unsafe_get sdata (idx + d7))
                     +. (c8 *. Array.unsafe_get sdata (idx + d8))))
              done
          | Accumulate s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (Array.unsafe_get ddata idx
                  +. (s
                     *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                        +. (c1 *. Array.unsafe_get sdata (idx + d1))
                        +. (c2 *. Array.unsafe_get sdata (idx + d2))
                        +. (c3 *. Array.unsafe_get sdata (idx + d3))
                        +. (c4 *. Array.unsafe_get sdata (idx + d4))
                        +. (c5 *. Array.unsafe_get sdata (idx + d5))
                        +. (c6 *. Array.unsafe_get sdata (idx + d6))
                        +. (c7 *. Array.unsafe_get sdata (idx + d7))
                        +. (c8 *. Array.unsafe_get sdata (idx + d8)))))
              done)
    | 13 ->
        let c0 = coeffs.(0) and c1 = coeffs.(1) and c2 = coeffs.(2) in
        let c3 = coeffs.(3) and c4 = coeffs.(4) and c5 = coeffs.(5) in
        let c6 = coeffs.(6) and c7 = coeffs.(7) and c8 = coeffs.(8) in
        let c9 = coeffs.(9) and c10 = coeffs.(10) and c11 = coeffs.(11) in
        let c12 = coeffs.(12) in
        let d0 = deltas.(0) and d1 = deltas.(1) and d2 = deltas.(2) in
        let d3 = deltas.(3) and d4 = deltas.(4) and d5 = deltas.(5) in
        let d6 = deltas.(6) and d7 = deltas.(7) and d8 = deltas.(8) in
        let d9 = deltas.(9) and d10 = deltas.(10) and d11 = deltas.(11) in
        let d12 = deltas.(12) in
        fun base len ->
          (match wb with
          | Apply ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  ((c0 *. Array.unsafe_get sdata (idx + d0))
                  +. (c1 *. Array.unsafe_get sdata (idx + d1))
                  +. (c2 *. Array.unsafe_get sdata (idx + d2))
                  +. (c3 *. Array.unsafe_get sdata (idx + d3))
                  +. (c4 *. Array.unsafe_get sdata (idx + d4))
                  +. (c5 *. Array.unsafe_get sdata (idx + d5))
                  +. (c6 *. Array.unsafe_get sdata (idx + d6))
                  +. (c7 *. Array.unsafe_get sdata (idx + d7))
                  +. (c8 *. Array.unsafe_get sdata (idx + d8))
                  +. (c9 *. Array.unsafe_get sdata (idx + d9))
                  +. (c10 *. Array.unsafe_get sdata (idx + d10))
                  +. (c11 *. Array.unsafe_get sdata (idx + d11))
                  +. (c12 *. Array.unsafe_get sdata (idx + d12)))
              done
          | Apply_scaled s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (s
                  *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                     +. (c1 *. Array.unsafe_get sdata (idx + d1))
                     +. (c2 *. Array.unsafe_get sdata (idx + d2))
                     +. (c3 *. Array.unsafe_get sdata (idx + d3))
                     +. (c4 *. Array.unsafe_get sdata (idx + d4))
                     +. (c5 *. Array.unsafe_get sdata (idx + d5))
                     +. (c6 *. Array.unsafe_get sdata (idx + d6))
                     +. (c7 *. Array.unsafe_get sdata (idx + d7))
                     +. (c8 *. Array.unsafe_get sdata (idx + d8))
                     +. (c9 *. Array.unsafe_get sdata (idx + d9))
                     +. (c10 *. Array.unsafe_get sdata (idx + d10))
                     +. (c11 *. Array.unsafe_get sdata (idx + d11))
                     +. (c12 *. Array.unsafe_get sdata (idx + d12))))
              done
          | Accumulate s ->
              for c = 0 to len - 1 do
                let idx = base + c in
                Array.unsafe_set ddata idx
                  (Array.unsafe_get ddata idx
                  +. (s
                     *. ((c0 *. Array.unsafe_get sdata (idx + d0))
                        +. (c1 *. Array.unsafe_get sdata (idx + d1))
                        +. (c2 *. Array.unsafe_get sdata (idx + d2))
                        +. (c3 *. Array.unsafe_get sdata (idx + d3))
                        +. (c4 *. Array.unsafe_get sdata (idx + d4))
                        +. (c5 *. Array.unsafe_get sdata (idx + d5))
                        +. (c6 *. Array.unsafe_get sdata (idx + d6))
                        +. (c7 *. Array.unsafe_get sdata (idx + d7))
                        +. (c8 *. Array.unsafe_get sdata (idx + d8))
                        +. (c9 *. Array.unsafe_get sdata (idx + d9))
                        +. (c10 *. Array.unsafe_get sdata (idx + d10))
                        +. (c11 *. Array.unsafe_get sdata (idx + d11))
                        +. (c12 *. Array.unsafe_get sdata (idx + d12)))))
              done)
    | _ -> taps_row_generic ~coeffs ~deltas ~sdata ~ddata wb
  in
  iter_rows_of t ~lo ~hi row

(* ------------------------------------------------------------------ *)
(* Bilinear mode. Per-term aux arrays are resolved once per sweep; the
   per-point dispatch is an int-kind match over precompiled parallel arrays
   (the legacy path re-matched [aux_name] per point per term). Term order
   and multiplication association are unchanged, so results are
   bit-identical to the generic path. *)

let resolve_bilinear_arrays t ~aux ~(sdata : float array) b =
  Array.map
    (fun name -> match name with Some n -> aux_data t ~aux n | None -> sdata)
    b.bl_aux_names

let sweep_bilinear t ~aux ~(sdata : float array) ~(ddata : float array) ~lo ~hi
    b wb =
  let arrays = resolve_bilinear_arrays t ~aux ~sdata b in
  let n = Array.length b.bl_coeffs in
  let coeffs = b.bl_coeffs and kinds = b.bl_kinds in
  let aux_deltas = b.bl_aux_deltas and in_deltas = b.bl_in_deltas in
  let point idx =
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      let c = Array.unsafe_get coeffs k in
      let v =
        match Array.unsafe_get kinds k with
        | 0 (* aux * input *) ->
            c
            *. Array.unsafe_get (Array.unsafe_get arrays k)
                 (idx + Array.unsafe_get aux_deltas k)
            *. Array.unsafe_get sdata (idx + Array.unsafe_get in_deltas k)
        | 1 (* input only *) ->
            c *. Array.unsafe_get sdata (idx + Array.unsafe_get in_deltas k)
        | _ (* aux only *) ->
            c
            *. Array.unsafe_get (Array.unsafe_get arrays k)
                 (idx + Array.unsafe_get aux_deltas k)
      in
      acc := !acc +. v
    done;
    !acc
  in
  let row =
    match wb with
    | Apply ->
        fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            Array.unsafe_set ddata idx (point idx)
          done
    | Apply_scaled s ->
        fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            Array.unsafe_set ddata idx (s *. point idx)
          done
    | Accumulate s ->
        fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            Array.unsafe_set ddata idx
              (Array.unsafe_get ddata idx +. (s *. point idx))
          done
  in
  iter_rows_of t ~lo ~hi row

(* ------------------------------------------------------------------ *)
(* Tree mode: expression evaluation dominates, so a per-point write closure
   costs nothing measurable and the legacy walker is kept. *)

let eval_tree t expr ~(src : Grid.t) ~aux coord =
  let load (a : Expr.access) =
    let data =
      if String.equal a.Expr.tensor t.kernel.Kernel.input.Tensor.name then src.Grid.data
      else aux_data t ~aux a.Expr.tensor
    in
    let flat = ref 0 in
    for d = 0 to Array.length coord - 1 do
      flat := !flat + ((coord.(d) + a.Expr.offsets.(d) + t.halo.(d)) * t.strides.(d))
    done;
    data.(!flat)
  in
  let var name =
    let rec find d = function
      | [] -> invalid_arg (Printf.sprintf "Interp: unknown loop var %s" name)
      | v :: rest -> if String.equal v name then float_of_int coord.(d) else find (d + 1) rest
    in
    find 0 t.kernel.Kernel.index_vars
  in
  Expr.eval ~bindings:t.kernel.Kernel.bindings ~load ~var expr

let sweep_tree t expr ~src ~aux ~(ddata : float array) ~lo ~hi wb =
  let write =
    match wb with
    | Apply -> fun idx v -> Array.unsafe_set ddata idx v
    | Apply_scaled s -> fun idx v -> Array.unsafe_set ddata idx (s *. v)
    | Accumulate s ->
        fun idx v ->
          Array.unsafe_set ddata idx (Array.unsafe_get ddata idx +. (s *. v))
  in
  let nd = Array.length t.shape in
  let coord = Array.copy lo in
  let last = nd - 1 in
  let rec go d =
    if d = nd then begin
      let flat = ref 0 in
      for k = 0 to last do
        flat := !flat + ((coord.(k) + t.halo.(k)) * t.strides.(k))
      done;
      write !flat (eval_tree t expr ~src ~aux coord)
    end
    else
      for k = lo.(d) to hi.(d) - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
  in
  go 0

(* ------------------------------------------------------------------ *)

let sweep ?(aux = []) t ~src ~dst ~lo ~hi wb =
  check_grids t ~src ~dst;
  check_range t ~lo ~hi;
  let sdata = (src : Grid.t).Grid.data and ddata = (dst : Grid.t).Grid.data in
  match t.mode with
  | Taps { coeffs; deltas } -> sweep_taps t ~coeffs ~deltas ~sdata ~ddata ~lo ~hi wb
  | Bilinear b -> sweep_bilinear t ~aux ~sdata ~ddata ~lo ~hi b wb
  | Tree expr -> sweep_tree t expr ~src ~aux ~ddata ~lo ~hi wb

let apply_range ?aux t ~src ~dst ~lo ~hi = sweep ?aux t ~src ~dst ~lo ~hi Apply

let apply_scaled_range ?aux t ~scale ~src ~dst ~lo ~hi =
  (* scale = 1 degrades to a plain overwrite ([1.0 *. x] is exact, but the
     multiply is not free). *)
  if scale = 1.0 then sweep ?aux t ~src ~dst ~lo ~hi Apply
  else sweep ?aux t ~src ~dst ~lo ~hi (Apply_scaled scale)

let accumulate_range ?aux t ~scale ~src ~dst ~lo ~hi =
  sweep ?aux t ~src ~dst ~lo ~hi (Accumulate scale)

let apply ?aux t ~src ~dst =
  let lo = Array.make (Array.length t.shape) 0 in
  apply_range ?aux t ~src ~dst ~lo ~hi:t.shape

(* ------------------------------------------------------------------ *)
(* The retained generic path: every point funnelled through a [write]
   closure, bilinear terms re-dispatched per point. This is the legacy
   implementation the fast paths above are parity-tested against (and the
   baseline the [fastpath] bench group measures). *)

let generic_sweep ?(aux = []) t ~src ~dst ~lo ~hi ~write =
  check_grids t ~src ~dst;
  check_range t ~lo ~hi;
  match t.mode with
  | Taps { coeffs; deltas } ->
      let ntaps = Array.length coeffs in
      let sdata = src.Grid.data and ddata = dst.Grid.data in
      iter_rows_of t ~lo ~hi (fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            let acc = ref 0.0 in
            for k = 0 to ntaps - 1 do
              acc := !acc +. (coeffs.(k) *. Array.unsafe_get sdata (idx + deltas.(k)))
            done;
            write ddata idx !acc
          done)
  | Bilinear b ->
      let terms = b.terms in
      let nterms = Array.length terms in
      let sdata = src.Grid.data and ddata = dst.Grid.data in
      let arrays =
        Array.map
          (fun term ->
            match term.aux_name with
            | Some name -> aux_data t ~aux name
            | None -> src.Grid.data)
          terms
      in
      iter_rows_of t ~lo ~hi (fun base len ->
          for c = 0 to len - 1 do
            let idx = base + c in
            let acc = ref 0.0 in
            for k = 0 to nterms - 1 do
              let term = Array.unsafe_get terms k in
              let factor =
                match term.aux_name with
                | Some _ -> Array.unsafe_get arrays.(k) (idx + term.aux_delta)
                | None -> 1.0
              in
              let input_v =
                if term.has_input then Array.unsafe_get sdata (idx + term.in_delta)
                else 1.0
              in
              acc := !acc +. (term.coeff *. factor *. input_v)
            done;
            write ddata idx !acc
          done)
  | Tree expr ->
      let nd = Array.length t.shape in
      let coord = Array.copy lo in
      let last = nd - 1 in
      let rec go d =
        if d = nd then begin
          let flat = ref 0 in
          for k = 0 to last do
            flat := !flat + ((coord.(k) + t.halo.(k)) * t.strides.(k))
          done;
          write dst.Grid.data !flat (eval_tree t expr ~src ~aux coord)
        end
        else
          for k = lo.(d) to hi.(d) - 1 do
            coord.(d) <- k;
            go (d + 1)
          done
      in
      go 0

let generic_apply_range ?aux t ~src ~dst ~lo ~hi =
  generic_sweep ?aux t ~src ~dst ~lo ~hi ~write:(fun data idx v ->
      Array.unsafe_set data idx v)

let generic_accumulate_range ?aux t ~scale ~src ~dst ~lo ~hi =
  generic_sweep ?aux t ~src ~dst ~lo ~hi ~write:(fun data idx v ->
      Array.unsafe_set data idx (Array.unsafe_get data idx +. (scale *. v)))

(* ------------------------------------------------------------------ *)
(* Identity (State) terms. *)

let check_identity ~(src : Grid.t) ~(dst : Grid.t) name =
  if src.Grid.shape <> dst.Grid.shape || src.Grid.strides <> dst.Grid.strides then
    invalid_arg (name ^ ": geometry mismatch")

let identity_accumulate_range ~scale ~(src : Grid.t) ~(dst : Grid.t) ~lo ~hi =
  check_identity ~src ~dst "identity_accumulate_range";
  let sdata = src.Grid.data and ddata = dst.Grid.data in
  iter_rows ~shape:src.Grid.shape ~halo:src.Grid.halo ~strides:src.Grid.strides
    ~lo ~hi (fun base len ->
      for c = 0 to len - 1 do
        let i = base + c in
        Array.unsafe_set ddata i
          (Array.unsafe_get ddata i +. (scale *. Array.unsafe_get sdata i))
      done)

let identity_apply_range ~scale ~(src : Grid.t) ~(dst : Grid.t) ~lo ~hi =
  check_identity ~src ~dst "identity_apply_range";
  let sdata = src.Grid.data and ddata = dst.Grid.data in
  if scale = 1.0 then
    (* A pure copy: rows are contiguous in both grids (same geometry). *)
    iter_rows ~shape:src.Grid.shape ~halo:src.Grid.halo
      ~strides:src.Grid.strides ~lo ~hi (fun base len ->
        Array.blit sdata base ddata base len)
  else
    iter_rows ~shape:src.Grid.shape ~halo:src.Grid.halo
      ~strides:src.Grid.strides ~lo ~hi (fun base len ->
        for c = 0 to len - 1 do
          let i = base + c in
          Array.unsafe_set ddata i (scale *. Array.unsafe_get sdata i)
        done)
