(* Runtime kernel compilation: emit a specialized kernel per (plan, term)
   — or one fused kernel for the whole sweep — compile it with the host
   toolchain, and load it back as a Backend.kernel_fn / Backend.sweep_fn.
   See jit.mli for the cache layout and backend.mli for the calling
   conventions.

   Bit-identity with the interpreter is a hard contract, maintained by
   emitting the *same* floating-point expression the interpreter
   evaluates:

   - taps arities with a dedicated unrolled path in interp.ml (3/5/7/9/13)
     sum as a plain left-associated chain [c0*x0 +. c1*x1 +. ...];
   - every other taps arity, and all bilinear kernels, lead the chain with
     [0.0 +.] because the interpreter's generic paths start their
     accumulator at 0.0 (observable through the sign of a -0.0 result);
   - coefficients are printed as hex float literals (exact round-trip,
     valid in both OCaml and C99);
   - C kernels are compiled with -ffp-contract=off (GCC defaults to
     contraction, and a fused multiply-add rounds differently);
   - tree-mode kernels render Expr.eval's exact operation set: libm calls
     on both sides, and Float.min/Float.max ported to C by hand (fmin/fmax
     differ on NaN and signed zero);
   - fused sweeps chain the per-term writebacks through one register
     accumulator: [let acc = t0 in let acc = acc +. (s1 *. t1) in ...] is
     bit-identical to the interpreter's store-then-read-modify-write pass
     sequence because a store/load roundtrip of a float is exact. *)

open Msc_ir

external dlopen_sym : string -> string -> nativeint = "msc_jit_dlopen"

external c_call :
  nativeint ->
  int ->
  float ->
  float array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit = "msc_jit_call_bytecode" "msc_jit_call_native"
[@@noalloc]

external c_call_sweep :
  nativeint ->
  int ->
  float array array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit = "msc_jit_call_sweep_bytecode" "msc_jit_call_sweep_native"
[@@noalloc]

external c_call_reduce :
  nativeint ->
  int ->
  float array ->
  float array ->
  int array ->
  int array ->
  float = "msc_jit_call_reduce_bytecode" "msc_jit_call_reduce_native"
(* not [@@noalloc]: the float result is boxed on return *)

external named_value : string -> Obj.t = "msc_jit_named_value"

(* Emitter-version salt, folded into *every* artifact key (per-term
   kernels, fused sweeps, reductions) and embedded in the artifact file
   names: bump whenever any emitter changes the generated code for the
   same specs, or $MSC_KERNEL_CACHE keeps serving the old code shape.
   History: v2 = sweep row blocking + host-arch flags (fused sweeps only
   — the per-term gap this constant closes); v3 = uniform salting of all
   emitters + reduction kernels. *)
let emitter_version = "v3"

(* Force the Callback unit into the host image: Dynlink-loaded kernels
   hand their closure back through [Callback.register], so the module must
   be linked even when nothing else in the program uses it. *)
let () = Callback.register "msc_jit_host_alive" ()

type stats = {
  memo_hits : int;
  disk_hits : int;
  compiles : int;
  failures_unsupported : int;
  failures_toolchain : int;
}

type sweep_term =
  | Sweep_state of { scale : float }
  | Sweep_kernel of { scale : float; interp : Interp.t }

let lock = Mutex.create ()
let memo : (string, Backend.kernel_fn) Hashtbl.t = Hashtbl.create 16
let sweep_memo : (string, Backend.sweep_fn) Hashtbl.t = Hashtbl.create 16
let reduce_memo : (string, Backend.reduce_fn) Hashtbl.t = Hashtbl.create 16
let memo_hits = ref 0
let disk_hits = ref 0
let compiles = ref 0
let failures_unsupported = ref 0
let failures_toolchain = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let stats () =
  with_lock (fun () ->
      {
        memo_hits = !memo_hits;
        disk_hits = !disk_hits;
        compiles = !compiles;
        failures_unsupported = !failures_unsupported;
        failures_toolchain = !failures_toolchain;
      })

let clear_memo () =
  with_lock (fun () ->
      Hashtbl.reset memo;
      Hashtbl.reset sweep_memo;
      Hashtbl.reset reduce_memo)

let cache_dir () =
  match Sys.getenv_opt "MSC_KERNEL_CACHE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "msc-kernels"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* [Sys.command] goes through /bin/sh by absolute path, so toolchain
   discovery honours the *current* PATH — a stripped PATH cleanly reports
   "not found" rather than crashing, which is what the fallback tests
   exercise. Re-checked on every compile, never cached. *)
let have_tool tool =
  Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" tool) = 0

let read_log path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let k = min n 800 in
    seek_in ic (n - k);
    let s = really_input_string ic k in
    close_in ic;
    String.trim s
  with _ -> ""

let write_atomic ~dir ~dst content =
  let tmp = Filename.temp_file ~temp_dir:dir "msc_src" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp dst

(* {2 Emission} *)

(* A form the emitters cannot express; distinguished from toolchain
   failures in [stats]. *)
exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* The stub unpacks srcs/aux/lo/hi into fixed C buffers of this size. *)
let max_aux = 64

(* Hex float literals round-trip exactly and parse in OCaml and C99 alike;
   always parenthesized so a leading minus never fuses with the
   surrounding expression. *)
let flit f = Printf.sprintf "(%h)" f

let flit_checked f =
  if Float.is_finite f then flit f
  else unsupported "non-finite constant has no exact literal"

let idx ?(v = "i") d =
  if d = 0 then v
  else if d > 0 then Printf.sprintf "%s + %d" v d
  else Printf.sprintf "%s - %d" v (-d)

let flat_delta strides offsets =
  let acc = ref 0 in
  Array.iteri (fun d o -> acc := !acc + (o * strides.(d))) offsets;
  !acc

(* The arities interp.ml unrolls by hand (whose sums do NOT start at 0.0). *)
let unrolled_taps n = n = 3 || n = 5 || n = 7 || n = 9 || n = 13

(* {3 Aux slot layouts}

   Three layouts coexist:
   - per-term bilinear kernels keep one slot per bilinear subterm (matching
     bil_aux_names verbatim; input-only and unnamed subterms get [[||]]
     placeholders) — the PR 6 ABI, unchanged;
   - per-term tree kernels and every term of a fused sweep use a compact
     layout: one slot per distinct aux tensor, in first-use order. *)

let tree_aux_names interp =
  let k = Interp.kernel interp in
  let input = k.Kernel.input.Tensor.name in
  List.fold_left
    (fun acc (a : Expr.access) ->
      if String.equal a.Expr.tensor input || List.mem a.Expr.tensor acc then acc
      else acc @ [ a.Expr.tensor ])
    []
    (Expr.accesses k.Kernel.expr)

let sweep_term_aux_names interp =
  match Interp.spec interp with
  | Interp.Spec_taps _ -> []
  | Interp.Spec_bilinear b ->
      let acc = ref [] in
      for k = 0 to Array.length b.bil_kinds - 1 do
        if b.bil_kinds.(k) <> 1 then
          match b.bil_aux_names.(k) with
          | Some name when not (List.mem name !acc) -> acc := !acc @ [ name ]
          | _ -> ()
      done;
      !acc
  | Interp.Spec_tree -> tree_aux_names interp

let per_term_aux_names interp =
  match Interp.spec interp with
  | Interp.Spec_taps _ -> [||]
  | Interp.Spec_bilinear b -> Array.copy b.bil_aux_names
  | Interp.Spec_tree ->
      Array.of_list (List.map Option.some (tree_aux_names interp))

(* Bilinear subterms that read a *named* aux tensor (and therefore get a
   bound slot in the per-term ABI). Unnamed aux reads fall back to the
   input grid, exactly like Interp.resolve_bilinear_arrays. *)
let aux_terms (spec : Interp.spec) =
  match spec with
  | Spec_bilinear b ->
      List.filter
        (fun k -> b.bil_kinds.(k) <> 1 && b.bil_aux_names.(k) <> None)
        (List.init (Array.length b.bil_kinds) Fun.id)
  | _ -> []

(* {3 Taps / bilinear sums}

   [src] names the input array in scope; [aux_of k] resolves bilinear
   subterm [k]'s aux array. The point index variable is always [i]. *)

let ocaml_sum ~src ~aux_of (spec : Interp.spec) =
  match spec with
  | Spec_taps { taps_coeffs; taps_deltas } ->
      let term k c =
        Printf.sprintf "%s *. Array.unsafe_get %s (%s)" (flit_checked c) src
          (idx taps_deltas.(k))
      in
      let s =
        String.concat " +. " (Array.to_list (Array.mapi term taps_coeffs))
      in
      if unrolled_taps (Array.length taps_coeffs) then s else "0.0 +. " ^ s
  | Spec_bilinear b ->
      let term k =
        let c = flit_checked b.bil_coeffs.(k) in
        match b.bil_kinds.(k) with
        | 0 ->
            Printf.sprintf
              "%s *. Array.unsafe_get %s (%s) *. Array.unsafe_get %s (%s)" c
              (aux_of k)
              (idx b.bil_aux_deltas.(k))
              src
              (idx b.bil_in_deltas.(k))
        | 1 ->
            Printf.sprintf "%s *. Array.unsafe_get %s (%s)" c src
              (idx b.bil_in_deltas.(k))
        | _ ->
            Printf.sprintf "%s *. Array.unsafe_get %s (%s)" c (aux_of k)
              (idx b.bil_aux_deltas.(k))
      in
      "0.0 +. " ^ String.concat " +. " (List.init (Array.length b.bil_coeffs) term)
  | Spec_tree -> assert false

let c_sum ~src ~aux_of (spec : Interp.spec) =
  match spec with
  | Spec_taps { taps_coeffs; taps_deltas } ->
      let term k c =
        Printf.sprintf "%s * %s[%s]" (flit_checked c) src (idx taps_deltas.(k))
      in
      let s =
        String.concat " + " (Array.to_list (Array.mapi term taps_coeffs))
      in
      if unrolled_taps (Array.length taps_coeffs) then s else "0.0 + " ^ s
  | Spec_bilinear b ->
      let term k =
        let c = flit_checked b.bil_coeffs.(k) in
        match b.bil_kinds.(k) with
        | 0 ->
            Printf.sprintf "%s * %s[%s] * %s[%s]" c (aux_of k)
              (idx b.bil_aux_deltas.(k))
              src
              (idx b.bil_in_deltas.(k))
        | 1 -> Printf.sprintf "%s * %s[%s]" c src (idx b.bil_in_deltas.(k))
        | _ -> Printf.sprintf "%s * %s[%s]" c (aux_of k) (idx b.bil_aux_deltas.(k))
      in
      "0.0 + " ^ String.concat " + " (List.init (Array.length b.bil_coeffs) term)
  | Spec_tree -> assert false

(* {3 Tree expressions}

   Renders Expr.eval's exact operation set. [slot] resolves an aux tensor
   name to its bound array variable; [coord d] renders the interior
   coordinate of dimension [d] at the current point (matching eval_tree's
   [coord] array); the flat point index in scope is [i], which already
   includes the halo offsets — an access only adds its constant flat
   delta. *)

let ocaml_tree ~src ~slot ~coord interp =
  let k = Interp.kernel interp in
  let input = k.Kernel.input.Tensor.name in
  let strides = Interp.strides interp in
  let var_coord name =
    let rec find d = function
      | [] -> unsupported "unknown loop var %s" name
      | v :: rest -> if String.equal v name then coord d else find (d + 1) rest
    in
    find 0 k.Kernel.index_vars
  in
  let rec go (e : Expr.t) =
    match e with
    | Fconst x -> flit_checked x
    | Iconst n -> flit (float_of_int n)
    | Param name -> (
        match List.assoc_opt name k.Kernel.bindings with
        | Some v -> flit_checked v
        | None -> unsupported "unbound parameter %s" name)
    | Var name -> Printf.sprintf "(Stdlib.float_of_int %s)" (var_coord name)
    | Access a ->
        let arr = if String.equal a.Expr.tensor input then src else slot a.Expr.tensor in
        Printf.sprintf "(Array.unsafe_get %s (%s))" arr
          (idx (flat_delta strides a.Expr.offsets))
    | Unop (op, a) ->
        let f =
          match op with
          | Expr.Neg -> "-."
          | Abs -> "Float.abs"
          | Sqrt -> "sqrt"
          | Exp -> "exp"
          | Sin -> "sin"
          | Cos -> "cos"
        in
        Printf.sprintf "(%s %s)" f (go a)
    | Binop (op, a, b) -> (
        match op with
        | Expr.Add -> Printf.sprintf "(%s +. %s)" (go a) (go b)
        | Sub -> Printf.sprintf "(%s -. %s)" (go a) (go b)
        | Mul -> Printf.sprintf "(%s *. %s)" (go a) (go b)
        | Div -> Printf.sprintf "(%s /. %s)" (go a) (go b)
        | Min -> Printf.sprintf "(Float.min %s %s)" (go a) (go b)
        | Max -> Printf.sprintf "(Float.max %s %s)" (go a) (go b))
    | Call (name, args) -> (
        match (name, List.map go args) with
        | "pow", [ a; b ] -> Printf.sprintf "(Float.pow %s %s)" a b
        | "hypot", [ a; b ] -> Printf.sprintf "(Float.hypot %s %s)" a b
        | "fma", [ a; b; c ] -> Printf.sprintf "(Float.fma %s %s %s)" a b c
        | (("sqrt" | "exp" | "log" | "sin" | "cos" | "tanh") as f), [ a ] ->
            Printf.sprintf "(%s %s)" f a
        | "fabs", [ a ] -> Printf.sprintf "(Float.abs %s)" a
        | _ -> unsupported "unknown call %s/%d" name (List.length args))
  in
  go k.Kernel.expr

let c_tree ~src ~slot ~coord interp =
  let k = Interp.kernel interp in
  let input = k.Kernel.input.Tensor.name in
  let strides = Interp.strides interp in
  let var_coord name =
    let rec find d = function
      | [] -> unsupported "unknown loop var %s" name
      | v :: rest -> if String.equal v name then coord d else find (d + 1) rest
    in
    find 0 k.Kernel.index_vars
  in
  let rec go (e : Expr.t) =
    match e with
    | Expr.Fconst x -> flit_checked x
    | Iconst n -> flit (float_of_int n)
    | Param name -> (
        match List.assoc_opt name k.Kernel.bindings with
        | Some v -> flit_checked v
        | None -> unsupported "unbound parameter %s" name)
    | Var name -> Printf.sprintf "((double)%s)" (var_coord name)
    | Access a ->
        let arr = if String.equal a.Expr.tensor input then src else slot a.Expr.tensor in
        Printf.sprintf "(%s[%s])" arr (idx (flat_delta strides a.Expr.offsets))
    | Unop (op, a) -> (
        match op with
        | Expr.Neg -> Printf.sprintf "(- %s)" (go a)
        | Abs -> Printf.sprintf "(fabs(%s))" (go a)
        | Sqrt -> Printf.sprintf "(sqrt(%s))" (go a)
        | Exp -> Printf.sprintf "(exp(%s))" (go a)
        | Sin -> Printf.sprintf "(sin(%s))" (go a)
        | Cos -> Printf.sprintf "(cos(%s))" (go a))
    | Binop (op, a, b) -> (
        match op with
        | Expr.Add -> Printf.sprintf "(%s + %s)" (go a) (go b)
        | Sub -> Printf.sprintf "(%s - %s)" (go a) (go b)
        | Mul -> Printf.sprintf "(%s * %s)" (go a) (go b)
        | Div -> Printf.sprintf "(%s / %s)" (go a) (go b)
        | Min -> Printf.sprintf "(msc_min(%s, %s))" (go a) (go b)
        | Max -> Printf.sprintf "(msc_max(%s, %s))" (go a) (go b))
    | Call (name, args) -> (
        match (name, List.map go args) with
        | "pow", [ a; b ] -> Printf.sprintf "(pow(%s, %s))" a b
        | "hypot", [ a; b ] -> Printf.sprintf "(hypot(%s, %s))" a b
        | "fma", [ a; b; c ] -> Printf.sprintf "(fma(%s, %s, %s))" a b c
        | (("sqrt" | "exp" | "log" | "sin" | "cos" | "tanh") as f), [ a ] ->
            Printf.sprintf "(%s(%s))" f a
        | "fabs", [ a ] -> Printf.sprintf "(fabs(%s))" a
        | _ -> unsupported "unknown call %s/%d" name (List.length args))
  in
  go k.Kernel.expr

(* Exact ports of OCaml's Float.min / Float.max: fmin/fmax differ on NaN
   propagation and signed zeros, so the C side re-implements the stdlib
   definitions verbatim. *)
let c_tree_prelude =
  "#include <math.h>\n\n\
   static inline double msc_min(double x, double y)\n\
   {\n\
  \  if (y > x || (!signbit(y) && signbit(x))) return (y != y) ? y : x;\n\
  \  return (x != x) ? x : y;\n\
   }\n\
   static inline double msc_max(double x, double y)\n\
   {\n\
  \  if (y > x || (!signbit(y) && signbit(x))) return (x != x) ? x : y;\n\
  \  return (y != y) ? y : x;\n\
   }\n\n"

(* One kernel term's value expression at point [i]. *)
let ocaml_value ~src ~aux_of ~slot ~coord interp =
  match Interp.spec interp with
  | Interp.Spec_tree -> ocaml_tree ~src ~slot ~coord interp
  | spec -> ocaml_sum ~src ~aux_of spec

let c_value ~src ~aux_of ~slot ~coord interp =
  match Interp.spec interp with
  | Interp.Spec_tree -> c_tree ~src ~slot ~coord interp
  | spec -> c_sum ~src ~aux_of spec

let is_tree interp =
  match Interp.spec interp with Interp.Spec_tree -> true | _ -> false

(* The flat row base for outer coordinates [i0..] and last-dim start
   [l<last>], with halo offsets and strides folded to literals. *)
let base_expr ~nd ~halo ~strides =
  let last = nd - 1 in
  String.concat " + "
    (List.init nd (fun d ->
         let coord =
           if d = last then Printf.sprintf "l%d" d else Printf.sprintf "i%d" d
         in
         let shifted =
           if halo.(d) = 0 then coord
           else Printf.sprintf "(%s + %d)" coord halo.(d)
         in
         if strides.(d) = 1 then shifted
         else Printf.sprintf "%s * %d" shifted strides.(d)))

(* Compact tree-slot resolver for the per-term layout. *)
let per_term_slot interp n =
  let rec go j = function
    | [] -> unsupported "kernel reads unknown tensor %s" n
    | m :: rest -> if String.equal m n then Printf.sprintf "_a%d" j else go (j + 1) rest
  in
  go 0 (tree_aux_names interp)

let emit_ocaml ~base ~halo ~strides interp =
  let spec = Interp.spec interp in
  let nd = Array.length strides in
  let last = nd - 1 in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "(* Kernel %s -- generated by Msc_exec.Jit; do not edit. *)\n" base;
  pr "let kernel (_wb : int) (_scale : float) (_src : float array)\n";
  pr "    (_dst : float array) (_aux : float array array) (_lo : int array)\n";
  pr "    (_hi : int array) : unit =\n";
  (match spec with
  | Spec_bilinear _ ->
      List.iter
        (fun k -> pr "  let _a%d = Array.unsafe_get _aux %d in\n" k k)
        (aux_terms spec)
  | Spec_tree ->
      List.iteri
        (fun s _ -> pr "  let _a%d = Array.unsafe_get _aux %d in\n" s s)
        (tree_aux_names interp)
  | Spec_taps _ -> ());
  for d = 0 to last do
    pr "  let l%d = Array.unsafe_get _lo %d in\n" d d;
    pr "  let h%d = Array.unsafe_get _hi %d in\n" d d
  done;
  pr "  let len = h%d - l%d in\n" last last;
  pr "  if len > 0 then begin\n";
  for d = 0 to last - 1 do
    pr "  for i%d = l%d to h%d - 1 do\n" d d d
  done;
  pr "  let base = %s in\n" (base_expr ~nd ~halo ~strides);
  let iexpr =
    if strides.(last) = 1 then "base + c"
    else Printf.sprintf "base + c * %d" strides.(last)
  in
  let aux_of =
    match spec with
    | Spec_bilinear b ->
        fun k -> (
          match b.bil_aux_names.(k) with
          | Some _ -> Printf.sprintf "_a%d" k
          | None -> "_src")
    | _ -> fun _ -> "_src"
  in
  let coord d =
    if d = last then Printf.sprintf "(l%d + c)" last else Printf.sprintf "i%d" d
  in
  let sum =
    ocaml_value ~src:"_src" ~aux_of ~slot:(per_term_slot interp) ~coord interp
  in
  let loop body =
    pr "  for c = 0 to len - 1 do\n";
    pr "    let i = %s in\n" iexpr;
    pr "    Array.unsafe_set _dst i (%s)\n" body;
    pr "  done\n"
  in
  pr "  (if _wb = 0 then begin\n";
  loop sum;
  pr "  end\n";
  pr "  else if _wb = 1 then begin\n";
  loop (Printf.sprintf "_scale *. (%s)" sum);
  pr "  end\n";
  pr "  else begin\n";
  loop (Printf.sprintf "Array.unsafe_get _dst i +. (_scale *. (%s))" sum);
  pr "  end)\n";
  for _ = 0 to last - 1 do
    pr "  done\n"
  done;
  pr "  end\n";
  pr "\nlet () = Callback.register %S kernel\n" ("msc_jit_" ^ base);
  Buffer.contents buf

let emit_c ~base ~halo ~strides interp =
  let spec = Interp.spec interp in
  let nd = Array.length strides in
  let last = nd - 1 in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "/* Kernel %s -- generated by Msc_exec.Jit; do not edit. */\n" base;
  if is_tree interp then pr "%s" c_tree_prelude;
  pr "void msc_kernel(long wb, double scale, const double *src, double *dst,\n";
  pr "                const double **aux, const long *lo, const long *hi)\n";
  pr "{\n";
  (match spec with
  | Spec_bilinear _ ->
      let auxl = aux_terms spec in
      if auxl = [] then pr "  (void)aux;\n";
      List.iter (fun k -> pr "  const double *_a%d = aux[%d];\n" k k) auxl
  | Spec_tree ->
      let names = tree_aux_names interp in
      if names = [] then pr "  (void)aux;\n";
      List.iteri (fun s _ -> pr "  const double *_a%d = aux[%d];\n" s s) names
  | Spec_taps _ -> pr "  (void)aux;\n");
  for d = 0 to last do
    pr "  long l%d = lo[%d]; long h%d = hi[%d];\n" d d d d
  done;
  pr "  long len = h%d - l%d;\n" last last;
  pr "  if (len <= 0) return;\n";
  for d = 0 to last - 1 do
    pr "  for (long i%d = l%d; i%d < h%d; i%d++) {\n" d d d d d
  done;
  pr "  long base = %s;\n" (base_expr ~nd ~halo ~strides);
  let iexpr =
    if strides.(last) = 1 then "base + c"
    else Printf.sprintf "base + c * %d" strides.(last)
  in
  let aux_of =
    match spec with
    | Spec_bilinear b ->
        fun k -> (
          match b.bil_aux_names.(k) with
          | Some _ -> Printf.sprintf "_a%d" k
          | None -> "src")
    | _ -> fun _ -> "src"
  in
  let coord d =
    if d = last then Printf.sprintf "(l%d + c)" last else Printf.sprintf "i%d" d
  in
  let sum = c_value ~src:"src" ~aux_of ~slot:(per_term_slot interp) ~coord interp in
  let loop body =
    pr "    for (long c = 0; c < len; c++) {\n";
    pr "      long i = %s;\n" iexpr;
    pr "      dst[i] = %s;\n" body;
    pr "    }\n"
  in
  pr "  if (wb == 0) {\n";
  loop sum;
  pr "  } else if (wb == 1) {\n";
  loop (Printf.sprintf "scale * (%s)" sum);
  pr "  } else {\n";
  loop (Printf.sprintf "dst[i] + (scale * (%s))" sum);
  pr "  }\n";
  for _ = 0 to last - 1 do
    pr "  }\n"
  done;
  pr "}\n";
  Buffer.contents buf

(* {2 Fused whole-sweep emission}

   One function per plan covering every stencil term in a single pass:
   per-point register accumulator chaining replaces the interpreter's one
   full-grid pass per term. For instruction-level parallelism the C
   emitter blocks the second-innermost dimension by 4 (four adjacent rows
   per inner iteration — independent accumulator chains, innermost loop
   left contiguous for the auto-vectorizer); the OCaml emitter unrolls the
   innermost row by 4 instead (flambda-less ocamlopt does not vectorize,
   so lane independence only needs to beat loop overhead there). Neither
   reassociates, so bit-identity is preserved. *)

(* Per-term (slot offset, aux names) in the concatenated aux layout. *)
let sweep_slots terms =
  let off = ref 0 in
  let layout =
    List.map
      (function
        | Sweep_state _ -> (!off, [])
        | Sweep_kernel { interp; _ } ->
            let names = sweep_term_aux_names interp in
            let o = !off in
            off := o + List.length names;
            (o, names))
      terms
  in
  (layout, !off)

let sweep_geometry terms =
  let kernels =
    List.filter_map
      (function Sweep_kernel { interp; _ } -> Some interp | Sweep_state _ -> None)
      terms
  in
  match kernels with
  | [] -> Error "fused sweep needs at least one kernel term"
  | first :: rest ->
      let geom i = (Interp.shape i, Interp.halo i, Interp.strides i) in
      let g0 = geom first in
      if List.for_all (fun i -> geom i = g0) rest then Ok g0
      else Error "kernel terms disagree on grid geometry"

let sweep_has_tree terms =
  List.exists
    (function Sweep_kernel { interp; _ } -> is_tree interp | Sweep_state _ -> false)
    terms

(* The value expression of kernel term [t] at lane offset [c_str] (a
   last-dimension offset expression; the lane binds [i] to the matching
   flat index). [row] shifts the second-innermost coordinate — the C
   emitter computes a block of [row = 0..3] adjacent rows per inner
   iteration. [pre] is the per-emitter variable-name prefix ("_" on the
   OCaml side, "" in C). *)
let sweep_kernel_value ~value ~pre ~layout ~last ?(row = 0) ~c_str t interp =
  let off, names = List.nth layout t in
  let src = Printf.sprintf "%ss%d" pre t in
  let slot n =
    let rec go j = function
      | [] -> unsupported "aux tensor %s has no fused slot" n
      | m :: rest ->
          if String.equal m n then Printf.sprintf "%sa%d" pre (off + j)
          else go (j + 1) rest
    in
    go 0 names
  in
  let aux_of =
    match Interp.spec interp with
    | Interp.Spec_bilinear b ->
        fun k -> (
          match b.bil_aux_names.(k) with Some n -> slot n | None -> src)
    | _ -> fun _ -> src
  in
  let coord d =
    if d = last then Printf.sprintf "(l%d + (%s))" last c_str
    else if d = last - 1 && row > 0 then Printf.sprintf "(i%d + %d)" d row
    else Printf.sprintf "i%d" d
  in
  value ~src ~aux_of ~slot ~coord interp

let emit_ocaml_sweep ~base ~halo ~strides terms =
  let nd = Array.length strides in
  let last = nd - 1 in
  let layout, nslots = sweep_slots terms in
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "(* Fused sweep %s -- generated by Msc_exec.Jit; do not edit. *)\n" base;
  pr "let sweep (_wb : int) (_srcs : float array array) (_dst : float array)\n";
  pr "    (_aux : float array array) (_lo : int array) (_hi : int array)\n";
  pr "    : unit =\n";
  List.iteri
    (fun t _ -> pr "  let _s%d = Array.unsafe_get _srcs %d in\n" t t)
    terms;
  for s = 0 to nslots - 1 do
    pr "  let _a%d = Array.unsafe_get _aux %d in\n" s s
  done;
  for d = 0 to last do
    pr "  let l%d = Array.unsafe_get _lo %d in\n" d d;
    pr "  let h%d = Array.unsafe_get _hi %d in\n" d d
  done;
  pr "  let len = h%d - l%d in\n" last last;
  pr "  if len > 0 then begin\n";
  for d = 0 to last - 1 do
    pr "  for i%d = l%d to h%d - 1 do\n" d d d
  done;
  pr "  let base = %s in\n" (base_expr ~nd ~halo ~strides);
  let iexpr c_str =
    if strides.(last) = 1 then Printf.sprintf "base + (%s)" c_str
    else Printf.sprintf "base + ((%s) * %d)" c_str strides.(last)
  in
  (* Write-through: the first term seeds the accumulator (overwrite
     semantics), later terms fold in — matching Runtime's term_write +
     term_accumulate pass sequence. *)
  let kernel_value c_str t interp =
    sweep_kernel_value ~value:ocaml_value ~pre:"_" ~layout ~last ~c_str t interp
  in
  let first_value c_str t term =
    match term with
    | Sweep_kernel { scale; interp } ->
        let v = kernel_value c_str t interp in
        if scale = 1.0 then Printf.sprintf "(%s)" v
        else Printf.sprintf "%s *. (%s)" (flit_checked scale) v
    | Sweep_state { scale } ->
        if scale = 1.0 then Printf.sprintf "Array.unsafe_get _s%d i" t
        else
          Printf.sprintf "%s *. Array.unsafe_get _s%d i" (flit_checked scale) t
  in
  let fold_value c_str t term =
    match term with
    | Sweep_kernel { scale; interp } ->
        let v = kernel_value c_str t interp in
        Printf.sprintf "acc +. (%s *. (%s))" (flit_checked scale) v
    | Sweep_state { scale } ->
        Printf.sprintf "acc +. (%s *. Array.unsafe_get _s%d i)"
          (flit_checked scale) t
  in
  let lane_wt c_str =
    let b = Buffer.create 512 in
    Printf.bprintf b "(let i = %s in\n" (iexpr c_str);
    List.iteri
      (fun t term ->
        if t = 0 then
          Printf.bprintf b "       let acc = %s in\n" (first_value c_str t term)
        else Printf.bprintf b "       let acc = %s in\n" (fold_value c_str t term))
      terms;
    Printf.bprintf b "       Array.unsafe_set _dst i acc)";
    Buffer.contents b
  in
  let lane_acc c_str =
    let b = Buffer.create 512 in
    Printf.bprintf b "(let i = %s in\n" (iexpr c_str);
    Printf.bprintf b "       let acc = Array.unsafe_get _dst i in\n";
    List.iteri
      (fun t term ->
        Printf.bprintf b "       let acc = %s in\n" (fold_value c_str t term))
      terms;
    Printf.bprintf b "       Array.unsafe_set _dst i acc)";
    Buffer.contents b
  in
  let unrolled lane =
    pr "    let c = ref 0 in\n";
    pr "    while !c + 3 < len do\n";
    pr "      %s;\n" (lane "!c");
    pr "      %s;\n" (lane "!c + 1");
    pr "      %s;\n" (lane "!c + 2");
    pr "      %s;\n" (lane "!c + 3");
    pr "      c := !c + 4\n";
    pr "    done;\n";
    pr "    while !c < len do\n";
    pr "      %s;\n" (lane "!c");
    pr "      c := !c + 1\n";
    pr "    done\n"
  in
  pr "  (if _wb = 0 then begin\n";
  unrolled lane_wt;
  pr "  end else begin\n";
  unrolled lane_acc;
  pr "  end)\n";
  for _ = 0 to last - 1 do
    pr "  done\n"
  done;
  pr "  end\n";
  pr "\nlet () = Callback.register %S sweep\n" ("msc_jit_" ^ base);
  Buffer.contents buf

let emit_c_sweep_src ~fn_name ~halo ~strides terms =
  let nd = Array.length strides in
  let last = nd - 1 in
  let layout, nslots = sweep_slots terms in
  let nterms = List.length terms in
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "/* Fused sweep %s -- generated by Msc_exec.Jit; do not edit. */\n" fn_name;
  if sweep_has_tree terms then pr "%s" c_tree_prelude;
  pr "void %s(long wb, const double **srcs, double *restrict dst,\n" fn_name;
  pr "%s const double **aux, const long *restrict lo,\n"
    (String.make (String.length fn_name + 5) ' ');
  pr "%s const long *restrict hi)\n" (String.make (String.length fn_name + 5) ' ');
  pr "{\n";
  for t = 0 to nterms - 1 do
    pr "  const double *s%d = srcs[%d];\n" t t
  done;
  if nslots = 0 then pr "  (void)aux;\n";
  for s = 0 to nslots - 1 do
    pr "  const double *a%d = aux[%d];\n" s s
  done;
  for d = 0 to last do
    pr "  long l%d = lo[%d]; long h%d = hi[%d];\n" d d d d
  done;
  pr "  long len = h%d - l%d;\n" last last;
  pr "  if (len <= 0) return;\n";
  (* The flat index of the row-0 lane at column [c_str]; lanes for rows
     1..3 derive theirs as [icol + row * row_stride]. Deriving from one
     shared column index matters: when every lane recomputes
     [base + off + c] from scratch, gcc's CSE drowns in the wide-radius
     tap expressions — 7x compile time and ~4x slower code on 2d169pt. *)
  let icol_expr c_str =
    if strides.(last) = 1 then Printf.sprintf "base + (%s)" c_str
    else Printf.sprintf "base + ((%s) * %d)" c_str strides.(last)
  in
  let lane_index ~row =
    if row = 0 then "icol"
    else Printf.sprintf "icol + %d" (row * strides.(last - 1))
  in
  let kernel_value ~row c_str t interp =
    sweep_kernel_value ~value:c_value ~pre:"" ~layout ~last ~row ~c_str t interp
  in
  let first_value ~row c_str t term =
    match term with
    | Sweep_kernel { scale; interp } ->
        let v = kernel_value ~row c_str t interp in
        if scale = 1.0 then Printf.sprintf "(%s)" v
        else Printf.sprintf "%s * (%s)" (flit_checked scale) v
    | Sweep_state { scale } ->
        if scale = 1.0 then Printf.sprintf "s%d[i]" t
        else Printf.sprintf "%s * s%d[i]" (flit_checked scale) t
  in
  let fold_value ~row c_str t term =
    match term with
    | Sweep_kernel { scale; interp } ->
        let v = kernel_value ~row c_str t interp in
        Printf.sprintf "acc + (%s * (%s))" (flit_checked scale) v
    | Sweep_state { scale } ->
        Printf.sprintf "acc + (%s * s%d[i])" (flit_checked scale) t
  in
  let lane_wt ~row c_str =
    let b = Buffer.create 512 in
    Printf.bprintf b "{ const long i = %s;\n" (lane_index ~row);
    List.iteri
      (fun t term ->
        if t = 0 then
          Printf.bprintf b "        double acc = %s;\n"
            (first_value ~row c_str t term)
        else Printf.bprintf b "        acc = %s;\n" (fold_value ~row c_str t term))
      terms;
    Printf.bprintf b "        dst[i] = acc; }";
    Buffer.contents b
  in
  let lane_acc ~row c_str =
    let b = Buffer.create 512 in
    Printf.bprintf b "{ const long i = %s;\n" (lane_index ~row);
    Printf.bprintf b "        double acc = dst[i];\n";
    List.iteri
      (fun t term ->
        Printf.bprintf b "        acc = %s;\n" (fold_value ~row c_str t term))
      terms;
    Printf.bprintf b "        dst[i] = acc; }";
    Buffer.contents b
  in
  (* One full loop nest per writeback mode. Rows (the second-innermost
     dimension) are blocked by 4: each inner iteration computes the same
     column of 4 adjacent rows — four independent accumulator chains, so
     the compiler can keep the FP ports busy while still auto-vectorizing
     the contiguous innermost loop. Manually unrolling the innermost row
     instead defeats loop vectorization (SLP rarely digests wide-radius
     tap chains) and measured ~2x slower on the dense box kernels. *)
  let emit_nest lane =
    for d = 0 to last - 2 do
      pr "  for (long i%d = l%d; i%d < h%d; i%d++) {\n" d d d d d
    done;
    if nd >= 2 then begin
      let r = last - 1 in
      pr "  long i%d = l%d;\n" r r;
      pr "  for (; i%d + 3 < h%d; i%d += 4) {\n" r r r;
      pr "  long base = %s;\n" (base_expr ~nd ~halo ~strides);
      pr "    for (long c = 0; c < len; c++) {\n";
      pr "      const long icol = %s;\n" (icol_expr "c");
      for row = 0 to 3 do
        pr "      %s\n" (lane ~row "c")
      done;
      pr "    }\n";
      pr "  }\n";
      pr "  for (; i%d < h%d; i%d++) {\n" r r r;
      pr "  long base = %s;\n" (base_expr ~nd ~halo ~strides);
      pr "    for (long c = 0; c < len; c++) {\n";
      pr "      const long icol = %s;\n" (icol_expr "c");
      pr "      %s\n" (lane ~row:0 "c");
      pr "    }\n";
      pr "  }\n"
    end
    else begin
      pr "  long base = %s;\n" (base_expr ~nd ~halo ~strides);
      pr "  for (long c = 0; c < len; c++) {\n";
      pr "    const long icol = %s;\n" (icol_expr "c");
      pr "    %s\n" (lane ~row:0 "c");
      pr "  }\n"
    end;
    for _ = 0 to last - 2 do
      pr "  }\n"
    done
  in
  pr "  if (wb == 0) {\n";
  emit_nest lane_wt;
  pr "  } else {\n";
  emit_nest lane_acc;
  pr "  }\n";
  pr "}\n";
  Buffer.contents buf

(* {2 Build + load} *)

let ocaml_tool () =
  if have_tool "ocamlopt" then Ok "ocamlopt"
  else Error "ocamlopt not found on PATH"

let c_tool () =
  if have_tool "cc" then Ok "cc"
  else if have_tool "gcc" then Ok "gcc"
  else Error "no C compiler (cc/gcc) found on PATH"

let ocaml_cmd ~tc ~dir ~src ~out ~log =
  Printf.sprintf "cd %s && %s -shared -o %s %s > %s 2>&1" (Filename.quote dir)
    tc (Filename.quote out) (Filename.quote src) (Filename.quote log)

let c_cmd ~tc ~dir ~src ~out ~log =
  (* -ffp-contract=off: contraction would fuse mul+add and change rounding,
     breaking bit-identity with the interpreter. *)
  Printf.sprintf
    "cd %s && %s -O3 -ffp-contract=off -fPIC -shared -o %s %s -lm > %s 2>&1"
    (Filename.quote dir) tc (Filename.quote out) (Filename.quote src)
    (Filename.quote log)

(* Fused sweeps are the hot artifact, and a JIT compiles for the machine it
   runs on: ask for the host microarchitecture first and fall back to the
   portable per-term flags when the compiler does not know [-march=native].
   Wider vector codegen does not change per-element rounding, and
   [-ffp-contract=off] still bans the fused multiply-adds that would. *)
let c_sweep_cmd ~tc ~dir ~src ~out ~log =
  let flags march =
    Printf.sprintf "%s -O3%s -ffp-contract=off -fPIC -shared -o %s %s -lm" tc
      march (Filename.quote out) (Filename.quote src)
  in
  Printf.sprintf "cd %s && { %s > %s 2>&1 || %s > %s 2>&1; }"
    (Filename.quote dir)
    (flags " -march=native")
    (Filename.quote log) (flags "") (Filename.quote log)

(* Shared build skeleton: serve the artifact from disk when present, else
   emit the source, run the toolchain and atomically install the result.
   [emit] may raise [Unsupported]; the toolchain paths return [Error]. *)
let build_shared ~dir ~base ~art_ext ~src_ext ~tool ~cmd ~emit ~load =
  let art = Filename.concat dir (base ^ art_ext) in
  if Sys.file_exists art then begin
    incr disk_hits;
    load art
  end
  else
    match tool () with
    | Error msg -> Error msg
    | Ok tc ->
        let src = base ^ src_ext in
        write_atomic ~dir ~dst:(Filename.concat dir src) (emit ());
        let tmp = Filename.temp_file ~temp_dir:dir base art_ext in
        let log = base ^ ".log" in
        if Sys.command (cmd ~tc ~dir ~src ~out:(Filename.basename tmp) ~log) <> 0
        then begin
          (try Sys.remove tmp with Sys_error _ -> ());
          Error (tc ^ " failed: " ^ read_log (Filename.concat dir log))
        end
        else begin
          Sys.rename tmp art;
          incr compiles;
          load art
        end

let load_native ~base art =
  try
    Dynlink.loadfile_private art;
    Ok (Obj.obj (named_value ("msc_jit_" ^ base)))
  with
  | Dynlink.Error e -> Error ("dynlink: " ^ Dynlink.error_message e)
  | Not_found -> Error "loaded kernel did not register itself"
  | Failure m -> Error m

let build_native ~dir ~base ~halo ~strides interp :
    (Backend.kernel_fn, string) result =
  build_shared ~dir ~base ~art_ext:".cmxs" ~src_ext:".ml" ~tool:ocaml_tool
    ~cmd:ocaml_cmd
    ~emit:(fun () -> emit_ocaml ~base ~halo ~strides interp)
    ~load:(fun art -> load_native ~base art)

let build_c ~dir ~base ~halo ~strides interp :
    (Backend.kernel_fn, string) result =
  build_shared ~dir ~base ~art_ext:".so" ~src_ext:".c" ~tool:c_tool ~cmd:c_cmd
    ~emit:(fun () -> emit_c ~base ~halo ~strides interp)
    ~load:(fun art ->
      try
        let fn = dlopen_sym art "msc_kernel" in
        Ok
          (fun wb scale src dst aux lo hi ->
            c_call fn wb scale src dst aux lo hi)
      with Failure m -> Error ("dlopen: " ^ m))

let build_native_sweep ~dir ~base ~halo ~strides terms :
    (Backend.sweep_fn, string) result =
  build_shared ~dir ~base ~art_ext:".cmxs" ~src_ext:".ml" ~tool:ocaml_tool
    ~cmd:ocaml_cmd
    ~emit:(fun () -> emit_ocaml_sweep ~base ~halo ~strides terms)
    ~load:(fun art -> load_native ~base art)

let build_c_sweep ~dir ~base ~halo ~strides terms :
    (Backend.sweep_fn, string) result =
  build_shared ~dir ~base ~art_ext:".so" ~src_ext:".c" ~tool:c_tool
    ~cmd:c_sweep_cmd
    ~emit:(fun () ->
      emit_c_sweep_src ~fn_name:"msc_sweep" ~halo ~strides terms)
    ~load:(fun art ->
      try
        let fn = dlopen_sym art "msc_sweep" in
        Ok
          (fun wb srcs dst aux lo hi -> c_call_sweep fn wb srcs dst aux lo hi)
      with Failure m -> Error ("dlopen: " ^ m))

(* {2 Compilation driver} *)

(* Forms the emitters reject up front (tree kernels are validated during
   emission instead — their unsupported constructs surface as
   [Unsupported] from the expression renderers). *)
let check_spec (spec : Interp.spec) =
  match spec with
  | Spec_tree -> ()
  | Spec_taps { taps_coeffs; _ } ->
      if not (Array.for_all Float.is_finite taps_coeffs) then
        unsupported "non-finite tap coefficient"
  | Spec_bilinear b ->
      if Array.length b.bil_coeffs > max_aux then
        unsupported "too many bilinear terms for the C calling convention";
      if not (Array.for_all Float.is_finite b.bil_coeffs) then
        unsupported "non-finite bilinear coefficient"

(* Tree kernels carry their payload outside Interp.spec, so the cache key
   must fold it in explicitly. *)
let term_extra interp =
  match Interp.spec interp with
  | Interp.Spec_tree ->
      let k = Interp.kernel interp in
      Some
        ( k.Kernel.expr,
          k.Kernel.bindings,
          k.Kernel.index_vars,
          k.Kernel.input.Tensor.name )
  | _ -> None

(* Classify a build outcome into the two failure counters: [Unsupported]
   is a form the emitters cannot express; everything else (missing
   toolchain, compile error, load error) is a toolchain failure. Counters
   are touched under the caller's lock. *)
let classified f =
  match f () with
  | Ok _ as ok -> ok
  | Error _ as e ->
      incr failures_toolchain;
      e
  | exception Unsupported msg ->
      incr failures_unsupported;
      Error msg
  | exception e ->
      incr failures_toolchain;
      Error (Printexc.to_string e)

let compile_term ~backend ~plan_digest ~term_index interp =
  match (backend : Backend.t) with
  | Interp -> Error "interpreter backend compiles nothing"
  | (Native_ocaml | Compiled_c) as b ->
      let spec = Interp.spec interp in
      let halo = Interp.halo interp and strides = Interp.strides interp in
      (* The key digests everything baked into the generated code; the
         plan digest alone is not enough because distributed ranks
         compile per-rank geometries under related plans. *)
      let key =
        Digest.to_hex
          (Digest.string
             (String.concat "\x00"
                [
                  plan_digest;
                  emitter_version;
                  string_of_int term_index;
                  Marshal.to_string
                    ( Interp.shape interp,
                      halo,
                      strides,
                      spec,
                      term_extra interp )
                    [];
                ]))
      in
      let base =
        Printf.sprintf "msc_kern_%s_%s_t%d" emitter_version key term_index
      in
      let memo_key = Backend.to_string b ^ ":" ^ base in
      with_lock (fun () ->
          match Hashtbl.find_opt memo memo_key with
          | Some fn ->
              incr memo_hits;
              Ok fn
          | None -> (
              let dir = cache_dir () in
              (try mkdir_p dir with _ -> ());
              let result =
                classified (fun () ->
                    check_spec spec;
                    match b with
                    | Backend.Native_ocaml ->
                        build_native ~dir ~base ~halo ~strides interp
                    | Backend.Compiled_c ->
                        build_c ~dir ~base ~halo ~strides interp
                    | Backend.Interp -> assert false)
              in
              match result with
              | Ok fn ->
                  Hashtbl.replace memo memo_key fn;
                  result
              | Error _ -> result))

let check_sweep terms =
  let nterms = List.length terms in
  if nterms = 0 then unsupported "empty sweep";
  if nterms > max_aux then
    unsupported "too many terms for the C calling convention";
  let _, nslots = sweep_slots terms in
  if nslots > max_aux then
    unsupported "too many aux slots for the C calling convention";
  List.iter
    (function
      | Sweep_state _ -> ()
      | Sweep_kernel { interp; _ } -> check_spec (Interp.spec interp))
    terms

let sweep_sig = function
  | Sweep_state { scale } -> `State scale
  | Sweep_kernel { scale; interp } ->
      `Kernel (scale, Interp.spec interp, term_extra interp)

let compile_sweep ~backend ~plan_digest terms =
  match (backend : Backend.t) with
  | Interp -> Error "interpreter backend compiles nothing"
  | (Native_ocaml | Compiled_c) as b -> (
      match sweep_geometry terms with
      | Error msg ->
          with_lock (fun () -> incr failures_unsupported);
          Error msg
      | Ok (shape, halo, strides) ->
          let key =
            Digest.to_hex
              (Digest.string
                 (String.concat "\x00"
                    [
                      plan_digest;
                      emitter_version;
                      Marshal.to_string
                        (shape, halo, strides, List.map sweep_sig terms)
                        [];
                    ]))
          in
          let base = Printf.sprintf "msc_sweep_%s_%s" emitter_version key in
          let memo_key = Backend.to_string b ^ ":" ^ base in
          with_lock (fun () ->
              match Hashtbl.find_opt sweep_memo memo_key with
              | Some fn ->
                  incr memo_hits;
                  Ok fn
              | None -> (
                  let dir = cache_dir () in
                  (try mkdir_p dir with _ -> ());
                  let result =
                    classified (fun () ->
                        check_sweep terms;
                        match b with
                        | Backend.Native_ocaml ->
                            build_native_sweep ~dir ~base ~halo ~strides terms
                        | Backend.Compiled_c ->
                            build_c_sweep ~dir ~base ~halo ~strides terms
                        | Backend.Interp -> assert false)
                  in
                  match result with
                  | Ok fn ->
                      Hashtbl.replace sweep_memo memo_key fn;
                      result
                  | Error _ -> result)))

let emit_c_sweep ~fn_name terms =
  match sweep_geometry terms with
  | Error _ as e -> e
  | Ok (_, halo, strides) -> (
      try
        check_sweep terms;
        Ok (emit_c_sweep_src ~fn_name ~halo ~strides terms)
      with Unsupported msg -> Error msg)

(* {2 Reduction kernels}

   One artifact per geometry covering all four operators (dispatched on
   the op code, like the writeback codes). Bit-identity discipline: the
   accumulator chain is strictly sequential in row-major order — the same
   fold Reduction's interpreter reference performs — and neither compiler
   may reassociate it (FP reassociation needs -ffast-math, which we never
   pass), so per-tile partials agree bitwise across all three backends. *)

let emit_ocaml_reduce ~base ~halo ~strides =
  let nd = Array.length strides in
  let last = nd - 1 in
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "(* Reduction %s -- generated by Msc_exec.Jit; do not edit. *)\n" base;
  pr "let reduce (_op : int) (_a : float array) (_b : float array)\n";
  pr "    (_lo : int array) (_hi : int array) : float =\n";
  for d = 0 to last do
    pr "  let l%d = Array.unsafe_get _lo %d in\n" d d;
    pr "  let h%d = Array.unsafe_get _hi %d in\n" d d
  done;
  pr "  let len = h%d - l%d in\n" last last;
  pr "  let acc = ref 0.0 in\n";
  pr "  if len > 0 then begin\n";
  let iexpr =
    if strides.(last) = 1 then "base + c"
    else Printf.sprintf "base + c * %d" strides.(last)
  in
  let nest body =
    for d = 0 to last - 1 do
      pr "  for i%d = l%d to h%d - 1 do\n" d d d
    done;
    pr "  let base = %s in\n" (base_expr ~nd ~halo ~strides);
    pr "  for c = 0 to len - 1 do\n";
    pr "    let i = %s in\n" iexpr;
    pr "    %s\n" body;
    pr "  done\n";
    for _ = 0 to last - 1 do
      pr "  done\n"
    done
  in
  pr "  (if _op = 0 then begin\n";
  nest "acc := !acc +. Array.unsafe_get _a i";
  pr "  end\n  else if _op = 1 then begin\n";
  nest "acc := !acc +. (Array.unsafe_get _a i *. Array.unsafe_get _b i)";
  pr "  end\n  else if _op = 2 then begin\n";
  nest "(let v = Array.unsafe_get _a i in acc := !acc +. (v *. v))";
  pr "  end\n  else begin\n";
  nest
    "(let v = Float.abs (Array.unsafe_get _a i) in if v > !acc then acc := v)";
  pr "  end)\n";
  pr "  end;\n";
  pr "  !acc\n";
  pr "\nlet () = Callback.register %S reduce\n" ("msc_jit_" ^ base);
  Buffer.contents buf

let emit_c_reduce ~base ~halo ~strides =
  let nd = Array.length strides in
  let last = nd - 1 in
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "/* Reduction %s -- generated by Msc_exec.Jit; do not edit. */\n" base;
  pr "#include <math.h>\n\n";
  pr "double msc_reduce(long op, const double *a, const double *b,\n";
  pr "                  const long *lo, const long *hi)\n";
  pr "{\n";
  for d = 0 to last do
    pr "  long l%d = lo[%d]; long h%d = hi[%d];\n" d d d d
  done;
  pr "  long len = h%d - l%d;\n" last last;
  pr "  double acc = 0.0;\n";
  pr "  if (len <= 0) return acc;\n";
  let iexpr =
    if strides.(last) = 1 then "base + c"
    else Printf.sprintf "base + c * %d" strides.(last)
  in
  let nest body =
    for d = 0 to last - 1 do
      pr "  for (long i%d = l%d; i%d < h%d; i%d++) {\n" d d d d d
    done;
    pr "  long base = %s;\n" (base_expr ~nd ~halo ~strides);
    pr "    for (long c = 0; c < len; c++) {\n";
    pr "      long i = %s;\n" iexpr;
    pr "      %s\n" body;
    pr "    }\n";
    for _ = 0 to last - 1 do
      pr "  }\n"
    done
  in
  pr "  if (op == 0) {\n";
  nest "acc = acc + a[i];";
  pr "  } else if (op == 1) {\n";
  nest "acc = acc + (a[i] * b[i]);";
  pr "  } else if (op == 2) {\n";
  nest "{ double v = a[i]; acc = acc + (v * v); }";
  pr "  } else {\n";
  pr "  (void)b;\n";
  nest "{ double v = fabs(a[i]); if (v > acc) acc = v; }";
  pr "  }\n";
  pr "  return acc;\n";
  pr "}\n";
  Buffer.contents buf

let build_native_reduce ~dir ~base ~halo ~strides :
    (Backend.reduce_fn, string) result =
  build_shared ~dir ~base ~art_ext:".cmxs" ~src_ext:".ml" ~tool:ocaml_tool
    ~cmd:ocaml_cmd
    ~emit:(fun () -> emit_ocaml_reduce ~base ~halo ~strides)
    ~load:(fun art -> load_native ~base art)

let build_c_reduce ~dir ~base ~halo ~strides :
    (Backend.reduce_fn, string) result =
  build_shared ~dir ~base ~art_ext:".so" ~src_ext:".c" ~tool:c_tool ~cmd:c_cmd
    ~emit:(fun () -> emit_c_reduce ~base ~halo ~strides)
    ~load:(fun art ->
      try
        let fn = dlopen_sym art "msc_reduce" in
        Ok (fun op a b lo hi -> c_call_reduce fn op a b lo hi)
      with Failure m -> Error ("dlopen: " ^ m))

let compile_reduce ~backend ~shape ~halo ~strides =
  match (backend : Backend.t) with
  | Interp -> Error "interpreter backend compiles nothing"
  | (Native_ocaml | Compiled_c) as b ->
      let key =
        Digest.to_hex
          (Digest.string
             (String.concat "\x00"
                [
                  "reduce";
                  emitter_version;
                  Marshal.to_string (shape, halo, strides) [];
                ]))
      in
      let base = Printf.sprintf "msc_reduce_%s_%s" emitter_version key in
      let memo_key = Backend.to_string b ^ ":" ^ base in
      with_lock (fun () ->
          match Hashtbl.find_opt reduce_memo memo_key with
          | Some fn ->
              incr memo_hits;
              Ok fn
          | None -> (
              let dir = cache_dir () in
              (try mkdir_p dir with _ -> ());
              let result =
                classified (fun () ->
                    match b with
                    | Backend.Native_ocaml ->
                        build_native_reduce ~dir ~base ~halo ~strides
                    | Backend.Compiled_c ->
                        build_c_reduce ~dir ~base ~halo ~strides
                    | Backend.Interp -> assert false)
              in
              match result with
              | Ok fn ->
                  Hashtbl.replace reduce_memo memo_key fn;
                  result
              | Error _ -> result))
