(* Runtime kernel compilation: emit a specialized kernel per (plan, term),
   compile it with the host toolchain, and load it back as a
   Backend.kernel_fn. See jit.mli for the cache layout and backend.mli for
   the calling convention.

   Bit-identity with the interpreter is a hard contract, maintained by
   emitting the *same* floating-point expression the interpreter
   evaluates:

   - taps arities with a dedicated unrolled path in interp.ml (3/5/7/9/13)
     sum as a plain left-associated chain [c0*x0 +. c1*x1 +. ...];
   - every other taps arity, and all bilinear kernels, lead the chain with
     [0.0 +.] because the interpreter's generic paths start their
     accumulator at 0.0 (observable through the sign of a -0.0 result);
   - coefficients are printed as hex float literals (exact round-trip,
     valid in both OCaml and C99);
   - C kernels are compiled with -ffp-contract=off (GCC defaults to
     contraction, and a fused multiply-add rounds differently). *)

external dlopen_sym : string -> string -> nativeint = "msc_jit_dlopen"

external c_call :
  nativeint ->
  int ->
  float ->
  float array ->
  float array ->
  float array array ->
  int array ->
  int array ->
  unit = "msc_jit_call_bytecode" "msc_jit_call_native"
[@@noalloc]

external named_value : string -> Obj.t = "msc_jit_named_value"

(* Force the Callback unit into the host image: Dynlink-loaded kernels
   hand their closure back through [Callback.register], so the module must
   be linked even when nothing else in the program uses it. *)
let () = Callback.register "msc_jit_host_alive" ()

type stats = {
  memo_hits : int;
  disk_hits : int;
  compiles : int;
  failures : int;
}

let lock = Mutex.create ()
let memo : (string, Backend.kernel_fn) Hashtbl.t = Hashtbl.create 16
let memo_hits = ref 0
let disk_hits = ref 0
let compiles = ref 0
let failures = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let stats () =
  with_lock (fun () ->
      {
        memo_hits = !memo_hits;
        disk_hits = !disk_hits;
        compiles = !compiles;
        failures = !failures;
      })

let clear_memo () = with_lock (fun () -> Hashtbl.reset memo)

let cache_dir () =
  match Sys.getenv_opt "MSC_KERNEL_CACHE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "msc-kernels"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* [Sys.command] goes through /bin/sh by absolute path, so toolchain
   discovery honours the *current* PATH — a stripped PATH cleanly reports
   "not found" rather than crashing, which is what the fallback tests
   exercise. Re-checked on every compile, never cached. *)
let have_tool tool =
  Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" tool) = 0

let read_log path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let k = min n 800 in
    seek_in ic (n - k);
    let s = really_input_string ic k in
    close_in ic;
    String.trim s
  with _ -> ""

let write_atomic ~dir ~dst content =
  let tmp = Filename.temp_file ~temp_dir:dir "msc_src" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp dst

(* {2 Emission} *)

(* Hex float literals round-trip exactly and parse in OCaml and C99 alike;
   always parenthesized so a leading minus never fuses with the
   surrounding expression. *)
let flit f = Printf.sprintf "(%h)" f
let idx d =
  if d = 0 then "i"
  else if d > 0 then Printf.sprintf "i + %d" d
  else Printf.sprintf "i - %d" (-d)

(* The arities interp.ml unrolls by hand (whose sums do NOT start at 0.0). *)
let unrolled_taps n = n = 3 || n = 5 || n = 7 || n = 9 || n = 13

let ocaml_sum (spec : Interp.spec) =
  match spec with
  | Spec_taps { taps_coeffs; taps_deltas } ->
      let term k c =
        Printf.sprintf "%s *. Array.unsafe_get _src (%s)" (flit c)
          (idx taps_deltas.(k))
      in
      let s =
        String.concat " +. " (Array.to_list (Array.mapi term taps_coeffs))
      in
      if unrolled_taps (Array.length taps_coeffs) then s else "0.0 +. " ^ s
  | Spec_bilinear b ->
      let term k =
        let c = flit b.bil_coeffs.(k) in
        match b.bil_kinds.(k) with
        | 0 ->
            Printf.sprintf
              "%s *. Array.unsafe_get _a%d (%s) *. Array.unsafe_get _src (%s)"
              c k
              (idx b.bil_aux_deltas.(k))
              (idx b.bil_in_deltas.(k))
        | 1 ->
            Printf.sprintf "%s *. Array.unsafe_get _src (%s)" c
              (idx b.bil_in_deltas.(k))
        | _ ->
            Printf.sprintf "%s *. Array.unsafe_get _a%d (%s)" c k
              (idx b.bil_aux_deltas.(k))
      in
      "0.0 +. "
      ^ String.concat " +. "
          (List.init (Array.length b.bil_coeffs) term)
  | Spec_tree -> assert false

let c_sum (spec : Interp.spec) =
  match spec with
  | Spec_taps { taps_coeffs; taps_deltas } ->
      let term k c =
        Printf.sprintf "%s * src[%s]" (flit c) (idx taps_deltas.(k))
      in
      let s =
        String.concat " + " (Array.to_list (Array.mapi term taps_coeffs))
      in
      if unrolled_taps (Array.length taps_coeffs) then s else "0.0 + " ^ s
  | Spec_bilinear b ->
      let term k =
        let c = flit b.bil_coeffs.(k) in
        match b.bil_kinds.(k) with
        | 0 ->
            Printf.sprintf "%s * _a%d[%s] * src[%s]" c k
              (idx b.bil_aux_deltas.(k))
              (idx b.bil_in_deltas.(k))
        | 1 -> Printf.sprintf "%s * src[%s]" c (idx b.bil_in_deltas.(k))
        | _ -> Printf.sprintf "%s * _a%d[%s]" c k (idx b.bil_aux_deltas.(k))
      in
      "0.0 + "
      ^ String.concat " + " (List.init (Array.length b.bil_coeffs) term)
  | Spec_tree -> assert false

let aux_terms (spec : Interp.spec) =
  match spec with
  | Spec_bilinear b ->
      List.filter
        (fun k -> b.bil_kinds.(k) = 0 || b.bil_kinds.(k) = 2)
        (List.init (Array.length b.bil_kinds) Fun.id)
  | _ -> []

(* The flat row base for outer coordinates [i0..] and last-dim start
   [l<last>], with halo offsets and strides folded to literals. *)
let base_expr ~nd ~halo ~strides =
  let last = nd - 1 in
  String.concat " + "
    (List.init nd (fun d ->
         let coord =
           if d = last then Printf.sprintf "l%d" d else Printf.sprintf "i%d" d
         in
         let shifted =
           if halo.(d) = 0 then coord
           else Printf.sprintf "(%s + %d)" coord halo.(d)
         in
         if strides.(d) = 1 then shifted
         else Printf.sprintf "%s * %d" shifted strides.(d)))

let emit_ocaml ~base ~halo ~strides spec =
  let nd = Array.length strides in
  let last = nd - 1 in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "(* Kernel %s -- generated by Msc_exec.Jit; do not edit. *)\n" base;
  pr "let kernel (_wb : int) (_scale : float) (_src : float array)\n";
  pr "    (_dst : float array) (_aux : float array array) (_lo : int array)\n";
  pr "    (_hi : int array) : unit =\n";
  List.iter
    (fun k -> pr "  let _a%d = Array.unsafe_get _aux %d in\n" k k)
    (aux_terms spec);
  for d = 0 to last do
    pr "  let l%d = Array.unsafe_get _lo %d in\n" d d;
    pr "  let h%d = Array.unsafe_get _hi %d in\n" d d
  done;
  pr "  let len = h%d - l%d in\n" last last;
  pr "  if len > 0 then begin\n";
  for d = 0 to last - 1 do
    pr "  for i%d = l%d to h%d - 1 do\n" d d d
  done;
  pr "  let base = %s in\n" (base_expr ~nd ~halo ~strides);
  let iexpr =
    if strides.(last) = 1 then "base + c"
    else Printf.sprintf "base + c * %d" strides.(last)
  in
  let sum = ocaml_sum spec in
  let loop body =
    pr "  for c = 0 to len - 1 do\n";
    pr "    let i = %s in\n" iexpr;
    pr "    Array.unsafe_set _dst i (%s)\n" body;
    pr "  done\n"
  in
  pr "  (if _wb = 0 then begin\n";
  loop sum;
  pr "  end\n";
  pr "  else if _wb = 1 then begin\n";
  loop (Printf.sprintf "_scale *. (%s)" sum);
  pr "  end\n";
  pr "  else begin\n";
  loop (Printf.sprintf "Array.unsafe_get _dst i +. _scale *. (%s)" sum);
  pr "  end)\n";
  for _ = 0 to last - 1 do
    pr "  done\n"
  done;
  pr "  end\n";
  pr "\nlet () = Callback.register %S kernel\n" ("msc_jit_" ^ base);
  Buffer.contents buf

let emit_c ~base ~halo ~strides spec =
  let nd = Array.length strides in
  let last = nd - 1 in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "/* Kernel %s -- generated by Msc_exec.Jit; do not edit. */\n" base;
  pr "void msc_kernel(long wb, double scale, const double *src, double *dst,\n";
  pr "                const double **aux, const long *lo, const long *hi)\n";
  pr "{\n";
  let auxl = aux_terms spec in
  if auxl = [] then pr "  (void)aux;\n";
  List.iter (fun k -> pr "  const double *_a%d = aux[%d];\n" k k) auxl;
  for d = 0 to last do
    pr "  long l%d = lo[%d]; long h%d = hi[%d];\n" d d d d
  done;
  pr "  long len = h%d - l%d;\n" last last;
  pr "  if (len <= 0) return;\n";
  for d = 0 to last - 1 do
    pr "  for (long i%d = l%d; i%d < h%d; i%d++) {\n" d d d d d
  done;
  pr "  long base = %s;\n" (base_expr ~nd ~halo ~strides);
  let iexpr =
    if strides.(last) = 1 then "base + c"
    else Printf.sprintf "base + c * %d" strides.(last)
  in
  let sum = c_sum spec in
  let loop body =
    pr "    for (long c = 0; c < len; c++) {\n";
    pr "      long i = %s;\n" iexpr;
    pr "      dst[i] = %s;\n" body;
    pr "    }\n"
  in
  pr "  if (wb == 0) {\n";
  loop sum;
  pr "  } else if (wb == 1) {\n";
  loop (Printf.sprintf "scale * (%s)" sum);
  pr "  } else {\n";
  loop (Printf.sprintf "dst[i] + scale * (%s)" sum);
  pr "  }\n";
  for _ = 0 to last - 1 do
    pr "  }\n"
  done;
  pr "}\n";
  Buffer.contents buf

(* {2 Build + load} *)

let build_native ~dir ~base ~halo ~strides spec =
  let cmxs = Filename.concat dir (base ^ ".cmxs") in
  let load () =
    try
      Dynlink.loadfile_private cmxs;
      Ok (Obj.obj (named_value ("msc_jit_" ^ base)) : Backend.kernel_fn)
    with
    | Dynlink.Error e -> Error ("dynlink: " ^ Dynlink.error_message e)
    | Not_found -> Error "loaded kernel did not register itself"
    | Failure m -> Error m
  in
  if Sys.file_exists cmxs then begin
    incr disk_hits;
    load ()
  end
  else if not (have_tool "ocamlopt") then Error "ocamlopt not found on PATH"
  else begin
    let ml = base ^ ".ml" in
    write_atomic ~dir ~dst:(Filename.concat dir ml)
      (emit_ocaml ~base ~halo ~strides spec);
    let tmp = Filename.temp_file ~temp_dir:dir base ".cmxs" in
    let log = base ^ ".log" in
    let cmd =
      Printf.sprintf "cd %s && ocamlopt -shared -o %s %s > %s 2>&1"
        (Filename.quote dir)
        (Filename.quote (Filename.basename tmp))
        (Filename.quote ml) (Filename.quote log)
    in
    if Sys.command cmd <> 0 then begin
      (try Sys.remove tmp with Sys_error _ -> ());
      Error ("ocamlopt failed: " ^ read_log (Filename.concat dir log))
    end
    else begin
      Sys.rename tmp cmxs;
      incr compiles;
      load ()
    end
  end

let build_c ~dir ~base ~halo ~strides spec =
  let so = Filename.concat dir (base ^ ".so") in
  let load () =
    try
      let fn = dlopen_sym so "msc_kernel" in
      Ok
        (fun wb scale src dst aux lo hi -> c_call fn wb scale src dst aux lo hi)
    with Failure m -> Error ("dlopen: " ^ m)
  in
  if Sys.file_exists so then begin
    incr disk_hits;
    load ()
  end
  else
    let compiler =
      if have_tool "cc" then Some "cc"
      else if have_tool "gcc" then Some "gcc"
      else None
    in
    match compiler with
    | None -> Error "no C compiler (cc/gcc) found on PATH"
    | Some cc ->
        let c = base ^ ".c" in
        write_atomic ~dir ~dst:(Filename.concat dir c)
          (emit_c ~base ~halo ~strides spec);
        let tmp = Filename.temp_file ~temp_dir:dir base ".so" in
        let log = base ^ ".log" in
        let cmd =
          (* -ffp-contract=off: contraction would fuse mul+add and change
             rounding, breaking bit-identity with the interpreter. *)
          Printf.sprintf
            "cd %s && %s -O3 -ffp-contract=off -fPIC -shared -o %s %s > %s 2>&1"
            (Filename.quote dir) cc
            (Filename.quote (Filename.basename tmp))
            (Filename.quote c) (Filename.quote log)
        in
        if Sys.command cmd <> 0 then begin
          (try Sys.remove tmp with Sys_error _ -> ());
          Error (cc ^ " failed: " ^ read_log (Filename.concat dir log))
        end
        else begin
          Sys.rename tmp so;
          incr compiles;
          load ()
        end

let spec_ok (spec : Interp.spec) =
  match spec with
  | Spec_tree -> Error "tree-mode kernel is not compilable"
  | Spec_taps { taps_coeffs; _ } ->
      if Array.for_all Float.is_finite taps_coeffs then Ok ()
      else Error "non-finite tap coefficient"
  | Spec_bilinear b ->
      if Array.length b.bil_coeffs > 64 then
        Error "too many bilinear terms for the C calling convention"
      else if not (Array.for_all Float.is_finite b.bil_coeffs) then
        Error "non-finite bilinear coefficient"
      else if
        (* An aux-reading term without a named aux tensor falls back to the
           input grid in the interpreter; the compiled convention resolves
           aux arrays once at runtime creation, so it cannot express that. *)
        Array.exists
          (fun k ->
            (b.bil_kinds.(k) = 0 || b.bil_kinds.(k) = 2)
            && b.bil_aux_names.(k) = None)
          (Array.init (Array.length b.bil_kinds) Fun.id)
      then Error "bilinear term reads an unnamed aux tensor"
      else Ok ()

let compile_term ~backend ~plan_digest ~term_index interp =
  match (backend : Backend.t) with
  | Interp -> Error "interpreter backend compiles nothing"
  | (Native_ocaml | Compiled_c) as b -> (
      let spec = Interp.spec interp in
      match spec_ok spec with
      | Error _ as e -> e
      | Ok () ->
          let halo = Interp.halo interp and strides = Interp.strides interp in
          (* The key digests everything baked into the generated code; the
             plan digest alone is not enough because distributed ranks
             compile per-rank geometries under related plans. *)
          let key =
            Digest.to_hex
              (Digest.string
                 (String.concat "\x00"
                    [
                      plan_digest;
                      string_of_int term_index;
                      Marshal.to_string
                        (Interp.shape interp, halo, strides, spec)
                        [];
                    ]))
          in
          let base = Printf.sprintf "msc_kern_%s_t%d" key term_index in
          let memo_key = Backend.to_string b ^ ":" ^ base in
          with_lock (fun () ->
              match Hashtbl.find_opt memo memo_key with
              | Some fn ->
                  incr memo_hits;
                  Ok fn
              | None -> (
                  let dir = cache_dir () in
                  (try mkdir_p dir with _ -> ());
                  let result =
                    try
                      match b with
                      | Backend.Native_ocaml ->
                          build_native ~dir ~base ~halo ~strides spec
                      | Backend.Compiled_c ->
                          build_c ~dir ~base ~halo ~strides spec
                      | Backend.Interp -> assert false
                    with e -> Error (Printexc.to_string e)
                  in
                  match result with
                  | Ok fn ->
                      Hashtbl.replace memo memo_key fn;
                      Ok fn
                  | Error _ as e ->
                      incr failures;
                      e)))
