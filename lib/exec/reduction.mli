(** Grid-reduction executor: evaluates a {!Msc_ir.Reduce.op} over the
    interior of one grid (or a pointwise pair), on the {!Exec.Config}
    backend and pool, with the bit-stability contract of
    {!Msc_ir.Reduce}:

    - each tile task accumulates a partial sequentially in row-major
      order (interpreter reference, or the compiled fast path from
      {!Jit.compile_reduce} — bit-identical by construction);
    - partials are folded with {!Msc_ir.Reduce.tree_combine} over the
      {e task index}, so the result never depends on pool size or worker
      scheduling.

    Workers only fill disjoint slots of the partials array in parallel;
    the combine tree runs on the calling domain. *)

type t

val create :
  ?config:Exec.Config.t ->
  ?tasks:(int array * int array) array ->
  Grid.t ->
  t
(** An executor for grids of this geometry (the grid supplies shape, halo
    and strides; its data is not retained). [tasks] (default: one task
    covering the whole interior) are the tile-partial boxes, normally a
    plan's tiling ({!Msc_schedule.Plan.reduce_plan} /
    {!Runtime.tiles}); they must tile the interior disjointly for the
    usual operator semantics, though any box list inside the interior is
    accepted (e.g. for partial-domain norms). [config] supplies the
    backend (compiled backends fall back to the interpreter per the usual
    rules) and the pool that fills partials.
    @raise Invalid_argument when a task box exceeds the interior. *)

val run : t -> op:Msc_ir.Reduce.op -> ?with_:Grid.t -> Grid.t -> float
(** Reduce the grid's interior. [with_] supplies the second grid of the
    binary operators ([Dot]); it must share the executor's geometry.
    @raise Invalid_argument on a geometry mismatch, or [Dot] without
    [with_]. *)

val run_raw : t -> op:Msc_ir.Reduce.op -> ?with_:Grid.t -> Grid.t -> float
(** {!run} without {!Msc_ir.Reduce.finalize} — the still-combinable local
    accumulation (e.g. the sum of squares for [Norm2]). The distributed
    layer combines these across ranks with
    {!Mpi_sim.allreduce} and finalizes exactly once, so a distributed
    norm is bit-identical to the single-grid norm of the gathered
    state. *)

val partial :
  op:Msc_ir.Reduce.op ->
  ?with_:Grid.t ->
  Grid.t ->
  lo:int array ->
  hi:int array ->
  float
(** The interpreter reference: one sequential row-major partial over the
    interior box [\[lo, hi)]. This is the fold every compiled kernel must
    reproduce bitwise. *)

val compiled : t -> bool
(** Whether the compiled fast path is active (always [false] for the
    [Interp] backend). *)

val fallback : t -> string option
(** Why a compiled backend degraded to the interpreter, when it did. *)

val tasks : t -> (int array * int array) array
