(** Boundary conditions for the physical edges of the domain.

    The paper's related work (§2.4) notes STELLA "supports updating the halo
    data through boundary conditions or its halo-exchanging library"; MSC's
    generated codes treat the physical halo as data. This module provides
    the three standard conditions; the default everywhere is
    [Dirichlet 0.0], which matches the paper's zero-halo convention.

    A condition is applied to a grid's halo cells. In distributed runs only
    the faces on the physical boundary are applied (interior faces are owned
    by the halo exchange); periodic domains have no physical faces at all —
    their wrap-around traffic goes through the exchange. *)

type t =
  | Dirichlet of float  (** halo cells hold a constant *)
  | Periodic  (** halo cells wrap to the opposite edge *)
  | Reflect  (** halo cells mirror the interior (zero-flux) *)

val apply : ?low:bool array -> ?high:bool array -> t -> Grid.t -> unit
(** Refresh the halo cells whose out-of-range dimensions all lie on physical
    faces. [low]/[high] mark which faces are physical per dimension (default
    all). Mapping is per-dimension, so edges and corners compose correctly;
    non-physical out-of-range dimensions are kept as-is (their data comes
    from a prior exchange).

    Runs segment-at-a-time: contiguous [Array.fill] / [Array.blit] per halo
    row rather than a walk of the whole padded box — this pass used to
    dominate small-grid timesteps. Bit-identical to {!apply_reference}. *)

val apply_reference : ?low:bool array -> ?high:bool array -> t -> Grid.t -> unit
(** The original cell-at-a-time implementation, kept as the parity
    reference for {!apply} and as the baseline leg of the kernels bench
    group. *)

val mapped_coord : t -> extent:int -> int -> int option
(** Where one out-of-range coordinate reads from: [None] for Dirichlet
    (constant, no source), [Some c'] for periodic/reflect. In-range
    coordinates map to themselves. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
