module Backend = Backend

type engine =
  | Bulk_synchronous
  | Overlapped
  | Temporal_blocked of { depth : int }

module Config = struct
  type t = {
    backend : Backend.t;
    engine : engine;
    pool : Msc_util.Domain_pool.t;
    fuse : bool;
  }

  let default =
    {
      backend = Backend.Interp;
      engine = Overlapped;
      pool = Msc_util.Domain_pool.sequential;
      fuse = true;
    }

  let make ?(backend = Backend.Interp) ?(engine = Overlapped)
      ?(pool = Msc_util.Domain_pool.sequential) ?(fuse = true) () =
    { backend; engine; pool; fuse }
end
