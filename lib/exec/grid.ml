type t = {
  shape : int array;
  halo : int array;
  padded : int array;
  strides : int array;
  data : float array;
}

let create ~shape ~halo =
  let ndim = Array.length shape in
  if ndim = 0 then invalid_arg "Grid.create: empty shape";
  if Array.length halo <> ndim then invalid_arg "Grid.create: halo rank mismatch";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Grid.create: bad extent") shape;
  Array.iter (fun h -> if h < 0 then invalid_arg "Grid.create: bad halo") halo;
  let padded = Array.mapi (fun d n -> n + (2 * halo.(d))) shape in
  let strides = Array.make ndim 1 in
  for d = ndim - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * padded.(d + 1)
  done;
  let total = padded.(0) * strides.(0) in
  { shape; halo; padded; strides; data = Array.make total 0.0 }

let of_tensor (tensor : Msc_ir.Tensor.t) =
  create ~shape:tensor.Msc_ir.Tensor.shape ~halo:tensor.Msc_ir.Tensor.halo

let like t = create ~shape:t.shape ~halo:t.halo

let copy t = { t with data = Array.copy t.data }

let ndim t = Array.length t.shape
let interior_elems t = Array.fold_left ( * ) 1 t.shape

let flat_index t coord =
  let acc = ref 0 in
  for d = 0 to Array.length coord - 1 do
    acc := !acc + ((coord.(d) + t.halo.(d)) * t.strides.(d))
  done;
  !acc

let get t coord = t.data.(flat_index t coord)
let set t coord v = t.data.(flat_index t coord) <- v

let iter_interior t fn =
  let nd = ndim t in
  let coord = Array.make nd 0 in
  let rec go d =
    if d = nd then fn coord
    else
      for k = 0 to t.shape.(d) - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
  in
  go 0

let fill t fn = iter_interior t (fun coord -> set t coord (fn coord))

let fill_extended t fn =
  let nd = ndim t in
  let coord = Array.make nd 0 in
  let rec go d =
    if d = nd then set t coord (fn coord)
    else
      for k = -t.halo.(d) to t.shape.(d) + t.halo.(d) - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
  in
  go 0

let fill_random t rng = fill t (fun _ -> Msc_util.Prng.uniform rng)

let fill_all t v = Array.fill t.data 0 (Array.length t.data) v

(* Walk the interior one contiguous innermost row at a time ([base] is the
   flat index of the row's first element; rows have length [shape.(nd-1)]
   because the innermost stride is 1 by construction). *)
let iter_interior_rows t fn =
  let nd = ndim t in
  let last = nd - 1 in
  let coord = Array.make nd 0 in
  let rec go d =
    if d = last then fn (flat_index t coord)
    else
      for k = 0 to t.shape.(d) - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
  in
  go 0

let fill_interior t v =
  let len = t.shape.(ndim t - 1) in
  iter_interior_rows t (fun base -> Array.fill t.data base len v)

let in_interior t coord =
  let ok = ref true in
  Array.iteri (fun d c -> if c < 0 || c >= t.shape.(d) then ok := false) coord;
  !ok

let clear_halo t =
  (* Walk the padded box; zero every cell outside the interior. *)
  let nd = ndim t in
  let coord = Array.make nd 0 in
  let rec go d =
    if d = nd then begin
      let interior_coord = Array.mapi (fun k c -> c - t.halo.(k)) coord in
      if not (in_interior t interior_coord) then begin
        let flat = ref 0 in
        Array.iteri (fun k c -> flat := !flat + (c * t.strides.(k))) coord;
        t.data.(!flat) <- 0.0
      end
    end
    else
      for k = 0 to t.padded.(d) - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
  in
  go 0

let blit_interior ~src ~dst =
  if src.shape <> dst.shape then invalid_arg "Grid.blit_interior: shape mismatch";
  (* Rows are contiguous in both grids even when their halos differ, so the
     copy is one [Array.blit] per innermost row. *)
  let nd = ndim src in
  let last = nd - 1 in
  let len = src.shape.(last) in
  let coord = Array.make nd 0 in
  let rec go d =
    if d = last then
      Array.blit src.data (flat_index src coord) dst.data (flat_index dst coord) len
    else
      for k = 0 to src.shape.(d) - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
  in
  go 0

let max_abs t =
  let acc = ref 0.0 in
  iter_interior t (fun coord -> acc := Float.max !acc (Float.abs (get t coord)));
  !acc

let max_rel_error ~reference t =
  if reference.shape <> t.shape then invalid_arg "Grid.max_rel_error: shape mismatch";
  let worst = ref 0.0 in
  iter_interior reference (fun coord ->
      let a = get reference coord and b = get t coord in
      let denom = Float.max (Float.abs a) 1.0 in
      worst := Float.max !worst (Float.abs (a -. b) /. denom));
  !worst

let checksum t =
  let acc = ref 0.0 in
  iter_interior t (fun coord -> acc := !acc +. get t coord);
  !acc

let magic = "MSCGRID1"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let buf = Bytes.create 8 in
      let emit_int n =
        Bytes.set_int64_le buf 0 (Int64.of_int n);
        output_bytes oc buf
      in
      emit_int (ndim t);
      Array.iter emit_int t.shape;
      Array.iter emit_int t.halo;
      Array.iter
        (fun v ->
          Bytes.set_int64_le buf 0 (Int64.bits_of_float v);
          output_bytes oc buf)
        t.data)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = invalid_arg (Printf.sprintf "Grid.load %s: %s" path msg) in
      let header = really_input_string ic (String.length magic) in
      if not (String.equal header magic) then fail "bad magic";
      let buf = Bytes.create 8 in
      let read_int () =
        really_input ic buf 0 8;
        Int64.to_int (Bytes.get_int64_le buf 0)
      in
      let nd = read_int () in
      if nd < 1 || nd > 8 then fail "implausible rank";
      let shape = Array.init nd (fun _ -> read_int ()) in
      let halo = Array.init nd (fun _ -> read_int ()) in
      let t =
        try create ~shape ~halo with Invalid_argument m -> fail m
      in
      (try
         for i = 0 to Array.length t.data - 1 do
           really_input ic buf 0 8;
           t.data.(i) <- Int64.float_of_bits (Bytes.get_int64_le buf 0)
         done
       with End_of_file -> fail "truncated data");
      t)

let pp_stats ppf t =
  Format.fprintf ppf "grid[%s] halo[%s] max|x|=%.6g sum=%.6g"
    (String.concat "," (Array.to_list (Array.map string_of_int t.shape)))
    (String.concat "," (Array.to_list (Array.map string_of_int t.halo)))
    (max_abs t) (checksum t)
