(** Kernel interpreter: executes a kernel sweep over real grids.

    A kernel is compiled once against a grid geometry (strides + halo).
    Three execution modes, fastest applicable wins:

    - {b taps}: single-grid linear kernels become a flat (coefficient,
      flat-delta) array evaluated in a tight loop, fully unrolled for the
      3/5/7-point stars, the 9-point arities (2-D r=2 star, 2-D r=1 box)
      and the 13-point 3-D r=2 star;
    - {b bilinear}: multi-grid kernels of the form
      [sum_k c_k * Aux[p+a_k] * In[p+b_k]] (variable-coefficient stencils,
      the §5.6 WRF/POP2 shape) become precompiled (coefficient, kind,
      aux-delta, input-delta) parallel arrays — per-term aux arrays are
      resolved once per sweep, the per-point dispatch is an integer match;
    - {b tree}: anything else falls back to expression-tree evaluation.

    Every sweep comes in three writeback flavours, all direct loops with no
    per-point closure: overwrite ([apply_range]), overwrite-with-scale
    ([apply_scaled_range] — the runtime's write-through fast path, which
    lets the first stencil term skip the zero fill), and accumulate
    ([accumulate_range]). The pre-optimization closure-based implementation
    is retained as [generic_sweep] for parity tests and benchmarks.

    Kernels reading aux grids must be given them at application time via
    [~aux]; all grids must share the compiled geometry. *)

type t

val compile :
  ?trace:Msc_trace.t ->
  ?force_tree:bool ->
  Msc_ir.Kernel.t ->
  geometry:Grid.t ->
  t
(** [geometry] supplies strides/halo only; any grid with the same shape and
    halo can be passed to the apply functions. [trace] records an
    [interp.compile] span plus [interp.mode.<taps|bilinear|tree>] and
    [interp.kernel_points] counters.

    [force_tree] (default false) skips the taps/bilinear fast paths and
    evaluates the expression tree verbatim. The fast paths merge
    duplicate-offset taps and fold/distribute coefficients, which changes
    rounding relative to the written tree; the pipeline graph executor
    forces tree mode on every stage so that fused compound kernels (which
    substitute producer trees into consumer trees) stay bit-identical to
    the unfused stage-at-a-time reference.
    @raise Invalid_argument if the kernel rank mismatches the grid. *)

val kernel : t -> Msc_ir.Kernel.t

val mode_name : t -> string
(** ["taps"], ["bilinear"] or ["tree"] — which execution mode {!compile}
    selected. *)

val is_linear : t -> bool
(** Taps mode. *)

val is_bilinear : t -> bool

(** {1 Introspection for the compiled backends}

    The compiled backends ({!Jit}) emit a specialized kernel from the same
    precompiled representation the interpreter executes, so a compiled
    sweep and an interpreted sweep agree bit-exactly by construction. *)

type taps_spec = { taps_coeffs : float array; taps_deltas : int array }
(** Linear single-grid kernels: coefficient and flat-delta per tap, in the
    accumulation order the interpreter uses. *)

type bilinear_spec = {
  bil_coeffs : float array;
  bil_kinds : int array;
      (** per-term dispatch: 0 = aux*input, 1 = input only, 2 = aux only *)
  bil_aux_names : string option array;
      (** per-term aux tensor name; [None] for input-only terms *)
  bil_aux_deltas : int array;
  bil_in_deltas : int array;
}

type spec =
  | Spec_taps of taps_spec
  | Spec_bilinear of bilinear_spec
  | Spec_tree  (** expression-tree kernels are not compilable *)

val spec : t -> spec

val shape : t -> int array
val halo : t -> int array
val strides : t -> int array

val check_grids : t -> src:Grid.t -> dst:Grid.t -> unit
(** The geometry/aliasing validation every sweep performs, exposed so the
    compiled backends can guard their (unchecked) kernels identically.
    @raise Invalid_argument on a geometry mismatch or [src == dst]. *)

val check_range : t -> lo:int array -> hi:int array -> unit
(** The range validation every sweep performs (interior plus the
    [halo - radius] slack). @raise Invalid_argument when out of bounds. *)

val apply_range :
  ?aux:(string * Grid.t) list ->
  t -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array -> unit
(** [dst\[p\] <- K(src)\[p\]] for points [lo <= p < hi]. The range may
    extend past the interior by up to [halo - kernel radius] per dimension
    (the reads then still land inside the padded box) — the deep-halo
    temporal-blocking engine sweeps such extended ranges to recompute ghost
    cells; with the common [halo = radius] geometry the range is confined
    to the interior. [src], [dst] and every aux grid must share the
    compiled geometry; [src] must not alias [dst].
    @raise Invalid_argument if the kernel reads an aux tensor that was not
    supplied, or the range exceeds the allowed extension. *)

val apply_scaled_range :
  ?aux:(string * Grid.t) list ->
  t -> scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array ->
  unit
(** [dst\[p\] <- scale * K(src)\[p\]] over the range — an overwrite, not an
    accumulation, so the destination needs no prior zero fill. Bit-identical
    to [accumulate_range] into a zeroed destination. *)

val accumulate_range :
  ?aux:(string * Grid.t) list ->
  t -> scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array ->
  unit
(** [dst\[p\] <- dst\[p\] + scale * K(src)\[p\]] over the range. *)

val apply : ?aux:(string * Grid.t) list -> t -> src:Grid.t -> dst:Grid.t -> unit
(** Full-interior [apply_range]. *)

val identity_accumulate_range :
  scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array -> unit
(** [dst += scale * src] over the range (the [State] term of a stencil). *)

val identity_apply_range :
  scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array -> unit
(** [dst <- scale * src] over the range — write-through form of the [State]
    term; degrades to contiguous row blits when [scale = 1]. *)

(** {1 Retained generic path}

    The pre-optimization implementation: every point funnelled through a
    [write] closure, bilinear terms re-dispatched per point. Kept as the
    in-tree reference the specialized loops are parity-tested against, and
    as the baseline of the [fastpath] bench group. Semantically identical
    to the fast paths (bit-exact for taps/tree, and for bilinear too — term
    order is preserved). *)

val generic_sweep :
  ?aux:(string * Grid.t) list ->
  t -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array ->
  write:(float array -> int -> float -> unit) -> unit

val generic_apply_range :
  ?aux:(string * Grid.t) list ->
  t -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array -> unit

val generic_accumulate_range :
  ?aux:(string * Grid.t) list ->
  t -> scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array ->
  unit
