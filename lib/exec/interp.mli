(** Kernel interpreter: executes a kernel sweep over real grids.

    A kernel is compiled once against a grid geometry (strides + halo).
    Three execution modes, fastest applicable wins:

    - {b taps}: single-grid linear kernels become a flat (coefficient,
      flat-delta) array evaluated in a tight loop;
    - {b bilinear}: multi-grid kernels of the form
      [sum_k c_k * Aux[p+a_k] * In[p+b_k]] (variable-coefficient stencils,
      the §5.6 WRF/POP2 shape) become (coefficient, aux-delta, input-delta)
      triples;
    - {b tree}: anything else falls back to expression-tree evaluation.

    Kernels reading aux grids must be given them at application time via
    [~aux]; all grids must share the compiled geometry. *)

type t

val compile : ?trace:Msc_trace.t -> Msc_ir.Kernel.t -> geometry:Grid.t -> t
(** [geometry] supplies strides/halo only; any grid with the same shape and
    halo can be passed to the apply functions. [trace] records an
    [interp.compile] span plus [interp.mode.<taps|bilinear|tree>] and
    [interp.kernel_points] counters.
    @raise Invalid_argument if the kernel rank mismatches the grid. *)

val kernel : t -> Msc_ir.Kernel.t

val mode_name : t -> string
(** ["taps"], ["bilinear"] or ["tree"] — which execution mode {!compile}
    selected. *)

val is_linear : t -> bool
(** Taps mode. *)

val is_bilinear : t -> bool

val apply_range :
  ?aux:(string * Grid.t) list ->
  t -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array -> unit
(** [dst\[p\] <- K(src)\[p\]] for interior points [lo <= p < hi].
    [src], [dst] and every aux grid must share the compiled geometry; [src]
    must not alias [dst]. @raise Invalid_argument if the kernel reads an aux
    tensor that was not supplied. *)

val accumulate_range :
  ?aux:(string * Grid.t) list ->
  t -> scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array ->
  unit
(** [dst\[p\] <- dst\[p\] + scale * K(src)\[p\]] over the range. *)

val apply : ?aux:(string * Grid.t) list -> t -> src:Grid.t -> dst:Grid.t -> unit
(** Full-interior [apply_range]. *)

val identity_accumulate_range :
  scale:float -> src:Grid.t -> dst:Grid.t -> lo:int array -> hi:int array -> unit
(** [dst += scale * src] over the range (the [State] term of a stencil). *)
