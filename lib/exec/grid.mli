(** Dense n-dimensional grids with halo padding (the runtime realisation of an
    SpNode). Data is stored row-major over the padded box in a flat float
    array; the interior is offset by the halo width in each dimension.

    Boundary convention throughout the reproduction: halo cells hold Dirichlet
    data (zero unless written by a halo exchange), matching how the paper's
    generated code treats physical boundaries. *)

type t = private {
  shape : int array;  (** interior extents *)
  halo : int array;
  padded : int array;
  strides : int array;  (** row-major strides over the padded box *)
  data : float array;  (** length = product of [padded] *)
}

val create : shape:int array -> halo:int array -> t
(** Zero-filled grid. @raise Invalid_argument on bad shapes. *)

val of_tensor : Msc_ir.Tensor.t -> t
val like : t -> t
val copy : t -> t
val ndim : t -> int
val interior_elems : t -> int

val flat_index : t -> int array -> int
(** Flat index of an interior coordinate (0-based, halo-adjusted). The
    coordinate may extend into the halo by up to the halo width. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val fill : t -> (int array -> float) -> unit
(** Set every interior point from its coordinate; halo is untouched. *)

val fill_extended : t -> (int array -> float) -> unit
(** Set every cell {e including the halo} from its interior-relative
    coordinate (halo cells get negative / beyond-extent coordinates). Used
    for static coefficient grids, whose boundary values are defined by the
    same closed form as the interior. *)

val fill_random : t -> Msc_util.Prng.t -> unit
(** Uniform values in [\[0,1)] over the interior. *)

val fill_all : t -> float -> unit
(** Every cell, halo included. *)

val fill_interior : t -> float -> unit
(** Every interior cell (halo untouched), as one [Array.fill] per contiguous
    innermost row — the cheap zero pass for sweeps that only accumulate into
    the interior. *)

val clear_halo : t -> unit
(** Zero all halo cells, keeping the interior. *)

val iter_interior : t -> (int array -> unit) -> unit
(** Visit interior coordinates in row-major order. The coordinate array is
    reused between calls; copy it if retained. *)

val blit_interior : src:t -> dst:t -> unit
(** Copy the interior region; shapes must match (halos may differ). One
    [Array.blit] per contiguous innermost row. *)

val max_abs : t -> float
val max_rel_error : reference:t -> t -> float
(** max over interior of [|a-b| / max(|a|, 1)]; shapes must match. *)

val checksum : t -> float
(** Order-independent digest of the interior, for quick equality tests. *)

val save : t -> string -> unit
(** Serialise to a binary file: magic, rank, shape, halo, then the padded
    data as little-endian float64 — the on-disk format behind the DSL's
    [st.input(..., "/data/rand.data")]. *)

val load : string -> t
(** @raise Invalid_argument on a malformed or truncated file. *)

val pp_stats : Format.formatter -> t -> unit
