type t = Dirichlet of float | Periodic | Reflect

let mapped_coord t ~extent c =
  if c >= 0 && c < extent then Some c
  else
    match t with
    | Dirichlet _ -> None
    | Periodic -> Some (((c mod extent) + extent) mod extent)
    | Reflect -> Some (if c < 0 then -c - 1 else (2 * extent) - c - 1)

let check_masks ?low ?high t (g : Grid.t) =
  let nd = Grid.ndim g in
  let low = match low with Some a -> a | None -> Array.make nd true in
  let high = match high with Some a -> a | None -> Array.make nd true in
  if Array.length low <> nd || Array.length high <> nd then
    invalid_arg "Bc.apply: mask rank mismatch";
  (match t with
  | Reflect | Periodic ->
      Array.iteri
        (fun d h ->
          if h > g.Grid.shape.(d) then
            invalid_arg "Bc.apply: halo wider than the interior")
        g.Grid.halo
  | Dirichlet _ -> ());
  (low, high)

(* The original per-cell implementation: walk every cell of the padded box,
   classify its out-of-range dimensions, map them one by one. Kept verbatim
   as the reference the fast path is parity-tested against (and as the
   baseline leg of the kernels bench group). *)
let apply_reference ?low ?high t (g : Grid.t) =
  let nd = Grid.ndim g in
  let low, high = check_masks ?low ?high t g in
  let coord = Array.make nd 0 in
  let mapped = Array.make nd 0 in
  let rec go d =
    if d = nd then begin
      (* Classify this cell's out-of-range dimensions. *)
      let physical_out = ref false and nonphysical_out = ref false in
      Array.iteri
        (fun k c ->
          if c < 0 then
            if low.(k) then physical_out := true else nonphysical_out := true
          else if c >= g.Grid.shape.(k) then
            if high.(k) then physical_out := true else nonphysical_out := true)
        coord;
      if !physical_out then begin
        match t with
        | Dirichlet v -> Grid.set g coord v
        | Periodic | Reflect ->
            let ok = ref true in
            Array.iteri
              (fun k c ->
                let is_physical_out =
                  (c < 0 && low.(k)) || (c >= g.Grid.shape.(k) && high.(k))
                in
                if is_physical_out then begin
                  match mapped_coord t ~extent:g.Grid.shape.(k) c with
                  | Some c' -> mapped.(k) <- c'
                  | None -> ok := false
                end
                else mapped.(k) <- c)
              coord;
            if !ok then Grid.set g coord (Grid.get g mapped)
      end
      else ignore !nonphysical_out
    end
    else
      for c = -g.Grid.halo.(d) to g.Grid.shape.(d) + g.Grid.halo.(d) - 1 do
        coord.(d) <- c;
        go (d + 1)
      done
  in
  go 0

(* Fast path. Split each dimension into its Lo [-h,0) / In [0,n) /
   Hi [n,n+h) segments and enumerate segment combinations; a combination
   needs work iff at least one dimension sits in a masked (physical) Lo/Hi
   segment. Within a combination every cell has the same classification, so
   rows become Array.fill (Dirichlet) or Array.blit (Periodic, and the
   unmapped-last-dim cases) instead of per-cell coordinate arithmetic —
   only Reflect along the last dimension copies element-wise (reversed
   source order).

   Source rows read by Periodic/Reflect have all their physical-out
   dimensions mapped into the interior and keep the remaining dimensions of
   the destination cell, so a source cell is never itself a written cell —
   the copy order is immaterial, exactly as in the reference. *)
let apply ?low ?high t (g : Grid.t) =
  let nd = Grid.ndim g in
  let low, high = check_masks ?low ?high t g in
  let n = g.Grid.shape and h = g.Grid.halo in
  let strides = g.Grid.strides and data = g.Grid.data in
  let last = nd - 1 in
  (* Per-dimension segment of the current combination: 0 = Lo, 1 = In,
     2 = Hi; [phys.(d)] caches whether that segment is masked physical. *)
  let seg = Array.make nd 1 in
  let phys = Array.make nd false in
  let seg_lo d = match seg.(d) with 0 -> -h.(d) | 1 -> 0 | _ -> n.(d) in
  let seg_len d = match seg.(d) with 1 -> n.(d) | _ -> h.(d) in
  let map_c d c =
    match t with
    | Dirichlet _ -> c
    | Periodic -> if c < 0 then c + n.(d) else if c >= n.(d) then c - n.(d) else c
    | Reflect ->
        if c < 0 then -c - 1
        else if c >= n.(d) then (2 * n.(d)) - c - 1
        else c
  in
  (* [cells] walks the outer dimensions of the current combination,
     threading the flat offsets of the row start on the destination side
     and (for Periodic/Reflect) the mapped source side. *)
  let rec cells d dst_off src_off =
    if d = last then begin
      let a = seg_lo last in
      let len = seg_len last in
      let dst_base = dst_off + ((a + h.(last)) * strides.(last)) in
      match t with
      | Dirichlet v -> Array.fill data dst_base len v
      | Periodic | Reflect ->
          if not phys.(last) then
            (* Last dim keeps its coordinates: whole-row copy. *)
            Array.blit data (src_off + ((a + h.(last)) * strides.(last)))
              data dst_base len
          else if t = Periodic then
            (* [-h,0) shifts to [n-h,n), [n,n+h) to [0,h): contiguous. *)
            Array.blit data
              (src_off + ((map_c last a + h.(last)) * strides.(last)))
              data dst_base len
          else
            (* Reflect: ascending destination reads descending source. *)
            let src_base = src_off + ((map_c last a + h.(last)) * strides.(last)) in
            for k = 0 to len - 1 do
              Array.unsafe_set data (dst_base + k)
                (Array.unsafe_get data (src_base - k))
            done
    end
    else
      let lo = seg_lo d and len = seg_len d in
      for c = lo to lo + len - 1 do
        let dst_off = dst_off + ((c + h.(d)) * strides.(d)) in
        let src_c = if phys.(d) then map_c d c else c in
        let src_off = src_off + ((src_c + h.(d)) * strides.(d)) in
        cells (d + 1) dst_off src_off
      done
  in
  let rec combos d any_phys =
    if d = nd then (if any_phys then cells 0 0 0)
    else
      for s = 0 to 2 do
        seg.(d) <- s;
        let p =
          match s with 0 -> low.(d) | 2 -> high.(d) | _ -> false
        in
        phys.(d) <- p;
        if seg_len d > 0 then combos (d + 1) (any_phys || p)
      done
  in
  combos 0 false

let pp ppf = function
  | Dirichlet v -> Format.fprintf ppf "dirichlet(%g)" v
  | Periodic -> Format.pp_print_string ppf "periodic"
  | Reflect -> Format.pp_print_string ppf "reflect"

let equal a b = a = b
