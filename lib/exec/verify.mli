(** §5.1 correctness methodology: run the optimized (scheduled, parallel,
    window-sliding) runtime and the naive serial reference side by side and
    compare relative errors against the per-precision thresholds. *)

type report = {
  stencil_name : string;
  steps : int;
  max_rel_error : float;
  tolerance : float;
  ok : bool;
}

val check :
  ?schedule:Msc_schedule.Schedule.t ->
  ?config:Exec.Config.t ->
  ?init:(int -> int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Bc.t ->
  ?trace:Msc_trace.t ->
  steps:int -> Msc_ir.Stencil.t -> report
(** Runs both executors [steps] timesteps from the same initial condition and
    compares final states. The tolerance comes from the grid's declared
    datatype ({!Msc_ir.Dtype.tolerance}). [config] drives the optimized
    runtime (backend and pool; the engine field is ignored — single node);
    [trace] instruments the optimized runtime only (the reference stays
    untimed). *)

val check_grids : dtype:Msc_ir.Dtype.t -> reference:Grid.t -> Grid.t -> bool
val pp_report : Format.formatter -> report -> unit
