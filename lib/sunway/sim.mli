(** Sunway core-group performance simulator.

    Executes the *plan* the scheduled code describes: tile tasks mapped
    round-robin to 64 CPEs, per-tile DMA staging of padded input tiles (one
    per input time state), in-SPM compute, and a DMA write-back — exactly the
    structure {!Msc_codegen.Emit_athread} emits — and charges each phase to
    the {!Dma} engine and the machine's compute roof. Overrides let baseline
    strategies (OpenACC) reuse the same simulator with degraded behaviour. *)

type overrides = {
  bandwidth_efficiency : float;  (** fraction of machine bandwidth attained *)
  vector_efficiency : float option;  (** replace the shape-derived value *)
  extra_latency_per_point_s : float;
      (** per-point software-cache / gld stall (latency-bound baselines) *)
  spawn_overhead_s : float;  (** per-timestep accelerator launch cost *)
  tile_reuse : bool;  (** false: halo data re-fetched per point row *)
  double_buffer : bool;
      (** stream tiles through two SPM buffer sets so the next tile's DMA
          overlaps the current tile's compute (the streaming/pipelining
          §5.6 proposes); doubles the scratchpad footprint *)
  bypass_spm : bool;
      (** true: no scratchpad staging at all (directive-style baselines); the
          SPM capacity check is skipped and accesses pay
          [extra_latency_per_point_s] instead *)
}

val default_overrides : overrides

type counters = {
  tiles : int;
  tiles_per_cpe : float;
  dma_bytes : float;  (** per timestep *)
  dma_descriptors : int;  (** per timestep *)
  flops_per_step : float;
  spm_read_bytes : int;  (** staged read buffers, all input states *)
  spm_write_bytes : int;
  spm_utilization : float;
  reuse_factor : float;
  points_per_step : float;
}

type report = {
  benchmark : string;
  precision : Msc_ir.Dtype.t;
  steps : int;
  time_s : float;
  time_per_step_s : float;
  gflops : float;
  intensity : float;  (** flops per main-memory byte actually moved *)
  bound : Msc_machine.Roofline.bound;
  compute_time_s : float;  (** per step *)
  dma_time_s : float;  (** per step *)
  counters : counters;
}

val simulate :
  ?machine:Msc_machine.Machine.t ->
  ?overrides:overrides ->
  ?steps:int ->
  ?trace:Msc_trace.t ->
  ?plan:Msc_schedule.Plan.t ->
  ?backend:Msc_exec.Backend.t ->
  Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t ->
  (report, string) result
(** Default machine {!Msc_machine.Machine.sunway_cg}, 10 steps. [backend]
    (default [Compiled_c]) scales the modelled arithmetic phase by
    {!Msc_exec.Backend.compute_scale} — the model's baseline is the
    generated compiled kernel, so the default leaves historical numbers
    untouched. Costs the
    lowered {!Msc_schedule.Plan.t} — pass [plan] to reuse a compiled one
    (the auto-tuner's memoized path); otherwise the plan is compiled here.
    Fails if the schedule is illegal or its buffers overflow the SPM.

    [trace] records the modelled per-step ["dma"] and ["cpe.compute"] phases
    as spans (durations are {e simulated} seconds), DMA/SPM traffic volumes
    as counters ([dma.bytes], [dma.descriptors], [spm.read_bytes],
    [spm.write_bytes], [sim.step_seconds]), and a wall-clock ["sim.sunway"]
    span over the simulation itself. *)

val is_box_shaped : Msc_ir.Stencil.t -> bool
(** Compact (box-like) neighbourhoods vectorize better; used to pick the
    machine's vector efficiency. *)

val pp_report : Format.formatter -> report -> unit
