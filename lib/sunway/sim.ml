open Msc_ir
module Schedule = Msc_schedule.Schedule
module Plan = Msc_schedule.Plan
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline

type overrides = {
  bandwidth_efficiency : float;
  vector_efficiency : float option;
  extra_latency_per_point_s : float;
  spawn_overhead_s : float;
  tile_reuse : bool;
  double_buffer : bool;
  bypass_spm : bool;
}

let default_overrides =
  {
    bandwidth_efficiency = 1.0;
    vector_efficiency = None;
    extra_latency_per_point_s = 0.0;
    spawn_overhead_s = 10e-6;
    tile_reuse = true;
    double_buffer = false;
    bypass_spm = false;
  }

type counters = {
  tiles : int;
  tiles_per_cpe : float;
  dma_bytes : float;
  dma_descriptors : int;
  flops_per_step : float;
  spm_read_bytes : int;
  spm_write_bytes : int;
  spm_utilization : float;
  reuse_factor : float;
  points_per_step : float;
}

type report = {
  benchmark : string;
  precision : Dtype.t;
  steps : int;
  time_s : float;
  time_per_step_s : float;
  gflops : float;
  intensity : float;
  bound : Roofline.bound;
  compute_time_s : float;
  dma_time_s : float;
  counters : counters;
}

let is_box_shaped (st : Stencil.t) =
  match Stencil.kernels st with
  | [] -> false
  | kernels ->
      List.for_all
        (fun k ->
          let r = Array.fold_left max 0 (Kernel.radius k) in
          let nd = Kernel.ndim k in
          let box_points =
            let w = (2 * r) + 1 in
            let rec pow acc = function 0 -> acc | n -> pow (acc * w) (n - 1) in
            pow 1 nd
          in
          r >= 1 && Kernel.points k = box_points)
        kernels

let simulate ?(machine = Machine.sunway_cg) ?(overrides = default_overrides)
    ?(steps = 10) ?(trace = Msc_trace.disabled) ?plan
    ?(backend = Msc_exec.Backend.Compiled_c) (st : Stencil.t) schedule =
  let ts_sim = Msc_trace.begin_span trace in
  let plan =
    match plan with
    | Some p -> Ok p
    | None -> Plan.compile ~machine st schedule
  in
  match plan with
  | Error msg -> Error msg
  | Ok plan ->
      let grid = st.Stencil.grid in
      let nd = Array.length grid.Tensor.shape in
      let elem = Dtype.size_bytes grid.Tensor.dtype in
      let tile = plan.Plan.tile in
      let padded_tile = plan.Plan.padded_tile in
      let tile_elems = plan.Plan.tile_elems in
      let padded_elems = plan.Plan.padded_elems in
      (* Static coefficient grids are staged per tile exactly like input
         states: one more padded SPM buffer and one more DMA stream each. *)
      let nstates = plan.Plan.n_state_streams in
      let nstreams = nstates + plan.Plan.n_aux_streams in
      (* SPM accounting: one padded read buffer per input state + the write
         tile, exactly the slave code's __thread_local buffers. *)
      let spm = Spm.create ?capacity_bytes:machine.Machine.spm_bytes_per_unit () in
      (* Double buffering keeps two copies of every staged buffer live. *)
      let copies = if overrides.double_buffer then 2 else 1 in
      let spm_read_bytes = copies * nstreams * padded_elems * elem in
      let spm_write_bytes = copies * tile_elems * elem in
      let alloc_result =
        if overrides.bypass_spm then Ok ()
        else
          List.fold_left
            (fun acc (name, bytes) ->
              match acc with Error _ -> acc | Ok () -> Spm.alloc spm ~name ~bytes)
            (Ok ())
            (List.init nstates (fun k ->
                 (Printf.sprintf "buf_read_%d" (k + 1), padded_elems * elem))
            @ [ ("buf_write", spm_write_bytes) ])
      in
      (match alloc_result with
      | Error msg -> Error msg
      | Ok () ->
          let tiles = plan.Plan.tiles_count in
          let radius = Stencil.radius st in
          let cpes = machine.Machine.compute_units in
          let points = float_of_int (Tensor.elems grid) in
          (* Per-tile DMA: row-wise descriptors over the padded tile for each
             input state, interior rows for the write-back. *)
          let rows_of extents =
            Array.to_list extents |> List.filteri (fun i _ -> i < nd - 1)
            |> List.fold_left ( * ) 1
          in
          let read_rows = rows_of padded_tile and write_rows = rows_of tile in
          let halo_amplification =
            if overrides.tile_reuse then 1.0
            else begin
              (* Without SPM retention, each streamed row re-fetches its
                 neighbour rows in the adjacent plane; the software cache
                 still catches most of the in-plane reuse. *)
              let rmax = Array.fold_left max 0 radius in
              Float.min 9.0 (float_of_int ((2 * rmax) + 1))
            end
          in
          let per_tile_read =
            {
              Dma.bytes =
                float_of_int (nstreams * padded_elems * elem) *. halo_amplification;
              Dma.descriptors =
                int_of_float
                  (Float.ceil (float_of_int (nstreams * read_rows) *. halo_amplification));
            }
          in
          let per_tile_write =
            { Dma.bytes = float_of_int (tile_elems * elem); Dma.descriptors = write_rows }
          in
          let per_step_transfer =
            Dma.scale (Dma.combine per_tile_read per_tile_write) (float_of_int tiles)
          in
          let engine =
            let base = Dma.of_machine machine in
            {
              base with
              Dma.bandwidth_gbs =
                base.Dma.bandwidth_gbs *. overrides.bandwidth_efficiency;
            }
          in
          let dma_time = Dma.time engine per_step_transfer in
          (* Compute roof. *)
          let flops_per_point =
            float_of_int (Stencil.flops_per_point st)
          in
          let flops_per_step = flops_per_point *. points in
          let veff =
            match overrides.vector_efficiency with
            | Some v -> v
            | None ->
                if is_box_shaped st then machine.Machine.vector_efficiency_box
                else machine.Machine.vector_efficiency_star
          in
          let peak =
            Machine.peak_gflops machine grid.Tensor.dtype *. veff *. 1e9
          in
          let compute_time =
            ((flops_per_step /. peak)
            +. (points *. overrides.extra_latency_per_point_s
               /. float_of_int cpes))
            (* The model prices the *generated* (compiled-C) kernel; other
               host backends scale the arithmetic phase by their measured
               penalty. Compiled_c's scale is 1.0, so default simulations
               are unchanged. *)
            *. Msc_exec.Backend.compute_scale backend
          in
          (* compute_at staging serialises DMA and compute within a tile, but
             across 64 CPEs the phases interleave, so the step cost is the
             binding resource plus a fraction of the other. Double-buffered
             streaming prefetches the next tile during compute, hiding almost
             all of the non-binding phase. *)
          let overlap = if overrides.double_buffer then 0.05 else 0.2 in
          let binding = Float.max compute_time dma_time in
          let other = Float.min compute_time dma_time in
          let step_time = binding +. (overlap *. other) +. overrides.spawn_overhead_s in
          let time_s = step_time *. float_of_int steps in
          let intensity =
            if per_step_transfer.Dma.bytes > 0.0 then
              flops_per_step /. per_step_transfer.Dma.bytes
            else infinity
          in
          let gflops = flops_per_step /. step_time /. 1e9 in
          let counters =
            {
              tiles;
              tiles_per_cpe = float_of_int tiles /. float_of_int cpes;
              dma_bytes = per_step_transfer.Dma.bytes;
              dma_descriptors = per_step_transfer.Dma.descriptors;
              flops_per_step;
              spm_read_bytes;
              spm_write_bytes;
              spm_utilization = Spm.utilization spm;
              reuse_factor = plan.Plan.reuse_factor;
              points_per_step = points;
            }
          in
          (* Model-time phases: the simulator's predicted per-step DMA and
             CPE-compute costs become spans (durations are model results,
             not wall clock), the traffic volumes become counters. *)
          Msc_trace.emit_span trace "dma" ~dur_s:dma_time;
          Msc_trace.emit_span trace "cpe.compute" ~dur_s:compute_time;
          Msc_trace.add trace "dma.bytes" per_step_transfer.Dma.bytes;
          Msc_trace.add trace "dma.descriptors"
            (float_of_int per_step_transfer.Dma.descriptors);
          Msc_trace.add trace "spm.read_bytes" (float_of_int spm_read_bytes);
          Msc_trace.add trace "spm.write_bytes" (float_of_int spm_write_bytes);
          Msc_trace.add trace "sim.step_seconds" step_time;
          Msc_trace.end_span trace "sim.sunway" ts_sim;
          Ok
            {
              benchmark = st.Stencil.name;
              precision = grid.Tensor.dtype;
              steps;
              time_s;
              time_per_step_s = step_time;
              gflops;
              intensity;
              bound =
                (if compute_time > dma_time then Roofline.Compute_bound
                 else Roofline.Memory_bound);
              compute_time_s = compute_time;
              dma_time_s = dma_time;
              counters;
            })

let pp_report ppf r =
  Format.fprintf ppf
    "%s(%a): %.3f ms/step, %.2f GFlop/s, OI %.2f, %s, SPM %.0f%%, %d tiles"
    r.benchmark Dtype.pp r.precision (r.time_per_step_s *. 1e3) r.gflops r.intensity
    (Roofline.bound_to_string r.bound)
    (r.counters.spm_utilization *. 100.0)
    r.counters.tiles
