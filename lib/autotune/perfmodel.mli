(** Analytical performance model: multivariable linear regression from
    schedule/decomposition features to per-step kernel time (§4.4).

    Features capture the terms the paper's model considers: MPI setup,
    kernel computation, packing/unpacking volume, and transfer volume. All
    lowering-derived quantities (tile/padded volumes, scratchpad working
    set, SPM capacity) come from the {!Msc_schedule.Plan.t} that [plan_of]
    supplies — normally {!Autotune}'s memoized plan cache — never from
    hardcoded machine constants. *)

type t

val features :
  plan_of:(Params.config -> (Msc_schedule.Plan.t, string) result) ->
  Params.config ->
  global:int array ->
  float array
(** Feature vector: log tile volume, working-set-to-SPM ratio, halo overhead
    ratio, DMA descriptors per point, per-rank points, surface-to-volume
    ratio, rank count, max process-grid aspect ratio.
    @raise Invalid_argument when [plan_of] fails (illegal schedule). *)

val train :
  rng:Msc_util.Prng.t ->
  global:int array ->
  nranks:int ->
  true_cost:(Params.config -> float) ->
  plan_of:(Params.config -> (Msc_schedule.Plan.t, string) result) ->
  ?samples:int ->
  unit ->
  t
(** Fit the regression on randomly sampled configurations evaluated by
    [true_cost] (the processor + network simulators standing in for real
    measurements). [plan_of] is retained for {!predict}. *)

val predict : t -> Params.config -> float
val r_squared : t -> float
