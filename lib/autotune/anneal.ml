type 'a result = {
  best : 'a;
  best_energy : float;
  iterations : int;
  trace : (int * float) list;
}

let minimize ~rng ~init ~neighbor ~energy ?(iterations = 20_000)
    ?(initial_temperature = 1.0) ?(cooling = 0.999) ?(trace_every = 200)
    ?trace:(mtrace = Msc_trace.disabled) () =
  let ts_sa = Msc_trace.begin_span mtrace in
  let e0 = energy init in
  let current = ref init and current_e = ref e0 in
  let best = ref init and best_e = ref e0 in
  (* Temperature is relative to the initial energy so acceptance behaves the
     same across problems of different magnitude. *)
  let temp = ref (initial_temperature *. Float.max 1e-30 (Float.abs e0)) in
  let trace = ref [ (0, !best_e) ] in
  for iter = 1 to iterations do
    let candidate = neighbor rng !current in
    let e = energy candidate in
    let accept =
      e <= !current_e
      || Msc_util.Prng.uniform rng < exp ((!current_e -. e) /. Float.max 1e-30 !temp)
    in
    if accept then begin
      current := candidate;
      current_e := e;
      Msc_trace.add mtrace "anneal.accepted" 1.0
    end
    else Msc_trace.add mtrace "anneal.rejected" 1.0;
    if e < !best_e then begin
      best := candidate;
      best_e := e
    end;
    temp := !temp *. cooling;
    if iter mod trace_every = 0 then trace := (iter, !best_e) :: !trace
  done;
  (* The sampled trace drops the tail whenever [iterations] is not a
     multiple of [trace_every]; always close it with the final best so the
     convergence curve ends at the returned energy. *)
  (match !trace with
  | (it, _) :: _ when it = iterations -> ()
  | _ -> trace := (iterations, !best_e) :: !trace);
  Msc_trace.end_span mtrace "anneal.minimize" ts_sa;
  { best = !best; best_energy = !best_e; iterations; trace = List.rev !trace }
