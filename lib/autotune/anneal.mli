(** Generic simulated annealing (the paper's search algorithm over the
    performance model). Deterministic given the PRNG. *)

type 'a result = {
  best : 'a;
  best_energy : float;
  iterations : int;
  trace : (int * float) list;
      (** (iteration, best-so-far energy), sampled every [trace_every]
          iterations; the final entry is always [(iterations, best_energy)]
          even when the count is not a multiple of the sampling period *)
}

val minimize :
  rng:Msc_util.Prng.t ->
  init:'a ->
  neighbor:(Msc_util.Prng.t -> 'a -> 'a) ->
  energy:('a -> float) ->
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?trace_every:int ->
  ?trace:Msc_trace.t ->
  unit ->
  'a result
(** Classic Metropolis acceptance with geometric cooling. [energy] must be
    cheap (the auto-tuner passes the regression model, not the simulator).
    Defaults: 20_000 iterations, T0 = 1.0 (relative to the initial energy),
    cooling 0.999, trace every 200 iterations. The result is never worse than
    [init].

    [trace] (an {!Msc_trace} sink, unrelated to the [trace] result field)
    counts Metropolis decisions as [anneal.accepted] / [anneal.rejected] and
    wraps the search in an ["anneal.minimize"] span. *)
