module Plan = Msc_schedule.Plan

type t = {
  model : Msc_util.Regress.model;
  global : int array;
  plan_of : Params.config -> (Plan.t, string) result;
}

(* Fallback only for plans compiled without a machine descriptor. *)
let default_spm_bytes = 64 * 1024

let features ~plan_of (c : Params.config) ~global =
  let nd = Array.length global in
  let sub = Params.subgrid c ~global in
  let sub_volume = Array.fold_left ( * ) 1 sub in
  let plan : Plan.t =
    match plan_of c with
    | Ok p -> p
    | Error msg -> invalid_arg ("Perfmodel.features: " ^ msg)
  in
  let tile_volume = plan.Plan.tile_elems in
  let padded_volume = plan.Plan.padded_elems in
  let working_set = float_of_int plan.Plan.working_set_bytes in
  let spm_bytes =
    Option.value plan.Plan.spm_capacity_bytes ~default:default_spm_bytes
  in
  let rows = padded_volume / plan.Plan.padded_tile.(nd - 1) in
  let surface =
    List.init nd (fun d -> sub_volume / sub.(d)) |> List.fold_left ( + ) 0
  in
  let nranks = Array.fold_left ( * ) 1 c.mpi_grid in
  let aspect =
    let mx = Array.fold_left max 1 c.mpi_grid
    and mn = Array.fold_left min max_int c.mpi_grid in
    float_of_int mx /. float_of_int (max 1 mn)
  in
  (* Temporal-depth features: the latency amortisation (1/k) and the
     redundant-ghost fraction ((k-1) * sum_d r_d / n_d) the depth trades it
     against. *)
  let radius = Msc_ir.Stencil.radius plan.Plan.stencil in
  let ghost =
    let acc = ref 0.0 in
    Array.iteri
      (fun d r -> acc := !acc +. (float_of_int r /. float_of_int (max 1 sub.(d))))
      radius;
    float_of_int (c.depth - 1) *. !acc
  in
  [|
    log (float_of_int tile_volume);
    working_set /. float_of_int spm_bytes;
    float_of_int padded_volume /. float_of_int (max 1 tile_volume);
    float_of_int rows /. float_of_int (max 1 tile_volume);
    float_of_int sub_volume /. 1e6;
    float_of_int surface /. float_of_int (max 1 sub_volume);
    float_of_int nranks /. 1e3;
    aspect;
    1.0 /. float_of_int (max 1 c.depth);
    ghost;
  |]

let train ~rng ~global ~nranks ~true_cost ~plan_of ?(samples = 120) () =
  let configs =
    List.init samples (fun _ -> Params.random rng ~dims:global ~nranks)
  in
  let feats = Array.of_list (List.map (fun c -> features ~plan_of c ~global) configs) in
  (* Regress on log time: costs span orders of magnitude. *)
  let targets = Array.of_list (List.map (fun c -> log (true_cost c)) configs) in
  { model = Msc_util.Regress.fit ~features:feats ~targets; global; plan_of }

let predict t c =
  exp (Msc_util.Regress.predict t.model (features ~plan_of:t.plan_of c ~global:t.global))

let r_squared t = t.model.Msc_util.Regress.r_squared
