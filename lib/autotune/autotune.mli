(** Auto-tuning driver reproducing §5.4 / Figure 11: tune the tile sizes and
    MPI grid shape of a large-scale stencil run on the Sunway platform. *)

type result = {
  initial : Params.config;
  initial_time_s : float;  (** true (simulated) per-step time *)
  best : Params.config;
  best_time_s : float;
  improvement : float;  (** initial / best *)
  iterations : int;
  model_r2 : float;
  trace : (int * float) list;  (** (iteration, best predicted time so far) *)
  plan_cache_hits : int;
      (** plan-cache lookups served from the memo (re-visited candidates) *)
  plan_cache_misses : int;  (** distinct candidate schedules lowered *)
}

val plan_of :
  ?cache:Msc_schedule.Plan.Cache.t ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  global:int array ->
  Params.config ->
  (Msc_schedule.Plan.t, string) Stdlib.result
(** Lower one candidate configuration (per-rank subgrid + clamped canonical
    Sunway schedule) to a plan, through [cache] when given. *)

val true_cost :
  ?cache:Msc_schedule.Plan.Cache.t ->
  ?net:Msc_comm.Netmodel.t ->
  ?backend:Msc_exec.Backend.t ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  global:int array ->
  Params.config ->
  float
(** Ground-truth objective: per-step time = node simulation with the config's
    (clamped) tile + network-model halo exchange for the config's process
    grid — the terms the paper's model lists (kernel, packing, transfer).
    The config's temporal-block depth is clamped to what the sub-grid
    geometry and the scratchpad allow, then priced as the
    communication-avoiding engine executes it: node time inflated by
    {!Msc_comm.Scaling.temporal_compute_factor}, exchange slabs widened to
    [depth * radius] (every retained state included) and amortised over the
    block, so the alpha term drops as [alpha / depth]. [net] (default
    {!Msc_comm.Netmodel.sunway_taihulight}) selects the interconnect — a
    latency-bound network such as {!Msc_comm.Netmodel.tianhe3_prototype}
    rewards [depth > 1]. [backend] (default [Compiled_c]) scales the node
    simulation's arithmetic phase ({!Msc_sunway.Sim.simulate}), so tuning
    for an interpreter-hosted run prices compute accordingly. The node
    simulation reuses the memoized plan when [cache] is given. *)

val exhaustive :
  ?max_configs:int ->
  ?net:Msc_comm.Netmodel.t ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  global:int array ->
  nranks:int ->
  unit ->
  (Params.config * float) option
(** Evaluate the true cost of every configuration in the space (tile ladders
    x process-grid factorisations x temporal depths) and return the optimum,
    or [None] when the space exceeds [max_configs] (default 20_000) — the
    reference the annealer is measured against in the ablation study. *)

(** {1 Scale-out search (rank-grid shape x temporal depth)} *)

type scale_choice = {
  sc_grid : int array;  (** rank grid shape *)
  sc_sub : int array;  (** per-rank sub-grid (ceil division) *)
  sc_depth : int;  (** temporal depth after the geometric cap *)
  sc_compute_s : float;  (** per step, ghost inflation included *)
  sc_comm_s : float;
  sc_time_s : float;  (** overlapped per-step time, the ranking key *)
}

val tune_scale :
  ?depths:int list ->
  ?ranks_per_node:int ->
  platform:Msc_comm.Scaling.platform ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  global:int array ->
  nranks:int ->
  unit ->
  scale_choice * scale_choice list
(** Exhaustive joint search over every rank-grid factorisation that fits
    the global extents ({!Params.mpi_grid_candidates}) and every temporal
    depth rung ([depths], default {!Params.depth_candidates}, each capped
    by the sub-grid geometry), priced purely analytically:
    {!Msc_comm.Scaling.node_compute_time} (memoised per distinct sub-grid)
    inflated by the ghost factor, plus the hierarchical
    {!Msc_comm.Scaling.comm_time} ([ranks_per_node] defaults to the
    platform's {!Msc_comm.Scaling.ranks_per_node}), combined with the
    overlapped-engine formula. Returns the winner and the whole ranking,
    best first (ties keep enumeration order, so the result is
    deterministic). On a latency-bound interconnect at large rank counts
    the winner moves off the naive square-grid depth-1 default — a skewed
    grid that shortens the congested direction fan, a deep block that
    amortises alpha, or both.
    @raise Invalid_argument when no factorisation fits [global]. *)

val tune :
  ?seed:int ->
  ?iterations:int ->
  ?net:Msc_comm.Netmodel.t ->
  ?backend:Msc_exec.Backend.t ->
  ?trace:Msc_trace.t ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  global:int array ->
  nranks:int ->
  unit ->
  result
(** Train the regression model on sampled configurations, anneal over it,
    report true times for the initial and best configurations. Deterministic
    per seed. One {!Msc_schedule.Plan.Cache} is shared by the model features
    and every true-cost simulation, so each distinct candidate schedule is
    lowered at most once ([plan_cache_hits]/[plan_cache_misses] report the
    traffic).

    [trace] records every true-cost evaluation as a ["tune.trial"] span
    (with a [tune.trials] counter), the model fit as ["tune.model_train"],
    and the annealer's Metropolis decisions via {!Anneal.minimize}. *)
