type config = { tile : int array; mpi_grid : int array; depth : int }

let tile_candidates ~dims =
  Array.map
    (fun n ->
      let rec powers p acc = if p > n then List.rev acc else powers (2 * p) (p :: acc) in
      let ps = powers 1 [] in
      if List.mem n ps then ps else ps @ [ n ])
    dims

let mpi_grid_candidates ~nranks ~ndim =
  (* Enumerate over the divisors only — O(sqrt n) per level instead of a
     1..n scan — so the 16k-rank grids of the scale-out tuner cost nothing
     to list. Ordering (ascending leading factor) is unchanged. *)
  let divisors n =
    let rec go d acc =
      if d * d > n then acc
      else if n mod d = 0 then
        go (d + 1) (if d * d = n then d :: acc else d :: (n / d) :: acc)
      else go (d + 1) acc
    in
    List.sort_uniq compare (go 1 [])
  in
  let rec go n d =
    if d = 1 then [ [ n ] ]
    else
      List.concat_map
        (fun f -> List.map (fun rest -> f :: rest) (go (n / f) (d - 1)))
        (divisors n)
  in
  List.map Array.of_list (go nranks ndim)

let depth_candidates = [ 1; 2; 4; 8 ]

let pick rng xs = List.nth xs (Msc_util.Prng.int rng (List.length xs))

let random rng ~dims ~nranks =
  let cands = tile_candidates ~dims in
  let tile = Array.map (fun c -> pick rng c) cands in
  let grids = mpi_grid_candidates ~nranks ~ndim:(Array.length dims) in
  { tile; mpi_grid = pick rng grids; depth = pick rng depth_candidates }

let neighbor rng ~dims ~nranks config =
  let nd = Array.length dims in
  let r = Msc_util.Prng.uniform rng in
  if r < 0.6 then begin
    (* Move one tile dimension one step along its candidate ladder. *)
    let cands = tile_candidates ~dims in
    let d = Msc_util.Prng.int rng nd in
    let ladder = cands.(d) in
    let pos =
      let rec find i = function
        | [] -> 0
        | x :: rest -> if x = config.tile.(d) then i else find (i + 1) rest
      in
      find 0 ladder
    in
    let len = List.length ladder in
    let pos' =
      if Msc_util.Prng.bool rng then min (len - 1) (pos + 1) else max 0 (pos - 1)
    in
    let tile = Array.copy config.tile in
    tile.(d) <- List.nth ladder pos';
    { config with tile }
  end
  else if r < 0.8 then begin
    let grids = mpi_grid_candidates ~nranks ~ndim:nd in
    let idx =
      let rec find i = function
        | [] -> 0
        | g :: rest -> if g = config.mpi_grid then i else find (i + 1) rest
      in
      find 0 grids
    in
    let len = List.length grids in
    let idx' =
      if Msc_util.Prng.bool rng then (idx + 1) mod len else (idx + len - 1) mod len
    in
    { config with mpi_grid = List.nth grids idx' }
  end
  else begin
    (* Step the temporal-block depth one rung along its ladder. *)
    let pos =
      let rec find i = function
        | [] -> 0
        | x :: rest -> if x = config.depth then i else find (i + 1) rest
      in
      find 0 depth_candidates
    in
    let len = List.length depth_candidates in
    let pos' =
      if Msc_util.Prng.bool rng then min (len - 1) (pos + 1) else max 0 (pos - 1)
    in
    { config with depth = List.nth depth_candidates pos' }
  end

let subgrid config ~global =
  Array.mapi
    (fun d n -> (n + config.mpi_grid.(d) - 1) / config.mpi_grid.(d))
    global

let equal a b = a.tile = b.tile && a.mpi_grid = b.mpi_grid && a.depth = b.depth

let pp ppf c =
  let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
  Format.fprintf ppf "tile(%s) mpi(%s) depth(%d)" (ints c.tile) (ints c.mpi_grid)
    c.depth
