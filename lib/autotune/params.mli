(** The auto-tuner's search space (§4.4 "Performance auto-tuning"): tile
    sizes per spatial dimension, the MPI process-grid shape, and the
    communication-avoiding temporal-block depth. *)

type config = { tile : int array; mpi_grid : int array; depth : int }

val tile_candidates : dims:int array -> int list array
(** Per-dimension candidate tile sizes: powers of two from 1 up to the
    extent (inclusive of the extent when it is not a power of two). *)

val mpi_grid_candidates : nranks:int -> ndim:int -> int array list
(** Every factorisation of [nranks] into [ndim] ordered factors. *)

val depth_candidates : int list
(** Temporal-block depth ladder searched by the tuner: [1; 2; 4; 8]. The
    cost model clamps a candidate to what the geometry and scratchpad
    allow, so infeasible rungs price as their clamped depth. *)

val random : Msc_util.Prng.t -> dims:int array -> nranks:int -> config

val neighbor : Msc_util.Prng.t -> dims:int array -> nranks:int -> config -> config
(** One annealing move: nudge one tile dimension up/down the candidate list
    (p = 0.6), swap to an adjacent MPI factorisation (p = 0.2), or step the
    temporal depth one rung (p = 0.2). *)

val subgrid : config -> global:int array -> int array
(** Per-rank extents under the config's process grid (ceil division). *)

val equal : config -> config -> bool
val pp : Format.formatter -> config -> unit
