module Schedule = Msc_schedule.Schedule
module Plan = Msc_schedule.Plan
module Machine = Msc_machine.Machine

type result = {
  initial : Params.config;
  initial_time_s : float;
  best : Params.config;
  best_time_s : float;
  improvement : float;
  iterations : int;
  model_r2 : float;
  trace : (int * float) list;
  plan_cache_hits : int;
  plan_cache_misses : int;
}

(* Every candidate configuration lowers to the same canonical Sunway
   schedule shape; the (stencil, schedule) pair is what the plan cache
   memoizes so annealing revisits never re-lower. *)
let lower ~make_stencil ~global (c : Params.config) =
  let sub = Params.subgrid c ~global in
  let st = make_stencil sub in
  let kernel = List.hd (Msc_ir.Stencil.kernels st) in
  let tile = Array.mapi (fun d t -> min t sub.(d)) c.tile in
  (st, Schedule.sunway_canonical ~tile kernel)

let plan_of ?cache ~make_stencil ~global (c : Params.config) =
  let st, sched = lower ~make_stencil ~global c in
  match cache with
  | Some cache -> Plan.Cache.compile cache st sched
  | None -> Plan.compile ~machine:Machine.sunway_cg st sched

(* Clamp a candidate temporal-block depth to what the geometry and the
   scratchpad allow: the deep halo must fit the per-rank sub-grid
   ([k * radius <= sub] per dimension, mirroring
   {!Msc_comm.Decomp.max_uniform_depth}), and the padded tile working set —
   which grows with the deep halo — must still fit the SPM. *)
let clamp_depth ~plan ~sub ~radius depth =
  let geo = ref (max 1 depth) in
  Array.iteri
    (fun d r -> if r > 0 then geo := min !geo (max 1 (sub.(d) / r)))
    radius;
  let geo = !geo in
  match plan with
  | Error _ -> geo
  | Ok (p : Plan.t) -> (
      match p.Plan.spm_capacity_bytes with
      | None -> geo
      | Some cap ->
          let padded k =
            let v = ref 1.0 in
            Array.iteri
              (fun d t -> v := !v *. float_of_int (t + (2 * k * radius.(d))))
              p.Plan.tile;
            !v
          in
          let base = padded 1 in
          let fits k =
            float_of_int p.Plan.working_set_bytes *. (padded k /. base)
            <= float_of_int cap
          in
          let k = ref 1 in
          while !k < geo && fits (!k + 1) do
            incr k
          done;
          !k)

let true_cost ?cache ?(net = Msc_comm.Netmodel.sunway_taihulight)
    ?(backend = Msc_exec.Backend.Compiled_c) ~make_stencil ~global
    (c : Params.config) =
  let sub = Params.subgrid c ~global in
  let st, sched = lower ~make_stencil ~global c in
  let plan =
    match cache with
    | Some cache -> Plan.Cache.compile cache st sched
    | None -> Plan.compile ~machine:Machine.sunway_cg st sched
  in
  let radius = Msc_ir.Stencil.radius st in
  let depth = clamp_depth ~plan ~sub ~radius c.Params.depth in
  let compute =
    match plan with
    | Error _ ->
        (* Illegal points are heavily penalised rather than rejected, so the
           search space stays connected. *)
        1.0
    | Ok plan -> (
        match Msc_sunway.Sim.simulate ~steps:1 ~plan ~backend st sched with
        | Ok r -> r.Msc_sunway.Sim.time_per_step_s
        | Error _ ->
            (* SPM overflow: same penalty. *)
            1.0)
  in
  (* Temporal blocking trades redundant ghost compute for latency: the node
     time inflates by the ghost factor while the exchange amortises over the
     block. *)
  let compute =
    compute
    *. Msc_comm.Scaling.temporal_compute_factor ~sub_grid:sub ~radius ~depth
  in
  let nranks = Array.fold_left ( * ) 1 c.mpi_grid in
  let nd = Array.length sub in
  let time_window = Msc_ir.Stencil.time_window st in
  let elem = Msc_ir.Dtype.size_bytes st.Msc_ir.Stencil.grid.Msc_ir.Tensor.dtype in
  let volume = Array.fold_left ( * ) 1 sub in
  let face_bytes =
    List.init nd (fun d -> volume / sub.(d) * radius.(d) * elem)
    |> List.fold_left ( + ) 0
  in
  let comm =
    Msc_comm.Netmodel.exchange_time net ~nranks ~messages_per_rank:(2 * nd)
      ~bytes_per_message:
        (float_of_int (2 * face_bytes * depth * time_window)
        /. float_of_int (2 * nd))
    /. float_of_int depth
  in
  Float.max compute comm

let exhaustive ?(max_configs = 20_000) ?net ~make_stencil ~global ~nranks () =
  let ladders = Params.tile_candidates ~dims:global in
  let grids = Params.mpi_grid_candidates ~nranks ~ndim:(Array.length global) in
  let depths = Params.depth_candidates in
  let space =
    Array.fold_left
      (fun acc l -> acc * List.length l)
      (List.length grids * List.length depths)
      ladders
  in
  if space > max_configs then None
  else begin
    let cache = Plan.Cache.create ~machine:Machine.sunway_cg () in
    let cost = true_cost ~cache ?net ~make_stencil ~global in
    let best = ref None in
    let consider config =
      let c = cost config in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (config, c)
    in
    let nd = Array.length global in
    let tile = Array.make nd 1 in
    let rec tiles d =
      if d = nd then
        List.iter
          (fun mpi_grid ->
            List.iter
              (fun depth ->
                consider { Params.tile = Array.copy tile; mpi_grid; depth })
              depths)
          grids
      else
        List.iter
          (fun t ->
            tile.(d) <- t;
            tiles (d + 1))
          ladders.(d)
    in
    tiles 0;
    !best
  end

type scale_choice = {
  sc_grid : int array;
  sc_sub : int array;
  sc_depth : int;
  sc_compute_s : float;
  sc_comm_s : float;
  sc_time_s : float;
}

(* Joint rank-grid-shape x temporal-depth search for large rank counts.
   Everything is analytic — node compute from the platform simulator
   (memoised per distinct sub-grid, and the divisor enumeration keeps the
   grid list tiny even at 16k ranks), halo exchange from the hierarchical
   {!Msc_comm.Scaling.comm_time} — so the whole space is priced in
   milliseconds where a wall-clock inner loop would take hours. *)
let tune_scale ?(depths = Params.depth_candidates) ?ranks_per_node ~platform
    ~make_stencil ~global ~nranks () =
  let module Scaling = Msc_comm.Scaling in
  let rpn =
    match ranks_per_node with
    | Some n -> n
    | None -> Scaling.ranks_per_node platform
  in
  let nd = Array.length global in
  let grids =
    List.filter
      (fun g -> Array.for_all2 (fun p n -> p <= n) g global)
      (Params.mpi_grid_candidates ~nranks ~ndim:nd)
  in
  if grids = [] then
    invalid_arg "Autotune.tune_scale: no rank grid fits the global extents";
  let memo = Hashtbl.create 16 in
  let compute_of sub =
    let key = Array.to_list sub in
    match Hashtbl.find_opt memo key with
    | Some t -> t
    | None ->
        let t = Scaling.node_compute_time platform (make_stencil sub) in
        Hashtbl.add memo key t;
        t
  in
  let candidates =
    List.concat_map
      (fun grid ->
        let sub = Params.subgrid { Params.tile = [||]; mpi_grid = grid; depth = 1 } ~global in
        let st = make_stencil sub in
        let radius = Msc_ir.Stencil.radius st in
        let elem =
          Msc_ir.Dtype.size_bytes st.Msc_ir.Stencil.grid.Msc_ir.Tensor.dtype
        in
        let faces_only = not (Msc_comm.Distributed.needs_corners st) in
        let base_compute = compute_of sub in
        let cap depth =
          let c = ref (max 1 depth) in
          Array.iteri
            (fun d r -> if r > 0 then c := min !c (max 1 (sub.(d) / r)))
            radius;
          !c
        in
        List.map
          (fun depth ->
            let compute_s =
              base_compute
              *. Scaling.temporal_compute_factor ~sub_grid:sub ~radius ~depth
            in
            let comm_s =
              Scaling.comm_time ~depth ~ranks_per_node:rpn platform
                ~ranks:nranks ~sub_grid:sub ~radius ~elem ~faces_only
            in
            let time_s =
              Float.max compute_s comm_s +. (0.5 *. Float.min compute_s comm_s)
            in
            {
              sc_grid = grid;
              sc_sub = sub;
              sc_depth = depth;
              sc_compute_s = compute_s;
              sc_comm_s = comm_s;
              sc_time_s = time_s;
            })
          (List.sort_uniq compare (List.map cap depths)))
      grids
  in
  let sorted =
    List.stable_sort (fun a b -> compare a.sc_time_s b.sc_time_s) candidates
  in
  (List.hd sorted, sorted)

let tune ?(seed = 42) ?(iterations = 20_000) ?net ?backend
    ?(trace = Msc_trace.disabled) ~make_stencil ~global ~nranks () =
  let rng = Msc_util.Prng.create seed in
  (* One memoized plan compiler serves both the regression features and the
     true-cost simulations: each distinct candidate schedule is lowered and
     validated exactly once over the whole tuning run. *)
  let cache = Plan.Cache.create ~machine:Machine.sunway_cg () in
  let plan_of c = plan_of ~cache ~make_stencil ~global c in
  (* Every true-cost evaluation is one tuner trial: a node simulation plus
     the network model, the measured quantity of Figure 11. *)
  let cost c =
    let ts0 = Msc_trace.begin_span trace in
    let t = true_cost ~cache ?net ?backend ~make_stencil ~global c in
    Msc_trace.end_span trace "tune.trial" ts0;
    Msc_trace.add trace "tune.trials" 1.0;
    t
  in
  let model =
    Msc_trace.span trace "tune.model_train" (fun () ->
        Perfmodel.train ~rng:(Msc_util.Prng.split rng) ~global ~nranks
          ~true_cost:cost ~plan_of ())
  in
  (* The starting point is the untuned default a user would first run:
     row-pencil tiles (no blocking) and the most skewed process grid — valid
     but slow, like the paper's pre-tuning baseline. *)
  let initial =
    let nd = Array.length global in
    let tile = Array.init nd (fun d -> if d = nd - 1 then min global.(d) 64 else 1) in
    let mpi_grid =
      match Params.mpi_grid_candidates ~nranks ~ndim:nd with
      | first :: _ -> first
      | [] -> Array.init nd (fun d -> if d = 0 then nranks else 1)
    in
    { Params.tile; mpi_grid; depth = 1 }
  in
  let sa =
    Anneal.minimize ~rng ~init:initial
      ~neighbor:(fun rng c -> Params.neighbor rng ~dims:global ~nranks c)
      ~energy:(Perfmodel.predict model) ~iterations ~trace ()
  in
  let initial_time_s = cost initial in
  let best_time_s = cost sa.Anneal.best in
  (* The annealer optimises the regression model; like a measured auto-tuner
     we then refine its candidate against the true objective with a short
     greedy descent (the paper's runs plot measured execution time as the
     search progresses). *)
  let best = ref sa.Anneal.best and best_cost = ref best_time_s in
  if initial_time_s < !best_cost then begin
    best := initial;
    best_cost := initial_time_s
  end;
  let refine =
    Anneal.minimize
      ~rng:(Msc_util.Prng.split rng)
      ~init:!best
      ~neighbor:(fun rng c -> Params.neighbor rng ~dims:global ~nranks c)
      ~energy:cost ~iterations:1500 ~initial_temperature:0.3 ~trace ()
  in
  if refine.Anneal.best_energy < !best_cost then begin
    best := refine.Anneal.best;
    best_cost := refine.Anneal.best_energy
  end;
  let best = !best and best_time_s = !best_cost in
  let { Plan.Cache.hits = plan_cache_hits; misses = plan_cache_misses } =
    Plan.Cache.stats cache
  in
  {
    initial;
    initial_time_s;
    best;
    best_time_s;
    improvement = initial_time_s /. best_time_s;
    iterations = sa.Anneal.iterations;
    model_r2 = Perfmodel.r_squared model;
    trace = sa.Anneal.trace;
    plan_cache_hits;
    plan_cache_misses;
  }
