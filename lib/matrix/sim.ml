open Msc_ir
module Schedule = Msc_schedule.Schedule
module Plan = Msc_schedule.Plan
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline

type overrides = {
  bandwidth_efficiency : float;
  vector_efficiency : float option;
  fork_join_overhead_s : float;
  time_multiplier : float;
}

let default_overrides =
  {
    bandwidth_efficiency = 1.0;
    vector_efficiency = None;
    fork_join_overhead_s = 5e-6;
    time_multiplier = 1.0;
  }

type report = {
  benchmark : string;
  precision : Dtype.t;
  steps : int;
  time_s : float;
  time_per_step_s : float;
  gflops : float;
  intensity : float;
  bound : Roofline.bound;
  compute_time_s : float;
  mem_time_s : float;
  tiles : int;
  cache_resident : bool;
  mem_bytes_per_step : float;
}

let is_box_shaped (st : Stencil.t) =
  match Stencil.kernels st with
  | [] -> false
  | kernels ->
      List.for_all
        (fun k ->
          let r = Array.fold_left max 0 (Kernel.radius k) in
          let nd = Kernel.ndim k in
          let w = (2 * r) + 1 in
          let rec pow acc = function 0 -> acc | n -> pow (acc * w) (n - 1) in
          r >= 1 && Kernel.points k = pow 1 nd)
        kernels

let simulate ?(machine = Machine.matrix_node) ?(overrides = default_overrides)
    ?(steps = 10) ?(trace = Msc_trace.disabled) ?plan (st : Stencil.t) schedule =
  let ts_sim = Msc_trace.begin_span trace in
  let plan =
    match plan with
    | Some p -> Ok p
    | None -> Plan.compile ~machine st schedule
  in
  match plan with
  | Error msg -> Error msg
  | Ok plan ->
      let grid = st.Stencil.grid in
      let tiles = plan.Plan.tiles_count in
      let points = float_of_int (Tensor.elems grid) in
      let cache_bytes =
        match machine.Machine.cache_bytes_per_unit with Some b -> b | None -> 0
      in
      let working_set = plan.Plan.working_set_bytes in
      let compulsory = float_of_int tiles *. float_of_int working_set in
      let kernel_points =
        match Stencil.kernels st with k :: _ -> Kernel.points k | [] -> 1
      in
      let mem_bytes =
        Cache.traffic_bytes ~capacity_bytes:cache_bytes ~working_set_bytes:working_set
          ~compulsory_bytes:compulsory
          ~resident_reuse:(float_of_int kernel_points /. 2.0)
      in
      let bw = machine.Machine.mem_bandwidth_gbs *. overrides.bandwidth_efficiency *. 1e9 in
      let mem_time = mem_bytes /. bw in
      let flops_per_step = float_of_int (Stencil.flops_per_point st) *. points in
      let veff =
        match overrides.vector_efficiency with
        | Some v -> v
        | None ->
            if is_box_shaped st then machine.Machine.vector_efficiency_box
            else machine.Machine.vector_efficiency_star
      in
      let peak = Machine.peak_gflops machine grid.Tensor.dtype *. veff *. 1e9 in
      let compute_time = flops_per_step /. peak in
      let overlap = 0.15 in
      let binding = Float.max compute_time mem_time in
      let other = Float.min compute_time mem_time in
      let step_time =
        ((binding +. (overlap *. other)) *. overrides.time_multiplier)
        +. overrides.fork_join_overhead_s
      in
      let time_s = step_time *. float_of_int steps in
      (* Model-time phases, mirroring the Sunway simulator's trace schema
         with DRAM traffic in place of DMA staging. *)
      Msc_trace.emit_span trace "mem" ~dur_s:mem_time;
      Msc_trace.emit_span trace "core.compute" ~dur_s:compute_time;
      Msc_trace.add trace "mem.bytes" mem_bytes;
      Msc_trace.add trace "sim.step_seconds" step_time;
      Msc_trace.end_span trace "sim.matrix" ts_sim;
      Ok
        {
          benchmark = st.Stencil.name;
          precision = grid.Tensor.dtype;
          steps;
          time_s;
          time_per_step_s = step_time;
          gflops = flops_per_step /. step_time /. 1e9;
          intensity = (if mem_bytes > 0.0 then flops_per_step /. mem_bytes else infinity);
          bound =
            (if compute_time > mem_time then Roofline.Compute_bound
             else Roofline.Memory_bound);
          compute_time_s = compute_time;
          mem_time_s = mem_time;
          tiles;
          cache_resident = working_set <= cache_bytes;
          mem_bytes_per_step = mem_bytes;
        }

let pp_report ppf r =
  Format.fprintf ppf "%s(%a): %.3f ms/step, %.2f GFlop/s, OI %.2f, %s%s" r.benchmark
    Dtype.pp r.precision (r.time_per_step_s *. 1e3) r.gflops r.intensity
    (Roofline.bound_to_string r.bound)
    (if r.cache_resident then ", cache-resident tiles" else ", cache overflow")
