open Msc_ir
module Plan = Msc_schedule.Plan

type result = { accesses : int; misses : int; miss_rate : float }

let sweep_miss_rate ?cache kernel schedule =
  let plan =
    match Plan.compile (Stencil.of_kernel kernel) schedule with
    | Ok p -> p
    | Error msg -> invalid_arg ("Trace.sweep_miss_rate: " ^ msg)
  in
  let cache =
    match cache with
    | Some c -> c
    | None -> Cache.Lru.create ~capacity_bytes:(32 * 1024) ()
  in
  let tensor = kernel.Kernel.input in
  let dims = tensor.Tensor.shape in
  let nd = Array.length dims in
  let halo = tensor.Tensor.halo in
  let elem = Dtype.size_bytes tensor.Tensor.dtype in
  (* Row-major byte address over the padded box; the output grid lives after
     the input in the address space. *)
  let padded = Array.mapi (fun d n -> n + (2 * halo.(d))) dims in
  let strides = Array.make nd 1 in
  for d = nd - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * padded.(d + 1)
  done;
  let total = padded.(0) * strides.(0) in
  let address coord offsets =
    let acc = ref 0 in
    for d = 0 to nd - 1 do
      acc := !acc + ((coord.(d) + offsets.(d) + halo.(d)) * strides.(d))
    done;
    !acc * elem
  in
  let reads =
    List.map (fun (a : Expr.access) -> a.Expr.offsets) (Expr.distinct_accesses kernel.Kernel.expr)
  in
  let visit coord =
    List.iter (fun offsets -> ignore (Cache.Lru.access cache (address coord offsets))) reads;
    (* The write stream to the (disjoint) output grid. *)
    ignore (Cache.Lru.access cache ((total * elem) + address coord (Array.make nd 0)))
  in
  (* Walk the plan's materialized tile tasks — the same traversal order the
     native runtime uses, so a schedule's [reorder] changes the replayed
     address stream too. Within a tile the sweep stays row-major. *)
  let coord = Array.make nd 0 in
  Array.iter
    (fun (lo, hi) ->
      let rec inner d =
        if d = nd then visit coord
        else
          for c = lo.(d) to hi.(d) - 1 do
            coord.(d) <- c;
            inner (d + 1)
          done
      in
      inner 0)
    plan.Plan.tasks;
  {
    accesses = Cache.Lru.accesses cache;
    misses = Cache.Lru.misses cache;
    miss_rate = Cache.Lru.miss_rate cache;
  }
