(** Matrix MT2000+ performance simulator: tile tasks statically scheduled
    over 32 cache-coherent cores, memory traffic from the cache working-set
    model, OpenMP-style per-step fork/join overhead. *)

type overrides = {
  bandwidth_efficiency : float;
  vector_efficiency : float option;
  fork_join_overhead_s : float;
  time_multiplier : float;
      (** residual inefficiency factor for comparator models (1.0 = MSC) *)
}

val default_overrides : overrides

type report = {
  benchmark : string;
  precision : Msc_ir.Dtype.t;
  steps : int;
  time_s : float;
  time_per_step_s : float;
  gflops : float;
  intensity : float;
  bound : Msc_machine.Roofline.bound;
  compute_time_s : float;
  mem_time_s : float;
  tiles : int;
  cache_resident : bool;  (** does the per-core tile working set fit cache? *)
  mem_bytes_per_step : float;
}

val is_box_shaped : Msc_ir.Stencil.t -> bool
(** Compact (box) neighbourhoods vectorize better than star arms. *)

val simulate :
  ?machine:Msc_machine.Machine.t ->
  ?overrides:overrides ->
  ?steps:int ->
  ?trace:Msc_trace.t ->
  ?plan:Msc_schedule.Plan.t ->
  Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t ->
  (report, string) result
(** Default machine {!Msc_machine.Machine.matrix_node}, 10 steps. Costs the
    lowered {!Msc_schedule.Plan.t} — pass [plan] to reuse a compiled one;
    otherwise the plan is compiled here.

    [trace] records modelled ["mem"] / ["core.compute"] spans (simulated
    durations), [mem.bytes] and [sim.step_seconds] counters, and a
    wall-clock ["sim.matrix"] span. *)

val pp_report : Format.formatter -> report -> unit
