(** Grid reductions: the IR form behind residual norms, dot products and
    convergence tests.

    A reduction folds every interior point of one grid (or a pointwise pair
    of two grids) into a single scalar. The four operators cover the
    matrix-free solver loop: [Sum] and [Dot] for Krylov recurrences,
    [Norm2] (the Euclidean norm) for residual monitoring, [Max_abs] (the
    max norm) for error bounds.

    {b Determinism contract.} Floating-point reduction order is part of the
    semantics here, exactly like the sweep backends' bit-identity
    discipline: a tile's partial is accumulated sequentially in row-major
    order over its box, and partials are folded with {!tree_combine} — a
    fixed pairwise tree over the task index — so the result is bit-identical
    for every pool size, every backend, and every distributed engine. The
    combine tree is indexed by {e task order}, never by completion order. *)

type op =
  | Sum  (** [Σ aᵢ] *)
  | Dot  (** [Σ aᵢ·bᵢ] — the only binary operator *)
  | Norm2  (** [√(Σ aᵢ²)]; partials carry the un-rooted sum of squares *)
  | Max_abs  (** [max |aᵢ|] *)

val all : op list

val to_string : op -> string
(** ["sum"], ["dot"], ["norm2"], ["max_abs"]. *)

val of_string : string -> op option
val pp : Format.formatter -> op -> unit

val arity : op -> int
(** [2] for [Dot], else [1]. *)

val code : op -> int
(** Stable ABI code shared with the compiled backends:
    [Sum = 0], [Dot = 1], [Norm2 = 2], [Max_abs = 3]. *)

val identity : op -> float
(** Accumulator seed: [0.] for every operator ([Max_abs] folds absolute
    values, so [0.] is its identity too). *)

val point : op -> float -> float -> float
(** [point op acc v] (unary ops) folds one element into a partial:
    [acc +. v], [acc +. v*.v] or [if |v| > acc then |v| else acc]. For
    [Dot] use {!point2}. *)

val point2 : op -> float -> float -> float -> float
(** [point2 op acc a b] folds one element pair; unary ops ignore [b]. *)

val combine : op -> float -> float -> float
(** Fold two {e partials}: [+.] for the additive operators, max for
    [Max_abs]. Associative and commutative in exact arithmetic; in floats
    only the fixed {!tree_combine} order is part of the contract. *)

val finalize : op -> float -> float
(** Applied once to the root of the combine tree: [sqrt] for [Norm2],
    identity otherwise. *)

val tree_combine : (float -> float -> float) -> float array -> float
(** [tree_combine f partials] folds pairwise with stride doubling:
    level [s] folds index [i] with [i+s] for [i = 0, 2s, 4s, ...] — the
    fixed tree every executor (single-node pools, the distributed
    allreduce) uses, so results never depend on worker count or message
    arrival order.
    @raise Invalid_argument on an empty array. *)
