(** Expression IR (paper Table 2: AssignExpr / OperatorExpr / CallFuncExpr /
    IndexExpr).

    A kernel body is a single expression tree giving the value written to the
    output point; tensor reads are [Access] nodes carrying constant spatial
    offsets relative to the output point (the IndexExpr of the paper is the
    offset vector). *)

type unop = Neg | Abs | Sqrt | Exp | Sin | Cos

type binop = Add | Sub | Mul | Div | Min | Max

type access = {
  tensor : string;  (** name of the tensor being read *)
  offsets : int array;  (** constant offset per dimension, outermost first *)
}

type t =
  | Fconst of float
  | Iconst of int
  | Param of string  (** named scalar coefficient, bound at execution time *)
  | Var of string  (** loop index variable (used by index arithmetic) *)
  | Access of access
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list  (** external function call (CallFuncExpr) *)

(** {1 Construction helpers} *)

val f : float -> t
val i : int -> t
val p : string -> t
val read : string -> int array -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val neg : t -> t

(** {1 Analysis} *)

val accesses : t -> access list
(** All [Access] nodes, in evaluation order (duplicates preserved). *)

val distinct_accesses : t -> access list
(** Deduplicated accesses, order of first occurrence. *)

val flops : t -> int
(** Number of arithmetic operations per evaluated point; counts [+ - * /],
    min/max and unary arithmetic as one each, matching Table 4's "Ops" column
    convention of counting {b +}, {b -}, {b ×}. *)

val params : t -> string list
(** Distinct [Param] names, order of first occurrence. *)

type tap = { coeff : float; offsets : int array }

val linear_taps : bindings:(string * float) list -> t -> tap list option
(** [linear_taps ~bindings e] decomposes [e] as [sum_i coeff_i * T\[p +
    off_i\]] when [e] is a linear combination of single-tensor accesses with
    constant/parameter coefficients; taps with the same offset are merged.
    Returns [None] for non-linear kernels (those fall back to tree
    interpretation). *)

val eval :
  bindings:(string * float) list ->
  load:(access -> float) ->
  var:(string -> float) ->
  t -> float
(** Generic tree evaluation. [load] resolves tensor reads; [var] resolves loop
    variables; calls support ["pow"], ["hypot"], ["fma"] and 1-argument
    math functions by name. @raise Invalid_argument on an unknown call or
    unbound parameter. *)

val map_expr : (t -> t option) -> t -> t
(** Top-down rewrite: when [fn] returns [Some e'] the node is replaced by
    [e'] verbatim (no recursion into the replacement); on [None] the walk
    recurses into the children. Leaves unmatched nodes untouched. *)

val rename_tensor : from:string -> to_:string -> t -> t
val map_offsets : (access -> int array) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_c : index:(access -> string) -> t -> string
(** Render as a C expression, [index] supplying the C lvalue for an access. *)

val equal : t -> t -> bool
