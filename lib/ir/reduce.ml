type op = Sum | Dot | Norm2 | Max_abs

let all = [ Sum; Dot; Norm2; Max_abs ]

let to_string = function
  | Sum -> "sum"
  | Dot -> "dot"
  | Norm2 -> "norm2"
  | Max_abs -> "max_abs"

let of_string = function
  | "sum" -> Some Sum
  | "dot" -> Some Dot
  | "norm2" -> Some Norm2
  | "max_abs" -> Some Max_abs
  | _ -> None

let pp fmt op = Format.pp_print_string fmt (to_string op)
let arity = function Dot -> 2 | Sum | Norm2 | Max_abs -> 1
let code = function Sum -> 0 | Dot -> 1 | Norm2 -> 2 | Max_abs -> 3
let identity (_ : op) = 0.

let point op acc v =
  match op with
  | Sum -> acc +. v
  | Dot -> invalid_arg "Reduce.point: Dot needs two grids (use point2)"
  | Norm2 -> acc +. (v *. v)
  | Max_abs ->
      let v = Float.abs v in
      if v > acc then v else acc

let point2 op acc a b =
  match op with Dot -> acc +. (a *. b) | Sum | Norm2 | Max_abs -> point op acc a

let combine op a b =
  match op with
  | Sum | Dot | Norm2 -> a +. b
  | Max_abs -> if b > a then b else a

let finalize op v = match op with Norm2 -> sqrt v | Sum | Dot | Max_abs -> v

let tree_combine f partials =
  let n = Array.length partials in
  if n = 0 then invalid_arg "Reduce.tree_combine: empty partials";
  let a = Array.copy partials in
  let stride = ref 1 in
  while !stride < n do
    let i = ref 0 in
    while !i + !stride < n do
      a.(!i) <- f a.(!i) a.(!i + !stride);
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done;
  a.(0)
