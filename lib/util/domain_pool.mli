(** Shared-memory parallel iteration built on OCaml 5 domains.

    This is the execution substrate behind MSC's [parallel] primitive when a
    scheduled kernel is *run natively* (the CPU-platform experiments of
    §5.5). Cost-model simulators do not use it.

    The pool is {e persistent}: helper domains are spawned once — lazily, at
    the first parallel region — and parked on a condition variable between
    dispatches. A timestep loop therefore pays [Domain.spawn] exactly
    [size - 1] times over the pool's whole lifetime rather than once per
    step; {!spawn_total} exposes the count so tests and benchmarks can pin
    the invariant. Dispatch is single-consumer: concurrent [parallel_*]
    calls on the same pool from different domains are not supported. *)

type t

val create : int -> t
(** [create n] describes a pool of [n] workers ([n >= 1], clamped to 128).
    Oversubscribing the host's core count is allowed. No domain is spawned
    until the first parallel region runs; an abandoned pool's parked helpers
    are reclaimed by a GC finaliser, but long-lived programs should call
    {!shutdown} deterministically. *)

val size : t -> int

val sequential : t
(** A one-worker pool: [parallel_for] degrades to a plain loop and never
    spawns. *)

val shutdown : t -> unit
(** Wake and join the pool's helper domains. Idempotent; a later parallel
    region transparently respawns (counted by {!spawn_total}). *)

val spawn_total : t -> int
(** How many helper domains this pool has spawned over its lifetime —
    [size - 1] after any number of dispatches unless {!shutdown} forced a
    respawn. *)

val parallel_for :
  ?on_worker:(int -> unit) -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body i] for [lo <= i < hi], statically
    chunked across the pool's workers. [body] must be safe to run concurrently
    on disjoint indices. Exceptions raised by workers are re-raised at the end
    of the region (first one wins); the pool stays usable afterwards.

    [on_worker w] runs once on each worker's domain at region entry, before
    any [body] call — the hook the tracing subsystem uses to bind each
    domain to a per-worker event buffer ({!Msc_trace.attach_worker} via the
    runtime). It must be domain-safe. With a persistent pool the hook runs
    on every region entry (workers survive across regions), so it should be
    idempotent — {!Msc_trace.attach_worker} is. *)

val parallel_chunks :
  ?on_worker:(int -> unit) -> t -> lo:int -> hi:int ->
  (worker:int -> int -> unit) -> unit
(** Like {!parallel_for} but round-robin assignment
    ([i mod size = worker]), mirroring the athread task-to-CPE mapping
    ([mod(task_id, 64) == my_id]) the paper describes in §4.3. *)
