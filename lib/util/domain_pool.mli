(** Shared-memory parallel iteration built on OCaml 5 domains.

    This is the execution substrate behind MSC's [parallel] primitive when a
    scheduled kernel is *run natively* (the CPU-platform experiments of
    §5.5). Cost-model simulators do not use it. *)

type t

val create : int -> t
(** [create n] describes a pool of [n] workers ([n >= 1], clamped to 128).
    Oversubscribing the host's core count is allowed. *)

val size : t -> int

val sequential : t
(** A one-worker pool: [parallel_for] degrades to a plain loop. *)

val parallel_for :
  ?on_worker:(int -> unit) -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body i] for [lo <= i < hi], statically
    chunked across the pool's workers. [body] must be safe to run concurrently
    on disjoint indices. Exceptions raised by workers are re-raised.

    [on_worker w] runs once on each worker's domain at region entry, before
    any [body] call — the hook the tracing subsystem uses to bind each fresh
    domain to a per-worker event buffer ({!Msc_trace.attach_worker} via the
    runtime). It must be domain-safe. *)

val parallel_chunks :
  ?on_worker:(int -> unit) -> t -> lo:int -> hi:int ->
  (worker:int -> int -> unit) -> unit
(** Like {!parallel_for} but round-robin assignment
    ([i mod size = worker]), mirroring the athread task-to-CPE mapping
    ([mod(task_id, 64) == my_id]) the paper describes in §4.3. *)
