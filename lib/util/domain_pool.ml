(* Persistent worker pool.

   Workers are spawned once (lazily, at the first parallel region) and then
   parked on a condition variable between dispatches, so a long run of
   timesteps pays Domain.spawn exactly [workers - 1] times instead of once
   per step. Dispatch hands every worker the same per-worker closure tagged
   with a monotonically increasing epoch; workers run their share, decrement
   [pending], and park again. The caller's domain always executes worker 0's
   share itself, so a dispatch costs one broadcast plus one wait, never a
   spawn/join. *)

type state = {
  mutex : Mutex.t;
  work_ready : Condition.t;  (* workers park here between dispatches *)
  work_done : Condition.t;  (* the dispatcher waits here for [pending = 0] *)
  mutable job : (int -> unit) option;  (* the current epoch's per-worker task *)
  mutable epoch : int;
  mutable pending : int;  (* helpers not yet finished with the current epoch *)
  mutable stop : bool;
}

type t = {
  workers : int;
  state : state;
  failure : exn option Atomic.t;  (* first exception of the current epoch *)
  mutable domains : unit Domain.t list;  (* live helper domains *)
  mutable spawn_total : int;  (* Domain.spawn calls over the pool's lifetime *)
}

let hard_limit = 128

let make_state () =
  {
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = None;
    epoch = 0;
    pending = 0;
    stop = false;
  }

let create n =
  (* Oversubscription past the recommended count is allowed (correctness
     tests exercise multi-domain paths even on single-CPU hosts); the hard
     limit guards the runtime's domain cap. *)
  {
    workers = max 1 (min n hard_limit);
    state = make_state ();
    failure = Atomic.make None;
    domains = [];
    spawn_total = 0;
  }

let size t = t.workers
let spawn_total t = t.spawn_total
let sequential = create 1

let record_failure t exn =
  ignore (Atomic.compare_and_set t.failure None (Some exn))

(* A helper domain's life: park until the epoch advances (or [stop]), run the
   job, report completion, park again. The job itself runs outside the lock. *)
let worker_loop t w =
  let st = t.state in
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock st.mutex;
    while (not st.stop) && st.epoch = !seen do
      Condition.wait st.work_ready st.mutex
    done;
    if st.stop then begin
      Mutex.unlock st.mutex;
      running := false
    end
    else begin
      seen := st.epoch;
      let job = match st.job with Some j -> j | None -> fun _ -> () in
      Mutex.unlock st.mutex;
      (try job w with exn -> record_failure t exn);
      Mutex.lock st.mutex;
      st.pending <- st.pending - 1;
      if st.pending = 0 then Condition.broadcast st.work_done;
      Mutex.unlock st.mutex
    end
  done

let shutdown t =
  if t.domains <> [] then begin
    let st = t.state in
    Mutex.lock st.mutex;
    st.stop <- true;
    Condition.broadcast st.work_ready;
    Mutex.unlock st.mutex;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* Reset so a post-shutdown dispatch can respawn (counted in
       [spawn_total]). *)
    st.stop <- false
  end

let ensure_spawned t =
  if t.domains = [] && t.workers > 1 then begin
    t.domains <-
      List.init (t.workers - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)));
    t.spawn_total <- t.spawn_total + (t.workers - 1);
    (* Parked helpers must not outlive a dropped pool: without this backstop
       every abandoned pool would pin its domains against the runtime's
       domain cap for the life of the process. Workers are woken and joined,
       which is fast because they are parked, not computing. *)
    Gc.finalise shutdown t
  end

let run_workers ?on_worker t per_worker =
  let per_worker =
    match on_worker with
    | None -> per_worker
    | Some hook ->
        fun w ->
          hook w;
          per_worker w
  in
  if t.workers = 1 then per_worker 0
  else begin
    ensure_spawned t;
    let st = t.state in
    Mutex.lock st.mutex;
    st.job <- Some per_worker;
    st.epoch <- st.epoch + 1;
    st.pending <- t.workers - 1;
    Condition.broadcast st.work_ready;
    Mutex.unlock st.mutex;
    (* The dispatcher doubles as worker 0; its exception must not skip the
       completion wait, or the next dispatch would race the helpers. *)
    (try per_worker 0 with exn -> record_failure t exn);
    Mutex.lock st.mutex;
    while st.pending > 0 do
      Condition.wait st.work_done st.mutex
    done;
    st.job <- None;
    Mutex.unlock st.mutex;
    match Atomic.get t.failure with
    | None -> ()
    | Some exn ->
        Atomic.set t.failure None;
        raise exn
  end

let parallel_for ?on_worker t ~lo ~hi body =
  if hi <= lo then ()
  else if t.workers = 1 && Option.is_none on_worker then
    for i = lo to hi - 1 do
      body i
    done
  else begin
    let n = hi - lo in
    let chunk = (n + t.workers - 1) / t.workers in
    let per_worker w =
      let s = lo + (w * chunk) in
      let e = min hi (s + chunk) in
      for i = s to e - 1 do
        body i
      done
    in
    run_workers ?on_worker t per_worker
  end

let parallel_chunks ?on_worker t ~lo ~hi body =
  if hi <= lo then ()
  else begin
    let per_worker w =
      let i = ref (lo + w) in
      while !i < hi do
        body ~worker:w !i;
        i := !i + t.workers
      done
    in
    run_workers ?on_worker t per_worker
  end
