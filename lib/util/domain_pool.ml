type t = { workers : int }

let hard_limit = 128

let create n =
  (* Oversubscription past the recommended count is allowed (correctness
     tests exercise multi-domain paths even on single-CPU hosts); the hard
     limit guards the runtime's domain cap. *)
  { workers = max 1 (min n hard_limit) }

let size t = t.workers
let sequential = { workers = 1 }

let run_workers ?on_worker t per_worker =
  let per_worker =
    match on_worker with
    | None -> per_worker
    | Some hook ->
        fun w ->
          hook w;
          per_worker w
  in
  if t.workers = 1 then per_worker 0
  else begin
    let failure = Atomic.make None in
    let guarded w () =
      try per_worker w
      with exn -> ignore (Atomic.compare_and_set failure None (Some exn))
    in
    let spawned =
      List.init (t.workers - 1) (fun k -> Domain.spawn (guarded (k + 1)))
    in
    guarded 0 ();
    List.iter Domain.join spawned;
    match Atomic.get failure with None -> () | Some exn -> raise exn
  end

let parallel_for ?on_worker t ~lo ~hi body =
  if hi <= lo then ()
  else if t.workers = 1 && Option.is_none on_worker then
    for i = lo to hi - 1 do
      body i
    done
  else begin
    let n = hi - lo in
    let chunk = (n + t.workers - 1) / t.workers in
    let per_worker w =
      let s = lo + (w * chunk) in
      let e = min hi (s + chunk) in
      for i = s to e - 1 do
        body i
      done
    in
    run_workers ?on_worker t per_worker
  end

let parallel_chunks ?on_worker t ~lo ~hi body =
  if hi <= lo then ()
  else begin
    let per_worker w =
      let i = ref (lo + w) in
      while !i < hi do
        body ~worker:w !i;
        i := !i + t.workers
      done
    in
    run_workers ?on_worker t per_worker
  end
