(** Interconnect cost models for large-scale runs (Figure 10).

    A halo exchange is costed with the alpha-beta model per message, plus a
    topology-dependent congestion multiplier that grows with the number of
    concurrently communicating ranks — the effect the paper blames for the
    2-D strong-scaling droop on the Tianhe-3 prototype. *)

type t = {
  name : string;
  alpha_s : float;  (** per-message latency *)
  beta_gbs : float;  (** per-link bandwidth, GB/s *)
  congestion_at :
    nranks:int -> messages_per_rank:int -> bytes_per_message:float -> float;
      (** multiplier >= 1 applied to the per-message setup cost; small
          messages from many concurrent ranks congest hardest *)
}

val sunway_taihulight : t
(** Custom fat-tree; generous bisection: congestion stays near 1. *)

val tianhe3_prototype : t
(** Prototype interconnect with limited bisection bandwidth: congestion grows
    with scale and message count. *)

val shared_memory : t
(** Intra-node "network" used for the CPU-platform Physis comparison. *)

val set_sim_latency_scale : float -> unit
(** Scale applied to the {b wall-clock} latency {!Mpi_sim} charges on
    simulated messages (default [1.0]). The analytic times below are never
    scaled — setting [0.0] makes the simulator deliver instantly while every
    model-based cost (scaling curves, autotuning) is unchanged. The test
    harness sets [0.0] so [dune runtest] never sleeps on synthetic latency;
    benches run at [1.0].
    @raise Invalid_argument on a negative scale. *)

val sim_latency_scale : unit -> float
(** The current wall-clock scale. *)

val message_time : t -> nranks:int -> bytes:int -> float
(** In-flight time of a single message: per-message setup (congested at the
    given scale, one message per rank) plus payload streaming. This is the
    latency {!Mpi_sim} charges between posting a send and the matching
    receive completing, so traces show a genuine transfer window the
    overlapped engine can hide compute behind. *)

val allreduce_time : t -> nranks:int -> bytes:int -> float
(** One allreduce of a [bytes]-sized value under recursive doubling:
    [ceil(log2 nranks)] rounds, each priced like a single {!message_time}
    message at the current scale — the same alpha-beta model as halo
    exchange, so solver reductions and halo traffic are directly
    comparable. [0.] for one rank.
    @raise Invalid_argument when [nranks < 1]. *)

val exchange_time :
  t -> nranks:int -> messages_per_rank:int -> bytes_per_message:float -> float
(** Wall time of one asynchronous exchange round: all ranks communicate
    concurrently, so the cost is one rank's serialised message stream times
    the congestion multiplier. *)

val master_coordinated_time :
  t -> nranks:int -> messages_per_rank:int -> bytes_per_message:float -> float
(** The Physis-style RPC protocol: every message is relayed through a master
    rank, serialising the entire exchange volume (§5.5). *)
