module Grid = Msc_exec.Grid

(* The slab of the rank's grid involved in an exchange toward [dir].
   [`Inner] = data we own and send; [`Outer] = halo cells we receive into.
   Returns per-dimension [lo, hi) in interior coordinates (outer slabs extend
   into negative / beyond-extent coordinates). *)
let region (g : Grid.t) ~dir ~width ~side =
  let nd = Grid.ndim g in
  Array.init nd (fun d ->
      let n = g.Grid.shape.(d) and w = width.(d) in
      match (dir.(d), side) with
      | 0, _ -> (0, n)
      | -1, `Inner -> (0, w)
      | 1, `Inner -> (n - w, n)
      | -1, `Outer -> (-w, 0)
      | 1, `Outer -> (n, n + w)
      | _ -> invalid_arg "Halo.region: direction entries must be -1/0/1")

let region_extents g ~dir ~width =
  Array.map (fun (lo, hi) -> hi - lo) (region g ~dir ~width ~side:`Inner)

let payload_elems g ~dir ~width =
  Array.fold_left ( * ) 1 (region_extents g ~dir ~width)

let iter_region g ranges fn =
  let nd = Grid.ndim g in
  let coord = Array.make nd 0 in
  let rec go d =
    if d = nd then fn coord
    else begin
      let lo, hi = ranges.(d) in
      for k = lo to hi - 1 do
        coord.(d) <- k;
        go (d + 1)
      done
    end
  in
  go 0

(* Walk a slab one contiguous innermost run at a time: [row base len] gets
   the flat index of the run's first element. The innermost dimension has
   stride 1 by construction, so the per-element work inside a run is just
   the float<->LE conversion — no coordinate arithmetic. *)
let iter_region_rows (g : Grid.t) ranges row =
  let nd = Grid.ndim g in
  let last = nd - 1 in
  let lo_last, hi_last = ranges.(last) in
  let len = hi_last - lo_last in
  if len > 0 then begin
    let coord = Array.map fst ranges in
    let base_of () =
      let acc = ref 0 in
      for d = 0 to nd - 1 do
        acc := !acc + ((coord.(d) + g.Grid.halo.(d)) * g.Grid.strides.(d))
      done;
      !acc
    in
    let rec go d =
      if d = last then row (base_of ()) len
      else begin
        let lo, hi = ranges.(d) in
        for k = lo to hi - 1 do
          coord.(d) <- k;
          go (d + 1)
        done
      end
    in
    go 0
  end

let pack g ~dir ~width =
  let ranges = region g ~dir ~width ~side:`Inner in
  let elems = payload_elems g ~dir ~width in
  let buf = Bytes.create (8 * elems) in
  let data = g.Grid.data in
  let pos = ref 0 in
  iter_region_rows g ranges (fun base len ->
      let p = !pos in
      for c = 0 to len - 1 do
        Bytes.set_int64_le buf
          (p + (8 * c))
          (Int64.bits_of_float (Array.unsafe_get data (base + c)))
      done;
      pos := p + (8 * len));
  buf

let unpack g ~dir ~width payload =
  let ranges = region g ~dir ~width ~side:`Outer in
  let elems = payload_elems g ~dir ~width in
  if Bytes.length payload <> 8 * elems then
    invalid_arg
      (Printf.sprintf "Halo.unpack: payload %d B but slab needs %d B"
         (Bytes.length payload) (8 * elems));
  let data = g.Grid.data in
  let pos = ref 0 in
  iter_region_rows g ranges (fun base len ->
      let p = !pos in
      for c = 0 to len - 1 do
        Array.unsafe_set data (base + c)
          (Int64.float_of_bits (Bytes.get_int64_le payload (p + (8 * c))))
      done;
      pos := p + (8 * len))

(* The original coordinate-at-a-time implementations, retained as the
   reference the row-based pack/unpack are property-tested against. *)

let pack_naive g ~dir ~width =
  let ranges = region g ~dir ~width ~side:`Inner in
  let elems = payload_elems g ~dir ~width in
  let buf = Bytes.create (8 * elems) in
  let pos = ref 0 in
  iter_region g ranges (fun coord ->
      Bytes.set_int64_le buf !pos (Int64.bits_of_float (Grid.get g coord));
      pos := !pos + 8);
  buf

let unpack_naive g ~dir ~width payload =
  let ranges = region g ~dir ~width ~side:`Outer in
  let elems = payload_elems g ~dir ~width in
  if Bytes.length payload <> 8 * elems then
    invalid_arg
      (Printf.sprintf "Halo.unpack: payload %d B but slab needs %d B"
         (Bytes.length payload) (8 * elems));
  let pos = ref 0 in
  iter_region g ranges (fun coord ->
      Grid.set g coord (Int64.float_of_bits (Bytes.get_int64_le payload !pos));
      pos := !pos + 8)

(* Deep-halo variants: one message per neighbour carries the [k * radius]
   slab of {e every} retained state (dt = 1 first, then dt = 2, ...), so a
   depth-k temporal block pays one latency per neighbour instead of k. *)

let pack_multi grids ~dir ~width =
  Bytes.concat Bytes.empty
    (List.map (fun g -> pack g ~dir ~width) (Array.to_list grids))

let unpack_multi grids ~dir ~width payload =
  let per = 8 * payload_elems grids.(0) ~dir ~width in
  if Bytes.length payload <> per * Array.length grids then
    invalid_arg
      (Printf.sprintf "Halo.unpack_multi: payload %d B but %d slabs of %d B"
         (Bytes.length payload) (Array.length grids) per);
  Array.iteri
    (fun i g -> unpack g ~dir ~width (Bytes.sub payload (i * per) per))
    grids

(* The tag is the sender's direction, so the receiver matches on the
   opposite one. *)
let post_sends ?periodic ?(trace = Msc_trace.disabled) mpi (decomp : Decomp.t)
    ~rank ~grid ~width ~faces_only =
  let nd = Array.length decomp.Decomp.global in
  (* One wall-clock read stamps the rank's whole direction fan, and the
     freshly packed slab is handed over rather than copied. *)
  let now = Mpi_sim.clock mpi in
  List.iter
    (fun dir ->
      match Decomp.neighbor ?periodic decomp ~rank ~dir with
      | None -> ()
      | Some nb ->
          let ts_pack = Msc_trace.begin_span trace in
          let payload = pack grid ~dir ~width in
          Msc_trace.end_span ~tid:rank trace "halo.pack" ts_pack;
          Msc_trace.add ~tid:rank trace "halo.bytes"
            (float_of_int (Bytes.length payload));
          let ts_send = Msc_trace.begin_span trace in
          Mpi_sim.isend_owned ?now mpi ~src:rank ~dst:nb
            ~tag:(Decomp.dir_index ~ndim:nd dir) payload;
          Msc_trace.end_span ~tid:rank trace "halo.exchange" ts_send)
    (Decomp.directions ~ndim:nd ~faces_only)

let post_sends_deep ?periodic ?(trace = Msc_trace.disabled) mpi
    (decomp : Decomp.t) ~rank ~grids ~width ~faces_only =
  let nd = Array.length decomp.Decomp.global in
  let now = Mpi_sim.clock mpi in
  List.iter
    (fun dir ->
      match Decomp.neighbor ?periodic decomp ~rank ~dir with
      | None -> ()
      | Some nb ->
          let ts_pack = Msc_trace.begin_span trace in
          let payload = pack_multi grids ~dir ~width in
          Msc_trace.end_span ~tid:rank trace "halo.pack" ts_pack;
          Msc_trace.add ~tid:rank trace "halo.bytes"
            (float_of_int (Bytes.length payload));
          let ts_send = Msc_trace.begin_span trace in
          Mpi_sim.isend_owned ?now mpi ~src:rank ~dst:nb
            ~tag:(Decomp.dir_index ~ndim:nd dir) payload;
          Msc_trace.end_span ~tid:rank trace "halo.exchange" ts_send)
    (Decomp.directions ~ndim:nd ~faces_only)

let post_recvs ?periodic mpi (decomp : Decomp.t) ~rank ~faces_only =
  let nd = Array.length decomp.Decomp.global in
  List.filter_map
    (fun dir ->
      let opposite = Array.map (fun v -> -v) dir in
      match Decomp.neighbor ?periodic decomp ~rank ~dir with
      | None -> None
      | Some nb ->
          Some
            ( dir,
              Mpi_sim.irecv mpi ~dst:rank ~src:nb
                ~tag:(Decomp.dir_index ~ndim:nd opposite) ))
    (Decomp.directions ~ndim:nd ~faces_only)

let complete_recvs ?timeout_s ?(trace = Msc_trace.disabled) mpi ~rank ~grid
    ~width recvs =
  List.iter
    (fun (dir, req) ->
      let ts_recv = Msc_trace.begin_span trace in
      let payload = Mpi_sim.wait ?timeout_s mpi req in
      Msc_trace.end_span ~tid:rank trace "halo.exchange" ts_recv;
      let ts_unpack = Msc_trace.begin_span trace in
      unpack grid ~dir ~width payload;
      Msc_trace.end_span ~tid:rank trace "halo.unpack" ts_unpack)
    recvs

let complete_recvs_deep ?timeout_s ?(trace = Msc_trace.disabled) mpi ~rank
    ~grids ~width recvs =
  List.iter
    (fun (dir, req) ->
      let ts_recv = Msc_trace.begin_span trace in
      let payload = Mpi_sim.wait ?timeout_s mpi req in
      Msc_trace.end_span ~tid:rank trace "halo.exchange" ts_recv;
      let ts_unpack = Msc_trace.begin_span trace in
      unpack_multi grids ~dir ~width payload;
      Msc_trace.end_span ~tid:rank trace "halo.unpack" ts_unpack)
    recvs

let exchange ?periodic ?trace mpi (decomp : Decomp.t) ~grids ~width ~faces_only =
  let nranks = Decomp.(decomp.nranks) in
  assert (Array.length grids = nranks);
  (* Phase 1: every rank posts all its sends (MPI_Isend). *)
  for rank = 0 to nranks - 1 do
    post_sends ?periodic ?trace mpi decomp ~rank ~grid:grids.(rank) ~width
      ~faces_only
  done;
  (* Phase 2: every rank completes its receives (MPI_Irecv + MPI_Wait). *)
  for rank = 0 to nranks - 1 do
    let recvs = post_recvs ?periodic mpi decomp ~rank ~faces_only in
    complete_recvs ?trace mpi ~rank ~grid:grids.(rank) ~width recvs
  done
