(** Halo packing/unpacking and the asynchronous exchange protocol
    (§4.4, Figure 6b/c).

    The sub-tensor is dissected into the inner halo region (data sent to
    neighbours), the outer halo region (data received from neighbours), and
    the inner region. Payloads are serialised into byte buffers (float64
    little-endian), moved through {!Mpi_sim}, and unpacked on the receiving
    side. *)

val region_extents : Msc_exec.Grid.t -> dir:int array -> width:int array -> int array
(** Extent of the (inner or outer) halo slab toward [dir]. *)

val pack : Msc_exec.Grid.t -> dir:int array -> width:int array -> Bytes.t
(** Serialise the inner halo slab facing [dir] (the data a neighbour at [dir]
    needs). [width] is the exchange width per dimension (the stencil
    radius). The slab is walked one contiguous innermost run at a time, so
    per-element cost is just the float64-LE conversion. *)

val unpack : Msc_exec.Grid.t -> dir:int array -> width:int array -> Bytes.t -> unit
(** Write a received payload into the outer halo slab toward [dir].
    @raise Invalid_argument if the payload size mismatches the slab. *)

val pack_naive : Msc_exec.Grid.t -> dir:int array -> width:int array -> Bytes.t
(** Coordinate-at-a-time reference implementation of {!pack}, retained so
    the row-based path stays property-tested against it. *)

val unpack_naive :
  Msc_exec.Grid.t -> dir:int array -> width:int array -> Bytes.t -> unit
(** Reference implementation of {!unpack} (see {!pack_naive}). *)

val payload_elems : Msc_exec.Grid.t -> dir:int array -> width:int array -> int

val pack_multi :
  Msc_exec.Grid.t array -> dir:int array -> width:int array -> Bytes.t
(** Concatenation of {!pack} over several same-geometry grids (the retained
    states of a time window, dt = 1 first): the deep-halo temporal engine
    ships one [k * radius]-wide slab of every state per neighbour in a
    single message, paying one latency per neighbour per depth-[k] block. *)

val unpack_multi :
  Msc_exec.Grid.t array -> dir:int array -> width:int array -> Bytes.t -> unit
(** Split a {!pack_multi} payload into equal per-state slabs and {!unpack}
    each into the matching grid.
    @raise Invalid_argument if the payload size mismatches. *)

(** {1 Split protocol (the overlapped engine's phases)}

    One exchange = every rank runs {!post_sends} (and usually {!post_recvs}),
    then — after any computation it wants to hide behind the in-flight
    messages — {!complete_recvs}. All sends must be posted before any rank
    completes its receives; the distributed runtime guarantees this with a
    pool barrier between its phases. *)

val post_sends :
  ?periodic:bool ->
  ?trace:Msc_trace.t ->
  Mpi_sim.t ->
  Decomp.t ->
  rank:int ->
  grid:Msc_exec.Grid.t ->
  width:int array ->
  faces_only:bool ->
  unit
(** Pack and post one rank's sends for every exchange direction (MPI_Isend).
    The message tag is the {e sender's} direction index, so the receiver
    matches on the opposite direction. Records ["halo.pack"] spans, a
    ["halo.bytes"] counter and a ["halo.exchange"] span per posted send,
    all tagged with [rank] as [tid]. *)

val post_sends_deep :
  ?periodic:bool ->
  ?trace:Msc_trace.t ->
  Mpi_sim.t ->
  Decomp.t ->
  rank:int ->
  grids:Msc_exec.Grid.t array ->
  width:int array ->
  faces_only:bool ->
  unit
(** {!post_sends} with a {!pack_multi} payload: one message per neighbour
    carrying the [width]-wide slab of every grid in [grids]. Same tagging
    and trace spans. *)

val post_recvs :
  ?periodic:bool ->
  Mpi_sim.t ->
  Decomp.t ->
  rank:int ->
  faces_only:bool ->
  (int array * Mpi_sim.request) list
(** Post one rank's receives (MPI_Irecv): one request per direction that has
    a neighbour, paired with the direction whose outer slab the payload
    belongs to. *)

val complete_recvs :
  ?timeout_s:float ->
  ?trace:Msc_trace.t ->
  Mpi_sim.t ->
  rank:int ->
  grid:Msc_exec.Grid.t ->
  width:int array ->
  (int array * Mpi_sim.request) list ->
  unit
(** Wait out each posted receive (simulated in-flight latency included) and
    unpack its payload into the matching outer halo slab. Records a
    ["halo.exchange"] span per completion and ["halo.unpack"] spans, tagged
    with [rank].
    @raise Mpi_sim.Deadlock when a matching send never arrives within
    [timeout_s] (a neighbour/tag bug). *)

val complete_recvs_deep :
  ?timeout_s:float ->
  ?trace:Msc_trace.t ->
  Mpi_sim.t ->
  rank:int ->
  grids:Msc_exec.Grid.t array ->
  width:int array ->
  (int array * Mpi_sim.request) list ->
  unit
(** {!complete_recvs} for {!pack_multi} payloads: each completed message is
    split into per-state slabs and unpacked into every grid of [grids]
    (same order as the sender's {!post_sends_deep}). *)

val exchange :
  ?periodic:bool ->
  ?trace:Msc_trace.t ->
  Mpi_sim.t ->
  Decomp.t ->
  grids:Msc_exec.Grid.t array ->
  width:int array ->
  faces_only:bool ->
  unit
(** One complete bulk-synchronous halo exchange of the given per-rank state:
    every rank posts all its sends, then all receives complete (the
    MPI_Isend / MPI_Irecv pattern of Figure 6c) — {!post_sends} then
    {!post_recvs}/{!complete_recvs} over all ranks, with no compute in
    between. Physical-boundary slabs are left untouched unless [periodic],
    in which case they wrap around the process grid (self-sends included).

    [trace] records, per message and tagged with the owning rank as [tid]:
    ["halo.pack"] / ["halo.unpack"] spans around serialisation, a
    ["halo.exchange"] span around each send post and receive completion,
    and a ["halo.bytes"] counter of payload volume. *)

