open Msc_ir
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Bc = Msc_exec.Bc
module Plan = Msc_schedule.Plan

type engine = Bulk_synchronous | Overlapped

type t = {
  stencil : Stencil.t;
  decomp : Decomp.t;
  mpi : Mpi_sim.t;
  runtimes : Runtime.t array;
  offsets : int array array;
  width : int array;  (** exchange width = stencil radius *)
  faces_only : bool;
  bc : Bc.t;
  engine : engine;
  pool : Msc_util.Domain_pool.t;  (** dispatches ranks, not tiles *)
  phases : ((int array * int array) array * (int array * int array) array) array;
      (** per rank: (interior tasks, boundary-shell tasks) — the plan's
          tiles split against the cells at least [width] from every face *)
  trace : Msc_trace.t;
  mutable steps_done : int;
}

(* A kernel access touching two or more dimensions at once (box corners)
   requires diagonal-neighbour exchanges; star stencils get by with faces. *)
let needs_corners (st : Stencil.t) =
  List.exists
    (fun k ->
      List.exists
        (fun (a : Expr.access) ->
          Array.fold_left (fun n o -> if o <> 0 then n + 1 else n) 0 a.Expr.offsets
          >= 2)
        (Expr.distinct_accesses k.Kernel.expr))
    (Stencil.kernels st)

let localize_stencil (st : Stencil.t) ~extent =
  let grid = st.Stencil.grid in
  let local_tensor = { grid with Tensor.shape = Array.copy extent } in
  let localize_kernel k =
    let aux =
      List.map
        (fun (tensor : Tensor.t) -> { tensor with Tensor.shape = Array.copy extent })
        k.Kernel.aux
    in
    Kernel.make ~bindings:k.Kernel.bindings ~aux ~name:k.Kernel.name
      ~input:local_tensor ~index_vars:k.Kernel.index_vars k.Kernel.expr
  in
  let rec go (e : Stencil.expr) =
    match e with
    | Stencil.Apply (k, dt) -> Stencil.Apply (localize_kernel k, dt)
    | Stencil.State _ -> e
    | Stencil.Scale (c, a) -> Stencil.Scale (c, go a)
    | Stencil.Sum (a, b) -> Stencil.Sum (go a, go b)
    | Stencil.Diff (a, b) -> Stencil.Diff (go a, go b)
  in
  Stencil.make ~name:st.Stencil.name ~grid:local_tensor (go st.Stencil.expr)

(* Which of a rank's faces sit on the physical boundary (none when the
   domain is periodic: the wrapped exchange owns every face). *)
let physical_masks t ~rank =
  let coords = Decomp.coords_of_rank t.decomp rank in
  let shape = t.decomp.Decomp.ranks_shape in
  let low = Array.map (fun c -> c = 0) coords in
  let high = Array.mapi (fun d c -> c = shape.(d) - 1) coords in
  (low, high)

(* One full exchange = the communication window of a timestep: the span
   covers pack, transfer and unpack for every rank and direction. *)
let exchange_state t ~dt =
  let ts_win = Msc_trace.begin_span t.trace in
  let periodic = Bc.equal t.bc Bc.Periodic in
  let grids = Array.map (fun rt -> Runtime.state rt ~dt) t.runtimes in
  Halo.exchange ~periodic ~trace:t.trace t.mpi t.decomp ~grids ~width:t.width
    ~faces_only:t.faces_only;
  (* Refresh the physical faces after the exchange, so reflect corners can
     read freshly exchanged edge data. *)
  if not periodic then
    Array.iteri
      (fun rank g ->
        let low, high = physical_masks t ~rank in
        Bc.apply ~low ~high t.bc g)
      grids;
  Msc_trace.end_span t.trace "halo.window" ts_win

let create ?(engine = Overlapped) ?net
    ?(pool = Msc_util.Domain_pool.sequential) ?schedule
    ?(init = fun coord -> Runtime.default_init 1 coord)
    ?(aux_init = Runtime.default_aux_init) ?(bc = Bc.Dirichlet 0.0)
    ?(trace = Msc_trace.disabled) ~ranks_shape (st : Stencil.t) =
  Stencil.validate_halo st;
  let grid = st.Stencil.grid in
  let decomp = Decomp.create ~global:grid.Tensor.shape ~ranks_shape in
  let nranks = decomp.Decomp.nranks in
  let mpi = Mpi_sim.create ?net ~nranks () in
  let offsets = Array.make nranks [||] in
  let width = Stencil.radius st in
  let phases = Array.make nranks ([||], [||]) in
  (* One plan per distinct rank extent (uneven decompositions produce at
     most a handful): equal-extent ranks share the same compiled task
     array instead of each rank re-lowering the schedule. *)
  let plans = ref [] in
  let plan_for local ~extent =
    match schedule with
    | None -> None
    | Some sched -> (
        match List.find_opt (fun (e, _) -> e = extent) !plans with
        | Some (_, p) -> Some p
        | None ->
            let p =
              match Plan.compile local sched with
              | Ok p -> p
              | Error msg -> invalid_arg ("Distributed.create: " ^ msg)
            in
            plans := (Array.copy extent, p) :: !plans;
            Some p)
  in
  let runtimes =
    Array.init nranks (fun rank ->
        let offset, extent = Decomp.subdomain decomp ~rank in
        offsets.(rank) <- offset;
        let local = localize_stencil st ~extent in
        let plan = plan_for local ~extent in
        let local_init _dt coord =
          init (Array.mapi (fun d c -> c + offset.(d)) coord)
        in
        (* Coefficient grids are static closed forms over global coordinates,
           so each rank fills its slab (halo included) directly -- no
           exchange needed and bit-identical to the single-grid run. *)
        let local_aux_init name coord =
          aux_init name (Array.mapi (fun d c -> c + offset.(d)) coord)
        in
        (* The local runtime's own BC pass runs on every face; the exchange
           plus the physical-face pass above overwrite the interior faces
           with the right data afterwards. *)
        let rt =
          Runtime.create ?plan ~init:local_init ~aux_init:local_aux_init ~bc
            ~trace ~tid:rank local
        in
        (* Split the rank's tile tasks against its halo-free core: cells at
           least the stencil radius from every local face read no halo
           data, so their sub-sweep can run while exchange messages are in
           flight. A sub-grid thinner than twice the radius has an empty
           interior (every cell waits for the exchange). *)
        let core_lo = Array.copy width in
        let core_hi =
          Array.mapi (fun d n -> max width.(d) (n - width.(d))) extent
        in
        phases.(rank) <- Plan.split_tasks ~core_lo ~core_hi (Runtime.tiles rt);
        rt)
  in
  let t =
    {
      stencil = st;
      decomp;
      mpi;
      runtimes;
      offsets;
      width;
      faces_only = not (needs_corners st);
      bc;
      engine;
      pool;
      phases;
      trace;
      steps_done = 0;
    }
  in
  (* Every retained past state needs consistent halos before the first
     step. *)
  for dt = 1 to Stencil.time_window st do
    exchange_state t ~dt
  done;
  t

let nranks t = Array.length t.runtimes
let decomp t = t.decomp
let mpi t = t.mpi
let engine t = t.engine
let steps_done t = t.steps_done

(* The parity reference: every rank sweeps its full tile set, then the
   freshly produced state is exchanged — no compute hides the messages. *)
let bulk_step t =
  Array.iter Runtime.step t.runtimes;
  exchange_state t ~dt:1

(* The overlapped step re-splits the exchange around the interior sub-sweep.
   The state entering the step (dt = 1) already has consistent halos from
   the previous step's phase B (or from [create]'s initial exchanges), and
   re-exchanging it moves bit-identical data: packing reads interior slabs,
   which no phase mutates. Interior cells read no halo data at all, so
   phase A's sub-sweep is correct regardless of message progress; the
   boundary shell waits for the completed exchange in phase B.

   Three pool dispatches with barriers between them keep the protocol
   deadlock-free even when the pool has fewer workers than ranks: every
   send is posted before any rank blocks in [Mpi_sim.wait]. Posting is its
   own (cheap) phase rather than a prologue of each rank's compute so that
   all messages enter flight before any interior sweep starts — the full
   sweep then counts against every message's latency, even when the pool's
   workers time-slice a single core. *)
let overlapped_step t =
  let periodic = Bc.equal t.bc Bc.Periodic in
  let n = Array.length t.runtimes in
  let recvs = Array.make n [] in
  (* Phase A: pack and post every rank's sends and receives. *)
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      let grid = Runtime.state rt ~dt:1 in
      Halo.post_sends ~periodic ~trace:t.trace t.mpi t.decomp ~rank ~grid
        ~width:t.width ~faces_only:t.faces_only;
      recvs.(rank) <-
        Halo.post_recvs ~periodic t.mpi t.decomp ~rank
          ~faces_only:t.faces_only);
  (* Phase B: hide the interior sub-sweep behind the in-flight messages. *)
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      Runtime.begin_step rt;
      let interior, _ = t.phases.(rank) in
      let ts = Msc_trace.begin_span t.trace in
      Runtime.sweep_tasks rt interior;
      Msc_trace.end_span ~tid:rank t.trace "halo.overlap" ts);
  (* Phase C: complete the receives, refresh the physical faces, sweep the
     boundary shell, commit the step. *)
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      let grid = Runtime.state rt ~dt:1 in
      Halo.complete_recvs ~trace:t.trace t.mpi ~rank ~grid ~width:t.width
        recvs.(rank);
      if not periodic then begin
        let low, high = physical_masks t ~rank in
        Bc.apply ~low ~high t.bc grid
      end;
      let _, shell = t.phases.(rank) in
      let ts = Msc_trace.begin_span t.trace in
      Runtime.sweep_tasks rt shell;
      Msc_trace.end_span ~tid:rank t.trace "halo.shell" ts;
      Runtime.finish_step rt)

let step t =
  (match t.engine with
  | Bulk_synchronous -> bulk_step t
  | Overlapped -> overlapped_step t);
  t.steps_done <- t.steps_done + 1

let run t n =
  for _ = 1 to n do
    step t
  done

let rank_state t ~rank = Runtime.current t.runtimes.(rank)

let gather t =
  let grid = t.stencil.Stencil.grid in
  let out = Grid.create ~shape:grid.Tensor.shape ~halo:grid.Tensor.halo in
  Array.iteri
    (fun rank rt ->
      let local = Runtime.current rt in
      let offset = t.offsets.(rank) in
      Grid.iter_interior local (fun coord ->
          let global_coord = Array.mapi (fun d c -> c + offset.(d)) coord in
          Grid.set out global_coord (Grid.get local coord)))
    t.runtimes;
  out

let validate ?engine ?(steps = 3) ?bc ~ranks_shape (st : Stencil.t) =
  let dist = create ?engine ?bc ~ranks_shape st in
  let single = Runtime.create ?bc st in
  run dist steps;
  Runtime.run single steps;
  Grid.max_rel_error ~reference:(Runtime.current single) (gather dist)
