open Msc_ir
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Bc = Msc_exec.Bc
module Plan = Msc_schedule.Plan
module Exec = Msc_exec.Exec
module G = Msc_graph.Graph

type engine = Exec.engine =
  | Bulk_synchronous
  | Overlapped
  | Temporal_blocked of { depth : int }

type t = {
  stencil : Stencil.t;
  decomp : Decomp.t;
  mpi : Mpi_sim.t;
  runtimes : Runtime.t array;
  offsets : int array array;
  width : int array;  (** exchange width = depth * stencil radius *)
  faces_only : bool;
  bc : Bc.t;
  engine : engine;
  effective_engine : engine;
      (** the protocol actually stepping: [Temporal_blocked] records its
          clamped depth; graph runs degrade [Temporal_blocked {depth = 1}]
          to [Bulk_synchronous] (deeper graph blocks are rejected) *)
  rank_config : Exec.Config.t;
      (** each rank's local config (sequential pool) — reduction executors
          reuse its backend *)
  mutable reducers : Msc_exec.Reduction.t array option;
      (** per-rank reduction executors over the rank state geometry,
          built lazily on the first {!reduce} *)
  depth : int;  (** effective temporal-block depth (1 for other engines) *)
  pool : Msc_util.Domain_pool.t;  (** dispatches ranks, not tiles *)
  phases : ((int array * int array) array * (int array * int array) array) array;
      (** per rank: (interior tasks, boundary-shell tasks) — the first
          substep's tasks split against the cells at least the stencil
          radius from every face (only those read pre-exchange halo data) *)
  sub_tasks : (int array * int array) array array array;
      (** per rank, per substep: the temporal block's shrinking task arrays
          ({!Plan.temporal}); a single plain-tiles substep at depth 1 *)
  mutable block_pos : int;  (** substep position within the current block *)
  trace : Msc_trace.t;
  mutable steps_done : int;
  graph : G.t option;  (** present iff built by [create_graph] *)
}

(* A kernel access touching two or more dimensions at once (box corners)
   requires diagonal-neighbour exchanges; star stencils get by with faces. *)
let needs_corners (st : Stencil.t) =
  List.exists
    (fun k ->
      List.exists
        (fun (a : Expr.access) ->
          Array.fold_left (fun n o -> if o <> 0 then n + 1 else n) 0 a.Expr.offsets
          >= 2)
        (Expr.distinct_accesses k.Kernel.expr))
    (Stencil.kernels st)

let localize_stencil ?halo (st : Stencil.t) ~extent =
  let grid = st.Stencil.grid in
  let local_tensor =
    match halo with
    | None -> { grid with Tensor.shape = Array.copy extent }
    | Some h ->
        (* Deep-halo override (temporal blocking): the local grids carry a
           [depth * radius] halo so one exchange feeds a whole block. *)
        { grid with Tensor.shape = Array.copy extent; Tensor.halo = Array.copy h }
  in
  let localize_kernel k =
    let aux =
      List.map
        (fun (tensor : Tensor.t) ->
          match halo with
          | None -> { tensor with Tensor.shape = Array.copy extent }
          | Some h ->
              { tensor with Tensor.shape = Array.copy extent; Tensor.halo = Array.copy h })
        k.Kernel.aux
    in
    Kernel.make ~bindings:k.Kernel.bindings ~aux ~name:k.Kernel.name
      ~input:local_tensor ~index_vars:k.Kernel.index_vars k.Kernel.expr
  in
  let rec go (e : Stencil.expr) =
    match e with
    | Stencil.Apply (k, dt) -> Stencil.Apply (localize_kernel k, dt)
    | Stencil.State _ -> e
    | Stencil.Scale (c, a) -> Stencil.Scale (c, go a)
    | Stencil.Sum (a, b) -> Stencil.Sum (go a, go b)
    | Stencil.Diff (a, b) -> Stencil.Diff (go a, go b)
  in
  Stencil.make ~name:st.Stencil.name ~grid:local_tensor (go st.Stencil.expr)

(* Which of a rank's faces sit on the physical boundary (none when the
   domain is periodic: the wrapped exchange owns every face). *)
let physical_masks t ~rank =
  let coords = Decomp.coords_of_rank t.decomp rank in
  let shape = t.decomp.Decomp.ranks_shape in
  let low = Array.map (fun c -> c = 0) coords in
  let high = Array.mapi (fun d c -> c = shape.(d) - 1) coords in
  (low, high)

(* One full exchange = the communication window of a timestep: the span
   covers pack, transfer and unpack for every rank and direction. *)
let exchange_state t ~dt =
  let ts_win = Msc_trace.begin_span t.trace in
  let periodic = Bc.equal t.bc Bc.Periodic in
  let grids = Array.map (fun rt -> Runtime.state rt ~dt) t.runtimes in
  Halo.exchange ~periodic ~trace:t.trace t.mpi t.decomp ~grids ~width:t.width
    ~faces_only:t.faces_only;
  (* Refresh the physical faces after the exchange, so reflect corners can
     read freshly exchanged edge data. *)
  if not periodic then
    Array.iteri
      (fun rank g ->
        let low, high = physical_masks t ~rank in
        Bc.apply ~low ~high t.bc g)
      grids;
  Msc_trace.end_span t.trace "halo.window" ts_win

let create ?(config = Exec.Config.default) ?net ?schedule
    ?(init = fun coord -> Runtime.default_init 1 coord)
    ?(aux_init = Runtime.default_aux_init) ?(bc = Bc.Dirichlet 0.0)
    ?(trace = Msc_trace.disabled) ~ranks_shape (st : Stencil.t) =
  let engine = config.Exec.Config.engine in
  let pool = config.Exec.Config.pool in
  (* The pool dispatches ranks; inside a rank the runtime sweeps its tiles
     sequentially (nested parallelism would oversubscribe), so each rank's
     config keeps the backend but drops to the sequential pool. *)
  let rank_config =
    { config with Exec.Config.pool = Msc_util.Domain_pool.sequential }
  in
  Stencil.validate_halo st;
  let grid = st.Stencil.grid in
  let decomp = Decomp.create ~global:grid.Tensor.shape ~ranks_shape in
  let nranks = decomp.Decomp.nranks in
  let mpi = Mpi_sim.create ?net ~nranks () in
  let offsets = Array.make nranks [||] in
  let radius = Stencil.radius st in
  let requested_depth =
    match engine with
    | Temporal_blocked { depth } ->
        if depth < 1 then
          invalid_arg "Distributed.create: temporal block depth must be >= 1";
        depth
    | Bulk_synchronous | Overlapped -> 1
  in
  (* Clamp the block depth to what the thinnest rank supports: a depth-k
     block needs a [k * radius] halo no wider than the rank itself. *)
  let depth = min requested_depth (Decomp.max_uniform_depth decomp ~radius) in
  if depth > 1 && Bc.equal bc Bc.Reflect then
    invalid_arg
      "Distributed.create: Reflect boundaries are unsupported at temporal \
       block depth > 1 (the mirrored halo cannot be recomputed locally)";
  let width = Array.map (fun r -> depth * r) radius in
  (* Extension cells of a star stencil still read into corner halo regions
     (their own reads bleed diagonally), so depth > 1 always exchanges
     corners. *)
  let faces_only = if depth > 1 then false else not (needs_corners st) in
  let deep_halo =
    if depth > 1 then
      Some (Array.mapi (fun d h -> max h width.(d)) grid.Tensor.halo)
    else None
  in
  let periodic = Bc.equal bc Bc.Periodic in
  let phases = Array.make nranks ([||], [||]) in
  let sub_tasks = Array.make nranks ([||] : (int array * int array) array array) in
  (* One plan per distinct rank extent (uneven decompositions produce at
     most a handful): equal-extent ranks share the same compiled task
     array instead of each rank re-lowering the schedule. *)
  let plans = ref [] in
  let plan_for local ~extent =
    match schedule with
    | None -> None
    | Some sched -> (
        match List.find_opt (fun (e, _) -> e = extent) !plans with
        | Some (_, p) -> Some p
        | None ->
            let p =
              match Plan.compile local sched with
              | Ok p -> p
              | Error msg -> invalid_arg ("Distributed.create: " ^ msg)
            in
            plans := (Array.copy extent, p) :: !plans;
            Some p)
  in
  let runtimes =
    Array.init nranks (fun rank ->
        let offset, extent = Decomp.subdomain decomp ~rank in
        offsets.(rank) <- offset;
        let local = localize_stencil ?halo:deep_halo st ~extent in
        let plan = plan_for local ~extent in
        let local_init _dt coord =
          init (Array.mapi (fun d c -> c + offset.(d)) coord)
        in
        (* Coefficient grids are static closed forms over global coordinates,
           so each rank fills its slab (halo included) directly -- no
           exchange needed and bit-identical to the single-grid run. *)
        let local_aux_init name coord =
          aux_init name (Array.mapi (fun d c -> c + offset.(d)) coord)
        in
        (* The local runtime's own BC pass runs on every face; the exchange
           plus the physical-face pass above overwrite the interior faces
           with the right data afterwards. *)
        let rt =
          Runtime.create ?plan ~config:rank_config ~init:local_init
            ~aux_init:local_aux_init ~bc ~trace ~tid:rank local
        in
        (* Materialise the temporal block's per-substep task arrays: the
           halo extension only grows on faces with a neighbour (physical
           faces are fed by the boundary condition instead). *)
        let coords = Decomp.coords_of_rank decomp rank in
        let grow_low = Array.map (fun c -> periodic || c > 0) coords in
        let grow_high =
          Array.mapi (fun d c -> periodic || c < ranks_shape.(d) - 1) coords
        in
        sub_tasks.(rank) <-
          Plan.temporal ~shape:extent ~radius ~depth ~grow_low ~grow_high
            (Runtime.tiles rt);
        (* Split the first substep's tasks against the rank's halo-free
           core: cells at least the stencil radius from every local face
           read no halo data — the pre-block halo is stale (the previous
           block's last substep swept no extension), so only these cells
           may run while the deep exchange is in flight. A sub-grid thinner
           than twice the radius has an empty interior (every cell waits
           for the exchange). *)
        let core_lo = Array.copy radius in
        let core_hi =
          Array.mapi (fun d n -> max radius.(d) (n - radius.(d))) extent
        in
        phases.(rank) <- Plan.split_tasks ~core_lo ~core_hi sub_tasks.(rank).(0);
        rt)
  in
  let t =
    {
      stencil = st;
      decomp;
      mpi;
      runtimes;
      offsets;
      width;
      faces_only;
      bc;
      engine;
      effective_engine =
        (match engine with
        | Temporal_blocked _ -> Temporal_blocked { depth }
        | (Bulk_synchronous | Overlapped) as e -> e);
      rank_config;
      reducers = None;
      depth;
      pool;
      phases;
      sub_tasks;
      block_pos = 0;
      trace;
      steps_done = 0;
      graph = None;
    }
  in
  (* Every retained past state needs consistent halos before the first
     step. *)
  for dt = 1 to Stencil.time_window st do
    exchange_state t ~dt
  done;
  t

(* ------------------------------------------------------------------ *)
(* Pipeline graphs. Only shared-halo (merged) execution is supported for
   multi-stage graphs: one deep exchange of the source per step, sized by
   the graph's required halo, feeds every stage's extended sweep. A
   per-stage exchange of intermediate buffers would be unsound with the
   slab-shaped packing [Halo] uses — an intermediate's
   (physical-extension x neighbour-halo) corner cells are computed by the
   owner but lie outside the interior slabs it packs, so box-shaped
   consumers would read stale corners. The merged form sidesteps this:
   every rank recomputes the extension cells it needs from the exchanged
   deep halo, exactly like the temporal engine's ghost zones. *)

let graph_needs_corners (g : G.t) =
  (* Extension cells of even a star stencil read diagonally into corner
     halo regions (their own reads bleed sideways), so any multi-stage
     graph exchanges corners, like temporal blocking at depth > 1. *)
  List.length g.G.stages > 1
  || List.exists (fun (s : G.stage) -> needs_corners s.G.stencil) g.G.stages

let create_graph ?(config = Exec.Config.default) ?net ?schedule
    ?(init = fun coord -> Runtime.default_init 1 coord)
    ?(aux_init = Runtime.default_aux_init) ?(bc = Bc.Dirichlet 0.0)
    ?(trace = Msc_trace.disabled) ~ranks_shape (graph : G.t) =
  let engine = config.Exec.Config.engine in
  let pool = config.Exec.Config.pool in
  let rank_config =
    { config with Exec.Config.pool = Msc_util.Domain_pool.sequential }
  in
  (* Graphs have no temporal block to deepen: intermediates are recomputed
     per step, not stepped, so a depth > 1 request cannot be honored. It
     used to degrade silently to the bulk schedule; now the degrade is
     explicit — depth 1 (bulk-equivalent by definition) is recorded as
     [Bulk_synchronous] in [effective_engine], anything deeper is an
     error the caller must resolve. *)
  (match engine with
  | Temporal_blocked { depth } when depth > 1 ->
      invalid_arg
        (Printf.sprintf
           "Distributed.create_graph: Temporal_blocked depth %d cannot be \
            honored for pipeline graphs (intermediates are recomputed per \
            step, not stepped — there is no block to deepen); use depth 1 \
            or a non-temporal engine"
           depth)
  | Temporal_blocked { depth } when depth < 1 ->
      invalid_arg "Distributed.create_graph: temporal block depth must be >= 1"
  | Temporal_blocked _ | Bulk_synchronous | Overlapped -> ());
  if (not graph.G.merged) && List.length graph.G.stages > 1 then
    invalid_arg
      "Distributed.create_graph: multi-stage graphs need shared-halo \
       (merged) execution — run Pass.merge_halos (or raise its max_width \
       clamp so the pipeline's required halo fits)";
  let source = graph.G.source in
  let width = G.required_halo graph in
  let decomp = Decomp.create ~global:source.Tensor.shape ~ranks_shape in
  let nranks = decomp.Decomp.nranks in
  (* Every rank must be at least one exchange width wide, or the deep
     slabs would read past the donor's interior. *)
  for rank = 0 to nranks - 1 do
    let _, extent = Decomp.subdomain decomp ~rank in
    Array.iteri
      (fun d w ->
        if extent.(d) < w then
          invalid_arg
            (Printf.sprintf
               "Distributed.create_graph: rank %d extent %d < required halo \
                %d in dimension %d (coarsen the decomposition)"
               rank extent.(d) w d))
      width
  done;
  let mpi = Mpi_sim.create ?net ~nranks () in
  let offsets = Array.make nranks [||] in
  let faces_only = not (graph_needs_corners graph) in
  let sched = Option.value schedule ~default:Msc_schedule.Schedule.empty in
  let phases = Array.make nranks ([||], [||]) in
  (* One graph plan per distinct rank extent, shared like single-stencil
     plans. *)
  let plans = ref [] in
  let plan_for ~extent =
    match List.find_opt (fun (e, _) -> e = extent) !plans with
    | Some (_, p) -> p
    | None -> (
        match Plan.compile_graph ~shape:extent graph sched with
        | Ok p ->
            plans := (Array.copy extent, p) :: !plans;
            p
        | Error msg -> invalid_arg ("Distributed.create_graph: " ^ msg))
  in
  let runtimes =
    Array.init nranks (fun rank ->
        let offset, extent = Decomp.subdomain decomp ~rank in
        offsets.(rank) <- offset;
        let graph_plan = plan_for ~extent in
        let local_init _dt coord =
          init (Array.mapi (fun d c -> c + offset.(d)) coord)
        in
        let local_aux_init name coord =
          aux_init name (Array.mapi (fun d c -> c + offset.(d)) coord)
        in
        let rt =
          Runtime.create_graph ~graph_plan ~config:rank_config
            ~init:local_init ~aux_init:local_aux_init ~bc ~trace ~tid:rank
            graph
        in
        (* Overlapped phase split for stage 0 (the only stage that can run
           while the source exchange is in flight): cells at least the
           stage radius from every local face read no dt = 1 halo data.
           Every ghost-extension box lands in the shell by construction. *)
        let r0 =
          match graph_plan.Plan.gp_stages with
          | sp :: _ -> Stencil.radius sp.Plan.gs_stencil
          | [] -> assert false
        in
        let core_lo = Array.copy r0 in
        let core_hi =
          Array.mapi (fun d n -> max r0.(d) (n - r0.(d))) extent
        in
        phases.(rank) <-
          Plan.split_tasks ~core_lo ~core_hi (Runtime.graph_stage_tasks rt 0);
        rt)
  in
  let t =
    {
      stencil = (G.output_stage graph).G.stencil;
      decomp;
      mpi;
      runtimes;
      offsets;
      width;
      faces_only;
      bc;
      engine;
      effective_engine =
        (match engine with
        | Temporal_blocked _ -> Bulk_synchronous
        | (Bulk_synchronous | Overlapped) as e -> e);
      rank_config;
      reducers = None;
      depth = 1;
      pool;
      phases;
      sub_tasks = Array.make nranks [||];
      block_pos = 0;
      trace;
      steps_done = 0;
      graph = Some graph;
    }
  in
  for dt = 1 to G.time_window graph do
    exchange_state t ~dt
  done;
  t

let nranks t = Array.length t.runtimes
let decomp t = t.decomp
let mpi t = t.mpi
let engine t = t.engine
let effective_engine t = t.effective_engine
let effective_depth t = t.depth
let steps_done t = t.steps_done

let rank_runtime t ~rank =
  if rank < 0 || rank >= Array.length t.runtimes then
    invalid_arg
      (Printf.sprintf "Distributed.rank_runtime: rank %d out of [0,%d)" rank
         (Array.length t.runtimes));
  t.runtimes.(rank)

let refresh_halos t =
  let tw =
    match t.graph with
    | Some g -> G.time_window g
    | None -> Stencil.time_window t.stencil
  in
  for dt = 1 to tw do
    exchange_state t ~dt
  done

(* Collective reduction over the newest distributed state: per-rank tile
   partials (the rank's own plan tiling, same backend as its sweeps)
   combined locally in tree order, rank partials allreduced through the
   mailbox, one finalize at the end. Every fold is index-ordered, so the
   result is bit-identical across engines, backends with the compiled
   fast path, pool sizes and rank counts that preserve the tile split. *)
let reduce_tag = 0x7ed0

let reduce t ~op =
  let reducers =
    match t.reducers with
    | Some rs -> rs
    | None ->
        let rs =
          Array.map
            (fun rt ->
              Msc_exec.Reduction.create ~config:t.rank_config
                ~tasks:(Runtime.tiles rt) (Runtime.current rt))
            t.runtimes
        in
        t.reducers <- Some rs;
        rs
  in
  let partials =
    Array.mapi
      (fun rank rt ->
        Msc_exec.Reduction.run_raw reducers.(rank) ~op (Runtime.current rt))
      t.runtimes
  in
  let combined =
    Mpi_sim.allreduce t.mpi ~tag:reduce_tag ~combine:(Reduce.combine op)
      partials
  in
  Reduce.finalize op combined

(* The parity reference: every rank sweeps its full tile set, then the
   freshly produced state is exchanged — no compute hides the messages. *)
let bulk_step t =
  Array.iter Runtime.step t.runtimes;
  exchange_state t ~dt:1

(* The overlapped step re-splits the exchange around the interior sub-sweep.
   The state entering the step (dt = 1) already has consistent halos from
   the previous step's phase B (or from [create]'s initial exchanges), and
   re-exchanging it moves bit-identical data: packing reads interior slabs,
   which no phase mutates. Interior cells read no halo data at all, so
   phase A's sub-sweep is correct regardless of message progress; the
   boundary shell waits for the completed exchange in phase B.

   Three pool dispatches with barriers between them keep the protocol
   deadlock-free even when the pool has fewer workers than ranks: every
   send is posted before any rank blocks in [Mpi_sim.wait]. Posting is its
   own (cheap) phase rather than a prologue of each rank's compute so that
   all messages enter flight before any interior sweep starts — the full
   sweep then counts against every message's latency, even when the pool's
   workers time-slice a single core. *)
let overlapped_step t =
  let periodic = Bc.equal t.bc Bc.Periodic in
  let n = Array.length t.runtimes in
  let recvs = Array.make n [] in
  (* Phase A: pack and post every rank's sends and receives. *)
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      let grid = Runtime.state rt ~dt:1 in
      Halo.post_sends ~periodic ~trace:t.trace t.mpi t.decomp ~rank ~grid
        ~width:t.width ~faces_only:t.faces_only;
      recvs.(rank) <-
        Halo.post_recvs ~periodic t.mpi t.decomp ~rank
          ~faces_only:t.faces_only);
  (* Phase B: hide the interior sub-sweep behind the in-flight messages. *)
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      Runtime.begin_step rt;
      let interior, _ = t.phases.(rank) in
      let ts = Msc_trace.begin_span t.trace in
      Runtime.sweep_tasks rt interior;
      Msc_trace.end_span ~tid:rank t.trace "halo.overlap" ts);
  (* Phase C: complete the receives, refresh the physical faces, sweep the
     boundary shell, commit the step. *)
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      let grid = Runtime.state rt ~dt:1 in
      Halo.complete_recvs ~trace:t.trace t.mpi ~rank ~grid ~width:t.width
        recvs.(rank);
      if not periodic then begin
        let low, high = physical_masks t ~rank in
        Bc.apply ~low ~high t.bc grid
      end;
      let _, shell = t.phases.(rank) in
      let ts = Msc_trace.begin_span t.trace in
      Runtime.sweep_tasks rt shell;
      Msc_trace.end_span ~tid:rank t.trace "halo.shell" ts;
      Runtime.finish_step rt)

(* One timestep of the communication-avoiding temporal engine. A depth-k
   block pays one deep exchange ([k * radius]-wide slabs of every retained
   state, one message per neighbour) and then advances k substeps: substep
   [s] sweeps the interior grown by [(k-1-s) * radius] into the exchanged
   halo ({!Plan.temporal}), so the redundant ghost compute replaces k-1
   exchanges — the alpha cost per step drops to alpha/k.

   Every substep is an exact full timestep over the rank's own interior
   (only the halo extension shrinks), so the engine stays one-timestep
   granular: stopping mid-block is correct, and each substep's result is
   bit-identical to the other engines'.

   The first substep mirrors [overlapped_step]: pre-block halos are stale
   (the previous block's last substep swept no extension), so only the
   radius-deep core runs while the deep exchange is in flight; the shell
   plus the outermost extension wait for completion. Later substeps are
   pure compute. Between substeps the boundary condition refreshes the
   {e physical} faces only — a full pass would clobber the freshly
   recomputed halo extensions ([Runtime.finish_step ~low ~high]). *)
let temporal_step t =
  let periodic = Bc.equal t.bc Bc.Periodic in
  let n = Array.length t.runtimes in
  let s = t.block_pos in
  let w = Stencil.time_window t.stencil in
  let states rank =
    Array.init w (fun i -> Runtime.state t.runtimes.(rank) ~dt:(i + 1))
  in
  let finish_masked rank =
    let low, high = physical_masks t ~rank in
    if periodic then begin
      Array.fill low 0 (Array.length low) false;
      Array.fill high 0 (Array.length high) false
    end;
    Runtime.finish_step ~low ~high t.runtimes.(rank)
  in
  if s = 0 then begin
    let recvs = Array.make n [] in
    (* Phase A: pack and post the deep sends (every retained state's
       [k * radius] slab in one message per neighbour) and the receives. *)
    Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
      (fun ~worker:_ rank ->
        Halo.post_sends_deep ~periodic ~trace:t.trace t.mpi t.decomp ~rank
          ~grids:(states rank) ~width:t.width ~faces_only:t.faces_only;
        recvs.(rank) <-
          Halo.post_recvs ~periodic t.mpi t.decomp ~rank
            ~faces_only:t.faces_only);
    (* Phase B: hide the halo-free core of substep 0 behind the exchange. *)
    Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
      (fun ~worker:_ rank ->
        let rt = t.runtimes.(rank) in
        Runtime.begin_step rt;
        let interior, _ = t.phases.(rank) in
        let ts = Msc_trace.begin_span t.trace in
        Runtime.sweep_tasks rt interior;
        Msc_trace.end_span ~tid:rank t.trace "halo.overlap" ts);
    (* Phase C: complete the deep receives, refresh physical faces of every
       input state, sweep the shell and the outermost extension, commit. *)
    Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
      (fun ~worker:_ rank ->
        let rt = t.runtimes.(rank) in
        let grids = states rank in
        Halo.complete_recvs_deep ~trace:t.trace t.mpi ~rank ~grids
          ~width:t.width recvs.(rank);
        if not periodic then begin
          let low, high = physical_masks t ~rank in
          Array.iter (fun g -> Bc.apply ~low ~high t.bc g) grids
        end;
        let _, shell = t.phases.(rank) in
        let ts = Msc_trace.begin_span t.trace in
        Runtime.sweep_tasks rt shell;
        Msc_trace.end_span ~tid:rank t.trace "halo.shell" ts;
        finish_masked rank)
  end
  else
    (* Substeps 1..k-1: no communication — sweep the shrunken extended
       interior ({!Plan.temporal}) and refresh the physical faces. *)
    Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
      (fun ~worker:_ rank ->
        let rt = t.runtimes.(rank) in
        Runtime.begin_step rt;
        let ts = Msc_trace.begin_span t.trace in
        Runtime.sweep_tasks rt t.sub_tasks.(rank).(s);
        Msc_trace.end_span ~tid:rank t.trace "halo.substep" ts;
        finish_masked rank);
  t.block_pos <- (s + 1) mod t.depth

(* Graph bulk step: every rank runs its whole staged schedule, then one
   deep (merged) exchange of the new source state refreshes the halos
   every stage of the next step reads. *)
let graph_bulk_step t =
  Array.iter Runtime.step_graph t.runtimes;
  exchange_state t ~dt:1

(* Graph overlapped step: the deep exchange of the {e incoming} state
   (dt = 1, identical bits to what the previous step exchanged — packing
   reads interior slabs no phase mutates) hides behind stage 0's
   halo-free core. Only stage 0 can run in phase B: every later stage
   reads an intermediate buffer stage 0 is still producing, and stage 0's
   ghost-extension boxes read the in-flight halo, so the shell, the
   extensions, and stages 1.. all wait for phase C. *)
let graph_overlapped_step t =
  let periodic = Bc.equal t.bc Bc.Periodic in
  let n = Array.length t.runtimes in
  let recvs = Array.make n [] in
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      let grid = Runtime.state rt ~dt:1 in
      Halo.post_sends ~periodic ~trace:t.trace t.mpi t.decomp ~rank ~grid
        ~width:t.width ~faces_only:t.faces_only;
      recvs.(rank) <-
        Halo.post_recvs ~periodic t.mpi t.decomp ~rank
          ~faces_only:t.faces_only);
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      Runtime.begin_step rt;
      let interior, _ = t.phases.(rank) in
      let ts = Msc_trace.begin_span t.trace in
      Runtime.sweep_graph_stage rt 0 interior;
      Msc_trace.end_span ~tid:rank t.trace "halo.overlap" ts);
  Msc_util.Domain_pool.parallel_chunks t.pool ~lo:0 ~hi:n
    (fun ~worker:_ rank ->
      let rt = t.runtimes.(rank) in
      let grid = Runtime.state rt ~dt:1 in
      Halo.complete_recvs ~trace:t.trace t.mpi ~rank ~grid ~width:t.width
        recvs.(rank);
      if not periodic then begin
        let low, high = physical_masks t ~rank in
        Bc.apply ~low ~high t.bc grid
      end;
      let _, shell = t.phases.(rank) in
      let ts = Msc_trace.begin_span t.trace in
      Runtime.sweep_graph_stage rt 0 shell;
      for i = 1 to Runtime.graph_stage_count rt - 1 do
        Runtime.sweep_graph_stage rt i (Runtime.graph_stage_tasks rt i)
      done;
      Msc_trace.end_span ~tid:rank t.trace "halo.shell" ts;
      Runtime.finish_step rt)

let step t =
  (match t.graph with
  | Some _ -> (
      match t.engine with
      | Overlapped -> graph_overlapped_step t
      | Bulk_synchronous | Temporal_blocked _ ->
          (* Temporal blocking is depth-1 for graphs (a depth-k block
             would need k recomputable source steps, but intermediates
             are recomputed per step, not stepped) — it degrades to the
             bulk schedule. *)
          graph_bulk_step t)
  | None -> (
      match t.engine with
      | Bulk_synchronous -> bulk_step t
      | Overlapped -> overlapped_step t
      | Temporal_blocked _ -> temporal_step t));
  t.steps_done <- t.steps_done + 1

let run t n =
  for _ = 1 to n do
    step t
  done

let rank_state t ~rank = Runtime.current t.runtimes.(rank)

let gather t =
  let grid = t.stencil.Stencil.grid in
  let out = Grid.create ~shape:grid.Tensor.shape ~halo:grid.Tensor.halo in
  Array.iteri
    (fun rank rt ->
      let local = Runtime.current rt in
      let offset = t.offsets.(rank) in
      Grid.iter_interior local (fun coord ->
          let global_coord = Array.mapi (fun d c -> c + offset.(d)) coord in
          Grid.set out global_coord (Grid.get local coord)))
    t.runtimes;
  out

let validate ?config ?(steps = 3) ?bc ~ranks_shape (st : Stencil.t) =
  let dist = create ?config ?bc ~ranks_shape st in
  let single = Runtime.create ?config ?bc st in
  run dist steps;
  Runtime.run single steps;
  Grid.max_rel_error ~reference:(Runtime.current single) (gather dist)

let validate_graph ?config ?(steps = 3) ?bc ~ranks_shape (g : G.t) =
  let dist = create_graph ?config ?bc ~ranks_shape g in
  let single = Runtime.create_graph ?config ?bc g in
  run dist steps;
  Runtime.run single steps;
  Grid.max_rel_error ~reference:(Runtime.current single) (gather dist)
