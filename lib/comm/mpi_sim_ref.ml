(* The pre-refactor mailbox: one global mutex over a hashtable of
   per-(src, dst, tag) queues, a fresh key record and message cell per
   send, and an unconditional payload copy + wall-clock stamp on every
   post. Retained verbatim as the baseline the per-rank O(1) mailbox of
   {!Mpi_sim} is benchmarked against (the `scaling.mailbox` entry of
   BENCH_runtime.json) and property-tested for behavioural parity. Not
   used by any engine. *)

type key = { src : int; dst : int; tag : int }

(* A message in flight: the payload plus the absolute time it "arrives" at
   the receiver (post time + the network model's per-message latency).
   [neg_infinity] when the simulator has no network model: delivery is
   instantaneous, as the original lockstep simulator behaved. *)
type message = { payload : Bytes.t; arrival : float }

type t = {
  nranks : int;
  mutex : Mutex.t;
  queues : (key, message Queue.t) Hashtbl.t;
  net : Netmodel.t option;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable pending : int;
}

(* A posted receive. Completion is one-shot and independent of other
   requests: [try_complete]/[wait] dequeue the matching message into
   [completed], after which further probes are pure reads. *)
type request = { rkey : key; mutable completed : message option }

exception
  Deadlock of {
    src : int;
    dst : int;
    tag : int;
    waited_s : float;
    backlog : (int * int * int * int) list;
  }

let () =
  Printexc.register_printer (function
    | Deadlock { src; dst; tag; waited_s; backlog } ->
        let pending =
          match backlog with
          | [] -> "no messages pending anywhere"
          | qs ->
              String.concat "; "
                (List.map
                   (fun (s, d, tg, n) ->
                     Printf.sprintf "src=%d dst=%d tag=%d: %d queued" s d tg n)
                   qs)
        in
        Some
          (Printf.sprintf
             "Mpi_sim.Deadlock: no message for src=%d dst=%d tag=%d after \
              %.3f s (%s)"
             src dst tag waited_s pending)
    | _ -> None)

let now () = Unix.gettimeofday ()

let create ?net ~nranks () =
  if nranks < 1 then invalid_arg "Mpi_sim.create: need at least one rank";
  {
    nranks;
    mutex = Mutex.create ();
    queues = Hashtbl.create 64;
    net;
    messages_sent = 0;
    bytes_sent = 0;
    pending = 0;
  }

let nranks t = t.nranks

let check_rank t r name =
  if r < 0 || r >= t.nranks then
    invalid_arg (Printf.sprintf "Mpi_sim.%s: rank %d out of [0,%d)" name r t.nranks)

(* Callers must hold [t.mutex]. *)
let queue_of t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues key q;
      q

let isend t ~src ~dst ~tag payload =
  check_rank t src "isend";
  check_rank t dst "isend";
  let arrival =
    match t.net with
    | None -> neg_infinity
    | Some net ->
        now ()
        +. Netmodel.sim_latency_scale ()
           *. Netmodel.message_time net ~nranks:t.nranks ~bytes:(Bytes.length payload)
  in
  Mutex.lock t.mutex;
  Queue.push { payload = Bytes.copy payload; arrival } (queue_of t { src; dst; tag });
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + Bytes.length payload;
  t.pending <- t.pending + 1;
  Mutex.unlock t.mutex

let irecv t ~dst ~src ~tag =
  check_rank t src "irecv";
  check_rank t dst "irecv";
  { rkey = { src; dst; tag }; completed = None }

(* Dequeue the request's message if it has been posted AND its simulated
   arrival time has passed; callers must hold [t.mutex]. *)
let try_take t req =
  match req.completed with
  | Some _ -> true
  | None -> (
      let q = queue_of t req.rkey in
      match Queue.peek_opt q with
      | Some msg when msg.arrival <= now () ->
          ignore (Queue.pop q);
          t.pending <- t.pending - 1;
          req.completed <- Some msg;
          true
      | Some _ | None -> false)

let test t req =
  Mutex.lock t.mutex;
  let done_ = try_take t req in
  Mutex.unlock t.mutex;
  done_

let backlog_of t =
  Hashtbl.fold
    (fun k q acc ->
      if Queue.is_empty q then acc else (k.src, k.dst, k.tag, Queue.length q) :: acc)
    t.queues []
  |> List.sort compare

(* The mailbox is mutex-guarded; a blocked [wait] re-polls it at a fine
   interval (the OCaml stdlib has no timed condition wait) both to observe
   late sends from other domains and to enforce the deadlock timeout. The
   poll period only bounds the timeout's resolution: a message that is
   already queued completes on the first iteration, and a queued-but-in-
   flight message completes exactly at its arrival time via one sleep. *)
let wait ?(timeout_s = 1.0) t req =
  let deadline = now () +. timeout_s in
  let rec poll () =
    Mutex.lock t.mutex;
    if try_take t req then Mutex.unlock t.mutex
    else begin
      (* Missing entirely, or posted but still in flight: sleep toward the
         earliest of its arrival, the timeout, and the poll period. *)
      let head_arrival =
        match Queue.peek_opt (queue_of t req.rkey) with
        | Some msg -> msg.arrival
        | None -> infinity
      in
      Mutex.unlock t.mutex;
      let t_now = now () in
      if t_now >= deadline && head_arrival = infinity then begin
        let { src; dst; tag } = req.rkey in
        Mutex.lock t.mutex;
        let backlog = backlog_of t in
        Mutex.unlock t.mutex;
        raise
          (Deadlock
             { src; dst; tag; waited_s = t_now +. timeout_s -. deadline; backlog })
      end;
      let nap = Float.min (Float.max (head_arrival -. t_now) 2e-4) 2e-3 in
      Unix.sleepf nap;
      poll ()
    end
  in
  poll ();
  match req.completed with
  | Some msg -> msg.payload
  | None -> assert false

(* Driver-side collective: rank-gather to root, deterministic tree fold,
   broadcast back. Every hop is a real mailbox message — 8-byte payloads
   carrying exact float bits — so traffic counters and simulated latency
   account for solver reductions exactly like halo slabs. The fold runs
   over the *rank-indexed* gather array with Reduce.tree_combine, never
   over arrival order, so the result is bit-stable. *)
let allreduce t ~tag ~combine partials =
  let n = nranks t in
  if Array.length partials <> n then
    invalid_arg "Mpi_sim.allreduce: need exactly one partial per rank";
  if n = 1 then partials.(0)
  else begin
    let payload v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.bits_of_float v);
      b
    in
    let value b = Int64.float_of_bits (Bytes.get_int64_le b 0) in
    for r = 1 to n - 1 do
      isend t ~src:r ~dst:0 ~tag (payload partials.(r))
    done;
    let gathered = Array.make n 0.0 in
    gathered.(0) <- partials.(0);
    for r = 1 to n - 1 do
      gathered.(r) <- value (wait t (irecv t ~dst:0 ~src:r ~tag))
    done;
    let result = Msc_ir.Reduce.tree_combine combine gathered in
    for r = 1 to n - 1 do
      isend t ~src:0 ~dst:r ~tag (payload result)
    done;
    let out = ref result in
    for r = 1 to n - 1 do
      (* Every rank decodes the same broadcast bits; the last decode is
         returned (they are all equal by construction). *)
      out := value (wait t (irecv t ~dst:r ~src:0 ~tag))
    done;
    !out
  end

let pending_messages t =
  Mutex.lock t.mutex;
  let n = t.pending in
  Mutex.unlock t.mutex;
  n

let messages_sent t =
  Mutex.lock t.mutex;
  let n = t.messages_sent in
  Mutex.unlock t.mutex;
  n

let bytes_sent t =
  Mutex.lock t.mutex;
  let n = t.bytes_sent in
  Mutex.unlock t.mutex;
  n

let reset_counters t =
  Mutex.lock t.mutex;
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  (* [pending] too: a stale in-flight count from an aborted exchange must
     not leak into the next benchmark repetition's accounting. *)
  t.pending <- 0;
  Mutex.unlock t.mutex
