open Msc_ir
module Schedule = Msc_schedule.Schedule

type platform = Sunway | Tianhe3

type point = {
  ranks : int;
  cores : int;
  mpi_grid : int array;
  sub_grid : int array;
  compute_s : float;
  comm_s : float;
  time_per_step_s : float;
  gflops : float;
  ideal_gflops : float;
}

let cores_per_rank = function Sunway -> 65 | Tianhe3 -> 32

let network = function
  | Sunway -> Netmodel.sunway_taihulight
  | Tianhe3 -> Netmodel.tianhe3_prototype

let clamp_tile tile dims = Array.mapi (fun d t -> min t dims.(d)) tile

(* Shrink the tile until the time-window read buffers plus the write buffer
   fit the 64 KB scratchpad (the compiler would reject the schedule
   otherwise). Halves the widest non-contiguous dimension first. *)
let sunway_fit_tile (st : Stencil.t) tile =
  let nd = Array.length tile in
  let radius = Stencil.radius st in
  let elem = Dtype.size_bytes st.Stencil.grid.Tensor.dtype in
  let nstates = Stencil.time_window st in
  let fits tile =
    let padded = ref 1 and interior = ref 1 in
    Array.iteri
      (fun d t ->
        padded := !padded * (t + (2 * radius.(d)));
        interior := !interior * t)
      tile;
    ((nstates * !padded) + !interior) * elem <= 64 * 1024
  in
  let tile = Array.copy tile in
  let rec shrink () =
    if fits tile then tile
    else begin
      let widest = ref (-1) in
      for d = 0 to nd - 2 do
        if tile.(d) > 1 && (!widest < 0 || tile.(d) > tile.(!widest)) then widest := d
      done;
      let d = if !widest >= 0 then !widest else nd - 1 in
      if tile.(d) = 1 then tile
      else begin
        tile.(d) <- max 1 (tile.(d) / 2);
        shrink ()
      end
    end
  in
  shrink ()

let node_compute_time platform (st : Stencil.t) =
  let kernels = Stencil.kernels st in
  let kernel = List.hd kernels in
  let dims = st.Stencil.grid.Tensor.shape in
  match platform with
  | Sunway ->
      let tile = sunway_fit_tile st (clamp_tile (Schedule.default_tile kernel) dims) in
      let sched = Schedule.sunway_canonical ~tile kernel in
      (match Msc_sunway.Sim.simulate ~steps:1 st sched with
      | Ok r -> r.Msc_sunway.Sim.time_per_step_s
      | Error msg -> invalid_arg ("Scaling: " ^ msg))
  | Tianhe3 ->
      let tile = clamp_tile (Schedule.default_tile kernel) dims in
      let sched = Schedule.matrix_canonical ~tile kernel in
      (match Msc_matrix.Sim.simulate ~steps:1 st sched with
      | Ok r -> r.Msc_matrix.Sim.time_per_step_s
      | Error msg -> invalid_arg ("Scaling: " ^ msg))

let allreduce_time ?(bytes = 8) platform ~ranks =
  Netmodel.allreduce_time (network platform) ~nranks:ranks ~bytes

let comm_time ?(depth = 1) ?(time_window = 1) ?(allreduces_per_step = 0)
    platform ~ranks ~sub_grid ~radius ~elem ~faces_only =
  if depth < 1 then invalid_arg "Scaling.comm_time: depth must be >= 1";
  if allreduces_per_step < 0 then
    invalid_arg "Scaling.comm_time: allreduces_per_step must be >= 0";
  let nd = Array.length sub_grid in
  (* The directions the engine actually exchanges: faces for star stencils,
     all 3^nd - 1 offsets (edges and corners included) for box stencils —
     the same enumeration {!Halo} drives, so message counts match the
     functional runtime instead of hardcoding [2 * nd]. A temporal block of
     depth > 1 always exchanges corners (extension reads bleed
     diagonally). *)
  let faces_only = faces_only && depth = 1 in
  let dirs = Decomp.directions ~ndim:nd ~faces_only in
  let messages_per_rank = List.length dirs in
  (* A direction's payload is the slab that is [depth * radius]-deep along
     every non-zero axis and sub-grid-wide along the rest, carrying every
     retained state ([time_window] slabs per message). *)
  let slab_bytes dir =
    let elems = ref 1 in
    Array.iteri
      (fun d o ->
        elems := !elems * if o = 0 then sub_grid.(d) else depth * radius.(d))
      dir;
    !elems * elem * time_window
  in
  let total_bytes = List.fold_left (fun acc d -> acc + slab_bytes d) 0 dirs in
  (* Faces carry essentially all the volume, so the switch-contention regime
     is set by their size — not by the byte-average that a box stencil's
     8-byte corner messages would drag down. Congestion is evaluated at the
     mean face size; every message (corners included) pays the contended
     setup cost, and the payload streams at link bandwidth. For star
     stencils this is exactly {!Netmodel.exchange_time}. *)
  let faces =
    List.filter
      (fun dir ->
        Array.fold_left (fun n o -> if o <> 0 then n + 1 else n) 0 dir = 1)
      dirs
  in
  let face_bytes = List.fold_left (fun acc d -> acc + slab_bytes d) 0 faces in
  let mean_face_bytes =
    float_of_int face_bytes /. float_of_int (List.length faces)
  in
  let net = network platform in
  let congestion =
    net.Netmodel.congestion_at ~nranks:ranks ~messages_per_rank
      ~bytes_per_message:mean_face_bytes
  in
  (* One deep exchange feeds [depth] timesteps, so the per-step cost is the
     block's exchange amortised over the block. Solver-style allreduces are
     per true timestep — convergence tests cannot be amortised away by
     temporal blocking — so they add on top, outside the [depth] divide. *)
  (((float_of_int messages_per_rank *. net.Netmodel.alpha_s *. congestion)
   +. (float_of_int total_bytes /. (net.Netmodel.beta_gbs *. 1e9)))
  /. float_of_int depth)
  +. (float_of_int allreduces_per_step
     *. Netmodel.allreduce_time net ~nranks:ranks ~bytes:8)

(* Redundant-ghost inflation of a depth-k temporal block: substep s sweeps
   the interior grown by (k-1-s) * radius per side, so the block computes
   sum_s prod_d (n_d + 2*(k-1-s)*r_d) points for k true timesteps. *)
let temporal_compute_factor ~sub_grid ~radius ~depth =
  if depth < 1 then
    invalid_arg "Scaling.temporal_compute_factor: depth must be >= 1";
  let interior =
    float_of_int (Array.fold_left ( * ) 1 sub_grid)
  in
  let total = ref 0.0 in
  for s = 0 to depth - 1 do
    let e = depth - 1 - s in
    let v = ref 1.0 in
    Array.iteri
      (fun d n -> v := !v *. float_of_int (n + (2 * e * radius.(d))))
      sub_grid;
    total := !total +. !v
  done;
  !total /. (float_of_int depth *. interior)

let run ~platform ~make_stencil ~configs =
  let points =
    List.map
      (fun (mpi_grid, sub_grid) ->
        let ranks = Array.fold_left ( * ) 1 mpi_grid in
        let st = make_stencil sub_grid in
        let compute_s = node_compute_time platform st in
        let radius = Stencil.radius st in
        let elem = Dtype.size_bytes st.Stencil.grid.Tensor.dtype in
        let comm_s =
          comm_time platform ~ranks ~sub_grid ~radius ~elem
            ~faces_only:(not (Distributed.needs_corners st))
        in
        (* The overlapped engine hides the transfer behind the interior
           sub-sweep ({!Distributed.Overlapped}); the packing/unpacking half
           of the exchange still cannot hide. *)
        let overlap_residual = 0.5 in
        let time_per_step_s =
          Float.max compute_s comm_s
          +. (overlap_residual *. Float.min compute_s comm_s)
        in
        let flops =
          float_of_int (Stencil.flops_per_point st)
          *. float_of_int (Array.fold_left ( * ) 1 sub_grid)
          *. float_of_int ranks
        in
        {
          ranks;
          cores = ranks * cores_per_rank platform;
          mpi_grid;
          sub_grid;
          compute_s;
          comm_s;
          time_per_step_s;
          gflops = flops /. time_per_step_s /. 1e9;
          ideal_gflops = 0.0;
        })
      configs
  in
  match points with
  | [] -> []
  | first :: _ ->
      List.map
        (fun p ->
          {
            p with
            ideal_gflops =
              first.gflops *. (float_of_int p.ranks /. float_of_int first.ranks);
          })
        points

let speedup_vs_first = function
  | [] -> 1.0
  | first :: _ as points ->
      let last = List.nth points (List.length points - 1) in
      last.gflops /. first.gflops
