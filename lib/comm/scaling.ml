open Msc_ir
module Schedule = Msc_schedule.Schedule

type platform = Sunway | Tianhe3

type point = {
  ranks : int;
  cores : int;
  mpi_grid : int array;
  sub_grid : int array;
  compute_s : float;
  comm_s : float;
  time_per_step_s : float;
  gflops : float;
  ideal_gflops : float;
}

let cores_per_rank = function Sunway -> 65 | Tianhe3 -> 32

(* One MPI rank per core group / cluster: a TaihuLight node carries 4 CGs,
   a Tianhe-3 prototype blade 8 MT-3000 clusters. Faces between ranks of
   the same node never touch the interconnect. *)
let ranks_per_node = function Sunway -> 4 | Tianhe3 -> 8

let network = function
  | Sunway -> Netmodel.sunway_taihulight
  | Tianhe3 -> Netmodel.tianhe3_prototype

let clamp_tile tile dims = Array.mapi (fun d t -> min t dims.(d)) tile

(* Shrink the tile until the time-window read buffers plus the write buffer
   fit the 64 KB scratchpad (the compiler would reject the schedule
   otherwise). Halves the widest non-contiguous dimension first. *)
let sunway_fit_tile (st : Stencil.t) tile =
  let nd = Array.length tile in
  let radius = Stencil.radius st in
  let elem = Dtype.size_bytes st.Stencil.grid.Tensor.dtype in
  let nstates = Stencil.time_window st in
  let fits tile =
    let padded = ref 1 and interior = ref 1 in
    Array.iteri
      (fun d t ->
        padded := !padded * (t + (2 * radius.(d)));
        interior := !interior * t)
      tile;
    ((nstates * !padded) + !interior) * elem <= 64 * 1024
  in
  let tile = Array.copy tile in
  let rec shrink () =
    if fits tile then tile
    else begin
      let widest = ref (-1) in
      for d = 0 to nd - 2 do
        if tile.(d) > 1 && (!widest < 0 || tile.(d) > tile.(!widest)) then widest := d
      done;
      let d = if !widest >= 0 then !widest else nd - 1 in
      if tile.(d) = 1 then tile
      else begin
        tile.(d) <- max 1 (tile.(d) / 2);
        shrink ()
      end
    end
  in
  shrink ()

let node_compute_time platform (st : Stencil.t) =
  let kernels = Stencil.kernels st in
  let kernel = List.hd kernels in
  let dims = st.Stencil.grid.Tensor.shape in
  match platform with
  | Sunway ->
      let tile = sunway_fit_tile st (clamp_tile (Schedule.default_tile kernel) dims) in
      let sched = Schedule.sunway_canonical ~tile kernel in
      (match Msc_sunway.Sim.simulate ~steps:1 st sched with
      | Ok r -> r.Msc_sunway.Sim.time_per_step_s
      | Error msg -> invalid_arg ("Scaling: " ^ msg))
  | Tianhe3 ->
      let tile = clamp_tile (Schedule.default_tile kernel) dims in
      let sched = Schedule.matrix_canonical ~tile kernel in
      (match Msc_matrix.Sim.simulate ~steps:1 st sched with
      | Ok r -> r.Msc_matrix.Sim.time_per_step_s
      | Error msg -> invalid_arg ("Scaling: " ^ msg))

let allreduce_time ?(bytes = 8) platform ~ranks =
  Netmodel.allreduce_time (network platform) ~nranks:ranks ~bytes

let comm_time ?(depth = 1) ?(time_window = 1) ?(allreduces_per_step = 0)
    ?ranks_per_node:(rpn = 1) platform ~ranks ~sub_grid ~radius ~elem
    ~faces_only =
  if depth < 1 then invalid_arg "Scaling.comm_time: depth must be >= 1";
  if allreduces_per_step < 0 then
    invalid_arg "Scaling.comm_time: allreduces_per_step must be >= 0";
  if rpn < 1 then invalid_arg "Scaling.comm_time: ranks_per_node must be >= 1";
  let nd = Array.length sub_grid in
  (* The directions the engine actually exchanges: faces for star stencils,
     all 3^nd - 1 offsets (edges and corners included) for box stencils —
     the same enumeration {!Halo} drives, so message counts match the
     functional runtime instead of hardcoding [2 * nd]. A temporal block of
     depth > 1 always exchanges corners (extension reads bleed
     diagonally). *)
  let faces_only = faces_only && depth = 1 in
  let dirs = Decomp.directions ~ndim:nd ~faces_only in
  let messages_per_rank = List.length dirs in
  (* A direction's payload is the slab that is [depth * radius]-deep along
     every non-zero axis and sub-grid-wide along the rest, carrying every
     retained state ([time_window] slabs per message). *)
  let slab_bytes dir =
    let elems = ref 1 in
    Array.iteri
      (fun d o ->
        elems := !elems * if o = 0 then sub_grid.(d) else depth * radius.(d))
      dir;
    !elems * elem * time_window
  in
  let net = network platform in
  (* Every message pays the contended setup cost at its own true size —
     a box stencil's 8-byte corners congest the small-message-hostile
     Tianhe-3 interconnect hardest, exactly the regime the mean-face
     approximation used to smooth away — and the payload streams at link
     bandwidth. *)
  let price (m : Netmodel.t) ~nranks bytes =
    (m.Netmodel.alpha_s
    *. m.Netmodel.congestion_at ~nranks ~messages_per_rank
         ~bytes_per_message:(float_of_int bytes))
    +. (float_of_int bytes /. (m.Netmodel.beta_gbs *. 1e9))
  in
  let exchange =
    if rpn <= 1 then
      List.fold_left (fun acc dir -> acc +. price net ~nranks:ranks (slab_bytes dir)) 0.0 dirs
    else if ranks <= rpn then
      (* The whole job fits one node: every face is a shared-memory copy,
         the interconnect is never touched. *)
      List.fold_left
        (fun acc dir ->
          acc +. price Netmodel.shared_memory ~nranks:ranks (slab_bytes dir))
        0.0 dirs
    else begin
      (* Hierarchical two-level pricing. The rank grid splits into node
         blocks of [core] ranks ({!Decomp.core_shape} of the balanced
         rank-grid shape); a direction leaves the node only when the step
         crosses a core-block boundary along every non-zero axis with
         probability 1/core.(d), so
           P(off-node) = 1 - prod_{d : dir_d <> 0} (1 - 1/core.(d)).
         On-node faces are shared-memory copies. Off-node traffic is
         aggregated per node and direction — the runtime packs every
         crossing rank's slab into one message per neighbouring node, the
         paper's corner/edge aggregation — so the interconnect sees
         [nnodes] endpoints exchanging few large messages, and every rank
         of the node waits out its node's aggregate exchange. *)
      let core =
        Decomp.core_shape ~ranks_shape:(Decomp.auto_shape ~nranks:ranks ~ndim:nd)
          ~ranks_per_node:rpn
      in
      let in_node = Array.fold_left ( * ) 1 core in
      let nnodes = max 1 (ranks / in_node) in
      let shm = Netmodel.shared_memory in
      List.fold_left
        (fun acc dir ->
          let bytes = slab_bytes dir in
          let p_off = ref 1.0 in
          Array.iteri
            (fun d o ->
              if o <> 0 then
                p_off := !p_off *. (1.0 -. (1.0 /. float_of_int core.(d))))
            dir;
          let p_off = 1.0 -. !p_off in
          let intra = (1.0 -. p_off) *. price shm ~nranks:in_node bytes in
          let agg_bytes =
            int_of_float (ceil (p_off *. float_of_int (in_node * bytes)))
          in
          let inter =
            if agg_bytes = 0 then 0.0 else price net ~nranks:nnodes agg_bytes
          in
          acc +. intra +. inter)
        0.0 dirs
    end
  in
  (* One deep exchange feeds [depth] timesteps, so the per-step cost is the
     block's exchange amortised over the block. Solver-style allreduces are
     per true timestep — convergence tests cannot be amortised away by
     temporal blocking — so they add on top, outside the [depth] divide. *)
  (exchange /. float_of_int depth)
  +. (float_of_int allreduces_per_step
     *. Netmodel.allreduce_time net ~nranks:ranks ~bytes:8)

(* Redundant-ghost inflation of a depth-k temporal block: substep s sweeps
   the interior grown by (k-1-s) * radius per side, so the block computes
   sum_s prod_d (n_d + 2*(k-1-s)*r_d) points for k true timesteps. *)
let temporal_compute_factor ~sub_grid ~radius ~depth =
  if depth < 1 then
    invalid_arg "Scaling.temporal_compute_factor: depth must be >= 1";
  let interior =
    float_of_int (Array.fold_left ( * ) 1 sub_grid)
  in
  let total = ref 0.0 in
  for s = 0 to depth - 1 do
    let e = depth - 1 - s in
    let v = ref 1.0 in
    Array.iteri
      (fun d n -> v := !v *. float_of_int (n + (2 * e * radius.(d))))
      sub_grid;
    total := !total +. !v
  done;
  !total /. (float_of_int depth *. interior)

let run ~platform ~make_stencil ~configs =
  let points =
    List.map
      (fun (mpi_grid, sub_grid) ->
        let ranks = Array.fold_left ( * ) 1 mpi_grid in
        let st = make_stencil sub_grid in
        let compute_s = node_compute_time platform st in
        let radius = Stencil.radius st in
        let elem = Dtype.size_bytes st.Stencil.grid.Tensor.dtype in
        let comm_s =
          comm_time platform ~ranks ~sub_grid ~radius ~elem
            ~faces_only:(not (Distributed.needs_corners st))
        in
        (* The overlapped engine hides the transfer behind the interior
           sub-sweep ({!Distributed.Overlapped}); the packing/unpacking half
           of the exchange still cannot hide. *)
        let overlap_residual = 0.5 in
        let time_per_step_s =
          Float.max compute_s comm_s
          +. (overlap_residual *. Float.min compute_s comm_s)
        in
        let flops =
          float_of_int (Stencil.flops_per_point st)
          *. float_of_int (Array.fold_left ( * ) 1 sub_grid)
          *. float_of_int ranks
        in
        {
          ranks;
          cores = ranks * cores_per_rank platform;
          mpi_grid;
          sub_grid;
          compute_s;
          comm_s;
          time_per_step_s;
          gflops = flops /. time_per_step_s /. 1e9;
          ideal_gflops = 0.0;
        })
      configs
  in
  match points with
  | [] -> []
  | first :: _ ->
      List.map
        (fun p ->
          {
            p with
            ideal_gflops =
              first.gflops *. (float_of_int p.ranks /. float_of_int first.ranks);
          })
        points

let speedup_vs_first = function
  | [] -> 1.0
  | first :: _ as points ->
      let last = List.nth points (List.length points - 1) in
      last.gflops /. first.gflops

type eff_point = {
  e_ranks : int;
  e_grid : int array;
  e_sub : int array;
  e_depth : int;
  e_compute_s : float;
  e_comm_s : float;
  e_time_s : float;
  e_efficiency : float;
}

let efficiency_curve ?(depth = 1) ?ranks_per_node:rpn platform ~make_stencil
    ~mode ~base ~ladder =
  if depth < 1 then
    invalid_arg "Scaling.efficiency_curve: depth must be >= 1";
  let rpn = match rpn with Some n -> n | None -> ranks_per_node platform in
  let nd = Array.length base in
  (* The node simulators dominate the curve's cost; a weak-scaling ladder
     reuses one sub-grid for every point, so memoise per sub-grid. *)
  let memo = Hashtbl.create 8 in
  let compute_of sub =
    let key = Array.to_list sub in
    match Hashtbl.find_opt memo key with
    | Some t -> t
    | None ->
        let t = node_compute_time platform (make_stencil sub) in
        Hashtbl.add memo key t;
        t
  in
  let points =
    List.map
      (fun n ->
        let grid = Decomp.auto_shape ~nranks:n ~ndim:nd in
        let sub =
          match mode with
          | `Strong -> Array.map2 (fun g p -> max 1 (g / p)) base grid
          | `Weak -> Array.copy base
        in
        let st = make_stencil sub in
        let radius = Stencil.radius st in
        let elem = Dtype.size_bytes st.Stencil.grid.Tensor.dtype in
        (* Geometry caps the temporal depth: a block deeper than the
           sub-grid's thinnest extent over its radius would read past the
           neighbour's neighbour. *)
        let d_eff =
          let cap = ref depth in
          Array.iteri
            (fun d r -> if r > 0 then cap := min !cap (sub.(d) / r))
            radius;
          max 1 !cap
        in
        let compute_s =
          compute_of sub
          *. temporal_compute_factor ~sub_grid:sub ~radius ~depth:d_eff
        in
        let comm_s =
          comm_time ~depth:d_eff ~ranks_per_node:rpn platform ~ranks:n
            ~sub_grid:sub ~radius ~elem
            ~faces_only:(not (Distributed.needs_corners st))
        in
        let overlap_residual = 0.5 in
        let time_s =
          Float.max compute_s comm_s
          +. (overlap_residual *. Float.min compute_s comm_s)
        in
        {
          e_ranks = n;
          e_grid = grid;
          e_sub = sub;
          e_depth = d_eff;
          e_compute_s = compute_s;
          e_comm_s = comm_s;
          e_time_s = time_s;
          e_efficiency = 1.0;
        })
      ladder
  in
  match points with
  | [] -> []
  | first :: _ ->
      (* Parallel efficiency against the ladder's first point, normalised
         by the work actually swept: per-core throughput relative to the
         baseline's. Exact strong scaling gives 1.0 down the column even
         when the sub-grid division rounds; weak scaling reduces to
         t_first / t_n. *)
      let work p =
        float_of_int p.e_ranks
        *. float_of_int (Array.fold_left ( * ) 1 p.e_sub)
      in
      let base_thr = work first /. first.e_time_s /. float_of_int first.e_ranks in
      List.map
        (fun p ->
          {
            p with
            e_efficiency =
              work p /. p.e_time_s /. float_of_int p.e_ranks /. base_thr;
          })
        points
