type t = {
  name : string;
  alpha_s : float;
  beta_gbs : float;
  congestion_at : nranks:int -> messages_per_rank:int -> bytes_per_message:float -> float;
}

let sunway_taihulight =
  {
    name = "Sunway TaihuLight fat-tree";
    alpha_s = 1.5e-6;
    beta_gbs = 6.0;
    congestion_at =
      (fun ~nranks ~messages_per_rank ~bytes_per_message ->
        ignore bytes_per_message;
        (* Ample bisection; only a mild penalty at full-system message
           storms. *)
        1.0
        +. (0.02
           *. log (float_of_int (max 1 nranks))
           *. (float_of_int messages_per_rank /. 8.0)));
  }

let tianhe3_prototype =
  {
    name = "Tianhe-3 prototype interconnect";
    (* Prototype MPI stack: high per-message software cost. *)
    alpha_s = 25e-6;
    beta_gbs = 4.0;
    congestion_at =
      (fun ~nranks ~messages_per_rank ~bytes_per_message ->
        ignore messages_per_rank;
        (* Limited switch capacity: small messages from many concurrently
           exchanging ranks collide; large streaming transfers are fine.
           This is what bends the 2-D strong-scaling curves (frequent,
           small halo messages) while 3-D face exchanges stay efficient
           (Figure 10a). *)
        let small = 24e3 /. (8e3 +. bytes_per_message) in
        1.0 +. (18.0 *. (float_of_int nranks /. 256.0) *. (small *. small)));
  }

let shared_memory =
  {
    name = "intra-node shared memory";
    alpha_s = 0.4e-6;
    beta_gbs = 12.0;
    congestion_at =
      (fun ~nranks ~messages_per_rank ~bytes_per_message ->
        ignore messages_per_rank;
        ignore bytes_per_message;
        (* Memory-bus contention among co-located ranks. *)
        1.0 +. (0.05 *. (float_of_int nranks /. 28.0)));
  }

(* Global multiplier on the *wall-clock* latency {!Mpi_sim} sleeps for. The
   analytic times below are never scaled — only the simulator's real-time
   arrival stamps are, so the test harness can run the full comm suite
   sleep-free while benches keep the genuine transfer windows. *)
let wallclock_scale = Atomic.make 1.0

let set_sim_latency_scale s =
  if not (s >= 0.0) then invalid_arg "Netmodel.set_sim_latency_scale: negative";
  Atomic.set wallclock_scale s

let sim_latency_scale () = Atomic.get wallclock_scale

let message_time t ~nranks ~bytes =
  let bytes_per_message = float_of_int bytes in
  let congestion = t.congestion_at ~nranks ~messages_per_rank:1 ~bytes_per_message in
  (t.alpha_s *. congestion) +. (bytes_per_message /. (t.beta_gbs *. 1e9))

let allreduce_time t ~nranks ~bytes =
  if nranks < 1 then invalid_arg "Netmodel.allreduce_time: nranks < 1";
  if nranks = 1 then 0.0
  else begin
    (* Recursive doubling: ceil(log2 n) rounds, one message per rank per
       round, each paying the same congested alpha-beta cost as a halo
       slab of the same size. *)
    let rounds =
      let r = ref 0 and n = ref 1 in
      while !n < nranks do
        incr r;
        n := !n * 2
      done;
      !r
    in
    float_of_int rounds *. message_time t ~nranks ~bytes
  end

let exchange_time t ~nranks ~messages_per_rank ~bytes_per_message =
  let congestion = t.congestion_at ~nranks ~messages_per_rank ~bytes_per_message in
  (* Contention inflates the per-message setup cost; the payload streams at
     link bandwidth once a route is established. *)
  let per_message = (t.alpha_s *. congestion) +. (bytes_per_message /. (t.beta_gbs *. 1e9)) in
  float_of_int messages_per_rank *. per_message

let master_coordinated_time t ~nranks ~messages_per_rank ~bytes_per_message =
  (* Each halo message makes two hops (rank -> master -> rank) and the master
     serialises all of them. *)
  let total_messages = 2 * nranks * messages_per_rank in
  let per_message = t.alpha_s +. (bytes_per_message /. (t.beta_gbs *. 1e9)) in
  float_of_int total_messages *. per_message
