(** Deterministic message-passing simulator with MPI-like semantics.

    All ranks live in one process; messages are real byte buffers moved
    through tag-matched FIFO channels, so pack/unpack and matching logic
    are genuinely exercised. Each rank owns a private mailbox of
    per-(src, tag) channels: matching is one int-keyed lookup in a
    lock-free (CAS-swapped immutable) table, each channel is a
    single-producer/single-consumer chunked ring published through one
    atomic counter, and ring cells are reused across steps — no mutex
    anywhere on the data path, so thousands of simulated ranks exchange
    halos in milliseconds of host time.

    Concurrency contract: distinct channels are fully independent, and a
    given (src, dst, tag) channel must have at most one concurrent sender
    and one concurrent receiver. That is exactly the distributed runtime's
    execution model — rank [src]'s sends issue from the domain currently
    running that rank, rank [dst]'s receives from the domain running
    [dst], and pool barriers between engine phases order any migration of
    ranks across domains — so the runtime can drive ranks concurrently
    over a {!Msc_util.Domain_pool}: every rank posts its [isend]s,
    computes while the messages are in flight, and completes its [irecv]s
    afterwards — the non-blocking overlapped halo-exchange pattern of
    §4.4.

    With a {!Netmodel} attached, each message additionally carries a
    simulated in-flight latency ({!Netmodel.message_time}): [wait] blocks
    until the arrival time passes, so wall-clock traces show a real transfer
    window that overlapped computation can hide. Without one, delivery is
    instantaneous (the original lockstep behaviour). *)

type t

type request
(** A posted receive. One-shot: it completes at most once ({!test} /
    {!wait}), independently of any other request on the same channel. *)

exception
  Deadlock of {
    src : int;
    dst : int;
    tag : int;
    waited_s : float;
    backlog : (int * int * int * int) list;
        (** every non-empty queue as [(src, dst, tag, depth)] — the
            misrouted or mis-tagged messages that explain the hang *)
  }
(** Raised by {!wait} when no matching message shows up within the timeout.
    Registered with a {!Printexc} printer, so the report names the missing
    [(src, dst, tag)] and dumps the queues that {e do} hold messages
    (distinguishing a tag/neighbour bug from a genuinely missing send). *)

val create : ?net:Netmodel.t -> nranks:int -> unit -> t
(** [net] prices each message's in-flight latency; omitted = instantaneous
    delivery. @raise Invalid_argument when [nranks < 1]. *)

val nranks : t -> int

val isend : ?now:float -> t -> src:int -> dst:int -> tag:int -> Bytes.t -> unit
(** Asynchronous send: enqueues a copy of the payload, stamped with its
    simulated arrival time. Never blocks. [?now] supplies the post
    timestamp for the arrival stamp (see {!clock}) so a batch of sends
    reads the wall clock once; ignored when delivery is instantaneous.
    @raise Invalid_argument on out-of-range ranks. *)

val isend_owned :
  ?now:float -> t -> src:int -> dst:int -> tag:int -> Bytes.t -> unit
(** Like {!isend} but transfers ownership of the payload instead of
    copying it: the caller must not mutate the buffer afterwards. The
    fast path for freshly packed halo slabs. *)

val clock : t -> float option
(** [Some now] when sends currently need a wall-clock stamp (a network
    model is attached and {!Netmodel.sim_latency_scale} is non-zero),
    [None] when messages would be stamped instantaneous anyway. Read it
    once per send batch and thread it through [?now]. *)

val irecv : t -> dst:int -> src:int -> tag:int -> request
(** Post a receive; completion happens at {!test} or {!wait}. *)

val test : t -> request -> bool
(** Non-blocking completion probe: true once the matching message has been
    sent {e and} its simulated arrival time has passed (the message is then
    claimed by this request). Idempotent after completion. *)

val wait : ?timeout_s:float -> t -> request -> Bytes.t
(** Complete the receive, FIFO per (src, dst, tag), blocking until the
    message arrives (simulated latency included). A message that is merely
    in flight waits out its arrival time; a message that was never sent
    raises {!Deadlock} after [timeout_s] (default 1 s) with a dump of the
    queues that are non-empty. Waiting an already-completed request returns
    its payload again. *)

val allreduce :
  t -> tag:int -> combine:(float -> float -> float) -> float array -> float
(** [allreduce t ~tag ~combine partials] reduces one scalar per rank
    ([partials.(r)] is rank [r]'s contribution) to a single value every
    rank agrees on: gather-to-root, {!Msc_ir.Reduce.tree_combine} over
    the rank index, broadcast back. All [2 * (nranks - 1)] hops are real
    8-byte mailbox messages (counted by {!messages_sent} /
    {!bytes_sent}, priced by the attached {!Netmodel}), and the fold
    order is fixed by rank — never by arrival — so the result is
    bit-stable across engines and pool sizes. Single-rank simulators
    return [partials.(0)] without traffic. Drive it from one domain (the
    stepping driver), like the engine protocols.
    @raise Invalid_argument unless [Array.length partials = nranks]. *)

(** {1 Persistent endpoints (preallocated request slots)}

    The persistent-request idiom for steady-state exchange patterns: the
    channel for a fixed (src, dst, tag) is resolved once and every
    subsequent post or completion is O(1) with zero allocation beyond the
    payload. The scaling bench drives a 4096-rank exchange through these. *)

type port
(** A persistent send endpoint for one (src, dst, tag). *)

type slot
(** A persistent receive endpoint for one (src, dst, tag). Unlike
    {!request} it is not one-shot: each {!slot_wait} / successful
    {!slot_test} claims the channel's next message in FIFO order. *)

val send_port : t -> src:int -> dst:int -> tag:int -> port
(** @raise Invalid_argument on out-of-range ranks. *)

val port_send : ?now:float -> port -> Bytes.t -> unit
(** {!isend_owned} through a resolved endpoint: ownership transfer, no
    per-message lookup. *)

val recv_slot : t -> dst:int -> src:int -> tag:int -> slot
(** @raise Invalid_argument on out-of-range ranks. *)

val slot_test : slot -> Bytes.t option
(** Claim the next message if one has arrived (simulated latency
    included); [None] otherwise. *)

val slot_wait : ?timeout_s:float -> slot -> Bytes.t
(** Claim the next message, blocking like {!wait} (same {!Deadlock}
    behaviour on timeout). *)

val pending_messages : t -> int
(** Sent-but-unreceived messages (should be 0 between timesteps). *)

(** {1 Traffic counters (drive the network cost model)} *)

val messages_sent : t -> int
val bytes_sent : t -> int

val reset_counters : t -> unit
(** Zero [messages_sent], [bytes_sent] {e and} [pending_messages], so an
    aborted or partially drained exchange cannot leak stale in-flight counts
    into the next benchmark repetition. *)
