(** Deterministic message-passing simulator with MPI-like semantics.

    All ranks live in one process; messages are real byte buffers moved
    through tag-matched FIFO queues, so pack/unpack and matching logic are
    genuinely exercised. The mailbox is mutex-guarded and every operation is
    domain-safe, so the distributed runtime can drive ranks concurrently
    over a {!Msc_util.Domain_pool}: every rank posts its [isend]s, computes
    while the messages are in flight, and completes its [irecv]s afterwards
    — the non-blocking overlapped halo-exchange pattern of §4.4.

    With a {!Netmodel} attached, each message additionally carries a
    simulated in-flight latency ({!Netmodel.message_time}): [wait] blocks
    until the arrival time passes, so wall-clock traces show a real transfer
    window that overlapped computation can hide. Without one, delivery is
    instantaneous (the original lockstep behaviour). *)

type t

type request
(** A posted receive. One-shot: it completes at most once ({!test} /
    {!wait}), independently of any other request on the same channel. *)

exception
  Deadlock of {
    src : int;
    dst : int;
    tag : int;
    waited_s : float;
    backlog : (int * int * int * int) list;
        (** every non-empty queue as [(src, dst, tag, depth)] — the
            misrouted or mis-tagged messages that explain the hang *)
  }
(** Raised by {!wait} when no matching message shows up within the timeout.
    Registered with a {!Printexc} printer, so the report names the missing
    [(src, dst, tag)] and dumps the queues that {e do} hold messages
    (distinguishing a tag/neighbour bug from a genuinely missing send). *)

val create : ?net:Netmodel.t -> nranks:int -> unit -> t
(** [net] prices each message's in-flight latency; omitted = instantaneous
    delivery. @raise Invalid_argument when [nranks < 1]. *)

val nranks : t -> int

val isend : t -> src:int -> dst:int -> tag:int -> Bytes.t -> unit
(** Asynchronous send: enqueues a copy of the payload, stamped with its
    simulated arrival time. Never blocks.
    @raise Invalid_argument on out-of-range ranks. *)

val irecv : t -> dst:int -> src:int -> tag:int -> request
(** Post a receive; completion happens at {!test} or {!wait}. *)

val test : t -> request -> bool
(** Non-blocking completion probe: true once the matching message has been
    sent {e and} its simulated arrival time has passed (the message is then
    claimed by this request). Idempotent after completion. *)

val wait : ?timeout_s:float -> t -> request -> Bytes.t
(** Complete the receive, FIFO per (src, dst, tag), blocking until the
    message arrives (simulated latency included). A message that is merely
    in flight waits out its arrival time; a message that was never sent
    raises {!Deadlock} after [timeout_s] (default 1 s) with a dump of the
    queues that are non-empty. Waiting an already-completed request returns
    its payload again. *)

val allreduce :
  t -> tag:int -> combine:(float -> float -> float) -> float array -> float
(** [allreduce t ~tag ~combine partials] reduces one scalar per rank
    ([partials.(r)] is rank [r]'s contribution) to a single value every
    rank agrees on: gather-to-root, {!Msc_ir.Reduce.tree_combine} over
    the rank index, broadcast back. All [2 * (nranks - 1)] hops are real
    8-byte mailbox messages (counted by {!messages_sent} /
    {!bytes_sent}, priced by the attached {!Netmodel}), and the fold
    order is fixed by rank — never by arrival — so the result is
    bit-stable across engines and pool sizes. Single-rank simulators
    return [partials.(0)] without traffic. Drive it from one domain (the
    stepping driver), like the engine protocols.
    @raise Invalid_argument unless [Array.length partials = nranks]. *)

val pending_messages : t -> int
(** Sent-but-unreceived messages (should be 0 between timesteps). *)

(** {1 Traffic counters (drive the network cost model)} *)

val messages_sent : t -> int
val bytes_sent : t -> int

val reset_counters : t -> unit
(** Zero [messages_sent], [bytes_sent] {e and} [pending_messages], so an
    aborted or partially drained exchange cannot leak stale in-flight counts
    into the next benchmark repetition. *)
