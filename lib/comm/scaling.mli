(** Strong/weak scalability estimation (Figure 10): per-rank node performance
    comes from the processor simulators, halo-exchange cost from the network
    model, and computation/communication overlap follows the asynchronous
    design of §4.4. *)

type platform = Sunway | Tianhe3

type point = {
  ranks : int;
  cores : int;  (** ranks x cores-per-rank (65 on Sunway CGs, 32 on Matrix) *)
  mpi_grid : int array;
  sub_grid : int array;
  compute_s : float;  (** per step, per rank *)
  comm_s : float;  (** per step, per rank *)
  time_per_step_s : float;
  gflops : float;  (** aggregate achieved *)
  ideal_gflops : float;  (** linear extrapolation from the smallest run *)
}

val cores_per_rank : platform -> int

val ranks_per_node : platform -> int
(** Ranks sharing one physical node (4 CGs on a TaihuLight node, 8 MT-3000
    clusters on a Tianhe-3 blade) — the default node size of the
    hierarchical cost model. *)

val node_compute_time : platform -> Msc_ir.Stencil.t -> float
(** Analytic per-step compute time of one rank's sub-grid on the platform's
    node simulator (Sunway CG / Matrix cluster) under the canonical
    schedule — the model-evaluated term the scaling curves and the
    scale-out tuner combine with {!comm_time}; no wall-clock measurement
    anywhere. *)

val allreduce_time : ?bytes:int -> platform -> ranks:int -> float
(** One distributed allreduce (a solver residual/dot, [bytes] = 8 by
    default) on the platform's interconnect:
    {!Netmodel.allreduce_time} under recursive doubling — the same
    alpha-beta pricing as halo messages. *)

val comm_time :
  ?depth:int ->
  ?time_window:int ->
  ?allreduces_per_step:int ->
  ?ranks_per_node:int ->
  platform ->
  ranks:int ->
  sub_grid:int array ->
  radius:int array ->
  elem:int ->
  faces_only:bool ->
  float
(** Per-step halo-exchange cost of one rank: the directions {!Halo} actually
    exchanges (faces, or all offsets for box stencils), each paying the
    congested per-message setup {e at its own payload size} plus payload
    streaming. [depth] (default 1) prices the communication-avoiding
    temporal engine: slabs widen to [depth * radius], corners are always
    exchanged, every message carries [time_window] state slabs — and the
    whole exchange is amortised over the [depth] timesteps it feeds, so the
    alpha term drops as [alpha / depth]. [allreduces_per_step] (default 0)
    adds that many {!allreduce_time} collectives per {e true} timestep —
    solver residual checks and Krylov dots, which temporal blocking cannot
    amortise, so they sit outside the [depth] divide.

    [ranks_per_node] (default 1 = flat) switches on hierarchical two-level
    pricing: the rank grid splits into node blocks ({!Decomp.core_shape}),
    faces between ranks of the same node are {!Netmodel.shared_memory}
    copies, and off-node traffic is aggregated into one message per
    neighbouring node and direction (corner/edge aggregation), priced on
    the platform interconnect at node — not rank — concurrency.
    @raise Invalid_argument if [depth < 1], [allreduces_per_step < 0] or
    [ranks_per_node < 1]. *)

val temporal_compute_factor :
  sub_grid:int array -> radius:int array -> depth:int -> float
(** Redundant-ghost compute inflation of a depth-[k] temporal block:
    substep [s] sweeps the interior grown by [(k-1-s) * radius] per side,
    so the factor is [sum_s prod_d (n_d + 2(k-1-s) r_d) / (k prod_d n_d)]
    — [1.0] at depth 1, growing by [O(k * radius * face / volume)].
    @raise Invalid_argument if [depth < 1]. *)

val run :
  platform:platform ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  configs:(int array * int array) list ->
  point list
(** [configs] pairs an MPI grid shape with the per-rank sub-grid extents
    (Table 7 rows; for strong scaling the sub-grid shrinks as ranks grow, for
    weak scaling it is constant). The stencil builder receives the sub-grid
    extents. *)

val speedup_vs_first : point list -> float
(** Achieved perf at the largest scale over the smallest (the paper reports
    6.74x strong / 7.85x weak on Sunway when cores scale 8x). *)

(** {1 Efficiency curves (scale-out campaign, 16 - 16k ranks)} *)

type eff_point = {
  e_ranks : int;
  e_grid : int array;  (** balanced rank grid at this scale *)
  e_sub : int array;  (** per-rank sub-grid *)
  e_depth : int;  (** temporal depth after the geometric cap *)
  e_compute_s : float;  (** per step, redundant-ghost inflation included *)
  e_comm_s : float;
  e_time_s : float;  (** overlapped step time *)
  e_efficiency : float;  (** parallel efficiency vs the first ladder point *)
}

val efficiency_curve :
  ?depth:int ->
  ?ranks_per_node:int ->
  platform ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  mode:[ `Strong | `Weak ] ->
  base:int array ->
  ladder:int list ->
  eff_point list
(** Strong/weak parallel-efficiency curve over a rank ladder, hierarchical
    by default ([ranks_per_node] defaults to the platform's
    {!ranks_per_node}). [base] is the global grid under [`Strong] (the
    per-rank sub-grid shrinks as ranks grow, floored at one point per
    dimension) and the constant per-rank sub-grid under [`Weak]. [depth]
    asks for temporal blocking; each point caps it geometrically at the
    sub-grid's thinnest extent over the radius. Efficiency is per-core
    throughput of swept points relative to the first ladder point, so
    exact strong scaling reads 1.0 down the column and weak scaling is
    [t_first / t_n]. Node-simulator calls are memoised per sub-grid.
    @raise Invalid_argument if [depth < 1]. *)
