(** Strong/weak scalability estimation (Figure 10): per-rank node performance
    comes from the processor simulators, halo-exchange cost from the network
    model, and computation/communication overlap follows the asynchronous
    design of §4.4. *)

type platform = Sunway | Tianhe3

type point = {
  ranks : int;
  cores : int;  (** ranks x cores-per-rank (65 on Sunway CGs, 32 on Matrix) *)
  mpi_grid : int array;
  sub_grid : int array;
  compute_s : float;  (** per step, per rank *)
  comm_s : float;  (** per step, per rank *)
  time_per_step_s : float;
  gflops : float;  (** aggregate achieved *)
  ideal_gflops : float;  (** linear extrapolation from the smallest run *)
}

val cores_per_rank : platform -> int

val allreduce_time : ?bytes:int -> platform -> ranks:int -> float
(** One distributed allreduce (a solver residual/dot, [bytes] = 8 by
    default) on the platform's interconnect:
    {!Netmodel.allreduce_time} under recursive doubling — the same
    alpha-beta pricing as halo messages. *)

val comm_time :
  ?depth:int ->
  ?time_window:int ->
  ?allreduces_per_step:int ->
  platform ->
  ranks:int ->
  sub_grid:int array ->
  radius:int array ->
  elem:int ->
  faces_only:bool ->
  float
(** Per-step halo-exchange cost of one rank: the directions {!Halo} actually
    exchanges (faces, or all offsets for box stencils), each paying the
    congested per-message setup plus payload streaming. [depth] (default 1)
    prices the communication-avoiding temporal engine: slabs widen to
    [depth * radius], corners are always exchanged, every message carries
    [time_window] state slabs — and the whole exchange is amortised over
    the [depth] timesteps it feeds, so the alpha term drops as
    [alpha / depth]. [allreduces_per_step] (default 0) adds that many
    {!allreduce_time} collectives per {e true} timestep — solver residual
    checks and Krylov dots, which temporal blocking cannot amortise, so
    they sit outside the [depth] divide.
    @raise Invalid_argument if [depth < 1] or [allreduces_per_step < 0]. *)

val temporal_compute_factor :
  sub_grid:int array -> radius:int array -> depth:int -> float
(** Redundant-ghost compute inflation of a depth-[k] temporal block:
    substep [s] sweeps the interior grown by [(k-1-s) * radius] per side,
    so the factor is [sum_s prod_d (n_d + 2(k-1-s) r_d) / (k prod_d n_d)]
    — [1.0] at depth 1, growing by [O(k * radius * face / volume)].
    @raise Invalid_argument if [depth < 1]. *)

val run :
  platform:platform ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  configs:(int array * int array) list ->
  point list
(** [configs] pairs an MPI grid shape with the per-rank sub-grid extents
    (Table 7 rows; for strong scaling the sub-grid shrinks as ranks grow, for
    weak scaling it is constant). The stencil builder receives the sub-grid
    extents. *)

val speedup_vs_first : point list -> float
(** Achieved perf at the largest scale over the smallest (the paper reports
    6.74x strong / 7.85x weak on Sunway when cores scale 8x). *)
