(** Functional distributed runtime: the stencil runs on per-rank sub-grids
    with real halo exchanges through the MPI simulator; results are
    gatherable and bit-comparable against a single-grid run.

    This is the correctness substrate behind the scalability experiments —
    the cost side lives in {!Scaling}. *)

type t

val create :
  ?schedule:Msc_schedule.Schedule.t ->
  ?init:(int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Msc_exec.Bc.t ->
  ?trace:Msc_trace.t ->
  ranks_shape:int array ->
  Msc_ir.Stencil.t -> t
(** Decomposes the stencil's grid over [ranks_shape] processes. [init] maps a
    {e global} coordinate to the initial value (all past states share it;
    default {!Msc_exec.Runtime.default_init}); [aux_init] likewise gives the
    static coefficient grids as a global closed form (each rank fills its
    slab halo-included, no exchange needed). Initial halo exchanges run for
    every retained state.

    [trace] instruments every rank's local runtime (spans tagged with the
    rank as [tid]), each halo pack/exchange/unpack (via {!Halo.exchange}),
    and a ["halo.window"] span over each complete exchange.
    @raise Invalid_argument if the halo is thinner than the stencil radius or
    the decomposition is invalid. *)

val nranks : t -> int
val decomp : t -> Decomp.t
val mpi : t -> Mpi_sim.t
val steps_done : t -> int

val step : t -> unit
(** One timestep: local sweeps on every rank, then the halo exchange of the
    freshly produced state. *)

val run : t -> int -> unit

val rank_state : t -> rank:int -> Msc_exec.Grid.t
(** The rank's newest state. *)

val gather : t -> Msc_exec.Grid.t
(** Assemble the global newest state from all ranks. *)

val validate :
  ?steps:int -> ?bc:Msc_exec.Bc.t -> ranks_shape:int array -> Msc_ir.Stencil.t ->
  float
(** Runs the distributed and the single-grid runtimes side by side and
    returns the max relative error between the gathered and the single-grid
    result (0.0 = bit-identical). *)
