(** Functional distributed runtime: the stencil runs on per-rank sub-grids
    with real halo exchanges through the MPI simulator; results are
    gatherable and bit-comparable against a single-grid run.

    This is the correctness substrate behind the scalability experiments —
    the cost side lives in {!Scaling}. *)

type t

(** The halo-exchange engine, shared with {!Msc_exec.Exec.engine} (the
    constructors below re-export it, so either path's constructors match). *)
type engine = Msc_exec.Exec.engine =
  | Bulk_synchronous
      (** The parity reference: every rank sweeps all its tiles, then the
          freshly produced state is exchanged with no compute in flight. *)
  | Overlapped
      (** The paper's asynchronous protocol (§4.4, Figure 6c): each step
          posts every rank's sends and receives, sweeps the halo-free
          interior while the messages are in flight, then completes the
          receives and sweeps the boundary shell. Bit-identical to
          [Bulk_synchronous]. *)
  | Temporal_blocked of { depth : int }
      (** Communication-avoiding temporal blocking: halos are widened to
          [depth * radius], one deep exchange (a single message per
          neighbour carrying every retained state's slab) feeds a block of
          [depth] timesteps, and each substep recomputes a shrinking ghost
          extension instead of exchanging — the per-step latency cost drops
          to [alpha / depth] at the price of [O(depth * radius * face)]
          redundant compute. The first substep of each block overlaps the
          deep exchange with its halo-free core, like [Overlapped]. [depth]
          is clamped to what the thinnest rank supports
          ({!Decomp.max_uniform_depth}; see {!effective_depth}); stepping
          stays one-timestep granular (stopping mid-block is exact).
          Bit-identical to the other engines at every depth. *)

val needs_corners : Msc_ir.Stencil.t -> bool
(** Whether any kernel access touches two or more dimensions at once (box
    corners carry data), requiring diagonal-neighbour exchanges on top of
    the [2*ndim] faces. Star stencils get by with faces only. *)

val create :
  ?config:Msc_exec.Exec.Config.t ->
  ?net:Netmodel.t ->
  ?schedule:Msc_schedule.Schedule.t ->
  ?init:(int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Msc_exec.Bc.t ->
  ?trace:Msc_trace.t ->
  ranks_shape:int array ->
  Msc_ir.Stencil.t -> t
(** Decomposes the stencil's grid over [ranks_shape] processes. [init] maps a
    {e global} coordinate to the initial value (all past states share it;
    default {!Msc_exec.Runtime.default_init}); [aux_init] likewise gives the
    static coefficient grids as a global closed form (each rank fills its
    slab halo-included, no exchange needed). Initial halo exchanges run for
    every retained state.

    [config] carries all three execution knobs. [config.engine] (default
    [Overlapped]) selects the stepping protocol; all engines produce
    bit-identical states. [config.backend] selects the kernel backend of
    every rank's local runtime (compiled kernels are shared across
    equal-extent ranks through the on-disk cache). [config.pool] dispatches
    {e ranks} concurrently (default sequential); each rank's local runtime
    sweeps its own tiles sequentially. [net] attaches a network cost
    model to the MPI simulator, so every message carries a simulated
    in-flight latency — {!Mpi_sim.wait} sleeps out the remainder, making
    the overlap window measurable in wall-clock traces.

    [trace] instruments every rank's local runtime (spans tagged with the
    rank as [tid]), each halo pack/exchange/unpack, a ["halo.window"] span
    over each bulk exchange, and — in the overlapped engine — a
    ["halo.overlap"] span per rank over the interior sub-sweep (the window
    the exchange hides behind) plus a ["halo.shell"] span over the
    boundary sub-sweep; the temporal engine adds a ["halo.substep"] span
    per rank over each communication-free substep.
    @raise Invalid_argument if the halo is thinner than the stencil radius,
    the decomposition is invalid, a temporal depth [< 1] is requested, or
    [Temporal_blocked] with effective depth [> 1] is combined with
    [Reflect] boundaries (the mirrored halo cannot be recomputed locally). *)

val nranks : t -> int
val decomp : t -> Decomp.t
val mpi : t -> Mpi_sim.t

val engine : t -> engine
(** The engine the caller requested ([config.engine], verbatim). *)

val effective_engine : t -> engine
(** The protocol actually stepping. Differs from {!engine} in exactly two
    recorded cases: a [Temporal_blocked] request reports its {e clamped}
    depth ({!effective_depth}), and a graph run's
    [Temporal_blocked {depth = 1}] reports [Bulk_synchronous] (graphs
    have no temporal block; deeper requests are rejected at
    {!create_graph}). *)

val effective_depth : t -> int
(** The temporal block depth actually in use: the requested
    [Temporal_blocked] depth clamped to {!Decomp.max_uniform_depth} (ranks
    thinner than [depth * radius] cannot host the deep halo). [1] for the
    other engines. *)

val steps_done : t -> int

val step : t -> unit
(** One timestep: local sweeps on every rank plus the halo exchange, ordered
    per the engine. *)

val run : t -> int -> unit

val rank_state : t -> rank:int -> Msc_exec.Grid.t
(** The rank's newest state. *)

val rank_runtime : t -> rank:int -> Msc_exec.Runtime.t
(** The rank's local runtime — matrix-free solvers use it to write
    operator inputs into the rank states ({!Msc_exec.Runtime.state}) and
    read sweep outputs back, with {!refresh_halos} in between.
    @raise Invalid_argument on an out-of-range rank. *)

val refresh_halos : t -> unit
(** One halo-exchange round for {e every} retained state (plus the
    physical-face boundary pass), outside the stepping protocol — exactly
    the exchange {!create} runs before the first step. Solvers call this
    after overwriting rank interiors (e.g. loading a Krylov direction
    into the state) so the next {!step} reads coherent neighbour data. *)

val reduce : t -> op:Msc_ir.Reduce.op -> float
(** Reduce the newest distributed state to one scalar every rank agrees
    on: per-rank tile partials on the rank runtime's own tiling (compiled
    fast path when [config.backend] allows, same rules as
    {!Msc_exec.Reduction}), a local {!Msc_ir.Reduce.tree_combine} per
    rank, {!Mpi_sim.allreduce} across ranks (real mailbox traffic, priced
    by the attached {!Netmodel}), and a single
    {!Msc_ir.Reduce.finalize}. Every fold runs in tile/rank index order,
    so the result is bit-stable across engines and pool sizes.
    [Dot] is not available here (the state is a single vector);
    solver-owned vector pairs use {!Msc_exec.Reduction} directly.
    @raise Invalid_argument on [Dot]. *)

val gather : t -> Msc_exec.Grid.t
(** Assemble the global newest state from all ranks. *)

val validate :
  ?config:Msc_exec.Exec.Config.t ->
  ?steps:int -> ?bc:Msc_exec.Bc.t -> ranks_shape:int array -> Msc_ir.Stencil.t ->
  float
(** Runs the distributed and the single-grid runtimes side by side — both
    under [config]'s backend — and returns the max relative error between
    the gathered and the single-grid result (0.0 = bit-identical). *)

(** {1 Pipeline graphs}

    A distributed graph run executes the whole staged schedule on every
    rank per step and refreshes halos with {e one} deep exchange of the
    stepped state, sized by {!Msc_graph.Graph.required_halo} — the
    shared-halo execution the {!Msc_graph.Pass.merge_halos} pass opts a
    graph into. Multi-stage graphs are {e merged-only}: exchanging each
    intermediate buffer separately is not supported (the slab packing
    cannot refresh the extension-by-halo corner regions an extended
    downstream sweep reads), so an unmerged multi-stage graph is
    rejected at [create_graph]. Stage sweeps recompute their ghost
    extensions from the deep source halo instead, exactly as the
    single-node graph runtime does, so the gathered state stays
    bit-identical to it. *)

val create_graph :
  ?config:Msc_exec.Exec.Config.t ->
  ?net:Netmodel.t ->
  ?schedule:Msc_schedule.Schedule.t ->
  ?init:(int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Msc_exec.Bc.t ->
  ?trace:Msc_trace.t ->
  ranks_shape:int array ->
  Msc_graph.Graph.t -> t
(** Decompose a pipeline graph over [ranks_shape]. Parameters behave as
    in {!create}. Engine mapping: [Bulk_synchronous] sweeps every rank's
    staged schedule then exchanges; [Overlapped] hides the deep exchange
    behind stage 0's halo-free core (later stages consume stage 0's
    buffer, so only stage 0 splits); [Temporal_blocked] degrades to the
    bulk schedule — only at [depth = 1], recorded as [Bulk_synchronous]
    in {!effective_engine} (intermediates are recomputed per step, not
    stepped, so there is no block to deepen). All engines are
    bit-identical to {!Msc_exec.Runtime.step_graph} on one grid.
    @raise Invalid_argument if the graph is multi-stage but not merged
    (run {!Msc_graph.Pass.merge_halos}), any rank's extent is thinner
    than the graph's required halo, or [config.engine] is
    [Temporal_blocked] with [depth > 1] (a silent degrade would
    misreport the communication-avoiding regime — request depth 1 or a
    non-temporal engine). *)

val validate_graph :
  ?config:Msc_exec.Exec.Config.t ->
  ?steps:int -> ?bc:Msc_exec.Bc.t -> ranks_shape:int array ->
  Msc_graph.Graph.t -> float
(** {!validate} for pipeline graphs: distributed staged run vs the
    single-node graph runtime (0.0 = bit-identical). *)
