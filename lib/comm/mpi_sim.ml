(* Per-rank mailboxes: rank [dst]'s mailbox holds one channel per (src, tag)
   pair it has ever seen, each channel an unbounded chunked ring of
   in-flight messages. The channel table is an immutable int-keyed map
   swapped by CAS — lookups never lock — and each channel is a
   single-producer/single-consumer queue published through one atomic
   counter, so posting and completing a message costs a handful of plain
   stores plus one atomic each, with no mutex anywhere on the data path. A
   4096-rank exchange has no global serialisation point at all.

   The SPSC contract mirrors the execution model of the distributed
   runtime: a given (src, dst, tag) channel is fed by the domain currently
   running rank [src] and drained by the one running rank [dst], and the
   pool barriers between engine phases order any migration of ranks across
   domains. Distinct channels are fully independent.

   Segment cells are reused and channels persist across steps: in steady
   state (every halo exchange sends the same channels every step) a message
   allocates nothing but its payload — and the payload copy itself is
   elided on the [isend_owned] path, where the caller hands over a freshly
   packed buffer. [send_port] / [recv_slot] additionally hoist the channel
   lookup and request allocation out of the loop, the persistent-request
   idiom the scaling bench drives. *)

module Imap = Map.Make (Int)

(* Ring chunk size: a halo exchange keeps at most a few messages in flight
   per channel, so one segment almost always suffices and deep backlogs
   (e.g. the mis-tagged traffic a Deadlock dumps) chain further segments.
   Kept small deliberately — at thousands of ranks the aggregate channel
   footprint is what bounds exchange throughput (the working set streams
   through cache twice per step), and 4 cells halves the step time that 32
   cells gives at 4096 ranks. *)
let seg_cap = 4

type seg = {
  buf : Bytes.t array;
  arr : float array;
  (* Written by the producer before the element it serves is published
     through [produced], so the consumer never follows a dangling link. *)
  mutable next : seg option;
}

type chan = {
  c_src : int;
  c_tag : int;
  produced : int Atomic.t;  (* publication point for everything below *)
  (* Producer-owned cursor and totals. *)
  mutable p_seg : seg;
  mutable p_idx : int;
  mutable p_bytes : int;
  (* Consumer-owned cursor. *)
  mutable consumed : int;
  mutable c_seg : seg;
  mutable c_idx : int;
  (* One-slot segment freelist: the consumer parks each exhausted segment
     here and the producer reuses it instead of allocating, so steady-state
     traffic allocates nothing at all. *)
  spare : seg option Atomic.t;
}

type mailbox = { channels : chan Imap.t Atomic.t }

type t = {
  nranks : int;
  mailboxes : mailbox array;
  net : Netmodel.t option;
  (* Batched latency accounting: the modelled in-flight time depends only
     on the payload size, and halo traffic has a handful of distinct sizes
     per step — memoize [Netmodel.message_time] per byte count so the model
     closure runs once per size, not once per message. Only the (slow,
     sleeping) simulated-latency path touches this. *)
  lat_lock : Mutex.t;
  lat_memo : (int, float) Hashtbl.t;
  (* Counter baselines recorded by [reset_counters]: the live totals are
     derived from the channels, so "resetting" subtracts a snapshot. *)
  mutable base_messages : int;
  mutable base_bytes : int;
  mutable base_pending : int;
}

(* A posted receive. Completion is one-shot and independent of other
   requests: the matching channel is resolved at post time, and [test] /
   [wait] dequeue its head into [completed], after which further probes are
   pure reads. *)
type request = { r_dst : int; r_ch : chan; mutable completed : Bytes.t option }

(* Persistent endpoints: the channel resolved once, reused every step. *)
type port = { po_t : t; po_ch : chan }
type slot = { sl_t : t; sl_dst : int; sl_ch : chan }

exception
  Deadlock of {
    src : int;
    dst : int;
    tag : int;
    waited_s : float;
    backlog : (int * int * int * int) list;
  }

let () =
  Printexc.register_printer (function
    | Deadlock { src; dst; tag; waited_s; backlog } ->
        let pending =
          match backlog with
          | [] -> "no messages pending anywhere"
          | qs ->
              String.concat "; "
                (List.map
                   (fun (s, d, tg, n) ->
                     Printf.sprintf "src=%d dst=%d tag=%d: %d queued" s d tg n)
                   qs)
        in
        Some
          (Printf.sprintf
             "Mpi_sim.Deadlock: no message for src=%d dst=%d tag=%d after \
              %.3f s (%s)"
             src dst tag waited_s pending)
    | _ -> None)

let now () = Unix.gettimeofday ()

let create ?net ~nranks () =
  if nranks < 1 then invalid_arg "Mpi_sim.create: need at least one rank";
  {
    nranks;
    mailboxes = Array.init nranks (fun _ -> { channels = Atomic.make Imap.empty });
    net;
    lat_lock = Mutex.create ();
    lat_memo = Hashtbl.create 16;
    base_messages = 0;
    base_bytes = 0;
    base_pending = 0;
  }

let nranks t = t.nranks

let check_rank t r name =
  if r < 0 || r >= t.nranks then
    invalid_arg (Printf.sprintf "Mpi_sim.%s: rank %d out of [0,%d)" name r t.nranks)

let new_seg () =
  { buf = Array.make seg_cap Bytes.empty; arr = Array.make seg_cap 0.0; next = None }

let new_chan ~src ~tag =
  let s = new_seg () in
  {
    c_src = src;
    c_tag = tag;
    produced = Atomic.make 0;
    p_seg = s;
    p_idx = 0;
    p_bytes = 0;
    consumed = 0;
    c_seg = s;
    c_idx = 0;
    spare = Atomic.make None;
  }

(* Lock-free find-or-create: losers of the CAS race retry the lookup and
   adopt the winner's channel (a fresh channel has no observable effects
   until messages flow through it, so discarding the loser is safe). *)
let rec chan_of t mb ~src ~tag =
  let key = (tag * t.nranks) + src in
  let m = Atomic.get mb.channels in
  match Imap.find_opt key m with
  | Some ch -> ch
  | None ->
      let ch = new_chan ~src ~tag in
      if Atomic.compare_and_set mb.channels m (Imap.add key ch m) then ch
      else chan_of t mb ~src ~tag

(* Producer side; at most one thread per channel (SPSC contract). *)
let chan_push ch payload arrival =
  if ch.p_idx = seg_cap then begin
    let s =
      match Atomic.exchange ch.spare None with
      | Some s -> s (* recycled: cells already cleared, [next] already None *)
      | None -> new_seg ()
    in
    ch.p_seg.next <- Some s;
    ch.p_seg <- s;
    ch.p_idx <- 0
  end;
  ch.p_seg.buf.(ch.p_idx) <- payload;
  ch.p_seg.arr.(ch.p_idx) <- arrival;
  ch.p_idx <- ch.p_idx + 1;
  ch.p_bytes <- ch.p_bytes + Bytes.length payload;
  (* Publishes the element and every plain write above it. *)
  Atomic.incr ch.produced

(* Consumer side; at most one thread per channel. Step the cursor into the
   next segment lazily — the link is guaranteed published whenever
   [produced] covers an element beyond the current segment. *)
let cursor_advance ch =
  if ch.c_idx = seg_cap then begin
    match ch.c_seg.next with
    | Some s ->
        let old = ch.c_seg in
        ch.c_seg <- s;
        ch.c_idx <- 0;
        (* Park the drained segment for the producer to reuse (its cells
           were cleared as each message was claimed). *)
        old.next <- None;
        Atomic.set ch.spare (Some old)
    | None -> assert false
  end

(* Simulated arrival time of the channel's head message, [infinity] when
   empty. Consumer thread only. *)
let head_arrival ch =
  if ch.consumed >= Atomic.get ch.produced then infinity
  else begin
    cursor_advance ch;
    ch.c_seg.arr.(ch.c_idx)
  end

(* Physically unique "nothing claimable" sentinel: it never escapes this
   module, and every payload a caller can hand us is a distinct block, so
   [==] against it is unambiguous — and the hot path allocates no option. *)
let no_msg = Bytes.create 0

(* Claim the head message if posted AND its simulated arrival has passed;
   [no_msg] otherwise. Consumer thread only. *)
let take_now ch =
  if ch.consumed >= Atomic.get ch.produced then no_msg
  else begin
    cursor_advance ch;
    let a = ch.c_seg.arr.(ch.c_idx) in
    if a = neg_infinity || a <= now () then begin
      let payload = ch.c_seg.buf.(ch.c_idx) in
      (* Drop the ring's reference so delivered payloads are not kept alive
         until the cell is overwritten. *)
      ch.c_seg.buf.(ch.c_idx) <- Bytes.empty;
      ch.c_idx <- ch.c_idx + 1;
      ch.consumed <- ch.consumed + 1;
      payload
    end
    else no_msg
  end

let latency_of t net bytes =
  Mutex.lock t.lat_lock;
  let lat =
    match Hashtbl.find_opt t.lat_memo bytes with
    | Some l -> l
    | None ->
        let l = Netmodel.message_time net ~nranks:t.nranks ~bytes in
        Hashtbl.add t.lat_memo bytes l;
        l
  in
  Mutex.unlock t.lat_lock;
  lat

(* With no network model — or the wall-clock latency scale zeroed, as the
   test harness runs — delivery is instantaneous and no clock is read at
   all; otherwise the arrival stamp is post time + scaled modelled flight.
   [?now] lets a caller posting a batch (one rank's whole direction fan)
   read the clock once for all of them. *)
let arrival_of ?now:(t0 = nan) t bytes =
  match t.net with
  | None -> neg_infinity
  | Some net ->
      let scale = Netmodel.sim_latency_scale () in
      if scale = 0.0 then neg_infinity
      else
        (if Float.is_nan t0 then now () else t0) +. (scale *. latency_of t net bytes)

(* When only latency stamping needs the clock, read it at most once per
   send batch: [None] when messages would be stamped instantaneous. *)
let clock t =
  match t.net with
  | None -> None
  | Some _ -> if Netmodel.sim_latency_scale () = 0.0 then None else Some (now ())

let post ?now t ~src ~dst ~tag payload =
  check_rank t src "isend";
  check_rank t dst "isend";
  let arrival = arrival_of ?now t (Bytes.length payload) in
  chan_push (chan_of t t.mailboxes.(dst) ~src ~tag) payload arrival

let isend ?now t ~src ~dst ~tag payload =
  post ?now t ~src ~dst ~tag (Bytes.copy payload)

let isend_owned ?now t ~src ~dst ~tag payload = post ?now t ~src ~dst ~tag payload

let irecv t ~dst ~src ~tag =
  check_rank t src "irecv";
  check_rank t dst "irecv";
  { r_dst = dst; r_ch = chan_of t t.mailboxes.(dst) ~src ~tag; completed = None }

let test _t req =
  match req.completed with
  | Some _ -> true
  | None ->
      let payload = take_now req.r_ch in
      if payload != no_msg then begin
        req.completed <- Some payload;
        true
      end
      else false

let backlog_of t =
  let acc = ref [] in
  Array.iteri
    (fun dst mb ->
      Imap.iter
        (fun _ ch ->
          let n = Atomic.get ch.produced - ch.consumed in
          if n > 0 then acc := (ch.c_src, dst, ch.c_tag, n) :: !acc)
        (Atomic.get mb.channels))
    t.mailboxes;
  List.sort compare !acc

(* A blocked receive re-polls its channel at a fine interval (the OCaml
   stdlib has no timed condition wait) both to observe late sends from
   other domains and to enforce the deadlock timeout. The poll period only
   bounds the timeout's resolution: a message that is already queued
   completes on the first probe — without ever reading the clock for the
   deadline — and a queued-but-in-flight message completes exactly at its
   arrival time via one sleep. *)
let wait_chan ?(timeout_s = 1.0) t ~dst ch =
  let first = take_now ch in
  if first != no_msg then first
  else begin
    let start = now () in
    let deadline = start +. timeout_s in
    let rec poll () =
      let payload = take_now ch in
      if payload != no_msg then payload
      else begin
        (* Missing entirely, or posted but still in flight: sleep toward
           the earliest of its arrival, the timeout, and the poll
           period. *)
        let ha = head_arrival ch in
        let t_now = now () in
        if t_now >= deadline && ha = infinity then
          raise
            (Deadlock
               {
                 src = ch.c_src;
                 dst;
                 tag = ch.c_tag;
                 waited_s = t_now -. start;
                 backlog = backlog_of t;
               });
        let nap = Float.min (Float.max (ha -. t_now) 2e-4) 2e-3 in
        Unix.sleepf nap;
        poll ()
      end
    in
    poll ()
  end

let wait ?timeout_s t req =
  match req.completed with
  | Some payload -> payload
  | None ->
      let payload = wait_chan ?timeout_s t ~dst:req.r_dst req.r_ch in
      req.completed <- Some payload;
      payload

(* --- persistent endpoints --- *)

let send_port t ~src ~dst ~tag =
  check_rank t src "send_port";
  check_rank t dst "send_port";
  { po_t = t; po_ch = chan_of t t.mailboxes.(dst) ~src ~tag }

let port_send ?now port payload =
  chan_push port.po_ch payload (arrival_of ?now port.po_t (Bytes.length payload))

let recv_slot t ~dst ~src ~tag =
  check_rank t src "recv_slot";
  check_rank t dst "recv_slot";
  { sl_t = t; sl_dst = dst; sl_ch = chan_of t t.mailboxes.(dst) ~src ~tag }

let slot_test slot =
  let payload = take_now slot.sl_ch in
  if payload == no_msg then None else Some payload

let slot_wait ?timeout_s slot =
  wait_chan ?timeout_s slot.sl_t ~dst:slot.sl_dst slot.sl_ch

(* Driver-side collective: rank-gather to root, deterministic tree fold,
   broadcast back. Every hop is a real mailbox message — 8-byte payloads
   carrying exact float bits — so traffic counters and simulated latency
   account for solver reductions exactly like halo slabs. The fold runs
   over the *rank-indexed* gather array with Reduce.tree_combine, never
   over arrival order, so the result is bit-stable. *)
let allreduce t ~tag ~combine partials =
  let n = nranks t in
  if Array.length partials <> n then
    invalid_arg "Mpi_sim.allreduce: need exactly one partial per rank";
  if n = 1 then partials.(0)
  else begin
    let payload v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.bits_of_float v);
      b
    in
    let value b = Int64.float_of_bits (Bytes.get_int64_le b 0) in
    for r = 1 to n - 1 do
      isend_owned t ~src:r ~dst:0 ~tag (payload partials.(r))
    done;
    let gathered = Array.make n 0.0 in
    gathered.(0) <- partials.(0);
    for r = 1 to n - 1 do
      gathered.(r) <- value (wait t (irecv t ~dst:0 ~src:r ~tag))
    done;
    let result = Msc_ir.Reduce.tree_combine combine gathered in
    for r = 1 to n - 1 do
      isend_owned t ~src:0 ~dst:r ~tag (payload result)
    done;
    let out = ref result in
    for r = 1 to n - 1 do
      (* Every rank decodes the same broadcast bits; the last decode is
         returned (they are all equal by construction). *)
      out := value (wait t (irecv t ~dst:r ~src:0 ~tag))
    done;
    !out
  end

(* Live totals derived from the channels. Exact whenever the ranks are
   quiescent (between engine phases / timesteps — where every caller
   reads them); mid-exchange reads are a best-effort snapshot. *)
let sum_chans t f =
  let acc = ref 0 in
  Array.iter
    (fun mb -> Imap.iter (fun _ ch -> acc := !acc + f ch) (Atomic.get mb.channels))
    t.mailboxes;
  !acc

let live_messages t = sum_chans t (fun ch -> Atomic.get ch.produced)
let live_bytes t = sum_chans t (fun ch -> ch.p_bytes)
let live_pending t = sum_chans t (fun ch -> Atomic.get ch.produced - ch.consumed)
let messages_sent t = live_messages t - t.base_messages
let bytes_sent t = live_bytes t - t.base_bytes
let pending_messages t = live_pending t - t.base_pending

let reset_counters t =
  t.base_messages <- live_messages t;
  t.base_bytes <- live_bytes t;
  (* [pending] too: a stale in-flight count from an aborted exchange must
     not leak into the next benchmark repetition's accounting. *)
  t.base_pending <- live_pending t
