(** Cartesian domain decomposition (§4.4, Figure 6a): the global grid is
    split evenly over an n-dimensional process grid; each rank owns a
    sub-tensor with its own halo. *)

type t = {
  global : int array;  (** global interior extents *)
  ranks_shape : int array;  (** process-grid extents, same rank as [global] *)
  nranks : int;
}

val create : global:int array -> ranks_shape:int array -> t
(** @raise Invalid_argument on rank mismatch, non-positive entries, or more
    processes than points along a dimension. *)

val auto_shape : nranks:int -> ndim:int -> int array
(** Balanced factorisation of [nranks] into [ndim] factors (largest factors
    on the leading dimensions), e.g. 28 over 2-D -> [|7; 4|]. *)

val core_shape : ranks_shape:int array -> ranks_per_node:int -> int array
(** Two-level (node x core) split of a rank grid: the per-node core block,
    as cubic as possible, with every extent dividing the corresponding
    [ranks_shape] extent so core blocks tile the grid exactly. Prime
    factors of [ranks_per_node] that divide nowhere are dropped (the node
    is then underpopulated rather than the tiling broken).
    @raise Invalid_argument when [ranks_per_node < 1]. *)

val node_of_rank : t -> core:int array -> int -> int
(** The node (row-major over the node grid [ranks_shape / core]) owning a
    rank under a {!core_shape} block split. *)

val same_node : t -> core:int array -> int -> int -> bool
(** Whether two ranks land on the same node — the faces the hierarchical
    cost model prices as shared-memory copies instead of network
    messages. *)

val coords_of_rank : t -> int -> int array
val rank_of_coords : t -> int array -> int

val subdomain : t -> rank:int -> int array * int array
(** [(offset, extent)] of the rank's block in global coordinates. Remainder
    points go to the leading ranks (extents differ by at most one). *)

val min_extent : t -> int array
(** The thinnest rank extent along each dimension ([global / ranks_shape],
    floor — remainder points go to the leading ranks). *)

val max_uniform_depth : t -> radius:int array -> int
(** The largest temporal-block depth [k] every rank supports: a depth-[k]
    block needs a [k * radius] halo, which must not exceed any rank's own
    extent ([min] over dimensions with non-zero radius of
    [min_extent / radius]). At least [1]; [max_int] for a pointwise
    (zero-radius) stencil. *)

val neighbor : ?periodic:bool -> t -> rank:int -> dir:int array -> int option
(** Neighbouring rank one step along [dir] (entries in -1/0/+1); [None] past
    the physical boundary. With [periodic], coordinates wrap around, so every
    direction has a neighbour (possibly the rank itself). *)

val directions : ndim:int -> faces_only:bool -> int array list
(** The exchange directions: the [2*ndim] faces, or all [3^ndim - 1]
    non-zero offsets (needed by box stencils, whose corners carry data). *)

val dir_index : ndim:int -> int array -> int
(** Dense encoding of a direction, used as the message tag. *)

val covers_globally : t -> bool
(** Do the subdomains partition the global grid exactly? (Used by property
    tests.) *)
