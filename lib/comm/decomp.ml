type t = { global : int array; ranks_shape : int array; nranks : int }

let create ~global ~ranks_shape =
  let nd = Array.length global in
  if Array.length ranks_shape <> nd then invalid_arg "Decomp.create: rank mismatch";
  Array.iter (fun n -> if n <= 0 then invalid_arg "Decomp.create: bad global extent") global;
  Array.iteri
    (fun d p ->
      if p <= 0 then invalid_arg "Decomp.create: bad process count";
      if p > global.(d) then
        invalid_arg
          (Printf.sprintf "Decomp.create: %d processes for %d points on dim %d" p
             global.(d) d))
    ranks_shape;
  { global; ranks_shape; nranks = Array.fold_left ( * ) 1 ranks_shape }

let auto_shape ~nranks ~ndim =
  assert (nranks >= 1 && ndim >= 1);
  let shape = Array.make ndim 1 in
  (* Peel prime factors largest-first onto the currently smallest dimension,
     so the process grid stays as cubic as possible. *)
  let rec factors n d acc =
    if n = 1 then acc
    else if d * d > n then n :: acc
    else if n mod d = 0 then factors (n / d) d (d :: acc)
    else factors n (d + 1) acc
  in
  let fs = List.sort (fun a b -> compare b a) (factors nranks 2 []) in
  List.iter
    (fun f ->
      let smallest = ref 0 in
      Array.iteri (fun d v -> if v < shape.(!smallest) then smallest := d else ignore v) shape;
      shape.(!smallest) <- shape.(!smallest) * f)
    fs;
  Array.sort (fun a b -> compare b a) shape;
  shape

(* Two-level split: factorise [ranks_per_node] across the dimensions so a
   node's core block tiles the rank grid ([core.(d)] divides
   [ranks_shape.(d)]) while staying as cubic as possible — largest prime
   factors first onto the thinnest core dimension that still divides.
   Factors that fit nowhere are dropped: the node then holds fewer ranks
   than the hardware offers, and the model prices what the grid can
   actually use. *)
let core_shape ~ranks_shape ~ranks_per_node =
  if ranks_per_node < 1 then
    invalid_arg "Decomp.core_shape: ranks_per_node must be >= 1";
  let nd = Array.length ranks_shape in
  let core = Array.make nd 1 in
  let rec factors n d acc =
    if n = 1 then acc
    else if d * d > n then n :: acc
    else if n mod d = 0 then factors (n / d) d (d :: acc)
    else factors n (d + 1) acc
  in
  let fs = List.sort (fun a b -> compare b a) (factors ranks_per_node 2 []) in
  List.iter
    (fun f ->
      let best = ref (-1) in
      for d = 0 to nd - 1 do
        if
          ranks_shape.(d) mod (core.(d) * f) = 0
          && (!best < 0 || core.(d) < core.(!best))
        then best := d
      done;
      if !best >= 0 then core.(!best) <- core.(!best) * f)
    fs;
  core

let coords_of_rank t rank =
  let nd = Array.length t.ranks_shape in
  let coords = Array.make nd 0 in
  let rest = ref rank in
  for d = nd - 1 downto 0 do
    coords.(d) <- !rest mod t.ranks_shape.(d);
    rest := !rest / t.ranks_shape.(d)
  done;
  coords

let rank_of_coords t coords =
  let acc = ref 0 in
  Array.iteri (fun d c -> acc := (!acc * t.ranks_shape.(d)) + c) coords;
  !acc

(* Node id of a rank under a [core] block split: node coordinates are the
   rank coordinates divided by the core block, row-major over the node
   grid. Requires [core.(d)] to divide [ranks_shape.(d)] (what
   {!core_shape} produces). *)
let node_of_rank t ~core rank =
  let coords = coords_of_rank t rank in
  let acc = ref 0 in
  Array.iteri
    (fun d c -> acc := (!acc * (t.ranks_shape.(d) / core.(d))) + (c / core.(d)))
    coords;
  !acc

let same_node t ~core a b = node_of_rank t ~core a = node_of_rank t ~core b

let subdomain t ~rank =
  let coords = coords_of_rank t rank in
  let nd = Array.length t.global in
  let offset = Array.make nd 0 and extent = Array.make nd 0 in
  for d = 0 to nd - 1 do
    let n = t.global.(d) and p = t.ranks_shape.(d) in
    let base = n / p and rem = n mod p in
    let c = coords.(d) in
    (* The first [rem] ranks along the dimension take one extra point. *)
    extent.(d) <- (base + if c < rem then 1 else 0);
    offset.(d) <- (c * base) + min c rem
  done;
  (offset, extent)

let min_extent t =
  (* The thinnest extent along each dimension: remainder points go to the
     leading ranks, so the floor division is the minimum. *)
  Array.map2 (fun n p -> n / p) t.global t.ranks_shape

let max_uniform_depth t ~radius =
  let m = min_extent t in
  let cap = ref max_int in
  Array.iteri
    (fun d r -> if r > 0 then cap := min !cap (m.(d) / r))
    radius;
  max 1 (if !cap = max_int then max_int else !cap)

let neighbor ?(periodic = false) t ~rank ~dir =
  let coords = coords_of_rank t rank in
  let nd = Array.length coords in
  let ok = ref true in
  let moved = Array.make nd 0 in
  for d = 0 to nd - 1 do
    let c = coords.(d) + dir.(d) in
    let p = t.ranks_shape.(d) in
    if c < 0 || c >= p then
      if periodic then moved.(d) <- ((c mod p) + p) mod p else ok := false
    else moved.(d) <- c
  done;
  if !ok then Some (rank_of_coords t moved) else None

let directions ~ndim ~faces_only =
  if faces_only then
    List.concat
      (List.init ndim (fun d ->
           let minus = Array.make ndim 0 and plus = Array.make ndim 0 in
           minus.(d) <- -1;
           plus.(d) <- 1;
           [ minus; plus ]))
  else begin
    let rec build d =
      if d = 0 then [ [] ]
      else
        let rest = build (d - 1) in
        List.concat_map (fun tail -> [ -1 :: tail; 0 :: tail; 1 :: tail ]) rest
    in
    build ndim
    |> List.map Array.of_list
    |> List.filter (fun dir -> Array.exists (fun v -> v <> 0) dir)
  end

let dir_index ~ndim dir =
  assert (Array.length dir = ndim);
  let acc = ref 0 in
  Array.iter
    (fun v ->
      assert (v >= -1 && v <= 1);
      acc := (!acc * 3) + (v + 1))
    dir;
  !acc

let covers_globally t =
  let total =
    List.init t.nranks (fun r ->
        let _, extent = subdomain t ~rank:r in
        Array.fold_left ( * ) 1 extent)
    |> List.fold_left ( + ) 0
  in
  total = Array.fold_left ( * ) 1 t.global
