open Msc_ir
open Msc_frontend

type bench = {
  name : string;
  shape : Shapes.shape;
  ndim : int;
  radius : int;
  paper_read_bytes : int;
  paper_write_bytes : int;
  paper_ops : int;
  time_dep : int;
}

let mk name shape ndim radius read ops =
  {
    name;
    shape;
    ndim;
    radius;
    paper_read_bytes = read;
    paper_write_bytes = 8;
    paper_ops = ops;
    time_dep = 2;
  }

let all =
  [
    mk "2d9pt_star" Shapes.Star 2 2 72 17;
    mk "2d9pt_box" Shapes.Box 2 1 72 17;
    mk "2d121pt_box" Shapes.Box 2 5 968 231;
    mk "2d169pt_box" Shapes.Box 2 6 1352 325;
    mk "3d7pt_star" Shapes.Star 3 1 56 13;
    mk "3d13pt_star" Shapes.Star 3 2 104 17;
    mk "3d25pt_star" Shapes.Star 3 4 200 41;
    mk "3d31pt_star" Shapes.Star 3 5 248 50;
  ]

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> b
  | None -> (
      (* Accept any unambiguous prefix, so "3d7pt" means "3d7pt_star" while
         "2d9pt" (star or box?) stays an error. *)
      let is_prefix b =
        String.length name <= String.length b.name
        && String.equal name (String.sub b.name 0 (String.length name))
      in
      match List.filter is_prefix all with
      | [ b ] -> b
      | _ -> raise Not_found)

let default_dims b =
  match b.ndim with
  | 2 -> [| 4096; 4096 |]
  | 3 -> [| 256; 256; 256 |]
  | n -> Array.make n 128

let stencil ?(dtype = Dtype.F64) ?dims b =
  let dims = match dims with Some d -> d | None -> default_dims b in
  assert (Array.length dims = b.ndim);
  let grid =
    Tensor.sp ~time_window:b.time_dep
      ~halo:(Array.make b.ndim b.radius)
      "B" dtype dims
  in
  let kernel =
    Builder.shaped_kernel ~name:("S_" ^ b.name) ~shape:b.shape ~radius:b.radius grid
  in
  if b.time_dep = 2 then Builder.two_step ~name:b.name kernel
  else Builder.single_step ~name:b.name kernel

let kernel_of (st : Stencil.t) =
  match Stencil.kernels st with
  | [ k ] -> k
  | k :: _ -> k
  | [] -> invalid_arg "Suite.kernel_of: no kernel"

let measured_read_bytes b = Kernel.read_bytes_per_point (kernel_of (stencil b))
let measured_ops b = Kernel.flops_per_point (kernel_of (stencil b))
