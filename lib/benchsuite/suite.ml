open Msc_ir
open Msc_frontend

type bench = {
  name : string;
  shape : Shapes.shape;
  ndim : int;
  radius : int;
  paper_read_bytes : int;
  paper_write_bytes : int;
  paper_ops : int;
  time_dep : int;
}

let mk name shape ndim radius read ops =
  {
    name;
    shape;
    ndim;
    radius;
    paper_read_bytes = read;
    paper_write_bytes = 8;
    paper_ops = ops;
    time_dep = 2;
  }

let all =
  [
    mk "2d9pt_star" Shapes.Star 2 2 72 17;
    mk "2d9pt_box" Shapes.Box 2 1 72 17;
    mk "2d121pt_box" Shapes.Box 2 5 968 231;
    mk "2d169pt_box" Shapes.Box 2 6 1352 325;
    mk "3d7pt_star" Shapes.Star 3 1 56 13;
    mk "3d13pt_star" Shapes.Star 3 2 104 17;
    mk "3d25pt_star" Shapes.Star 3 4 200 41;
    mk "3d31pt_star" Shapes.Star 3 5 248 50;
  ]

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> b
  | None -> (
      (* Accept any unambiguous prefix, so "3d7pt" means "3d7pt_star" while
         "2d9pt" (star or box?) stays an error. *)
      let is_prefix b =
        String.length name <= String.length b.name
        && String.equal name (String.sub b.name 0 (String.length name))
      in
      match List.filter is_prefix all with
      | [ b ] -> b
      | _ -> raise Not_found)

let default_dims b =
  match b.ndim with
  | 2 -> [| 4096; 4096 |]
  | 3 -> [| 256; 256; 256 |]
  | n -> Array.make n 128

let stencil ?(dtype = Dtype.F64) ?dims b =
  let dims = match dims with Some d -> d | None -> default_dims b in
  assert (Array.length dims = b.ndim);
  let grid =
    Tensor.sp ~time_window:b.time_dep
      ~halo:(Array.make b.ndim b.radius)
      "B" dtype dims
  in
  let kernel =
    Builder.shaped_kernel ~name:("S_" ^ b.name) ~shape:b.shape ~radius:b.radius grid
  in
  if b.time_dep = 2 then Builder.two_step ~name:b.name kernel
  else Builder.single_step ~name:b.name kernel

(* ------------------------------------------------------------------ *)
(* Multi-stage pipeline graphs: image-processing DAGs exercising the   *)
(* graph passes (dead-stage elimination, fusion, shared-halo merge).   *)

module G = Msc_graph.Graph

let pipeline_names = [ "unsharp_mask"; "harris_corner" ]
let default_pipeline_dims = [| 1024; 1024 |]

let stage name k = { G.name; stencil = Stencil.of_kernel k }

(* Unsharp masking: sharp = (1 + a) I - a blur(blur(I)), the blur split
   into two box passes so fusion has a chain to collapse, plus an unused
   edge-detect stage for dead-stage elimination to drop. *)
let unsharp_mask ~dtype ~dims =
  let halo = [| 1; 1 |] in
  let sp name = Tensor.sp ~halo name dtype dims in
  let src = sp "I" in
  let t_blur1 = sp "blur1" in
  let t_blur2 = sp "blur2" in
  let amount = 0.4 in
  let sharp_expr =
    let open Expr in
    Binop
      ( Sub,
        Binop (Mul, Fconst (1.0 +. amount), read "I" [| 0; 0 |]),
        Binop (Mul, Fconst amount, read "blur2" [| 0; 0 |]) )
  in
  let sharp =
    Kernel.make ~aux:[ src ] ~name:"K_sharp" ~input:t_blur2
      ~index_vars:(Builder.default_index_vars 2)
      sharp_expr
  in
  G.make ~source:src ~output:"sharp"
    [
      stage "blur1" (Builder.box_kernel ~name:"K_blur1" ~radius:1 src);
      stage "blur2" (Builder.box_kernel ~name:"K_blur2" ~radius:1 t_blur1);
      stage "edges" (Builder.star_kernel ~name:"K_edges" ~radius:1 src);
      stage "sharp" sharp;
    ]

(* Harris corner response: gradients, their pairwise products, box-summed
   structure tensor, then the nonlinear det/trace response — nine stages
   whose single-consumer chains all fold into one compound kernel. *)
let harris_corner ~dtype ~dims =
  let halo = [| 1; 1 |] in
  let sp name = Tensor.sp ~halo name dtype dims in
  let src = sp "I" in
  let t_ix = sp "ix" in
  let t_iy = sp "iy" in
  let t_ixx = sp "ixx" in
  let t_iyy = sp "iyy" in
  let t_ixy = sp "ixy" in
  let t_sxx = sp "sxx" in
  let t_syy = sp "syy" in
  let t_sxy = sp "sxy" in
  let ivars = Builder.default_index_vars 2 in
  let deriv name input d =
    let off s = Array.mapi (fun k _ -> if k = d then s else 0) dims in
    let open Expr in
    Kernel.make ~name ~input ~index_vars:ivars
      (Binop
         ( Sub,
           Binop (Mul, Fconst 0.5, read input.Tensor.name (off 1)),
           Binop (Mul, Fconst 0.5, read input.Tensor.name (off (-1))) ))
  in
  let product name input ?aux other =
    let open Expr in
    let aux_t = Option.to_list aux in
    Kernel.make ~aux:aux_t ~name ~input ~index_vars:ivars
      (Binop
         (Mul, read input.Tensor.name [| 0; 0 |], read other [| 0; 0 |]))
  in
  let response =
    (* det(M) - k tr(M)^2 with k = 0.04 *)
    let open Expr in
    let sxx = read "sxx" [| 0; 0 |]
    and syy = read "syy" [| 0; 0 |]
    and sxy = read "sxy" [| 0; 0 |] in
    let det = Binop (Sub, Binop (Mul, sxx, syy), Binop (Mul, sxy, sxy)) in
    let tr = Binop (Add, sxx, syy) in
    Kernel.make ~aux:[ t_syy; t_sxy ] ~name:"K_response" ~input:t_sxx
      ~index_vars:ivars
      (Binop (Sub, det, Binop (Mul, Fconst 0.04, Binop (Mul, tr, tr))))
  in
  G.make ~source:src ~output:"response"
    [
      stage "ix" (deriv "K_dx" src 0);
      stage "iy" (deriv "K_dy" src 1);
      stage "ixx" (product "K_ixx" t_ix "ix");
      stage "iyy" (product "K_iyy" t_iy "iy");
      stage "ixy" (product "K_ixy" t_ix ~aux:t_iy "iy");
      stage "sxx" (Builder.box_kernel ~name:"K_sxx" ~radius:1 t_ixx);
      stage "syy" (Builder.box_kernel ~name:"K_syy" ~radius:1 t_iyy);
      stage "sxy" (Builder.box_kernel ~name:"K_sxy" ~radius:1 t_ixy);
      stage "response" response;
    ]

let pipeline ?(dtype = Dtype.F64) ?dims name =
  let dims = match dims with Some d -> d | None -> default_pipeline_dims in
  let builder =
    match
      List.find_opt (fun n -> String.equal n name) pipeline_names
    with
    | Some n -> Some n
    | None -> (
        let is_prefix n =
          String.length name <= String.length n
          && String.equal name (String.sub n 0 (String.length name))
        in
        match List.filter is_prefix pipeline_names with
        | [ n ] -> Some n
        | _ -> None)
  in
  match builder with
  | Some "unsharp_mask" -> unsharp_mask ~dtype ~dims
  | Some "harris_corner" -> harris_corner ~dtype ~dims
  | _ -> raise Not_found

let kernel_of (st : Stencil.t) =
  match Stencil.kernels st with
  | [ k ] -> k
  | k :: _ -> k
  | [] -> invalid_arg "Suite.kernel_of: no kernel"

let measured_read_bytes b = Kernel.read_bytes_per_point (kernel_of (stencil b))
let measured_ops b = Kernel.flops_per_point (kernel_of (stencil b))
