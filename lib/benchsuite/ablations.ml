module Table = Msc_util.Table
module Ssim = Msc_sunway.Sim
module Schedule = Msc_schedule.Schedule
module Decomp = Msc_comm.Decomp
module Inspector = Msc_comm.Inspector

(* ------------------------------------------------------------------ *)
(* Double-buffered streaming (§5.6) *)

type streaming_row = {
  benchmark : string;
  baseline_ms : float;
  streamed_ms : float option;
  speedup : float option;
}

let streaming () =
  List.map
    (fun b ->
      let st = Suite.stencil b in
      let sched = Settings.sunway_schedule b st in
      let baseline =
        match Ssim.simulate st sched with
        | Ok r -> r.Ssim.time_per_step_s
        | Error msg -> invalid_arg ("Ablations.streaming: " ^ msg)
      in
      let streamed =
        let overrides = { Ssim.default_overrides with Ssim.double_buffer = true } in
        match Ssim.simulate ~overrides st sched with
        | Ok r -> Some r.Ssim.time_per_step_s
        | Error _ -> None (* two buffer sets overflow the SPM at this tile *)
      in
      {
        benchmark = b.Suite.name;
        baseline_ms = baseline *. 1e3;
        streamed_ms = Option.map (fun s -> s *. 1e3) streamed;
        speedup = Option.map (fun s -> baseline /. s) streamed;
      })
    Suite.all

(* ------------------------------------------------------------------ *)
(* Tile-size sweep *)

type tile_row = {
  tile : int array;
  time_ms : float;
  gflops : float;
  spm_utilization : float;
  dma_descriptors : int;
}

let tile_sweep ?(bench_name = "3d7pt_star") () =
  let b = Suite.find bench_name in
  let st = Suite.stencil b in
  let kernel = Suite.kernel_of st in
  let candidates =
    [
      [| 1; 1; 64 |]; [| 1; 2; 64 |]; [| 1; 4; 64 |]; [| 2; 4; 64 |];
      [| 2; 8; 64 |]; [| 2; 8; 128 |]; [| 4; 8; 64 |]; [| 2; 16; 64 |];
    ]
  in
  List.filter_map
    (fun tile ->
      let sched = Schedule.sunway_canonical ~tile kernel in
      match Ssim.simulate st sched with
      | Ok r ->
          Some
            {
              tile;
              time_ms = r.Ssim.time_per_step_s *. 1e3;
              gflops = r.Ssim.gflops;
              spm_utilization = r.Ssim.counters.Ssim.spm_utilization;
              dma_descriptors = r.Ssim.counters.Ssim.dma_descriptors;
            }
      | Error _ -> None)
    candidates

(* ------------------------------------------------------------------ *)
(* Inspector-executor load balancing (§5.6) *)

type imbalance_row = {
  skew : float;
  even_imbalance : float;
  inspected_imbalance : float;
}

let load_balance ?(ranks = 16) ?(slabs = 256) () =
  List.map
    (fun skew ->
      (* A POP2-style profile: a band of expensive slabs (ocean) in a cheap
         background (land), [skew] times costlier. *)
      let costs =
        Array.init slabs (fun i ->
            if i >= slabs / 5 && i < slabs / 2 then skew else 1.0)
      in
      let even = Inspector.even_plan ~costs ~parts:ranks in
      let inspected = Inspector.partition ~costs ~parts:ranks in
      {
        skew;
        even_imbalance = even.Inspector.imbalance;
        inspected_imbalance = inspected.Inspector.imbalance;
      })
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ]

(* ------------------------------------------------------------------ *)
(* Trace-driven cache validation *)

type trace_row = { label : string; untiled_miss : float; tiled_miss : float }

let cache_trace () =
  let study label ~grid ~kernel ~tile =
    let cache () = Msc_matrix.Cache.Lru.create ~capacity_bytes:2048 () in
    ignore grid;
    let untiled =
      Msc_matrix.Trace.sweep_miss_rate ~cache:(cache ()) kernel Schedule.empty
    in
    let tiled =
      Msc_matrix.Trace.sweep_miss_rate ~cache:(cache ())
        kernel
        (Schedule.matrix_canonical ~tile ~threads:1 kernel)
    in
    {
      label;
      untiled_miss = untiled.Msc_matrix.Trace.miss_rate;
      tiled_miss = tiled.Msc_matrix.Trace.miss_rate;
    }
  in
  let g1 = Msc_frontend.Builder.def_tensor_2d ~halo:1 "B" Msc_ir.Dtype.F64 256 256 in
  let k1 = Msc_frontend.Builder.box_kernel ~name:"K" ~radius:1 g1 in
  let g2 = Msc_frontend.Builder.def_tensor_2d ~halo:2 "B" Msc_ir.Dtype.F64 256 256 in
  let k2 = Msc_frontend.Builder.star_kernel ~name:"K" ~radius:2 g2 in
  [
    study "2d9pt_box 256^2, 2 KiB LRU" ~grid:g1 ~kernel:k1 ~tile:[| 16; 16 |];
    study "2d9pt_star 256^2, 2 KiB LRU" ~grid:g2 ~kernel:k2 ~tile:[| 16; 16 |];
  ]

(* ------------------------------------------------------------------ *)
(* Exchange direction set *)

let exchange_directions () =
  List.map
    (fun b ->
      let nd = b.Suite.ndim in
      let procs = Array.make nd 4 in
      let d =
        Decomp.create
          ~global:(Array.map (fun n -> max n 4) (Suite.default_dims b))
          ~ranks_shape:procs
      in
      let count ~faces_only =
        let dirs = Decomp.directions ~ndim:nd ~faces_only in
        let acc = ref 0 in
        for rank = 0 to d.Decomp.nranks - 1 do
          List.iter
            (fun dir ->
              match Decomp.neighbor d ~rank ~dir with
              | Some _ -> incr acc
              | None -> ())
            dirs
        done;
        !acc
      in
      (b.Suite.name, count ~faces_only:true, count ~faces_only:false))
    Suite.all

(* ------------------------------------------------------------------ *)

let ints a = String.concat "," (Array.to_list (Array.map string_of_int a))

let render_all () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Table.render
       ~title:
         "Ablation: double-buffered tile streaming on Sunway (§5.6 extension;\n\
          n/a = two buffer sets exceed the 64 KB SPM at the Table 5 tile)"
       ~header:[ "Benchmark"; "baseline ms"; "streamed ms"; "speedup" ]
       (List.map
          (fun r ->
            [
              r.benchmark;
              Table.fmt_float r.baseline_ms;
              (match r.streamed_ms with Some s -> Table.fmt_float s | None -> "n/a");
              (match r.speedup with Some s -> Table.fmt_speedup s | None -> "n/a");
            ])
          (streaming ())));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Table.render ~title:"Ablation: tile-size sweep, 3d7pt_star on a Sunway CG"
       ~header:[ "Tile"; "ms/step"; "GFlop/s"; "SPM util"; "DMA descriptors" ]
       (List.map
          (fun r ->
            [
              "(" ^ ints r.tile ^ ")";
              Table.fmt_float r.time_ms;
              Table.fmt_float r.gflops;
              Printf.sprintf "%.0f%%" (r.spm_utilization *. 100.0);
              string_of_int r.dma_descriptors;
            ])
          (tile_sweep ())));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Table.render
       ~title:
         "Ablation: inspector-executor vs uniform blocks (max/mean rank cost;\n\
          synthetic POP2-style band profile, 256 slabs over 16 ranks)"
       ~header:[ "Skew"; "uniform imbalance"; "inspected imbalance" ]
       (List.map
          (fun r ->
            [
              Table.fmt_float r.skew;
              Table.fmt_float r.even_imbalance;
              Table.fmt_float r.inspected_imbalance;
            ])
          (load_balance ())));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Table.render
       ~title:
         "Ablation: trace-driven cache check (measured LRU miss rates; tiling\n\
          must win once the row working set exceeds the cache)"
       ~header:[ "Configuration"; "untiled miss"; "tiled miss" ]
       (List.map
          (fun r ->
            [
              r.label;
              Printf.sprintf "%.2f%%" (r.untiled_miss *. 100.0);
              Printf.sprintf "%.2f%%" (r.tiled_miss *. 100.0);
            ])
          (cache_trace ())));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Table.render
       ~title:"Ablation: halo-exchange direction set (messages per step, 4^d process grid)"
       ~header:[ "Benchmark"; "faces only"; "all directions" ]
       (List.map
          (fun (name, faces, all) ->
            [ name; string_of_int faces; string_of_int all ])
          (exchange_directions ())));
  Buffer.contents buf
