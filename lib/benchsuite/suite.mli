(** The paper's stencil benchmark suite (Table 4): eight stencils spanning
    2-D/3-D, star/box shapes and computation orders, each with two time
    dependencies. *)

type bench = {
  name : string;
  shape : Msc_frontend.Shapes.shape;
  ndim : int;
  radius : int;
  paper_read_bytes : int;  (** Table 4 "Read(Byte)" *)
  paper_write_bytes : int;
  paper_ops : int;  (** Table 4 "Ops(+-x)" *)
  time_dep : int;
}

val all : bench list
(** In Table 4 order: 2d9pt_star, 2d9pt_box, 2d121pt_box, 2d169pt_box,
    3d7pt_star, 3d13pt_star, 3d25pt_star, 3d31pt_star. *)

val find : string -> bench
(** Exact name, or any unambiguous prefix (["3d7pt"] finds ["3d7pt_star"];
    ["2d9pt"] is ambiguous).
    @raise Not_found for unknown or ambiguous names. *)

val default_dims : bench -> int array
(** Evaluation grids of §5.2: 4096^2 for 2-D, 256^3 for 3-D. *)

val stencil : ?dtype:Msc_ir.Dtype.t -> ?dims:int array -> bench -> Msc_ir.Stencil.t
(** Builds the benchmark as an MSC stencil: a shaped kernel with distinct
    coefficients and the canonical two-time-dependency combination
    [Res\[t\] << 0.5 S\[t-1\] + 0.5 S\[t-2\]]. Default dtype f64. *)

(** {1 Pipeline graphs}

    Multi-stage image-processing DAGs for the graph IR and its passes. *)

val pipeline_names : string list
(** [["unsharp_mask"; "harris_corner"]]. [unsharp_mask] is four stages
    (two chained box blurs, an unused edge-detect stage, and the
    [(1+a)I - a blur] combine) — dead-stage elimination drops one and
    fusion collapses the rest to a single radius-2 compound stage.
    [harris_corner] is nine (x/y gradients, their three pairwise
    products, box-summed structure tensor, nonlinear det/trace
    response); its single-consumer chains all fold into one stage. *)

val default_pipeline_dims : int array
(** 1024 x 1024 (pipelines are 2-D; smaller than {!default_dims} since a
    naive run sweeps every stage). *)

val pipeline :
  ?dtype:Msc_ir.Dtype.t -> ?dims:int array -> string -> Msc_graph.Graph.t
(** Build a pipeline by name (or unambiguous prefix), {e unoptimized} —
    run {!Msc_graph.Pass.default_pipeline} (or {!Pipeline.of_graph}) to
    fuse it. @raise Not_found for unknown or ambiguous names. *)

val kernel_of : Msc_ir.Stencil.t -> Msc_ir.Kernel.t
(** The benchmark's single kernel. *)

val measured_read_bytes : bench -> int
(** IR-derived per-kernel-application read bytes (should equal
    [paper_read_bytes]). *)

val measured_ops : bench -> int
(** IR-derived kernel op count ([2N - 1] with distinct coefficients; the
    paper's high-order kernels share coefficients, so its Table 4 lists
    slightly fewer — both are reported). *)
