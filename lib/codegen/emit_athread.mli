(** Sunway (SW26010) code generation: an athread master/slave pair.

    The master translation unit owns allocation, the sliding-window time loop
    and the per-step [athread_spawn]; the slave unit maps the plan's tile
    tasks to CPEs round-robin ([task_id % 64 == my_id], §4.3), stages each
    padded tile into scratchpad buffers with row-wise DMA gets, computes
    locally, and DMA-puts the tile back — the realisation of the
    [cache_read]/[cache_write]/[compute_at] primitives. Tile extents, task
    count and CPE count all come from the lowered {!Msc_schedule.Plan.t}
    (whose [working_set_bytes] is the scratchpad footprint the backend
    checks against the SPM capacity). *)

val generate_master : ?steps:int -> Msc_schedule.Plan.t -> string

val generate_slave :
  ?config:Msc_exec.Exec.Config.t -> Msc_schedule.Plan.t -> string
(** [config] selects the shape of the per-point compute, mirroring the host
    runtime's kernel dispatch: a compiled backend with [fuse] on writes each
    output point as one fused summed expression (the whole-sweep kernel);
    the default [Interp] backend — or [fuse] off — writes the first term
    then [+=]s the remaining terms in declaration order, matching the
    interpreter's per-term accumulation (and its float addition order)
    exactly. *)
