(** C code generation for homogeneous targets: plain C (serial) and
    OpenMP-annotated C for the Matrix MT2000+ and commodity CPUs. *)

val generate :
  ?steps:int -> ?bc:Msc_exec.Bc.t -> omp:bool -> Msc_schedule.Plan.t -> string
(** One self-contained translation unit: prelude, init/report helpers, the
    [msc_step] whose loop nest walks [plan.loops], and a [main] with the
    sliding-window time loop. With [omp], the plan's parallel loop receives
    an [#pragma omp parallel for] annotation. [steps] is the default
    timestep count (overridable by [argv\[1\]]; default 10). *)
