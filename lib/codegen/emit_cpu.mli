(** C code generation for homogeneous targets: plain C (serial) and
    OpenMP-annotated C for the Matrix MT2000+ and commodity CPUs. *)

val generate :
  ?steps:int ->
  ?bc:Msc_exec.Bc.t ->
  ?config:Msc_exec.Exec.Config.t ->
  omp:bool ->
  Msc_schedule.Plan.t ->
  string
(** One self-contained translation unit: prelude, init/report helpers, the
    [msc_step], and a [main] with the sliding-window time loop. With [omp],
    the parallel loop receives an [#pragma omp parallel for] annotation.
    [steps] is the default timestep count (overridable by [argv\[1\]];
    default 10).

    [config] selects the [msc_step] body. With a compiled backend and
    [fuse] on, the unit embeds the {e same} fused whole-sweep function the
    [Compiled_c] backend JITs at runtime ({!Msc_exec.Jit.emit_c_sweep}):
    [msc_step] bakes the plan's tile task boxes as static arrays and calls
    the fused kernel once per task, the task loop carrying the OpenMP
    pragma. With the default [Interp] backend (or [fuse] off, a
    non-double grid, or a form the fused emitter rejects), [msc_step] is
    the per-point assignment whose loop nest walks [plan.loops]. *)
