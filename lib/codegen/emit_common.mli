(** Pieces shared by all code-generation targets: stencil-term flattening,
    index macros, initial-condition and checksum code, and the scheduled loop
    nest emission. *)

type term = { scale : float; kernel : Msc_ir.Kernel.t option; dt : int }
(** One additive term of the stencil combination; [kernel = None] is the
    identity (raw state) term. *)

val flatten_terms : Msc_ir.Stencil.t -> term list

val aux_tensors : Msc_ir.Stencil.t -> Msc_ir.Tensor.t list
(** Distinct coefficient grids read by the stencil's kernels (multi-grid
    stencils, §5.6). Their C parameter name is the tensor name. *)

val state_var : int -> string
(** C identifier for the input-state pointer at [t-dt]: ["s1"], ["s2"], ... *)

val dims_of : Msc_ir.Stencil.t -> int array
val halo_of : Msc_ir.Stencil.t -> int array

val elem_type : Msc_ir.Stencil.t -> string
(** The C scalar type of the grid ([ELEM] expands to it). *)

val emit_prelude : C_writer.t -> Msc_ir.Stencil.t -> unit
(** [#include]s, dimension/halo/padded macros, the [IDX] macro, element
    count macros, and the C scalar type macro [ELEM]. *)

val emit_aux_init_fns : C_writer.t -> Msc_ir.Stencil.t -> unit
(** One [static void msc_init_aux_<name>(ELEM *g)] per coefficient grid,
    writing {!Msc_exec.Runtime.default_aux_init}'s closed form over the
    padded box (halo included). *)

val emit_init_fn : C_writer.t -> Msc_ir.Stencil.t -> unit
(** [static void msc_init(ELEM *g)]: writes the deterministic initial field
    used by the OCaml runtime ({!Msc_exec.Runtime.default_init}) into the
    interior, zeroing the halo, so generated binaries are comparable
    bit-for-bit in spirit with the interpreter. *)

val emit_checksum_fn : C_writer.t -> Msc_ir.Stencil.t -> unit
(** [static void msc_report(const ELEM *g)]: prints ["checksum %.17g maxabs
    %.17g"] over the interior. *)

val subst_params : (string * float) list -> Msc_ir.Expr.t -> Msc_ir.Expr.t
(** Fold coefficient bindings into the expression as float constants.
    @raise Invalid_argument on an unbound parameter. *)

val point_assignment : Msc_ir.Stencil.t -> vars:string list -> string
(** The innermost statement: [out[IDX(...)] = term + term + ...;] with each
    kernel expression inlined against its state pointer and coefficient
    bindings folded in. *)

val emit_scheduled_loops :
  C_writer.t ->
  Msc_ir.Stencil.t ->
  plan:Msc_schedule.Plan.t ->
  pragma:(units:int -> string option) ->
  body:(vars:string list -> unit) ->
  unit
(** Emits the loop nest by walking [plan.loops] — the lowered nest the
    simulators cost — tiled with clamped inner bounds when the plan has
    [Outer]/[Inner] roles. [pragma] is asked for an annotation to place
    before the parallel loop. [body] receives the C names of the point
    coordinates, outermost dimension first. *)

val emit_bc_fn : C_writer.t -> Msc_ir.Stencil.t -> bc:Msc_exec.Bc.t -> unit
(** [static void msc_apply_bc(ELEM *g)] refreshing the halo per the boundary
    condition. Emits nothing for [Dirichlet 0.0] (the zero halo the
    allocation already provides). *)

val bc_is_trivial : Msc_exec.Bc.t -> bool

val step_params : Msc_ir.Stencil.t -> string
(** The C parameter list of [msc_step]: one input-state pointer per retained
    timestep, one pointer per coefficient grid, then the output pointer. *)

val emit_time_loop :
  ?bc:Msc_exec.Bc.t -> C_writer.t -> Msc_ir.Stencil.t -> steps_expr:string -> unit
(** The sliding-window main loop: window + coefficient-grid allocation,
    rotation, per-step call to [msc_step], and final report. Assumes
    [msc_step] and the init/report helpers were emitted. *)
