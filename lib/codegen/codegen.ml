open Msc_ir
module Plan = Msc_schedule.Plan
module Machine = Msc_machine.Machine

type target = Cpu | Openmp | Athread

type file = { name : string; contents : string }

let target_of_string = function
  | "cpu" | "c" -> Ok Cpu
  | "openmp" | "matrix" | "omp" -> Ok Openmp
  | "athread" | "sunway" -> Ok Athread
  | s -> Error (Printf.sprintf "unknown target %S (expected cpu|openmp|sunway)" s)

let target_to_string = function Cpu -> "cpu" | Openmp -> "openmp" | Athread -> "sunway"

(* Each backend is lowered against the machine descriptor it targets, so
   capacity guards (SPM, caches) come from the same source the simulators
   and autotuner use. *)
let machine_of_target = function
  | Cpu -> Machine.xeon_server
  | Openmp -> Machine.matrix_node
  | Athread -> Machine.sunway_cg

let default_spm_capacity_bytes = 64 * 1024

let generate ?steps ?(bc = Msc_exec.Bc.Dirichlet 0.0) ?config (st : Stencil.t)
    schedule target =
  let machine = machine_of_target target in
  let plan =
    match Plan.compile ~machine st schedule with
    | Ok p -> p
    | Error msg -> invalid_arg ("Codegen.generate: " ^ msg)
  in
  let name = st.Stencil.name in
  match target with
  | Cpu ->
      [
        {
          name = name ^ ".c";
          contents = Emit_cpu.generate ?steps ~bc ?config ~omp:false plan;
        };
        { name = "Makefile"; contents = Makefile_gen.cpu ~name };
      ]
  | Openmp ->
      [
        {
          name = name ^ ".c";
          contents = Emit_cpu.generate ?steps ~bc ?config ~omp:true plan;
        };
        { name = "Makefile"; contents = Makefile_gen.openmp ~name };
      ]
  | Athread ->
      if not (Emit_common.bc_is_trivial bc) then
        invalid_arg
          "Codegen.generate: non-default boundary conditions are not emitted for the            Sunway target yet";
      let footprint = plan.Plan.working_set_bytes in
      let capacity =
        Option.value plan.Plan.spm_capacity_bytes ~default:default_spm_capacity_bytes
      in
      if footprint > capacity then
        invalid_arg
          (Printf.sprintf
             "Codegen.generate: schedule needs %d B of scratchpad but the CPE SPM is %d B"
             footprint capacity);
      [
        {
          name = name ^ "_master.c";
          contents = Emit_athread.generate_master ?steps plan;
        };
        {
          name = name ^ "_slave.c";
          contents = Emit_athread.generate_slave ?config plan;
        };
        { name = "Makefile"; contents = Makefile_gen.athread ~name };
      ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let write_files ~dir files =
  mkdir_p dir;
  List.iter
    (fun f ->
      let oc = open_out (Filename.concat dir f.name) in
      output_string oc f.contents;
      close_out oc)
    files

let total_loc files =
  List.fold_left
    (fun acc f ->
      acc
      + List.length
          (List.filter
             (fun l -> String.length (String.trim l) > 0)
             (String.split_on_char '\n' f.contents)))
    0 files

module Toolchain = struct
  type run_result = { checksum : float; maxabs : float; output : string }

  let command_output cmd =
    let tmp = Filename.temp_file "msc_toolchain" ".out" in
    let rc = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote tmp)) in
    let ic = open_in tmp in
    let n = in_channel_length ic in
    let out = really_input_string ic n in
    close_in ic;
    Sys.remove tmp;
    (rc, out)

  let available () =
    let rc, _ = command_output "cc --version" in
    rc = 0

  let parse_report output =
    (* Find the "checksum <x> maxabs <y>" line the generated report emits. *)
    let lines = String.split_on_char '\n' output in
    let parsed =
      List.find_map
        (fun l ->
          match String.split_on_char ' ' (String.trim l) with
          | [ "checksum"; c; "maxabs"; m ] -> (
              match (float_of_string_opt c, float_of_string_opt m) with
              | Some c, Some m -> Some (c, m)
              | _ -> None)
          | _ -> None)
        lines
    in
    match parsed with
    | Some (checksum, maxabs) -> Ok { checksum; maxabs; output }
    | None -> Error (Printf.sprintf "no report line in output:\n%s" output)

  let compile_and_run ?(cc = "cc") ?steps ~dir files =
    write_files ~dir files;
    match List.find_opt (fun f -> Filename.check_suffix f.name ".c") files with
    | None -> Error "no .c file in bundle"
    | Some src ->
        let uses_omp =
          let needle = "#pragma omp" in
          let len = String.length needle in
          let s = src.contents in
          let rec scan i =
            i + len <= String.length s
            && (String.equal (String.sub s i len) needle || scan (i + 1))
          in
          scan 0
        in
        let exe = Filename.concat dir "msc_generated" in
        let cmd =
          Printf.sprintf "%s -O2 -std=c11 %s -o %s %s -lm" cc
            (if uses_omp then "-fopenmp" else "")
            (Filename.quote exe)
            (Filename.quote (Filename.concat dir src.name))
        in
        let rc, compile_out = command_output cmd in
        if rc <> 0 then Error (Printf.sprintf "compile failed (%d):\n%s" rc compile_out)
        else begin
          let run_cmd =
            match steps with
            | Some n -> Printf.sprintf "%s %d" (Filename.quote exe) n
            | None -> Filename.quote exe
          in
          let rc, run_out = command_output run_cmd in
          if rc <> 0 then Error (Printf.sprintf "run failed (%d):\n%s" rc run_out)
          else parse_report run_out
        end
end
