open Msc_ir
module Schedule = Msc_schedule.Schedule
module Plan = Msc_schedule.Plan

let cpes_of (plan : Plan.t) =
  match plan.Plan.parallel with
  | Plan.Seq -> 64
  | Plan.Block n | Plan.Round_robin n -> n

let radius_of (st : Stencil.t) = Stencil.radius st

let distinct_dts (st : Stencil.t) =
  List.sort_uniq compare
    (List.map (fun (t : Emit_common.term) -> t.Emit_common.dt) (Emit_common.flatten_terms st))

let args_struct (st : Stencil.t) =
  let tw = Stencil.time_window st in
  let fields =
    List.init tw (fun k -> Printf.sprintf "const ELEM *s%d;" (k + 1))
    @ List.map
        (fun (tensor : Tensor.t) -> Printf.sprintf "const ELEM *%s;" tensor.Tensor.name)
        (Emit_common.aux_tensors st)
  in
  Printf.sprintf "typedef struct { %s ELEM *out; } msc_step_args;"
    (String.concat " " fields)

let generate_master ?(steps = 10) (plan : Plan.t) =
  let st : Stencil.t = plan.Plan.stencil in
  let w = C_writer.create () in
  Emit_common.emit_prelude w st;
  C_writer.line w "#include <athread.h>";
  C_writer.blank w;
  C_writer.line w "%s" (args_struct st);
  C_writer.line w "extern void SLAVE_FUN(msc_step_slave)(msc_step_args *);";
  C_writer.blank w;
  Emit_common.emit_init_fn w st;
  C_writer.blank w;
  Emit_common.emit_checksum_fn w st;
  C_writer.blank w;
  Emit_common.emit_aux_init_fns w st;
  let tw = Stencil.time_window st in
  let auxes = Emit_common.aux_tensors st in
  let params =
    String.concat ", "
      (List.init tw (fun k -> Printf.sprintf "const ELEM *s%d" (k + 1))
      @ List.map
          (fun (tensor : Tensor.t) -> Printf.sprintf "const ELEM *%s" tensor.Tensor.name)
          auxes)
  in
  C_writer.block w (Printf.sprintf "static void msc_step(%s, ELEM *out)" params)
    (fun () ->
      let inits =
        String.concat ", "
          (List.init tw (fun k -> Printf.sprintf "s%d" (k + 1))
          @ List.map (fun (tensor : Tensor.t) -> tensor.Tensor.name) auxes)
      in
      C_writer.line w "msc_step_args args = { %s, out };" inits;
      C_writer.line w "athread_spawn(msc_step_slave, &args);";
      C_writer.line w "athread_join();");
  C_writer.blank w;
  (* Same ring-buffer main as the CPU target, wrapped with athread init/halt. *)
  C_writer.block w "static int msc_run(int steps)" (fun () ->
      C_writer.line w "ELEM *win[%d];" (tw + 1);
      C_writer.block w (Printf.sprintf "for (int b = 0; b < %d; ++b)" (tw + 1))
        (fun () -> C_writer.line w "win[b] = (ELEM *)malloc(TOTAL * sizeof(ELEM));");
      C_writer.block w (Printf.sprintf "for (int dt = 1; dt <= %d; ++dt)" tw)
        (fun () -> C_writer.line w "msc_init(win[%d - dt]);" tw);
      C_writer.line w "memset(win[%d], 0, TOTAL * sizeof(ELEM));" tw;
      List.iter
        (fun (tensor : Tensor.t) ->
          let name = tensor.Tensor.name in
          C_writer.line w "ELEM *%s = (ELEM *)malloc(TOTAL * sizeof(ELEM));" name;
          C_writer.line w "msc_init_aux_%s(%s);" name name)
        auxes;
      C_writer.line w "int cur = %d;" (tw - 1);
      C_writer.block w "for (int t = 0; t < steps; ++t)" (fun () ->
          C_writer.line w "ELEM *out = win[(cur + 1) %% %d];" (tw + 1);
          C_writer.line w "memset(out, 0, TOTAL * sizeof(ELEM));";
          let args =
            String.concat ", "
              (List.init tw (fun k ->
                   Printf.sprintf "win[(cur - %d + %d) %% %d]" k (tw + 1) (tw + 1))
              @ List.map (fun (tensor : Tensor.t) -> tensor.Tensor.name) auxes)
          in
          C_writer.line w "msc_step(%s, out);" args;
          C_writer.line w "cur = (cur + 1) %% %d;" (tw + 1));
      C_writer.line w "msc_report(win[cur]);";
      C_writer.block w (Printf.sprintf "for (int b = 0; b < %d; ++b)" (tw + 1))
        (fun () -> C_writer.line w "free(win[b]);");
      List.iter
        (fun (tensor : Tensor.t) -> C_writer.line w "free(%s);" tensor.Tensor.name)
        auxes;
      C_writer.line w "return 0;");
  C_writer.blank w;
  C_writer.block w "int main(int argc, char **argv)" (fun () ->
      C_writer.line w "int steps = argc > 1 ? atoi(argv[1]) : %d;" steps;
      C_writer.line w "athread_init();";
      C_writer.line w "int rc = msc_run(steps);";
      C_writer.line w "athread_halt();";
      C_writer.line w "return rc;");
  C_writer.contents w

let generate_slave ?config (plan : Plan.t) =
  (* Mirror the host runtime's kernel dispatch: a compiled backend with
     fusion on executes one fused whole-sweep body, so the slave computes
     each point as a single summed expression; the interpreter (and a
     compiled backend with fusion off) dispatches one kernel per stencil
     term, accumulating into the output — the slave writes the first term
     and [+=]s the rest in the same order, keeping the float addition
     order identical to the host run being cross-checked. *)
  let fused =
    match (config : Msc_exec.Exec.Config.t option) with
    | Some c ->
        c.Msc_exec.Exec.Config.fuse
        && c.Msc_exec.Exec.Config.backend <> Msc_exec.Backend.Interp
    | None -> false
  in
  let st : Stencil.t = plan.Plan.stencil in
  let w = C_writer.create () in
  let dims = Emit_common.dims_of st in
  let nd = Array.length dims in
  let tile = plan.Plan.tile in
  let radius = radius_of st in
  let cpes = cpes_of plan in
  let counts = Array.mapi (fun d t -> (dims.(d) + t - 1) / t) tile in
  let ntasks = plan.Plan.tiles_count in
  Emit_common.emit_prelude w st;
  C_writer.line w "#include <slave.h>";
  C_writer.line w "#include <dma.h>";
  C_writer.blank w;
  C_writer.line w "%s" (args_struct st);
  C_writer.blank w;
  Array.iteri (fun d t -> C_writer.line w "#define T%d %d" d t) tile;
  Array.iteri (fun d c -> C_writer.line w "#define NT%d %d" d c) counts;
  Array.iteri (fun d r -> C_writer.line w "#define R%d %d" d r) radius;
  (* Padded local tile extents for the read buffers. *)
  Array.iteri
    (fun d t -> C_writer.line w "#define L%d %d" d (t + (2 * radius.(d))))
    tile;
  C_writer.line w "#define NTASKS %d" ntasks;
  C_writer.line w "#define CPES %d" cpes;
  let l_total = String.concat " * " (List.init nd (Printf.sprintf "L%d")) in
  let t_total = String.concat " * " (List.init nd (Printf.sprintf "T%d")) in
  C_writer.line w "#define READ_ELEMS (%s)" l_total;
  C_writer.line w "#define WRITE_ELEMS (%s)" t_total;
  (* Local (scratchpad) index macros. *)
  let args_r = String.concat ", " (List.init nd (Printf.sprintf "u%d")) in
  let bidx body = body in
  let build prefix =
    let rec go d acc =
      if d = nd then acc
      else go (d + 1) (Printf.sprintf "(%s) * %s%d + (u%d)" acc prefix d d)
    in
    go 1 "(u0)"
  in
  C_writer.line w "#define BIDX_R(%s) ((size_t)(%s))" args_r (bidx (build "L"));
  C_writer.line w "#define BIDX_W(%s) ((size_t)(%s))" args_r (bidx (build "T"));
  C_writer.blank w;
  let dts = distinct_dts st in
  let auxes = Emit_common.aux_tensors st in
  List.iter
    (fun dt ->
      C_writer.line w "__thread_local ELEM buf_read_%d[READ_ELEMS];" dt)
    dts;
  List.iter
    (fun (tensor : Tensor.t) ->
      C_writer.line w "__thread_local ELEM buf_aux_%s[READ_ELEMS];" tensor.Tensor.name)
    auxes;
  C_writer.line w "__thread_local ELEM buf_write[WRITE_ELEMS];";
  C_writer.blank w;
  C_writer.block w "void msc_step_slave(msc_step_args *a)" (fun () ->
      C_writer.line w "const int my_id = athread_get_id(-1);";
      C_writer.line w "volatile int reply = 0;";
      C_writer.block w
        "for (int task = my_id; task < NTASKS; task += CPES)" (fun () ->
          (* Decode the linear task id into tile coordinates. *)
          C_writer.line w "int rest = task;";
          for d = nd - 1 downto 0 do
            C_writer.line w "const int to%d = rest %% NT%d; rest /= NT%d;" d d d
          done;
          List.iteri
            (fun d _ ->
              C_writer.line w "const int lo%d = to%d * T%d;" d d d;
              C_writer.line w
                "const int len%d = (lo%d + T%d <= N%d) ? T%d : (N%d - lo%d);" d d d d
                d d d)
            (Array.to_list tile);
          C_writer.blank w;
          C_writer.line w "/* compute_at(buffer_read, %so): stage padded tiles into SPM */"
            (List.nth (Schedule.dim_names nd) (nd - 1));
          C_writer.line w "reply = 0;";
          C_writer.line w "int rows = 0;";
          (* Row-wise DMA gets: rows run over all but the last dimension of
             the padded tile; each row is a contiguous run. *)
          let row_loops body =
            let rec go d =
              if d = nd - 1 then body ()
              else
                C_writer.block w
                  (Printf.sprintf
                     "for (int u%d = 0; u%d < len%d + 2 * R%d; ++u%d)" d d d d d)
                  (fun () -> go (d + 1))
            in
            go 0
          in
          let stage ~field ~buffer =
            row_loops (fun () ->
                let src_coords =
                  String.concat ", "
                    (List.init nd (fun d ->
                         if d = nd - 1 then Printf.sprintf "lo%d - R%d" d d
                         else Printf.sprintf "lo%d - R%d + u%d" d d d))
                in
                let dst_coords =
                  String.concat ", "
                    (List.init nd (fun d ->
                         if d = nd - 1 then "0" else Printf.sprintf "u%d" d))
                in
                C_writer.line w
                  "athread_get(PE_MODE, (void *)&a->%s[IDX(%s)], &%s[BIDX_R(%s)], (len%d + 2 * R%d) * sizeof(ELEM), (void *)&reply, 0, 0, 0);"
                  field src_coords buffer dst_coords (nd - 1) (nd - 1);
                C_writer.line w "rows++;")
          in
          List.iter
            (fun dt ->
              stage ~field:(Printf.sprintf "s%d" dt)
                ~buffer:(Printf.sprintf "buf_read_%d" dt))
            dts;
          List.iter
            (fun (tensor : Tensor.t) ->
              stage ~field:tensor.Tensor.name
                ~buffer:("buf_aux_" ^ tensor.Tensor.name))
            auxes;
          C_writer.line w "while (reply < rows) ; /* wait for DMA gets */";
          C_writer.blank w;
          C_writer.line w "/* compute the tile entirely out of SPM */";
          let rec compute_loops d =
            if d = nd then begin
              let vars = List.init nd (Printf.sprintf "u%d") in
              let write_coords = String.concat ", " vars in
              let terms = Emit_common.flatten_terms st in
              let input_name = st.Stencil.grid.Tensor.name in
              let render (t : Emit_common.term) =
                let buffer = Printf.sprintf "buf_read_%d" t.Emit_common.dt in
                let index (acc : Expr.access) =
                  let array =
                    if String.equal acc.Expr.tensor input_name then buffer
                    else "buf_aux_" ^ acc.Expr.tensor
                  in
                  let subs =
                    List.mapi
                      (fun d v ->
                        let off = acc.Expr.offsets.(d) in
                        Printf.sprintf "%s + R%d + (%d)" v d off)
                      vars
                  in
                  Printf.sprintf "%s[BIDX_R(%s)]" array (String.concat ", " subs)
                in
                let body =
                  match t.Emit_common.kernel with
                  | None ->
                      index { Expr.tensor = buffer; offsets = Array.make nd 0 }
                  | Some k ->
                      Expr.to_c ~index
                        (Emit_common.subst_params k.Kernel.bindings k.Kernel.expr)
                in
                if t.Emit_common.scale = 1.0 then Printf.sprintf "(%s)" body
                else Printf.sprintf "%.17g * (%s)" t.Emit_common.scale body
              in
              if fused then
                C_writer.line w "buf_write[BIDX_W(%s)] = (ELEM)(%s);"
                  write_coords
                  (String.concat " + " (List.map render terms))
              else
                List.iteri
                  (fun i t ->
                    C_writer.line w "buf_write[BIDX_W(%s)] %s (ELEM)(%s);"
                      write_coords
                      (if i = 0 then "=" else "+=")
                      (render t))
                  terms
            end
            else
              C_writer.block w
                (Printf.sprintf "for (int u%d = 0; u%d < len%d; ++u%d)" d d d d)
                (fun () -> compute_loops (d + 1))
          in
          compute_loops 0;
          C_writer.blank w;
          C_writer.line w "/* compute_at(buffer_write, ...): flush the tile */";
          C_writer.line w "reply = 0;";
          C_writer.line w "rows = 0;";
          let rec put_loops d =
            if d = nd - 1 then begin
              let src_coords =
                String.concat ", "
                  (List.init nd (fun d -> if d = nd - 1 then "0" else Printf.sprintf "u%d" d))
              in
              let dst_coords =
                String.concat ", "
                  (List.init nd (fun d ->
                       if d = nd - 1 then Printf.sprintf "lo%d" d
                       else Printf.sprintf "lo%d + u%d" d d))
              in
              C_writer.line w
                "athread_put(PE_MODE, &buf_write[BIDX_W(%s)], &a->out[IDX(%s)], len%d * sizeof(ELEM), (void *)&reply, 0, 0);"
                src_coords dst_coords (nd - 1);
              C_writer.line w "rows++;"
            end
            else
              C_writer.block w
                (Printf.sprintf "for (int u%d = 0; u%d < len%d; ++u%d)" d d d d)
                (fun () -> put_loops (d + 1))
          in
          put_loops 0;
          C_writer.line w "while (reply < rows) ; /* wait for DMA puts */"));
  C_writer.contents w
