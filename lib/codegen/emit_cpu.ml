open Msc_ir
module Plan = Msc_schedule.Plan
module Exec = Msc_exec.Exec
module Backend = Msc_exec.Backend
module Jit = Msc_exec.Jit
module Interp = Msc_exec.Interp
module Grid = Msc_exec.Grid

(* The fused whole-sweep body the Compiled_c backend JITs, reused verbatim
   for standalone programs: terms of the stencil update compiled into the
   [Jit.sweep_term] list the fused emitter consumes, plus the aux slot
   layout its [aux] argument expects. [None] when the stencil has no kernel
   term, isn't double-precision, or the emitter rejects a form — the caller
   falls back to the per-point assignment path. *)
let fused_sweep_of (st : Stencil.t) =
  if not (String.equal (Emit_common.elem_type st) "double") then None
  else
    let geometry = Grid.of_tensor st.Stencil.grid in
    let terms = Emit_common.flatten_terms st in
    if not (List.exists (fun t -> t.Emit_common.kernel <> None) terms) then None
    else
      let sweep_terms =
        List.map
          (fun { Emit_common.scale; kernel; dt = _ } ->
            match kernel with
            | None -> Jit.Sweep_state { scale }
            | Some k -> Jit.Sweep_kernel { scale; interp = Interp.compile k ~geometry })
          terms
      in
      match Jit.emit_c_sweep ~fn_name:"msc_sweep" sweep_terms with
      | Error _ -> None
      | Ok src ->
          let aux_slots =
            List.concat_map
              (function
                | Jit.Sweep_state _ -> []
                | Jit.Sweep_kernel { interp; _ } -> Jit.sweep_term_aux_names interp)
              sweep_terms
          in
          Some (terms, src, aux_slots)

(* msc_step as the fused runtime executes it: one call per plan tile task
   into the shared fused sweep function, write-through writeback, the task
   loop carrying the parallel pragma. Task (lo, hi) boxes are baked from
   the same [plan.tasks] array the native runtime dispatches on the pool. *)
let emit_fused_step w (st : Stencil.t) ~(plan : Plan.t) ~omp ~terms ~aux_slots =
  let nd = Array.length st.Stencil.grid.Tensor.shape in
  let tasks = plan.Plan.tasks in
  let nt = Array.length tasks in
  let row a =
    Printf.sprintf "{ %s }"
      (String.concat ", " (Array.to_list (Array.map string_of_int a)))
  in
  C_writer.line w "static const long msc_task_lo[%d][%d] = {" nt nd;
  Array.iter (fun (lo, _) -> C_writer.line w "  %s," (row lo)) tasks;
  C_writer.line w "};";
  C_writer.line w "static const long msc_task_hi[%d][%d] = {" nt nd;
  Array.iter (fun (_, hi) -> C_writer.line w "  %s," (row hi)) tasks;
  C_writer.line w "};";
  C_writer.blank w;
  C_writer.block w
    (Printf.sprintf "static void msc_step(%s)" (Emit_common.step_params st))
    (fun () ->
      let srcs =
        List.map (fun t -> Emit_common.state_var t.Emit_common.dt) terms
      in
      C_writer.line w "const double *msc_srcs[%d] = { %s };" (List.length srcs)
        (String.concat ", " srcs);
      (match aux_slots with
      | [] -> ()
      | slots ->
          C_writer.line w "const double *msc_aux[%d] = { %s };"
            (List.length slots)
            (String.concat ", " slots));
      if omp then begin
        let units =
          match plan.Plan.parallel with
          | Plan.Seq -> 1
          | Plan.Block n | Plan.Round_robin n -> n
        in
        if units > 1 then
          C_writer.raw w
            (Printf.sprintf
               "#pragma omp parallel for num_threads(%d) schedule(static)" units)
      end;
      C_writer.block w (Printf.sprintf "for (int t = 0; t < %d; ++t)" nt)
        (fun () ->
          C_writer.line w "msc_sweep(0, msc_srcs, out, %s, msc_task_lo[t], msc_task_hi[t]);"
            (if aux_slots = [] then "NULL" else "msc_aux")))

let generate ?(steps = 10) ?(bc = Msc_exec.Bc.Dirichlet 0.0)
    ?(config = Exec.Config.default) ~omp (plan : Plan.t) =
  let st : Stencil.t = plan.Plan.stencil in
  let fused =
    if Backend.equal config.Exec.Config.backend Backend.Interp
       || not config.Exec.Config.fuse
    then None
    else fused_sweep_of st
  in
  let w = C_writer.create () in
  Emit_common.emit_prelude w st;
  if omp then begin
    C_writer.line w "#ifdef _OPENMP";
    C_writer.line w "#include <omp.h>";
    C_writer.line w "#endif";
    C_writer.blank w
  end;
  Emit_common.emit_init_fn w st;
  C_writer.blank w;
  Emit_common.emit_aux_init_fns w st;
  Emit_common.emit_bc_fn w st ~bc;
  Emit_common.emit_checksum_fn w st;
  C_writer.blank w;
  (match fused with
  | Some (terms, sweep_src, aux_slots) ->
      C_writer.raw w sweep_src;
      C_writer.blank w;
      emit_fused_step w st ~plan ~omp ~terms ~aux_slots
  | None ->
      C_writer.block w
        (Printf.sprintf "static void msc_step(%s)" (Emit_common.step_params st))
        (fun () ->
          let pragma ~units =
            if omp then
              Some
                (Printf.sprintf
                   "#pragma omp parallel for num_threads(%d) schedule(static)"
                   units)
            else None
          in
          Emit_common.emit_scheduled_loops w st ~plan ~pragma ~body:(fun ~vars ->
              C_writer.line w "%s" (Emit_common.point_assignment st ~vars))));
  C_writer.blank w;
  Emit_common.emit_time_loop ~bc w st ~steps_expr:(string_of_int steps);
  C_writer.contents w
