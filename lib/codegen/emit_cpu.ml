open Msc_ir
module Plan = Msc_schedule.Plan

let generate ?(steps = 10) ?(bc = Msc_exec.Bc.Dirichlet 0.0) ~omp
    (plan : Plan.t) =
  let st : Stencil.t = plan.Plan.stencil in
  let w = C_writer.create () in
  Emit_common.emit_prelude w st;
  if omp then begin
    C_writer.line w "#ifdef _OPENMP";
    C_writer.line w "#include <omp.h>";
    C_writer.line w "#endif";
    C_writer.blank w
  end;
  Emit_common.emit_init_fn w st;
  C_writer.blank w;
  Emit_common.emit_aux_init_fns w st;
  Emit_common.emit_bc_fn w st ~bc;
  Emit_common.emit_checksum_fn w st;
  C_writer.blank w;
  C_writer.block w
    (Printf.sprintf "static void msc_step(%s)" (Emit_common.step_params st))
    (fun () ->
      let pragma ~units =
        if omp then
          Some
            (Printf.sprintf "#pragma omp parallel for num_threads(%d) schedule(static)"
               units)
        else None
      in
      Emit_common.emit_scheduled_loops w st ~plan ~pragma ~body:(fun ~vars ->
          C_writer.line w "%s" (Emit_common.point_assignment st ~vars)));
  C_writer.blank w;
  Emit_common.emit_time_loop ~bc w st ~steps_expr:(string_of_int steps);
  C_writer.contents w
