(** AOT backend driver: target dispatch, file bundles, and a host toolchain
    harness that compiles and runs generated CPU/OpenMP code for end-to-end
    validation. *)

type target =
  | Cpu  (** portable serial C *)
  | Openmp  (** Matrix MT2000+ / commodity CPU *)
  | Athread  (** Sunway SW26010 master + slave pair *)

type file = { name : string; contents : string }

val target_of_string : string -> (target, string) result
val target_to_string : target -> string

val machine_of_target : target -> Msc_machine.Machine.t
(** The machine descriptor a target's schedules are lowered against:
    [Cpu] → {!Msc_machine.Machine.xeon_server}, [Openmp] →
    {!Msc_machine.Machine.matrix_node}, [Athread] →
    {!Msc_machine.Machine.sunway_cg}. *)

val generate :
  ?steps:int ->
  ?bc:Msc_exec.Bc.t ->
  ?config:Msc_exec.Exec.Config.t ->
  Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t ->
  target ->
  file list
(** Source file(s) plus a Makefile. The schedule is lowered to a
    {!Msc_schedule.Plan.t} against the target's machine descriptor and the
    emitters walk [plan.loops]. For the [Cpu] and [Openmp] targets,
    [config] with a compiled backend (and [fuse] on, the default) makes the
    generated [msc_step] call the same fused whole-sweep body the runtime
    JIT emits, dispatched over the plan's baked tile tasks — see
    {!Emit_cpu.generate}. For [Athread], [config] picks the slave's
    per-point compute shape — one fused summed expression under a compiled
    backend with [fuse] on, per-term [=]/[+=] accumulation (the
    interpreter's float addition order) otherwise; see
    {!Emit_athread.generate_slave}. The plan's [working_set_bytes] is
    checked against the machine's SPM capacity.
    @raise Invalid_argument on an illegal schedule, or on a non-default
    boundary condition with the [Athread] target (the MPE-side BC pass is not
    emitted yet). *)

val write_files : dir:string -> file list -> unit
(** Creates [dir] if needed and writes each file. *)

val total_loc : file list -> int
(** Non-empty lines across all generated files (Table 6 accounting). *)

(** Host-side compile-and-run harness (CPU / OpenMP targets only). *)
module Toolchain : sig
  type run_result = { checksum : float; maxabs : float; output : string }

  val available : unit -> bool
  (** Is a C compiler present on this host? *)

  val compile_and_run :
    ?cc:string -> ?steps:int -> dir:string -> file list -> (run_result, string) result
  (** Writes the bundle into [dir], compiles the single .c file with [cc]
      (default "cc"; OpenMP flag added when the source uses omp pragmas),
      runs it, and parses the ["checksum ... maxabs ..."] report line. *)
end
