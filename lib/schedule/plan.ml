open Msc_ir
module Machine = Msc_machine.Machine

type parallel = Seq | Block of int | Round_robin of int

type t = {
  stencil : Stencil.t;
  schedule : Schedule.t;
  digest : string;
  machine : Machine.t option;
  nests : Loopnest.t list;
  loops : Loopnest.loop list;
  tile : int array;
  padded_tile : int array;
  tasks : (int array * int array) array;
  parallel : parallel;
  dma : Loopnest.dma_plan option;
  n_state_streams : int;
  n_aux_streams : int;
  tiles_count : int;
  tile_elems : int;
  padded_elems : int;
  working_set_bytes : int;
  reuse_factor : float;
  spm_capacity_bytes : int option;
}

let ceil_div a b = (a + b - 1) / b

let distinct_dts (st : Stencil.t) =
  let rec go acc (e : Stencil.expr) =
    match e with
    | Stencil.Apply (_, dt) | Stencil.State dt -> dt :: acc
    | Stencil.Scale (_, a) -> go acc a
    | Stencil.Sum (a, b) | Stencil.Diff (a, b) -> go (go acc a) b
  in
  List.sort_uniq compare (go [] st.Stencil.expr)

let distinct_aux_names (st : Stencil.t) =
  List.sort_uniq compare
    (List.concat_map
       (fun k -> List.map (fun (a : Tensor.t) -> a.Tensor.name) k.Kernel.aux)
       (Stencil.kernels st))

(* Enumerate the tile tasks in the traversal order the outer loops dictate:
   the outermost tile-index loop varies slowest, the innermost fastest. A
   schedule that reorders the outer axes therefore reorders the sweep — the
   native runtime inherits the locality effect the [reorder] primitive is
   meant to establish. *)
let tasks_of ~shape ~tile loops =
  let nd = Array.length shape in
  let outer =
    List.filter_map
      (fun (l : Loopnest.loop) ->
        match l.Loopnest.role with
        | Loopnest.Outer d -> Some d
        | Loopnest.Inner _ | Loopnest.Full _ -> None)
      loops
  in
  match outer with
  | [] -> [| (Array.make nd 0, Array.copy shape) |]
  | dims ->
      let dims = Array.of_list dims in
      let counts = Array.map (fun d -> ceil_div shape.(d) tile.(d)) dims in
      let total = Array.fold_left ( * ) 1 counts in
      Array.init total (fun id ->
          let lo = Array.make nd 0 and hi = Array.copy shape in
          let rest = ref id in
          for i = Array.length dims - 1 downto 0 do
            let d = dims.(i) in
            let td = !rest mod counts.(i) in
            rest := !rest / counts.(i);
            lo.(d) <- td * tile.(d);
            hi.(d) <- min shape.(d) (lo.(d) + tile.(d))
          done;
          (lo, hi))

(* A plan is a pure function of (stencil, schedule): digest both the
   printed forms (stable across processes) and the Marshal bytes (collision
   resistance beyond what the printers expose). A spurious mismatch only
   costs a kernel-cache miss; a spurious match is what the Marshal half
   rules out. *)
let digest_of (st : Stencil.t) schedule =
  Digest.to_hex
    (Digest.string
       (Format.asprintf "%a\x00%a" Stencil.pp st Schedule.pp schedule
       ^ Marshal.to_string (st, schedule) []))

let compile ?machine (st : Stencil.t) schedule =
  let kernels = Stencil.kernels st in
  let validation =
    List.fold_left
      (fun acc k ->
        match acc with
        | Error _ -> acc
        | Ok () -> Schedule.validate schedule ~kernel:k)
      (Ok ()) kernels
  in
  match validation with
  | Error _ as e -> e
  | Ok () ->
      let grid = st.Stencil.grid in
      let shape = grid.Tensor.shape in
      let nd = Array.length shape in
      let elem = Dtype.size_bytes grid.Tensor.dtype in
      let tile =
        match Schedule.tile_sizes schedule ~ndim:nd with
        | Some sizes -> sizes
        | None -> Array.copy shape
      in
      let radius = Stencil.radius st in
      let padded_tile = Array.mapi (fun d t -> t + (2 * radius.(d))) tile in
      let loops = Loopnest.loops_for ~shape schedule in
      (* Validation passed for every kernel, so per-kernel lowering cannot
         fail. *)
      let nests = List.map (fun k -> Loopnest.lower_exn k schedule) kernels in
      let tasks = tasks_of ~shape ~tile loops in
      let parallel =
        match Schedule.parallel_spec schedule with
        | None -> Seq
        | Some (_, units, Schedule.Omp_threads) -> Block units
        | Some (_, units, Schedule.Athread_cpes) -> Round_robin units
      in
      let tile_elems = Array.fold_left ( * ) 1 tile in
      let padded_elems = Array.fold_left ( * ) 1 padded_tile in
      let n_state_streams = List.length (distinct_dts st) in
      let n_aux_streams = List.length (distinct_aux_names st) in
      let nstreams = n_state_streams + n_aux_streams in
      let reuse_factor =
        match kernels with
        | [] -> 0.0
        | k :: _ ->
            float_of_int (Kernel.points k)
            *. float_of_int tile_elems /. float_of_int padded_elems
      in
      Ok
        {
          stencil = st;
          schedule;
          digest = digest_of st schedule;
          machine;
          nests;
          loops;
          tile;
          padded_tile;
          tasks;
          parallel;
          dma = (match nests with [] -> None | n :: _ -> n.Loopnest.dma);
          n_state_streams;
          n_aux_streams;
          tiles_count = Array.length tasks;
          tile_elems;
          padded_elems;
          working_set_bytes = ((nstreams * padded_elems) + tile_elems) * elem;
          reuse_factor;
          spm_capacity_bytes =
            Option.bind machine (fun (m : Machine.t) ->
                m.Machine.spm_bytes_per_unit);
        }

(* Split every task box into the part inside the core box [core_lo, core_hi)
   and the parts outside it, by peeling one slab per dimension side off the
   remaining box. Peeling is sequential on the remainder, so the produced
   boxes are pairwise disjoint and cover each task exactly — any traversal
   of the split computes every cell exactly once. Order within each half
   follows the original traversal order. *)
let split_tasks ~core_lo ~core_hi tasks =
  let interior = ref [] and shell = ref [] in
  let nonempty lo hi =
    let ok = ref true in
    Array.iteri (fun d l -> if l >= hi.(d) then ok := false) lo;
    !ok
  in
  Array.iter
    (fun ((lo : int array), (hi : int array)) ->
      let cur_lo = Array.copy lo and cur_hi = Array.copy hi in
      for d = 0 to Array.length lo - 1 do
        if cur_lo.(d) < core_lo.(d) then begin
          let b_hi = Array.copy cur_hi in
          b_hi.(d) <- min cur_hi.(d) core_lo.(d);
          if nonempty cur_lo b_hi then shell := (Array.copy cur_lo, b_hi) :: !shell;
          cur_lo.(d) <- min cur_hi.(d) core_lo.(d)
        end;
        if cur_hi.(d) > core_hi.(d) then begin
          let b_lo = Array.copy cur_lo in
          b_lo.(d) <- max cur_lo.(d) core_hi.(d);
          if nonempty b_lo cur_hi then shell := (b_lo, Array.copy cur_hi) :: !shell;
          cur_hi.(d) <- max cur_lo.(d) core_hi.(d)
        end
      done;
      if nonempty cur_lo cur_hi then interior := (cur_lo, cur_hi) :: !interior)
    tasks;
  (Array.of_list (List.rev !interior), Array.of_list (List.rev !shell))

let interior_shell t =
  let shape = t.stencil.Stencil.grid.Tensor.shape in
  let radius = Stencil.radius t.stencil in
  let core_lo = Array.copy radius in
  let core_hi =
    Array.mapi (fun d n -> max core_lo.(d) (n - radius.(d))) shape
  in
  split_tasks ~core_lo ~core_hi t.tasks

(* Grow the sweep range by [ext] cells into the halo on every face whose
   grow flag is set. The extension is materialised as the shell of the
   grown box split against the interior, so the plan's own tile tasks (and
   their traversal order) are preserved and only the ghost boxes are
   appended; the split boxes are disjoint, so every grown cell is computed
   exactly once. *)
let extend_tasks ~shape ~ext ~grow_low ~grow_high tasks =
  let nd = Array.length shape in
  if
    Array.length ext <> nd
    || Array.length grow_low <> nd
    || Array.length grow_high <> nd
  then invalid_arg "Plan.extend_tasks: rank mismatch";
  let ext_lo =
    Array.init nd (fun d -> if grow_low.(d) then -ext.(d) else 0)
  in
  let ext_hi =
    Array.init nd (fun d -> shape.(d) + if grow_high.(d) then ext.(d) else 0)
  in
  if ext_lo = Array.make nd 0 && ext_hi = shape then tasks
  else
    let _, sh =
      split_tasks ~core_lo:(Array.make nd 0) ~core_hi:shape
        [| (ext_lo, ext_hi) |]
    in
    Array.append tasks sh

let temporal ~shape ~radius ~depth ~grow_low ~grow_high tasks =
  let nd = Array.length shape in
  if depth < 1 then invalid_arg "Plan.temporal: depth must be >= 1";
  if Array.length radius <> nd || Array.length grow_low <> nd
     || Array.length grow_high <> nd
  then invalid_arg "Plan.temporal: rank mismatch";
  Array.init depth (fun s ->
      (* Substep [s] of a depth-k block sweeps the interior grown by
         (k-1-s) * radius into the halo on every face that has exchanged
         (deep) data; after the k substeps the interior is exact and the
         remaining extension has been consumed. *)
      let e = depth - 1 - s in
      if e = 0 then tasks
      else
        extend_tasks ~shape
          ~ext:(Array.map (fun r -> e * r) radius)
          ~grow_low ~grow_high tasks)

let compile_exn ?machine st schedule =
  match compile ?machine st schedule with
  | Ok t -> t
  | Error msg -> invalid_arg ("Plan.compile: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Pipeline graph plans.                                               *)

module G = Msc_graph.Graph

type reduce_plan = {
  rp_tasks : (int array * int array) array;
  rp_combine : (int * int) array array;
}

let combine_levels n =
  if n < 1 then invalid_arg "Plan.combine_levels: n < 1";
  let levels = ref [] in
  let stride = ref 1 in
  while !stride < n do
    let level = ref [] in
    let i = ref 0 in
    while !i + !stride < n do
      level := (!i, !i + !stride) :: !level;
      i := !i + (2 * !stride)
    done;
    levels := Array.of_list (List.rev !level) :: !levels;
    stride := 2 * !stride
  done;
  Array.of_list (List.rev !levels)

let reduce_plan t =
  { rp_tasks = t.tasks; rp_combine = combine_levels (Array.length t.tasks) }

type graph_stage_plan = {
  gs_name : string;
  gs_stencil : Stencil.t;
  gs_plan : t;
  gs_ext : int array;
  gs_buffer : int option;
}

type graph_plan = {
  gp_graph : G.t;
  gp_stages : graph_stage_plan list;
  gp_n_buffers : int;
  gp_halo : int array;
  gp_time_window : int;
  gp_merged : bool;
  gp_exchanges_per_step : int;
  gp_naive_exchanges_per_step : int;
}

let compile_graph ?machine ?shape (g : G.t) schedule =
  let halo = G.required_halo g in
  let g = G.reshape ?shape ~halo g in
  let exts = G.extensions g in
  let rec lower acc = function
    | [] -> Ok (List.rev acc)
    | (s : G.stage) :: rest -> (
        match compile ?machine s.G.stencil schedule with
        | Ok p -> lower ((s, p) :: acc) rest
        | Error e ->
            Error (Printf.sprintf "stage %s: %s" s.G.name e))
  in
  match lower [] g.G.stages with
  | Error e -> Error e
  | Ok stage_plans ->
      (* Greedy liveness-driven buffer slots: walk the topological order,
         give each intermediate the lowest free slot, then release the
         slots of dependencies whose last reader is this stage. A stage's
         own slot is allocated {e before} its dead dependencies are
         released, so a stage never writes the buffer it is reading — the
         double-buffer reuse happens one stage later. *)
      let slot = Hashtbl.create 8 in
      let free = ref [] and next = ref 0 in
      let alloc () =
        match !free with
        | i :: rest ->
            free := rest;
            i
        | [] ->
            let i = !next in
            incr next;
            i
      in
      let topo = Array.of_list g.G.stages in
      let last_reader name =
        let last = ref (-1) in
        Array.iteri
          (fun i s ->
            if List.exists (String.equal name) (G.reads s) then last := i)
          topo;
        !last
      in
      let stages =
        List.rev
          (snd
             (List.fold_left
                (fun (i, acc) ((s : G.stage), p) ->
                  let buffer =
                    if String.equal s.G.name g.G.output then None
                    else begin
                      let b = alloc () in
                      Hashtbl.replace slot s.G.name b;
                      Some b
                    end
                  in
                  List.iter
                    (fun d ->
                      if last_reader d = i then
                        match Hashtbl.find_opt slot d with
                        | Some b ->
                            free := b :: !free;
                            Hashtbl.remove slot d
                        | None -> ())
                    (G.deps g s);
                  ( i + 1,
                    {
                      gs_name = s.G.name;
                      gs_stencil = s.G.stencil;
                      gs_plan = p;
                      gs_ext = Hashtbl.find exts s.G.name;
                      gs_buffer = buffer;
                    }
                    :: acc ))
                (0, []) stage_plans))
      in
      let n_stages = List.length stages in
      Ok
        {
          gp_graph = g;
          gp_stages = stages;
          gp_n_buffers = !next;
          gp_halo = halo;
          gp_time_window = G.time_window g;
          gp_merged = g.G.merged;
          gp_exchanges_per_step = (if g.G.merged then 1 else n_stages);
          gp_naive_exchanges_per_step = n_stages;
        }

let spm_fits t =
  match t.spm_capacity_bytes with
  | None -> true
  | Some cap -> t.working_set_bytes <= cap

let outer_dims t =
  List.filter_map
    (fun (l : Loopnest.loop) ->
      match l.Loopnest.role with
      | Loopnest.Outer d -> Some d
      | Loopnest.Inner _ | Loopnest.Full _ -> None)
    t.loops

let pp ppf t =
  let par =
    match t.parallel with
    | Seq -> "seq"
    | Block n -> Printf.sprintf "block(%d)" n
    | Round_robin n -> Printf.sprintf "round_robin(%d)" n
  in
  Format.fprintf ppf "@[<v>plan %s: %d tiles, %s, working set %d B@,"
    t.stencil.Stencil.name t.tiles_count par t.working_set_bytes;
  List.iteri
    (fun depth (l : Loopnest.loop) ->
      Format.fprintf ppf "%sfor %s in [0,%d)@,"
        (String.make (2 * depth) ' ')
        l.Loopnest.name l.Loopnest.extent)
    t.loops;
  Format.fprintf ppf "@]"

module Cache = struct
  type plan = t

  type key = Stencil.t * Schedule.t

  type t = {
    machine : Machine.t option;
    tbl : (key, (plan, string) result) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?machine () =
    { machine; tbl = Hashtbl.create 64; hits = 0; misses = 0 }

  let compile c st schedule =
    let key = (st, schedule) in
    match Hashtbl.find_opt c.tbl key with
    | Some r ->
        c.hits <- c.hits + 1;
        r
    | None ->
        c.misses <- c.misses + 1;
        let r = compile ?machine:c.machine st schedule in
        Hashtbl.add c.tbl key r;
        r

  let hits c = c.hits
  let misses c = c.misses

  type stats = { hits : int; misses : int }

  let stats (c : t) = { hits = c.hits; misses = c.misses }
end
