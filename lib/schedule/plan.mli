(** The lowered execution plan: one artifact every backend shares.

    [compile] validates a schedule once against every kernel of a stencil and
    produces everything the consumers used to re-derive independently:

    - the lowered loop list (what the C emitters walk),
    - a materialized tile task array in the traversal order the [reorder]
      primitive dictates (what the native runtime and the cache-trace
      replayer sweep, and what the distributed runtime shares across ranks),
    - the parallel assignment (sequential / block-threads / round-robin CPE
      tasks),
    - the DMA/SPM staging plan and stream counts (what the Sunway simulator
      costs and the athread emitter stages),
    - derived metrics: [tiles_count], [working_set_bytes], [reuse_factor]
      (what the performance model and the Matrix cache model consume).

    After this layer, no module outside [lib/schedule] queries
    {!Schedule.tile_sizes}/{!Schedule.parallel_spec}/{!Schedule.validate}
    directly. *)

type parallel =
  | Seq  (** no parallel primitive: one sequential sweep *)
  | Block of int  (** OpenMP-style static blocks over [n] threads *)
  | Round_robin of int  (** athread-style [mod(task, n)] CPE assignment *)

type t = {
  stencil : Msc_ir.Stencil.t;
  schedule : Schedule.t;
  digest : string;
      (** stable hex digest of (stencil, schedule) — the key of the
          compiled-kernel disk cache; plans lowered from equal inputs get
          equal digests across processes *)
  machine : Msc_machine.Machine.t option;
  nests : Loopnest.t list;  (** per-kernel lowerings, kernel order *)
  loops : Loopnest.loop list;  (** the shared loop nest, outermost first *)
  tile : int array;  (** effective tile extents (grid shape when untiled) *)
  padded_tile : int array;  (** tile + twice the stencil radius per dim *)
  tasks : (int array * int array) array;
      (** interior (lo, hi) spans of every tile, enumerated in the traversal
          order of the schedule's outer loops — [reorder] changes this *)
  parallel : parallel;
  dma : Loopnest.dma_plan option;  (** staging plan of the first kernel *)
  n_state_streams : int;  (** distinct time states read per point *)
  n_aux_streams : int;  (** distinct coefficient grids staged per tile *)
  tiles_count : int;
  tile_elems : int;  (** interior points per full tile *)
  padded_elems : int;  (** points per tile including the halo ring *)
  working_set_bytes : int;
      (** per-tile scratch: one padded read buffer per stream plus the write
          tile — the quantity that must fit in a CPE scratchpad and the
          Matrix cache model's working set *)
  reuse_factor : float;
  spm_capacity_bytes : int option;  (** from the machine descriptor *)
}

val compile :
  ?machine:Msc_machine.Machine.t ->
  Msc_ir.Stencil.t ->
  Schedule.t ->
  (t, string) result
(** Validate [schedule] against every kernel of the stencil, then lower.
    [machine] only supplies capacity metadata ([spm_capacity_bytes]); the
    plan itself is machine-independent. *)

val compile_exn : ?machine:Msc_machine.Machine.t -> Msc_ir.Stencil.t -> Schedule.t -> t

val split_tasks :
  core_lo:int array ->
  core_hi:int array ->
  (int array * int array) array ->
  (int array * int array) array * (int array * int array) array
(** Partition every task box against the core box [\[core_lo, core_hi)]:
    [(interior, shell)] where the interior boxes lie inside the core and the
    shell boxes outside it. The split boxes are pairwise disjoint and cover
    each task exactly (qcheck-pinned), so sweeping interior and shell in any
    order — or in different phases — computes every cell exactly once. Each
    half preserves the tasks' traversal order. The distributed runtime uses
    this to hide the halo exchange behind the interior sub-sweep. *)

val interior_shell : t -> (int array * int array) array * (int array * int array) array
(** {!split_tasks} against the stencil's own core: cells at least the
    stencil radius away from every face. Interior cells read no halo data,
    so their sub-sweep can run while halo messages are in flight; the shell
    sub-sweep needs the completed exchange. An extent thinner than twice the
    radius has an empty interior (every cell is shell). *)

val extend_tasks :
  shape:int array ->
  ext:int array ->
  grow_low:bool array ->
  grow_high:bool array ->
  (int array * int array) array ->
  (int array * int array) array
(** Grow the sweep range by [ext.(d)] cells into the halo on every face of
    dimension [d] whose grow flag is set: the original tasks (traversal
    order preserved) with the disjoint extension boxes appended, so
    sweeping the result computes every grown cell exactly once. Returns
    [tasks] unchanged when nothing grows. The graph executor uses this to
    run intermediate pipeline stages on their ghost-zone extension.
    @raise Invalid_argument on rank mismatch. *)

val temporal :
  shape:int array ->
  radius:int array ->
  depth:int ->
  grow_low:bool array ->
  grow_high:bool array ->
  (int array * int array) array ->
  (int array * int array) array array
(** [temporal ~shape ~radius ~depth ~grow_low ~grow_high tasks] materialises
    the per-substep task arrays of a depth-[k] communication-avoiding
    temporal block. Substep [s] (0-based) sweeps the interior grown by
    [(k-1-s) * radius] cells into the halo on every face whose [grow_*]
    flag is set (faces with an exchanged deep halo); the final substep
    sweeps exactly [tasks]. Each substep array is the original [tasks]
    (traversal order preserved) with the disjoint extension boxes appended,
    so sweeping it computes every grown cell exactly once.
    @raise Invalid_argument if [depth < 1] or the array ranks mismatch. *)

(** {1 Reduction lowering}

    A grid reduction ({!Msc_ir.Reduce}) lowers to the plan's own tile
    tasks — each producing one sequential row-major partial — plus a fixed
    pairwise combine tree over the task index. The tree is data-independent
    (it only depends on the task count), so executors can fill partials in
    any order, on any number of workers, and fold deterministically. *)

type reduce_plan = {
  rp_tasks : (int array * int array) array;
      (** per-tile interior (lo, hi) boxes, the plan's traversal order; one
          partial per task, accumulated sequentially row-major *)
  rp_combine : (int * int) array array;
      (** combine schedule, levels outermost: each level's [(dst, src)]
          folds are independent of one another; executing every level in
          order folds partial [src] into partial [dst], leaving the result
          in index [0]. Matches {!Msc_ir.Reduce.tree_combine} exactly. *)
}

val combine_levels : int -> (int * int) array array
(** The stride-doubling pairwise tree over [n] partials: level [s] holds
    [(i, i + s)] for [i = 0, 2s, 4s, ...]. Empty for [n <= 1].
    @raise Invalid_argument if [n < 1]. *)

val reduce_plan : t -> reduce_plan
(** Lower this plan's tiling into a reduction schedule over the same
    interior boxes. *)

(** {1 Pipeline graph plans}

    {!compile_graph} lowers a whole {!Msc_graph.Graph.t} into an ordered
    stage-plan list sharing one index space: every tensor is rebuilt to
    the graph's {!Msc_graph.Graph.required_halo} (and, for distributed
    ranks, the local [shape]), each stage gets its own {!t} under the same
    schedule, and intermediate results are assigned scratch-buffer slots
    with liveness-driven reuse — a dead intermediate's slot is handed to a
    later stage (double buffering falls out for chains). *)

type graph_stage_plan = {
  gs_name : string;
  gs_stencil : Msc_ir.Stencil.t;  (** reshaped to the uniform deep halo *)
  gs_plan : t;
  gs_ext : int array;
      (** ghost-zone extension this stage is computed on (zero for the
          output stage) — executors grow [gs_plan.tasks] by this via
          {!extend_tasks} *)
  gs_buffer : int option;
      (** scratch slot holding the stage's result; [None] = this is the
          output stage, written to the stepped state *)
}

type graph_plan = {
  gp_graph : Msc_graph.Graph.t;  (** the reshaped graph *)
  gp_stages : graph_stage_plan list;  (** topological order *)
  gp_n_buffers : int;  (** scratch grids needed after slot reuse *)
  gp_halo : int array;  (** the uniform halo every tensor was rebuilt to *)
  gp_time_window : int;
  gp_merged : bool;
  gp_exchanges_per_step : int;
      (** halo exchanges a distributed step performs: 1 when merged *)
  gp_naive_exchanges_per_step : int;
      (** the per-stage-exchange baseline (one per stage) the merge saves
          against — the bench's exchanges/step comparison *)
}

val compile_graph :
  ?machine:Msc_machine.Machine.t ->
  ?shape:int array ->
  Msc_graph.Graph.t ->
  Schedule.t ->
  (graph_plan, string) result
(** Reshape the graph to its required halo (and [shape], when given — the
    distributed runtime passes each rank's local extent), then lower every
    stage against [schedule]. Fails with the offending stage's name if any
    stage rejects the schedule. *)

val spm_fits : t -> bool
(** [working_set_bytes <= spm_capacity_bytes] (true when the machine has no
    scratchpad). *)

val outer_dims : t -> int list
(** Dimensions of the tile-index loops, outermost first — the traversal
    order [tasks] is enumerated in. *)

val pp : Format.formatter -> t -> unit

(** Memoizing plan compiler for the auto-tuner: annealing revisits the same
    (stencil, schedule) points many times; each distinct pair is lowered and
    validated exactly once. *)
module Cache : sig
  type plan := t
  type t

  val create : ?machine:Msc_machine.Machine.t -> unit -> t
  val compile : t -> Msc_ir.Stencil.t -> Schedule.t -> (plan, string) result
  val hits : t -> int
  val misses : t -> int

  type stats = { hits : int; misses : int }

  val stats : t -> stats
end
