(** Lowering a (kernel, schedule) pair to a concrete loop nest.

    The loop nest is what the code generator walks and what the processor
    simulators cost. Remainder tiles (extents not divisible by the tile size)
    are handled by clamping inner-loop bounds. *)

type axis_role =
  | Outer of int  (** tile-index loop over dimension [d] *)
  | Inner of int  (** intra-tile loop over dimension [d] *)
  | Full of int  (** untiled loop over dimension [d] *)

type loop = {
  name : string;
  role : axis_role;
  extent : int;  (** trip count (ceil for outer loops) *)
  parallel : Msc_ir.Axis.parallel_mode;
}

type dma_plan = {
  read_buffer : string option;
  write_buffer : string option;
  at_axis : string;  (** transfers happen at each iteration of this axis *)
  at_depth : int;  (** loop depth of [at_axis] (0 = outermost) *)
  transfer_elems : int;  (** elements moved per read transfer (halo included) *)
  transfer_bytes : int;
  contiguous_run_bytes : int;  (** longest contiguous run per DMA descriptor *)
}

type t = {
  kernel : Msc_ir.Kernel.t;
  schedule : Schedule.t;
  loops : loop list;  (** outermost first *)
  tile : int array;  (** effective tile extents per dimension *)
  dma : dma_plan option;
}

val loops_for : shape:int array -> Schedule.t -> loop list
(** The loop list a schedule induces over an interior of the given extents
    (no validation; {!Plan.compile} validates first). Used for stencils
    whose kernel set may be empty (pure [State] combinations). *)

val lower : Msc_ir.Kernel.t -> Schedule.t -> (t, string) result
(** Validates the schedule then lowers it. *)

val lower_exn : Msc_ir.Kernel.t -> Schedule.t -> t

val tiles_count : t -> int
(** Number of tiles = product of outer/untiled-as-single trip counts. *)

val tile_elems : t -> int
(** Interior points per full tile. *)

val tile_halo_elems : t -> int
(** Points per tile including the kernel-radius halo ring. *)

val working_set_bytes : t -> int
(** Per-tile scratch requirement: read buffer (halo included) + write buffer.
    This is what must fit in a CPE's scratchpad. *)

val parallel_loop : t -> (loop * int) option
(** The parallel loop and its depth, if any. *)

val reuse_factor : t -> float
(** Average number of times each loaded element is used by the kernel within
    a tile (data-locality metric reported in §5.2.1). *)

val innermost_contiguous : t -> bool
(** True when the innermost loop iterates the contiguous dimension — the
    access-locality property the [reorder] primitive is meant to establish. *)

val pp : Format.formatter -> t -> unit
