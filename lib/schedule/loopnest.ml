open Msc_ir

type axis_role = Outer of int | Inner of int | Full of int

type loop = {
  name : string;
  role : axis_role;
  extent : int;
  parallel : Axis.parallel_mode;
}

type dma_plan = {
  read_buffer : string option;
  write_buffer : string option;
  at_axis : string;
  at_depth : int;
  transfer_elems : int;
  transfer_bytes : int;
  contiguous_run_bytes : int;
}

type t = {
  kernel : Kernel.t;
  schedule : Schedule.t;
  loops : loop list;
  tile : int array;
  dma : dma_plan option;
}

let ceil_div a b = (a + b - 1) / b

let loops_for ~shape schedule =
  let ndim = Array.length shape in
  let names = Schedule.dim_names ndim in
  let order = Schedule.order schedule ~ndim in
  let tile =
    match Schedule.tile_sizes schedule ~ndim with
    | Some sizes -> sizes
    | None -> Array.copy shape
  in
  let dim_of_name base =
    let rec find d = function
      | [] -> invalid_arg (Printf.sprintf "Loopnest: unknown axis base %s" base)
      | n :: rest -> if String.equal n base then d else find (d + 1) rest
    in
    find 0 names
  in
  let parse_axis name =
    (* "xo" / "xi" for tiled schedules, "x" for untiled. *)
    if List.mem name names then Full (dim_of_name name)
    else begin
      let len = String.length name in
      let base = String.sub name 0 (len - 1) in
      match name.[len - 1] with
      | 'o' -> Outer (dim_of_name base)
      | 'i' -> Inner (dim_of_name base)
      | _ -> invalid_arg (Printf.sprintf "Loopnest: bad axis name %s" name)
    end
  in
  let par = Schedule.parallel_spec schedule in
  List.map
    (fun axis_name ->
      let role = parse_axis axis_name in
      let extent =
        match role with
        | Full d -> shape.(d)
        | Outer d -> ceil_div shape.(d) tile.(d)
        | Inner d -> tile.(d)
      in
      let parallel =
        match par with
        | Some (p_axis, units, kind) when String.equal p_axis axis_name -> (
            match kind with
            | Schedule.Omp_threads -> Axis.Threads units
            | Schedule.Athread_cpes -> Axis.Cpe_tasks units)
        | Some _ | None -> Axis.Serial
      in
      { name = axis_name; role; extent; parallel })
    order

let build_loops kernel schedule =
  loops_for ~shape:kernel.Kernel.input.Tensor.shape schedule

let tile_elems_of tile = Array.fold_left ( * ) 1 tile

let tile_halo_elems_of kernel tile =
  let radius = Kernel.radius kernel in
  let acc = ref 1 in
  Array.iteri (fun d s -> acc := !acc * (s + (2 * radius.(d)))) tile;
  !acc

let build_dma kernel schedule loops tile =
  let read = Schedule.cache_read_spec schedule in
  let write = Schedule.cache_write_spec schedule in
  let ats = Schedule.compute_at_specs schedule in
  match (read, write, ats) with
  | None, None, _ | _, _, [] -> None
  | _ ->
      let at_axis = snd (List.hd ats) in
      let at_depth =
        let rec find d = function
          | [] -> invalid_arg (Printf.sprintf "Loopnest: compute_at axis %s not in nest" at_axis)
          | l :: rest -> if String.equal l.name at_axis then d else find (d + 1) rest
        in
        find 0 loops
      in
      let elem_bytes = Dtype.size_bytes kernel.Kernel.input.Tensor.dtype in
      let transfer_elems = tile_halo_elems_of kernel tile in
      let radius = Kernel.radius kernel in
      let innermost_dim = Array.length tile - 1 in
      let contiguous_run_bytes =
        (tile.(innermost_dim) + (2 * radius.(innermost_dim))) * elem_bytes
      in
      Some
        {
          read_buffer = Option.map (fun (_, b, _) -> b) read;
          write_buffer = Option.map (fun (b, _) -> b) write;
          at_axis;
          at_depth;
          transfer_elems;
          transfer_bytes = transfer_elems * elem_bytes;
          contiguous_run_bytes;
        }

let lower kernel schedule =
  match Schedule.validate schedule ~kernel with
  | Error _ as e -> e
  | Ok () ->
      let ndim = Kernel.ndim kernel in
      let tile =
        match Schedule.tile_sizes schedule ~ndim with
        | Some sizes -> sizes
        | None -> Array.copy kernel.Kernel.input.Tensor.shape
      in
      let loops = build_loops kernel schedule in
      let dma = build_dma kernel schedule loops tile in
      Ok { kernel; schedule; loops; tile; dma }

let lower_exn kernel schedule =
  match lower kernel schedule with
  | Ok t -> t
  | Error msg -> invalid_arg ("Loopnest.lower: " ^ msg)

let tiles_count t =
  List.fold_left
    (fun acc l -> match l.role with Outer _ -> acc * l.extent | Inner _ | Full _ -> acc)
    1 t.loops

let tile_elems t = tile_elems_of t.tile
let tile_halo_elems t = tile_halo_elems_of t.kernel t.tile

let working_set_bytes t =
  let elem_bytes = Dtype.size_bytes t.kernel.Kernel.input.Tensor.dtype in
  (tile_halo_elems t + tile_elems t) * elem_bytes

let parallel_loop t =
  let rec find depth = function
    | [] -> None
    | l :: rest -> (
        match l.parallel with
        | Axis.Serial -> find (depth + 1) rest
        | Axis.Threads _ | Axis.Cpe_tasks _ -> Some (l, depth))
  in
  find 0 t.loops

let reuse_factor t =
  (* Each interior point is read once per distinct kernel tap that covers it;
     loading the padded tile once means each loaded element serves
     [points * interior / padded] uses on average. *)
  let points = float_of_int (Kernel.points t.kernel) in
  let interior = float_of_int (tile_elems t) in
  let padded = float_of_int (tile_halo_elems t) in
  points *. interior /. padded

let innermost_contiguous t =
  match List.rev t.loops with
  | [] -> false
  | last :: _ -> (
      let ndim = Array.length t.tile in
      match last.role with
      | Inner d | Full d -> d = ndim - 1
      | Outer _ -> false)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun depth l ->
      let indent = String.make (2 * depth) ' ' in
      let par =
        match l.parallel with
        | Axis.Serial -> ""
        | Axis.Threads n -> Printf.sprintf "  // omp parallel(%d)" n
        | Axis.Cpe_tasks n -> Printf.sprintf "  // athread(%d)" n
      in
      Format.fprintf ppf "%sfor %s in [0,%d)%s@," indent l.name l.extent par;
      match t.dma with
      | Some dma when String.equal dma.at_axis l.name ->
          Format.fprintf ppf "%s  dma_get %d B; ...; dma_put@," indent dma.transfer_bytes
      | Some _ | None -> ())
    t.loops;
  Format.fprintf ppf "@]"
