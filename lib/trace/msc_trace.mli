(** Pipeline-wide tracing and metrics.

    Every stage of the MSC pipeline — the native runtime's tile sweeps, the
    distributed runtime's halo pack/exchange/unpack, the processor
    simulators' DMA phases, the auto-tuner's trials — can report {e spans}
    (named, timed intervals) and {e counters} (named, summed quantities)
    into a trace. A trace is either {!disabled} (the default everywhere: a
    nullable sink whose fast path is a single branch, no allocation) or
    created with {!create} and passed down via the [?trace] argument each
    subsystem now takes.

    Collected traces export to the Chrome [trace_event] JSON format
    ({!to_chrome_json}, loadable in [about://tracing] / Perfetto) and to a
    per-phase aggregate table ({!report}, rendered with
    {!Msc_util.Table}).

    {b Workers.} Parallel runs over {!Msc_util.Domain_pool} record into
    per-worker buffers: a worker domain calls {!attach_worker} (the runtime
    does this through the pool's [on_worker] hook) and subsequent events on
    that domain go to a lock-free domain-local buffer tagged with the
    worker's [tid]. Unattached domains fall back to a mutex-protected
    shared buffer, so tracing is always safe, just cheaper when attached. *)

type t
(** A trace sink, or the disabled sink. Immutable handle; the underlying
    event buffers are mutable and domain-safe. *)

type event =
  | Span of { name : string; ts : float; dur : float; tid : int }
      (** A timed phase: [ts] seconds since trace creation, [dur] seconds. *)
  | Counter of { name : string; ts : float; value : float; tid : int }
      (** One increment of a named quantity (bytes, trials, points, ...). *)

val disabled : t
(** The nullable sink: every operation is a no-op costing one branch. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A live trace. [clock] (default [Unix.gettimeofday]) supplies absolute
    times in seconds; events are stored relative to creation time. *)

val enabled : t -> bool

(** {1 Recording} *)

val begin_span : t -> float
(** Timestamp openers for the allocation-free begin/end style:
    [let t0 = begin_span tr in ... ; end_span tr "phase" t0].
    Returns [0.] when disabled. *)

val end_span : ?tid:int -> t -> string -> float -> unit
(** [end_span tr name t0] records a span from [t0] (a {!begin_span} result)
    to now. [tid] defaults to the attached worker id, or [0]. *)

val span : ?tid:int -> t -> string -> (unit -> 'a) -> 'a
(** [span tr name f] times [f ()] as a span. Exceptions propagate; the span
    is still recorded. *)

val emit_span : ?tid:int -> t -> string -> dur_s:float -> unit
(** Record a span with an externally supplied duration — used by the
    performance {e simulators}, whose phase times are model results rather
    than wall-clock measurements. The span is stamped at the current time. *)

val add : ?tid:int -> t -> string -> float -> unit
(** [add tr name v] increments counter [name] by [v]. *)

val attach_worker : t -> tid:int -> unit
(** Bind the calling domain to a per-worker buffer tagged [tid].
    Idempotent for the same trace and tid; no-op when disabled. Meant to be
    called from {!Msc_util.Domain_pool}'s [on_worker] hook at parallel-region
    entry. *)

(** {1 Inspection and export} *)

val events : t -> event list
(** All events (worker buffers merged), sorted by timestamp. *)

val span_count : t -> int

val to_chrome_json : t -> string
(** The Chrome [trace_event] array format: spans as complete events
    ([{"name", "ph":"X", "ts", "dur", "pid", "tid"}], timestamps in
    microseconds) and counters as [ph:"C"] events. [ [] ] when disabled. *)

type phase = {
  phase : string;
  calls : int;
  total_s : float;
  mean_s : float;
  share : float;  (** fraction of the summed span time *)
}

val phases : t -> phase list
(** Aggregate spans by name, largest total first. Nested spans each count
    their own duration, so shares can legitimately sum past 1. *)

type total = { counter : string; count : int; sum : float }

val totals : t -> total list
(** Aggregate counters by name, alphabetical. *)

val report : t -> string
(** The per-phase and counter aggregates as aligned ASCII tables
    ({!Msc_util.Table}). *)
