type event =
  | Span of { name : string; ts : float; dur : float; tid : int }
  | Counter of { name : string; ts : float; value : float; tid : int }

type active = {
  clock : unit -> float;
  t0 : float;
  mutex : Mutex.t;
  mutable shared : event list;  (* newest first; guarded by [mutex] *)
  mutable buffers : (int * event list ref) list;  (* (tid, buffer); guarded *)
}

type t = active option

(* The calling domain's binding to a trace: events recorded on this domain
   for [sink] go into [buf] without locking ([buf] is owned by this domain;
   it is only read by others after the region's domains have joined). *)
type attachment = { sink : active; a_tid : int; buf : event list ref }

let dls_key : attachment option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let disabled = None

let create ?(clock = Unix.gettimeofday) () =
  Some
    { clock; t0 = clock (); mutex = Mutex.create (); shared = []; buffers = [] }

let enabled = Option.is_some

let attach_worker t ~tid =
  match t with
  | None -> ()
  | Some a -> (
      match Domain.DLS.get dls_key with
      | Some at when at.sink == a && at.a_tid = tid -> ()
      | _ ->
          let buf = ref [] in
          Mutex.lock a.mutex;
          a.buffers <- (tid, buf) :: a.buffers;
          Mutex.unlock a.mutex;
          Domain.DLS.set dls_key (Some { sink = a; a_tid = tid; buf }))

let emit a ev =
  match Domain.DLS.get dls_key with
  | Some at when at.sink == a -> at.buf := ev :: !(at.buf)
  | _ ->
      Mutex.lock a.mutex;
      a.shared <- ev :: a.shared;
      Mutex.unlock a.mutex

let cur_tid a =
  match Domain.DLS.get dls_key with
  | Some at when at.sink == a -> at.a_tid
  | _ -> 0

let now a = a.clock () -. a.t0

let[@inline] begin_span t = match t with None -> 0. | Some a -> now a

let end_span ?tid t name ts0 =
  match t with
  | None -> ()
  | Some a ->
      let tid = match tid with Some w -> w | None -> cur_tid a in
      emit a (Span { name; ts = ts0; dur = now a -. ts0; tid })

let span ?tid t name f =
  match t with
  | None -> f ()
  | Some _ -> (
      let ts0 = begin_span t in
      match f () with
      | v ->
          end_span ?tid t name ts0;
          v
      | exception e ->
          end_span ?tid t name ts0;
          raise e)

let emit_span ?tid t name ~dur_s =
  match t with
  | None -> ()
  | Some a ->
      let tid = match tid with Some w -> w | None -> cur_tid a in
      emit a (Span { name; ts = now a; dur = dur_s; tid })

let add ?tid t name value =
  match t with
  | None -> ()
  | Some a ->
      let tid = match tid with Some w -> w | None -> cur_tid a in
      emit a (Counter { name; ts = now a; value; tid })

(* ------------------------------------------------------------------ *)
(* Inspection *)

let event_ts = function Span { ts; _ } | Counter { ts; _ } -> ts

let events t =
  match t with
  | None -> []
  | Some a ->
      Mutex.lock a.mutex;
      let all =
        List.fold_left
          (fun acc (_, buf) -> List.rev_append !buf acc)
          (List.rev a.shared) a.buffers
      in
      Mutex.unlock a.mutex;
      List.stable_sort (fun x y -> Float.compare (event_ts x) (event_ts y)) all

let span_count t =
  List.length (List.filter (function Span _ -> true | _ -> false) (events t))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers must be finite and must not be bare OCaml float notation
   like "1." or "nan". *)
let json_float x =
  if Float.is_nan x then "0"
  else if x = Float.infinity then "1e308"
  else if x = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.6g" x

let to_chrome_json t =
  match events t with
  | [] -> "[]\n"
  | evs ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "[";
      List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n " else Buffer.add_string b "\n ";
      (match ev with
      | Span { name; ts; dur; tid } ->
          Printf.bprintf b
            {|{"name":"%s","cat":"msc","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d}|}
            (json_escape name)
            (json_float (ts *. 1e6))
            (json_float (dur *. 1e6))
            tid
      | Counter { name; ts; value; tid } ->
          Printf.bprintf b
            {|{"name":"%s","cat":"msc","ph":"C","ts":%s,"pid":1,"tid":%d,"args":{"value":%s}}|}
            (json_escape name)
            (json_float (ts *. 1e6))
            tid (json_float value)))
        evs;
      Buffer.add_string b "\n]\n";
      Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Aggregate report *)

type phase = {
  phase : string;
  calls : int;
  total_s : float;
  mean_s : float;
  share : float;
}

type total = { counter : string; count : int; sum : float }

let phases t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Span { name; dur; _ } ->
          let calls, tot =
            match Hashtbl.find_opt tbl name with
            | Some (c, s) -> (c, s)
            | None -> (0, 0.0)
          in
          Hashtbl.replace tbl name (calls + 1, tot +. dur)
      | Counter _ -> ())
    (events t);
  let grand = Hashtbl.fold (fun _ (_, s) acc -> acc +. s) tbl 0.0 in
  Hashtbl.fold
    (fun phase (calls, total_s) acc ->
      {
        phase;
        calls;
        total_s;
        mean_s = total_s /. float_of_int (max 1 calls);
        share = (if grand > 0.0 then total_s /. grand else 0.0);
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> Float.compare b.total_s a.total_s)

let totals t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Counter { name; value; _ } ->
          let count, sum =
            match Hashtbl.find_opt tbl name with
            | Some (c, s) -> (c, s)
            | None -> (0, 0.0)
          in
          Hashtbl.replace tbl name (count + 1, sum +. value)
      | Span _ -> ())
    (events t);
  Hashtbl.fold (fun counter (count, sum) acc -> { counter; count; sum } :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.counter b.counter)

let report t =
  match t with
  | None -> "(tracing disabled)\n"
  | Some _ ->
      let b = Buffer.create 1024 in
      let ps = phases t in
      if ps <> [] then
        Buffer.add_string b
          (Msc_util.Table.render ~title:"trace: per-phase aggregate"
             ~header:[ "phase"; "calls"; "total"; "mean"; "share" ]
             (List.map
                (fun p ->
                  [
                    p.phase;
                    string_of_int p.calls;
                    Msc_util.Units_fmt.seconds p.total_s;
                    Msc_util.Units_fmt.seconds p.mean_s;
                    Printf.sprintf "%.1f%%" (100.0 *. p.share);
                  ])
                ps));
      let ts = totals t in
      if ts <> [] then begin
        if ps <> [] then Buffer.add_char b '\n';
        Buffer.add_string b
          (Msc_util.Table.render ~title:"trace: counters"
             ~header:[ "counter"; "events"; "sum" ]
             (List.map
                (fun c ->
                  [
                    c.counter;
                    string_of_int c.count;
                    Msc_util.Table.fmt_float ~decimals:1 c.sum;
                  ])
                ts))
      end;
      if Buffer.length b = 0 then "(empty trace)\n" else Buffer.contents b
