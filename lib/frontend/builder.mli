(** User-facing DSL entry points, mirroring the paper's Listing 1 API.

    {[
      let grid = Builder.def_tensor_3d_timewin "B" ~time_window:2 ~halo:1 F64 256 256 256 in
      let k = Builder.star_kernel ~name:"S_3d7pt" ~radius:1 grid in
      let st = Builder.two_step ~name:"3d7pt" k in
      ...
    ]} *)

val def_tensor_1d :
  ?time_window:int -> ?halo:int -> string -> Msc_ir.Dtype.t -> int -> Msc_ir.Tensor.t

val def_tensor_2d :
  ?time_window:int -> ?halo:int -> string -> Msc_ir.Dtype.t -> int -> int ->
  Msc_ir.Tensor.t

val def_tensor_3d :
  ?time_window:int -> ?halo:int -> string -> Msc_ir.Dtype.t -> int -> int -> int ->
  Msc_ir.Tensor.t

val def_tensor_3d_timewin :
  string -> time_window:int -> halo:int -> Msc_ir.Dtype.t -> int -> int -> int ->
  Msc_ir.Tensor.t
(** Exact analogue of [DefTensor3D_TimeWin(B, tw, halo, f64, M, N, P)]. *)

val default_index_vars : int -> string list
(** [\["i"\]], [\["j"; "i"\]] or [\["k"; "j"; "i"\]] (outermost first). *)

val kernel :
  ?bindings:(string * float) list -> name:string -> grid:Msc_ir.Tensor.t ->
  Msc_ir.Expr.t -> Msc_ir.Kernel.t
(** Kernel with default index variables for the grid's rank. *)

val weights : center:float -> int -> float array
(** [weights ~center n] gives [n] coefficients: [center] first, the remaining
    mass [1 - center] spread uniformly — a contraction, so iterated stencils
    stay bounded. *)

val shaped_kernel :
  ?center_weight:float -> name:string -> shape:Shapes.shape -> radius:int ->
  Msc_ir.Tensor.t -> Msc_ir.Kernel.t
(** Kernel whose expression is [sum_i c_i * B\[p + off_i\]] over the shape's
    neighbourhood, with distinct named coefficients [c0..cN-1] (as in the
    paper's Listing 1) bound to {!weights}. *)

val star_kernel :
  ?center_weight:float -> name:string -> radius:int -> Msc_ir.Tensor.t ->
  Msc_ir.Kernel.t

val box_kernel :
  ?center_weight:float -> name:string -> radius:int -> Msc_ir.Tensor.t ->
  Msc_ir.Kernel.t

(** {1 Multi-grid (variable-coefficient) kernels — the §5.6 WRF/POP2 case} *)

val coefficient_grid : grid:Msc_ir.Tensor.t -> string -> Msc_ir.Tensor.t
(** A static coefficient grid matching [grid]'s shape, halo and dtype. *)

val var_coeff_kernel :
  name:string -> coeff:Msc_ir.Tensor.t -> shape:Shapes.shape -> radius:int ->
  Msc_ir.Tensor.t -> Msc_ir.Kernel.t
(** Kernel [sum_i w * C\[p+off_i\] * B\[p+off_i\]] over the shape's
    neighbourhood, with [w = 1/N] so bounded coefficient fields keep the
    iteration stable. The coefficient grid is read at the {e same} offsets as
    the input — the variable-coefficient form of WRF's [advect] and POP2's
    [hdifft] kernels. *)

(** {1 Matrix-free operator kernels (solver building blocks)} *)

val laplacian_diagonal : Msc_ir.Tensor.t -> float
(** The constant diagonal of {!laplacian_kernel}'s operator matrix:
    [2 * ndim] (unit spacing) — what Jacobi and red-black Gauss–Seidel
    divide by. *)

val laplacian_kernel : ?name:string -> Msc_ir.Tensor.t -> Msc_ir.Kernel.t
(** The matrix-free {e negative} Laplacian [A]: [2*ndim] at the centre,
    [-1] on each of the [2*ndim] face neighbours (unit-spacing second
    differences). Symmetric positive definite under Dirichlet boundaries,
    so CG applies. Radius-1 star; term order is fixed (centre, then
    low/high per dimension), so every backend folds the same FP
    sequence. *)

val aux_point_kernel :
  ?name:string -> aux:Msc_ir.Tensor.t -> Msc_ir.Tensor.t -> Msc_ir.Kernel.t
(** A radius-0 kernel reading the static coefficient grid [aux] at the
    centre — how a right-hand side [b] enters a stencil expression (e.g.
    the Jacobi update [x + (omega/d)*:(b -: A x)]). [aux] must share the
    grid's shape and halo ({!coefficient_grid}). *)

(** {1 Stencil (temporal) combinators} *)

val ( @> ) : Msc_ir.Kernel.t -> int -> Msc_ir.Stencil.expr
(** [k @> dt] is the kernel applied to the state at [t - dt]
    (the paper's [S\[t-dt\]]). *)

val state : int -> Msc_ir.Stencil.expr
val ( +: ) : Msc_ir.Stencil.expr -> Msc_ir.Stencil.expr -> Msc_ir.Stencil.expr
val ( -: ) : Msc_ir.Stencil.expr -> Msc_ir.Stencil.expr -> Msc_ir.Stencil.expr
val ( *: ) : float -> Msc_ir.Stencil.expr -> Msc_ir.Stencil.expr

val stencil :
  name:string -> grid:Msc_ir.Tensor.t -> Msc_ir.Stencil.expr -> Msc_ir.Stencil.t

val single_step : name:string -> Msc_ir.Kernel.t -> Msc_ir.Stencil.t
(** [grid\[t\] = K(grid\[t-1\])]. *)

val two_step : name:string -> Msc_ir.Kernel.t -> Msc_ir.Stencil.t
(** The paper's canonical multi-time-dependency form:
    [Res\[t\] << 0.5*S\[t-1\] + 0.5*S\[t-2\]] (averaged for stability). *)
